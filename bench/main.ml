(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (Section 11 and Section 12.4.1) at simulator scale.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only fig9a -- one experiment
     dune exec bench/main.exe -- --list       -- list experiment ids
     dune exec bench/main.exe -- --json DIR   -- also write BENCH_<id>.json
     dune exec bench/main.exe -- --domains N  -- query-side domain pool width
     dune exec bench/main.exe -- --transport T - inproc (default) | loopback
     dune exec bench/main.exe -- --rtt MICROS - per-round latency on the loopback transport
     dune exec bench/main.exe -- --no-batching - one frame per request (historical framing)
     dune exec bench/main.exe -- --clients N   - top of the concurrency sweep axis
     dune exec bench/main.exe -- --no-coalescing - concurrency sweep without the round scheduler

   Paper-vs-measured commentary lives in EXPERIMENTS.md. *)

let experiments : (string * string * (unit -> unit)) list =
  [ ("fig7", "EHL vs EHL+ construction time/size vs n", Bench_ehl.fig7);
    ("fig8", "encryption time/size on the 4 evaluation datasets", Bench_ehl.fig8);
    ("fig9a", "Qry_F time per depth varying k", Bench_query.fig9a);
    ("fig9b", "Qry_F time per depth varying m", Bench_query.fig9b);
    ("fig10a", "Qry_E time per depth varying k", Bench_query.fig10a);
    ("fig10b", "Qry_E time per depth varying m", Bench_query.fig10b);
    ("fig11a", "Qry_Ba time per depth varying k", Bench_query.fig11a);
    ("fig11b", "Qry_Ba time per depth varying m", Bench_query.fig11b);
    ("fig11c", "Qry_Ba time per depth varying p", Bench_query.fig11c);
    ("fig12", "variant comparison Qry_Ba / Qry_E / Qry_F", Bench_query.fig12);
    ("fig13a", "bandwidth per depth varying m", Bench_bandwidth.fig13a);
    ("fig13b", "total bandwidth varying k", Bench_bandwidth.fig13b);
    ("tab3", "bandwidth and 50 Mbps latency per dataset", Bench_bandwidth.tab3);
    ("fig14", "secure top-k join time varying m", Bench_join.fig14);
    ("sec11.3", "SecTopK vs secure-kNN baseline", Bench_knn.sec11_3);
    ("ext-rankjoin", "pre-sorted rank join vs cross-product join", Bench_join.ext_rankjoin);
    ("concurrency", "S2 round trips & latency vs concurrent clients (round scheduler)", Bench_concurrency.run);
    ("store", "durable index: build/publish, cold-open vs warm-cache query", Bench_store.run);
    ("micro", "micro-benchmarks of the crypto substrate", Bench_micro.run);
    ("ablation", "design-choice ablations (sort strategy, halting, blinding)", Bench_ablation.run)
  ]

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then
    List.iter (fun (id, descr, _) -> Format.printf "%-10s %s@." id descr) experiments
  else begin
    let flag name =
      let rec find = function
        | f :: v :: _ when f = name -> Some v
        | _ :: rest -> find rest
        | [] -> None
      in
      find args
    in
    let only = flag "--only" in
    (match flag "--domains" with
    | Some n -> begin
      match int_of_string_opt n with
      | Some n -> Bench_util.domains := max 1 n
      | None ->
        Format.eprintf "--domains expects an integer, got %S@." n;
        exit 2
    end
    | None -> ());
    (match flag "--transport" with
    | Some "inproc" -> Bench_util.transport := Proto.Ctx.Inproc
    | Some "loopback" -> Bench_util.transport := Proto.Ctx.Loopback
    | Some other ->
      Format.eprintf "--transport expects inproc or loopback, got %S@." other;
      exit 2
    | None -> ());
    (match flag "--rtt" with
    | Some n -> begin
      match int_of_string_opt n with
      | Some n when n >= 0 ->
        Bench_util.rtt_us := Some n;
        (* rtt is charged per round by the Loopback transport only *)
        Bench_util.transport := Proto.Ctx.Loopback
      | _ ->
        Format.eprintf "--rtt expects a non-negative integer (microseconds), got %S@." n;
        exit 2
    end
    | None -> ());
    if List.mem "--no-batching" args then Bench_util.batching := false;
    (match flag "--clients" with
    | Some n -> begin
      match int_of_string_opt n with
      | Some n when n >= 1 -> Bench_util.clients := n
      | _ ->
        Format.eprintf "--clients expects a positive integer, got %S@." n;
        exit 2
    end
    | None -> ());
    if List.mem "--no-coalescing" args then Bench_util.coalescing := false;
    (match flag "--json" with
    | Some dir ->
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error e ->
         Format.eprintf "--json: cannot create directory %s (%s)@." dir e;
         exit 2);
      Bench_util.json_dir := Some dir
    | None -> ());
    let selected =
      match only with
      | None -> experiments
      | Some id -> List.filter (fun (eid, _, _) -> eid = id) experiments
    in
    if selected = [] then begin
      Format.eprintf "unknown experiment id; use --list@.";
      exit 1
    end;
    Format.printf "SecTopK reproduction benchmarks (key=%d bits, noise=%d bits, blinding=%d bits)@."
      Bench_util.key_bits Bench_util.rand_bits Bench_util.blind_bits;
    (* Count crypto ops for every experiment into the harness collector;
       the per-experiment deltas land in the BENCH_*.json records. *)
    Obs.set_enabled true;
    let (), total =
      Obs.Timer.time (fun () ->
          Obs.with_collector Bench_util.collector (fun () ->
              List.iter
                (fun (id, _, f) ->
                  Bench_util.mark ();
                  let (), t = Obs.Timer.time f in
                  Format.printf "[%s done in %.1fs]@." id t)
                selected))
    in
    Format.printf "@.All experiments done in %.1fs@." total
  end
