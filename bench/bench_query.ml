(* Figures 9-12: secure query processing performance.

   The paper reports average time per depth (total time / halting depth)
   for the three variants. Shapes to reproduce:
   - fig9  (Qry_F): grows roughly linearly in k and in m;
   - fig10 (Qry_E): same shapes, 5-7x faster than Qry_F;
   - fig11 (Qry_Ba): further improvement; a data-dependent best p exists;
   - fig12: Qry_Ba < Qry_E < Qry_F at fixed (k, m, p).

   Row counts and depth caps are scaled down (DESIGN.md); the depth cap
   only kicks in when a run would exhaust the budget without halting. *)

open Dataset
open Topk
open Bench_util

let rows = 50
let depth_cap = 35

let datasets () = eval_datasets ~rows

let scoring_of m = Scoring.sum_of (List.init m Fun.id)

let vary_k ~variant ~label =
  header label;
  let hist = Obs.Hist.create () in
  row "%12s" "k";
  List.iter (fun k -> row "%11d " k) [ 2; 5; 10; 20 ];
  row "@.";
  List.iter
    (fun rel ->
      row "%12s" (Relation.name rel);
      List.iter
        (fun k ->
          let per_depth, _, _, _ =
            run_query ~variant ~max_depth:depth_cap ~hist rel (scoring_of 3) ~k ()
          in
          row "%10.3fs " per_depth)
        [ 2; 5; 10; 20 ];
      row "@.")
    (datasets ());
  quantile_line "per-depth latency" hist

let vary_m ~variant ~label =
  header label;
  let hist = Obs.Hist.create () in
  row "%12s" "m";
  List.iter (fun m -> row "%11d " m) [ 2; 3; 4; 6; 8 ];
  row "@.";
  List.iter
    (fun rel ->
      row "%12s" (Relation.name rel);
      List.iter
        (fun m ->
          let m = min m (Relation.n_attrs rel) in
          let per_depth, _, _, _ =
            run_query ~variant ~max_depth:depth_cap ~hist rel (scoring_of m) ~k:5 ()
          in
          row "%10.3fs " per_depth)
        [ 2; 3; 4; 6; 8 ];
      row "@.")
    (datasets ());
  quantile_line "per-depth latency" hist

let fig9a () = vary_k ~variant:Sectopk.Query.Full ~label:"fig9a: Qry_F time/depth varying k (m=3)"
let fig9b () = vary_m ~variant:Sectopk.Query.Full ~label:"fig9b: Qry_F time/depth varying m (k=5)"
let fig10a () = vary_k ~variant:Sectopk.Query.Elim ~label:"fig10a: Qry_E time/depth varying k (m=3)"
let fig10b () = vary_m ~variant:Sectopk.Query.Elim ~label:"fig10b: Qry_E time/depth varying m (k=5)"

let fig11a () =
  vary_k ~variant:(Sectopk.Query.Batched 10) ~label:"fig11a: Qry_Ba time/depth varying k (m=3, p=10)"

let fig11b () =
  vary_m ~variant:(Sectopk.Query.Batched 10) ~label:"fig11b: Qry_Ba time/depth varying m (k=5, p=10)"

let fig11c () =
  header "fig11c: Qry_Ba time/depth varying the batching parameter p (k=5, m=3)";
  let hist = Obs.Hist.create () in
  row "%12s" "p";
  List.iter (fun p -> row "%11d " p) [ 5; 8; 10; 15; 20; 25 ];
  row "@.";
  List.iter
    (fun rel ->
      row "%12s" (Relation.name rel);
      List.iter
        (fun p ->
          let per_depth, _, _, _ =
            run_query ~variant:(Sectopk.Query.Batched p) ~max_depth:depth_cap ~hist rel
              (scoring_of 3) ~k:5 ()
          in
          row "%10.3fs " per_depth)
        [ 5; 8; 10; 15; 20; 25 ];
      row "@.")
    (datasets ());
  quantile_line "per-depth latency" hist

let fig12 () =
  (* the [7]-style sorting network is the costly EncSort the paper batches;
     running fig12 under it makes the Qry_Ba < Qry_E < Qry_F ordering
     visible exactly as in the paper *)
  header "fig12: variant comparison, time/depth (k=5, m=2, p=10, network EncSort)";
  row "%12s %12s %12s %12s@." "dataset" "Qry_Ba" "Qry_E" "Qry_F";
  let json_rows = ref [] in
  let hists = [ ("qry_ba", Obs.Hist.create ()); ("qry_e", Obs.Hist.create ());
                ("qry_f", Obs.Hist.create ()) ] in
  List.iter
    (fun rel ->
      let go tag variant =
        let t, _, bytes, _ =
          run_query ~sort:Proto.Enc_sort.Network ~variant ~max_depth:depth_cap
            ~hist:(List.assoc tag hists) rel (scoring_of 2) ~k:5 ()
        in
        json_rows := (Relation.name rel ^ "/" ^ tag, t, bytes) :: !json_rows;
        t
      in
      let ba = go "qry_ba" (Sectopk.Query.Batched 10) in
      let e = go "qry_e" Sectopk.Query.Elim in
      let f = go "qry_f" Sectopk.Query.Full in
      row "%12s %11.3fs %11.3fs %11.3fs@." (Relation.name rel) ba e f)
    (datasets ());
  List.iter (fun (tag, h) -> quantile_line (tag ^ " per-depth") h) hists;
  emit_json ~quantiles:hists ~id:"fig12" (List.rev !json_rows)
