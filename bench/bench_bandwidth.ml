(* Figure 13 and Table 3: communication accounting.

   fig13a: per-depth bandwidth grows O(m^2) and is independent of k;
   fig13b: total bandwidth grows with k through the halting depth;
   tab3:   per-dataset totals converted to latency under the paper's
           50 Mbps inter-cloud link model (k=20, m=4). *)

open Dataset
open Topk
open Bench_util

let fig13a () =
  header "fig13a: bandwidth per depth varying m (Qry_F, k=5)";
  row "%6s %16s %14s %14s@." "m" "KB/depth" "msgs/depth" "rounds/depth";
  let rel = Synthetic.paper_synthetic ~seed:"bench" ~rows:60 in
  List.iter
    (fun m ->
      let ctx = fresh_ctx () in
      let er, key = Sectopk.Scheme.encrypt ~s:ehl_s (Crypto.Rng.fork rng ~label:"enc") pub rel in
      let tk = Sectopk.Scheme.token key ~m_total:(Relation.n_attrs rel)
          (Scoring.sum_of (List.init m Fun.id)) ~k:5 in
      let depths = 4 in
      let _ =
        Sectopk.Query.run ctx er tk
          { Sectopk.Query.default_options with variant = Sectopk.Query.Full; max_depth = Some depths }
      in
      let ch = (Proto.Ctx.channel ctx) in
      row "%6d %16.1f %14d %14d@." m
        (float_of_int (Proto.Channel.bytes_total ch) /. 1024. /. float_of_int depths)
        (Proto.Channel.messages_total ch / depths)
        (Proto.Channel.rounds_total ch / depths))
    [ 2; 3; 4; 6; 8 ]

let fig13b () =
  header "fig13b: total bandwidth varying k (Qry_F, m=4)";
  row "%6s %16s %14s %14s@." "k" "total MB" "halt depth" "rounds";
  (* correlated data: the run halts naturally, so deeper scans for larger
     k drive the total bandwidth up, as in the paper *)
  let rel = List.nth (eval_datasets ~rows:60) 3 in
  List.iter
    (fun k ->
      let _, depth, bytes, rounds =
        run_query ~variant:Sectopk.Query.Full ~max_depth:40 rel
          (Scoring.sum_of [ 0; 1; 2; 3 ]) ~k ()
      in
      row "%6d %16.2f %14d %14d@." k (float_of_int bytes /. 1024. /. 1024.) depth rounds)
    [ 2; 5; 10; 20 ]

let tab3 () =
  header "tab3: bandwidth and 50 Mbps link latency per dataset (k=20, m=4, Qry_F)";
  row "%12s %8s %16s %10s %16s@." "dataset" "rows" "bandwidth (MB)" "rounds" "latency (s)";
  (* relative dataset sizes follow the paper's insurance < diabetes <
     pamap < synthetic ordering (scaled) *)
  List.iter2
    (fun rel rows ->
      ignore rows;
      let m = min 4 (Relation.n_attrs rel) in
      let ctx = fresh_ctx () in
      let er, key = Sectopk.Scheme.encrypt ~s:ehl_s (Crypto.Rng.fork rng ~label:"enc") pub rel in
      let tk = Sectopk.Scheme.token key ~m_total:(Relation.n_attrs rel)
          (Scoring.sum_of (List.init m Fun.id)) ~k:20 in
      let res =
        Sectopk.Query.run ctx er tk
          { Sectopk.Query.default_options with variant = Sectopk.Query.Full; max_depth = Some 40 }
      in
      ignore res;
      let ch = (Proto.Ctx.channel ctx) in
      row "%12s %8d %16.2f %10d %16.3f@." (Relation.name rel) (Relation.n_rows rel)
        (float_of_int (Proto.Channel.bytes_total ch) /. 1024. /. 1024.)
        (Proto.Channel.rounds_total ch)
        (Proto.Channel.latency_seconds ~rtt_ms:0. ~bandwidth_mbps:50. ch))
    [ List.nth (eval_datasets ~rows:30) 0;
      List.nth (eval_datasets ~rows:45) 1;
      List.nth (eval_datasets ~rows:60) 2;
      List.nth (eval_datasets ~rows:75) 3 ]
    [ 30; 45; 60; 75 ]
