(* Ablation benches for the design choices called out in DESIGN.md:
   - EncSort strategy: bitonic network (faithful to [7]) vs one-round
     blinded sort;
   - halting test: full NRA bound check vs the paper-literal (k+1)-only
     check;
   - blinding exponent width: full Z_n vs statistical.
   These quantify what each engineering decision buys or costs. *)

open Crypto
open Dataset
open Topk
open Bench_util

let sort_strategies () =
  header "ablation: EncSort strategies (time and bytes for one sort)";
  row "%6s %16s %16s %16s %16s@." "items" "network t(s)" "blinded t(s)" "network KB" "blinded KB";
  let keys = Prf.gen_keys rng ehl_s in
  let mk_items l =
    List.init l (fun i ->
        {
          Proto.Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys ("o" ^ string_of_int i);
          worst = Paillier.encrypt rng pub (Bignum.Nat.of_int (i * 37 mod 101));
          best = Paillier.encrypt rng pub (Bignum.Nat.of_int ((i * 37 mod 101) + 5));
          seen = [| Paillier.encrypt rng pub Bignum.Nat.one |];
        })
  in
  List.iter
    (fun l ->
      let items = mk_items l in
      let run strategy =
        let ctx = fresh_ctx () in
        let _, t = time (fun () -> Proto.Enc_sort.sort ctx ~strategy items) in
        (t, Proto.Channel.bytes_total (Proto.Ctx.channel ctx))
      in
      let tn, bn = run Proto.Enc_sort.Network in
      let tb, bb = run Proto.Enc_sort.Blinded in
      row "%6d %16.3f %16.3f %16.1f %16.1f@." l tn tb
        (float_of_int bn /. 1024.) (float_of_int bb /. 1024.))
    [ 8; 16; 32 ]

let halting_checks () =
  header "ablation: halting test `All (NRA-complete) vs `KthOnly (paper-literal)";
  row "%12s %14s %14s %12s %12s@." "dataset" "All t/depth" "Kth t/depth" "All depth" "Kth depth";
  List.iter
    (fun rel ->
      let run halting =
        let ctx = fresh_ctx () in
        let er, key = Sectopk.Scheme.encrypt ~s:ehl_s (Rng.fork rng ~label:"enc") pub rel in
        let tk = Sectopk.Scheme.token key ~m_total:(Relation.n_attrs rel) (Scoring.sum_of [ 0; 1; 2 ]) ~k:5 in
        let res =
          Sectopk.Query.run ctx er tk
            { Sectopk.Query.default_options with variant = Sectopk.Query.Elim; halting;
              max_depth = Some 25 }
        in
        (mean res.Sectopk.Query.depth_seconds, res.Sectopk.Query.halting_depth)
      in
      let ta, da = run `All in
      let tk_, dk = run `KthOnly in
      row "%12s %13.3fs %13.3fs %12d %12d@." (Relation.name rel) ta tk_ da dk)
    (eval_datasets ~rows:60)

let compare_protocols () =
  header "ablation: EncCompare instantiations (blinded sign vs DGK bitwise)";
  row "%14s %16s %16s@." "" "us per compare" "bytes";
  let run name f =
    let ctx = fresh_ctx () in
    let a = Paillier.encrypt rng pub (Bignum.Nat.of_int 123) in
    let b = Paillier.encrypt rng pub (Bignum.Nat.of_int 456) in
    let reps = 30 in
    let (), t = time (fun () -> for _ = 1 to reps do ignore (f ctx a b) done) in
    row "%14s %16.1f %16d@." name
      (1e6 *. t /. float_of_int reps)
      (Proto.Channel.bytes_total (Proto.Ctx.channel ctx) / reps)
  in
  run "blinded-sign" (fun ctx a b -> Proto.Enc_compare.leq ctx a b);
  run "dgk-16" (fun ctx a b -> Proto.Enc_compare.leq_dgk ctx ~bits:16 a b);
  run "dgk-32" (fun ctx a b -> Proto.Enc_compare.leq_dgk ctx ~bits:32 a b)

let blinding_width () =
  header "ablation: statistical blinding width (EHL+ diff cost)";
  row "%12s %16s@." "blind bits" "us per diff";
  let keys = Prf.gen_keys rng ehl_s in
  let a = Ehl.Ehl_plus.encode rng pub ~keys "x" and b = Ehl.Ehl_plus.encode rng pub ~keys "y" in
  List.iter
    (fun bits ->
      let reps = 50 in
      let (), t =
        time (fun () ->
            for _ = 1 to reps do
              ignore
                (match bits with
                | Some bb -> Ehl.Ehl_plus.diff ~blind_bits:bb rng pub a b
                | None -> Ehl.Ehl_plus.diff rng pub a b)
            done)
      in
      row "%12s %16.1f@."
        (match bits with Some b -> string_of_int b | None -> "full Z_n")
        (1e6 *. t /. float_of_int reps))
    [ Some 32; Some 48; Some 64; None ]

let parallel_encryption () =
  header "ablation: parallel database encryption (OCaml domains)";
  row "(host exposes %d core(s); speedup is bounded by that)@."
    (Domain.recommended_domain_count ());
  row "%10s %14s %10s@." "domains" "time (s)" "speedup";
  let rel = Synthetic.paper_synthetic ~seed:"par" ~rows:500 in
  let base = ref 0. in
  List.iter
    (fun domains ->
      let _, t =
        time (fun () ->
            Sectopk.Scheme.encrypt ~s:ehl_s ~domains (Rng.fork rng ~label:"par") pub rel)
      in
      if domains = 1 then base := t;
      row "%10d %14.2f %9.1fx@." domains t (!base /. t))
    [ 1; 2; 4; 8 ]

let run () =
  sort_strategies ();
  halting_checks ();
  compare_protocols ();
  blinding_width ();
  parallel_encryption ()
