(* Section 11.3: SecTopK vs the secure-kNN baseline of [21].

   The query "top-k by sum of squares" is answered by both systems on the
   same data (SecTopK over pre-squared attributes). Shape to reproduce:
   the kNN baseline's per-query cost grows linearly in n (it touches every
   record with O(n*m) secure multiplications and O(n*k*l) SMIN work),
   while SecTopK's cost follows the halting depth, which grows far slower
   than n — so the gap widens with n, as in the paper's 2000-records-in-
    2-hours vs 1M-records-in-30-minutes comparison. *)

open Dataset
open Topk
open Bench_util

let compare_at ~rows =
  let rel =
    Synthetic.generate ~seed:"knn" ~name:"pts" ~rows ~attrs:3
      (Synthetic.Correlated { base = Synthetic.Uniform { lo = 0; hi = 100 }; noise = 5 })
  in
  let squared =
    Relation.create ~name:"pts2"
      (Array.init rows (fun i -> Array.map (fun v -> v * v) (Relation.row rel i)))
  in
  (* SecTopK *)
  let (per_depth, depth, st_bytes, _), st_time =
    time (fun () ->
        run_query ~variant:Sectopk.Query.Elim ~max_depth:25 squared (Scoring.sum_of [ 0; 1; 2 ]) ~k:3 ())
  in
  ignore per_depth;
  (* kNN baseline with cost-faithful SMIN selection *)
  let ctx = fresh_ctx () in
  let db = Sknn.encrypt_db (Crypto.Rng.fork rng ~label:"knndb") pub rel in
  (* query point dominating the domain; squared distances fit in 17 bits *)
  let point = Array.make 3 200 in
  let _, knn_time = time (fun () -> Sknn.query_smin ctx db ~point ~k:3 ~bits:17) in
  let knn_bytes = Proto.Channel.bytes_total (Proto.Ctx.channel ctx) in
  (st_time, depth, st_bytes, knn_time, knn_bytes)

let sec11_3 () =
  header "sec11.3: SecTopK (sum-of-squares scoring) vs secure-kNN baseline";
  row "%8s %14s %10s %14s %14s %14s@." "n" "SecTopK t(s)" "depth" "SecTopK MB" "kNN t(s)" "kNN MB";
  List.iter
    (fun rows ->
      let st_time, depth, st_bytes, knn_time, knn_bytes = compare_at ~rows in
      row "%8d %14.2f %10d %14.2f %14.2f %14.2f@." rows st_time depth
        (float_of_int st_bytes /. 1048576.) knn_time (float_of_int knn_bytes /. 1048576.))
    [ 30; 60; 120 ]
