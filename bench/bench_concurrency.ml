(* Rounds and latency vs concurrent clients: N identical top-k queries
   drive one shared round scheduler (serve-s1's coalescing path) over a
   simulated-RTT link. The headline number is total S2 trips vs the
   single-client trip budget: dedicated transports pay N x the budget,
   merged frames keep the total near 1 x because the RTT sleep resumes
   every parked query at once and the all-parked rule ships the next
   merged trip as soon as the last one parks.

   --clients N        top of the sweep axis (1,2,4,... up to N)
   --no-coalescing    dedicated per-client transports instead (the N x
                      baseline; Loopback charges the same RTT per round)
   --rtt MICROS       link latency (default here: 10ms)

   The uncoalesced mode reports sum-of-rounds as its trip count: every
   per-client round is its own link round trip. Results are checked
   byte-identical to an in-process baseline in both modes. *)

open Dataset
open Topk
open Proto

let seed = "bench-conc"
let key_bits = Bench_util.key_bits
let rand_bits = Bench_util.rand_bits
let blind_bits = Bench_util.blind_bits
let k = 2

(* Big enough that the window-timeout rule alone never paces trips: on a
   busy machine the per-round S1 compute skew across clients stays well
   under this, so trips ship on the all-parked rule and a straggler
   cannot split a round into partial frames. *)
let window_us = 200_000

let rel =
  Synthetic.generate ~seed:"bench-conc" ~name:"conc" ~rows:12 ~attrs:3
    (Synthetic.Correlated { base = Synthetic.Zipf { skew = 1.2; max_value = 200 }; noise = 10 })

let hello = { Wire.seed; key_bits; rand_bits = Some rand_bits; obs = false }

(* Everything a query leaves behind, hashed: halting depth plus the raw
   top-k ciphertexts. Byte-identical across transports by construction;
   the digest pins it per bench run too. *)
let digest_of (res : Sectopk.Query.result) =
  let nat_str (c : Crypto.Paillier.ciphertext) = Bignum.Nat.to_string (c :> Bignum.Nat.t) in
  let parts =
    string_of_int res.Sectopk.Query.halting_depth
    :: List.concat_map
         (fun (it : Enc_item.scored) ->
           nat_str it.worst :: nat_str it.best :: Array.to_list (Array.map nat_str it.seen))
         res.Sectopk.Query.top
  in
  Digest.to_hex (Digest.string (String.concat "," parts))

module Latch = struct
  type t = { lock : Mutex.t; cond : Condition.t; mutable n : int }

  let create n = { lock = Mutex.create (); cond = Condition.create (); n }

  let arrive t =
    Mutex.lock t.lock;
    t.n <- t.n - 1;
    if t.n <= 0 then Condition.broadcast t.cond;
    Mutex.unlock t.lock

  let wait t =
    Mutex.lock t.lock;
    while t.n > 0 do
      Condition.wait t.cond t.lock
    done;
    Mutex.unlock t.lock
end

let counter_of reg name =
  match List.assoc_opt name (Obs.Registry.snapshot reg) with
  | Some (Obs.Registry.Counter v) -> v
  | _ -> 0

type point = {
  clients : int;
  trips : int;  (** total S2 link round trips during the query phase *)
  rounds_per_query : int;  (** per-client protocol rounds — mode-invariant *)
  p50_us : int;
  p95_us : int;
  p99_us : int;
}

(* One sweep point: [n] clients provision, open and build their contexts,
   sync on a latch, then run the query phase together. Trips are counted
   strictly between the latches so setup opens and teardown closes don't
   blur the budget; uncoalesced trips are the summed per-client rounds
   (one link trip per round on a dedicated transport). *)
let run_point ~coalescing ~rtt_us ~baseline n =
  let reg = Obs.Registry.create () in
  let sched =
    if not coalescing then None
    else begin
      let st = S2_server.mux_state ~make:(fun ~session:_ -> S2_server.of_hello hello) in
      Some (Sched.create ~window_us ~rtt_us ~registry:reg ~backend:(S2_server.handle_mux_ops st) ())
    end
  in
  let ready = Latch.create n
  and go = Latch.create 1
  and finished = Latch.create n
  and fin = Latch.create 1 in
  let lat = Array.make n 0. in
  let rounds = Array.make n 0 in
  let digests = Array.make n "" in
  let doms =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            let pub, sk, ctx_rng, data_rng = Ctx.provision ~seed ~key_bits ~rand_bits () in
            let session, mode =
              match sched with
              | Some s -> let id = Sched.open_query s in (Some id, Ctx.Mux (s, id))
              | None -> (None, Ctx.Loopback)
            in
            let ctx =
              Ctx.of_keys ~blind_bits ~mode
                ?rtt_us:(if coalescing then None else Some rtt_us)
                ctx_rng pub sk
            in
            ignore sk;
            let er, key = Sectopk.Scheme.encrypt ~s:Bench_util.ehl_s data_rng pub rel in
            let tk =
              Sectopk.Scheme.token key ~m_total:(Relation.n_attrs rel)
                (Scoring.sum_of [ 0; 1; 2 ]) ~k
            in
            Latch.arrive ready;
            Latch.wait go;
            let t0 = Unix.gettimeofday () in
            let res = Sectopk.Query.run ctx er tk Sectopk.Query.default_options in
            lat.(i) <- Unix.gettimeofday () -. t0;
            rounds.(i) <- Channel.rounds_total (Ctx.channel ctx);
            digests.(i) <- digest_of res;
            Latch.arrive finished;
            Latch.wait fin;
            match (sched, session) with
            | Some s, Some id -> Sched.close_query s id
            | _ -> ()))
  in
  Latch.wait ready;
  let trips0 = counter_of reg "coalesced_rounds" in
  Latch.arrive go;
  Latch.wait finished;
  let trips1 = counter_of reg "coalesced_rounds" in
  Latch.arrive fin;
  Array.iter Domain.join doms;
  Option.iter Sched.stop sched;
  Array.iter
    (fun d ->
      if d <> baseline then failwith "concurrency: query result diverged from baseline")
    digests;
  let h = Obs.Hist.create () in
  Array.iter (Obs.Hist.record_seconds h) lat;
  let q p = Obs.Hist.quantile h p in
  {
    clients = n;
    trips = (if coalescing then trips1 - trips0 else Array.fold_left ( + ) 0 rounds);
    rounds_per_query = rounds.(0);
    p50_us = q 0.5;
    p95_us = q 0.95;
    p99_us = q 0.99;
  }

let emit_json ~coalescing ~rtt_us ~single points =
  match !Bench_util.json_dir with
  | None -> ()
  | Some dir ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\n  \"id\": \"concurrency\",\n  \"params\": { \"key_bits\": %d, \"rand_bits\": %d, \
          \"rtt_us\": %d, \"window_us\": %d, \"coalescing\": %b },\n\
          \  \"single_client_rounds\": %d,\n  \"results\": [\n"
         key_bits rand_bits rtt_us window_us coalescing single);
    List.iteri
      (fun i p ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"clients\": %d, \"trips\": %d, \"rounds_per_query\": %d, \"p50_us\": %d, \
              \"p95_us\": %d, \"p99_us\": %d }%s\n"
             p.clients p.trips p.rounds_per_query p.p50_us p.p95_us p.p99_us
             (if i = List.length points - 1 then "" else ",")))
      points;
    Buffer.add_string buf "  ]\n}\n";
    let path = Filename.concat dir "BENCH_concurrency.json" in
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc

let run () =
  let rtt_us = Option.value ~default:10_000 !Bench_util.rtt_us in
  let coalescing = !Bench_util.coalescing in
  let top = max 1 !Bench_util.clients in
  let axis =
    let std = List.filter (fun n -> n <= top) [ 1; 2; 4; 8 ] in
    if List.mem top std then std else std @ [ top ]
  in
  Bench_util.header
    (Printf.sprintf "concurrency: S2 trips & latency vs clients (%s, rtt %.1fms)"
       (if coalescing then "coalesced" else "dedicated transports")
       (float_of_int rtt_us /. 1000.));
  (* ground truth for every client's digest: the plain in-process path *)
  let baseline =
    let pub, sk, ctx_rng, data_rng = Ctx.provision ~seed ~key_bits ~rand_bits () in
    let ctx = Ctx.of_keys ~blind_bits ~mode:Ctx.Inproc ctx_rng pub sk in
    let er, key = Sectopk.Scheme.encrypt ~s:Bench_util.ehl_s data_rng pub rel in
    let tk =
      Sectopk.Scheme.token key ~m_total:(Relation.n_attrs rel) (Scoring.sum_of [ 0; 1; 2 ]) ~k
    in
    ignore sk;
    digest_of (Sectopk.Query.run ctx er tk Sectopk.Query.default_options)
  in
  let points = List.map (run_point ~coalescing ~rtt_us ~baseline) axis in
  Bench_util.row "%8s %8s %12s %13s %9s %9s %9s@." "clients" "trips" "trips/query"
    "rounds/query" "p50 ms" "p95 ms" "p99 ms";
  List.iter
    (fun p ->
      Bench_util.row "%8d %8d %12.1f %13d %9.1f %9.1f %9.1f@." p.clients p.trips
        (float_of_int p.trips /. float_of_int p.clients)
        p.rounds_per_query
        (float_of_int p.p50_us /. 1000.)
        (float_of_int p.p95_us /. 1000.)
        (float_of_int p.p99_us /. 1000.))
    points;
  let single = (List.hd points).trips in
  (match List.rev points with
  | last :: _ when coalescing && last.clients > 1 ->
    Bench_util.row "%d clients: %d trips vs 2x single-client budget %d -- %s@." last.clients
      last.trips (2 * single)
      (if last.trips <= 2 * single then "coalescing holds" else "OVER BUDGET")
  | _ -> ());
  Bench_util.row "results: every client byte-identical to the in-process baseline@.";
  emit_json ~coalescing ~rtt_us ~single points
