(* Bechamel micro-benchmarks of the crypto substrate: the per-operation
   costs every protocol-level number decomposes into. *)

open Bignum
open Crypto
open Bench_util

let djpub = Damgard_jurik.public_of_paillier pub

let tests () =
  let x = Rng.nat_below rng pub.Paillier.n in
  let c = Paillier.encrypt rng pub x in
  let e2 = Damgard_jurik.encrypt rng djpub x in
  let keys = Prf.gen_keys rng ehl_s in
  let ehl_a = Ehl.Ehl_plus.encode rng pub ~keys "a" in
  let ehl_b = Ehl.Ehl_plus.encode rng pub ~keys "b" in
  let open Bechamel in
  Test.make_grouped ~name:"crypto"
    [ Test.make ~name:"paillier_encrypt" (Staged.stage (fun () -> ignore (Paillier.encrypt rng pub x)));
      Test.make ~name:"paillier_decrypt" (Staged.stage (fun () -> ignore (Paillier.decrypt sk c)));
      Test.make ~name:"paillier_add" (Staged.stage (fun () -> ignore (Paillier.add pub c c)));
      Test.make ~name:"paillier_rerandomize"
        (Staged.stage (fun () -> ignore (Paillier.rerandomize rng pub c)));
      Test.make ~name:"dj_encrypt" (Staged.stage (fun () -> ignore (Damgard_jurik.encrypt rng djpub x)));
      Test.make ~name:"dj_scalar_mul_ct"
        (Staged.stage (fun () -> ignore (Damgard_jurik.scalar_mul_ct djpub e2 c)));
      Test.make ~name:"ehl_plus_diff"
        (Staged.stage (fun () -> ignore (Ehl.Ehl_plus.diff ~blind_bits rng pub ehl_a ehl_b)));
      Test.make ~name:"sha256_1kb"
        (Staged.stage (let buf = String.make 1024 'x' in fun () -> ignore (Sha256.digest buf)));
      Test.make ~name:"modexp_n3_256b_exp"
        (Staged.stage (fun () ->
             ignore
               (Modular.pow
                  (Nat.rem x djpub.Damgard_jurik.n3)
                  (Nat.mul pub.Paillier.n Nat.two)
                  ~m:djpub.Damgard_jurik.n3)))
    ]

let run () =
  header "micro: crypto substrate op costs (bechamel, ns/op via OLS)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] (tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort compare
    |> List.filter_map (fun (name, v) ->
           match Analyze.OLS.estimates v with
           | Some [ ns ] ->
             row "%-30s %12.2f us/op@." name (ns /. 1000.);
             Some (name, ns /. 1e9, 0)
           | _ ->
             row "%-30s (no estimate)@." name;
             None)
  in
  emit_json ~id:"micro" rows
