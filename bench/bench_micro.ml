(* Micro-benchmarks of the crypto substrate: the per-operation costs
   every protocol-level number decomposes into.

   Estimator: each datapoint is the minimum per-op mean over several
   fixed-size trials (batches calibrated to a few milliseconds). These
   operations are deterministic pure CPU, so their unloaded cost is the
   lower envelope of the trial means; a regression fit over all samples
   (the previous bechamel OLS) absorbs host noise from neighbors on a
   shared single-core VM and ran 1.4-2x above the envelope. See
   EXPERIMENTS.md for the methodology note. *)

open Bignum
open Crypto
open Bench_util

let djpub = Damgard_jurik.public_of_paillier pub

(* min-of-trials per-op nanoseconds *)
let time_ns f =
  let batch n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    Unix.gettimeofday () -. t0
  in
  (* warm caches/tables, then grow the batch until it runs >= 3 ms *)
  let rec calibrate n = if batch n >= 0.003 then n else calibrate (n * 4) in
  let n = calibrate 1 in
  let best = ref infinity in
  for _ = 1 to 9 do
    let per = batch n /. float_of_int n in
    if per < !best then best := per
  done;
  !best *. 1e9

(* Deterministic odd modulus of exactly [bits] bits (top bit set) for the
   per-width Montgomery datapoints; RSA-width to triple-width as in a
   full-size deployment (the protocol suite above runs scaled 128-bit
   keys, see bench_util). *)
let modulus_of_bits bits =
  let m = Rng.nat_bits rng bits in
  let m = Nat.add m (Nat.shift_left Nat.one (bits - 1)) in
  if Nat.is_even m then Nat.succ m else m

(* per-width Montgomery mul and modexp (256-bit exponent) datapoints *)
let width_tests () =
  List.concat_map
    (fun bits ->
      let m = modulus_of_bits bits in
      let ctx = Option.get (Modular.mont_ctx m) in
      let a = Montgomery.to_mont ctx (Rng.nat_below rng m) in
      let b = Montgomery.to_mont ctx (Rng.nat_below rng m) in
      let e = Rng.nat_bits rng 256 in
      let x = Rng.nat_below rng m in
      [ ( Printf.sprintf "mont_mul_%d" bits,
          fun () -> ignore (Montgomery.mul_resident ctx a b) );
        ( Printf.sprintf "modexp_%d_256b_exp" bits,
          fun () -> ignore (Modular.pow x e ~m) ) ])
    [ 1024; 2048; 3072 ]

(* simultaneous double exponentiation vs two pows and a mul, over n^3 *)
let multi_pow_tests () =
  let m = djpub.Damgard_jurik.n3 in
  let a = Rng.nat_below rng m and b = Rng.nat_below rng m in
  let e1 = Rng.nat_bits rng 128 and e2 = Rng.nat_bits rng 128 in
  [ ( "multi_pow_2bases_128b",
      fun () -> ignore (Modular.multi_pow [ (a, e1); (b, e2) ] ~m) );
    ( "two_pows_mul_128b",
      fun () ->
        ignore (Modular.mul (Modular.pow a e1 ~m) (Modular.pow b e2 ~m) ~m) ) ]

let tests () =
  let x = Rng.nat_below rng pub.Paillier.n in
  let c = Paillier.encrypt rng pub x in
  let e2 = Damgard_jurik.encrypt rng djpub x in
  let keys = Prf.gen_keys rng ehl_s in
  let ehl_a = Ehl.Ehl_plus.encode rng pub ~keys "a" in
  let ehl_b = Ehl.Ehl_plus.encode rng pub ~keys "b" in
  [ ("paillier_encrypt", fun () -> ignore (Paillier.encrypt rng pub x));
    ("paillier_decrypt", fun () -> ignore (Paillier.decrypt sk c));
    ("paillier_add", fun () -> ignore (Paillier.add pub c c));
    ("paillier_rerandomize", fun () -> ignore (Paillier.rerandomize rng pub c));
    ("dj_encrypt", fun () -> ignore (Damgard_jurik.encrypt rng djpub x));
    ("dj_scalar_mul_ct", fun () -> ignore (Damgard_jurik.scalar_mul_ct djpub e2 c));
    ("ehl_plus_diff", fun () -> ignore (Ehl.Ehl_plus.diff ~blind_bits rng pub ehl_a ehl_b));
    ( "sha256_1kb",
      let buf = String.make 1024 'x' in
      fun () -> ignore (Sha256.digest buf) );
    ( "modexp_n3_256b_exp",
      fun () ->
        ignore
          (Modular.pow
             (Nat.rem x djpub.Damgard_jurik.n3)
             (Nat.mul pub.Paillier.n Nat.two)
             ~m:djpub.Damgard_jurik.n3) )
  ]
  @ width_tests () @ multi_pow_tests ()

let run () =
  header "micro: crypto substrate op costs (ns/op, min of 9 trials)";
  let rows =
    List.map
      (fun (name, f) ->
        let name = "crypto/" ^ name in
        let ns = time_ns f in
        row "%-30s %12.2f us/op@." name (ns /. 1000.);
        (name, ns /. 1e9, 0))
      (tests ())
  in
  let rows = List.sort compare rows in
  emit_json ~id:"micro" rows
