(* Shared infrastructure for the experiment harness: key material, scaled
   dataset suite, timing helpers and table printing.

   Scale notes (see DESIGN.md): the paper ran 0.1M-1M-row datasets with
   GMP-backed C++ on a 24-core Xeon; this harness runs a pure-OCaml
   simulator, so row counts are scaled down (a few hundred rows) and the
   crypto uses 128-bit moduli with shortened noise — the same parameter
   regime the paper's own EHL+ FPR analysis uses. Reported shapes
   (linearity in k / m / n, variant orderings, bandwidth growth) are the
   reproduction targets, not absolute times. *)

open Crypto
open Dataset

let key_bits = 128
let rand_bits = 96
let blind_bits = 48
let ehl_s = 4

let rng = Rng.create ~seed:"bench"
let pub, sk = Paillier.keygen ~rand_bits rng ~bits:key_bits

(* --transport inproc|loopback: which Ctx transport every benchmark
   context uses (the codec/transport overhead axis; socket mode is
   exercised by the CLI and tests, not the in-process harness). *)
let transport = ref Proto.Ctx.Inproc

(* --rtt MICROS: simulated per-round latency injected by the Loopback
   transport — makes round counts visible as wall-clock, so batching wins
   show up in the timed columns, not only in the rounds columns. *)
let rtt_us : int option ref = ref None

(* --no-batching: force one frame per request (the historical framing) so
   the --rtt sweep can price the round collapse as wall-clock. *)
let batching = ref true

(* --clients N: top of the concurrency sweep axis — the "concurrency"
   experiment runs 1, 2, 4, ... up to N concurrent query clients. *)
let clients = ref 8

(* --no-coalescing: run the concurrency sweep over dedicated per-client
   transports instead of the shared round scheduler (the N x baseline). *)
let coalescing = ref true

let fresh_ctx () =
  Proto.Ctx.with_batching
    (Proto.Ctx.of_keys ~blind_bits ~mode:!transport ?rtt_us:!rtt_us
       (Rng.fork rng ~label:"ctx") pub sk)
    !batching

(* The four evaluation datasets of Section 11, scaled.

   Scaled-down stand-ins additionally carry cross-attribute rank
   correlation: on the paper's real datasets NRA halts after a small
   fraction of the rows (hundreds to thousands out of 100k-1M), and
   correlation is what produces that proportion at a few dozen rows.
   Without it, a 60-row uniform relation would be scanned almost fully and
   the halting-depth dependence on k (the driver of Figs 9-11's shapes)
   would be censored by the depth cap. *)
let eval_datasets ~rows =
  let gen name attrs base noise =
    Synthetic.generate ~seed:"bench" ~name ~rows ~attrs (Synthetic.Correlated { base; noise })
  in
  [ gen "insurance" 13 (Synthetic.Zipf { skew = 1.2; max_value = 400 }) 12;
    gen "diabetes" 10 (Synthetic.Gaussian { mean = 450.; stddev = 250.; max_value = 1200 }) 40;
    gen "pamap" 15 (Synthetic.Gaussian { mean = 2400.; stddev = 900.; max_value = 5000 }) 150;
    gen "synthetic" 10 (Synthetic.Gaussian { mean = 500.; stddev = 150.; max_value = 1000 }) 30 ]

(* --domains N: width of the query-side domain pool (results and traces
   are identical for every setting; only wall-clock changes). *)
let domains = ref 1

(* Harness-wide observability: main.ml enables Obs and installs this
   collector around every experiment, so protocol entry points defer to
   it ([Obs.with_default]) and op counts accumulate here. [mark] is taken
   before each experiment; [emit_json] reports the delta. *)
let collector = Obs.Collector.create ()

let last_mark = ref (Obs.Metrics.snapshot (Obs.Collector.metrics collector))

let mark () = last_mark := Obs.Metrics.snapshot (Obs.Collector.metrics collector)

let ops_since_mark () = Obs.Metrics.sub (Obs.Collector.metrics collector) !last_mark

(* --json DIR: also write every supporting experiment's numbers to
   DIR/BENCH_<id>.json for machine comparison across commits. *)
let json_dir : string option ref = ref None

(* rows: (name, seconds, bytes) — bytes 0 when not applicable.
   [quantiles] names latency histograms (microsecond samples) emitted as
   a "latency_quantiles" block next to the min/mean-style "results"; the
   two answer different questions (throughput estimate vs distribution)
   and the historical estimator stays untouched. *)
let emit_json ?(quantiles = []) ~id rows =
  match !json_dir with
  | None -> ()
  | Some dir ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\n  \"id\": \"%s\",\n  \"params\": { \"key_bits\": %d, \"rand_bits\": %d, \
          \"blind_bits\": %d, \"domains\": %d, \"rtt_us\": %d },\n"
         id key_bits rand_bits blind_bits !domains
         (Option.value ~default:0 !rtt_us));
    let ops = ops_since_mark () in
    Buffer.add_string buf "  \"ops\": {";
    List.iteri
      (fun i (op, v) ->
        Buffer.add_string buf
          (Printf.sprintf "%s \"%s\": %d" (if i = 0 then "" else ",") (Obs.Metrics.name op) v))
      (Obs.Metrics.to_alist ops);
    Buffer.add_string buf " },\n";
    (match List.filter (fun (_, h) -> not (Obs.Hist.is_empty h)) quantiles with
    | [] -> ()
    | qs ->
      Buffer.add_string buf "  \"latency_quantiles\": {\n";
      List.iteri
        (fun i (name, h) ->
          Buffer.add_string buf
            (Printf.sprintf
               "    \"%s\": { \"count\": %d, \"p50_us\": %d, \"p95_us\": %d, \"p99_us\": %d, \
                \"max_us\": %d }%s\n"
               name (Obs.Hist.count h)
               (Obs.Hist.quantile h 0.5)
               (Obs.Hist.quantile h 0.95)
               (Obs.Hist.quantile h 0.99)
               (Obs.Hist.max_value h)
               (if i = List.length qs - 1 then "" else ",")))
        qs;
      Buffer.add_string buf "  },\n");
    Buffer.add_string buf "  \"results\": [\n";
    List.iteri
      (fun i (name, seconds, bytes) ->
        Buffer.add_string buf
          (Printf.sprintf "    { \"name\": \"%s\", \"seconds\": %.9f, \"bytes\": %d }%s\n"
             name seconds bytes
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" id) in
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc

let time = Obs.Timer.time

let mean a = if Array.length a = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let header title = Format.printf "@.=== %s ===@." title

let row fmt = Format.printf fmt

(* run one secure query and report (avg s/depth, halting depth, bytes);
   [hist] additionally collects every per-depth wall time as a sample,
   for quantile reporting over whole figure sweeps *)
let run_query ?(sort = Proto.Enc_sort.Blinded) ?max_depth ?hist ~variant rel scoring ~k () =
  let ctx = fresh_ctx () in
  let er, key = Sectopk.Scheme.encrypt ~s:ehl_s (Rng.fork rng ~label:"enc") pub rel in
  let tk = Sectopk.Scheme.token key ~m_total:(Relation.n_attrs rel) scoring ~k in
  let options =
    { Sectopk.Query.default_options with variant; sort; max_depth; domains = !domains }
  in
  let res = Sectopk.Query.run ctx er tk options in
  Option.iter
    (fun h -> Array.iter (Obs.Hist.record_seconds h) res.Sectopk.Query.depth_seconds)
    hist;
  let per_depth = mean res.Sectopk.Query.depth_seconds in
  let bytes = Proto.Channel.bytes_total (Proto.Ctx.channel ctx) in
  let rounds = Proto.Channel.rounds_total (Proto.Ctx.channel ctx) in
  (per_depth, res.Sectopk.Query.halting_depth, bytes, rounds)

(* one-line per-depth latency distribution under a figure's table *)
let quantile_line label h =
  if not (Obs.Hist.is_empty h) then
    row "%s: p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  (%d samples)@." label
      (float_of_int (Obs.Hist.quantile h 0.5) /. 1000.)
      (float_of_int (Obs.Hist.quantile h 0.95) /. 1000.)
      (float_of_int (Obs.Hist.quantile h 0.99) /. 1000.)
      (float_of_int (Obs.Hist.max_value h) /. 1000.)
      (Obs.Hist.count h)
