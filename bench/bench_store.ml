(* Serving-path costs the paper's in-memory evaluation does not cover:
   index build + atomic publish, size on disk, and cold-open vs
   warm-cache latency of a query answered through the lazily backed
   on-disk relation (lib/store). The bytes column reports what each
   phase actually touched: disk footprint for the build, block reads
   (Obs Store_read_bytes) for the queries — the cold/warm gap and the
   read volume staying below the footprint are the shapes to keep. *)

open Crypto
open Dataset
open Topk
open Bench_util

let read_bytes () =
  Obs.Metrics.get (Obs.Collector.metrics collector) Obs.Metrics.Store_read_bytes

let query_options () = { Sectopk.Query.default_options with domains = !domains }

let run () =
  header "store: durable index (build/publish, cold-open vs warm-cache query)";
  let rows = 60 and attrs = 4 in
  let rel =
    Synthetic.generate ~seed:"bench-store" ~name:"store" ~rows ~attrs
      (Synthetic.Correlated
         { base = Synthetic.Gaussian { mean = 500.; stddev = 150.; max_value = 1000 };
           noise = 30 })
  in
  let er, key = Sectopk.Scheme.encrypt ~s:ehl_s (Rng.fork rng ~label:"store-enc") pub rel in
  let tk =
    Sectopk.Scheme.token key ~m_total:attrs (Scoring.sum_of (List.init attrs Fun.id)) ~k:5
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_store_%d" (Unix.getpid ()))
  in
  let (), t_build = time (fun () -> Store.build ~dir pub er) in
  let st, t_open = time (fun () -> Store.open_index ~dir pub) in
  let disk = Store.disk_bytes st in
  let query relation =
    let ctx = fresh_ctx () in
    ignore (Sectopk.Query.run ctx relation tk (query_options ()))
  in
  let b0 = read_bytes () in
  let (), t_cold = time (fun () -> query (Store.relation st)) in
  let cold_bytes = read_bytes () - b0 in
  let b1 = read_bytes () in
  let (), t_warm = time (fun () -> query (Store.relation st)) in
  let warm_bytes = read_bytes () - b1 in
  (* extra warm trials feed a latency histogram: the single-shot seconds
     column above stays the committed estimator, the quantiles describe
     the steady-state distribution *)
  let warm_hist = Obs.Hist.create () in
  Obs.Hist.record_seconds warm_hist t_warm;
  for _ = 2 to 5 do
    let (), t = time (fun () -> query (Store.relation st)) in
    Obs.Hist.record_seconds warm_hist t
  done;
  let (), t_mem = time (fun () -> query er) in
  Store.close st;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ());
  row "%16s %12s %12s@." "phase" "seconds" "bytes";
  let results =
    [ ("build_publish", t_build, disk);
      ("open_validate", t_open, 0);
      ("cold_query", t_cold, cold_bytes);
      ("warm_query", t_warm, warm_bytes);
      ("memory_query", t_mem, 0) ]
  in
  List.iter (fun (name, t, b) -> row "%16s %12.4f %12d@." name t b) results;
  row "halting depth reads a prefix: cold read %d of %d on-disk bytes@." cold_bytes disk;
  quantile_line "warm query latency" warm_hist;
  emit_json ~quantiles:[ ("warm_query", warm_hist) ] ~id:"store" results
