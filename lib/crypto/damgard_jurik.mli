(** Damgård–Jurik generalised Paillier (PKC'01) with [s = 2].

    Plaintext space [Z_{n^2}], ciphertext space [Z_{n^3}^*]. Because a
    Paillier ciphertext is an element of [Z_{n^2}], a DJ ciphertext can
    carry a Paillier ciphertext as its plaintext — the "layered"
    encryption [E2(Enc(m))] the paper builds RecoverEnc, SecWorst, SecBest
    and SecUpdate on. The single homomorphic property the construction
    relies on (Section 3.3) is

    [scalar_mul (enc2 x) y ~ enc2 (x * y mod n^2)]

    so that [E2(Enc(a))^(Enc(b)) = E2(Enc(a) * Enc(b)) = E2(Enc(a+b))]. *)

open Bignum

type public = private {
  n : Nat.t;
  n2 : Nat.t;
  n3 : Nat.t;
  h2 : Nat.t;  (** fixed random n^2-th residue, base for shortened noise *)
  rand_bits : int option;  (** inherited from the Paillier public key *)
}
type secret
type ciphertext = private Nat.t

(** Derive DJ keys from a Paillier key pair (same [n]). *)
val of_paillier : Paillier.public -> Paillier.secret option -> public * secret option

val public_of_paillier : Paillier.public -> public

(** [encrypt rng pub x] encrypts [x mod n^2]: [(1+n)^x * r^(n^2) mod n^3]. *)
val encrypt : Rng.t -> public -> Nat.t -> ciphertext

(** Encrypt a Paillier ciphertext as the DJ plaintext (layered). *)
val encrypt_layered : Rng.t -> public -> Paillier.ciphertext -> ciphertext

val decrypt : secret -> ciphertext -> Nat.t

(** Decrypt the outer DJ layer, recovering the inner Paillier ciphertext. *)
val decrypt_layered : secret -> Paillier.public -> ciphertext -> Paillier.ciphertext

val add : public -> ciphertext -> ciphertext -> ciphertext
val scalar_mul : public -> ciphertext -> Nat.t -> ciphertext

(** [scalar_mul_ct pub c inner] is [c ^ (inner as integer)] — the layered
    homomorphism with a Paillier ciphertext as scalar. *)
val scalar_mul_ct : public -> ciphertext -> Paillier.ciphertext -> ciphertext

(** [scalar_mul_many pub [(c_1, k_1); ...]] is [Enc2(sum k_i * x_i)] — the
    fold of {!scalar_mul} and {!add} collapsed into one simultaneous
    multi-exponentiation over [n^3] (shared squaring chain, same ciphertext
    bytes as the fold). Counts one Dj_mul per pair. *)
val scalar_mul_many : public -> (ciphertext * Nat.t) list -> ciphertext

(** {!scalar_mul_many} with layered Paillier ciphertexts as scalars. *)
val scalar_mul_ct_many : public -> (ciphertext * Paillier.ciphertext) list -> ciphertext

val neg : public -> ciphertext -> ciphertext
val sub : public -> ciphertext -> ciphertext -> ciphertext
val rerandomize : Rng.t -> public -> ciphertext -> ciphertext

(** One noise factor [r^{n^2} mod n^3]; precompute with {!Noise_pool}. *)
val noise : Rng.t -> public -> Bignum.Nat.t

(** Re-randomize with a precomputed {!noise} factor: one modular
    multiplication. *)
val rerandomize_with : public -> noise:Bignum.Nat.t -> ciphertext -> ciphertext

(** Deterministic encryption with unit randomness — for homomorphic
    constants whose value is blinded downstream; NOT semantically secure
    on its own. *)
val trivial : public -> Bignum.Nat.t -> ciphertext

(** Counterpart of {!Paillier.precompute} for the layer-2 key: the
    Montgomery context for [n^3] plus the comb for [h2] under shortened
    noise. Idempotent. *)
val precompute : public -> unit

val to_nat : ciphertext -> Nat.t
val of_nat : public -> Nat.t -> ciphertext
val ciphertext_bytes : public -> int
val equal_ct : ciphertext -> ciphertext -> bool
