(** Paillier public-key cryptosystem (Paillier, EUROCRYPT'99).

    Additively homomorphic over [Z_n]: [add (enc x) (enc y) ~ enc (x+y)] and
    [scalar_mul (enc x) a ~ enc (a*x)]. Encryption is probabilistic; two
    encryptions of the same plaintext are unlinkable.

    We use the standard [g = n+1] variant, so encryption is
    [(1 + m*n) * r^n mod n^2] — one modular exponentiation. *)

open Bignum

type public = private {
  n : Nat.t;
  n2 : Nat.t;
  key_bits : int;
  h : Nat.t;  (** a fixed random n-th residue, base for shortened noise *)
  rand_bits : int option;
      (** When [Some b], encryption noise is [h^rho] with a [b]-bit [rho]
          instead of [r^n] with uniform [r] — the standard
          shortened-randomness optimization (secure under the subgroup
          indistinguishability assumption); [None] = textbook Paillier. *)
}

type secret
(** Holds [lambda = lcm(p-1, q-1)] and [mu = lambda^-1 mod n]. *)

type ciphertext = private Nat.t
(** An element of [Z_{n^2}^*]. The constructor is private: ciphertexts are
    only created by this module's functions (or [of_nat] for
    deserialization). *)

(** [keygen rng ~bits] generates a key pair with an exactly [bits]-wide
    modulus [n] (two [bits/2]-bit primes). [bits >= 16]. [rand_bits]
    enables shortened encryption noise (see {!type:public}). *)
val keygen : ?rand_bits:int -> Rng.t -> bits:int -> public * secret

(** Adjust the noise policy of an existing key (updates the secret's
    embedded public too). *)
val with_rand_bits : public -> int option -> public

val public_of_secret : secret -> public

(** Exposes [p], [q], [lambda] for the Damgård–Jurik extension. *)
val secret_params : secret -> Nat.t * Nat.t * Nat.t

(** [encrypt rng pub m] encrypts [m mod n]. *)
val encrypt : Rng.t -> public -> Nat.t -> ciphertext

val encrypt_int : Rng.t -> public -> int -> ciphertext
val decrypt : secret -> ciphertext -> Nat.t

(** Decrypts and maps residues above [n/2] to negative integers (the
    standard signed encoding used by the comparison sub-protocols). *)
val decrypt_signed : secret -> ciphertext -> Bigint.t

(** Homomorphic addition: product of ciphertexts. *)
val add : public -> ciphertext -> ciphertext -> ciphertext

(** Homomorphic scalar multiplication: ciphertext exponentiation. *)
val scalar_mul : public -> ciphertext -> Nat.t -> ciphertext

(** [scalar_mul_many pub [(c_1, k_1); ...]] is the homomorphic weighted
    sum [enc (sum_i k_i * m_i)], computed as one interleaved
    simultaneous multi-exponentiation (a single shared squaring chain
    instead of one full ladder per term). Counts as [List.length pairs]
    scalar multiplications. *)
val scalar_mul_many : public -> (ciphertext * Nat.t) list -> ciphertext

(** [neg pub c] encrypts the additive inverse ([c^(n-1)]). *)
val neg : public -> ciphertext -> ciphertext

(** [sub pub a b ~ enc (a - b)] in [Z_n]. *)
val sub : public -> ciphertext -> ciphertext -> ciphertext

(** Fresh randomness on an existing ciphertext (multiply by an encryption
    of zero); the plaintext is unchanged but the ciphertext is unlinkable
    to its origin. *)
val rerandomize : Rng.t -> public -> ciphertext -> ciphertext

(** One noise factor [r^n mod n^2] — what {!encrypt} and {!rerandomize}
    multiply in; precompute with {!Noise_pool}. *)
val noise : Rng.t -> public -> Bignum.Nat.t

(** [rerandomize_with pub ~noise c] — re-randomize with a precomputed
    {!noise} factor: a single modular multiplication. *)
val rerandomize_with : public -> noise:Bignum.Nat.t -> ciphertext -> ciphertext

(** [encrypt_with pub ~noise m] encrypts with a precomputed {!noise}
    factor — byte-identical to [encrypt] when the factor came from the
    same rng position, at the cost of one modular multiplication. *)
val encrypt_with : public -> noise:Bignum.Nat.t -> Nat.t -> ciphertext

(** Build the per-key tables ahead of the first encryption: Montgomery
    contexts for [n] and [n^2] and, under shortened noise, the
    fixed-base comb for [h]. Idempotent; servers call it at startup so
    no query pays the one-time cost. *)
val precompute : public -> unit

(** Deterministic trivial encryption with randomness 1 — only for tests and
    for homomorphic constants; NOT semantically secure. *)
val trivial : public -> Nat.t -> ciphertext

val to_nat : ciphertext -> Nat.t

(** [of_nat pub c] validates [c < n^2] (deserialization). *)
val of_nat : public -> Nat.t -> ciphertext

(** Serialized ciphertext size in bytes (fixed for a given key). *)
val ciphertext_bytes : public -> int

(** Size of a serialized plaintext in bytes. *)
val plaintext_bytes : public -> int

val equal_ct : ciphertext -> ciphertext -> bool
val pp_ct : Format.formatter -> ciphertext -> unit
