open Bignum

(* A pool of precomputed re-randomization noise (r^n mod n^2 for
   Paillier, r^{n^2} mod n^3 for Damgard-Jurik): the one modular
   exponentiation of a re-randomization moves off the query path, leaving
   a single modular multiplication per call.

   Determinism: values are drawn sequentially from the pool's root
   generator and produced strictly in index order (production is
   serialized by the [producing] flag), so value [i] is a pure function
   of the root seed and the stream a protocol run sees does not depend
   on whether (or how far ahead) the background filler ran. Whoever
   produces (filler domain or a starved consumer) owns the root
   generator for the duration of its draw, and results enter the FIFO
   in index order.

   The generator runs under a throwaway Obs collector: precomputation
   cost must not surface in a protocol's counters at a timing-dependent
   place. Consumption is accounted instead — one [Rerand_pool] bump per
   [take].

   The filler uses a real domain, so the no-live-domain-at-fork invariant
   applies (see lib/core/pool.ml): [quiesce] every started filler before
   anything calls [Unix.fork]. Pools start with the filler off; sockets'
   S2 daemons (which never fork again) start one in [serve_fd]. *)

type t = {
  gen : Rng.t -> Nat.t;
  root : Rng.t;
  mutex : Mutex.t;
  cond : Condition.t;
  values : Nat.t Queue.t;
  mutable producing : bool;
  depth : int; (* filler keeps at least this many values banked *)
  mutable filler : unit Domain.t option;
  mutable stop : bool;
}

let create ?(depth = 64) rng ~label gen =
  {
    gen;
    root = Rng.fork rng ~label;
    mutex = Mutex.create ();
    cond = Condition.create ();
    values = Queue.create ();
    producing = false;
    depth;
    filler = None;
    stop = false;
  }

(* Requires the lock held and [producing = false]; computes the next
   value with the lock released, pushes it, returns with the lock held.
   The [producing] flag gives the producer exclusive ownership of the
   root generator while the lock is down. *)
let produce_locked t =
  t.producing <- true;
  Mutex.unlock t.mutex;
  let v = Obs.with_collector (Obs.Collector.create ()) (fun () -> t.gen t.root) in
  Mutex.lock t.mutex;
  Queue.push v t.values;
  t.producing <- false;
  Condition.broadcast t.cond

let take t =
  Obs.bump Obs.Metrics.Rerand_pool;
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.values) then begin
      let v = Queue.pop t.values in
      (* below the low-water mark again: wake the filler *)
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      v
    end
    else if t.producing then begin
      Condition.wait t.cond t.mutex;
      next ()
    end
    else begin
      produce_locked t;
      next ()
    end
  in
  next ()

let prefill t n =
  Mutex.lock t.mutex;
  while Queue.length t.values < n do
    if t.producing then Condition.wait t.cond t.mutex else produce_locked t
  done;
  Mutex.unlock t.mutex

let banked t =
  Mutex.lock t.mutex;
  let n = Queue.length t.values in
  Mutex.unlock t.mutex;
  n

let filler_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else if Queue.length t.values >= t.depth || t.producing then begin
      Condition.wait t.cond t.mutex;
      loop ()
    end
    else begin
      produce_locked t;
      loop ()
    end
  in
  loop ()

let start_filler t =
  Mutex.lock t.mutex;
  match t.filler with
  | Some _ -> Mutex.unlock t.mutex
  | None ->
    t.stop <- false;
    t.filler <- Some (Domain.spawn (fun () -> filler_loop t));
    Mutex.unlock t.mutex

let quiesce t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  let task = t.filler in
  t.filler <- None;
  Mutex.unlock t.mutex;
  Option.iter Domain.join task
