open Bignum

type public = {
  n : Nat.t;
  n2 : Nat.t;
  n3 : Nat.t;
  h2 : Nat.t;
  rand_bits : int option;
}

(* CRT exponentiation state: the order of Z_{p^3}^* is p^2*(p-1), so
   c^d mod p^3 = c^(d mod p^2*(p-1)) mod p^3 — half-size modulus, and the
   reduced exponent is half the width of d. *)
type crt = {
  p3 : Nat.t;
  q3 : Nat.t;
  dp : Nat.t;
  dq : Nat.t;
  p3_inv_q3 : Nat.t; (* (p^3)^-1 mod q^3, for Garner recombination *)
}

type secret = {
  pub : public;
  d : Nat.t; (* d = 1 mod n^2, d = 0 mod lambda *)
  crt : crt option;
}

type ciphertext = Nat.t

let public_of_paillier (ppub : Paillier.public) =
  let n = ppub.Paillier.n in
  let n2 = ppub.Paillier.n2 in
  let n3 = Nat.mul n2 n in
  (* nothing-up-my-sleeve n^2-th residue: derived from the modulus *)
  let base =
    let rec find ctr =
      let cand =
        Nat.succ (Nat.rem (Nat.of_bytes (Hmac.mac ~key:"dj-h2" (Nat.to_bytes n ^ string_of_int ctr))) (Nat.pred n))
      in
      if Nat.is_one (Modular.gcd cand n) then cand else find (ctr + 1)
    in
    find 0
  in
  let h2 = Modular.pow base n2 ~m:n3 in
  { n; n2; n3; h2; rand_bits = ppub.Paillier.rand_bits }

let of_paillier ppub psk =
  let pub = public_of_paillier ppub in
  let sk =
    Option.map
      (fun sk ->
        let p, q, lambda = Paillier.secret_params sk in
        let d = Modular.crt2 (Nat.one, pub.n2) (Nat.zero, lambda) in
        let p3 = Nat.mul (Nat.mul p p) p and q3 = Nat.mul (Nat.mul q q) q in
        let dp = Nat.rem d (Nat.mul (Nat.mul p p) (Nat.pred p)) in
        let dq = Nat.rem d (Nat.mul (Nat.mul q q) (Nat.pred q)) in
        let p3_inv_q3 = Modular.inv (Nat.rem p3 q3) ~m:q3 in
        { pub; d; crt = Some { p3; q3; dp; dq; p3_inv_q3 } })
      psk
  in
  (pub, sk)

(* (1+n)^x mod n^3 = 1 + x*n + C(x,2)*n^2, truncating the binomial series
   at the n^3 term. x*(x-1) is always even so the division is exact. *)
let g_pow pub x =
  let x = Nat.rem x pub.n2 in
  let t1 = Nat.rem (Nat.mul x pub.n) pub.n3 in
  let binom = Nat.shift_right (Nat.mul x (if Nat.is_zero x then Nat.zero else Nat.pred x)) 1 in
  let t2 = Nat.rem (Nat.mul (Nat.rem binom pub.n) pub.n2) pub.n3 in
  Modular.add (Modular.add Nat.one t1 ~m:pub.n3) t2 ~m:pub.n3

let noise rng pub =
  match pub.rand_bits with
  | None -> Modular.pow (Rng.unit_mod rng pub.n) pub.n2 ~m:pub.n3
  | Some b -> begin
    let rho = Nat.succ (Rng.nat_bits rng b) in
    match Fixed_base.cached ~base:pub.h2 ~m:pub.n3 ~max_bits:(b + 1) with
    | Some fb -> Fixed_base.pow fb rho
    | None -> Modular.pow pub.h2 rho ~m:pub.n3
  end

let encrypt rng pub x =
  Obs.bump Obs.Metrics.Dj_enc;
  Modular.mul (g_pow pub x) (noise rng pub) ~m:pub.n3

let trivial pub x = g_pow pub x

let encrypt_layered rng pub inner = encrypt rng pub (Paillier.to_nat inner)

(* c^d mod n^3, via the CRT halves when the factorization is known. *)
let pow_d sk c =
  match sk.crt with
  | None -> Modular.pow c sk.d ~m:sk.pub.n3
  | Some { p3; q3; dp; dq; p3_inv_q3 } ->
    let up = Modular.pow (Nat.rem c p3) dp ~m:p3 in
    let uq = Modular.pow (Nat.rem c q3) dq ~m:q3 in
    (* Garner: u = up + p^3 * ((uq - up) * (p^3)^-1 mod q^3) *)
    let k = Modular.mul (Modular.sub uq (Nat.rem up q3) ~m:q3) p3_inv_q3 ~m:q3 in
    Nat.add up (Nat.mul p3 k)

let decrypt sk c =
  Obs.bump Obs.Metrics.Dj_dec;
  let pub = sk.pub in
  (* c^d = (1+n)^m mod n^3; recover m = m0 + n*m1 digit by digit. *)
  let u = pow_d sk c in
  let t = Nat.div (Nat.pred u) pub.n in
  (* t = m + C(m,2)*n (mod n^2) *)
  let t = Nat.rem t pub.n2 in
  let m0 = Nat.rem t pub.n in
  let binom = Nat.rem (Nat.shift_right (Nat.mul m0 (if Nat.is_zero m0 then Nat.zero else Nat.pred m0)) 1) pub.n in
  let hi = Nat.div (Nat.sub t m0) pub.n in
  let m1 = Modular.sub (Nat.rem hi pub.n) binom ~m:pub.n in
  Nat.add m0 (Nat.mul pub.n m1)

let decrypt_layered sk ppub c = Paillier.of_nat ppub (decrypt sk c)
let add pub a b = Modular.mul a b ~m:pub.n3

let scalar_mul pub c k =
  Obs.bump Obs.Metrics.Dj_mul;
  Modular.pow c (Nat.rem k pub.n2) ~m:pub.n3

let scalar_mul_ct pub c inner = scalar_mul pub c (Paillier.to_nat inner)

(* Enc2(sum k_i * x_i) from pairs (Enc2(x_i), k_i): one interleaved-window
   multi-exponentiation over n^3 — the squaring chain is shared across all
   pairs, so a fold of [scalar_mul] + [add] collapses to a fraction of the
   modular multiplications. The product is exact (no rerandomization), so
   the resulting ciphertext is identical to the unfused fold's. *)
let scalar_mul_many pub pairs =
  Obs.add Obs.Metrics.Dj_mul (List.length pairs);
  Modular.multi_pow (List.map (fun (c, k) -> (c, Nat.rem k pub.n2)) pairs) ~m:pub.n3

let scalar_mul_ct_many pub pairs =
  scalar_mul_many pub (List.map (fun (c, inner) -> (c, Paillier.to_nat inner)) pairs)

let neg pub c =
  Obs.bump Obs.Metrics.Dj_mul;
  Modular.pow c (Nat.pred pub.n2) ~m:pub.n3

let sub pub a b = add pub a (neg pub b)

let rerandomize rng pub c =
  Obs.bump Obs.Metrics.Dj_rerand;
  Modular.mul c (noise rng pub) ~m:pub.n3

(* noise precomputed (Noise_pool): one modular multiplication *)
let rerandomize_with pub ~noise c =
  Obs.bump Obs.Metrics.Dj_rerand;
  Modular.mul c noise ~m:pub.n3

(* Counterpart of [Paillier.precompute] for the layer-2 key: Montgomery
   context for n^3 plus the comb for h2 under shortened noise. *)
let precompute pub =
  ignore (Modular.mul Nat.one Nat.one ~m:pub.n3);
  match pub.rand_bits with
  | None -> ()
  | Some b -> ignore (Fixed_base.cached ~base:pub.h2 ~m:pub.n3 ~max_bits:(b + 1))

let to_nat c = c

let of_nat pub c =
  if Nat.compare c pub.n3 >= 0 then invalid_arg "Damgard_jurik.of_nat: out of range";
  c

let ciphertext_bytes pub = (Nat.bit_length pub.n3 + 7) / 8
let equal_ct = Nat.equal
