open Bignum

(* The generator consumes its DRBG in block units and hands bytes out of
   an internal buffer. Protocol code draws mostly 6-12 byte
   values (blinds, noise exponents); a per-draw [Drbg.generate] pays the
   full HMAC-DRBG tax each time (one HMAC per 32 bytes plus the two-HMAC
   key ratchet), which profiled as more expensive than the modexp the
   bytes feed. Chunked consumption amortizes the ratchet ~10x, and the
   delivered stream depends only on the seed and the cumulative byte
   count — not on how draws are partitioned. *)

type t = { d : Drbg.t; mutable buf : string; mutable pos : int; mutable chunk : int }

(* The refill size starts small and doubles up to [max_chunk]: short-lived
   forks (a pool value, a parallel sub-task) pay for the bytes they use,
   while long-lived generators settle at the amortized-optimal size. The
   schedule depends only on the refill count, so the stream is still a
   pure function of the seed and cumulative byte count. *)
let min_chunk = 32

let max_chunk = 256

let of_drbg d = { d; buf = ""; pos = 0; chunk = min_chunk }

let create ~seed = of_drbg (Drbg.create ~seed:("sectopk.rng:" ^ seed))

let system () =
  let entropy =
    try
      let ic = open_in_bin "/dev/urandom" in
      let b = really_input_string ic 32 in
      close_in ic;
      b
    with _ ->
      Printf.sprintf "%d:%f:%d" (Unix.getpid ()) (Unix.gettimeofday ()) (Hashtbl.hash (Sys.getcwd ()))
  in
  of_drbg (Drbg.create ~seed:entropy)

let bytes t n =
  let out = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    if t.pos >= String.length t.buf then begin
      t.buf <- Drbg.generate t.d t.chunk;
      t.chunk <- min (2 * t.chunk) max_chunk;
      t.pos <- 0
    end;
    let take = min (n - !off) (String.length t.buf - t.pos) in
    Bytes.blit_string t.buf t.pos out !off take;
    t.pos <- t.pos + take;
    off := !off + take
  done;
  Bytes.unsafe_to_string out

let nat_bits t bits =
  if bits <= 0 then Nat.zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let x = Nat.of_bytes (bytes t nbytes) in
    Nat.shift_right x ((8 * nbytes) - bits)
  end

let nat_below t bound =
  if Nat.is_zero bound then invalid_arg "Rng.nat_below: zero bound";
  let bits = Nat.bit_length bound in
  let rec go () =
    let c = nat_bits t bits in
    if Nat.compare c bound < 0 then c else go ()
  in
  go ()

let unit_mod t n =
  let rec go () =
    let r = nat_below t n in
    if (not (Nat.is_zero r)) && Nat.is_one (Modular.gcd r n) then r else go ()
  in
  go ()

let int_below t bound =
  if bound <= 0 then invalid_arg "Rng.int_below: non-positive bound";
  Nat.to_int (nat_below t (Nat.of_int bound))

let bool t = Char.code (bytes t 1).[0] land 1 = 1

let shuffle t arr =
  let n = Array.length arr in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    let tp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tp
  done;
  perm

let fork t ~label = of_drbg (Drbg.create ~seed:(bytes t 32 ^ "fork:" ^ label))
