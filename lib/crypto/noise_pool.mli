(** A pool of precomputed re-randomization noise values.

    A re-randomization multiplies a ciphertext by a fresh encryption of
    zero — one modular exponentiation ([Paillier.noise],
    [Damgard_jurik.noise]) per call. The pool precomputes those noise
    values (optionally on a background domain), leaving a single modular
    multiplication on the query path ({!Paillier.rerandomize_with},
    {!Damgard_jurik.rerandomize_with}).

    Deterministic under a seeded generator: values are drawn
    sequentially from the pool's root generator, produced and consumed
    strictly in index order, so the stream is independent of filler
    scheduling (or of the filler existing at all). Generation runs under
    a throwaway Obs collector; each {!take} bumps
    [Obs.Metrics.Rerand_pool] instead. *)

type t

(** [create ?depth rng ~label gen] — forks the pool's root generator off
    [rng] (one draw, at creation) and produces values with [gen]. [depth]
    is the filler's low-water mark (default 64). No filler is started. *)
val create : ?depth:int -> Rng.t -> label:string -> (Rng.t -> Bignum.Nat.t) -> t

(** Next noise value, in strict index order; computed on demand when the
    pool is empty. *)
val take : t -> Bignum.Nat.t

(** Synchronously bank at least [n] values (e.g. during setup). *)
val prefill : t -> int -> unit

(** Number of values currently banked. *)
val banked : t -> int

(** Spawn the background filler domain (idempotent). The
    no-live-domain-at-fork invariant applies: {!quiesce} before anything
    calls [Unix.fork] in this process. *)
val start_filler : t -> unit

(** Stop and join the filler, if running. Banked values stay usable. *)
val quiesce : t -> unit
