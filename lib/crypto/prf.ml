open Bignum

type key = string

let gen_keys rng s = List.init s (fun _ -> Rng.bytes rng 32)

let expand ~key msg nbytes =
  Obs.bump Obs.Metrics.Prf_eval;
  let buf = Buffer.create nbytes in
  let ctr = ref 0 in
  while Buffer.length buf < nbytes do
    Buffer.add_string buf (Hmac.mac ~key (Printf.sprintf "%d|" !ctr ^ msg));
    incr ctr
  done;
  Buffer.sub buf 0 nbytes

let to_nat_mod ~key msg ~m =
  let width = (2 * Nat.bit_length m / 8) + 2 in
  Nat.rem (Nat.of_bytes (expand ~key msg width)) m

let to_index ~key msg ~buckets =
  if buckets <= 0 then invalid_arg "Prf.to_index";
  Nat.to_int (to_nat_mod ~key msg ~m:(Nat.of_int buckets))
