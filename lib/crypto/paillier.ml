open Bignum

type public = {
  n : Nat.t;
  n2 : Nat.t;
  key_bits : int;
  h : Nat.t;
  rand_bits : int option;
}

type secret = {
  pub : public;
  p : Nat.t;
  q : Nat.t;
  lambda : Nat.t;
  mu : Nat.t;
  (* CRT decryption state: work mod p^2 and q^2 with half-size exponents
     p-1 and q-1 instead of mod n^2 with lambda. [hp] is the inverse of
     L_p((1+n)^(p-1) mod p^2) mod p, precomputed in closed form (the
     binomial series truncates: (1+n)^(p-1) = 1 + (p-1)*n mod p^2). *)
  p2 : Nat.t;
  q2 : Nat.t;
  pm1 : Nat.t;
  qm1 : Nat.t;
  hp : Nat.t;
  hq : Nat.t;
  p_inv_q : Nat.t; (* p^-1 mod q, for Garner recombination *)
}

type ciphertext = Nat.t

let keygen ?rand_bits rng ~bits =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus too small";
  let half = bits / 2 in
  let rand_below = Rng.nat_below rng in
  let rec gen () =
    let p = Prime.gen_prime ~bits:half ~rand_below () in
    let q = Prime.gen_prime ~bits:(bits - half) ~rand_below () in
    if Nat.equal p q then gen ()
    else begin
      let n = Nat.mul p q in
      let lambda = Modular.lcm (Nat.pred p) (Nat.pred q) in
      (* require gcd(n, lambda) = 1 so that mu exists; holds for random
         distinct primes but regenerate defensively *)
      if Nat.bit_length n <> bits || not (Nat.is_one (Modular.gcd n lambda)) then gen ()
      else (p, q, n, lambda)
    end
  in
  let p, q, n, lambda = gen () in
  let n2 = Nat.mul n n in
  let mu = Modular.inv (Nat.rem lambda n) ~m:n in
  let h = Modular.pow (Rng.unit_mod rng n) n ~m:n2 in
  let pub = { n; n2; key_bits = bits; h; rand_bits } in
  let pm1 = Nat.pred p and qm1 = Nat.pred q in
  (* L_p((1+n)^(p-1) mod p^2) = (p-1)*q mod p, so hp = ((p-1)*q)^-1 mod p *)
  let hp = Modular.inv (Nat.rem (Nat.mul pm1 q) p) ~m:p in
  let hq = Modular.inv (Nat.rem (Nat.mul qm1 p) q) ~m:q in
  let p_inv_q = Modular.inv (Nat.rem p q) ~m:q in
  (pub,
   { pub; p; q; lambda; mu; p2 = Nat.mul p p; q2 = Nat.mul q q; pm1; qm1; hp; hq; p_inv_q })

let public_of_secret sk = sk.pub
let secret_params sk = (sk.p, sk.q, sk.lambda)

let with_rand_bits pub rb = { pub with rand_bits = rb }

let noise rng pub =
  match pub.rand_bits with
  | None -> Modular.pow (Rng.unit_mod rng pub.n) pub.n ~m:pub.n2
  | Some b -> begin
    (* rho = rand_bits-bit value + 1, so the comb needs b+1 bits *)
    let rho = Nat.succ (Rng.nat_bits rng b) in
    match Fixed_base.cached ~base:pub.h ~m:pub.n2 ~max_bits:(b + 1) with
    | Some fb -> Fixed_base.pow fb rho
    | None -> Modular.pow pub.h rho ~m:pub.n2
  end

let encrypt rng pub m =
  Obs.bump Obs.Metrics.Paillier_enc;
  let m = Nat.rem m pub.n in
  let gm = Nat.rem (Nat.succ (Nat.mul m pub.n)) pub.n2 in
  Modular.mul gm (noise rng pub) ~m:pub.n2

let encrypt_int rng pub m =
  if m < 0 then invalid_arg "Paillier.encrypt_int: negative (use Nat encoding)";
  encrypt rng pub (Nat.of_int m)

(* CRT decryption: for c = (1+n)^m * r^n mod n^2,
   c^(p-1) mod p^2 = (1+n)^(m*(p-1)) mod p^2 (the noise vanishes because
   r^(p*(p-1)) = 1 mod p^2 and p | n), and the binomial series truncates
   to 1 + m*(p-1)*n mod p^2, so L_p(c^(p-1)) * hp = m mod p. Half-size
   moduli with half-size exponents, recombined by CRT — ~4x cheaper than
   one lambda-exponentiation mod n^2. *)
let decrypt sk c =
  Obs.bump Obs.Metrics.Paillier_dec;
  let half p2 pm1 hp p =
    let u = Modular.pow (Nat.rem c p2) pm1 ~m:p2 in
    Modular.mul (Nat.div (Nat.pred u) p) hp ~m:p
  in
  let mp = half sk.p2 sk.pm1 sk.hp sk.p in
  let mq = half sk.q2 sk.qm1 sk.hq sk.q in
  (* Garner: m = mp + p * ((mq - mp) * p^-1 mod q) *)
  let k = Modular.mul (Modular.sub mq (Nat.rem mp sk.q) ~m:sk.q) sk.p_inv_q ~m:sk.q in
  Nat.add mp (Nat.mul sk.p k)

let decrypt_signed sk c =
  let m = decrypt sk c in
  let half = Nat.shift_right sk.pub.n 1 in
  if Nat.compare m half > 0 then Bigint.neg (Bigint.of_nat (Nat.sub sk.pub.n m))
  else Bigint.of_nat m

let add pub a b = Modular.mul a b ~m:pub.n2

let scalar_mul pub c k =
  Obs.bump Obs.Metrics.Paillier_mul;
  Modular.pow c (Nat.rem k pub.n) ~m:pub.n2

(* prod_i c_i^(k_i mod n) — the homomorphic weighted sum
   sum_i k_i * m_i — as one interleaved multi-exponentiation sharing a
   single squaring chain across all bases. Counted as the scalar
   multiplications it replaces so the closed-form cost model stays
   exact. *)
let scalar_mul_many pub pairs =
  Obs.add Obs.Metrics.Paillier_mul (List.length pairs);
  Modular.multi_pow (List.map (fun (c, k) -> (c, Nat.rem k pub.n)) pairs) ~m:pub.n2

let neg pub c =
  Obs.bump Obs.Metrics.Paillier_mul;
  Modular.pow c (Nat.pred pub.n) ~m:pub.n2

let sub pub a b = add pub a (neg pub b)

let rerandomize rng pub c =
  Obs.bump Obs.Metrics.Paillier_rerand;
  Modular.mul c (noise rng pub) ~m:pub.n2

(* noise precomputed (Noise_pool): one modular multiplication *)
let rerandomize_with pub ~noise c =
  Obs.bump Obs.Metrics.Paillier_rerand;
  Modular.mul c noise ~m:pub.n2

let trivial pub m = Nat.rem (Nat.succ (Nat.mul (Nat.rem m pub.n) pub.n)) pub.n2

(* Encryption from a precomputed noise factor: byte-identical to
   [encrypt] when [noise] came from the same rng position, but costs one
   modular multiplication. *)
let encrypt_with pub ~noise m =
  Obs.bump Obs.Metrics.Paillier_enc;
  Modular.mul (trivial pub m) noise ~m:pub.n2

(* Build the per-key tables before the first encryption: the Montgomery
   contexts for n and n^2 and, under shortened noise, the fixed-base
   comb for h. Servers call this at startup so no query pays the
   one-time cost. *)
let precompute pub =
  ignore (Modular.mul Nat.one Nat.one ~m:pub.n);
  ignore (Modular.mul Nat.one Nat.one ~m:pub.n2);
  match pub.rand_bits with
  | None -> ()
  | Some b -> ignore (Fixed_base.cached ~base:pub.h ~m:pub.n2 ~max_bits:(b + 1))
let to_nat c = c

let of_nat pub c =
  if Nat.compare c pub.n2 >= 0 then invalid_arg "Paillier.of_nat: out of range";
  c

let ciphertext_bytes pub = (Nat.bit_length pub.n2 + 7) / 8
let plaintext_bytes pub = (Nat.bit_length pub.n + 7) / 8
let equal_ct = Nat.equal
let pp_ct = Nat.pp
