(** Deterministic work-stealing pool over OCaml 5 domains.

    One shared abstraction for every data-parallel batch in the system:
    relation encryption, the per-depth row fan-out of the query loop, the
    pairwise phases of SecDedup/EncSort, and the tuple fan-out of SecJoin.

    Determinism contract: randomness is forked from the caller's generator
    {e by index, before} any domain starts, so results are a pure function
    of (seed, jobs) — independent of [domains] and of scheduling. A run
    with [domains:1] and [domains:8] produces byte-identical output. *)

open Crypto

(** [run ~domains ~jobs f] evaluates [f i] for [i] in [0..jobs-1] across
    at most [domains] domains (the calling domain counts as one) and
    returns the results in index order. [domains <= 1] or [jobs <= 1]
    runs inline. Tasks are claimed from an atomic counter, so per-task
    cost may vary freely. *)
val run : domains:int -> jobs:int -> (int -> 'a) -> 'a array

(** [fork_rngs rng ~jobs] forks one generator per job index from [rng],
    in index order (labels ["par:0"], ["par:1"], ...). Each fork is an
    independent DRBG, safe to use from its own domain. *)
val fork_rngs : Rng.t -> jobs:int -> Rng.t array

(** [map_rng rng ~domains ~jobs f] is [run] with a pre-forked generator
    per task: [f rngs.(i) i]. *)
val map_rng : Rng.t -> domains:int -> jobs:int -> (Rng.t -> int -> 'a) -> 'a array

(** One task on a fresh helper domain. Callers must {!await} the task
    before anything that forks the process (see
    [Transport.spawn_daemon]'s no-live-domain-at-fork invariant). *)
type 'a task

val background : (unit -> 'a) -> 'a task
val await : 'a task -> 'a
