(* Persistent bounded worker pool: the long-lived sibling of Pool.run.
   Pool evaluates one batch and joins its domains; Service keeps a fixed
   crew of domains alive across requests (the serving daemon's query
   executor) behind a bounded admission queue, so overload surfaces as an
   immediate [`Busy] instead of unbounded queueing. *)

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a job arrives or draining starts *)
  idle : Condition.t;  (* signalled when a job finishes *)
  jobs : (unit -> unit) Queue.t;
  queue_depth : int;
  domains : int;
  mutable running : int;  (* jobs currently executing *)
  mutable accepting : bool;
  mutable crew : unit Domain.t list;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    while t.accepting && Queue.is_empty t.jobs do
      Condition.wait t.work t.lock
    done;
    match Queue.take_opt t.jobs with
    | None ->
      (* not accepting and nothing queued: the crew retires *)
      Mutex.unlock t.lock;
      ()
    | Some job ->
      t.running <- t.running + 1;
      Mutex.unlock t.lock;
      (try job () with _ -> ());
      Mutex.lock t.lock;
      t.running <- t.running - 1;
      Condition.broadcast t.idle;
      Mutex.unlock t.lock;
      loop ()
  in
  loop ()

let create ~domains ~queue_depth =
  if domains <= 0 then invalid_arg "Service.create: domains <= 0";
  if queue_depth < 0 then invalid_arg "Service.create: queue_depth < 0";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      jobs = Queue.create ();
      queue_depth;
      domains;
      running = 0;
      accepting = true;
      crew = [];
    }
  in
  t.crew <- List.init domains (fun _ -> Domain.spawn (worker t));
  t

(* Admission: a job is taken if a worker can start it immediately or the
   waiting queue has room; otherwise the caller learns [`Busy] right away
   (never blocks). *)
let submit t job =
  Mutex.lock t.lock;
  let verdict =
    if t.accepting && t.running + Queue.length t.jobs < t.domains + t.queue_depth then begin
      Queue.add job t.jobs;
      Condition.signal t.work;
      `Accepted
    end
    else `Busy
  in
  Mutex.unlock t.lock;
  verdict

let drain t =
  Mutex.lock t.lock;
  if t.accepting then begin
    t.accepting <- false;
    Condition.broadcast t.work
  end;
  while (not (Queue.is_empty t.jobs)) || t.running > 0 do
    Condition.wait t.idle t.lock
  done;
  let crew = t.crew in
  t.crew <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join crew
