(** Persistent bounded worker pool over OCaml 5 domains.

    Where {!Pool.run} evaluates one batch and retires its domains, a
    [Service.t] keeps [domains] workers alive across requests — the
    execution engine of the serving front-end. Admission is bounded:
    {!submit} never blocks, and a full queue answers [`Busy] so overload
    stays a typed, immediate signal. *)

type t

(** [create ~domains ~queue_depth] spawns [domains] worker domains.
    [queue_depth] bounds jobs waiting beyond the ones workers can start
    immediately ([queue_depth = 0]: a job is accepted only when a worker
    is free). *)
val create : domains:int -> queue_depth:int -> t

(** Non-blocking admission. Accepted jobs run in submission order on the
    next free worker; a job's exceptions are swallowed (deliver results
    through the closure). Returns [`Busy] when the queue is full or the
    service is draining. *)
val submit : t -> (unit -> unit) -> [ `Accepted | `Busy ]

(** Stop admitting, run everything already accepted to completion, and
    join the worker domains. Idempotent-ish: callable once; subsequent
    submits return [`Busy]. *)
val drain : t -> unit
