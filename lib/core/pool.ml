open Crypto

let run ~domains ~jobs f =
  if jobs < 0 then invalid_arg "Pool.run: jobs < 0";
  if domains <= 1 || jobs <= 1 then Array.init jobs f
  else begin
    let results = Array.make jobs None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= jobs then continue := false else results.(i) <- Some (f i)
      done
    in
    let spawned = Array.init (min domains jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map Option.get results
  end

(* One task on a fresh helper domain, joined explicitly by the caller.
   Used for work overlapped with the calling domain (an in-flight RPC
   batch, a rerandomizer-pool refill); every user must [await] before
   anything that forks the process, preserving the no-live-domain-at-fork
   invariant Transport.spawn_daemon relies on. *)
type 'a task = 'a Domain.t

let background f = Domain.spawn f
let await t = Domain.join t

(* Explicit loop: forking mutates the parent generator, so the order of
   forks is part of the determinism contract (Array.init's evaluation
   order is unspecified). *)
let fork_rngs rng ~jobs =
  let rngs = Array.make jobs rng in
  for i = 0 to jobs - 1 do
    rngs.(i) <- Rng.fork rng ~label:("par:" ^ string_of_int i)
  done;
  rngs

let map_rng rng ~domains ~jobs f =
  let rngs = fork_rngs rng ~jobs in
  run ~domains ~jobs (fun i -> f rngs.(i) i)
