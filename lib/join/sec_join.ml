open Bignum
open Crypto
open Proto

type joined = { score : Paillier.ciphertext; attrs : Paillier.ciphertext array }

let protocol = "SecJoin"

let combine (ctx : Ctx.t) (e1 : Join_scheme.enc_relation) (e2 : Join_scheme.enc_relation)
    (tk : Join_scheme.token) =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let pairs = ref [] in
  Array.iter
    (fun (t1 : Join_scheme.enc_tuple) ->
      Array.iter (fun (t2 : Join_scheme.enc_tuple) -> pairs := (t1, t2) :: !pairs) e2.Join_scheme.tuples)
    e1.Join_scheme.tuples;
  let pairs = Array.of_list !pairs in
  ignore (Rng.shuffle s1.Ctx.rng pairs);
  let jobs = Array.length pairs in
  (* one equality round over the whole grid: the join predicate bits.
     The blinded diffs are per-pair independent — fan them out. *)
  let diffs =
    Array.to_list
      (Ctx.parallel ctx ~jobs (fun sub idx ->
           let (t1 : Join_scheme.enc_tuple), (t2 : Join_scheme.enc_tuple) = pairs.(idx) in
           let sub1 = sub.Ctx.s1 in
           let ehl_l, _ = t1.Join_scheme.cells.(tk.Join_scheme.join_left) in
           let ehl_r, _ = t2.Join_scheme.cells.(tk.Join_scheme.join_right) in
           Ehl.Ehl_plus.diff ?blind_bits:sub1.Ctx.blind_bits sub1.Ctx.rng pub ehl_l ehl_r))
  in
  let ts = Array.of_list (Gadgets.equality_round ctx ~protocol diffs) in
  let zero = Gadgets.enc_zero s1 in
  (* tuple fan-out: every pair needs 1 + |attrs| selections, each a DJ
     exponentiation — the heaviest loop of the join. The (pure) selects
     stay fanned out on the pool; every RecoverEnc of the whole grid
     travels in a single batch round. *)
  let totals =
    Array.map
      (fun ((t1 : Join_scheme.enc_tuple), (t2 : Join_scheme.enc_tuple)) ->
        let _, score_l = t1.Join_scheme.cells.(tk.Join_scheme.score_left) in
        let _, score_r = t2.Join_scheme.cells.(tk.Join_scheme.score_right) in
        (* s = t * (score_l + score_r + 1): the +1 keeps all-zero scores
           of genuine matches alive through SecFilter *)
        Paillier.add pub (Paillier.add pub score_l score_r)
          (Paillier.encrypt s1.Ctx.rng pub Nat.one))
      pairs
  in
  let selections =
    Ctx.parallel ctx ~jobs (fun sub idx ->
        let t = ts.(idx) in
        let (t1 : Join_scheme.enc_tuple), (t2 : Join_scheme.enc_tuple) = pairs.(idx) in
        let sub1 = sub.Ctx.s1 in
        let carried =
          Array.append
            (Array.map snd t1.Join_scheme.cells)
            (Array.map snd t2.Join_scheme.cells)
        in
        Array.append
          [| Gadgets.select sub1 ~t ~if_one:totals.(idx) ~if_zero:zero |]
          (Array.map (fun x -> Gadgets.select sub1 ~t ~if_one:x ~if_zero:zero) carried))
  in
  let flat = List.concat_map Array.to_list (Array.to_list selections) in
  let picked = Array.of_list (Gadgets.recover_enc_many ctx ~protocol flat) in
  let cursor = ref 0 in
  Array.to_list
    (Array.map
       (fun sel ->
         let width = Array.length sel in
         let score = picked.(!cursor) in
         let attrs = Array.init (width - 1) (fun a -> picked.(!cursor + 1 + a)) in
         cursor := !cursor + width;
         { score; attrs })
       selections)

let filter_protocol = "SecFilter"

let filter (ctx : Ctx.t) tuples =
  Obs.span filter_protocol @@ fun () ->
  match tuples with
  | [] -> []
  | _ ->
    let s1 = ctx.Ctx.s1 in
    let pub = s1.Ctx.pub in
    let n = pub.Paillier.n in
    let own = s1.Ctx.own_pub in
    (* --- S1: multiplicative blind on scores (0 stays 0), additive blind
       on attributes; randomness escrowed under S1's own key --- *)
    let blinded =
      List.map
        (fun { score; attrs } ->
          let r = Rng.unit_mod s1.Ctx.rng n in
          let rs = Array.map (fun _ -> Rng.nat_below s1.Ctx.rng n) attrs in
          let score' = Paillier.scalar_mul pub score r in
          let attrs' =
            Array.mapi (fun i x -> Paillier.add pub x (Paillier.encrypt s1.Ctx.rng pub rs.(i))) attrs
          in
          let r_inv = Modular.inv r ~m:n in
          (* multiplicative escrows are kept one-per-party: combining them
             homomorphically would overflow the escrow modulus *)
          {
            Wire.score = score';
            attrs = attrs';
            r_escrow = [ Paillier.encrypt s1.Ctx.rng own r_inv ];
            a_escrow = Array.map (fun v -> Paillier.encrypt s1.Ctx.rng own v) rs;
          })
        tuples
    in
    let arr = Array.of_list blinded in
    ignore (Rng.shuffle s1.Ctx.rng arr);
    (* --- S2 (one round trip): decrypt blinded scores; drop zeros;
       re-blind survivors and update the escrows --- *)
    let out =
      match Ctx.rpc ctx ~label:filter_protocol (Wire.Filter (Array.to_list arr)) with
      | Wire.Tuples out -> out
      | _ -> failwith "Sec_join.filter: unexpected response"
    in
    (* --- S1: strip both layers of blinding --- *)
    List.map
      (fun (t : Wire.tuple) ->
        let r_total =
          List.fold_left
            (fun acc c -> Modular.mul acc (Nat.rem (Paillier.decrypt s1.Ctx.own_sk c) n) ~m:n)
            Nat.one t.Wire.r_escrow
        in
        let rs_total = Array.map (fun c -> Nat.rem (Paillier.decrypt s1.Ctx.own_sk c) n) t.Wire.a_escrow in
        {
          score = Paillier.scalar_mul pub t.Wire.score r_total;
          attrs =
            Array.mapi
              (fun i x -> Paillier.sub pub x (Paillier.encrypt s1.Ctx.rng pub rs_total.(i)))
              t.Wire.attrs;
        })
      out

(* blinded descending sort by score through S2, as EncSort's one-round
   strategy but over joined tuples *)
let sort_desc (ctx : Ctx.t) tuples =
  Obs.span "EncSort" @@ fun () ->
  match tuples with
  | [] | [ _ ] -> tuples
  | _ ->
    let s1 = ctx.Ctx.s1 in
    let pub = s1.Ctx.pub in
    let rho = Gadgets.blind_scalar s1 in
    let r = Rng.nat_bits s1.Ctx.rng 32 in
    let arr = Array.of_list tuples in
    ignore (Rng.shuffle s1.Ctx.rng arr);
    let keyed =
      Array.map
        (fun t ->
          ( Paillier.add pub (Paillier.scalar_mul pub t.score rho) (Paillier.encrypt s1.Ctx.rng pub r),
            t.score,
            t.attrs ))
        arr
    in
    match Ctx.rpc ctx ~label:"EncSort" (Wire.Rank_tuples (Array.to_list keyed)) with
    | Wire.Ranked out -> List.map (fun (score, attrs) -> { score; attrs }) out
    | _ -> failwith "Sec_join.sort_desc: unexpected response"

let rec take n = function [] -> [] | x :: r -> if n = 0 then [] else x :: take (n - 1) r

let top_k ctx e1 e2 tk =
  Obs.with_default ctx.Ctx.obs @@ fun () ->
  Obs.span "SecJoinQuery" @@ fun () ->
  let combined = combine ctx e1 e2 tk in
  let surviving = filter ctx combined in
  (* remove the +1 score offset added by [combine] *)
  let s1 = ctx.Ctx.s1 in
  let unoffset =
    List.map
      (fun t ->
        { t with score = Paillier.sub s1.Ctx.pub t.score (Paillier.encrypt s1.Ctx.rng s1.Ctx.pub Nat.one) })
      surviving
  in
  take tk.Join_scheme.k (sort_desc ctx unoffset)

(* ---------------- multi-way join (Section 12's L-relation sketch) ----

   The predicate of an L-way chain equi-join is a conjunction of L-1
   pairwise conditions; S1 evaluates the EHL difference of each condition
   on every tuple combination of the cross product and S2 returns one
   E2(verdict) per combination through [Gadgets.conjunction_round]. Scores
   and carried attributes are then selected exactly as in the binary
   operator. Cross products grow multiplicatively, so this is practical
   for small L / scaled relations — the same nested-loop generality the
   paper sketches. *)

type multi_spec = {
  chain : (int * int) list;
      (* (attr of R_i, attr of R_{i+1}) - permuted indices, length L-1 *)
  score_attrs : int list; (* one permuted score attribute per relation *)
  k : int;
}

let spec_of_token key ~ms ~chain ~score_attrs ~k =
  let pos i attr =
    Join_scheme.attr_position key ~rel_tag:("R" ^ string_of_int (i + 1)) ~m:(List.nth ms i) attr
  in
  {
    chain = List.mapi (fun i (a, b) -> (pos i a, pos (i + 1) b)) chain;
    score_attrs = List.mapi pos score_attrs;
    k;
  }

let cross_product (rels : Join_scheme.enc_relation list) =
  List.fold_left
    (fun acc (r : Join_scheme.enc_relation) ->
      List.concat_map
        (fun combo -> Array.to_list (Array.map (fun t -> t :: combo) r.Join_scheme.tuples))
        acc)
    [ [] ] rels
  |> List.map List.rev

let combine_multi (ctx : Ctx.t) rels (spec : multi_spec) =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let combos = Array.of_list (cross_product rels) in
  ignore (Rng.shuffle s1.Ctx.rng combos);
  let groups =
    Array.to_list
      (Array.map
         (fun combo ->
           let arr = Array.of_list combo in
           List.mapi
             (fun i (al, ar) ->
               let ehl_l, _ = arr.(i).Join_scheme.cells.(al) in
               let ehl_r, _ = arr.(i + 1).Join_scheme.cells.(ar) in
               Ehl.Ehl_plus.diff ?blind_bits:s1.Ctx.blind_bits s1.Ctx.rng pub ehl_l ehl_r)
             spec.chain)
         combos)
  in
  let ts = Gadgets.conjunction_round ctx ~protocol:"SecJoin" groups in
  let zero = Gadgets.enc_zero s1 in
  (* one recover batch for the score + attribute selections of every combo *)
  let per_combo =
    List.map2
      (fun t combo ->
        let arr = Array.of_list combo in
        let total =
          List.fold_left
            (fun acc (i, sa) -> Paillier.add pub acc (snd arr.(i).Join_scheme.cells.(sa)))
            (Paillier.encrypt s1.Ctx.rng pub Nat.one)
            (List.mapi (fun i sa -> (i, sa)) spec.score_attrs)
        in
        let carried =
          Array.concat (List.map (fun (tp : Join_scheme.enc_tuple) -> Array.map snd tp.Join_scheme.cells) combo)
        in
        (t, total, zero) :: Array.to_list (Array.map (fun x -> (t, x, zero)) carried))
      ts (Array.to_list combos)
  in
  let picked =
    Array.of_list
      (Gadgets.select_recover_many ctx ~protocol:"SecJoin" (List.concat per_combo))
  in
  let cursor = ref 0 in
  List.map
    (fun choices ->
      let width = List.length choices in
      let score = picked.(!cursor) in
      let attrs = Array.init (width - 1) (fun a -> picked.(!cursor + 1 + a)) in
      cursor := !cursor + width;
      { score; attrs })
    per_combo

let top_k_multi ctx rels spec =
  Obs.with_default ctx.Ctx.obs @@ fun () ->
  Obs.span "SecJoinQuery" @@ fun () ->
  let combined = combine_multi ctx rels spec in
  let surviving = filter ctx combined in
  let s1 = ctx.Ctx.s1 in
  let unoffset =
    List.map
      (fun t ->
        { t with score = Paillier.sub s1.Ctx.pub t.score (Paillier.encrypt s1.Ctx.rng s1.Ctx.pub Nat.one) })
      surviving
  in
  take spec.k (sort_desc ctx unoffset)

(* ---------------- rank-join over pre-sorted relations ----------------

   The paper's future-work optimization: with each relation stored in
   descending score order, pairs are explored diagonal by diagonal
   (all (i, j) with i + j = d), so the best possible score of any
   unexplored pair is bounded by the maximum frontier sum — once the
   current k-th matched score reaches that bound, the scan stops without
   touching the remaining pairs. S1 additionally learns the halting
   diagonal and the (blinded) order of frontier sums; see DESIGN.md. *)

(* encrypted max by folding EncCompare; S1 learns the comparison bits of
   the (score-domain) sums, the rank-leakage documented above *)
let enc_max ctx = function
  | [] -> invalid_arg "Sec_join.enc_max: empty"
  | first :: rest ->
    List.fold_left (fun acc c -> if Enc_compare.leq ctx acc c then c else acc) first rest

let diagonal ~n1 ~n2 d =
  let lo = max 0 (d - (n2 - 1)) and hi = min d (n1 - 1) in
  if lo > hi then [] else List.init (hi - lo + 1) (fun t -> (lo + t, d - (lo + t)))

let combine_pairs (ctx : Ctx.t) (e1 : Join_scheme.enc_relation) (e2 : Join_scheme.enc_relation)
    (tk : Join_scheme.token) pairs =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let arr = Array.of_list pairs in
  ignore (Rng.shuffle s1.Ctx.rng arr);
  let tup1 i = e1.Join_scheme.tuples.(i) and tup2 j = e2.Join_scheme.tuples.(j) in
  let diffs =
    Array.to_list
      (Array.map
         (fun (i, j) ->
           let ehl_l, _ = (tup1 i).Join_scheme.cells.(tk.Join_scheme.join_left) in
           let ehl_r, _ = (tup2 j).Join_scheme.cells.(tk.Join_scheme.join_right) in
           Ehl.Ehl_plus.diff ?blind_bits:s1.Ctx.blind_bits s1.Ctx.rng pub ehl_l ehl_r)
         arr)
  in
  let ts = Gadgets.equality_round ctx ~protocol:"SecJoin" diffs in
  let zero = Gadgets.enc_zero s1 in
  (* one recover batch for the whole diagonal's selections *)
  let per_pair =
    List.map2
      (fun t (i, j) ->
        let _, score_l = (tup1 i).Join_scheme.cells.(tk.Join_scheme.score_left) in
        let _, score_r = (tup2 j).Join_scheme.cells.(tk.Join_scheme.score_right) in
        let total =
          Paillier.add pub (Paillier.add pub score_l score_r) (Paillier.encrypt s1.Ctx.rng pub Nat.one)
        in
        let carried =
          Array.append
            (Array.map snd (tup1 i).Join_scheme.cells)
            (Array.map snd (tup2 j).Join_scheme.cells)
        in
        (t, total, zero) :: Array.to_list (Array.map (fun x -> (t, x, zero)) carried))
      ts (Array.to_list arr)
  in
  let picked =
    Array.of_list
      (Gadgets.select_recover_many ctx ~protocol:"SecJoin" (List.concat per_pair))
  in
  let cursor = ref 0 in
  List.map
    (fun choices ->
      let width = List.length choices in
      let score = picked.(!cursor) in
      let attrs = Array.init (width - 1) (fun a -> picked.(!cursor + 1 + a)) in
      cursor := !cursor + width;
      { score; attrs })
    per_pair

type sorted_stats = { pairs_explored : int; pairs_total : int; halted_early : bool }

let top_k_sorted_stats (ctx : Ctx.t) e1 e2 (tk : Join_scheme.token) =
  Obs.with_default ctx.Ctx.obs @@ fun () ->
  Obs.span "SecJoinQuery" @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let n1 = Array.length e1.Join_scheme.tuples and n2 = Array.length e2.Join_scheme.tuples in
  let max_diag = n1 + n2 - 2 in
  let matched = ref [] in
  let explored = ref 0 in
  let halted = ref false in
  let d = ref 0 in
  while (not !halted) && !d <= max_diag do
    let pairs = diagonal ~n1 ~n2 !d in
    explored := !explored + List.length pairs;
    matched := combine_pairs ctx e1 e2 tk pairs @ !matched;
    (* halting test: does the k-th matched score already dominate every
       unexplored pair? *)
    if !d < max_diag && List.length !matched >= tk.Join_scheme.k then begin
      let frontier = diagonal ~n1 ~n2 (!d + 1) in
      let frontier_sums =
        List.map
          (fun (i, j) ->
            let _, sl = e1.Join_scheme.tuples.(i).Join_scheme.cells.(tk.Join_scheme.score_left) in
            let _, sr = e2.Join_scheme.tuples.(j).Join_scheme.cells.(tk.Join_scheme.score_right) in
            (* +1 matches the offset carried by matched scores *)
            Paillier.add pub (Paillier.add pub sl sr) (Paillier.trivial pub Nat.one))
          frontier
      in
      let bound = enc_max ctx frontier_sums in
      let sorted = sort_desc ctx !matched in
      matched := sorted;
      let wk = (List.nth sorted (tk.Join_scheme.k - 1)).score in
      (* halt when W_k is a real match (>= 1) and beats the bound: both
         tests in one batch round (no short-circuit, same conjunction) *)
      (match Enc_compare.leq_many ctx [ (Paillier.trivial pub Nat.one, wk); (bound, wk) ] with
      | [ real; beats ] -> if real && beats then halted := true
      | _ -> assert false)
    end;
    incr d
  done;
  let surviving = filter ctx !matched in
  let unoffset =
    List.map
      (fun t ->
        { t with score = Paillier.sub pub t.score (Paillier.encrypt s1.Ctx.rng pub Nat.one) })
      surviving
  in
  ( take tk.Join_scheme.k (sort_desc ctx unoffset),
    { pairs_explored = !explored; pairs_total = n1 * n2; halted_early = !halted } )

let top_k_sorted ctx e1 e2 tk = fst (top_k_sorted_stats ctx e1 e2 tk)
