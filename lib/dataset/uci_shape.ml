type spec = { name : string; full_rows : int; attrs : int }

let insurance_spec = { name = "insurance"; full_rows = 5822; attrs = 13 }
let diabetes_spec = { name = "diabetes"; full_rows = 101767; attrs = 10 }
let pamap_spec = { name = "pamap"; full_rows = 376416; attrs = 15 }
let all_specs = [ insurance_spec; diabetes_spec; pamap_spec ]

(* Value model per dataset family:
   - insurance: small categorical/ordinal ranges (0..40) with heavy ties,
   - diabetes: counts and codes (0..120) with moderate ties,
   - pamap: sensor readings, wide quasi-continuous range (0..5000). *)
let distribution_of spec : Synthetic.distribution =
  match spec.name with
  | "insurance" -> Synthetic.Zipf { skew = 1.2; max_value = 40 }
  | "diabetes" -> Synthetic.Gaussian { mean = 45.; stddev = 25.; max_value = 120 }
  | "pamap" -> Synthetic.Gaussian { mean = 2400.; stddev = 900.; max_value = 5000 }
  | _ -> Synthetic.Uniform { lo = 0; hi = 1000 }

let load spec ~seed ~scale =
  if scale <= 0. || scale > 1. then invalid_arg "Uci_shape.load: scale must be in (0,1]";
  let rows = max 1 (int_of_float (ceil (scale *. float_of_int spec.full_rows))) in
  Synthetic.generate ~seed ~name:spec.name ~rows ~attrs:spec.attrs (distribution_of spec)

let evaluation_suite ~seed ~scale =
  let uci = List.map (fun spec -> load spec ~seed ~scale) all_specs in
  let syn_rows = max 1 (int_of_float (ceil (scale *. 1_000_000.))) in
  uci @ [ Synthetic.paper_synthetic ~seed ~rows:syn_rows ]

(* ---- CSV ingestion (real UCI-shaped files: id,attr1..attrM) ------------ *)

exception Csv_error of { line : int; reason : string }

let csv_fail line reason = raise (Csv_error { line; reason })

let split_commas s =
  (* String.split_on_char keeps empty fields, which we want to reject
     explicitly with a line number rather than silently skip *)
  List.map String.trim (String.split_on_char ',' s)

let parse_fields ~line fields =
  match fields with
  | [] | [ _ ] -> csv_fail line "expected id plus at least one attribute"
  | id :: attrs ->
    if id = "" then csv_fail line "empty object id";
    let values =
      List.map
        (fun a ->
          match int_of_string_opt a with
          | Some v when v >= 0 -> v
          | Some _ -> csv_fail line (Printf.sprintf "negative attribute value %S" a)
          | None -> csv_fail line (Printf.sprintf "non-integer attribute value %S" a))
        attrs
    in
    (id, Array.of_list values)

(* A first line whose second field is not an integer is taken as a
   header (UCI exports commonly carry one) and skipped. *)
let is_header fields =
  match fields with
  | _ :: second :: _ -> int_of_string_opt second = None
  | _ -> false

let parse_csv ~name contents =
  let lines = String.split_on_char '\n' contents in
  let seen = Hashtbl.create 64 in
  let _, rows, ids =
    List.fold_left
      (fun (line, rows, ids) raw ->
        let text = String.trim raw in
        if text = "" then (line + 1, rows, ids)
        else begin
          let fields = split_commas text in
          if line = 1 && is_header fields then (line + 1, rows, ids)
          else begin
            let id, values = parse_fields ~line fields in
            (match Hashtbl.find_opt seen id with
            | Some first -> csv_fail line (Printf.sprintf "duplicate id %S (first at line %d)" id first)
            | None -> Hashtbl.replace seen id line);
            (match rows with
            | (prev : int array) :: _ when Array.length prev <> Array.length values ->
              csv_fail line
                (Printf.sprintf "expected %d attributes, got %d" (Array.length prev)
                   (Array.length values))
            | _ -> ());
            (line + 1, values :: rows, id :: ids)
          end
        end)
      (1, [], []) lines
  in
  if rows = [] then csv_fail 1 "no data rows";
  let rel = Relation.create ~name (Array.of_list (List.rev rows)) in
  (rel, List.rev ids)

let load_csv path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_csv ~name:(Filename.remove_extension (Filename.basename path)) contents
