(** Simulacra of the paper's UCI evaluation datasets.

    The raw UCI files are not available in this sealed environment, so each
    generator reproduces the *shape* that drives SecTopK performance: row
    count, attribute count, value ranges, and duplicate/skew structure
    (see DESIGN.md, substitution table). [scale] in (0, 1] shrinks the row
    count proportionally for affordable encrypted-query benchmarks. *)

type spec = { name : string; full_rows : int; attrs : int }

val insurance_spec : spec (* 5822 x 13  - COIL insurance benchmark *)
val diabetes_spec : spec (* 101767 x 10 - hospital readmission records *)
val pamap_spec : spec (* 376416 x 15 - physical activity monitoring *)

val all_specs : spec list

(** [load spec ~seed ~scale] materialises a synthetic relation with the
    spec's schema and [ceil (scale * full_rows)] rows. *)
val load : spec -> seed:string -> scale:float -> Relation.t

(** The four evaluation datasets of Section 11 (the three UCI shapes plus
    the Gaussian synthetic), at the given scale (synthetic full size = 1M
    rows). *)
val evaluation_suite : seed:string -> scale:float -> Relation.t list

(** Malformed CSV input: the 1-based line and what was wrong with it. *)
exception Csv_error of { line : int; reason : string }

(** [parse_csv ~name contents] parses UCI-shaped CSV text: one
    [id,attr1,..,attrM] row per line, an optional header line (detected
    by a non-integer second field), blank lines ignored. Attributes must
    be non-negative integers, rows non-ragged, ids non-empty and unique.
    Returns the relation plus the file's ids in row order (positional
    object ids "o0","o1",... are what enters the encryption — the file
    ids are returned so callers can print the mapping). Raises
    {!Csv_error} on the first malformed row. *)
val parse_csv : name:string -> string -> Relation.t * string list

(** [load_csv path] — {!parse_csv} on a file's contents. *)
val load_csv : string -> Relation.t * string list
