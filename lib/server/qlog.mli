(** Per-query structured logging for the live server.

    Three sinks, all optional and all off the query execution path:

    - [log_json]: one JSON object per line per query — token shape
      ([k]/[attrs]), outcome, depth reached, rounds, bytes, queue and
      execution latency in microseconds;
    - [slow_query_ms]: queries whose execution exceeds the threshold also
      log a full span report (rendered from the query's collector);
    - [trace_sample]: every Nth query's Chrome trace is written to
      [trace_dir], rotating over a fixed number of slots so the
      directory stays bounded on a long-lived server.

    Span reports and traces need per-query collectors, i.e. [Obs]
    enabled — {!needs_spans} tells the embedding when that is the case.
    All sinks are mutex-guarded; sessions and workers log concurrently. *)

type config = {
  log_json : string option;
  slow_query_ms : float option;
  trace_sample : int option;
  trace_dir : string;
}

(** Everything off: no file, no threshold, no sampling. *)
val default_config : config

(** Sampled traces rotate over this many files ([trace-0.json] ..). *)
val trace_slots : int

type outcome = Ok of { depth : int; halted : bool } | Busy | Error of string

type entry = {
  seq : int;
  conn : int;
  k : int;
  attrs : int;
  rounds : int;
  bytes : int;
  queue_us : int;
  exec_us : int;
  outcome : outcome;
}

type t

(** Opens the log file (append) and creates the trace directory if the
    config asks for them. Raises [Invalid_argument] on a non-positive
    sample period. *)
val create : config -> t

val close : t -> unit

(** True when the config needs per-query span collectors (slow-query
    reports or trace sampling configured). *)
val needs_spans : config -> bool

(** Append one query record (no-op without [log_json]). *)
val log : t -> entry -> unit

val is_slow : t -> exec_us:int -> bool

(** Log a span report for a slow query — into the JSON log when present,
    to stderr otherwise. *)
val log_slow : t -> seq:int -> exec_us:int -> Obs.Collector.t -> unit

(** Write the query's Chrome trace if [seq] falls on the sample grid. *)
val maybe_trace : t -> seq:int -> Obs.Collector.t -> unit
