(** Multi-client S1 serving front-end.

    One listener accepts client connections on loopback TCP; each
    connection gets a session that speaks the {!Proto.Wire} client
    frames: a [Server_hello] announcing the index shape, then
    [Query_req]/[Query_resp] pairs. Queries are scheduled onto a
    persistent bounded {!Core.Service} worker pool — admission-queue
    overflow answers a typed [Busy] immediately, never stalls the
    connection.

    Every query runs in a fresh seeded context ({!Proto.Ctx.provision}
    with the server's seed), so each response is byte-identical to what
    the sequential in-process path produces for the same token — the
    property the concurrency tests pin down.

    S2 placement: [Local] runs the key-holder in-process (the Inproc
    transport); [Tcp addr] dials a serve-s2 daemon once per query and
    replays provisioning through the Hello handshake.

    Round coalescing: with [coalesce_window_us > 0] (the default)
    queries do not own private transports — they park each round at a
    shared {!Proto.Sched} whose shipper merges every concurrent query's
    next op into one multiplexed S2 trip ([Local] demultiplexes
    in-process; [Tcp] ships mux frames over a single daemon
    connection). Per-query results, traces and op counters are
    byte-identical to the uncoalesced baseline ([coalesce_window_us =
    0]); only the shared trip count drops — with [q] concurrent queries
    in lockstep, toward 1/q of the uncoalesced total. The registry
    gains [parked_queries], [coalesced_rounds] and [rounds_saved]. *)

(** Structured query logging configuration (re-exported — the library's
    main module hides its siblings from the outside). *)
module Qlog = Qlog

type s2_mode = Local | Tcp of Unix.sockaddr

type config = {
  seed : string;  (** provisioning seed; must match what built the index *)
  key_bits : int;
  rand_bits : int option;
  blind_bits : int;
  workers : int;  (** worker domains executing queries *)
  queue_depth : int;  (** admitted-but-waiting bound beyond free workers *)
  options : Sectopk.Query.options;
  s2 : s2_mode;
  qlog : Qlog.config;  (** structured query log / slow-query / trace sampling *)
  coalesce_window_us : int;
      (** how long the round scheduler's oldest parked op waits for
          stragglers before a merged trip ships anyway (it ships
          immediately once every in-flight query is parked); [0]
          disables coalescing — every query owns a private transport,
          the pre-scheduler baseline. Default 150. *)
}

val default_config : config

(** Historical scalar record, now a view derived from the registry
    ({!registry}): counters read directly, the second totals recovered
    from the microsecond histogram sums. *)
type stats = {
  served : int;  (** queries answered with results *)
  busy : int;  (** connections bounced with [Busy] *)
  errors : int;  (** queries answered with [Server_error] *)
  queue_seconds : float;  (** total admission-to-start latency *)
  query_seconds : float;  (** total execution wall clock *)
}

type t

(** [start ~port config store] binds 127.0.0.1:[port] ([port = 0] for
    ephemeral — read it back with {!port}), spawns the listener and the
    worker pool, and returns immediately. *)
val start : ?port:int -> config -> Store.t -> t

val port : t -> int
val stats : t -> stats

(** Live telemetry: counters ([served]/[busy]/[errors]), load gauges
    ([queue_depth], [in_flight_queries], [open_sessions],
    [worker_utilization]) and per-query histograms ([queue_wait_us],
    [exec_us], [query_rounds], [query_bytes], [query_depth]).
    Histograms record on every query whether or not {!Obs} is enabled;
    the registry's mutex makes concurrent scrapes torn-read-free.  Any
    client connection can fetch a snapshot live with a [Wire.Stats_req]
    control frame ({!Proto.Transport.scrape_stats}). *)
val registry : t -> Obs.Registry.t

(** Per-query observability collectors merged in completion order
    (meaningful only when {!Obs.is_enabled}). *)
val obs : t -> Obs.Collector.t

(** Graceful drain: stop accepting connections, finish every admitted
    query and deliver its response, then close sessions and join every
    domain. Idempotent. *)
val shutdown : t -> unit
