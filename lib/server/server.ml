(* The S1 serving front-end: listener -> per-connection sessions ->
   bounded Core.Service worker pool.  See server.mli for the contract.

   Concurrency shape: the listener domain accepts and spawns one session
   domain per connection; a session reads one Query_req at a time,
   submits the query as a job, and blocks on an ivar for the response —
   so frames on one connection never interleave.  Overload is decided at
   submission ([`Busy] written immediately).  Shutdown drains in order:
   listener first, then the worker pool (in-flight queries complete and
   their responses are written), then idle sessions are unblocked by
   shutting their sockets down. *)

open Proto
module Qlog = Qlog

type s2_mode = Local | Tcp of Unix.sockaddr

type config = {
  seed : string;
  key_bits : int;
  rand_bits : int option;
  blind_bits : int;
  workers : int;
  queue_depth : int;
  options : Sectopk.Query.options;
  s2 : s2_mode;
  qlog : Qlog.config;
  coalesce_window_us : int;
      (* round-coalescing window; 0 = coalescing off (each query owns its
         transport, the pre-scheduler baseline) *)
}

let default_config =
  {
    seed = "serve";
    key_bits = 128;
    rand_bits = Some 96;
    blind_bits = 48;
    workers = 2;
    queue_depth = 8;
    options = Sectopk.Query.default_options;
    s2 = Local;
    qlog = Qlog.default_config;
    coalesce_window_us = 150;
  }

type stats = {
  served : int;
  busy : int;
  errors : int;
  queue_seconds : float;
  query_seconds : float;
}

(* Live telemetry.  The registry is per-server (tests run several servers
   in one process; a process global would bleed counts between them) and
   its own mutex guards every mutation, so a scrape never sees a torn
   histogram even while worker domains are recording.  Histograms are
   recorded unconditionally — they are integer bucket increments, cheap
   enough to leave on when [Obs] is off. *)
type telemetry = {
  reg : Obs.Registry.t;
  served_c : Obs.Registry.counter;
  busy_c : Obs.Registry.counter;
  errors_c : Obs.Registry.counter;
  queue_depth_g : Obs.Registry.gauge;  (* admitted, not yet running *)
  in_flight_g : Obs.Registry.gauge;  (* running on a worker domain *)
  open_sessions_g : Obs.Registry.gauge;
  worker_util_g : Obs.Registry.gauge;  (* in-flight / workers *)
  queue_wait_h : Obs.Registry.histogram;  (* admission-to-start, µs *)
  exec_h : Obs.Registry.histogram;  (* start-to-response, µs *)
  rounds_h : Obs.Registry.histogram;  (* S1<->S2 rounds per query *)
  bytes_h : Obs.Registry.histogram;  (* S1<->S2 bytes per query *)
  depth_h : Obs.Registry.histogram;  (* halting depth per query *)
}

let make_telemetry () =
  let reg = Obs.Registry.create () in
  {
    reg;
    served_c = Obs.Registry.counter reg "served";
    busy_c = Obs.Registry.counter reg "busy";
    errors_c = Obs.Registry.counter reg "errors";
    queue_depth_g = Obs.Registry.gauge reg "queue_depth";
    in_flight_g = Obs.Registry.gauge reg "in_flight_queries";
    open_sessions_g = Obs.Registry.gauge reg "open_sessions";
    worker_util_g = Obs.Registry.gauge reg "worker_utilization";
    queue_wait_h = Obs.Registry.histogram reg "queue_wait_us";
    exec_h = Obs.Registry.histogram reg "exec_us";
    rounds_h = Obs.Registry.histogram reg "query_rounds";
    bytes_h = Obs.Registry.histogram reg "query_bytes";
    depth_h = Obs.Registry.histogram reg "query_depth";
  }

(* A write-once cell: the session parks on it while its query runs on a
   worker domain. *)
module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

type t = {
  cfg : config;
  er : Sectopk.Scheme.encrypted_relation;
  shape : Wire.server_msg;  (* the Server_hello sent to every client *)
  wkeys : Wire.keys;
  lsock : Unix.file_descr;
  lport : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  service : Core.Service.t;
  sched : Sched.t option;  (* shared round scheduler (coalescing on) *)
  sched_fd : Unix.file_descr option ref;
      (* its current S2 connection (Tcp mode); the backend swaps it on
         reconnect, [shutdown] closes whatever is live after Sched.stop *)
  collector : Obs.Collector.t;
  tel : telemetry;
  qlog : Qlog.t;
  lock : Mutex.t;
  settled : Condition.t;  (* signalled when pending responses hit zero *)
  mutable conns : (int * Unix.file_descr) list;
  mutable next_conn : int;
  mutable sessions : (int * unit Domain.t) list;
  mutable reaped : unit Domain.t list;  (* finished sessions awaiting join *)
  mutable listener : unit Domain.t option;
  mutable draining : bool;
  mutable pending : int;  (* accepted queries whose response is not yet written *)
  mutable running : int;  (* queries executing on a worker domain *)
  mutable next_seq : int;  (* query sequence numbers, admitted and busy *)
}

let port t = t.lport
let registry t = t.tel.reg

(* The historical scalar record, derived from the registry: counters read
   directly, the float second totals recovered from the microsecond
   histogram sums.  One snapshot, so the view is internally consistent. *)
let stats t =
  let snap = Obs.Registry.snapshot t.tel.reg in
  let cnt name =
    match List.assoc_opt name snap with Some (Obs.Registry.Counter v) -> v | _ -> 0
  in
  let hist_sum_seconds name =
    match List.assoc_opt name snap with
    | Some (Obs.Registry.Histogram d) -> float_of_int d.Obs.Registry.hsum /. 1e6
    | _ -> 0.
  in
  {
    served = cnt "served";
    busy = cnt "busy";
    errors = cnt "errors";
    queue_seconds = hist_sum_seconds "queue_wait_us";
    query_seconds = hist_sum_seconds "exec_us";
  }

let obs t = t.collector

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Call under [t.lock]; the registry has its own (inner) mutex. *)
let update_load_gauges t =
  Obs.Registry.set t.tel.queue_depth_g (float_of_int (max 0 (t.pending - t.running)));
  Obs.Registry.set t.tel.in_flight_g (float_of_int t.running);
  Obs.Registry.set t.tel.worker_util_g
    (float_of_int t.running /. float_of_int t.cfg.workers)

(* ---- per-query execution (worker domain) ------------------------------- *)

(* Per-query channel totals: what this query shipped to and from S2. *)
type query_meta = { depth : int; halted : bool; rounds : int; bytes : int }

let run_query t tk =
  let pub, sk, ctx_rng, _data_rng =
    Ctx.provision ~seed:t.cfg.seed ~key_bits:t.cfg.key_bits ?rand_bits:t.cfg.rand_bits ()
  in
  let mode, cleanup =
    match (t.sched, t.cfg.s2) with
    | Some sched, _ ->
      (* coalescing: park this query's rounds at the shared scheduler.
         The Mux_open makes S2 provision the same per-query responder a
         dedicated connection would, so results and traces stay
         byte-identical to the uncoalesced paths below. *)
      let session = Sched.open_query sched in
      ( Ctx.Mux (sched, session),
        fun () -> (try Sched.close_query sched session with _ -> ()) )
    | None, Local -> (Ctx.Inproc, fun () -> ())
    | None, Tcp addr ->
      let hello =
        { Wire.seed = t.cfg.seed; key_bits = t.cfg.key_bits; rand_bits = t.cfg.rand_bits;
          obs = false }
      in
      let fd = Transport.connect_tcp addr hello in
      (Ctx.Socket_fd fd, fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  in
  Fun.protect ~finally:cleanup (fun () ->
      let qctx = Ctx.of_keys ~blind_bits:t.cfg.blind_bits ~mode ctx_rng pub sk in
      let res = Sectopk.Query.run qctx t.er tk t.cfg.options in
      let ch = Ctx.channel qctx in
      ( Wire.Query_resp
          {
            top = res.Sectopk.Query.top;
            halting_depth = res.Sectopk.Query.halting_depth;
            halted = res.Sectopk.Query.halted;
          },
        Some
          {
            depth = res.Sectopk.Query.halting_depth;
            halted = res.Sectopk.Query.halted;
            rounds = Channel.rounds_total ch;
            bytes = Channel.bytes_total ch;
          } ))

let usec s = int_of_float ((s *. 1e6) +. 0.5)

let job t tk ~conn ~seq ~submitted cell =
  let t0 = Unix.gettimeofday () in
  locked t (fun () ->
      t.running <- t.running + 1;
      update_load_gauges t);
  (* per-query collector when Obs is on: feeds the merged server
     collector, slow-query reports and sampled traces *)
  let col = if Obs.is_enabled () then Some (Obs.Collector.create ()) else None in
  let resp, meta =
    try
      match col with
      | Some c ->
        Obs.with_collector c (fun () -> Obs.span "serve:query" (fun () -> run_query t tk))
      | None -> run_query t tk
    with
    | Store.Error e -> (Wire.Server_error (Store.error_message e), None)
    | Invalid_argument msg -> (Wire.Server_error msg, None)
    (* typed protocol desync (hostile/desynced S2, wrong batch or mux
       arity): degrade this query, keep the session domain alive *)
    | Proto_error.Proto_error msg -> (Wire.Server_error msg, None)
    | e -> (Wire.Server_error (Printexc.to_string e), None)
  in
  let t1 = Unix.gettimeofday () in
  let queue_us = usec (t0 -. submitted) and exec_us = usec (t1 -. t0) in
  let tel = t.tel in
  (match resp with
  | Wire.Server_error _ -> Obs.Registry.inc tel.errors_c
  | _ -> Obs.Registry.inc tel.served_c);
  Obs.Registry.observe tel.queue_wait_h queue_us;
  Obs.Registry.observe tel.exec_h exec_us;
  (match meta with
  | Some m ->
    Obs.Registry.observe tel.rounds_h m.rounds;
    Obs.Registry.observe tel.bytes_h m.bytes;
    Obs.Registry.observe tel.depth_h m.depth
  | None -> ());
  (match col with
  | Some c ->
    Qlog.maybe_trace t.qlog ~seq c;
    if Qlog.is_slow t.qlog ~exec_us then Qlog.log_slow t.qlog ~seq ~exec_us c;
    locked t (fun () -> Obs.Collector.merge_into c ~into:t.collector)
  | None -> ());
  Qlog.log t.qlog
    {
      Qlog.seq;
      conn;
      k = tk.Sectopk.Scheme.k;
      attrs = List.length tk.Sectopk.Scheme.attrs;
      rounds = (match meta with Some m -> m.rounds | None -> 0);
      bytes = (match meta with Some m -> m.bytes | None -> 0);
      queue_us;
      exec_us;
      outcome =
        (match (resp, meta) with
        | Wire.Server_error msg, _ -> Qlog.Error msg
        | _, Some m -> Qlog.Ok { depth = m.depth; halted = m.halted }
        | _, None -> Qlog.Ok { depth = 0; halted = false });
    };
  locked t (fun () ->
      t.running <- t.running - 1;
      update_load_gauges t);
  Ivar.fill cell resp

(* ---- sessions (one domain per connection) ------------------------------ *)

let settle t =
  locked t (fun () ->
      t.pending <- t.pending - 1;
      update_load_gauges t;
      if t.pending = 0 then Condition.broadcast t.settled)

let session t id fd =
  let write msg = Wire.write_frame fd (Wire.encode_server_msg t.wkeys msg) in
  (try
     write t.shape;
     let rec loop () =
       match Wire.read_frame fd with
       | None -> ()
       | Some frame -> (
         let reject msg =
           Obs.Registry.inc t.tel.errors_c;
           write (Wire.Server_error msg)
         in
         match Wire.frame_kind frame with
         | Some 'C' ->
           (* live-telemetry scrape: any connection may ask; the reply
              carries the full registry snapshot and needs no keys *)
           (match Wire.decode_control frame with
           | Wire.Stats_req ->
             Wire.write_frame fd
               (Wire.encode_control_reply
                  (Wire.Stats_resp (Obs.Registry.snapshot t.tel.reg)))
           | _ | (exception Invalid_argument _) ->
             reject "unsupported control frame");
           loop ()
         | _ -> (
           match Wire.decode_client_msg frame with
           | exception Invalid_argument msg ->
             (* a malformed frame is answered, not fatal: keep serving *)
             reject msg;
             loop ()
           | Wire.Query_req { token } -> (
             match Sectopk.Codec.decode_token token with
             | exception Invalid_argument msg ->
               (* still a query: it gets a sequence number and a log
                  entry, with zero token shape (it never decoded) *)
               let seq =
                 locked t (fun () ->
                     let seq = t.next_seq in
                     t.next_seq <- seq + 1;
                     seq)
               in
               Qlog.log t.qlog
                 {
                   Qlog.seq;
                   conn = id;
                   k = 0;
                   attrs = 0;
                   rounds = 0;
                   bytes = 0;
                   queue_us = 0;
                   exec_us = 0;
                   outcome = Qlog.Error msg;
                 };
               reject msg;
               loop ()
             | tk ->
               let cell = Ivar.create () in
               let submitted = Unix.gettimeofday () in
               let admitted =
                 locked t (fun () ->
                     let seq = t.next_seq in
                     t.next_seq <- seq + 1;
                     if t.draining then `Busy seq
                     else
                       match
                         Core.Service.submit t.service (fun () ->
                             job t tk ~conn:id ~seq ~submitted cell)
                       with
                       | `Accepted ->
                         t.pending <- t.pending + 1;
                         update_load_gauges t;
                         `Accepted
                       | `Busy -> `Busy seq)
               in
               (match admitted with
               | `Busy seq ->
                 Obs.Registry.inc t.tel.busy_c;
                 Qlog.log t.qlog
                   {
                     Qlog.seq;
                     conn = id;
                     k = tk.Sectopk.Scheme.k;
                     attrs = List.length tk.Sectopk.Scheme.attrs;
                     rounds = 0;
                     bytes = 0;
                     queue_us = 0;
                     exec_us = 0;
                     outcome = Qlog.Busy;
                   };
                 write Wire.Busy
               | `Accepted ->
                 let resp = Ivar.read cell in
                 Fun.protect ~finally:(fun () -> settle t) (fun () -> write resp));
               if not t.draining then loop ())))
     in
     loop ()
   with
  | Unix.Unix_error (_, _, _) | Invalid_argument _ | Sys_error _ -> ());
  (* retire: leave the connection table, hand this domain to the reaper,
     and close the fd — all under the lock, so shutdown never calls
     Unix.shutdown on a descriptor number the kernel has recycled *)
  locked t (fun () ->
      t.conns <- List.filter (fun (id', _) -> id' <> id) t.conns;
      Obs.Registry.set t.tel.open_sessions_g (float_of_int (List.length t.conns));
      let mine, rest = List.partition (fun (id', _) -> id' = id) t.sessions in
      t.sessions <- rest;
      t.reaped <- List.rev_append (List.map snd mine) t.reaped;
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

(* ---- listener ---------------------------------------------------------- *)

let listener_loop t =
  let rec loop () =
    match Unix.select [ t.lsock; t.wake_r ] [] [] (-1.) with
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | ready, _, _ ->
      if List.mem t.wake_r ready then () (* drain requested *)
      else begin
        (match Unix.accept t.lsock with
        | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> ()
        | fd, _ ->
          let accepted =
            locked t (fun () ->
                if t.draining then false
                else begin
                  let id = t.next_conn in
                  t.next_conn <- id + 1;
                  t.conns <- (id, fd) :: t.conns;
                  Obs.Registry.set t.tel.open_sessions_g
                    (float_of_int (List.length t.conns));
                  let d = Domain.spawn (fun () -> session t id fd) in
                  t.sessions <- (id, d) :: t.sessions;
                  true
                end)
          in
          if not accepted then Unix.close fd);
        (* join finished sessions so a long-running server does not
           accumulate dead domain handles *)
        let finished = locked t (fun () -> let r = t.reaped in t.reaped <- []; r) in
        List.iter Domain.join finished;
        loop ()
      end
  in
  loop ()

(* ---- lifecycle --------------------------------------------------------- *)

let start ?(port = 0) cfg store =
  if cfg.workers <= 0 then invalid_arg "Server.start: workers <= 0";
  if cfg.queue_depth < 0 then invalid_arg "Server.start: queue_depth < 0";
  (* One provisioning replay up front: yields the Wire keys for framing
     and cross-checks that the store was built under this seed's key
     (open_index already verified the fingerprint against [pub]). *)
  let pub, sk, ctx_rng, _ =
    Ctx.provision ~seed:cfg.seed ~key_bits:cfg.key_bits ?rand_bits:cfg.rand_bits ()
  in
  let kctx = Ctx.of_keys ~blind_bits:cfg.blind_bits ~mode:Ctx.Inproc ctx_rng pub sk in
  let wkeys = Transport.keys kctx.Ctx.transport in
  let tel = make_telemetry () in
  (* The shared round scheduler (coalescing on): one per S2 connection.
     Local mode demultiplexes in-process; Tcp mode opens the single
     connection every merged frame travels on. *)
  let sched, sched_fd =
    if cfg.coalesce_window_us <= 0 then (None, ref None)
    else begin
      let hello =
        { Wire.seed = cfg.seed; key_bits = cfg.key_bits; rand_bits = cfg.rand_bits;
          obs = false }
      in
      match cfg.s2 with
      | Local ->
        let st = S2_server.mux_state ~make:(fun ~session:_ -> S2_server.of_hello hello) in
        ( Some
            (Sched.create ~window_us:cfg.coalesce_window_us ~registry:tel.reg
               ~backend:(S2_server.handle_mux_ops st) ()),
          ref None )
      | Tcp addr ->
        (* Self-healing shared connection: dial eagerly so startup still
           fails fast when S2 is down, re-dial (fresh Hello handshake) on
           the trip after a failure. Raising [Sched.Backend_lost] makes
           the scheduler fail only the sessions that lived on the dead
           connection — new queries open fresh sessions on the new one —
           and the scrapeable [s2_reconnects] counter surfaces every
           loss. Only the shipper domain calls the backend, so the cell
           needs no lock. *)
        let fd_cell = ref (Some (Transport.connect_tcp addr hello)) in
        let reconnects_c = Obs.Registry.counter tel.reg "s2_reconnects" in
        let backend ops =
          let fd =
            match !fd_cell with
            | Some fd -> fd
            | None ->
              let fd = Transport.connect_tcp addr hello in
              fd_cell := Some fd;
              fd
          in
          try Sched.socket_backend wkeys fd ops
          with e ->
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            fd_cell := None;
            Obs.Registry.inc reconnects_c;
            raise (Sched.Backend_lost (Printexc.to_string e))
        in
        ( Some
            (Sched.create ~window_us:cfg.coalesce_window_us ~registry:tel.reg
               ~backend ()),
          fd_cell )
    end
  in
  let lsock = Unix.socket PF_INET SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt lsock SO_REUSEADDR true;
      Unix.bind lsock (ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen lsock 16;
      let lport =
        match Unix.getsockname lsock with
        | ADDR_INET (_, p) -> p
        | _ -> invalid_arg "Server.start: unexpected socket address"
      in
      let wake_r, wake_w = Unix.pipe () in
      {
        cfg;
        er = Store.relation store;
        shape =
          Wire.Server_hello
            {
              n = Store.n_rows store;
              m = Store.n_attrs store;
              s = Store.cells store;
              key_bits = cfg.key_bits;
            };
        wkeys;
        lsock;
        lport;
        wake_r;
        wake_w;
        service = Core.Service.create ~domains:cfg.workers ~queue_depth:cfg.queue_depth;
        sched;
        sched_fd;
        collector = Obs.Collector.create ();
        tel;
        qlog = Qlog.create cfg.qlog;
        lock = Mutex.create ();
        settled = Condition.create ();
        conns = [];
        next_conn = 0;
        sessions = [];
        reaped = [];
        listener = None;
        draining = false;
        pending = 0;
        running = 0;
        next_seq = 0;
      }
    with e ->
      Unix.close lsock;
      Option.iter Sched.stop sched;
      (match !sched_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      | None -> ());
      raise e
  in
  t.listener <- Some (Domain.spawn (fun () -> listener_loop t));
  t

let shutdown t =
  let listener =
    locked t (fun () ->
        if t.draining then None
        else begin
          t.draining <- true;
          let l = t.listener in
          t.listener <- None;
          l
        end)
  in
  match listener with
  | None -> ()
  | Some l ->
    (* 1. stop accepting *)
    (try ignore (Unix.write_substring t.wake_w "x" 0 1) with Unix.Unix_error (_, _, _) -> ());
    Domain.join l;
    Unix.close t.lsock;
    (* 2. finish every admitted query *)
    Core.Service.drain t.service;
    (* 3. wait until every finished response has been written out *)
    Mutex.lock t.lock;
    while t.pending > 0 do
      Condition.wait t.settled t.lock
    done;
    Mutex.unlock t.lock;
    (* 4. no query is parked any more: retire the round scheduler and its
       S2 connection *)
    Option.iter Sched.stop t.sched;
    (match !(t.sched_fd) with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    | None -> ());
    (* 5. unblock sessions parked in read_frame and join them all.  The
       fds are shut down under the lock: sessions remove and close their
       own entry under the same lock, so we can never touch a descriptor
       number the kernel has recycled. *)
    let sessions, finished =
      locked t (fun () ->
          List.iter
            (fun (_, fd) ->
              try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ())
            t.conns;
          let s = List.map snd t.sessions and r = t.reaped in
          t.sessions <- [];
          t.reaped <- [];
          (s, r))
    in
    List.iter Domain.join sessions;
    List.iter Domain.join finished;
    Qlog.close t.qlog;
    Unix.close t.wake_r;
    Unix.close t.wake_w
