(* Per-query structured logging for the live server: one JSON line per
   query, an optional full span report for queries past a slow-query
   threshold, and an every-Nth-query Chrome trace sampled into a small
   rotating directory.  All sinks are mutex-guarded — session and worker
   domains log concurrently — and everything here is off the query's
   execution path (logging happens after the response is computed). *)

type config = {
  log_json : string option;  (* one JSON object per line, appended *)
  slow_query_ms : float option;  (* log a span report past this wall time *)
  trace_sample : int option;  (* capture every Nth query's Chrome trace *)
  trace_dir : string;  (* rotating directory for sampled traces *)
}

let default_config =
  { log_json = None; slow_query_ms = None; trace_sample = None; trace_dir = "traces" }

(* Sampled traces rotate over this many slots: slot k holds the k-th most
   recent sample modulo the window, so a long-lived server keeps a bounded
   directory of recent traces instead of an unbounded spool. *)
let trace_slots = 8

type outcome = Ok of { depth : int; halted : bool } | Busy | Error of string

type entry = {
  seq : int;  (* server-wide query sequence number *)
  conn : int;  (* connection id the query arrived on *)
  k : int;  (* token shape: requested k ... *)
  attrs : int;  (* ... and number of predicate attributes *)
  rounds : int;
  bytes : int;
  queue_us : int;  (* admission-to-start *)
  exec_us : int;  (* start-to-response *)
  outcome : outcome;
}

type t = { cfg : config; lock : Mutex.t; oc : out_channel option }

(* [needs_spans] tells the embedding (topk_cli serve-s1) that this config
   only works with Obs enabled: slow-query reports and sampled traces are
   rendered from per-query span collectors. *)
let needs_spans cfg = cfg.slow_query_ms <> None || cfg.trace_sample <> None

let create cfg =
  (match cfg.trace_sample with
  | Some n when n <= 0 -> invalid_arg "Qlog: trace sample period must be positive"
  | _ -> ());
  let oc =
    match cfg.log_json with
    | None -> None
    | Some file ->
      Some (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file)
  in
  (match cfg.trace_sample with
  | Some _ -> ( try Unix.mkdir cfg.trace_dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ())
  | None -> ());
  { cfg; lock = Mutex.create (); oc }

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> Option.iter close_out t.oc)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_line t line =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.oc with
      | Some oc ->
        output_string oc line;
        output_char oc '\n';
        flush oc
      | None -> ())

let entry_line e =
  let b = Buffer.create 192 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"ts\":%.6f,\"seq\":%d,\"conn\":%d,\"k\":%d,\"attrs\":%d,\"outcome\":\"%s\""
       (Unix.gettimeofday ()) e.seq e.conn e.k e.attrs
       (match e.outcome with Ok _ -> "ok" | Busy -> "busy" | Error _ -> "error"));
  (match e.outcome with
  | Ok { depth; halted } ->
    Buffer.add_string b (Printf.sprintf ",\"depth\":%d,\"halted\":%b" depth halted)
  | Busy -> ()
  | Error msg -> Buffer.add_string b (Printf.sprintf ",\"error\":\"%s\"" (escape msg)));
  Buffer.add_string b
    (Printf.sprintf ",\"rounds\":%d,\"bytes\":%d,\"queue_us\":%d,\"exec_us\":%d}"
       e.rounds e.bytes e.queue_us e.exec_us);
  Buffer.contents b

let log t e = if t.oc <> None then emit_line t (entry_line e)

(* ---- slow queries ---- *)

let is_slow t ~exec_us =
  match t.cfg.slow_query_ms with
  | Some ms -> float_of_int exec_us >= ms *. 1000.
  | None -> false

(* A full span report for an outlier, as one JSON line (the multi-line
   table rides in a string field).  Falls back to stderr when no JSON log
   is configured, so `--slow-query-ms` alone is still actionable. *)
let log_slow t ~seq ~exec_us collector =
  let report = Obs.Report.render ~times:true collector in
  match t.oc with
  | Some _ ->
    emit_line t
      (Printf.sprintf
         "{\"ts\":%.6f,\"seq\":%d,\"slow_query\":true,\"exec_us\":%d,\"report\":\"%s\"}"
         (Unix.gettimeofday ()) seq exec_us (escape report))
  | None ->
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        Printf.eprintf "slow query seq=%d exec=%.1fms\n%s%!" seq
          (float_of_int exec_us /. 1000.)
          report)

(* ---- sampled traces ---- *)

let sample_path t ~seq =
  match t.cfg.trace_sample with
  | Some n when seq mod n = 0 ->
    let slot = seq / n mod trace_slots in
    Some (Filename.concat t.cfg.trace_dir (Printf.sprintf "trace-%d.json" slot))
  | _ -> None

let maybe_trace t ~seq collector =
  match sample_path t ~seq with
  | None -> ()
  | Some path -> (
    try Obs.Chrome.write collector ~file:path with Sys_error _ -> ())
