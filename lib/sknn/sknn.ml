open Bignum
open Crypto
open Proto

type enc_db = { records : Paillier.ciphertext array array; m : int }

let protocol = "SkNN"

let encrypt_db rng pub rel =
  let open Dataset in
  let m = Relation.n_attrs rel in
  let records =
    Array.init (Relation.n_rows rel) (fun row ->
        Array.init m (fun attr ->
            Paillier.encrypt rng pub (Nat.of_int (Relation.value rel ~row ~attr))))
  in
  { records; m }

let n_records db = Array.length db.records
let size_bytes pub db = Array.length db.records * db.m * Paillier.ciphertext_bytes pub

let secure_multiply = Sm.secure_multiply

let query (ctx : Ctx.t) db ~point ~k =
  if Array.length point <> db.m then invalid_arg "Sknn.query: dimension mismatch";
  Obs.with_default ctx.Ctx.obs @@ fun () ->
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 and s2 = ctx.Ctx.s2 in
  let pub = s1.Ctx.pub in
  let enc_q = Array.map (fun v -> Paillier.encrypt s1.Ctx.rng pub (Nat.of_int v)) point in
  (* O(n*m) secure multiplications: d_j = sum_i (x_ji - q_i)^2 *)
  let distances =
    Array.map
      (fun record ->
        let acc = ref (Paillier.encrypt s1.Ctx.rng pub Nat.zero) in
        Array.iteri
          (fun i x ->
            let diff = Paillier.sub pub x enc_q.(i) in
            acc := Paillier.add pub !acc (secure_multiply ctx diff diff))
          record;
        !acc)
      db.records
  in
  (* nearest-k selection through a blinded sort at S2 *)
  let rho = Gadgets.blind_scalar s1 in
  let keyed = Array.mapi (fun j d -> (j, Paillier.scalar_mul pub d rho)) distances in
  let ct = Paillier.ciphertext_bytes pub in
  Channel.send s1.Ctx.chan ~dir:Channel.S1_to_s2 ~label:protocol
    ~bytes:(Array.length keyed * ct);
  let decorated = Array.map (fun (j, c) -> (j, Paillier.decrypt s2.Ctx.sk c)) keyed in
  Array.sort (fun (_, a) (_, b) -> Nat.compare a b) decorated;
  Trace.record s2.Ctx.trace (Trace.Count { protocol; value = Array.length decorated });
  Channel.send s2.Ctx.chan2 ~dir:Channel.S2_to_s1 ~label:protocol
    ~bytes:(Array.length decorated * 4);
  Channel.round_trip s1.Ctx.chan;
  Array.to_list (Array.sub decorated 0 (min k (Array.length decorated))) |> List.map fst

(* distance phase shared by both selection strategies *)
let distances (ctx : Ctx.t) db ~point =
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let enc_q = Array.map (fun v -> Paillier.encrypt s1.Ctx.rng pub (Nat.of_int v)) point in
  Array.map
    (fun record ->
      let acc = ref (Paillier.encrypt s1.Ctx.rng pub Nat.zero) in
      Array.iteri
        (fun i x ->
          let diff = Paillier.sub pub x enc_q.(i) in
          acc := Paillier.add pub !acc (secure_multiply ctx diff diff))
        record;
      !acc)
    db.records

let query_smin (ctx : Ctx.t) db ~point ~k ~bits =
  if Array.length point <> db.m then invalid_arg "Sknn.query_smin: dimension mismatch";
  Obs.with_default ctx.Ctx.obs @@ fun () ->
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 and s2 = ctx.Ctx.s2 in
  let pub = s1.Ctx.pub in
  let ds = distances ctx db ~point in
  let n = Array.length ds in
  (* SBD every distance once; each SMIN_k pass then runs [21]'s bitwise
     machinery over the decomposed candidates *)
  let dec_bits = Array.map (fun d -> Sbd.decompose ctx ~bits d) ds in
  let packed = Array.map (fun b -> Sbd.recompose ctx b) dec_bits in
  let active = Array.make n true in
  let results = ref [] in
  let max_dist = Nat.pred (Nat.shift_left Nat.one bits) in
  for _ = 1 to min k n do
    (* fold SMIN over the active candidates *)
    let cur = ref None in
    for i = 0 to n - 1 do
      if active.(i) then
        match !cur with
        | None -> cur := Some (dec_bits.(i), packed.(i))
        | Some (cb, cp) ->
          let m = Smin.min_pair_bits ctx cb dec_bits.(i) ~u_packed:cp ~v_packed:packed.(i) in
          cur := Some (Sbd.decompose ctx ~bits m, m)
    done;
    match !cur with
    | None -> ()
    | Some (_, min_packed) ->
      (* locate the winning index: S1 blinds the differences and permutes;
         S2 reports which (permuted) slot is zero. [21] likewise reveals
         which encrypted records form the answer at this point. *)
      let idxs = Array.of_list (List.filter (fun i -> active.(i)) (List.init n Fun.id)) in
      let perm = Rng.shuffle s1.Ctx.rng idxs in
      ignore perm;
      let blinded =
        Array.map
          (fun i ->
            Paillier.scalar_mul pub (Paillier.sub pub ds.(i) min_packed)
              (Gadgets.blind_scalar s1))
          idxs
      in
      let ct = Paillier.ciphertext_bytes pub in
      Channel.send s1.Ctx.chan ~dir:Channel.S1_to_s2 ~label:protocol
        ~bytes:(Array.length blinded * ct);
      let zero_slot = ref None in
      Array.iteri
        (fun slot c ->
          if !zero_slot = None && Nat.is_zero (Paillier.decrypt s2.Ctx.sk c) then
            zero_slot := Some slot)
        blinded;
      Channel.send s2.Ctx.chan2 ~dir:Channel.S2_to_s1 ~label:protocol ~bytes:4;
      Channel.round_trip s1.Ctx.chan;
      (match !zero_slot with
      | Some slot ->
        let winner = idxs.(slot) in
        active.(winner) <- false;
        results := winner :: !results;
        (* retire the winner: its distance becomes the domain maximum *)
        dec_bits.(winner) <- Array.init bits (fun i ->
            Paillier.encrypt s1.Ctx.rng pub
              (if Nat.nth_bit max_dist i then Nat.one else Nat.zero));
        packed.(winner) <- Paillier.encrypt s1.Ctx.rng pub max_dist;
        ds.(winner) <- packed.(winner)
      | None -> ())
  done;
  List.rev !results

module Sm = Sm
module Sbd = Sbd
module Smin = Smin
