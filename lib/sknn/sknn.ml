open Bignum
open Crypto
open Proto

type enc_db = { records : Paillier.ciphertext array array; m : int }

let protocol = "SkNN"

let encrypt_db rng pub rel =
  let open Dataset in
  let m = Relation.n_attrs rel in
  let records =
    Array.init (Relation.n_rows rel) (fun row ->
        Array.init m (fun attr ->
            Paillier.encrypt rng pub (Nat.of_int (Relation.value rel ~row ~attr))))
  in
  { records; m }

let n_records db = Array.length db.records
let size_bytes pub db = Array.length db.records * db.m * Paillier.ciphertext_bytes pub

let secure_multiply = Sm.secure_multiply

(* Distance phase shared by both selection strategies. The O(n*m) secure
   multiplications d_j = sum_i (x_ji - q_i)^2 are fully independent:
   blinding of the next chunk overlaps the batch in flight through
   [Ctx.rpc_pipeline], and the cross terms are stripped afterwards in
   index order. *)
let distances (ctx : Ctx.t) db ~point =
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let n = pub.Paillier.n in
  let enc_q = Array.map (fun v -> Paillier.encrypt s1.Ctx.rng pub (Nat.of_int v)) point in
  let m = db.m in
  let total = Array.length db.records * m in
  let escrow = Array.make total (Paillier.trivial pub Nat.zero, Nat.zero, Nat.zero) in
  let prepare idx =
    let diff = Paillier.sub pub db.records.(idx / m).(idx mod m) enc_q.(idx mod m) in
    let ra = Rng.nat_below s1.Ctx.rng n and rb = Rng.nat_below s1.Ctx.rng n in
    let a' = Paillier.add pub diff (Paillier.encrypt s1.Ctx.rng pub ra) in
    let b' = Paillier.add pub diff (Paillier.encrypt s1.Ctx.rng pub rb) in
    escrow.(idx) <- (diff, ra, rb);
    Wire.Mult (a', b')
  in
  let resps = Ctx.rpc_pipeline ctx ~label:protocol ~prepare total in
  let prods =
    Array.of_list
      (List.mapi
         (fun idx resp ->
           let diff, ra, rb = escrow.(idx) in
           match resp with
           | Wire.Ct h ->
             (* ab = h - a*rb - b*ra - ra*rb *)
             let t1 = Paillier.scalar_mul pub diff rb in
             let t2 = Paillier.scalar_mul pub diff ra in
             let t3 = Paillier.encrypt s1.Ctx.rng pub (Modular.mul ra rb ~m:n) in
             Paillier.sub pub (Paillier.sub pub (Paillier.sub pub h t1) t2) t3
           | _ -> failwith "Sknn.distances: unexpected response")
         resps)
  in
  Array.init (Array.length db.records) (fun j ->
      let acc = ref (Paillier.encrypt s1.Ctx.rng pub Nat.zero) in
      for i = 0 to m - 1 do
        acc := Paillier.add pub !acc prods.((j * m) + i)
      done;
      !acc)

let query (ctx : Ctx.t) db ~point ~k =
  if Array.length point <> db.m then invalid_arg "Sknn.query: dimension mismatch";
  Obs.with_default ctx.Ctx.obs @@ fun () ->
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let ds = distances ctx db ~point in
  (* nearest-k selection through a blinded rank at S2 *)
  let rho = Gadgets.blind_scalar s1 in
  let keyed = Array.map (fun d -> Paillier.scalar_mul pub d rho) ds in
  let order =
    match Ctx.rpc ctx ~label:protocol (Wire.Rank_keys (Array.to_list keyed)) with
    | Wire.Indices order -> order
    | _ -> failwith "Sknn.query: unexpected response"
  in
  let rec take n = function [] -> [] | x :: r -> if n = 0 then [] else x :: take (n - 1) r in
  take (min k (List.length order)) order

let query_smin (ctx : Ctx.t) db ~point ~k ~bits =
  if Array.length point <> db.m then invalid_arg "Sknn.query_smin: dimension mismatch";
  Obs.with_default ctx.Ctx.obs @@ fun () ->
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let ds = distances ctx db ~point in
  let n = Array.length ds in
  (* SBD every distance once — one Lsb batch per bit level across all n
     candidates; each SMIN_k pass then runs [21]'s bitwise machinery over
     the decomposed candidates *)
  let dec_bits = Sbd.decompose_many ctx ~bits ds in
  let packed = Array.map (fun b -> Sbd.recompose ctx b) dec_bits in
  let active = Array.make n true in
  let results = ref [] in
  let max_dist = Nat.pred (Nat.shift_left Nat.one bits) in
  for _ = 1 to min k n do
    (* fold SMIN over the active candidates *)
    let cur = ref None in
    for i = 0 to n - 1 do
      if active.(i) then
        match !cur with
        | None -> cur := Some (dec_bits.(i), packed.(i))
        | Some (cb, cp) ->
          let m = Smin.min_pair_bits ctx cb dec_bits.(i) ~u_packed:cp ~v_packed:packed.(i) in
          cur := Some (Sbd.decompose ctx ~bits m, m)
    done;
    match !cur with
    | None -> ()
    | Some (_, min_packed) ->
      (* locate the winning index: S1 blinds the differences and permutes;
         S2 reports which (permuted) slot is zero. [21] likewise reveals
         which encrypted records form the answer at this point. *)
      let idxs = Array.of_list (List.filter (fun i -> active.(i)) (List.init n Fun.id)) in
      let perm = Rng.shuffle s1.Ctx.rng idxs in
      ignore perm;
      let blinded =
        Array.map
          (fun i ->
            Paillier.scalar_mul pub (Paillier.sub pub ds.(i) min_packed)
              (Gadgets.blind_scalar s1))
          idxs
      in
      let zero_slot =
        match Ctx.rpc ctx ~label:protocol (Wire.Zero_slot (Array.to_list blinded)) with
        | Wire.Slot slot -> slot
        | _ -> failwith "Sknn.query_smin: unexpected response"
      in
      (match zero_slot with
      | Some slot ->
        let winner = idxs.(slot) in
        active.(winner) <- false;
        results := winner :: !results;
        (* retire the winner: its distance becomes the domain maximum *)
        dec_bits.(winner) <- Array.init bits (fun i ->
            Paillier.encrypt s1.Ctx.rng pub
              (if Nat.nth_bit max_dist i then Nat.one else Nat.zero));
        packed.(winner) <- Paillier.encrypt s1.Ctx.rng pub max_dist;
        ds.(winner) <- packed.(winner)
      | None -> ())
  done;
  List.rev !results

module Sm = Sm
module Sbd = Sbd
module Smin = Smin
