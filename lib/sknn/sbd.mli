(** Secure Bit Decomposition (Samanthula–Jiang), the building block under
    [21]'s comparison machinery: converts [Enc(x)] into encryptions of the
    bits [Enc(x_0) .. Enc(x_(l-1))] without either server learning [x].

    Per bit: S1 additively blinds [Enc(x)], S2 decrypts the blinded value
    and returns the encryption of its least-significant bit, S1 strips the
    (known) blinding parity homomorphically and divides the remainder by
    two inside the ciphertext. [l] rounds for [l] bits. *)

open Crypto

(** [decompose ctx ~bits c] — bit encryptions, LSB first. Requires
    [0 <= x < 2^bits] and [2^(bits + slack) < n]. *)
val decompose :
  Proto.Ctx.t -> bits:int -> Paillier.ciphertext -> Paillier.ciphertext array

(** [decompose_many ctx ~bits cs] — decompose every value of [cs] in
    [bits] rounds total: the Lsb queries of one bit level across all
    values travel in a single batch (the serial dependency is only
    between the bit levels of one value). *)
val decompose_many :
  Proto.Ctx.t -> bits:int -> Paillier.ciphertext array -> Paillier.ciphertext array array

(** Homomorphically recompose bits into [Enc(x)] (for tests / SMIN). *)
val recompose : Proto.Ctx.t -> Paillier.ciphertext array -> Paillier.ciphertext
