open Bignum
open Crypto
open Proto

let protocol = "SBD"
let statistical_slack = 40

let decompose (ctx : Ctx.t) ~bits c =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let n = pub.Paillier.n in
  if bits + statistical_slack + 1 >= Nat.bit_length n then
    invalid_arg "Sbd.decompose: bits too large for the modulus";
  let half_inv = Modular.inv Nat.two ~m:n in
  let cur = ref c in
  Array.init bits (fun _ ->
      (* S1: blind with an even-tracked random r *)
      let r = Rng.nat_bits s1.Ctx.rng (bits + statistical_slack) in
      let blinded = Paillier.add pub !cur (Paillier.encrypt s1.Ctx.rng pub r) in
      (* S2: decrypt, return Enc(lsb) *)
      let lsb =
        match Ctx.rpc ctx ~label:protocol (Wire.Lsb blinded) with
        | Wire.Ct lsb -> lsb
        | _ -> failwith "Sbd.decompose: unexpected response"
      in
      (* S1: x_0 = lsb(y) xor lsb(r); then cur <- (cur - x_0) / 2 *)
      let bit =
        if Nat.is_even r then lsb
        else Paillier.sub pub (Paillier.trivial pub Nat.one) lsb
      in
      cur := Paillier.scalar_mul pub (Paillier.sub pub !cur bit) half_inv;
      bit)

let recompose (ctx : Ctx.t) bits_arr =
  let pub = ctx.Ctx.s1.Ctx.pub in
  let acc = ref (Paillier.trivial pub Nat.zero) in
  Array.iteri
    (fun i b -> acc := Paillier.add pub !acc (Paillier.scalar_mul pub b (Nat.shift_left Nat.one i)))
    bits_arr;
  !acc
