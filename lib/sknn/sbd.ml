open Bignum
open Crypto
open Proto

let protocol = "SBD"
let statistical_slack = 40

(* The bit-serial dependency is per value: bit b of value v needs bit
   b-1 of v, but never another value's bits. Decomposing many values
   therefore runs in [bits] rounds total — one Lsb batch per bit level
   across all values — instead of [bits] rounds per value. *)
let decompose_many (ctx : Ctx.t) ~bits cs =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let n = pub.Paillier.n in
  if bits + statistical_slack + 1 >= Nat.bit_length n then
    invalid_arg "Sbd.decompose: bits too large for the modulus";
  let half_inv = Modular.inv Nat.two ~m:n in
  let cur = Array.copy cs in
  let result = Array.map (fun _ -> Array.make bits (Paillier.trivial pub Nat.zero)) cs in
  for b = 0 to bits - 1 do
    (* S1: blind every value with an even-tracked random r *)
    let blinds =
      Array.map
        (fun c ->
          let r = Rng.nat_bits s1.Ctx.rng (bits + statistical_slack) in
          (r, Paillier.add pub c (Paillier.encrypt s1.Ctx.rng pub r)))
        cur
    in
    (* S2: decrypt, return Enc(lsb) — one batch for the whole level *)
    let resps =
      Ctx.rpc_batch ctx ~label:protocol
        (Array.to_list (Array.map (fun (_, blinded) -> Wire.Lsb blinded) blinds))
    in
    (* S1: x_b = lsb(y) xor lsb(r); then cur <- (cur - x_b) / 2 *)
    List.iteri
      (fun v resp ->
        let r, _ = blinds.(v) in
        let lsb =
          match resp with
          | Wire.Ct lsb -> lsb
          | _ -> failwith "Sbd.decompose: unexpected response"
        in
        let bit =
          if Nat.is_even r then lsb
          else Paillier.sub pub (Paillier.trivial pub Nat.one) lsb
        in
        result.(v).(b) <- bit;
        cur.(v) <- Paillier.scalar_mul pub (Paillier.sub pub cur.(v) bit) half_inv)
      resps
  done;
  result

let decompose (ctx : Ctx.t) ~bits c = (decompose_many ctx ~bits [| c |]).(0)

let recompose (ctx : Ctx.t) bits_arr =
  let pub = ctx.Ctx.s1.Ctx.pub in
  let acc = ref (Paillier.trivial pub Nat.zero) in
  Array.iteri
    (fun i b -> acc := Paillier.add pub !acc (Paillier.scalar_mul pub b (Nat.shift_left Nat.one i)))
    bits_arr;
  !acc
