(** The secure multiplication (SM) sub-protocol of [21]:
    [Enc(a) x Enc(b) -> Enc(a*b)] with one round through S2. S1 blinds
    both operands additively; S2 decrypts and multiplies; S1 strips the
    cross terms homomorphically. *)

open Crypto

val secure_multiply :
  Proto.Ctx.t -> Paillier.ciphertext -> Paillier.ciphertext -> Paillier.ciphertext

(** [secure_multiply_many ctx pairs] — the SMs of all [pairs] in a single
    batch round: same per-pair blinding draws as sequential execution,
    one frame. *)
val secure_multiply_many :
  Proto.Ctx.t ->
  (Paillier.ciphertext * Paillier.ciphertext) list ->
  Paillier.ciphertext list
