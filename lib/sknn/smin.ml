open Bignum
open Crypto
open Proto

let enc_one pub = Paillier.trivial pub Nat.one

let greater_bit ctx (u : Paillier.ciphertext array) (v : Paillier.ciphertext array) =
  if Array.length u <> Array.length v then invalid_arg "Smin.greater_bit: length mismatch";
  let pub = ctx.Ctx.s1.Ctx.pub in
  let l = Array.length u in
  (* e_i = u_i xor v_i: the l SMs of the XOR layer are independent — one
     batch round *)
  let products = Sm.secure_multiply_many ctx (List.init l (fun i -> (u.(i), v.(i)))) in
  let e =
    Array.of_list
      (List.mapi
         (fun i uv ->
           Paillier.sub pub (Paillier.add pub u.(i) v.(i)) (Paillier.scalar_mul pub uv Nat.two))
         products)
  in
  (* f_i = OR of e_(l-1) .. e_i ; g_i = e_i AND NOT f_(i+1) marks the
     highest differing bit. The scan is serial in the OR accumulator, but
     the two SMs of each step share its current value — one 2-element
     batch per step. *)
  let acc = ref (Paillier.trivial pub Nat.zero) in
  let g = Array.make l (enc_one pub) in
  for i = l - 1 downto 0 do
    let not_f = Paillier.sub pub (enc_one pub) !acc in
    match Sm.secure_multiply_many ctx [ (e.(i), not_f); (!acc, e.(i)) ] with
    | [ gi; acc_e ] ->
      g.(i) <- gi;
      (* or: acc + e_i - acc*e_i *)
      acc := Paillier.sub pub (Paillier.add pub !acc e.(i)) acc_e
    | _ -> assert false
  done;
  (* [u > v] = sum_i g_i * u_i  (at the highest differing bit, u wins iff
     its bit is 1) — one batch for the selection layer *)
  let terms = Sm.secure_multiply_many ctx (List.init l (fun i -> (g.(i), u.(i)))) in
  List.fold_left (Paillier.add pub) (Paillier.trivial pub Nat.zero) terms

let min_pair_bits ctx (u_bits : Paillier.ciphertext array) (v_bits : Paillier.ciphertext array)
    ~u_packed ~v_packed =
  Obs.span "SMIN" @@ fun () ->
  let pub = ctx.Ctx.s1.Ctx.pub in
  (* b = [u > v]; min = b*v + (1-b)*u — the two selection SMs batch *)
  let b = greater_bit ctx u_bits v_bits in
  let not_b = Paillier.sub pub (enc_one pub) b in
  match Sm.secure_multiply_many ctx [ (b, v_packed); (not_b, u_packed) ] with
  | [ bv; nbu ] -> Paillier.add pub bv nbu
  | _ -> assert false

let min_pair ctx ~bits u v =
  let ub = Sbd.decompose ctx ~bits u and vb = Sbd.decompose ctx ~bits v in
  min_pair_bits ctx ub vb ~u_packed:u ~v_packed:v

let min_of ctx (candidates : Paillier.ciphertext array array) =
  match Array.length candidates with
  | 0 -> invalid_arg "Smin.min_of: empty"
  | _ ->
    let packed = Array.map (fun bits -> Sbd.recompose ctx bits) candidates in
    let cur_bits = ref candidates.(0) and cur_packed = ref packed.(0) in
    for i = 1 to Array.length candidates - 1 do
      let m =
        min_pair_bits ctx !cur_bits candidates.(i) ~u_packed:!cur_packed ~v_packed:packed.(i)
      in
      (* re-decompose the running minimum for the next round *)
      cur_packed := m;
      cur_bits := Sbd.decompose ctx ~bits:(Array.length candidates.(0)) m
    done;
    !cur_bits
