open Bignum
open Crypto
open Proto

let enc_one pub = Paillier.trivial pub Nat.one

(* Enc(a XOR b) for encrypted bits: a + b - 2ab (one SM) *)
let xor_bit ctx a b =
  let pub = ctx.Ctx.s1.Ctx.pub in
  let ab = Sm.secure_multiply ctx a b in
  Paillier.sub pub (Paillier.add pub a b) (Paillier.scalar_mul pub ab Nat.two)

(* Enc(a OR b) = a + b - ab (one SM) *)
let or_bit ctx a b =
  let pub = ctx.Ctx.s1.Ctx.pub in
  Paillier.sub pub (Paillier.add pub a b) (Sm.secure_multiply ctx a b)

let greater_bit ctx (u : Paillier.ciphertext array) (v : Paillier.ciphertext array) =
  if Array.length u <> Array.length v then invalid_arg "Smin.greater_bit: length mismatch";
  let pub = ctx.Ctx.s1.Ctx.pub in
  let l = Array.length u in
  (* e_i = u_i xor v_i *)
  let e = Array.init l (fun i -> xor_bit ctx u.(i) v.(i)) in
  (* f_i = OR of e_(l-1) .. e_i ; g_i = e_i AND NOT f_(i+1) marks the
     highest differing bit *)
  let acc = ref (Paillier.trivial pub Nat.zero) in
  let g = Array.make l (enc_one pub) in
  for i = l - 1 downto 0 do
    let not_f = Paillier.sub pub (enc_one pub) !acc in
    g.(i) <- Sm.secure_multiply ctx e.(i) not_f;
    acc := or_bit ctx !acc e.(i)
  done;
  (* [u > v] = sum_i g_i * u_i  (at the highest differing bit, u wins iff
     its bit is 1) *)
  let result = ref (Paillier.trivial pub Nat.zero) in
  for i = 0 to l - 1 do
    result := Paillier.add pub !result (Sm.secure_multiply ctx g.(i) u.(i))
  done;
  !result

let min_pair_bits ctx (u_bits : Paillier.ciphertext array) (v_bits : Paillier.ciphertext array)
    ~u_packed ~v_packed =
  Obs.span "SMIN" @@ fun () ->
  let pub = ctx.Ctx.s1.Ctx.pub in
  (* b = [u > v]; min = b*v + (1-b)*u *)
  let b = greater_bit ctx u_bits v_bits in
  let not_b = Paillier.sub pub (enc_one pub) b in
  Paillier.add pub (Sm.secure_multiply ctx b v_packed) (Sm.secure_multiply ctx not_b u_packed)

let min_pair ctx ~bits u v =
  let ub = Sbd.decompose ctx ~bits u and vb = Sbd.decompose ctx ~bits v in
  min_pair_bits ctx ub vb ~u_packed:u ~v_packed:v

let min_of ctx (candidates : Paillier.ciphertext array array) =
  match Array.length candidates with
  | 0 -> invalid_arg "Smin.min_of: empty"
  | _ ->
    let packed = Array.map (fun bits -> Sbd.recompose ctx bits) candidates in
    let cur_bits = ref candidates.(0) and cur_packed = ref packed.(0) in
    for i = 1 to Array.length candidates - 1 do
      let m =
        min_pair_bits ctx !cur_bits candidates.(i) ~u_packed:!cur_packed ~v_packed:packed.(i)
      in
      (* re-decompose the running minimum for the next round *)
      cur_packed := m;
      cur_bits := Sbd.decompose ctx ~bits:(Array.length candidates.(0)) m
    done;
    !cur_bits
