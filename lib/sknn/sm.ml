open Bignum
open Crypto
open Proto

let protocol = "SkNN"

let secure_multiply (ctx : Ctx.t) a b =
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let n = pub.Paillier.n in
  let ra = Rng.nat_below s1.Ctx.rng n and rb = Rng.nat_below s1.Ctx.rng n in
  let a' = Paillier.add pub a (Paillier.encrypt s1.Ctx.rng pub ra) in
  let b' = Paillier.add pub b (Paillier.encrypt s1.Ctx.rng pub rb) in
  (* S2 multiplies the blinded plaintexts *)
  let h =
    match Ctx.rpc ctx ~label:protocol (Wire.Mult (a', b')) with
    | Wire.Ct h -> h
    | _ -> failwith "Sm.secure_multiply: unexpected response"
  in
  (* --- S1: ab = h - a*rb - b*ra - ra*rb --- *)
  let t1 = Paillier.scalar_mul pub a rb in
  let t2 = Paillier.scalar_mul pub b ra in
  let t3 = Paillier.encrypt s1.Ctx.rng pub (Modular.mul ra rb ~m:n) in
  Paillier.sub pub (Paillier.sub pub (Paillier.sub pub h t1) t2) t3
