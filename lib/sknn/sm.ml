open Bignum
open Crypto
open Proto

let protocol = "SkNN"

(* Vectorized SM: per-pair blinds drawn in list order, all the Mult
   frames in one batch round, cross terms stripped per reply. *)
let secure_multiply_many (ctx : Ctx.t) pairs =
  let s1 = ctx.Ctx.s1 in
  let pub = s1.Ctx.pub in
  let n = pub.Paillier.n in
  let blinded =
    List.map
      (fun (a, b) ->
        let ra = Rng.nat_below s1.Ctx.rng n and rb = Rng.nat_below s1.Ctx.rng n in
        let a' = Paillier.add pub a (Paillier.encrypt s1.Ctx.rng pub ra) in
        let b' = Paillier.add pub b (Paillier.encrypt s1.Ctx.rng pub rb) in
        (a, b, ra, rb, a', b'))
      pairs
  in
  let resps =
    Ctx.rpc_batch ctx ~label:protocol
      (List.map (fun (_, _, _, _, a', b') -> Wire.Mult (a', b')) blinded)
  in
  List.map2
    (fun (a, b, ra, rb, _, _) resp ->
      match resp with
      | Wire.Ct h ->
        (* --- S1: ab = h - a*rb - b*ra - ra*rb --- *)
        let t1 = Paillier.scalar_mul pub a rb in
        let t2 = Paillier.scalar_mul pub b ra in
        let t3 = Paillier.encrypt s1.Ctx.rng pub (Modular.mul ra rb ~m:n) in
        Paillier.sub pub (Paillier.sub pub (Paillier.sub pub h t1) t2) t3
      | _ -> failwith "Sm.secure_multiply_many: unexpected response")
    blinded resps

let secure_multiply (ctx : Ctx.t) a b =
  match secure_multiply_many ctx [ (a, b) ] with
  | [ ab ] -> ab
  | _ -> assert false
