open Crypto

let protocol = "SecRefresh"

let run (ctx : Ctx.t) ~items ~bottoms =
  Obs.span protocol @@ fun () ->
  match items with
  | [] -> []
  | _ ->
    let s1 = ctx.Ctx.s1 in
    let m = Array.length bottoms in
    (* one batched lift for all seen bits of all items *)
    let flat =
      List.concat_map (fun (it : Enc_item.scored) -> Array.to_list it.Enc_item.seen) items
    in
    let lifted = Array.of_list (Gadgets.lift ctx ~protocol flat) in
    let zero = Gadgets.enc_zero s1 in
    List.mapi
      (fun idx (it : Enc_item.scored) ->
        let best = ref it.Enc_item.worst in
        for l = 0 to m - 1 do
          let u = lifted.((idx * m) + l) in
          (* add bottom_l only when the object has not been seen in list l *)
          let adj =
            Gadgets.select_recover ctx ~protocol ~t:u ~if_one:zero ~if_zero:bottoms.(l)
          in
          best := Paillier.add s1.pub !best adj
        done;
        { it with Enc_item.best = !best })
      items
