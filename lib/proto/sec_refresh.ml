open Crypto

let protocol = "SecRefresh"

let run (ctx : Ctx.t) ~items ~bottoms =
  Obs.span protocol @@ fun () ->
  match items with
  | [] -> []
  | _ ->
    let s1 = ctx.Ctx.s1 in
    let m = Array.length bottoms in
    (* one batched lift for all seen bits of all items *)
    let flat =
      List.concat_map (fun (it : Enc_item.scored) -> Array.to_list it.Enc_item.seen) items
    in
    let lifted = Array.of_list (Gadgets.lift ctx ~protocol flat) in
    let zero = Gadgets.enc_zero s1 in
    (* every (item, list) adjustment is independent: one batched recover.
       Choice (idx, l) adds bottom_l only when the object has not been
       seen in list l. *)
    let choices =
      List.concat
        (List.mapi
           (fun idx (_ : Enc_item.scored) ->
             List.init m (fun l -> (lifted.((idx * m) + l), zero, bottoms.(l))))
           items)
    in
    let adjs = Array.of_list (Gadgets.select_recover_many ctx ~protocol choices) in
    List.mapi
      (fun idx (it : Enc_item.scored) ->
        let best = ref it.Enc_item.worst in
        for l = 0 to m - 1 do
          best := Paillier.add s1.pub !best adjs.((idx * m) + l)
        done;
        { it with Enc_item.best = !best })
      items
