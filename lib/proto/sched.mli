(** Cross-query round scheduler: merges concurrent queries' S2 trips.

    Instead of each query owning a transport and paying one round trip
    per protocol phase, queries {e park} their next request at the
    scheduler and block on a completion cell. A dedicated shipper domain
    coalesces everything parked into one multiplexed frame
    ([Wire.encode_mux]) and resumes each caller with its own slice.
    With [q] concurrent queries that all park within the window, [q]
    would-be trips become one — the rounds-vs-concurrency win measured
    by [bench concurrency].

    {b Ship policy.} A merged trip departs as soon as every registered
    query is parked (each query has at most one outstanding op, so
    [parked >= registered] means nobody is still computing), or when the
    oldest parked op has waited [window_us] out, whichever comes first.
    [window_us = 0] ships whatever is parked on every wake — minimum
    latency, opportunistic coalescing only.

    {b Determinism.} Ops from one query are enqueued in program order
    and answered element-wise in frame order, and S2 demultiplexes into
    per-session responder state ([S2_server.mux_state]), so each
    session's randomness stream consumes exactly the draws it would on a
    private connection: per-query results, op counters and traces are
    byte-identical to the uncoalesced baseline.

    {b Failure.} A backend failure (socket closed, reply-count mismatch,
    decode error) resumes {e every} parked caller with the exception —
    typically {!Proto_error.Proto_error} — instead of killing the
    shipper, so the serving layer degrades queries one at a time. A
    backend that re-dials its connection after a failure reports the
    loss by raising {!Backend_lost}: the scheduler then retires every
    session opened on the dead connection, answering their remaining
    ops (a straggler's next round, cleanup closes) locally with a typed
    [Proto_error] rather than shipping ids the replacement connection
    has never provisioned — new queries open fresh sessions and are
    served immediately. *)

(** Answers one merged frame of ops. Each op carries the collector that
    was ambient on the submitting domain ([Obs.current ()] at park
    time): in-process backends install it around the op so S2-side
    crypto ops land in the owning query's report, as they would on the
    Inproc transport. Socket backends ignore it. *)
type backend = (Wire.mux_op * Obs.Collector.t option) list -> Wire.mux_reply list

(** Raised by a {e reconnecting} backend when the trip failed because
    its connection died and the next call will run on a fresh one (the
    payload describes the loss). S2-side mux state is per-connection,
    so the scheduler reacts by invalidating every session opened so
    far; a backend whose state survives its failures (in-process, or a
    non-reconnecting socket) must let the original exception propagate
    instead. *)
exception Backend_lost of string

type t

(** [create ~backend ()] starts the shipper domain.
    [window_us] (default 150) bounds how long the oldest parked op waits
    for stragglers; [rtt_us] adds a simulated round-trip sleep per
    merged trip (benchmarks; default 0). [registry] receives the gauges
    [parked_queries] and counters [coalesced_rounds] / [rounds_saved]
    (a private registry is used when omitted). *)
val create :
  ?window_us:int ->
  ?rtt_us:int ->
  ?registry:Obs.Registry.t ->
  backend:backend ->
  unit ->
  t

(** Allocate a fresh session id without shipping anything (transport
    forks pair this with a [Mux_fork] op). Ids are unique per scheduler,
    starting at 1. *)
val alloc_session : t -> int

(** Register a query: allocates a session id, ships [Mux_open] (S2
    provisions a fresh responder for it) and returns the id. The query
    counts toward the all-parked ship condition until {!close_query}. *)
val open_query : t -> int

(** Retire a session: unregisters the query (so stragglers don't wait on
    it) and ships [Mux_close]. *)
val close_query : t -> int -> unit

(** Park one op and block until the merged trip answers it. Raises
    whatever the backend raised — {!Proto_error.Proto_error} for
    protocol-level desync — and [Proto_error] if the scheduler is
    stopped. *)
val submit : t -> Wire.mux_op -> Wire.mux_reply

(** Ship any residue and join the shipper domain. Subsequent submissions
    raise {!Proto_error.Proto_error}. *)
val stop : t -> unit

(** [socket_backend keys fd] ships merged frames over [fd] (one
    [write_frame]/[read_frame] exchange per trip — the whole point).
    Raises {!Proto_error.Proto_error} on EOF or a reply-count mismatch;
    [Invalid_argument] on malformed reply bytes. The shipper domain is
    the only thread touching [fd]. *)
val socket_backend : Wire.keys -> Unix.file_descr -> backend
