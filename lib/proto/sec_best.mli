(** SecBest (Protocol 8.2 / Algorithm 6): the encrypted global best score
    of one item at the current depth.

    For the target object [o] of list [i], the best score is
    [x_i(o) + sum over every other queried list j] of either [x_j(o)] —
    if [o] already appeared in list [j] within the scanned prefix — or
    list [j]'s current bottom (last seen) score.

    For each list the selection is exclusive (an object occurs at most once
    per list), so the whole per-list term needs a single RecoverEnc:
    [E2(sum_e t_e * Enc(x_e) + (1 - sum_e t_e) * Enc(bottom_j))]. *)

open Crypto

(** [run ctx ~target ~history] where [history] gives, for every other
    queried list, the entries scanned so far (depths [0..d]) and that
    list's current encrypted bottom score. *)
val run :
  Ctx.t ->
  target:Enc_item.entry ->
  history:(Enc_item.entry list * Paillier.ciphertext) list ->
  Paillier.ciphertext

(** Phase-collapsed form: the independent SecBest instances of one depth
    share two rounds (one Equality batch over every query's history lists,
    one Recover batch) instead of two each. Element-wise identical to
    separate {!run} calls. *)
val run_many :
  Ctx.t ->
  (Enc_item.entry * (Enc_item.entry list * Paillier.ciphertext) list) list ->
  Paillier.ciphertext list
