open Crypto

let protocol = "SecBest"

(* Phase 1 of one history list: shuffle, diffs. Phase 2: the local select
   fold over the equality bits, yielding either the bottom score directly
   (empty prefix) or an E2 accumulator awaiting one RecoverEnc. The
   per-list rounds are batched across the whole history: one Equality
   batch, then one Recover batch — two rounds regardless of depth. *)
let prepare (s1 : Ctx.s1) ~(target : Enc_item.entry) (seen, bottom) =
  let arr = Array.of_list seen in
  ignore (Rng.shuffle s1.rng arr);
  let permuted = Array.to_list arr in
  let diffs =
    List.map
      (fun (e : Enc_item.entry) ->
        Ehl.Ehl_plus.diff ?blind_bits:s1.blind_bits s1.rng s1.pub target.Enc_item.ehl e.Enc_item.ehl)
      permuted
  in
  (permuted, bottom, diffs)

let fold_list (s1 : Ctx.s1) (permuted, bottom, _) reply =
  let dj = s1.djpub in
  let ts =
    match reply with
    | Wire.Bits2 ts -> ts
    | _ -> failwith "Sec_best.run: unexpected response"
  in
  (* E2(sum t_e * Enc(x_e)): at most one t_e is 1 within a list. The
     selection is assembled as a multi-exponentiation spec — matched
     terms plus the unseen-selected bottom — and evaluated inside
     RecoverEnc's fused simultaneous pass. *)
  let sum_t =
    List.fold_left
      (fun acc t -> match acc with None -> Some t | Some a -> Some (Damgard_jurik.add dj a t))
      None ts
  in
  match sum_t with
  | None ->
    (* empty list prefix: the bottom value is the only contribution *)
    `Score bottom
  | Some sum_t ->
    (* E2(1 - sum t_e) selects the bottom score when the object is unseen *)
    let e2_one = Damgard_jurik.trivial dj Bignum.Nat.one in
    let unseen = Damgard_jurik.sub dj e2_one sum_t in
    `Recover
      (List.map2 (fun t (e : Enc_item.entry) -> (t, e.Enc_item.score)) ts permuted
      @ [ (unseen, bottom) ])

(* All instances of one phase share the two rounds: every query's per-list
   equality tests travel in one batch, then every pending accumulator in
   one Recover batch. A single-query call frames exactly as before. *)
let run_many (ctx : Ctx.t) queries =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let prepped =
    List.map (fun (target, history) -> (target, List.map (prepare s1 ~target) history)) queries
  in
  let all_lists = List.concat_map snd prepped in
  let replies =
    Ctx.rpc_batch ctx ~label:protocol
      (List.map (fun (_, _, diffs) -> Wire.Equality diffs) all_lists)
  in
  let pending = List.map2 (fold_list s1) all_lists replies in
  let recovered =
    Gadgets.recover_enc_specs ctx ~protocol
      (List.filter_map (function `Recover spec -> Some spec | `Score _ -> None) pending)
  in
  let per_list_scores =
    let rec stitch pending recovered =
      match (pending, recovered) with
      | [], [] -> []
      | `Score b :: rest, rs -> b :: stitch rest rs
      | `Recover _ :: rest, r :: rs -> r :: stitch rest rs
      | _ -> assert false
    in
    ref (stitch pending recovered)
  in
  let next n =
    let rec go n acc l =
      if n = 0 then (List.rev acc, l)
      else match l with x :: rest -> go (n - 1) (x :: acc) rest | [] -> assert false
    in
    let taken, rest = go n [] !per_list_scores in
    per_list_scores := rest;
    taken
  in
  List.map
    (fun ((target : Enc_item.entry), lists) ->
      List.fold_left (Paillier.add s1.pub) target.Enc_item.score (next (List.length lists)))
    prepped

let run (ctx : Ctx.t) ~target ~history =
  match run_many ctx [ (target, history) ] with [ r ] -> r | _ -> assert false
