open Crypto

let protocol = "SecBest"

let per_list (ctx : Ctx.t) ~(target : Enc_item.entry) (seen, bottom) =
  let s1 = ctx.Ctx.s1 in
  let dj = s1.djpub in
  let arr = Array.of_list seen in
  ignore (Rng.shuffle s1.rng arr);
  let permuted = Array.to_list arr in
  let diffs =
    List.map
      (fun (e : Enc_item.entry) ->
        Ehl.Ehl_plus.diff ?blind_bits:s1.blind_bits s1.rng s1.pub target.Enc_item.ehl e.Enc_item.ehl)
      permuted
  in
  let ts = Gadgets.equality_round ctx ~protocol diffs in
  (* E2(sum t_e * Enc(x_e)): at most one t_e is 1 within a list *)
  let matched =
    List.fold_left2
      (fun acc t (e : Enc_item.entry) ->
        let term = Damgard_jurik.scalar_mul_ct dj t e.Enc_item.score in
        match acc with None -> Some term | Some a -> Some (Damgard_jurik.add dj a term))
      None ts permuted
  in
  (* E2(1 - sum t_e) selects the bottom score when the object is unseen *)
  let sum_t =
    List.fold_left
      (fun acc t -> match acc with None -> Some t | Some a -> Some (Damgard_jurik.add dj a t))
      None ts
  in
  match (matched, sum_t) with
  | None, None ->
    (* empty list prefix: the bottom value is the only contribution *)
    bottom
  | Some matched, Some sum_t ->
    let e2_one = Damgard_jurik.trivial dj Bignum.Nat.one in
    let unseen = Damgard_jurik.sub dj e2_one sum_t in
    let acc = Damgard_jurik.add dj matched (Damgard_jurik.scalar_mul_ct dj unseen bottom) in
    Gadgets.recover_enc ctx ~protocol acc
  | _ -> assert false

let run (ctx : Ctx.t) ~target ~history =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let per_list_scores = List.map (per_list ctx ~target) history in
  List.fold_left (Paillier.add s1.pub) target.Enc_item.score per_list_scores
