(** Encrypted data items as held by S1.

    An [entry] is one cell of an encrypted sorted list:
    [E(I) = (EHL(o), Enc(x))] (Section 6). A [scored] item is an entry of
    the running top-k list [T]:
    [E(I) = (EHL(o), Enc(W), Enc(B))] (Section 8.1). *)

open Crypto

type entry = { ehl : Ehl.Ehl_plus.t; score : Paillier.ciphertext }

type scored = {
  ehl : Ehl.Ehl_plus.t;
  worst : Paillier.ciphertext;
  best : Paillier.ciphertext;
  seen : Paillier.ciphertext array;
      (** Encrypted 0/1 indicator per queried list: has this object
          appeared in that list within the scanned prefix? Derived from
          SecWorst's equality round and merged by SecUpdate; drives the
          oblivious best-score refresh [B = W + sum of unseen bottoms]
          (the per-depth upper-bound updates visible in Figure 3). *)
}

(** Blinding escrow attached to a masked item in SecDedup (Algorithm 7):
    one mask per EHL cell, worst, best and seen slot, each encrypted under
    S1's personal key [pk'] so S2 can layer its own masks homomorphically
    without reading them. *)
type pack = {
  alphas : Paillier.ciphertext array;
  beta : Paillier.ciphertext;
  gamma : Paillier.ciphertext;
  sigmas : Paillier.ciphertext array;
}

val entry_bytes : Paillier.public -> entry -> int
val scored_bytes : Paillier.public -> scored -> int
val pack_bytes : Paillier.public -> pack -> int

(** Fresh randomness on all components. *)
val rerandomize_scored : Rng.t -> Paillier.public -> scored -> scored

(** Pool-backed re-randomization: one precomputed noise factor (and one
    modular mul) per ciphertext, consumed in field order. *)
val rerandomize_scored_with :
  Paillier.public -> noise:(unit -> Bignum.Nat.t) -> scored -> scored
