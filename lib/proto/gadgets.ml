open Bignum
open Crypto

let blind_scalar (s1 : Ctx.s1) =
  match s1.blind_bits with
  | None -> Rng.unit_mod s1.rng s1.pub.Paillier.n
  | Some bits -> Nat.succ (Rng.nat_bits s1.rng bits)

(* One batched equality test: S2 decrypts each blinded difference and
   returns E2(1)/E2(0) per entry. The rpc happens even for an empty batch:
   the protocol's round (and S2's empty Equality_bits trace entry) exists
   either way. *)
let equality_round (ctx : Ctx.t) ~protocol diffs =
  match Ctx.rpc ctx ~label:protocol (Wire.Equality diffs) with
  | Wire.Bits2 replies -> replies
  | _ -> failwith "Gadgets.equality_round: unexpected response"

let conjunction_round (ctx : Ctx.t) ~protocol groups =
  match Ctx.rpc ctx ~label:protocol (Wire.Conjunction groups) with
  | Wire.Bits2 replies -> replies
  | _ -> failwith "Gadgets.conjunction_round: unexpected response"

let select (s1 : Ctx.s1) ~t ~if_one ~if_zero =
  let dj = s1.djpub in
  (* the constant E2(1) may be a deterministic encryption: every select
     output is re-randomized by RecoverEnc's blinding before leaving S1 *)
  let e2_one = Damgard_jurik.trivial dj Nat.one in
  let one_minus_t = Damgard_jurik.sub dj e2_one t in
  Damgard_jurik.add dj
    (Damgard_jurik.scalar_mul_ct dj t if_one)
    (Damgard_jurik.scalar_mul_ct dj one_minus_t if_zero)

let recover_enc (ctx : Ctx.t) ~protocol e2c =
  let s1 = ctx.Ctx.s1 in
  let r = Rng.nat_below s1.rng s1.pub.Paillier.n in
  let enc_r = Paillier.encrypt s1.rng s1.pub r in
  let blinded = Damgard_jurik.scalar_mul_ct s1.djpub e2c enc_r in
  (* S2 strips the outer layer; the inner Enc(c+r) is blinded *)
  match Ctx.rpc ctx ~label:protocol (Wire.Recover blinded) with
  | Wire.Ct inner -> Paillier.sub s1.pub inner enc_r (* back at S1: remove r *)
  | _ -> failwith "Gadgets.recover_enc: unexpected response"

let select_recover ctx ~protocol ~t ~if_one ~if_zero =
  recover_enc ctx ~protocol (select ctx.Ctx.s1 ~t ~if_one ~if_zero)

(* Batched RecoverEnc: per-element blinding drawn in list order (the same
   draws singleton execution makes), then every Recover in one frame. *)
let recover_enc_many (ctx : Ctx.t) ~protocol e2cs =
  let s1 = ctx.Ctx.s1 in
  let blinded =
    List.map
      (fun e2c ->
        let r = Rng.nat_below s1.rng s1.pub.Paillier.n in
        let enc_r = Paillier.encrypt s1.rng s1.pub r in
        (enc_r, Damgard_jurik.scalar_mul_ct s1.djpub e2c enc_r))
      e2cs
  in
  let resps =
    Ctx.rpc_batch ctx ~label:protocol (List.map (fun (_, b) -> Wire.Recover b) blinded)
  in
  List.map2
    (fun (enc_r, _) resp ->
      match resp with
      | Wire.Ct inner -> Paillier.sub s1.pub inner enc_r
      | _ -> failwith "Gadgets.recover_enc_many: unexpected response")
    blinded resps

(* Batched RecoverEnc over multi-exponentiation specs. Each spec is the
   pair list of one E2 accumulator [sum_i k_i * x_i]; since the RecoverEnc
   blinding is itself an exponentiation, [(prod c_i^{k_i})^e =
   prod c_i^{k_i * e}], it folds into the same simultaneous pass and the
   blinding costs no extra modexp. Blinding draws happen in list order
   (the same draws {!recover_enc_many} makes). *)
let recover_enc_specs (ctx : Ctx.t) ~protocol specs =
  let s1 = ctx.Ctx.s1 in
  let blinded =
    List.map
      (fun pairs ->
        let r = Rng.nat_below s1.rng s1.pub.Paillier.n in
        let enc_r = Paillier.encrypt s1.rng s1.pub r in
        let e = Paillier.to_nat enc_r in
        (* account for the blinding exponentiation the fold absorbs *)
        Obs.bump Obs.Metrics.Dj_mul;
        ( enc_r,
          Damgard_jurik.scalar_mul_many s1.djpub
            (List.map (fun (c, k) -> (c, Nat.mul (Paillier.to_nat k) e)) pairs) ))
      specs
  in
  let resps =
    Ctx.rpc_batch ctx ~label:protocol (List.map (fun (_, b) -> Wire.Recover b) blinded)
  in
  List.map2
    (fun (enc_r, _) resp ->
      match resp with
      | Wire.Ct inner -> Paillier.sub s1.pub inner enc_r
      | _ -> failwith "Gadgets.recover_enc_specs: unexpected response")
    blinded resps

let select_recover_many (ctx : Ctx.t) ~protocol choices =
  let dj = ctx.Ctx.s1.djpub in
  recover_enc_specs ctx ~protocol
    (List.map
       (fun (t, if_one, if_zero) ->
         let e2_one = Damgard_jurik.trivial dj Nat.one in
         let one_minus_t = Damgard_jurik.sub dj e2_one t in
         [ (t, if_one); (one_minus_t, if_zero) ])
       choices)

let lift (ctx : Ctx.t) ~protocol cts =
  let s1 = ctx.Ctx.s1 in
  (* blinding below n/2 so that bit + r never wraps mod n (a wrap would
     corrupt the value when the blinding is stripped in the wider DJ
     plaintext space) *)
  let half = Nat.shift_right s1.pub.Paillier.n 1 in
  let blinded =
    List.map
      (fun c ->
        let r = Rng.nat_below s1.rng half in
        (r, Paillier.add s1.pub c (Paillier.encrypt s1.rng s1.pub r)))
      cts
  in
  (* S2 re-encrypts the (blinded, uniform) plaintexts under DJ *)
  let lifted =
    match Ctx.rpc ctx ~label:protocol (Wire.Lift (List.map snd blinded)) with
    | Wire.Bits2 lifted -> lifted
    | _ -> failwith "Gadgets.lift: unexpected response"
  in
  (* S1 strips the blinding inside the DJ layer *)
  List.map2
    (fun (r, _) e2 ->
      Damgard_jurik.sub s1.djpub e2 (Damgard_jurik.encrypt s1.rng s1.djpub r))
    blinded lifted

let enc_zero (s1 : Ctx.s1) = ignore s1.rng; Paillier.trivial s1.pub Nat.zero

let enc_int (s1 : Ctx.s1) v =
  if v < 0 then invalid_arg "Gadgets.enc_int: negative";
  Paillier.encrypt s1.rng s1.pub (Nat.of_int v)
