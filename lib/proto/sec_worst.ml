open Crypto

let protocol = "SecWorst"

let run (ctx : Ctx.t) ~(target : Enc_item.entry) ~(others : Enc_item.entry list) =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  (* S1: random permutation over H hides pairwise relations from S2 *)
  let arr = Array.of_list others in
  let perm = Rng.shuffle s1.rng arr in
  let permuted = Array.to_list arr in
  let diffs =
    List.map
      (fun (o : Enc_item.entry) ->
        Ehl.Ehl_plus.diff ?blind_bits:s1.blind_bits s1.rng s1.pub target.Enc_item.ehl o.Enc_item.ehl)
      permuted
  in
  let ts = Gadgets.equality_round ctx ~protocol diffs in
  (* x'_i = x_i if o_i = o else 0; recovered per item because several items
     of the same depth can match the target simultaneously *)
  let zero = Gadgets.enc_zero s1 in
  let contributions =
    List.map2
      (fun t (o : Enc_item.entry) ->
        Gadgets.select_recover ctx ~protocol ~t ~if_one:o.Enc_item.score ~if_zero:zero)
      ts permuted
  in
  let worst = List.fold_left (Paillier.add s1.pub) target.Enc_item.score contributions in
  (* undo S1's own permutation on the indicators: perm maps new -> old *)
  match ts with
  | [] -> (worst, [])
  | first :: _ ->
    let ts_arr = Array.of_list ts in
    let unpermuted = Array.make (Array.length ts_arr) first in
    Array.iteri (fun new_i old_i -> unpermuted.(old_i) <- ts_arr.(new_i)) perm;
    (worst, Array.to_list unpermuted)
