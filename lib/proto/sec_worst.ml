open Crypto

let protocol = "SecWorst"

(* All instances of one phase share two rounds: every query's equality
   tests travel in one batch, then every query's selected contributions in
   one recover batch. A single-query call frames exactly as the historical
   per-item protocol (singleton batches delegate to plain rpcs).

   The optional [seen] callback lets SecQuery piggyback its seen-vector
   selections on the same recover batch: once the equality indicators are
   known (and unpermuted back to the caller's order), [seen i ts] returns
   extra [(t, if_one, if_zero)] choices for query [i] whose recoveries
   ride along with the contribution recoveries — no third round. *)
let run_many ?seen (ctx : Ctx.t) (queries : (Enc_item.entry * Enc_item.entry list) list) =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  (* S1: a random permutation over each H hides pairwise relations from S2 *)
  let prepped =
    List.map
      (fun ((target : Enc_item.entry), others) ->
        let arr = Array.of_list others in
        let perm = Rng.shuffle s1.rng arr in
        let permuted = Array.to_list arr in
        let diffs =
          List.map
            (fun (o : Enc_item.entry) ->
              Ehl.Ehl_plus.diff ?blind_bits:s1.blind_bits s1.rng s1.pub target.Enc_item.ehl
                o.Enc_item.ehl)
            permuted
        in
        (target, perm, permuted, diffs))
      queries
  in
  let ts_per_query =
    List.map
      (function
        | Wire.Bits2 ts -> ts
        | _ -> failwith "Sec_worst.run_many: unexpected response")
      (Ctx.rpc_batch ctx ~label:protocol
         (List.map (fun (_, _, _, diffs) -> Wire.Equality diffs) prepped))
  in
  (* undo S1's own permutation on the indicators: perm maps new -> old *)
  let unpermuted_per_query =
    List.map2
      (fun (_, perm, _, _) ts ->
        match ts with
        | [] -> []
        | first :: _ ->
          let ts_arr = Array.of_list ts in
          let u = Array.make (Array.length ts_arr) first in
          Array.iteri (fun new_i old_i -> u.(old_i) <- ts_arr.(new_i)) perm;
          Array.to_list u)
      prepped ts_per_query
  in
  (* x'_i = x_i if o_i = o else 0; recovered per item because several items
     of the same depth can match the target simultaneously *)
  let zero = Gadgets.enc_zero s1 in
  let contrib_choices =
    List.map2
      (fun (_, _, permuted, _) ts ->
        List.map2 (fun t (o : Enc_item.entry) -> (t, o.Enc_item.score, zero)) ts permuted)
      prepped ts_per_query
  in
  let extra_choices =
    match seen with
    | None -> List.map (fun _ -> []) prepped
    | Some f -> List.mapi f unpermuted_per_query
  in
  let picked =
    ref
      (Gadgets.select_recover_many ctx ~protocol
         (List.concat contrib_choices @ List.concat extra_choices))
  in
  let next n =
    let rec go n acc l =
      if n = 0 then (List.rev acc, l)
      else match l with x :: rest -> go (n - 1) (x :: acc) rest | [] -> assert false
    in
    let taken, rest = go n [] !picked in
    picked := rest;
    taken
  in
  let worsts =
    List.map2
      (fun ((target : Enc_item.entry), _, permuted, _) _ ->
        List.fold_left (Paillier.add s1.pub) target.Enc_item.score
          (next (List.length permuted)))
      prepped ts_per_query
  in
  let extra_picks = List.map (fun choices -> next (List.length choices)) extra_choices in
  List.map2
    (fun (worst, unpermuted) extras -> (worst, unpermuted, extras))
    (List.combine worsts unpermuted_per_query)
    extra_picks

let run (ctx : Ctx.t) ~(target : Enc_item.entry) ~(others : Enc_item.entry list) =
  match run_many ctx [ (target, others) ] with
  | [ (worst, ts, _) ] -> (worst, ts)
  | _ -> assert false
