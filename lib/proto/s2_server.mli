(** The S2 party: key holder and responder.

    S2 owns the Paillier/DJ secret keys, its own randomness stream and the
    {!Trace} of everything it decrypts. It never sees S1 state — its whole
    view is the stream of {!Wire.request} frames dispatched to {!handle},
    each carrying the protocol label under which revealed facts are traced.
    The same handler code serves all three transports, so results, traces
    and operation counts are byte-identical whether S2 runs in-process or
    as a separate daemon. *)

open Crypto

type t

val create :
  pub:Paillier.public ->
  djpub:Damgard_jurik.public ->
  sk:Paillier.secret ->
  djsk:Damgard_jurik.secret ->
  own_pub:Paillier.public ->
  rng:Rng.t ->
  t

(** Rebuild S2 state from the client's provisioning parameters, replaying
    the seeded generator in the exact order [Ctx.provision] consumes it
    (keygen, then the "ctx"/"s1"/"s2" forks). Demo/test provisioning: real
    deployments ship keys out-of-band. *)
val of_hello : Wire.hello -> t

(** Answer one request; the label names the protocol for trace purposes. *)
val handle : t -> label:string -> Wire.request -> Wire.response

(** Fork a child session for one parallel task (fresh rng fork + empty
    trace, shared keys); [join] folds the child's trace back in call
    order. Mirrors [Ctx.parallel]'s S1-side forks one-to-one. *)
val fork : t -> label:string -> t

val join : t -> into:t -> unit
val trace : t -> Trace.t
val secret_key : t -> Paillier.secret

(** The server's precomputed Paillier re-randomization noise pool (one
    per session; forked sessions get their own). Exposed so an embedding
    can [Noise_pool.prefill] or [start_filler]/[quiesce] it. *)
val noise_pool : t -> Noise_pool.t

(** {2 Multiplexed sessions}

    State behind one coalescing scheduler ({!Sched}): sessions opened by
    [Mux_open] ops, keyed by their correlation tag. [make ~session]
    provisions a fresh responder exactly as a dedicated connection would
    — the daemon passes [of_hello]'s replay, an in-process backend the
    baseline [create] — so every session's randomness stream matches the
    uncoalesced path byte for byte. *)
type mux_state

val mux_state : make:(session:int -> t) -> mux_state

(** Answer one merged frame of ops, element-wise in frame order. Each
    op's optional collector is installed around it so S2-side crypto
    counts in the owning query's report (in-process backends). Unknown
    or duplicate sessions raise [Invalid_argument], matching the codec's
    treatment of malformed frames. *)
val handle_mux_ops :
  mux_state -> (Wire.mux_op * Obs.Collector.t option) list -> Wire.mux_reply list

(** Serve one connection: expects a [Hello] control frame, then answers
    request/control/mux frames until EOF or [Shutdown]. Runs the daemon
    side of the Socket transport; mux frames ([Sched.socket_backend])
    demultiplex into per-session responders provisioned by [of_hello]. [on_ready] (if given) is called once after
    provisioning with the setup wall time in seconds — key replay plus
    Montgomery-context and fixed-base-comb warmup — so a daemon can log
    what its first client paid before the first request was served.

    [registry] (if given) makes the connection scrapeable: a [Stats_req]
    control frame — mid-session, or as the very first frame from a
    key-less monitoring client — answers with [Stats_resp] carrying the
    registry snapshot (mid-session scrapes also fold in the connection's
    op counters as [op_*] counter series). *)
val serve_fd :
  ?on_ready:(float -> unit) -> ?registry:Obs.Registry.t -> Unix.file_descr -> unit
