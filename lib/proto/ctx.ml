open Crypto

type s1 = {
  pub : Paillier.public;
  djpub : Damgard_jurik.public;
  rng : Rng.t;
  chan : Channel.t;
  blind_bits : int option;
  own_pub : Paillier.public;
  own_sk : Paillier.secret;
}

type s2 = {
  pub2 : Paillier.public;
  djpub2 : Damgard_jurik.public;
  sk : Paillier.secret;
  djsk : Damgard_jurik.secret;
  rng2 : Rng.t;
  chan2 : Channel.t;
  trace : Trace.t;
}

type t = { s1 : s1; s2 : s2; domains : int; obs : Obs.Collector.t }

let of_keys ?blind_bits ?(domains = 1) rng pub sk =
  let djpub, djsk_opt = Damgard_jurik.of_paillier pub (Some sk) in
  let djsk = Option.get djsk_opt in
  let chan = Channel.create () in
  let s1_rng = Rng.fork rng ~label:"s1" in
  let own_pub, own_sk = Paillier.keygen s1_rng ~bits:(pub.Paillier.key_bits + 16) in
  {
    s1 = { pub; djpub; rng = s1_rng; chan; blind_bits; own_pub; own_sk };
    s2 =
      {
        pub2 = pub;
        djpub2 = djpub;
        sk;
        djsk;
        rng2 = Rng.fork rng ~label:"s2";
        chan2 = chan;
        trace = Trace.create ();
      };
    domains;
    obs = Obs.Collector.create ();
  }

let create ?blind_bits ?domains rng ~bits =
  let pub, sk = Paillier.keygen rng ~bits in
  of_keys ?blind_bits ?domains rng pub sk

let with_domains t domains = { t with domains }

let parallel t ~jobs f =
  (* Fork every sub-context up front, in index order: randomness and
     accounting are then a pure function of (state, jobs), independent of
     [t.domains] and of domain scheduling. *)
  let subs = Array.make jobs t in
  for i = 0 to jobs - 1 do
    let label = "par:" ^ string_of_int i in
    let chan = Channel.create () in
    subs.(i) <-
      {
        s1 = { t.s1 with rng = Rng.fork t.s1.rng ~label; chan };
        s2 =
          {
            t.s2 with
            rng2 = Rng.fork t.s2.rng2 ~label;
            chan2 = chan;
            trace = Trace.create ();
          };
        domains = 1;
        obs = Obs.Collector.create ();
      }
  done;
  (* The observability sink is whatever collector is current on the
     calling domain (the protocol entry point installed it); each task
     runs against its sub-context's private collector, merged back below
     in index order so counters and span trees are width-independent. *)
  let sink = match Obs.current () with Some c -> c | None -> t.obs in
  let results =
    Core.Pool.run ~domains:t.domains ~jobs (fun i ->
        Obs.with_collector subs.(i).obs (fun () -> f subs.(i) i))
  in
  for i = 0 to jobs - 1 do
    Channel.merge_into subs.(i).s1.chan ~into:t.s1.chan;
    Trace.append_into subs.(i).s2.trace ~into:t.s2.trace;
    Obs.Collector.merge_into subs.(i).obs ~into:sink
  done;
  results

let paillier_ct_bytes t = Paillier.ciphertext_bytes t.s1.pub
let dj_ct_bytes t = Damgard_jurik.ciphertext_bytes t.s1.djpub
let sentinel_z (s1 : s1) = Bignum.Nat.pred s1.pub.Paillier.n
