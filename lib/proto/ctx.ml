open Crypto

type s1 = {
  pub : Paillier.public;
  djpub : Damgard_jurik.public;
  rng : Rng.t;
  blind_bits : int option;
  own_pub : Paillier.public;
  own_sk : Paillier.secret;
  djnoise : Noise_pool.t;
}

let make_djnoise rng djpub =
  Noise_pool.create rng ~label:"djnoise" (fun r -> Damgard_jurik.noise r djpub)

type t = {
  s1 : s1;
  transport : Transport.t;
  domains : int;
  obs : Obs.Collector.t;
  batching : bool;
}

type mode =
  | Inproc
  | Loopback
  | Socket_fd of Unix.file_descr
  | Mux of Sched.t * int (* shared round scheduler + this query's session id *)

let default_mode () =
  match Sys.getenv_opt "TRANSPORT" with
  | Some "loopback" -> Loopback
  | Some "inproc" | None -> Inproc
  | Some other -> invalid_arg ("Ctx: unknown TRANSPORT " ^ other)

let of_keys ?blind_bits ?(domains = 1) ?mode ?rtt_us rng pub sk =
  let mode = match mode with Some m -> m | None -> default_mode () in
  let djpub, djsk_opt = Damgard_jurik.of_paillier pub (Some sk) in
  let s1_rng = Rng.fork rng ~label:"s1" in
  (* S1's personal key inherits the noise policy of the main key so the
     escrow-pack encryptions also run off a fixed-base comb; keygen's
     draw sequence does not depend on [rand_bits], and
     [S2_server.of_hello] applies the same policy when it replays this
     derivation. *)
  let own_pub, own_sk =
    Paillier.keygen ?rand_bits:pub.Paillier.rand_bits s1_rng
      ~bits:(pub.Paillier.key_bits + 16)
  in
  (* Build every long-lived table (Montgomery contexts, fixed-base
     combs) before the first query; under a collector this shows up as
     one startup span. *)
  Obs.span "comb_warmup" (fun () ->
      Paillier.precompute pub;
      Damgard_jurik.precompute djpub;
      Paillier.precompute own_pub);
  let s2_rng = Rng.fork rng ~label:"s2" in
  let keys = Wire.keys_of ~pub ~djpub ~own_pub in
  let transport =
    match mode with
    | Socket_fd fd -> Transport.socket keys fd
    | Mux (sched, session) ->
      (* [s2_rng] was forked above regardless — the S1 stream must not
         depend on who runs S2 — and the scheduler's backend provisions
         the byte-identical responder on the other side of the frame *)
      Transport.mux keys sched ~session
    | Inproc | Loopback ->
      let server =
        S2_server.create ~pub ~djpub ~sk ~djsk:(Option.get djsk_opt) ~own_pub ~rng:s2_rng
      in
      (match mode with
      | Inproc -> Transport.inproc keys server
      | Loopback -> Transport.loopback ?rtt_us keys server
      | Socket_fd _ | Mux _ -> assert false)
  in
  {
    s1 =
      {
        pub;
        djpub;
        rng = s1_rng;
        blind_bits;
        own_pub;
        own_sk;
        djnoise = make_djnoise s1_rng djpub;
      };
    transport;
    domains;
    obs = Obs.Collector.create ();
    batching = true;
  }

let create ?blind_bits ?domains ?mode ?rtt_us rng ~bits =
  let pub, sk = Paillier.keygen rng ~bits in
  of_keys ?blind_bits ?domains ?mode ?rtt_us rng pub sk

(* Canonical seeded provisioning, shared verbatim by [S2_server.of_hello]:
   any reordering here desynchronises a socket daemon's randomness stream
   from the client's. *)
let provision ~seed ~key_bits ?rand_bits () =
  let root = Rng.create ~seed in
  let pub, sk = Paillier.keygen ?rand_bits root ~bits:key_bits in
  let ctx_rng = Rng.fork root ~label:"ctx" in
  let data_rng = Rng.fork root ~label:"data" in
  (pub, sk, ctx_rng, data_rng)

let with_domains t domains = { t with domains }
let with_batching t batching = { t with batching }

let rpc t ~label req = Transport.rpc t.transport ~label req

(* One round trip carrying [n] independent requests. Empty lists produce
   no traffic; singletons delegate to [rpc] so singleton-sized fan-outs
   leave the exact frames (and channel labels) they always did. With
   batching forced off every element travels alone — same decryptions,
   trace events and rng draws on both sides, only the framing differs. *)
let rpc_batch t ~label reqs =
  match reqs with
  | [] -> []
  | [ req ] -> [ rpc t ~label req ]
  | reqs when not t.batching -> List.map (rpc t ~label) reqs
  | reqs -> (
    match rpc t ~label (Wire.Batch reqs) with
    | Wire.Batch_resp resps when List.length resps = List.length reqs -> resps
    | Wire.Batch_resp resps ->
      (* typed desync: a hostile or broken S2 answers [Server_error], it
         does not kill the session domain *)
      Proto_error.fail "Ctx.rpc_batch: %d responses to %d requests under %s"
        (List.length resps) (List.length reqs) label
    | _ -> Proto_error.fail "Ctx.rpc_batch: expected batch response under %s" label)

(* Double-buffered batching: while chunk [i] is in flight on a helper
   domain, the caller's domain prepares chunk [i+1]. [prepare] runs
   strictly in index order on the calling domain, so the S1 randomness
   stream is identical to sequential execution; chunks are sent one at a
   time, so the S2 stream is too. Each chunk's rpc runs under a private
   collector merged back in chunk order — on both the overlapped and the
   sequential path — keeping reports independent of [t.domains]. *)
let rpc_pipeline t ~label ?(chunk = 16) ~prepare n =
  if chunk <= 0 then invalid_arg "Ctx.rpc_pipeline: chunk <= 0";
  let sink = match Obs.current () with Some c -> c | None -> t.obs in
  let overlap = t.domains > 1 && Transport.concurrent t.transport in
  let send reqs =
    let c = Obs.Collector.create () in
    let resps = Obs.with_collector c (fun () -> rpc_batch t ~label reqs) in
    (c, resps)
  in
  let out = ref [] in
  let merge (c, resps) =
    Obs.Collector.merge_into c ~into:sink;
    out := resps :: !out
  in
  let idx = ref 0 in
  let next_chunk () =
    if !idx >= n then None
    else begin
      let m = min chunk (n - !idx) in
      let base = !idx in
      (* explicit loop: [prepare] draws randomness, so index order is part
         of the determinism contract *)
      let reqs = ref [] in
      for j = 0 to m - 1 do
        reqs := prepare (base + j) :: !reqs
      done;
      idx := base + m;
      Some (List.rev !reqs)
    end
  in
  let rec loop pending =
    match pending with
    | None -> ()
    | Some reqs ->
      if overlap then begin
        let inflight = Core.Pool.background (fun () -> send reqs) in
        let nxt = next_chunk () in
        merge (Core.Pool.await inflight);
        loop nxt
      end
      else begin
        merge (send reqs);
        loop (next_chunk ())
      end
  in
  loop (next_chunk ());
  List.concat (List.rev !out)
let channel t = Transport.channel t.transport
let sk t = Transport.secret_key t.transport
let trace t = Transport.trace t.transport
let trace_events t = Transport.trace_events t.transport
let remote_stats t = Transport.remote_stats t.transport
let transport_name t = Transport.mode_name t.transport

let parallel t ~jobs f =
  (* Fork every sub-context up front, in index order: randomness and
     accounting are then a pure function of (state, jobs), independent of
     [t.domains] and of domain scheduling. The S2 halves fork in the same
     order through the transport (locally or via Fork control frames). *)
  let subs = Array.make jobs t in
  for i = 0 to jobs - 1 do
    let label = "par:" ^ string_of_int i in
    let sub_rng = Rng.fork t.s1.rng ~label in
    subs.(i) <-
      {
        s1 = { t.s1 with rng = sub_rng; djnoise = make_djnoise sub_rng t.s1.djpub };
        transport = Transport.fork t.transport ~label;
        domains = 1;
        obs = Obs.Collector.create ();
        batching = t.batching;
      }
  done;
  (* The socket transport is one ordered byte stream: interleaved frames
     from several domains would corrupt it, so parallelism degrades to
     sequential execution there (index order, same results). *)
  let domains = if Transport.concurrent t.transport then t.domains else 1 in
  (* The observability sink is whatever collector is current on the
     calling domain (the protocol entry point installed it); each task
     runs against its sub-context's private collector, merged back below
     in index order so counters and span trees are width-independent. *)
  let sink = match Obs.current () with Some c -> c | None -> t.obs in
  let results =
    Core.Pool.run ~domains ~jobs (fun i ->
        Obs.with_collector subs.(i).obs (fun () -> f subs.(i) i))
  in
  for i = 0 to jobs - 1 do
    Transport.join_sub subs.(i).transport ~into:t.transport;
    Obs.Collector.merge_into subs.(i).obs ~into:sink
  done;
  results

let paillier_ct_bytes t = Paillier.ciphertext_bytes t.s1.pub
let dj_ct_bytes t = Damgard_jurik.ciphertext_bytes t.s1.djpub
let sentinel_z (s1 : s1) = Bignum.Nat.pred s1.pub.Paillier.n
