(** The S1 <-> S2 link. Every byte the two clouds exchange flows through
    [send], labelled with the protocol that produced it, which is what the
    bandwidth experiments (Fig. 13, Table 3) measure. The channel also
    models link latency analytically, as the paper does (Section 11.2.5). *)

type direction = S1_to_s2 | S2_to_s1

type t

val create : unit -> t

(** [send t ~dir ~label ~bytes] records one message. *)
val send : t -> dir:direction -> label:string -> bytes:int -> unit

(** Mark the end of a request/response round trip. *)
val round_trip : t -> unit

val bytes_total : t -> int
val messages_total : t -> int
val rounds_total : t -> int

(** Bytes grouped by protocol label, descending. *)
val bytes_by_label : t -> (string * int) list

(** [merge_into src ~into] folds the counters of [src] into [into]
    (leaving [src] untouched). Sub-channels of parallel protocol batches
    are merged back in task-index order, so totals equal — and are as
    deterministic as — a serial run. Summing [rounds] is the conservative
    accounting choice: it ignores that parallel round trips overlap. *)
val merge_into : t -> into:t -> unit

(** Zero all counters. *)
val reset : t -> unit

(** Snapshot of the counters, for before/after diffs. *)
type snapshot = { bytes : int; messages : int; rounds : int }

val snapshot : t -> snapshot
val diff : snapshot -> snapshot -> snapshot

(** Analytic latency of the traffic recorded so far: transfer time at
    [bandwidth_mbps] plus [rtt_ms] per round trip (the paper assumes a
    50 Mbps inter-cloud link). *)
val latency_seconds : ?rtt_ms:float -> bandwidth_mbps:float -> t -> float

val latency_of_snapshot : ?rtt_ms:float -> bandwidth_mbps:float -> snapshot -> float
