open Bignum
open Crypto

let protocol = "SecUpdate"

(* E2(sum of ts) — at most one t is 1 by the caller's invariant. *)
let e2_sum dj ts =
  match ts with
  | [] -> invalid_arg "Sec_update.e2_sum: empty"
  | t :: rest -> List.fold_left (Damgard_jurik.add dj) t rest

let run (ctx : Ctx.t) ~mode ~t_list ~gamma =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let dj = s1.djpub in
  match (t_list, gamma) with
  | [], g -> g
  | t, [] -> t
  | _ ->
    let olds = Array.of_list t_list in
    let news = Array.of_list gamma in
    ignore (Rng.shuffle s1.rng news);
    let n_old = Array.length olds and n_new = Array.length news in
    (* one equality round for the whole |gamma| x |T| grid *)
    let diffs = ref [] in
    for i = n_new - 1 downto 0 do
      for j = n_old - 1 downto 0 do
        let d =
          Ehl.Ehl_plus.diff ?blind_bits:s1.blind_bits s1.rng s1.pub news.(i).Enc_item.ehl
            olds.(j).Enc_item.ehl
        in
        diffs := d :: !diffs
      done
    done;
    let ts = Array.of_list (Gadgets.equality_round ctx ~protocol !diffs) in
    let t_of i j = ts.((i * n_old) + j) in
    let zero = Gadgets.enc_zero s1 in
    (* --- old entries: W'_j = W_j + sum_i t_ij * W_i ; B'_j refreshed.
       The per-entry selections (worst delta, per-slot seen merge, best)
       are all independent E2 accumulators: every RecoverEnc of the whole
       T-list travels in one batch round. *)
    let selections =
      Array.mapi
        (fun j (old : Enc_item.scored) ->
          let col = List.init n_new (fun i -> t_of i j) in
          let sum_t = e2_sum dj col in
          let e2_one = Damgard_jurik.trivial dj Nat.one in
          let no_match = Damgard_jurik.sub dj e2_one sum_t in
          (* each selection is sum_i t_ij * x_i (+ no_match * default): the
             multi-exponentiation spec is handed to RecoverEnc, which folds
             its blinding into the same simultaneous pass *)
          let select default xs =
            (no_match, default) :: List.init n_new (fun i -> (t_of i j, xs i))
          in
          let w_sel = select zero (fun i -> news.(i).Enc_item.worst) in
          (* seen-vector merge: u'_{j,l} = u_{j,l} + sum_i t_ij * u_{i,l}
             (at most one i matches, so the inner selection is exclusive) *)
          let seen_sels =
            Array.mapi
              (fun l _ -> select zero (fun i -> news.(i).Enc_item.seen.(l)))
              old.Enc_item.seen
          in
          let b_sel = select old.Enc_item.best (fun i -> news.(i).Enc_item.best) in
          (w_sel, seen_sels, b_sel))
        olds
    in
    let flat =
      Array.to_list selections
      |> List.concat_map (fun (w, seens, b) -> (w :: Array.to_list seens) @ [ b ])
    in
    let recovered = Array.of_list (Gadgets.recover_enc_specs ctx ~protocol flat) in
    let m_seen = match t_list with it :: _ -> Array.length it.Enc_item.seen | [] -> 0 in
    let stride = m_seen + 2 in
    let updated_olds =
      Array.mapi
        (fun j (old : Enc_item.scored) ->
          let base = j * stride in
          let w_delta = recovered.(base) in
          let seen' =
            Array.mapi
              (fun l u -> Paillier.add s1.pub u recovered.(base + 1 + l))
              old.Enc_item.seen
          in
          {
            old with
            Enc_item.worst = Paillier.add s1.pub old.Enc_item.worst w_delta;
            best = recovered.(base + 1 + m_seen);
            seen = seen';
          })
        olds
    in
    (* --- appended copies of new items --- *)
    let matched_e2 =
      Array.init n_new (fun i -> e2_sum dj (List.init n_old (fun j -> t_of i j)))
    in
    (match mode with
    | Sec_dedup.Replace ->
      (* obliviously rewrite matched copies into sentinel garbage; the
         per-cell/score/seen choices of every appended item are
         independent, so the whole fan-out is one select_recover batch *)
      let z = Ctx.sentinel_z s1 in
      let choices =
        Array.mapi
          (fun i (nw : Enc_item.scored) ->
            let t = matched_e2.(i) in
            let n = s1.pub.Paillier.n in
            let cell_choices =
              Array.map
                (fun cell ->
                  let rand = Paillier.encrypt s1.rng s1.pub (Rng.nat_below s1.rng n) in
                  (t, rand, cell))
                (Ehl.Ehl_plus.cells nw.Enc_item.ehl)
            in
            let enc_z = Paillier.encrypt s1.rng s1.pub z in
            (* sentinel copies get an all-ones seen vector so their best
               score stays -1 under the checkpoint refresh *)
            let seen_choices =
              Array.map
                (fun u -> (t, Paillier.encrypt s1.rng s1.pub Nat.one, u))
                nw.Enc_item.seen
            in
            Array.to_list cell_choices
            @ [ (t, enc_z, nw.Enc_item.worst); (t, enc_z, nw.Enc_item.best) ]
            @ Array.to_list seen_choices)
          news
      in
      let flat_choices = List.concat (Array.to_list choices) in
      let picked =
        Array.of_list (Gadgets.select_recover_many ctx ~protocol flat_choices)
      in
      let cursor = ref 0 in
      let take () =
        let v = picked.(!cursor) in
        incr cursor;
        v
      in
      let updated_news =
        Array.map
          (fun (nw : Enc_item.scored) ->
            let cells =
              Array.map (fun _ -> take ()) (Ehl.Ehl_plus.cells nw.Enc_item.ehl)
            in
            let worst = take () in
            let best = take () in
            let seen = Array.map (fun _ -> take ()) nw.Enc_item.seen in
            { Enc_item.ehl = Ehl.Ehl_plus.of_cells cells; worst; best; seen })
          news
      in
      Array.to_list updated_olds @ Array.to_list updated_news
    | Sec_dedup.Eliminate ->
      (* S2 reveals which (permuted) appended items matched; they are
         dropped — the SecDupElim leakage (UP^d) *)
      let flags_ct =
        Array.map
          (fun c ->
            Damgard_jurik.rerandomize_with dj ~noise:(Noise_pool.take s1.Ctx.djnoise) c)
          matched_e2
      in
      let flags =
        match
          Ctx.rpc ctx ~label:"SecDupElim" (Wire.Dup_flags (Array.to_list flags_ct))
        with
        | Wire.Flags flags -> Array.of_list flags
        | _ -> failwith "Sec_update.run: unexpected response"
      in
      let fresh =
        Array.to_list news
        |> List.mapi (fun i nw -> if flags.(i) then None else Some nw)
        |> List.filter_map Fun.id
      in
      Array.to_list updated_olds @ fresh)
