open Bignum
open Crypto

let protocol = "SecUpdate"

(* E2(sum of ts) — at most one t is 1 by the caller's invariant. *)
let e2_sum dj ts =
  match ts with
  | [] -> invalid_arg "Sec_update.e2_sum: empty"
  | t :: rest -> List.fold_left (Damgard_jurik.add dj) t rest

let run (ctx : Ctx.t) ~mode ~t_list ~gamma =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let dj = s1.djpub in
  match (t_list, gamma) with
  | [], g -> g
  | t, [] -> t
  | _ ->
    let olds = Array.of_list t_list in
    let news = Array.of_list gamma in
    ignore (Rng.shuffle s1.rng news);
    let n_old = Array.length olds and n_new = Array.length news in
    (* one equality round for the whole |gamma| x |T| grid *)
    let diffs = ref [] in
    for i = n_new - 1 downto 0 do
      for j = n_old - 1 downto 0 do
        let d =
          Ehl.Ehl_plus.diff ?blind_bits:s1.blind_bits s1.rng s1.pub news.(i).Enc_item.ehl
            olds.(j).Enc_item.ehl
        in
        diffs := d :: !diffs
      done
    done;
    let ts = Array.of_list (Gadgets.equality_round ctx ~protocol !diffs) in
    let t_of i j = ts.((i * n_old) + j) in
    let zero = Gadgets.enc_zero s1 in
    (* --- old entries: W'_j = W_j + sum_i t_ij * W_i ; B'_j refreshed --- *)
    let updated_olds =
      Array.mapi
        (fun j (old : Enc_item.scored) ->
          let col = List.init n_new (fun i -> t_of i j) in
          let sum_t = e2_sum dj col in
          let e2_one = Damgard_jurik.trivial dj Nat.one in
          let no_match = Damgard_jurik.sub dj e2_one sum_t in
          let w_terms =
            List.init n_new (fun i ->
                Damgard_jurik.scalar_mul_ct dj (t_of i j) news.(i).Enc_item.worst)
          in
          let w_sel =
            List.fold_left (Damgard_jurik.add dj)
              (Damgard_jurik.scalar_mul_ct dj no_match zero)
              w_terms
          in
          let w_delta = Gadgets.recover_enc ctx ~protocol w_sel in
          let b_terms =
            List.init n_new (fun i ->
                Damgard_jurik.scalar_mul_ct dj (t_of i j) news.(i).Enc_item.best)
          in
          let b_sel =
            List.fold_left (Damgard_jurik.add dj)
              (Damgard_jurik.scalar_mul_ct dj no_match old.Enc_item.best)
              b_terms
          in
          (* seen-vector merge: u'_{j,l} = u_{j,l} + sum_i t_ij * u_{i,l}
             (at most one i matches, so the inner selection is exclusive) *)
          let seen' =
            Array.mapi
              (fun l u ->
                let sel =
                  List.fold_left (Damgard_jurik.add dj)
                    (Damgard_jurik.scalar_mul_ct dj no_match zero)
                    (List.init n_new (fun i ->
                         Damgard_jurik.scalar_mul_ct dj (t_of i j) news.(i).Enc_item.seen.(l)))
                in
                Paillier.add s1.pub u (Gadgets.recover_enc ctx ~protocol sel))
              old.Enc_item.seen
          in
          {
            old with
            Enc_item.worst = Paillier.add s1.pub old.Enc_item.worst w_delta;
            best = Gadgets.recover_enc ctx ~protocol b_sel;
            seen = seen';
          })
        olds
    in
    (* --- appended copies of new items --- *)
    let matched_e2 =
      Array.init n_new (fun i -> e2_sum dj (List.init n_old (fun j -> t_of i j)))
    in
    (match mode with
    | Sec_dedup.Replace ->
      (* obliviously rewrite matched copies into sentinel garbage *)
      let z = Ctx.sentinel_z s1 in
      let updated_news =
        Array.mapi
          (fun i (nw : Enc_item.scored) ->
            let t = matched_e2.(i) in
            let n = s1.pub.Paillier.n in
            let cells =
              Array.map
                (fun cell ->
                  let rand = Paillier.encrypt s1.rng s1.pub (Rng.nat_below s1.rng n) in
                  Gadgets.select_recover ctx ~protocol ~t ~if_one:rand ~if_zero:cell)
                (Ehl.Ehl_plus.cells nw.Enc_item.ehl)
            in
            let enc_z = Paillier.encrypt s1.rng s1.pub z in
            let enc_one () = Paillier.encrypt s1.rng s1.pub Nat.one in
            {
              Enc_item.ehl = Ehl.Ehl_plus.of_cells cells;
              worst = Gadgets.select_recover ctx ~protocol ~t ~if_one:enc_z ~if_zero:nw.Enc_item.worst;
              best = Gadgets.select_recover ctx ~protocol ~t ~if_one:enc_z ~if_zero:nw.Enc_item.best;
              (* sentinel copies get an all-ones seen vector so their best
                 score stays -1 under the checkpoint refresh *)
              seen =
                Array.map
                  (fun u -> Gadgets.select_recover ctx ~protocol ~t ~if_one:(enc_one ()) ~if_zero:u)
                  nw.Enc_item.seen;
            })
          news
      in
      Array.to_list updated_olds @ Array.to_list updated_news
    | Sec_dedup.Eliminate ->
      (* S2 reveals which (permuted) appended items matched; they are
         dropped — the SecDupElim leakage (UP^d) *)
      let flags_ct = Array.map (Damgard_jurik.rerandomize s1.rng dj) matched_e2 in
      let flags =
        match
          Ctx.rpc ctx ~label:"SecDupElim" (Wire.Dup_flags (Array.to_list flags_ct))
        with
        | Wire.Flags flags -> Array.of_list flags
        | _ -> failwith "Sec_update.run: unexpected response"
      in
      let fresh =
        Array.to_list news
        |> List.mapi (fun i nw -> if flags.(i) then None else Some nw)
        |> List.filter_map Fun.id
      in
      Array.to_list updated_olds @ fresh)
