(** Shared sub-protocol building blocks.

    Three idioms recur in every SecTopK sub-protocol:

    - the {e equality round}: S1 sends permuted blinded EHL differences,
      S2 decrypts them to bits [t_i] and returns them doubly encrypted as
      [E2(t_i)];
    - the {e select gadget}: from [E2(t)] with [t] a bit, S1 locally
      computes [E2(t * Enc(a) + (1-t) * Enc(b))] — an oblivious choice
      between two inner Paillier ciphertexts;
    - {e RecoverEnc} (Algorithm 5): stripping the outer DJ layer with S2's
      help, under additive blinding so S2 learns nothing about the inner
      plaintext. *)

open Bignum
open Crypto

(** Random blinding exponent drawn per the context's [blind_bits] policy
    (a unit of [Z_n] by default). *)
val blind_scalar : Ctx.s1 -> Nat.t

(** [equality_round ctx ~protocol diffs] — S1 sends the (already permuted)
    EHL differences [Enc(b_i)]; S2 decrypts each, logs the bit pattern to
    its trace, and returns [E2(t_i)] with [t_i = 1] iff [b_i = 0]
    (Lemma 5.2 semantics). One round trip. *)
val equality_round :
  Ctx.t -> protocol:string -> Paillier.ciphertext list -> Damgard_jurik.ciphertext list

(** [select s1 ~t ~if_one ~if_zero] is
    [E2(t)^if_one * (E2(1) * E2(t)^-1)^if_zero] — evaluates to
    [E2(if_one)] when [t = 1] and [E2(if_zero)] when [t = 0]. Purely
    local to S1. *)
val select :
  Ctx.s1 ->
  t:Damgard_jurik.ciphertext ->
  if_one:Paillier.ciphertext ->
  if_zero:Paillier.ciphertext ->
  Damgard_jurik.ciphertext

(** RecoverEnc (Algorithm 5): converts [E2(Enc(c))] to a fresh [Enc(c)].
    S1 blinds with [E2(Enc(c))^Enc(r)], S2 strips the outer layer and
    returns [Enc(c + r)], S1 removes [r] homomorphically. *)
val recover_enc : Ctx.t -> protocol:string -> Damgard_jurik.ciphertext -> Paillier.ciphertext

(** [select_recover ctx ~protocol ~t ~if_one ~if_zero] — the select gadget
    followed by RecoverEnc; the workhorse of SecWorst/SecBest/SecUpdate. *)
val select_recover :
  Ctx.t ->
  protocol:string ->
  t:Damgard_jurik.ciphertext ->
  if_one:Paillier.ciphertext ->
  if_zero:Paillier.ciphertext ->
  Paillier.ciphertext

(** Batched {!recover_enc}: one {!Ctx.rpc_batch} round for the whole
    list, element blinding drawn in list order (identical randomness to
    running {!recover_enc} per element). *)
val recover_enc_many :
  Ctx.t -> protocol:string -> Damgard_jurik.ciphertext list -> Paillier.ciphertext list

(** Batched RecoverEnc over multi-exponentiation specs: each spec is the
    pair list of one E2 accumulator [Enc2(sum_i k_i * x_i)] (layered
    Paillier scalars), evaluated together with the RecoverEnc blinding in
    a single simultaneous exponentiation per spec —
    [(prod c_i^{k_i})^e = prod c_i^{k_i * e}], so the blinding is free.
    One Dj_mul is counted per pair plus one for the absorbed blinding,
    matching the unfused accumulate-then-recover op count. *)
val recover_enc_specs :
  Ctx.t ->
  protocol:string ->
  (Damgard_jurik.ciphertext * Paillier.ciphertext) list list ->
  Paillier.ciphertext list

(** Batched {!select_recover} over [(t, if_one, if_zero)] choices. *)
val select_recover_many :
  Ctx.t ->
  protocol:string ->
  (Damgard_jurik.ciphertext * Paillier.ciphertext * Paillier.ciphertext) list ->
  Paillier.ciphertext list

(** [conjunction_round ctx ~protocol groups] — like {!equality_round}
    but each element is a {e group} of EHL differences: S2 returns
    [E2(1)] iff {e every} difference in the group decrypts to zero. Used
    by the multi-way join, whose predicate is a conjunction of equi-join
    conditions; S2 sees only the per-group verdict pattern, not the
    individual equalities. *)
val conjunction_round :
  Ctx.t -> protocol:string -> Paillier.ciphertext list list -> Damgard_jurik.ciphertext list

(** [lift ctx ~protocol cts] converts Paillier ciphertexts into DJ
    ciphertexts of the same plaintexts, in one batched round: S1 blinds
    each [Enc(v)] additively, S2 decrypts and returns [E2(v + r)], S1
    strips the blinding in the DJ layer. S2 sees only uniform values. *)
val lift :
  Ctx.t -> protocol:string -> Paillier.ciphertext list -> Damgard_jurik.ciphertext list

(** A fresh Paillier encryption of zero by S1 (the [Enc(0)] leg of the
    select gadget). *)
val enc_zero : Ctx.s1 -> Paillier.ciphertext

(** Encryption of an [int] score by S1 (non-negative). *)
val enc_int : Ctx.s1 -> int -> Paillier.ciphertext
