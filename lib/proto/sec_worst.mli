(** SecWorst (Protocol 8.1 / Algorithm 4): the encrypted local worst score
    of one item at the current depth.

    S1 holds the target [E(I) = (EHL(o), Enc(x))] and the items [H] of the
    other queried lists at the same depth; the output is
    [Enc(x + sum of the scores of items in H encoding the same object)].
    S2 only sees a randomly permuted equality bit pattern. *)

open Crypto

(** Returns the encrypted worst score together with the equality
    indicators [E2(t_j)] against each element of [others] (in the
    {e original} order of [others] — S1 undoes its own permutation).
    SecQuery reuses the indicators to build the item's seen-vector
    without a second equality round. *)
val run :
  Ctx.t ->
  target:Enc_item.entry ->
  others:Enc_item.entry list ->
  Paillier.ciphertext * Damgard_jurik.ciphertext list

(** Phase-collapsed form: the independent SecWorst instances of one depth
    (one [(target, others)] pair per queried list) share two rounds — one
    Equality batch, one Recover batch — instead of two rounds each.
    Results are element-wise identical to m calls of {!run}.

    [seen i ts] (optional) maps query [i]'s unpermuted indicators to extra
    [(t, if_one, if_zero)] selections whose recoveries ride the same
    Recover batch as the contributions; their Paillier results come back
    as the third component, in the order the callback produced them.
    SecQuery uses this to fold the seen-vector recoveries into SecWorst's
    second round instead of paying a third round per depth. *)
val run_many :
  ?seen:
    (int ->
    Damgard_jurik.ciphertext list ->
    (Damgard_jurik.ciphertext * Paillier.ciphertext * Paillier.ciphertext) list) ->
  Ctx.t ->
  (Enc_item.entry * Enc_item.entry list) list ->
  (Paillier.ciphertext * Damgard_jurik.ciphertext list * Paillier.ciphertext list) list
