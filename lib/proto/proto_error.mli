(** Typed protocol-desync failure.

    [Invalid_argument] means the bytes were malformed; [Proto_error]
    means the bytes decoded fine but the peer broke the protocol
    contract (wrong batch arity, mismatched mux reply list, unexpected
    reply kind). The serving front-end maps it to a typed
    [Wire.Server_error] so a hostile or desynced S2 degrades one query,
    not the whole session domain. *)

exception Proto_error of string

(** [fail fmt ...] raises {!Proto_error} with a formatted message. *)
val fail : ('a, unit, string, 'b) format4 -> 'a
