(** Execution context for the two-cloud protocols.

    The context is S1's world: its public keys, randomness, blinding
    policy and personal key pair — plus a {!Transport} to S2. S1 code
    never touches S2 state; every decryption crosses the transport as a
    {!Wire} request and everything S2 learns is appended to its trace on
    the other side. Depending on the transport mode the S2 half runs
    in-process (Inproc/Loopback) or in a separate daemon (Socket); the
    protocols are agnostic (see DESIGN.md section 4c). *)

open Crypto

type s1 = {
  pub : Paillier.public;
  djpub : Damgard_jurik.public;
  rng : Rng.t;
  blind_bits : int option;
      (** Width of statistical-blinding exponents; [None] = full [Z_n]
          exponents exactly as in the paper, [Some b] = faster [b]-bit
          blinding for benchmarks. *)
  own_pub : Paillier.public;
      (** S1's personal key pair (the [(pk', sk')] of Algorithm 7), under
          which S1 encrypts its blinding randomness so S2 can update it
          homomorphically without reading it. Its modulus is wider than
          the main one so blinding sums survive unreduced. *)
  own_sk : Paillier.secret;
  djnoise : Noise_pool.t;
      (** Precomputed DJ re-randomization noise ([r^{n^2} mod n^3]); its
          root generator is forked off [rng] at context construction, and
          {!parallel} sub-contexts fork their own — same determinism
          discipline as the generators themselves. *)
}

type t = {
  s1 : s1;
  transport : Transport.t;
  domains : int;  (** Width of the {!Core.Pool} used by {!parallel}. *)
  obs : Obs.Collector.t;
      (** Default observability sink for this context: protocol entry
          points install it as the current collector unless an outer
          harness already installed one. Counters, bytes/rounds and the
          span tree collected here are byte-identical for every [domains]
          width; only wall times differ. *)
  batching : bool;
      (** When false, {!rpc_batch} degrades to one {!rpc} per element —
          the unbatched execution the equivalence tests compare against.
          Results, traces and crypto op counters are identical either
          way; only framing (bytes/messages/rounds) differs. *)
}

(** Transport selection. When omitted, the [TRANSPORT] environment
    variable picks between [inproc] (default) and [loopback] — this is
    how CI reruns the whole suite through the codec. [Socket_fd] wraps a
    connection whose [Hello] handshake already happened. [Mux] parks
    this query's rounds at a shared {!Sched} under a session id from
    [Sched.open_query], so concurrent queries' trips coalesce; results,
    traces and per-query op counters stay byte-identical to the
    dedicated-transport baseline. *)
type mode =
  | Inproc
  | Loopback
  | Socket_fd of Unix.file_descr
  | Mux of Sched.t * int

(** [create rng ~bits] generates a fresh key pair of modulus width [bits]
    and builds both party halves. [domains] (default 1) sets the
    parallelism of {!parallel}; it never affects results or traces. *)
val create :
  ?blind_bits:int -> ?domains:int -> ?mode:mode -> ?rtt_us:int -> Rng.t -> bits:int -> t

(** Rebuild a context around existing keys (e.g. the data owner's).
    [rtt_us] is the simulated per-round latency of the Loopback transport
    (ignored by the others). *)
val of_keys :
  ?blind_bits:int ->
  ?domains:int ->
  ?mode:mode ->
  ?rtt_us:int ->
  Rng.t ->
  Paillier.public ->
  Paillier.secret ->
  t

(** Canonical seeded provisioning: [(pub, sk, ctx_rng, data_rng)]. Pass
    [ctx_rng] to {!of_keys} and use [data_rng] for dataset encryption. A
    socket daemon given the same [Wire.hello] replays the first steps
    verbatim ([S2_server.of_hello]), so both processes derive identical
    keys and aligned randomness streams. *)
val provision :
  seed:string ->
  key_bits:int ->
  ?rand_bits:int ->
  unit ->
  Paillier.public * Paillier.secret * Rng.t * Rng.t

val with_domains : t -> int -> t

(** Toggle batching (see the [batching] field). *)
val with_batching : t -> bool -> t

(** One request/response round trip to S2 under [label]. *)
val rpc : t -> label:string -> Wire.request -> Wire.response

(** [rpc_batch t ~label reqs] ships all of [reqs] in one {!Wire.Batch}
    frame (one round) and returns the element-wise responses in request
    order. An empty list produces no traffic at all; a singleton
    delegates to {!rpc}, so singleton fan-outs keep their historical
    framing. S2 handles batch elements in order — exactly the
    decryptions, trace events and randomness draws of singleton
    execution. A response of the wrong arity or kind raises
    {!Proto_error.Proto_error} (typed desync, mapped to a
    [Server_error] by the serving front-end). *)
val rpc_batch : t -> label:string -> Wire.request list -> Wire.response list

(** [rpc_pipeline t ~label ~prepare n] evaluates [prepare i] for [i] in
    [0..n-1] (strictly in order, on the calling domain) and ships the
    requests in chunks of [chunk] (default 16) via {!rpc_batch},
    overlapping the preparation of chunk [i+1] with chunk [i]'s in-flight
    round trip on a helper domain when [t.domains > 1] and the transport
    allows it. Responses come back in request order. Results, traces and
    op counters are identical to the sequential path by the same
    discipline as {!parallel}. *)
val rpc_pipeline :
  t -> label:string -> ?chunk:int -> prepare:(int -> Wire.request) -> int -> Wire.response list

(** The bandwidth-accounting channel of the underlying transport. *)
val channel : t -> Channel.t

(** Direct S2 state for local transports and tests; raises
    [Invalid_argument] when S2 is remote. *)
val sk : t -> Paillier.secret

val trace : t -> Trace.t

(** S2's trace, transport-independent. *)
val trace_events : t -> Trace.event list

(** S2-side op counters by name (socket mode; empty locally). *)
val remote_stats : t -> (string * int) list

val transport_name : t -> string

(** [parallel t ~jobs f] evaluates [f sub i] for [i] in [0..jobs-1] on a
    {!Core.Pool} of [t.domains] domains and returns results in index
    order. Each [sub] shares the keys of [t] but carries its own
    deterministically forked generators (S1-side from [s1.rng], S2-side
    through {!Transport.fork}, by index, before any domain starts), a
    private channel and a private trace; after the batch the channels and
    traces are merged back into [t] in index order. Results, accounting
    and traces are therefore byte-identical across any [domains] setting —
    parallelism is pure mechanism. On a socket transport jobs run
    sequentially (one ordered byte stream). Sub-contexts must not escape
    [f]. *)
val parallel : t -> jobs:int -> (t -> int -> 'a) -> 'a array

(** Serialized sizes used for channel accounting. *)
val paillier_ct_bytes : t -> int

val dj_ct_bytes : t -> int

(** The sentinel "never in top-k" worst score [Z = n - 1] (= -1 in the
    signed encoding), as in SecDedup. *)
val sentinel_z : s1 -> Bignum.Nat.t
