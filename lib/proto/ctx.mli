(** Execution context for the two-cloud protocols.

    The two servers are distinct state records connected by one accounting
    {!Channel}. S1 never holds the Paillier/DJ secret keys; every function
    in this library that needs a decryption takes the [s2] record, and
    everything S2 learns by decrypting is appended to its {!Trace}. Running
    both parties in one process is an accounting-faithful simulation of the
    paper's two-cloud deployment (see DESIGN.md). *)

open Crypto

type s1 = {
  pub : Paillier.public;
  djpub : Damgard_jurik.public;
  rng : Rng.t;
  chan : Channel.t;
  blind_bits : int option;
      (** Width of statistical-blinding exponents; [None] = full [Z_n]
          exponents exactly as in the paper, [Some b] = faster [b]-bit
          blinding for benchmarks. *)
  own_pub : Paillier.public;
      (** S1's personal key pair (the [(pk', sk')] of Algorithm 7), under
          which S1 encrypts its blinding randomness so S2 can update it
          homomorphically without reading it. Its modulus is wider than
          the main one so blinding sums survive unreduced. *)
  own_sk : Paillier.secret;
}

type s2 = {
  pub2 : Paillier.public;
  djpub2 : Damgard_jurik.public;
  sk : Paillier.secret;
  djsk : Damgard_jurik.secret;
  rng2 : Rng.t;
  chan2 : Channel.t;
  trace : Trace.t;
}

type t = {
  s1 : s1;
  s2 : s2;
  domains : int;  (** Width of the {!Core.Pool} used by {!parallel}. *)
  obs : Obs.Collector.t;
      (** Default observability sink for this context: protocol entry
          points install it as the current collector unless an outer
          harness already installed one. Counters, bytes/rounds and the
          span tree collected here are byte-identical for every [domains]
          width; only wall times differ. *)
}

(** [create rng ~bits] generates a fresh key pair of modulus width [bits]
    and wires both parties to one channel. [domains] (default 1) sets the
    parallelism of {!parallel}; it never affects results or traces. *)
val create : ?blind_bits:int -> ?domains:int -> Rng.t -> bits:int -> t

(** Rebuild a context around existing keys (e.g. the data owner's). *)
val of_keys :
  ?blind_bits:int -> ?domains:int -> Rng.t -> Paillier.public -> Paillier.secret -> t

val with_domains : t -> int -> t

(** [parallel t ~jobs f] evaluates [f sub i] for [i] in [0..jobs-1] on a
    {!Core.Pool} of [t.domains] domains and returns results in index
    order. Each [sub] shares the keys of [t] but carries its own
    deterministically forked generators (forked from [s1.rng]/[s2.rng2]
    by index, before any domain starts), a private channel and a private
    trace; after the batch the channels and traces are merged back into
    [t] in index order. Results, accounting and traces are therefore
    byte-identical across any [domains] setting — parallelism is pure
    mechanism. Sub-contexts must not escape [f]. *)
val parallel : t -> jobs:int -> (t -> int -> 'a) -> 'a array

(** Serialized sizes used for channel accounting. *)
val paillier_ct_bytes : t -> int

val dj_ct_bytes : t -> int

(** The sentinel "never in top-k" worst score [Z = n - 1] (= -1 in the
    signed encoding), as in SecDedup. *)
val sentinel_z : s1 -> Bignum.Nat.t
