(* A typed protocol-desync error. Raised when the other party answers
   with a frame that is well-formed at the codec level but wrong at the
   protocol level (a batch response of the wrong arity, a mux reply list
   that does not match the shipped ops, a control reply where a response
   was due). Distinct from [Invalid_argument] — which every codec raises
   on malformed bytes — so servers can map it to a typed [Server_error]
   instead of letting a hostile or desynced S2 kill a session domain. *)

exception Proto_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Proto_error s)) fmt

let () =
  Printexc.register_printer (function
    | Proto_error msg -> Some ("Proto_error: " ^ msg)
    | _ -> None)
