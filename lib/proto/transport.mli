(** Transport between the S1 driver code and the S2 responder.

    Four implementations of one rpc interface:

    - [Inproc]: S2 runs in-process and requests are dispatched without
      materialising frames; the channel is charged {!Wire}'s closed-form
      frame sizes (pinned to the real encoded lengths by the property
      tests). The fast path.
    - [Loopback]: every request and response is encoded through {!Wire}
      and decoded on the other side, still in one process — proves each
      protocol survives serialization, and measures real frame lengths.
    - [Socket]: frames travel over a file descriptor to an S2 daemon in
      another process (socketpair or TCP). True two-process mode.
    - [Mux]: requests park at a shared round scheduler ({!Sched}) which
      merges every concurrent query's next op into one multiplexed S2
      trip. The per-query channel is charged the same closed forms as
      [Inproc] — what a dedicated connection would carry — so per-query
      accounting stays baseline-identical while the shared trip count
      drops.

    A seeded query produces byte-identical results, traces and operation
    counters on all of them (socket-mode S2 ops are counted daemon-side;
    fetch them with {!remote_stats}). *)

type t

val inproc : Wire.keys -> S2_server.t -> t

(** [rtt_us] injects a simulated per-round latency (microseconds of
    [Unix.sleepf] after each round trip) so round-count differences show
    up as wall-clock time on one machine (bench [--rtt]). *)
val loopback : ?rtt_us:int -> Wire.keys -> S2_server.t -> t

(** Wrap a connected fd whose [Hello] handshake already happened
    ({!spawn_daemon} / {!connect_tcp}). *)
val socket : Wire.keys -> Unix.file_descr -> t

(** Park this query's rpcs at a shared {!Sched} under the given mux
    session id (obtained from [Sched.open_query]). Forking allocates
    child sessions from the same scheduler. *)
val mux : Wire.keys -> Sched.t -> session:int -> t

val channel : t -> Channel.t
val keys : t -> Wire.keys

(** False for [Socket] (one ordered byte stream cannot interleave
    concurrent sessions) and for [Mux] (the scheduler's ship condition
    assumes one outstanding op per query): [Ctx.parallel] runs
    sequentially on both. *)
val concurrent : t -> bool

val mode_name : t -> string

(** One request/response round trip. Both frames are charged to the
    channel at their encoded length under the request's protocol label. *)
val rpc : t -> label:string -> Wire.request -> Wire.response

(** Fork a child transport for one parallel task: local transports fork
    the in-process server; the socket transport opens a child session on
    the daemon via a [Fork] control frame (control traffic is never
    charged to the channel). [join_sub] merges the child's channel and
    S2 trace back; call in task-index order. *)
val fork : t -> label:string -> t

val join_sub : t -> into:t -> unit

(** Direct S2 state, for local transports and tests; raises
    [Invalid_argument] when S2 is remote. *)
val trace : t -> Trace.t

val secret_key : t -> Crypto.Paillier.secret

(** S2's trace, transport-independent (fetched by control rpc in socket
    mode). *)
val trace_events : t -> Trace.event list

(** S2-side operation counters by metric name: empty for local transports
    (S2 ops already land in the client's collector), the daemon's totals
    in socket mode. *)
val remote_stats : t -> (string * int) list

(** Key-less live-telemetry scrape: connect to a listening [serve-s1] or
    [serve-s2] daemon, send one [Stats_req], and return the registry
    snapshot from its [Stats_resp] — skipping (by kind byte, without
    decoding) the [Server_hello] frame serve-s1 greets connections with.
    Needs no key material, so any monitoring client can call it. *)
val scrape_stats : Unix.sockaddr -> Obs.Registry.snapshot

(** Politely stop a socket daemon (no-op for local transports). *)
val shutdown : t -> unit

(** Send the provisioning [Hello] on a fresh connection and await the ack. *)
val hello : Unix.file_descr -> Wire.hello -> unit

(** Fork a child process serving S2 over a socketpair; returns the
    connected fd (Hello done) and the child pid. *)
val spawn_daemon : Wire.hello -> Unix.file_descr * int

(** {!shutdown} + reap the daemon process. *)
val stop_daemon : t -> int -> unit

(** Connect to a standalone [topk_cli serve-s2] daemon over TCP. *)
val connect_tcp : Unix.sockaddr -> Wire.hello -> Unix.file_descr
