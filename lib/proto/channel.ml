type direction = S1_to_s2 | S2_to_s1

type t = {
  mutable bytes : int;
  mutable messages : int;
  mutable rounds : int;
  by_label : (string, int) Hashtbl.t;
}

let create () = { bytes = 0; messages = 0; rounds = 0; by_label = Hashtbl.create 16 }

let send t ~dir:_ ~label ~bytes =
  if bytes < 0 then invalid_arg "Channel.send: negative size";
  Obs.add Obs.Metrics.Bytes_sent bytes;
  Obs.bump Obs.Metrics.Msgs;
  t.bytes <- t.bytes + bytes;
  t.messages <- t.messages + 1;
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.by_label label) in
  Hashtbl.replace t.by_label label (prev + bytes)

let round_trip t =
  Obs.bump Obs.Metrics.Rounds;
  t.rounds <- t.rounds + 1
let bytes_total t = t.bytes
let messages_total t = t.messages
let rounds_total t = t.rounds

let bytes_by_label t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_label []
  |> List.sort (fun (la, a) (lb, b) ->
         (* bytes descending, ties broken by label: hashtable order must
            never leak into reports or test expectations *)
         match compare b a with 0 -> compare la lb | c -> c)

let merge_into src ~into =
  into.bytes <- into.bytes + src.bytes;
  into.messages <- into.messages + src.messages;
  into.rounds <- into.rounds + src.rounds;
  Hashtbl.iter
    (fun label bytes ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt into.by_label label) in
      Hashtbl.replace into.by_label label (prev + bytes))
    src.by_label

let reset t =
  t.bytes <- 0;
  t.messages <- 0;
  t.rounds <- 0;
  Hashtbl.reset t.by_label

type snapshot = { bytes : int; messages : int; rounds : int }

let snapshot (t : t) = { bytes = t.bytes; messages = t.messages; rounds = t.rounds }

let diff a b =
  { bytes = b.bytes - a.bytes; messages = b.messages - a.messages; rounds = b.rounds - a.rounds }

let latency_of_snapshot ?(rtt_ms = 1.0) ~bandwidth_mbps s =
  let transfer = float_of_int (8 * s.bytes) /. (bandwidth_mbps *. 1e6) in
  transfer +. (float_of_int s.rounds *. rtt_ms /. 1000.)

let latency_seconds ?rtt_ms ~bandwidth_mbps t = latency_of_snapshot ?rtt_ms ~bandwidth_mbps (snapshot t)
