open Crypto

let protocol = "EncCompare"

let leq (ctx : Ctx.t) a b =
  Obs.span protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let coin = Rng.bool s1.rng in
  let d = if coin then Paillier.sub s1.pub a b else Paillier.sub s1.pub b a in
  let rho = Gadgets.blind_scalar s1 in
  let v = Paillier.scalar_mul s1.pub d rho in
  (* S2 returns the sign of the blinded difference *)
  let sign =
    match Ctx.rpc ctx ~label:protocol (Wire.Sign_of v) with
    | Wire.Sign sign -> sign
    | _ -> failwith "Enc_compare.leq: unexpected response"
  in
  (* S1: undo the coin *)
  if coin then sign <= 0 (* d = a - b : a <= b iff d <= 0 *)
  else sign >= 0 (* d = b - a : a <= b iff d >= 0 *)

(* Vectorized sign tests: every (already blinded) difference in one batch
   frame. S2 records one Comparison trace event per element, in order —
   exactly what per-element Sign_of rpcs record. *)
let signs_of (ctx : Ctx.t) vs =
  let resps =
    Ctx.rpc_batch ctx ~label:protocol
      (Array.to_list (Array.map (fun v -> Wire.Sign_of v) vs))
  in
  Array.of_list
    (List.map
       (function
         | Wire.Sign sign -> sign
         | _ -> failwith "Enc_compare.signs_of: unexpected response")
       resps)

(* Batched [leq]: per-pair coin and blinding drawn in index order (the
   draws [leq] makes), then one signs_of round for the whole depth. *)
let leq_many (ctx : Ctx.t) pairs =
  match pairs with
  | [] -> []
  | pairs ->
    Obs.span protocol @@ fun () ->
    let s1 = ctx.Ctx.s1 in
    let prepared =
      List.map
        (fun (a, b) ->
          let coin = Rng.bool s1.rng in
          let d = if coin then Paillier.sub s1.pub a b else Paillier.sub s1.pub b a in
          let rho = Gadgets.blind_scalar s1 in
          (coin, Paillier.scalar_mul s1.pub d rho))
        pairs
    in
    let signs = signs_of ctx (Array.of_list (List.map snd prepared)) in
    List.mapi
      (fun i (coin, _) -> if coin then signs.(i) <= 0 else signs.(i) >= 0)
      prepared

(* ---------------- DGK / Veugen bitwise comparison ---------------- *)

let dgk_protocol = "EncCompareDGK"
let statistical_slack = 40

let leq_dgk (ctx : Ctx.t) ~bits a b =
  Obs.span dgk_protocol @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.pub in
  let open Bignum in
  if bits + statistical_slack + 2 >= Nat.bit_length pub.Paillier.n then
    invalid_arg "Enc_compare.leq_dgk: bits too large for the modulus";
  (* d = 2^bits + b - a  (in [1, 2^(bits+1)) for inputs < 2^bits) *)
  let d =
    Paillier.add pub
      (Paillier.trivial pub (Nat.shift_left Nat.one bits))
      (Paillier.sub pub b a)
  in
  (* S1 blinds additively with bits+slack randomness and ships it; S2
     decrypts z and reveals the low word bit-wise under encryption plus
     the (blinded) parity of the high word *)
  let r = Rng.nat_bits s1.rng (bits + statistical_slack) in
  let z_ct = Paillier.add pub d (Paillier.encrypt s1.rng pub r) in
  let z_bit_cts, z_high_parity =
    match Ctx.rpc ctx ~label:dgk_protocol (Wire.Dgk_low_bits { bits; z = z_ct }) with
    | Wire.Dgk_bits { bit_cts; parity } -> (bit_cts, parity)
    | _ -> failwith "Enc_compare.leq_dgk: unexpected response"
  in
  (* --- S1: DGK zero-test for borrow = [z mod 2^bits < r mod 2^bits],
     direction-masked by the coin s --- *)
  let coin = Rng.bool s1.rng in
  let s_term = if coin then 1 else -1 in
  let r_bit i = if Nat.nth_bit r i then 1 else 0 in
  let enc_const v =
    if v >= 0 then Paillier.trivial pub (Nat.of_int v)
    else Paillier.neg pub (Paillier.trivial pub (Nat.of_int (-v)))
  in
  let z_arr = Array.of_list z_bit_cts in
  (* w_j = z_j XOR r_j, homomorphically (r_j is S1-known) *)
  let w j =
    if r_bit j = 0 then z_arr.(j) else Paillier.sub pub (enc_const 1) z_arr.(j)
  in
  let cs =
    List.init bits (fun i ->
        (* c_i = s + z_i - r_i + 3 * sum_{j>i} w_j *)
        let tail = ref (enc_const 0) in
        for j = i + 1 to bits - 1 do
          tail := Paillier.add pub !tail (w j)
        done;
        let c =
          Paillier.add pub
            (Paillier.add pub z_arr.(i) (enc_const (s_term - r_bit i)))
            (Paillier.scalar_mul pub !tail (Nat.of_int 3))
        in
        Paillier.scalar_mul pub c (Gadgets.blind_scalar s1))
  in
  let cs_arr = Array.of_list cs in
  ignore (Rng.shuffle s1.rng cs_arr);
  (* S2: does any c_i decrypt to zero? *)
  let lambda =
    match Ctx.rpc ctx ~label:dgk_protocol (Wire.Zero_any (Array.to_list cs_arr)) with
    | Wire.Bit lambda -> lambda
    | _ -> failwith "Enc_compare.leq_dgk: unexpected response"
  in
  (* --- S1: unmask the coin to obtain borrow = [z~ < r~] --- *)
  let borrow =
    if coin then lambda (* s = +1: lambda = [z~ < r~] directly *)
    else begin
      (* s = -1: lambda = [z~ > r~], so [z~ < r~] = not lambda AND z~ <> r~;
         the equality corner is resolved with one extra blinded zero-test *)
      let zt =
        let acc = ref (enc_const 0) in
        for j = 0 to bits - 1 do
          acc := Paillier.add pub !acc (Paillier.scalar_mul pub z_arr.(j) (Nat.shift_left Nat.one j))
        done;
        !acc
      in
      let r_low = Nat.rem r (Nat.shift_left Nat.one bits) in
      let diff = Paillier.sub pub zt (Paillier.trivial pub r_low) in
      let blinded = Paillier.scalar_mul pub diff (Gadgets.blind_scalar s1) in
      let equal =
        match Ctx.rpc ctx ~label:dgk_protocol (Wire.Zero_test blinded) with
        | Wire.Bit equal -> equal
        | _ -> failwith "Enc_compare.leq_dgk: unexpected response"
      in
      (not lambda) && not equal
    end
  in
  (* d_high = z_high - r_high - borrow; inputs < 2^bits make d_high a bit *)
  let r_high_parity = Nat.nth_bit r bits in
  let d_high =
    (Bool.to_int z_high_parity - Bool.to_int r_high_parity - Bool.to_int borrow) land 1
  in
  (* f = (a <= b) iff d >= 2^bits iff d_high = 1 *)
  d_high = 1
