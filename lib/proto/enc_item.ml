open Crypto

type entry = { ehl : Ehl.Ehl_plus.t; score : Paillier.ciphertext }

type scored = {
  ehl : Ehl.Ehl_plus.t;
  worst : Paillier.ciphertext;
  best : Paillier.ciphertext;
  seen : Paillier.ciphertext array;
}

let entry_bytes pub (e : entry) =
  Ehl.Ehl_plus.size_bytes pub e.ehl + Paillier.ciphertext_bytes pub

let scored_bytes pub (s : scored) =
  Ehl.Ehl_plus.size_bytes pub s.ehl
  + ((2 + Array.length s.seen) * Paillier.ciphertext_bytes pub)

(* Blinding escrow travelling with a masked item through SecDedup: the
   masks S1 (and later S2) applied, encrypted under S1's personal pk' so
   only S1 can strip them. Mirrors the field layout of [scored]. *)
type pack = {
  alphas : Paillier.ciphertext array;
  beta : Paillier.ciphertext;
  gamma : Paillier.ciphertext;
  sigmas : Paillier.ciphertext array;
}

let pack_bytes own_pub (p : pack) =
  (Array.length p.alphas + 2 + Array.length p.sigmas) * Paillier.ciphertext_bytes own_pub

let rerandomize_scored rng pub (s : scored) =
  {
    ehl = Ehl.Ehl_plus.rerandomize rng pub s.ehl;
    worst = Paillier.rerandomize rng pub s.worst;
    best = Paillier.rerandomize rng pub s.best;
    seen = Array.map (Paillier.rerandomize rng pub) s.seen;
  }

(* Pool-backed variant: noise factors are consumed in field order (ehl
   cells, worst, best, seen left to right), one modular mul each. *)
let rerandomize_scored_with pub ~noise (s : scored) =
  let rr c = Paillier.rerandomize_with pub ~noise:(noise ()) c in
  {
    ehl = Ehl.Ehl_plus.rerandomize_with pub ~noise s.ehl;
    worst = rr s.worst;
    best = rr s.best;
    seen = Array.map rr s.seen;
  }
