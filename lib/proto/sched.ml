(* The cross-query round scheduler: queries park at their phase barriers
   and a single shipper domain merges everything parked into one
   multiplexed S2 trip. See sched.mli for the contract and DESIGN.md
   section 4h for the design discussion.

   Concurrency shape: callers (worker domains) enqueue one op at a time
   under [lock] and block on a write-once cell; the shipper domain is
   the only thread that dequeues, the only one that touches the backend,
   and therefore the only writer on a socket backend's fd. OCaml's
   stdlib [Condition] has no timed wait, so the window timer is a
   self-pipe + [Unix.select]: submissions write a wake byte, the shipper
   selects with the remaining-window timeout. *)

module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

(* Each parked entry remembers the collector that was current on the
   submitting domain: a local (in-process) backend installs it around
   the op so S2-side crypto ops land in the query's own report, exactly
   as they would on the Inproc transport. Socket backends ignore it (S2
   counts daemon-side there, coalescing or not). *)
type backend = (Wire.mux_op * Obs.Collector.t option) list -> Wire.mux_reply list

type entry = {
  op : Wire.mux_op;
  col : Obs.Collector.t option;
  cell : (Wire.mux_reply, exn) result Ivar.t;
  at : float; (* submission time, drives the window timer *)
}

exception Backend_lost of string

type t = {
  backend : backend;
  window_us : int;
  rtt_us : int;
  lock : Mutex.t;
  q : entry Queue.t;
  mutable registered : int; (* queries opened and not yet closed *)
  mutable next_session : int;
  mutable stopping : bool;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  live : (int, unit) Hashtbl.t;
      (* sessions opened on the current backend connection; shipper-only.
         Reset when the backend reports [Backend_lost]: the replacement
         connection has never heard of those sessions, so their remaining
         ops are answered locally instead of shipped. *)
  parked_g : Obs.Registry.gauge;
  trips_c : Obs.Registry.counter;
  saved_c : Obs.Registry.counter;
  mutable shipper : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* call under [t.lock]; the registry has its own inner mutex *)
let update_parked t = Obs.Registry.set t.parked_g (float_of_int (Queue.length t.q))

(* Both pipe ends are non-blocking: a full pipe makes this write fail
   with EAGAIN (harmless — a byte is already in there, so the shipper's
   select fires) instead of blocking under [t.lock], which would
   deadlock the shipper against every submitter. *)
let wake t = try ignore (Unix.write_substring t.wake_w "w" 0 1) with Unix.Unix_error _ -> ()

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error _ -> () (* EAGAIN: drained *)
  in
  go ()

let await_wake t timeout =
  match Unix.select [ t.wake_r ] [] [] timeout with
  | [], _, _ -> ()
  | _ready, _, _ -> drain_wake t
  | exception Unix.Unix_error (EINTR, _, _) -> ()

let is_req op = match op with Wire.Mux_req _ -> true | _ -> false

(* Sessions an op refers to that must already be live on the backend
   connection (created sessions — an open's id, a fork's child — are
   deliberately absent: they work on any connection, old or fresh). *)
let op_uses = function
  | Wire.Mux_open _ -> []
  | Wire.Mux_close { session } | Wire.Mux_req { session; _ } -> [ session ]
  | Wire.Mux_fork { parent; _ } -> [ parent ]
  | Wire.Mux_join { parent; child } -> [ parent; child ]

let op_opens = function
  | Wire.Mux_open { session } | Wire.Mux_fork { child = session; _ } -> Some session
  | _ -> None

let op_retires = function
  | Wire.Mux_close { session } | Wire.Mux_join { child = session; _ } -> Some session
  | _ -> None

(* One merged trip. A backend failure (desynced daemon, closed socket)
   answers every parked caller with the exception instead of killing the
   shipper: subsequent submissions keep getting a typed answer. A
   [Backend_lost] failure additionally retires every live session — the
   backend's next call runs on a fresh connection that has never heard
   of them, so their remaining ops (a straggler's next round, cleanup
   closes) are answered locally with a typed error instead of shipped,
   where they would desync the replacement connection too. *)
let stale_error =
  Proto_error.Proto_error "Sched: session lost (S2 connection was re-established)"

let ship t batch =
  let fresh, stale =
    List.partition (fun e -> List.for_all (Hashtbl.mem t.live) (op_uses e.op)) batch
  in
  List.iter (fun e -> Ivar.fill e.cell (Error stale_error)) stale;
  if fresh <> [] then begin
    let replies =
      try Ok (t.backend (List.map (fun e -> (e.op, e.col)) fresh)) with e -> Error e
    in
    if t.rtt_us > 0 then Unix.sleepf (float_of_int t.rtt_us *. 1e-6);
    Obs.Registry.inc t.trips_c;
    Obs.Registry.add t.saved_c
      (max 0 (List.length (List.filter (fun e -> is_req e.op) fresh) - 1));
    match replies with
    | Ok rs when List.length rs = List.length fresh ->
      List.iter
        (fun e ->
          (match op_opens e.op with Some s -> Hashtbl.replace t.live s () | None -> ());
          match op_retires e.op with Some s -> Hashtbl.remove t.live s | None -> ())
        fresh;
      List.iter2 (fun e r -> Ivar.fill e.cell (Ok r)) fresh rs
    | Ok _ ->
      let e = Proto_error.Proto_error "Sched: mux reply count mismatch" in
      List.iter (fun en -> Ivar.fill en.cell (Error e)) fresh
    | Error (Backend_lost reason) ->
      Hashtbl.reset t.live;
      let e = Proto_error.Proto_error ("Sched: S2 connection lost: " ^ reason) in
      List.iter (fun en -> Ivar.fill en.cell (Error e)) fresh
    | Error e -> List.iter (fun en -> Ivar.fill en.cell (Error e)) fresh
  end

(* Ship policy: immediately once every registered query is parked (one
   outstanding op per query, so queue length >= registered means nobody
   is still computing), else when the oldest parked entry has waited the
   window out. [window_us = 0] degrades to ship-whatever-is-parked on
   every wake — still coalescing whatever arrives between trips. *)
let rec shipper_loop t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  if t.stopping && n = 0 then Mutex.unlock t.lock
  else begin
    let now = Unix.gettimeofday () in
    let ready =
      n > 0
      && (t.stopping || n >= t.registered || t.window_us = 0
         || (now -. (Queue.peek t.q).at) *. 1e6 >= float_of_int t.window_us)
    in
    if ready then begin
      let batch = List.of_seq (Queue.to_seq t.q) in
      Queue.clear t.q;
      update_parked t;
      Mutex.unlock t.lock;
      ship t batch;
      shipper_loop t
    end
    else begin
      let timeout =
        if n = 0 then -1.
        else
          max 20e-6
            ((float_of_int t.window_us *. 1e-6) -. (now -. (Queue.peek t.q).at))
      in
      Mutex.unlock t.lock;
      await_wake t timeout;
      shipper_loop t
    end
  end

let create ?(window_us = 150) ?(rtt_us = 0) ?registry ~backend () =
  let reg = match registry with Some r -> r | None -> Obs.Registry.create () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      backend;
      window_us = max 0 window_us;
      rtt_us = max 0 rtt_us;
      lock = Mutex.create ();
      q = Queue.create ();
      registered = 0;
      next_session = 0;
      stopping = false;
      wake_r;
      wake_w;
      live = Hashtbl.create 16;
      parked_g = Obs.Registry.gauge reg "parked_queries";
      trips_c = Obs.Registry.counter reg "coalesced_rounds";
      saved_c = Obs.Registry.counter reg "rounds_saved";
      shipper = None;
    }
  in
  t.shipper <- Some (Domain.spawn (fun () -> shipper_loop t));
  t

let enqueue t op =
  let cell = Ivar.create () in
  let col = Obs.current () in
  locked t (fun () ->
      if t.stopping then raise (Proto_error.Proto_error "Sched: scheduler stopped");
      Queue.add { op; col; cell; at = Unix.gettimeofday () } t.q;
      update_parked t;
      wake t);
  cell

let await cell = match Ivar.read cell with Ok r -> r | Error e -> raise e

let submit t op = await (enqueue t op)

let expect_ok = function
  | Wire.Mux_ok -> ()
  | Wire.Mux_answer _ -> raise (Proto_error.Proto_error "Sched: unexpected mux answer")

let alloc_session t =
  locked t (fun () ->
      t.next_session <- t.next_session + 1;
      t.next_session)

(* Registration and the open op land in one critical section, so the
   all-parked check can never see the new query registered but its open
   not yet parked (or vice versa). *)
let open_query t =
  let cell = Ivar.create () in
  let col = Obs.current () in
  let session =
    locked t (fun () ->
        if t.stopping then raise (Proto_error.Proto_error "Sched: scheduler stopped");
        t.next_session <- t.next_session + 1;
        let session = t.next_session in
        t.registered <- t.registered + 1;
        Queue.add
          { op = Wire.Mux_open { session }; col; cell; at = Unix.gettimeofday () }
          t.q;
        update_parked t;
        wake t;
        session)
  in
  (* on a failed open nothing will ever close this session: undo the
     registration so the all-parked fast path keeps firing *)
  (try expect_ok (await cell)
   with e ->
     locked t (fun () -> t.registered <- max 0 (t.registered - 1));
     raise e);
  session

let close_query t session =
  let cell = Ivar.create () in
  let col = Obs.current () in
  locked t (fun () ->
      if t.stopping then raise (Proto_error.Proto_error "Sched: scheduler stopped");
      t.registered <- max 0 (t.registered - 1);
      Queue.add
        { op = Wire.Mux_close { session }; col; cell; at = Unix.gettimeofday () }
        t.q;
      update_parked t;
      wake t);
  expect_ok (await cell)

let stop t =
  let shipper =
    locked t (fun () ->
        t.stopping <- true;
        wake t;
        let s = t.shipper in
        t.shipper <- None;
        s)
  in
  match shipper with
  | None -> ()
  | Some d ->
    Domain.join d;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ())

(* The socket backend: one merged frame out, one merged frame back. The
   shipper is the only thread touching [fd]. *)
let socket_backend keys fd ops =
  Wire.write_frame fd (Wire.encode_mux keys (List.map fst ops));
  match Wire.read_frame fd with
  | None -> raise (Proto_error.Proto_error "Sched: S2 closed the connection")
  | Some frame ->
    let replies = Wire.decode_mux_replies keys frame in
    if List.length replies <> List.length ops then
      raise (Proto_error.Proto_error "Sched: mux reply count mismatch");
    replies
