type event =
  | Equality_bits of { protocol : string; bits : bool list }
  | Dedup_matrix of { protocol : string; size : int; equal_pairs : (int * int) list }
  | Comparison of { protocol : string; ordering : int }
  | Count of { protocol : string; value : int }

type t = { mutable rev_events : event list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let record t e =
  t.rev_events <- e :: t.rev_events;
  t.n <- t.n + 1

let events t = List.rev t.rev_events
let length t = t.n

let append_into src ~into = List.iter (record into) (events src)

let clear t =
  t.rev_events <- [];
  t.n <- 0
