(** EncCompare — the comparison building block (functionality of Bost et
    al. [11], Section 8): S1 holds [Enc(a)], [Enc(b)] and ends with the
    plaintext bit [f := (a <= b)]; S2 ends with nothing.

    Instantiation (see DESIGN.md substitution table): S1 flips a coin,
    homomorphically forms the difference in the coin's direction, blinds it
    with a random positive multiplier and ships it to S2, who replies with
    the sign of the (signed-decoded) plaintext. The coin hides the
    direction from S2; the multiplier hides the magnitude up to a random
    factor. Values must satisfy [|a - b| * rho < n/2] (guaranteed for
    score-domain values). *)

open Crypto

(** [leq ctx a b] is [a <= b] under the signed encoding (residues above
    [n/2] are negative — the sentinel [Z] compares below every score). *)
val leq : Ctx.t -> Paillier.ciphertext -> Paillier.ciphertext -> bool

(** [signs_of ctx vs] — vectorized sign test: the signs of the
    signed-decoded plaintexts of [vs] (already blinded by the caller),
    fetched in one batch round. One [Comparison] trace event per element,
    in index order. *)
val signs_of : Ctx.t -> Paillier.ciphertext array -> int array

(** [leq_many ctx pairs] is [List.map (fun (a, b) -> leq ctx a b) pairs]
    in a single round: identical coins, blinding draws and trace events,
    one batch frame. *)
val leq_many :
  Ctx.t -> (Paillier.ciphertext * Paillier.ciphertext) list -> bool list

(** [leq_dgk ctx ~bits a b] — the DGK/Veugen bitwise comparison, the
    protocol family [11] actually builds on: S1 forms
    [Enc(d) = Enc(2^bits + b - a)], statistically blinds it, S2 decrypts
    the blinded value and returns bit encryptions of its low word, and the
    parties resolve the borrow with the DGK zero-test under a direction
    coin. S2 sees only uniform values and one coin-masked bit; unlike
    {!leq}, not even a randomized difference magnitude leaks. Requires
    [0 <= a, b < 2^bits] (no signed encoding; the caller maps sentinels).
    Costs O(bits) ciphertexts per call — the ablation bench quantifies the
    gap to {!leq}. *)
val leq_dgk : Ctx.t -> bits:int -> Paillier.ciphertext -> Paillier.ciphertext -> bool
