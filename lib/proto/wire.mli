(** Tagged, versioned binary codec for every S1 <-> S2 message.

    Frame layout (big-endian throughout, following {!Sectopk.Codec}'s
    fixed-width conventions):

    {v
    "STKW" | version | kind | tag | session       -- 11-byte header
    requests additionally: len | label            -- protocol name
    then the tag-specific payload
    v}

    Ciphertexts are zero-padded fixed-width naturals: [ciphertext_bytes pub]
    for values under the shared key, [ciphertext_bytes own_pub] for S1's
    escrow key, [ciphertext_bytes djpub] for Damgård–Jurik values — so every
    frame length is a closed form of the key sizes and the collection
    lengths ({!request_bytes}/{!response_bytes}), which is what the Inproc
    transport charges without materialising the frame.

    All decoders validate magic, version, kind, tag, field bounds and
    trailing bytes; every failure raises [Invalid_argument]. *)

open Crypto

type keys = {
  pub : Paillier.public;
  djpub : Damgard_jurik.public;
  own_pub : Paillier.public;
}

val keys_of :
  pub:Paillier.public ->
  djpub:Damgard_jurik.public ->
  own_pub:Paillier.public ->
  keys

type dedup_mode = Replace | Eliminate

(** A joined tuple in flight through SecFilter, with its blinding escrow
    under S1's personal key. *)
type tuple = {
  score : Paillier.ciphertext;
  attrs : Paillier.ciphertext array;
  r_escrow : Paillier.ciphertext list;
  a_escrow : Paillier.ciphertext array;
}

type request =
  | Sign_of of Paillier.ciphertext  (** EncCompare: sign of a blinded difference *)
  | Equality of Paillier.ciphertext list  (** SecWorst/SecBest/SecUpdate/SecJoin *)
  | Conjunction of Paillier.ciphertext list list  (** multi-way join predicate *)
  | Recover of Damgard_jurik.ciphertext  (** RecoverEnc: strip the outer layer *)
  | Lift of Paillier.ciphertext list  (** SecRefresh: Enc -> E2 *)
  | Dgk_low_bits of { bits : int; z : Paillier.ciphertext }
      (** DGK: bitwise decomposition of the blinded difference *)
  | Zero_any of Paillier.ciphertext list  (** DGK: any c_i = 0? (traced) *)
  | Zero_test of Paillier.ciphertext  (** DGK equality corner (untraced) *)
  | Mult of Paillier.ciphertext * Paillier.ciphertext  (** SKNN secure multiply *)
  | Lsb of Paillier.ciphertext  (** SBD bit extraction *)
  | Dedup of {
      mode : dedup_mode;
      diffs : Paillier.ciphertext list;  (** pairwise blinded EHL diffs, {!pair_indices} order *)
      items : (Enc_item.scored * Enc_item.pack) list;  (** masked items + escrows *)
    }
  | Dup_flags of Damgard_jurik.ciphertext list  (** SecUpdate eliminate: reveal matches *)
  | Sort_items of { keys : Paillier.ciphertext list; items : Enc_item.scored list }
      (** EncSort blinded one-round strategy *)
  | Sort_gate of {
      descending : bool;
      kx : Paillier.ciphertext;
      ky : Paillier.ciphertext;
      x : Enc_item.scored;
      y : Enc_item.scored;
    }  (** EncSort bitonic compare-exchange gate *)
  | Filter of tuple list  (** SecFilter: drop zero-scored tuples *)
  | Rank_tuples of (Paillier.ciphertext * Paillier.ciphertext * Paillier.ciphertext array) list
      (** blinded descending sort of joined tuples: (key, score, attrs) *)
  | Rank_keys of Paillier.ciphertext list  (** SKNN: ascending rank of blinded keys *)
  | Zero_slot of Paillier.ciphertext list  (** SKNN SMIN: first zero slot *)
  | Batch of request list
      (** independent requests shipped as one frame (one round); nesting a
          [Batch] inside a [Batch] raises [Invalid_argument] in both the
          encoder and the decoder *)

type response =
  | Sign of int  (** -1 | 0 | 1 *)
  | Bits2 of Damgard_jurik.ciphertext list  (** E2 equality bits *)
  | Ct of Paillier.ciphertext
  | Dgk_bits of { bit_cts : Paillier.ciphertext list; parity : bool }
  | Bit of bool
  | Flags of bool list
  | Items of (Enc_item.scored * Enc_item.pack) list
  | Sorted of Enc_item.scored list
  | Pair of Enc_item.scored * Enc_item.scored
  | Tuples of tuple list
  | Ranked of (Paillier.ciphertext * Paillier.ciphertext array) list
  | Indices of int list
  | Slot of int option
  | Batch_resp of response list
      (** element-wise responses to a [Batch], in request order; nesting
          rejected like [Batch] *)

(** One element of a multiplexed frame (kind byte ['M']): the round
    scheduler ({!Sched}) coalesces ops parked by many concurrent queries
    into a single frame, each op tagged with the session it belongs to.
    [Mux_open] makes S2 provision a fresh responder for the session (the
    same [of_hello] replay a dedicated connection would get);
    [Mux_close] retires it; [Mux_fork]/[Mux_join] mirror the control
    frames of {!control} inside the merged trip; [Mux_req] is one
    ordinary request routed to its session. *)
type mux_op =
  | Mux_open of { session : int }
  | Mux_close of { session : int }
  | Mux_fork of { parent : int; child : int; label : string }
  | Mux_join of { parent : int; child : int }
  | Mux_req of { session : int; label : string; req : request }

(** Element-wise replies to a mux frame (kind byte ['N']), in op order:
    [Mux_ok] answers the session-management ops, [Mux_answer] a
    [Mux_req]. *)
type mux_reply = Mux_ok | Mux_answer of response

(** Provisioning parameters replayed by the daemon to rebuild the exact key
    material and randomness streams of the client's context (see
    [Ctx.provision]). *)
type hello = { seed : string; key_bits : int; rand_bits : int option; obs : bool }

type control =
  | Hello of hello
  | Fork of { parent : int; child : int; label : string }
  | Join of { parent : int; child : int }
  | Get_trace
  | Get_stats  (** legacy op-counter totals ({!Stats}); kept for [remote_stats] *)
  | Stats_req
      (** live-telemetry scrape: answered with a full registry snapshot
          ({!Stats_resp}).  Decoding needs no key material, so any
          monitoring client can speak it. *)
  | Shutdown

type control_reply =
  | Ok_ctl
  | Trace_events of Trace.event list
  | Stats of (string * int) list
  | Stats_resp of Obs.Registry.snapshot
      (** registry snapshot; integer fields travel as 8 bytes (histogram
          sums outgrow the 30-bit collection-length cap), gauges as IEEE
          doubles.  The decoder re-checks histogram internal consistency
          (bucket counts sum to [hcount], [hmin <= hmax]). *)

(** The (i, j) pair order of SecDedup's pairwise matrix: for [l] items, all
    [i < j] pairs with [i] ascending, then [j] ascending. *)
val pair_indices : int -> (int * int) array

val encode_request : keys -> session:int -> label:string -> request -> string
val decode_request : keys -> string -> int * string * request
val encode_response : keys -> response -> string
val decode_response : keys -> string -> response
val encode_control : control -> string
val decode_control : string -> control
val encode_control_reply : control_reply -> string
val decode_control_reply : string -> control_reply

(** Multiplex envelope codec: one frame of correlation-tagged ops from
    many queries, one frame of element-wise replies. Malformed input —
    bad tags, truncated payloads, trailing bytes, a nested batch inside
    a [Mux_req] — raises [Invalid_argument] like every other codec
    path. *)
val encode_mux : keys -> mux_op list -> string

val decode_mux : keys -> string -> mux_op list
val encode_mux_replies : keys -> mux_reply list -> string
val decode_mux_replies : keys -> string -> mux_reply list

(** {2 Client <-> S1 front-end frames}

    Spoken between a querying client and the lib/server front-end (kind
    bytes 'U'/'V'): the token travels as an opaque {!Sectopk.Codec} blob,
    results come back still encrypted, and overload is a typed {!Busy}
    rather than a stall. *)

type client_msg = Query_req of { token : string }

type server_msg =
  | Server_hello of { n : int; m : int; s : int; key_bits : int }
      (** sent once per connection, before any query: the public shape a
          client needs to build tokens and resolve results *)
  | Query_resp of { top : Enc_item.scored list; halting_depth : int; halted : bool }
  | Busy  (** admission queue full — retry later *)
  | Server_error of string

val encode_client_msg : client_msg -> string
val decode_client_msg : string -> client_msg
val encode_server_msg : keys -> server_msg -> string
val decode_server_msg : keys -> string -> server_msg

(** Closed-form frame sizes, equal to [String.length (encode_* ...)]
    (asserted by the Wire property tests). *)
val request_bytes : keys -> label:string -> request -> int

val response_bytes : keys -> response -> int

(** Header overhead: request frames cost [request_header_bytes ~label] on
    top of the payload; responses cost [response_header_bytes]. *)
val request_header_bytes : label:string -> int

val response_header_bytes : int

(** Length-prefixed framing over a file descriptor (Socket transport). The
    4-byte prefix is transport plumbing, excluded from bandwidth
    accounting. [read_frame] returns [None] on clean EOF. *)
val write_frame : Unix.file_descr -> string -> unit

val read_frame : Unix.file_descr -> string option

(** Peek at the kind byte of a raw frame ('Q' request, 'C' control, ...). *)
val frame_kind : string -> char option
