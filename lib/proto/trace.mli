(** What the Crypto Cloud S2 actually observes during query processing.

    Each sub-protocol appends the *decrypted view* S2 obtains to this log.
    The {!Sectopk.Leakage} module reduces a trace to the paper's leakage
    profiles, and the security tests assert that traces of databases that
    agree on the leakage are identically distributed in shape. *)

type event =
  | Equality_bits of { protocol : string; bits : bool list }
      (** The [t_i] bits S2 derives while serving SecWorst / SecBest /
          SecUpdate (already under S1's random permutation). *)
  | Dedup_matrix of { protocol : string; size : int; equal_pairs : (int * int) list }
      (** The permuted pairwise-equality matrix decrypted in SecDedup. *)
  | Comparison of { protocol : string; ordering : int }
      (** Sign of a blinded difference ([-1], [0], [1]) seen in
          EncCompare / EncSort gates. *)
  | Count of { protocol : string; value : int }
      (** A cardinality S2 learns (e.g. surviving tuples in SecFilter,
          distinct items in SecDupElim). *)

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list

(** Events in order of occurrence. *)
val length : t -> int

val clear : t -> unit

(** [append_into src ~into] appends all of [src]'s events to [into] in
    order. Sub-traces of parallel batches are appended in task-index
    order, so the merged trace is identical to a serial run's. *)
val append_into : t -> into:t -> unit
