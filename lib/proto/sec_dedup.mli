(** SecDedup (Protocol 8.3 / Algorithm 7) and its SecDupElim optimization
    (Section 10.1).

    S1 holds scored items [Q]; after the protocol it holds a fresh list in
    which no two items encode the same object. In [Replace] mode (the
    fully-private SecDedup) every duplicate is substituted by an item with
    a random object id and worst/best scores equal to the sentinel
    [Z = n - 1] (= [-1] in the signed encoding), so the list length — and
    hence everything S1 sees — is unchanged. In [Eliminate] mode
    (SecDupElim) S2 simply drops the duplicates, which is faster and
    shrinks all downstream work but additionally reveals the number of
    distinct objects (the uniqueness pattern UP^d).

    Blinding discipline: S1 masks every component and encrypts the mask
    under its personal key [pk'] so S2 can neither read the items nor
    link the returned list to the submitted one; S2 layers its own masks
    (and a second permutation) on top so S1 cannot tell which items were
    replaced. *)

type mode = Wire.dedup_mode = Replace | Eliminate

(** [run ctx ~mode items] — S2 learns only the permuted pairwise equality
    pattern (and, in [Eliminate] mode, S1 additionally learns the distinct
    count). If duplicates carry different scores the kept copy's scores
    are those of one of the duplicates (callers must ensure duplicates
    agree, which SecWorst/SecBest/SecUpdate guarantee). *)
val run : Ctx.t -> mode:mode -> Enc_item.scored list -> Enc_item.scored list
