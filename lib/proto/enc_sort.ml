open Bignum
open Crypto

type strategy = Network | Blinded

let protocol = "EncSort"

(* Affine key blinding rho*W + r with rho > 0: strictly monotone, so
   comparing blinded keys compares the hidden worst scores. *)
let blind_key (s1 : Ctx.s1) ~rho ~r w =
  Paillier.add s1.pub (Paillier.scalar_mul s1.pub w rho) (Paillier.encrypt s1.rng s1.pub r)

let additive_blind (s1 : Ctx.s1) =
  match s1.blind_bits with
  | None -> Rng.nat_below s1.rng (Nat.shift_right s1.pub.Paillier.n 2)
  | Some bits -> Rng.nat_bits s1.rng bits

(* ---------------- Blinded one-round strategy ---------------- *)

let sort_blinded (ctx : Ctx.t) items =
  let s1 = ctx.Ctx.s1 in
  let rho = Gadgets.blind_scalar s1 and r = additive_blind s1 in
  let arr = Array.of_list items in
  ignore (Rng.shuffle s1.rng arr);
  let jobs = Array.length arr in
  (* Key blinding is per-item independent pure-S1 work: fan it out on the
     pool. The decrypt + plaintext sort + re-randomization happen at S2 in
     a single round trip. *)
  let keys =
    Ctx.parallel ctx ~jobs (fun sub i ->
        blind_key sub.Ctx.s1 ~rho ~r arr.(i).Enc_item.worst)
  in
  match
    Ctx.rpc ctx ~label:protocol
      (Wire.Sort_items { keys = Array.to_list keys; items = Array.to_list arr })
  with
  | Wire.Sorted out -> out
  | _ -> failwith "Enc_sort.sort_blinded: unexpected response"

(* ---------------- Bitonic network strategy ---------------- *)

let pad_item (s1 : Ctx.s1) ~cells ~m_seen =
  let n = s1.pub.Paillier.n in
  let minus2 = Nat.sub n Nat.two in
  {
    Enc_item.ehl =
      Ehl.Ehl_plus.of_cells
        (Array.init cells (fun _ -> Paillier.encrypt s1.rng s1.pub (Rng.nat_below s1.rng n)));
    worst = Paillier.encrypt s1.rng s1.pub minus2;
    best = Paillier.encrypt s1.rng s1.pub minus2;
    seen = Array.init m_seen (fun _ -> Paillier.encrypt s1.rng s1.pub Nat.one);
  }

(* One compare-exchange gate through S2: the pair travels coin-swapped and
   key-blinded; S2 returns it ordered (larger key first iff [descending]),
   re-randomized. *)
let gate (ctx : Ctx.t) arr i j ~descending =
  let s1 = ctx.Ctx.s1 in
  let rho = Gadgets.blind_scalar s1 and r = additive_blind s1 in
  let coin = Rng.bool s1.rng in
  let x, y = if coin then (arr.(j), arr.(i)) else (arr.(i), arr.(j)) in
  let kx = blind_key s1 ~rho ~r x.Enc_item.worst and ky = blind_key s1 ~rho ~r y.Enc_item.worst in
  let first, second =
    match
      Ctx.rpc ctx ~label:protocol (Wire.Sort_gate { descending; kx; ky; x; y })
    with
    | Wire.Pair (first, second) -> (first, second)
    | _ -> failwith "Enc_sort.gate: unexpected response"
  in
  (* --- S1 places the ordered pair --- *)
  arr.(i) <- first;
  arr.(j) <- second

let sort_network (ctx : Ctx.t) items =
  match items with
  | [] | [ _ ] -> items
  | first :: _ ->
    let s1 = ctx.Ctx.s1 in
    let l = List.length items in
    let size =
      let rec up p = if p >= l then p else up (2 * p) in
      up 1
    in
    let cells = Ehl.Ehl_plus.length first.Enc_item.ehl in
    let m_seen = Array.length first.Enc_item.seen in
    let arr = Array.make size (List.hd items) in
    List.iteri (fun i it -> arr.(i) <- it) items;
    for i = l to size - 1 do
      arr.(i) <- pad_item s1 ~cells ~m_seen
    done;
    let rec bitonic_sort lo n descending =
      if n > 1 then begin
        let half = n / 2 in
        bitonic_sort lo half (not descending);
        bitonic_sort (lo + half) half descending;
        bitonic_merge lo n descending
      end
    and bitonic_merge lo n descending =
      if n > 1 then begin
        let half = n / 2 in
        (* the half gates of one merge stage touch disjoint index pairs *)
        ignore
          (Ctx.parallel ctx ~jobs:half (fun sub t ->
               gate sub arr (lo + t) (lo + t + half) ~descending));
        bitonic_merge lo half descending;
        bitonic_merge (lo + half) half descending
      end
    in
    bitonic_sort 0 size true;
    (* pads carry key -2 < every real or sentinel key: they end at the tail *)
    Array.to_list (Array.sub arr 0 l)

let sort ctx ~strategy items =
  Obs.span protocol @@ fun () ->
  match strategy with Blinded -> sort_blinded ctx items | Network -> sort_network ctx items
