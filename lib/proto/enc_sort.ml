open Bignum
open Crypto

type strategy = Network | Blinded

let protocol = "EncSort"

(* Affine key blinding rho*W + r with rho > 0: strictly monotone, so
   comparing blinded keys compares the hidden worst scores. *)
let blind_key (s1 : Ctx.s1) ~rho ~r w =
  Paillier.add s1.pub (Paillier.scalar_mul s1.pub w rho) (Paillier.encrypt s1.rng s1.pub r)

let additive_blind (s1 : Ctx.s1) =
  match s1.blind_bits with
  | None -> Rng.nat_below s1.rng (Nat.shift_right s1.pub.Paillier.n 2)
  | Some bits -> Rng.nat_bits s1.rng bits

let item_bytes (s1 : Ctx.s1) (it : Enc_item.scored) = Enc_item.scored_bytes s1.pub it

(* ---------------- Blinded one-round strategy ---------------- *)

let sort_blinded (ctx : Ctx.t) items =
  let s1 = ctx.Ctx.s1 and s2 = ctx.Ctx.s2 in
  let rho = Gadgets.blind_scalar s1 and r = additive_blind s1 in
  let arr = Array.of_list items in
  ignore (Rng.shuffle s1.rng arr);
  let jobs = Array.length arr in
  (* Key blinding (S1) and blinded-key decryption (S2) are per-item
     independent: fan both out on the pool. The sort itself is plaintext. *)
  let decorated =
    Ctx.parallel ctx ~jobs (fun sub i ->
        let it = arr.(i) in
        let k = blind_key sub.Ctx.s1 ~rho ~r it.Enc_item.worst in
        (Paillier.decrypt_signed sub.Ctx.s2.sk k, it))
  in
  let ct = Paillier.ciphertext_bytes s1.pub in
  let payload =
    Array.fold_left (fun acc it -> acc + ct + item_bytes s1 it) 0 arr
  in
  Channel.send s1.chan ~dir:Channel.S1_to_s2 ~label:protocol ~bytes:payload;
  Array.sort (fun (a, _) (b, _) -> Bigint.compare b a) decorated;
  Trace.record s2.trace (Trace.Count { protocol; value = Array.length decorated });
  let out =
    Ctx.parallel ctx ~jobs (fun sub i ->
        Enc_item.rerandomize_scored sub.Ctx.s2.rng2 sub.Ctx.s2.pub2 (snd decorated.(i)))
  in
  Channel.send s2.chan2 ~dir:Channel.S2_to_s1 ~label:protocol
    ~bytes:(Array.fold_left (fun acc it -> acc + item_bytes s1 it) 0 out);
  Channel.round_trip s1.chan;
  Array.to_list out

(* ---------------- Bitonic network strategy ---------------- *)

let pad_item (s1 : Ctx.s1) ~cells ~m_seen =
  let n = s1.pub.Paillier.n in
  let minus2 = Nat.sub n Nat.two in
  {
    Enc_item.ehl =
      Ehl.Ehl_plus.of_cells
        (Array.init cells (fun _ -> Paillier.encrypt s1.rng s1.pub (Rng.nat_below s1.rng n)));
    worst = Paillier.encrypt s1.rng s1.pub minus2;
    best = Paillier.encrypt s1.rng s1.pub minus2;
    seen = Array.init m_seen (fun _ -> Paillier.encrypt s1.rng s1.pub Nat.one);
  }

(* One compare-exchange gate through S2: the pair travels coin-swapped and
   key-blinded; S2 returns it ordered (larger key first iff [descending]),
   re-randomized. *)
let gate (ctx : Ctx.t) arr i j ~descending =
  let s1 = ctx.Ctx.s1 and s2 = ctx.Ctx.s2 in
  let rho = Gadgets.blind_scalar s1 and r = additive_blind s1 in
  let coin = Rng.bool s1.rng in
  let x, y = if coin then (arr.(j), arr.(i)) else (arr.(i), arr.(j)) in
  let kx = blind_key s1 ~rho ~r x.Enc_item.worst and ky = blind_key s1 ~rho ~r y.Enc_item.worst in
  let ct = Paillier.ciphertext_bytes s1.pub in
  Channel.send s1.chan ~dir:Channel.S1_to_s2 ~label:protocol
    ~bytes:((2 * ct) + item_bytes s1 x + item_bytes s1 y);
  (* --- S2 --- *)
  let vx = Paillier.decrypt_signed s2.sk kx and vy = Paillier.decrypt_signed s2.sk ky in
  let cmp = Bigint.compare vx vy in
  Trace.record s2.trace (Trace.Comparison { protocol; ordering = compare cmp 0 });
  let first, second =
    if (cmp >= 0 && descending) || (cmp < 0 && not descending) then (x, y) else (y, x)
  in
  let first = Enc_item.rerandomize_scored s2.rng2 s2.pub2 first in
  let second = Enc_item.rerandomize_scored s2.rng2 s2.pub2 second in
  Channel.send s2.chan2 ~dir:Channel.S2_to_s1 ~label:protocol
    ~bytes:(item_bytes s1 first + item_bytes s1 second);
  Channel.round_trip s1.chan;
  (* --- S1 places the ordered pair --- *)
  arr.(i) <- first;
  arr.(j) <- second

let sort_network (ctx : Ctx.t) items =
  match items with
  | [] | [ _ ] -> items
  | first :: _ ->
    let s1 = ctx.Ctx.s1 in
    let l = List.length items in
    let size =
      let rec up p = if p >= l then p else up (2 * p) in
      up 1
    in
    let cells = Ehl.Ehl_plus.length first.Enc_item.ehl in
    let m_seen = Array.length first.Enc_item.seen in
    let arr = Array.make size (List.hd items) in
    List.iteri (fun i it -> arr.(i) <- it) items;
    for i = l to size - 1 do
      arr.(i) <- pad_item s1 ~cells ~m_seen
    done;
    let rec bitonic_sort lo n descending =
      if n > 1 then begin
        let half = n / 2 in
        bitonic_sort lo half (not descending);
        bitonic_sort (lo + half) half descending;
        bitonic_merge lo n descending
      end
    and bitonic_merge lo n descending =
      if n > 1 then begin
        let half = n / 2 in
        (* the half gates of one merge stage touch disjoint index pairs *)
        ignore
          (Ctx.parallel ctx ~jobs:half (fun sub t ->
               gate sub arr (lo + t) (lo + t + half) ~descending));
        bitonic_merge lo half descending;
        bitonic_merge (lo + half) half descending
      end
    in
    bitonic_sort 0 size true;
    (* pads carry key -2 < every real or sentinel key: they end at the tail *)
    Array.to_list (Array.sub arr 0 l)

let sort ctx ~strategy items =
  Obs.span protocol @@ fun () ->
  match strategy with Blinded -> sort_blinded ctx items | Network -> sort_network ctx items
