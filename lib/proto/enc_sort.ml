open Bignum
open Crypto

type strategy = Network | Blinded

let protocol = "EncSort"

(* Affine key blinding rho*W + r with rho > 0: strictly monotone, so
   comparing blinded keys compares the hidden worst scores. *)
let blind_key (s1 : Ctx.s1) ~rho ~r w =
  Paillier.add s1.pub (Paillier.scalar_mul s1.pub w rho) (Paillier.encrypt s1.rng s1.pub r)

let additive_blind (s1 : Ctx.s1) =
  match s1.blind_bits with
  | None -> Rng.nat_below s1.rng (Nat.shift_right s1.pub.Paillier.n 2)
  | Some bits -> Rng.nat_bits s1.rng bits

(* ---------------- Blinded one-round strategy ---------------- *)

let sort_blinded (ctx : Ctx.t) items =
  let s1 = ctx.Ctx.s1 in
  let rho = Gadgets.blind_scalar s1 and r = additive_blind s1 in
  let arr = Array.of_list items in
  ignore (Rng.shuffle s1.rng arr);
  let jobs = Array.length arr in
  (* Key blinding is per-item independent pure-S1 work: fan it out on the
     pool. The decrypt + plaintext sort + re-randomization happen at S2 in
     a single round trip. *)
  let keys =
    Ctx.parallel ctx ~jobs (fun sub i ->
        blind_key sub.Ctx.s1 ~rho ~r arr.(i).Enc_item.worst)
  in
  match
    Ctx.rpc ctx ~label:protocol
      (Wire.Sort_items { keys = Array.to_list keys; items = Array.to_list arr })
  with
  | Wire.Sorted out -> out
  | _ -> failwith "Enc_sort.sort_blinded: unexpected response"

(* ---------------- Bitonic network strategy ---------------- *)

let pad_item (s1 : Ctx.s1) ~cells ~m_seen =
  let n = s1.pub.Paillier.n in
  let minus2 = Nat.sub n Nat.two in
  {
    Enc_item.ehl =
      Ehl.Ehl_plus.of_cells
        (Array.init cells (fun _ -> Paillier.encrypt s1.rng s1.pub (Rng.nat_below s1.rng n)));
    worst = Paillier.encrypt s1.rng s1.pub minus2;
    best = Paillier.encrypt s1.rng s1.pub minus2;
    seen = Array.init m_seen (fun _ -> Paillier.encrypt s1.rng s1.pub Nat.one);
  }

(* One prepared compare-exchange gate: the pair travels coin-swapped and
   key-blinded; S2 returns it ordered (larger key first iff [descending]),
   re-randomized. *)
let gate_request (s1 : Ctx.s1) arr i j ~descending =
  let rho = Gadgets.blind_scalar s1 and r = additive_blind s1 in
  let coin = Rng.bool s1.rng in
  let x, y = if coin then (arr.(j), arr.(i)) else (arr.(i), arr.(j)) in
  let kx = blind_key s1 ~rho ~r x.Enc_item.worst and ky = blind_key s1 ~rho ~r y.Enc_item.worst in
  Wire.Sort_gate { descending; kx; ky; x; y }

(* Iterative bitonic network: the gates of one [(k, j)] phase touch
   disjoint index pairs, so the whole phase ships as a single batch —
   O(log^2 size) rounds instead of one round per gate. Same gate count
   and the same descending result as the recursive formulation. *)
let sort_network (ctx : Ctx.t) items =
  match items with
  | [] | [ _ ] -> items
  | first :: _ ->
    let s1 = ctx.Ctx.s1 in
    let l = List.length items in
    let size =
      let rec up p = if p >= l then p else up (2 * p) in
      up 1
    in
    let cells = Ehl.Ehl_plus.length first.Enc_item.ehl in
    let m_seen = Array.length first.Enc_item.seen in
    let arr = Array.make size (List.hd items) in
    List.iteri (fun i it -> arr.(i) <- it) items;
    for i = l to size - 1 do
      arr.(i) <- pad_item s1 ~cells ~m_seen
    done;
    let k = ref 2 in
    while !k <= size do
      let j = ref (!k / 2) in
      while !j >= 1 do
        (* this phase's disjoint pairs, ascending in the lower index; the
           gate at (i, i lxor j) runs descending iff i land k = 0, which
           makes the full network sort descending *)
        let pairs = ref [] in
        for i = size - 1 downto 0 do
          let p = i lxor !j in
          if p > i then pairs := (i, p, i land !k = 0) :: !pairs
        done;
        let gates =
          List.map
            (fun (i, p, descending) ->
              ((i, p), gate_request s1 arr i p ~descending))
            !pairs
        in
        let resps = Ctx.rpc_batch ctx ~label:protocol (List.map snd gates) in
        List.iter2
          (fun ((i, p), _) resp ->
            match resp with
            | Wire.Pair (first, second) ->
              arr.(i) <- first;
              arr.(p) <- second
            | _ -> failwith "Enc_sort.sort_network: unexpected response")
          gates resps;
        j := !j / 2
      done;
      k := !k * 2
    done;
    (* pads carry key -2 < every real or sentinel key: they end at the tail *)
    Array.to_list (Array.sub arr 0 l)

let sort ctx ~strategy items =
  Obs.span protocol @@ fun () ->
  match strategy with Blinded -> sort_blinded ctx items | Network -> sort_network ctx items
