open Bignum
open Crypto

type t = {
  pub : Paillier.public;
  djpub : Damgard_jurik.public;
  sk : Paillier.secret;
  djsk : Damgard_jurik.secret;
  own_pub : Paillier.public;
  rng : Rng.t;
  trace : Trace.t;
  pnoise : Noise_pool.t;  (** precomputed Paillier re-randomization noise *)
}

let make_pool rng pub = Noise_pool.create rng ~label:"noise" (fun r -> Paillier.noise r pub)

let create ~pub ~djpub ~sk ~djsk ~own_pub ~rng =
  let pnoise = make_pool rng pub in
  (* warm the per-key tables (Montgomery contexts, fixed-base combs)
     before the first request *)
  Obs.span "comb_warmup" (fun () ->
      Paillier.precompute pub;
      Damgard_jurik.precompute djpub;
      Paillier.precompute own_pub);
  { pub; djpub; sk; djsk; own_pub; rng; trace = Trace.create (); pnoise }

let trace t = t.trace
let secret_key t = t.sk
let noise_pool t = t.pnoise

let fork t ~label =
  let rng = Rng.fork t.rng ~label in
  { t with rng; trace = Trace.create (); pnoise = make_pool rng t.pub }
let join sub ~into = Trace.append_into sub.trace ~into:into.trace

(* Rebuild key material and the S2 randomness stream from the client's
   provisioning parameters, consuming the seeded root generator in exactly
   the order [Ctx.provision] does. Demo/test provisioning only: a real
   deployment would ship keys out-of-band (the replay also derives S1's
   personal key pair, whose secret half S2 must never use). *)
let of_hello (h : Wire.hello) =
  let root = Rng.create ~seed:h.seed in
  let pub, sk = Paillier.keygen ?rand_bits:h.rand_bits root ~bits:h.key_bits in
  let ctx_rng = Rng.fork root ~label:"ctx" in
  let djpub, djsk_opt = Damgard_jurik.of_paillier pub (Some sk) in
  let s1_rng = Rng.fork ctx_rng ~label:"s1" in
  (* same noise policy as [Ctx.of_keys] gives this key — the two
     derivations must stay in lockstep *)
  let own_pub, _own_sk =
    Paillier.keygen ?rand_bits:h.rand_bits s1_rng ~bits:(pub.Paillier.key_bits + 16)
  in
  let rng = Rng.fork ctx_rng ~label:"s2" in
  create ~pub ~djpub ~sk ~djsk:(Option.get djsk_opt) ~own_pub ~rng

(* ---------------- per-request handlers ----------------

   Everything below is S2's view: it sees only what arrives in the
   request, decrypts what the protocol lets it decrypt, and records each
   revealed fact in its trace under the request's protocol label. *)

let dj_bit rng t b =
  Damgard_jurik.encrypt rng t.djpub (if b then Nat.one else Nat.zero)

(* S2 layers its own randomness on a masked SecDedup item and updates the
   escrow pack under S1's personal key accordingly (Algorithm 7). *)
let dedup_remask t (it : Enc_item.scored) (pack : Enc_item.pack) =
  let n = t.pub.Paillier.n in
  let own_pub = t.own_pub in
  let cells = Ehl.Ehl_plus.length it.Enc_item.ehl in
  let alphas' = Array.init cells (fun _ -> Rng.nat_below t.rng n) in
  let beta' = Rng.nat_below t.rng n in
  let gamma' = Rng.nat_below t.rng n in
  let sigmas' = Array.map (fun _ -> Rng.nat_below t.rng n) it.Enc_item.seen in
  let it' : Enc_item.scored =
    {
      ehl =
        Ehl.Ehl_plus.mask t.pub it.Enc_item.ehl
          (Array.map (fun a -> Paillier.encrypt t.rng t.pub a) alphas');
      worst = Paillier.add t.pub it.Enc_item.worst (Paillier.encrypt t.rng t.pub beta');
      best = Paillier.add t.pub it.Enc_item.best (Paillier.encrypt t.rng t.pub gamma');
      seen =
        Array.mapi
          (fun l u -> Paillier.add t.pub u (Paillier.encrypt t.rng t.pub sigmas'.(l)))
          it.Enc_item.seen;
    }
  in
  let pack' : Enc_item.pack =
    {
      alphas =
        Array.mapi
          (fun c a -> Paillier.add own_pub a (Paillier.encrypt t.rng own_pub alphas'.(c)))
          pack.Enc_item.alphas;
      beta = Paillier.add own_pub pack.Enc_item.beta (Paillier.encrypt t.rng own_pub beta');
      gamma = Paillier.add own_pub pack.Enc_item.gamma (Paillier.encrypt t.rng own_pub gamma');
      sigmas =
        Array.mapi
          (fun l a -> Paillier.add own_pub a (Paillier.encrypt t.rng own_pub sigmas'.(l)))
          pack.Enc_item.sigmas;
    }
  in
  (it', pack')

(* A replacement for a duplicate: random cells and worst/best = Z + mask,
   with the mask disclosed to S1 via its personal key. *)
let dedup_replacement t ~cells ~m_seen =
  let n = t.pub.Paillier.n in
  let own_pub = t.own_pub in
  let z = Nat.pred n in
  let beta = Rng.nat_below t.rng n and gamma = Rng.nat_below t.rng n in
  let alphas = Array.init cells (fun _ -> Rng.nat_below t.rng n) in
  let sigmas = Array.init m_seen (fun _ -> Rng.nat_below t.rng n) in
  let it : Enc_item.scored =
    {
      ehl =
        Ehl.Ehl_plus.of_cells
          (Array.init cells (fun _ -> Paillier.encrypt t.rng t.pub (Rng.nat_below t.rng n)));
      worst = Paillier.encrypt t.rng t.pub (Modular.add z beta ~m:n);
      best = Paillier.encrypt t.rng t.pub (Modular.add z gamma ~m:n);
      (* all-ones seen vector: the sentinel's best score stays -1 under
         the checkpoint refresh *)
      seen =
        Array.init m_seen (fun l ->
            Paillier.encrypt t.rng t.pub (Modular.add Nat.one sigmas.(l) ~m:n));
    }
  in
  let pack : Enc_item.pack =
    {
      alphas = Array.map (fun a -> Paillier.encrypt t.rng own_pub a) alphas;
      beta = Paillier.encrypt t.rng own_pub beta;
      gamma = Paillier.encrypt t.rng own_pub gamma;
      sigmas = Array.map (fun a -> Paillier.encrypt t.rng own_pub a) sigmas;
    }
  in
  (it, pack)

let rec handle t ~label (req : Wire.request) : Wire.response =
  match req with
  | Wire.Batch reqs ->
    (* a batch is exactly its elements handled in order: same decryptions,
       same trace events, same rng draws as singleton execution *)
    Wire.Batch_resp (List.map (handle t ~label) reqs)
  | Wire.Sign_of c ->
    let sign = Bigint.sign (Paillier.decrypt_signed t.sk c) in
    Trace.record t.trace (Trace.Comparison { protocol = label; ordering = sign });
    Wire.Sign sign
  | Wire.Equality diffs ->
    let bits = List.map (fun c -> Nat.is_zero (Paillier.decrypt t.sk c)) diffs in
    Trace.record t.trace (Trace.Equality_bits { protocol = label; bits });
    Wire.Bits2 (List.map (dj_bit t.rng t) bits)
  | Wire.Conjunction groups ->
    (* a group holds iff every difference decrypts to zero *)
    let bits =
      List.map (fun g -> List.for_all (fun c -> Nat.is_zero (Paillier.decrypt t.sk c)) g) groups
    in
    Trace.record t.trace (Trace.Equality_bits { protocol = label; bits });
    Wire.Bits2 (List.map (dj_bit t.rng t) bits)
  | Wire.Recover c -> Wire.Ct (Damgard_jurik.decrypt_layered t.djsk t.pub c)
  | Wire.Lift cs ->
    (* re-encrypt the (blinded, uniform) plaintexts under DJ *)
    Wire.Bits2
      (List.map (fun c -> Damgard_jurik.encrypt t.rng t.djpub (Paillier.decrypt t.sk c)) cs)
  | Wire.Dgk_low_bits { bits; z } ->
    let zv = Paillier.decrypt t.sk z in
    let z_bits = List.init bits (fun i -> if Nat.nth_bit zv i then 1 else 0) in
    let bit_cts = List.map (fun v -> Paillier.encrypt t.rng t.pub (Nat.of_int v)) z_bits in
    Wire.Dgk_bits { bit_cts; parity = Nat.nth_bit zv bits }
  | Wire.Zero_any cs ->
    let lambda = List.exists (fun c -> Nat.is_zero (Paillier.decrypt t.sk c)) cs in
    Trace.record t.trace
      (Trace.Comparison { protocol = label; ordering = Bool.to_int lambda });
    Wire.Bit lambda
  | Wire.Zero_test c -> Wire.Bit (Nat.is_zero (Paillier.decrypt t.sk c))
  | Wire.Mult (a, b) ->
    let n = t.pub.Paillier.n in
    let ha = Paillier.decrypt t.sk a and hb = Paillier.decrypt t.sk b in
    Wire.Ct (Paillier.encrypt t.rng t.pub (Modular.mul ha hb ~m:n))
  | Wire.Lsb c ->
    let y = Paillier.decrypt t.sk c in
    Wire.Ct (Paillier.encrypt t.rng t.pub (if Nat.is_even y then Nat.zero else Nat.one))
  | Wire.Dedup { mode; diffs; items } ->
    let l = List.length items in
    let pair_idx = Wire.pair_indices l in
    if List.length diffs <> Array.length pair_idx then
      invalid_arg "S2_server: dedup pair count mismatch";
    let pair_eq =
      Array.of_list (List.map (fun c -> Nat.is_zero (Paillier.decrypt t.sk c)) diffs)
    in
    let equal_pairs =
      Array.to_list pair_idx |> List.filteri (fun idx _ -> pair_eq.(idx))
    in
    Trace.record t.trace (Trace.Dedup_matrix { protocol = label; size = l; equal_pairs });
    (* keep the highest index of every duplicate group, mark the rest *)
    let duplicate = Array.make (max l 1) false in
    List.iter (fun (i, _) -> duplicate.(i) <- true) equal_pairs;
    let masked = Array.of_list items in
    let cells, m_seen =
      match items with
      | (it, _) :: _ -> (Ehl.Ehl_plus.length it.Enc_item.ehl, Array.length it.Enc_item.seen)
      | [] -> (0, 0)
    in
    let processed =
      Array.to_list
        (Array.mapi
           (fun i (it, pack) ->
             if duplicate.(i) then
               match mode with
               | Wire.Replace -> Some (dedup_replacement t ~cells ~m_seen)
               | Wire.Eliminate -> None
             else Some (dedup_remask t it pack))
           masked)
      |> List.filter_map Fun.id
    in
    (match mode with
    | Wire.Eliminate ->
      Trace.record t.trace
        (Trace.Count { protocol = "SecDupElim"; value = List.length processed })
    | Wire.Replace -> ());
    (* second permutation before the items travel back *)
    let out = Array.of_list processed in
    ignore (Rng.shuffle t.rng out);
    Wire.Items (Array.to_list out)
  | Wire.Dup_flags cs ->
    let flags = List.map (fun c -> not (Nat.is_zero (Damgard_jurik.decrypt t.djsk c))) cs in
    let kept = List.length (List.filter not flags) in
    Trace.record t.trace (Trace.Count { protocol = label; value = kept });
    Wire.Flags flags
  | Wire.Sort_items { keys; items } ->
    if List.length keys <> List.length items then
      invalid_arg "S2_server: sort key/item count mismatch";
    let decorated =
      Array.of_list
        (List.map2 (fun k it -> (Paillier.decrypt_signed t.sk k, it)) keys items)
    in
    Array.sort (fun (a, _) (b, _) -> Bigint.compare b a) decorated;
    Trace.record t.trace (Trace.Count { protocol = label; value = Array.length decorated });
    let noise () = Noise_pool.take t.pnoise in
    Wire.Sorted
      (Array.to_list
         (Array.map
            (fun (_, it) -> Enc_item.rerandomize_scored_with t.pub ~noise it)
            decorated))
  | Wire.Sort_gate { descending; kx; ky; x; y } ->
    let vx = Paillier.decrypt_signed t.sk kx and vy = Paillier.decrypt_signed t.sk ky in
    let cmp = Bigint.compare vx vy in
    Trace.record t.trace (Trace.Comparison { protocol = label; ordering = compare cmp 0 });
    let first, second =
      if (cmp >= 0 && descending) || (cmp < 0 && not descending) then (x, y) else (y, x)
    in
    let noise () = Noise_pool.take t.pnoise in
    let first = Enc_item.rerandomize_scored_with t.pub ~noise first in
    let second = Enc_item.rerandomize_scored_with t.pub ~noise second in
    Wire.Pair (first, second)
  | Wire.Filter tuples ->
    let n = t.pub.Paillier.n in
    let own = t.own_pub in
    (* decrypt blinded scores; drop zeros; re-blind survivors *)
    let survivors =
      List.filter
        (fun (tp : Wire.tuple) -> not (Nat.is_zero (Paillier.decrypt t.sk tp.Wire.score)))
        tuples
    in
    Trace.record t.trace (Trace.Count { protocol = label; value = List.length survivors });
    (* Pass A draws every random value and noise factor in the original
       per-tuple order but leaves the escrow inverse g^-1 symbolic; all
       the inverses are then computed in one batch (3(n-1) mults + one
       inversion instead of n), and pass B assembles the escrow
       ciphertexts from the pre-drawn noise — byte-identical to inverting
       inline. *)
    let staged =
      List.map
        (fun (tp : Wire.tuple) ->
          let g = Rng.unit_mod t.rng n in
          let gs = Array.map (fun _ -> Rng.nat_below t.rng n) tp.Wire.attrs in
          let score' = Paillier.scalar_mul t.pub tp.Wire.score g in
          let attrs' =
            Array.mapi
              (fun i x -> Paillier.add t.pub x (Paillier.encrypt t.rng t.pub gs.(i)))
              tp.Wire.attrs
          in
          let r_noise = Paillier.noise t.rng own in
          let a_escrow =
            Array.mapi
              (fun i c -> Paillier.add own c (Paillier.encrypt t.rng own gs.(i)))
              tp.Wire.a_escrow
          in
          (g, r_noise, score', attrs', a_escrow, tp.Wire.r_escrow))
        survivors
    in
    let g_invs =
      Modular.inv_many (List.map (fun (g, _, _, _, _, _) -> g) staged) ~m:n
    in
    let reblinded =
      List.map2
        (fun (_, r_noise, score', attrs', a_escrow, r_escrow) g_inv ->
          (* escrow update: append Enc_pk'(g^-1); R~ = R + G *)
          {
            Wire.score = score';
            attrs = attrs';
            r_escrow = Paillier.encrypt_with own ~noise:r_noise g_inv :: r_escrow;
            a_escrow;
          })
        staged g_invs
    in
    let out = Array.of_list reblinded in
    ignore (Rng.shuffle t.rng out);
    Wire.Tuples (Array.to_list out)
  | Wire.Rank_tuples rows ->
    let decorated =
      Array.of_list
        (List.map (fun (k, score, attrs) -> (Paillier.decrypt_signed t.sk k, (score, attrs))) rows)
    in
    Array.sort (fun (a, _) (b, _) -> Bigint.compare b a) decorated;
    Trace.record t.trace (Trace.Count { protocol = label; value = Array.length decorated });
    let rr c = Paillier.rerandomize_with t.pub ~noise:(Noise_pool.take t.pnoise) c in
    Wire.Ranked
      (Array.to_list
         (Array.map (fun (_, (score, attrs)) -> (rr score, Array.map rr attrs)) decorated))
  | Wire.Rank_keys cs ->
    let decorated =
      Array.of_list (List.mapi (fun j c -> (j, Paillier.decrypt t.sk c)) cs)
    in
    Array.sort (fun (_, a) (_, b) -> Nat.compare a b) decorated;
    Trace.record t.trace (Trace.Count { protocol = label; value = Array.length decorated });
    Wire.Indices (Array.to_list (Array.map fst decorated))
  | Wire.Zero_slot cs ->
    (* decrypts every slot up to the first zero, none after - the same
       short-circuit the simulated party used *)
    let slot = ref None in
    List.iteri
      (fun i c ->
        if !slot = None && Nat.is_zero (Paillier.decrypt t.sk c) then slot := Some i)
      cs;
    Wire.Slot !slot

(* ---------------- multiplexed frames ----------------

   A mux frame interleaves ops from many concurrent client queries, each
   tagged with its session. Sessions provisioned by Mux_open are keyed
   in their own table: [make ~session] builds the responder exactly as a
   dedicated connection would (the daemon replays [of_hello]; an
   in-process scheduler backend replays the baseline [create]), so each
   session's randomness stream is byte-identical to the uncoalesced
   path. Ops execute strictly in frame order — the scheduler preserved
   each query's program order, and sessions never share rng state, so
   interleaving across sessions cannot perturb any single stream. *)

type mux_state = {
  make : session:int -> t;
  sessions : (int, t) Hashtbl.t;
}

let mux_state ~make = { make; sessions = Hashtbl.create 8 }

let mux_session st id =
  match Hashtbl.find_opt st.sessions id with
  | Some s -> s
  | None -> invalid_arg "S2_server: unknown mux session"

let under col f =
  match col with Some c -> Obs.with_collector c f | None -> f ()

let handle_mux_ops st ops =
  List.map
    (fun (op, col) ->
      under col (fun () ->
          match op with
          | Wire.Mux_open { session } ->
            if Hashtbl.mem st.sessions session then
              invalid_arg "S2_server: duplicate mux session";
            Hashtbl.replace st.sessions session (st.make ~session);
            Wire.Mux_ok
          | Wire.Mux_close { session } ->
            ignore (mux_session st session);
            Hashtbl.remove st.sessions session;
            Wire.Mux_ok
          | Wire.Mux_fork { parent; child; label } ->
            if Hashtbl.mem st.sessions child then
              invalid_arg "S2_server: duplicate mux session";
            Hashtbl.replace st.sessions child (fork (mux_session st parent) ~label);
            Wire.Mux_ok
          | Wire.Mux_join { parent; child } ->
            join (mux_session st child) ~into:(mux_session st parent);
            Hashtbl.remove st.sessions child;
            Wire.Mux_ok
          | Wire.Mux_req { session; label; req } ->
            Wire.Mux_answer (handle (mux_session st session) ~label req)))
    ops

(* ---------------- request loop over a file descriptor ----------------

   One connection serves one client context and all its parallel forks:
   sessions are keyed by the 4-byte id in each frame, created/retired by
   Fork/Join control frames in the exact order the client forks its own
   halves, so both parties' randomness streams stay aligned. *)

(* Live scrape: the daemon's registry (startup gauges, per-daemon
   telemetry) plus the connection collector's op counters, folded in as
   [op_*] counter series so one Stats_req frame carries the whole
   picture. *)
let scrape_snapshot registry collector =
  let reg_part =
    match registry with Some r -> Obs.Registry.snapshot r | None -> []
  in
  Obs.Registry.union reg_part
    (Obs.Registry.metrics_counters (Obs.Collector.metrics collector))

let serve_loop ?registry ?mux fd root collector =
  let sessions : (int, t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace sessions 0 root;
  let session_of id =
    match Hashtbl.find_opt sessions id with
    | Some s -> s
    | None -> invalid_arg "S2_server: unknown session"
  in
  let running = ref true in
  while !running do
    match Wire.read_frame fd with
    | None -> running := false
    | Some frame -> (
      match Wire.frame_kind frame with
      | Some k when k = 'Q' ->
        let keys = Wire.keys_of ~pub:root.pub ~djpub:root.djpub ~own_pub:root.own_pub in
        let session, label, req = Wire.decode_request keys frame in
        let resp = handle (session_of session) ~label req in
        Wire.write_frame fd (Wire.encode_response keys resp)
      | Some k when k = 'M' -> (
        match mux with
        | None -> invalid_arg "S2_server: mux not enabled on this connection"
        | Some st ->
          let keys = Wire.keys_of ~pub:root.pub ~djpub:root.djpub ~own_pub:root.own_pub in
          let ops = Wire.decode_mux keys frame in
          (* daemon side: ops count under the ambient connection
             collector, same as dedicated-connection traffic *)
          let replies = handle_mux_ops st (List.map (fun op -> (op, None)) ops) in
          Wire.write_frame fd (Wire.encode_mux_replies keys replies))
      | Some k when k = 'C' ->
        let reply =
          match Wire.decode_control frame with
          | Wire.Hello _ -> invalid_arg "S2_server: duplicate Hello"
          | Wire.Fork { parent; child; label } ->
            Hashtbl.replace sessions child (fork (session_of parent) ~label);
            Wire.Ok_ctl
          | Wire.Join { parent; child } ->
            join (session_of child) ~into:(session_of parent);
            Hashtbl.remove sessions child;
            Wire.Ok_ctl
          | Wire.Get_trace -> Wire.Trace_events (Trace.events root.trace)
          | Wire.Get_stats ->
            let m = Obs.Collector.metrics collector in
            Wire.Stats
              (List.map
                 (fun (op, v) -> (Obs.Metrics.name op, v))
                 (Obs.Metrics.to_alist m))
          | Wire.Stats_req -> Wire.Stats_resp (scrape_snapshot registry collector)
          | Wire.Shutdown ->
            running := false;
            Wire.Ok_ctl
        in
        Wire.write_frame fd (Wire.encode_control_reply reply)
      | _ -> invalid_arg "S2_server: unexpected frame kind")
  done

let serve_fd ?on_ready ?registry fd =
  match Wire.read_frame fd with
  | None -> ()
  | Some first -> (
    match Wire.decode_control first with
    | Wire.Hello h ->
      Obs.set_enabled h.Wire.obs;
      let root, setup_s = Obs.Timer.time (fun () -> of_hello h) in
      Option.iter (fun f -> f setup_s) on_ready;
      let collector = Obs.Collector.create () in
      Wire.write_frame fd (Wire.encode_control_reply Wire.Ok_ctl);
      (* daemon child: no further forks, so a background filler is safe *)
      Noise_pool.start_filler root.pnoise;
      Fun.protect
        ~finally:(fun () -> Noise_pool.quiesce root.pnoise)
        (fun () ->
          (* mux sessions replay the client's provisioning per open —
             the byte-identical twin of a per-query dedicated connection *)
          let mux = mux_state ~make:(fun ~session:_ -> of_hello h) in
          Obs.with_collector collector (fun () ->
              serve_loop ?registry ~mux fd root collector))
    | Wire.Stats_req ->
      (* monitoring connection: no key material, no provisioning — answer
         the daemon-level snapshot and hang up *)
      let snap =
        match registry with Some r -> Obs.Registry.snapshot r | None -> []
      in
      Wire.write_frame fd (Wire.encode_control_reply (Wire.Stats_resp snap))
    | _ -> invalid_arg "S2_server: expected Hello")
