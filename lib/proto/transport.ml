type sock = {
  fd : Unix.file_descr;
  session : int;
  counter : int ref; (* child session id allocator, shared by all forks *)
}

type kind =
  | Inproc of S2_server.t
  | Loopback of S2_server.t
  | Socket of sock
  | Mux of { sched : Sched.t; session : int }
      (* parked at a shared round scheduler: many queries, one S2 trip *)

type t = {
  keys : Wire.keys;
  chan : Channel.t;
  kind : kind;
  rtt_us : int; (* simulated per-round latency (Loopback only; bench --rtt) *)
}

let inproc keys server =
  { keys; chan = Channel.create (); kind = Inproc server; rtt_us = 0 }

let loopback ?(rtt_us = 0) keys server =
  { keys; chan = Channel.create (); kind = Loopback server; rtt_us }

let socket keys fd =
  {
    keys;
    chan = Channel.create ();
    kind = Socket { fd; session = 0; counter = ref 0 };
    rtt_us = 0;
  }

let mux keys sched ~session =
  { keys; chan = Channel.create (); kind = Mux { sched; session }; rtt_us = 0 }

let channel t = t.chan
let keys t = t.keys

(* The socket transport multiplexes every session over one ordered byte
   stream: concurrent domains would interleave frames, so Ctx.parallel
   degrades to sequential execution (results are width-independent by
   construction, only wall time changes). Mux keeps the scheduler's
   one-outstanding-op-per-query invariant — the all-parked ship condition
   counts queries, not forks — so it degrades the same way. *)
let concurrent t =
  match t.kind with Socket _ | Mux _ -> false | Inproc _ | Loopback _ -> true

let mode_name t =
  match t.kind with
  | Inproc _ -> "inproc"
  | Loopback _ -> "loopback"
  | Socket _ -> "socket"
  | Mux _ -> "mux"

(* ---------------- request/response round trip ----------------

   Every rpc is one request frame S1 -> S2 and one response frame back:
   both are charged to the channel at their real encoded length (Loopback
   and Socket measure the frames they materialise; Inproc charges Wire's
   closed forms, which the property tests pin to the encoded lengths). *)

let rpc t ~label req =
  match t.kind with
  | Inproc server ->
    Channel.send t.chan ~dir:Channel.S1_to_s2 ~label
      ~bytes:(Wire.request_bytes t.keys ~label req);
    let resp = S2_server.handle server ~label req in
    Channel.send t.chan ~dir:Channel.S2_to_s1 ~label
      ~bytes:(Wire.response_bytes t.keys resp);
    Channel.round_trip t.chan;
    resp
  | Loopback server ->
    let frame = Wire.encode_request t.keys ~session:0 ~label req in
    Channel.send t.chan ~dir:Channel.S1_to_s2 ~label ~bytes:(String.length frame);
    let _session, label', req' = Wire.decode_request t.keys frame in
    let resp_frame = Wire.encode_response t.keys (S2_server.handle server ~label:label' req') in
    Channel.send t.chan ~dir:Channel.S2_to_s1 ~label ~bytes:(String.length resp_frame);
    Channel.round_trip t.chan;
    if t.rtt_us > 0 then Unix.sleepf (float_of_int t.rtt_us *. 1e-6);
    Wire.decode_response t.keys resp_frame
  | Socket s ->
    let frame = Wire.encode_request t.keys ~session:s.session ~label req in
    Channel.send t.chan ~dir:Channel.S1_to_s2 ~label ~bytes:(String.length frame);
    Wire.write_frame s.fd frame;
    (match Wire.read_frame s.fd with
    | None -> failwith "Transport: connection closed by S2"
    | Some resp_frame ->
      Channel.send t.chan ~dir:Channel.S2_to_s1 ~label ~bytes:(String.length resp_frame);
      Channel.round_trip t.chan;
      Wire.decode_response t.keys resp_frame)
  | Mux { sched; session } -> (
    (* per-query accounting charges the closed forms (what a dedicated
       connection would carry), keeping bytes/messages/rounds identical
       to the uncoalesced baseline; the shared mux frame's framing
       savings show up in the scheduler's trip counters instead *)
    Channel.send t.chan ~dir:Channel.S1_to_s2 ~label
      ~bytes:(Wire.request_bytes t.keys ~label req);
    match Sched.submit sched (Wire.Mux_req { session; label; req }) with
    | Wire.Mux_answer resp ->
      Channel.send t.chan ~dir:Channel.S2_to_s1 ~label
        ~bytes:(Wire.response_bytes t.keys resp);
      Channel.round_trip t.chan;
      resp
    | Wire.Mux_ok -> raise (Proto_error.Proto_error "Transport: unexpected mux reply"))

(* Control frames (fork/join/trace/stats) are orchestration, not protocol
   traffic: they bypass the channel accounting entirely. *)
let control_rpc fd ctl =
  Wire.write_frame fd (Wire.encode_control ctl);
  match Wire.read_frame fd with
  | None -> failwith "Transport: connection closed by S2"
  | Some frame -> Wire.decode_control_reply frame

let expect_ok = function
  | Wire.Ok_ctl -> ()
  | _ -> failwith "Transport: unexpected control reply"

(* ---------------- parallel forks ---------------- *)

let fork t ~label =
  match t.kind with
  | Inproc server ->
    { t with chan = Channel.create (); kind = Inproc (S2_server.fork server ~label) }
  | Loopback server ->
    { t with chan = Channel.create (); kind = Loopback (S2_server.fork server ~label) }
  | Socket s ->
    incr s.counter;
    let child = !(s.counter) in
    expect_ok (control_rpc s.fd (Wire.Fork { parent = s.session; child; label }));
    { t with chan = Channel.create (); kind = Socket { s with session = child } }
  | Mux { sched; session } ->
    let child = Sched.alloc_session sched in
    (match Sched.submit sched (Wire.Mux_fork { parent = session; child; label }) with
    | Wire.Mux_ok -> ()
    | Wire.Mux_answer _ ->
      raise (Proto_error.Proto_error "Transport: unexpected mux reply to fork"));
    { t with chan = Channel.create (); kind = Mux { sched; session = child } }

let join_sub sub ~into =
  Channel.merge_into sub.chan ~into:into.chan;
  match (sub.kind, into.kind) with
  | Inproc child, Inproc parent | Loopback child, Loopback parent ->
    S2_server.join child ~into:parent
  | Socket child, Socket parent ->
    expect_ok
      (control_rpc parent.fd (Wire.Join { parent = parent.session; child = child.session }))
  | Mux child, Mux parent -> (
    match
      Sched.submit child.sched
        (Wire.Mux_join { parent = parent.session; child = child.session })
    with
    | Wire.Mux_ok -> ()
    | Wire.Mux_answer _ ->
      raise (Proto_error.Proto_error "Transport: unexpected mux reply to join"))
  | _ -> invalid_arg "Transport.join_sub: mismatched transports"

(* ---------------- S2-side introspection ---------------- *)

let local_server t =
  match t.kind with
  | Inproc server | Loopback server -> Some server
  | Socket _ | Mux _ -> None

let trace t =
  match local_server t with
  | Some server -> S2_server.trace server
  | None -> invalid_arg "Transport.trace: S2 is remote (use trace_events)"

let trace_events t =
  match t.kind with
  | Inproc server | Loopback server -> Trace.events (S2_server.trace server)
  | Socket s -> (
    match control_rpc s.fd Wire.Get_trace with
    | Wire.Trace_events events -> events
    | _ -> failwith "Transport: unexpected control reply")
  | Mux _ ->
    (* the scheduler's backend owns the per-session responders; an
       embedding that needs traces keeps its own handle on them (the
       coalescing tests do exactly that) *)
    invalid_arg "Transport.trace_events: mux transport (ask the scheduler backend)"

let secret_key t =
  match local_server t with
  | Some server -> S2_server.secret_key server
  | None -> invalid_arg "Transport.secret_key: S2 is remote"

(* S2-side operation counters. Local transports run S2 code on the
   caller's domain, so its ops already land in the client collector and
   this is empty; the socket daemon counts remotely and reports here. *)
let remote_stats t =
  match t.kind with
  | Inproc _ | Loopback _ -> []
  | Mux _ -> [] (* in-process backends count into the query collector;
                   daemon backends count daemon-side, scraped separately *)
  | Socket s -> (
    match control_rpc s.fd Wire.Get_stats with
    | Wire.Stats stats -> stats
    | _ -> failwith "Transport: unexpected control reply")

(* Key-less monitoring scrape against a listening daemon (serve-s1 or
   serve-s2): dial, ship one Stats_req, and wait for the Stats_resp —
   skipping any server-kind frames on the way (serve-s1 greets every
   connection with a Server_hello, which only key holders can decode;
   the kind byte is enough to step over it). *)
let scrape_stats addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      Wire.write_frame fd (Wire.encode_control Wire.Stats_req);
      let rec await () =
        match Wire.read_frame fd with
        | None -> failwith "Transport: connection closed during stats scrape"
        | Some frame -> (
          match Wire.frame_kind frame with
          | Some 'V' -> await ()
          | _ -> (
            match Wire.decode_control_reply frame with
            | Wire.Stats_resp snap -> snap
            | _ -> failwith "Transport: unexpected control reply"))
      in
      await ())

let shutdown t =
  match t.kind with
  | Inproc _ | Loopback _ -> ()
  | Mux _ -> () (* the scheduler outlives any one query; its owner stops it *)
  | Socket s ->
    expect_ok (control_rpc s.fd Wire.Shutdown);
    Unix.close s.fd

(* ---------------- daemon plumbing ---------------- *)

let hello fd h =
  Wire.write_frame fd (Wire.encode_control (Wire.Hello h));
  match Wire.read_frame fd with
  | None -> failwith "Transport: S2 closed during Hello"
  | Some frame -> expect_ok (Wire.decode_control_reply frame)

(* Fork a child process serving the S2 side of a socketpair; returns the
   parent's connected fd (Hello already exchanged) and the child pid.
   Safe under OCaml 5 because Core.Pool joins its domains before
   returning, so no domain is live at fork time. *)
let spawn_daemon h =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
    Unix.close parent_fd;
    (try S2_server.serve_fd child_fd with _ -> ());
    (try Unix.close child_fd with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close child_fd;
    hello parent_fd h;
    (parent_fd, pid)

let stop_daemon t pid =
  shutdown t;
  ignore (Unix.waitpid [] pid)

(* TCP client for a standalone daemon ([topk_cli serve-s2]). *)
let connect_tcp addr h =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  (* the protocols are strict request/response ping-pong over small
     frames; Nagle + delayed ACK would serialize every round behind a
     ~40ms timer *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  hello fd h;
  fd
