open Crypto

let magic = "STKW"
let version = 1

type keys = {
  pub : Paillier.public;
  djpub : Damgard_jurik.public;
  own_pub : Paillier.public;
}

let keys_of ~pub ~djpub ~own_pub = { pub; djpub; own_pub }

type dedup_mode = Replace | Eliminate

type tuple = {
  score : Paillier.ciphertext;
  attrs : Paillier.ciphertext array;
  r_escrow : Paillier.ciphertext list; (* under own_pub: multiplicative escrows *)
  a_escrow : Paillier.ciphertext array; (* under own_pub: additive escrows *)
}

type request =
  | Sign_of of Paillier.ciphertext
  | Equality of Paillier.ciphertext list
  | Conjunction of Paillier.ciphertext list list
  | Recover of Damgard_jurik.ciphertext
  | Lift of Paillier.ciphertext list
  | Dgk_low_bits of { bits : int; z : Paillier.ciphertext }
  | Zero_any of Paillier.ciphertext list
  | Zero_test of Paillier.ciphertext
  | Mult of Paillier.ciphertext * Paillier.ciphertext
  | Lsb of Paillier.ciphertext
  | Dedup of {
      mode : dedup_mode;
      diffs : Paillier.ciphertext list;
      items : (Enc_item.scored * Enc_item.pack) list;
    }
  | Dup_flags of Damgard_jurik.ciphertext list
  | Sort_items of { keys : Paillier.ciphertext list; items : Enc_item.scored list }
  | Sort_gate of {
      descending : bool;
      kx : Paillier.ciphertext;
      ky : Paillier.ciphertext;
      x : Enc_item.scored;
      y : Enc_item.scored;
    }
  | Filter of tuple list
  | Rank_tuples of (Paillier.ciphertext * Paillier.ciphertext * Paillier.ciphertext array) list
  | Rank_keys of Paillier.ciphertext list
  | Zero_slot of Paillier.ciphertext list
  | Batch of request list

type response =
  | Sign of int
  | Bits2 of Damgard_jurik.ciphertext list
  | Ct of Paillier.ciphertext
  | Dgk_bits of { bit_cts : Paillier.ciphertext list; parity : bool }
  | Bit of bool
  | Flags of bool list
  | Items of (Enc_item.scored * Enc_item.pack) list
  | Sorted of Enc_item.scored list
  | Pair of Enc_item.scored * Enc_item.scored
  | Tuples of tuple list
  | Ranked of (Paillier.ciphertext * Paillier.ciphertext array) list
  | Indices of int list
  | Slot of int option
  | Batch_resp of response list

(* One element of a multiplexed frame: the round scheduler coalesces ops
   from many concurrent queries into a single [encode_mux] frame, each op
   tagged with the session it belongs to, so one socket carries
   interleaved slices of many queries (DESIGN.md section 4h). *)
type mux_op =
  | Mux_open of { session : int }
  | Mux_close of { session : int }
  | Mux_fork of { parent : int; child : int; label : string }
  | Mux_join of { parent : int; child : int }
  | Mux_req of { session : int; label : string; req : request }

type mux_reply = Mux_ok | Mux_answer of response

type hello = { seed : string; key_bits : int; rand_bits : int option; obs : bool }

type control =
  | Hello of hello
  | Fork of { parent : int; child : int; label : string }
  | Join of { parent : int; child : int }
  | Get_trace
  | Get_stats
  | Stats_req
  | Shutdown

type control_reply =
  | Ok_ctl
  | Trace_events of Trace.event list
  | Stats of (string * int) list
  | Stats_resp of Obs.Registry.snapshot

(* ---------------- pairwise index order for SecDedup ---------------- *)

let pair_indices l =
  let acc = ref [] in
  for i = l - 1 downto 0 do
    for j = l - 1 downto i + 1 do
      acc := (i, j) :: !acc
    done
  done;
  Array.of_list !acc

(* ---------------- primitive writers / readers ---------------- *)

let put_int buf v =
  if v < 0 || v > 0x3fffffff then invalid_arg "Wire: int out of range";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

(* Telemetry fields (histogram sums, counter totals) outgrow [put_int]'s
   30-bit cap on a long-lived server, so stats frames carry 8-byte
   big-endian non-negative integers instead. *)
let put_i64 buf v =
  if v < 0 then invalid_arg "Wire: negative int64 field";
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (56 - (8 * i))) land 0xff))
  done

let put_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (56 - (8 * i))) 0xffL)))
  done

let put_nat_fixed buf ~width n =
  let b = Bignum.Nat.to_bytes n in
  if String.length b > width then invalid_arg "Wire: value wider than field";
  Buffer.add_string buf (String.make (width - String.length b) '\000');
  Buffer.add_string buf b

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

type reader = { data : string; mutable pos : int }

let need r n =
  if n < 0 || r.pos + n > String.length r.data then invalid_arg "Wire: truncated input"

let get_byte r =
  need r 1;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_int r =
  need r 4;
  let v =
    (Char.code r.data.[r.pos] lsl 24)
    lor (Char.code r.data.[r.pos + 1] lsl 16)
    lor (Char.code r.data.[r.pos + 2] lsl 8)
    lor Char.code r.data.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  if v > 0x3fffffff then invalid_arg "Wire: int out of range";
  v

let get_string r =
  let len = get_int r in
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let get_i64 r =
  need r 8;
  if Char.code r.data.[r.pos] land 0x80 <> 0 then
    invalid_arg "Wire: int64 field out of range";
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos + i]
  done;
  r.pos <- r.pos + 8;
  if !v < 0 then invalid_arg "Wire: int64 field out of range";
  !v

let get_f64 r =
  need r 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  let v = Int64.float_of_bits !bits in
  if Float.is_nan v then invalid_arg "Wire: NaN float field";
  v

let get_nat_fixed r ~width =
  need r width;
  let s = String.sub r.data r.pos width in
  r.pos <- r.pos + width;
  Bignum.Nat.of_bytes s

let get_bool r =
  match get_byte r with
  | 0 -> false
  | 1 -> true
  | _ -> invalid_arg "Wire: bad boolean"

(* [get_count] bounds a collection length by the bytes that remain: every
   element occupies at least [item_width] bytes, so a hostile count cannot
   trigger a giant allocation before the [need] checks fire. *)
let get_count r ~item_width =
  let n = get_int r in
  need r (n * max 1 item_width);
  n

(* Every length-prefixed collection decodes through here: the count is
   bounded by the remaining bytes (via [get_count]) and, when the protocol
   caps the collection, by [max]; elements are then read in order. *)
let read_list ?max r ~item_width get_item =
  let n = get_count r ~item_width in
  (match max with
  | Some m when n > m -> invalid_arg "Wire: collection too large"
  | _ -> ());
  List.init n (fun _ -> get_item r)

let read_array ?max r ~item_width get_item =
  Array.of_list (read_list ?max r ~item_width get_item)

(* ---------------- ciphertext fields ---------------- *)

let ct_width keys = Paillier.ciphertext_bytes keys.pub
let own_width keys = Paillier.ciphertext_bytes keys.own_pub
let dj_width keys = Damgard_jurik.ciphertext_bytes keys.djpub

let put_ct keys buf c = put_nat_fixed buf ~width:(ct_width keys) (Paillier.to_nat c)
let put_own keys buf c = put_nat_fixed buf ~width:(own_width keys) (Paillier.to_nat c)
let put_dj keys buf c = put_nat_fixed buf ~width:(dj_width keys) (Damgard_jurik.to_nat c)

let get_ct keys r = Paillier.of_nat keys.pub (get_nat_fixed r ~width:(ct_width keys))
let get_own keys r = Paillier.of_nat keys.own_pub (get_nat_fixed r ~width:(own_width keys))
let get_dj keys r = Damgard_jurik.of_nat keys.djpub (get_nat_fixed r ~width:(dj_width keys))

let put_ct_list keys buf cs =
  put_int buf (List.length cs);
  List.iter (put_ct keys buf) cs

let get_ct_list keys r = read_list r ~item_width:(ct_width keys) (get_ct keys)

let put_dj_list keys buf cs =
  put_int buf (List.length cs);
  List.iter (put_dj keys buf) cs

let get_dj_list keys r = read_list r ~item_width:(dj_width keys) (get_dj keys)

(* ---------------- compound payloads ---------------- *)

let put_scored keys buf (s : Enc_item.scored) =
  let cells = Ehl.Ehl_plus.cells s.ehl in
  put_int buf (Array.length cells);
  Array.iter (put_ct keys buf) cells;
  put_ct keys buf s.worst;
  put_ct keys buf s.best;
  put_int buf (Array.length s.seen);
  Array.iter (put_ct keys buf) s.seen

let get_scored keys r : Enc_item.scored =
  let w = ct_width keys in
  let cells = read_array ~max:4096 r ~item_width:w (get_ct keys) in
  if Array.length cells = 0 then invalid_arg "Wire: bad cell count";
  let worst = get_ct keys r in
  let best = get_ct keys r in
  let seen = read_array ~max:4096 r ~item_width:w (get_ct keys) in
  { ehl = Ehl.Ehl_plus.of_cells cells; worst; best; seen }

let scored_size keys (s : Enc_item.scored) =
  8 + ((Ehl.Ehl_plus.length s.ehl + 2 + Array.length s.seen) * ct_width keys)

let put_pack keys buf (p : Enc_item.pack) =
  put_int buf (Array.length p.alphas);
  Array.iter (put_own keys buf) p.alphas;
  put_own keys buf p.beta;
  put_own keys buf p.gamma;
  put_int buf (Array.length p.sigmas);
  Array.iter (put_own keys buf) p.sigmas

let get_pack keys r : Enc_item.pack =
  let w = own_width keys in
  let alphas = read_array ~max:4096 r ~item_width:w (get_own keys) in
  if Array.length alphas = 0 then invalid_arg "Wire: bad alpha count";
  let beta = get_own keys r in
  let gamma = get_own keys r in
  let sigmas = read_array ~max:4096 r ~item_width:w (get_own keys) in
  { alphas; beta; gamma; sigmas }

let pack_size keys (p : Enc_item.pack) =
  8 + ((Array.length p.alphas + 2 + Array.length p.sigmas) * own_width keys)

let put_tuple keys buf (t : tuple) =
  put_ct keys buf t.score;
  put_int buf (Array.length t.attrs);
  Array.iter (put_ct keys buf) t.attrs;
  put_int buf (List.length t.r_escrow);
  List.iter (put_own keys buf) t.r_escrow;
  put_int buf (Array.length t.a_escrow);
  Array.iter (put_own keys buf) t.a_escrow

let get_tuple keys r : tuple =
  let score = get_ct keys r in
  let attrs = read_array ~max:4096 r ~item_width:(ct_width keys) (get_ct keys) in
  let r_escrow = read_list ~max:4096 r ~item_width:(own_width keys) (get_own keys) in
  let a_escrow = read_array ~max:4096 r ~item_width:(own_width keys) (get_own keys) in
  { score; attrs; r_escrow; a_escrow }

let tuple_size keys (t : tuple) =
  (ct_width keys * (1 + Array.length t.attrs))
  + 12
  + (own_width keys * (List.length t.r_escrow + Array.length t.a_escrow))

(* ---------------- frame header ----------------

   "STKW" | version | kind | tag | session (4 bytes); requests append a
   length-prefixed label naming the protocol for S2's trace and the
   bandwidth report. *)

let kind_request = 'Q'
let kind_response = 'P'
let kind_control = 'C'
let kind_control_reply = 'D'
let kind_mux = 'M'
let kind_mux_reply = 'N'

let header_size = 11
let request_header_bytes ~label = header_size + 4 + String.length label
let response_header_bytes = header_size

let put_header buf ~kind ~tag ~session =
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf kind;
  Buffer.add_char buf (Char.chr tag);
  put_int buf session

let get_header r ~kind =
  need r 4;
  if String.sub r.data r.pos 4 <> magic then invalid_arg "Wire: bad magic";
  r.pos <- r.pos + 4;
  if get_byte r <> version then invalid_arg "Wire: unsupported version";
  if get_byte r <> Char.code kind then invalid_arg "Wire: unexpected frame kind";
  let tag = get_byte r in
  let session = get_int r in
  (tag, session)

let finish r what =
  if r.pos <> String.length r.data then invalid_arg ("Wire: trailing bytes in " ^ what)

(* ---------------- request codec ---------------- *)

(* smallest possible serialized [scored]: 1 cell, empty seen vector *)
let scored_min keys = 8 + (3 * ct_width keys)

let request_tag = function
  | Sign_of _ -> 1
  | Equality _ -> 2
  | Conjunction _ -> 3
  | Recover _ -> 4
  | Lift _ -> 5
  | Dgk_low_bits _ -> 6
  | Zero_any _ -> 7
  | Zero_test _ -> 8
  | Mult _ -> 9
  | Lsb _ -> 10
  | Dedup _ -> 11
  | Dup_flags _ -> 12
  | Sort_items _ -> 13
  | Sort_gate _ -> 14
  | Filter _ -> 15
  | Rank_tuples _ -> 16
  | Rank_keys _ -> 17
  | Zero_slot _ -> 18
  | Batch _ -> 19

let batch_request_tag = 19

(* A batch element is 1 tag byte plus its payload; the smallest payload is
   an empty ciphertext list's 4-byte count. *)
let batch_item_min = 5

let rec put_request_payload keys buf req =
  match req with
  | Sign_of c | Zero_test c | Lsb c -> put_ct keys buf c
  | Equality cs | Lift cs | Zero_any cs | Rank_keys cs | Zero_slot cs ->
    put_ct_list keys buf cs
  | Conjunction groups ->
    put_int buf (List.length groups);
    List.iter (put_ct_list keys buf) groups
  | Recover c -> put_dj keys buf c
  | Dgk_low_bits { bits; z } ->
    put_int buf bits;
    put_ct keys buf z
  | Mult (a, b) ->
    put_ct keys buf a;
    put_ct keys buf b
  | Dedup { mode; diffs; items } ->
    put_bool buf (mode = Eliminate);
    put_ct_list keys buf diffs;
    put_int buf (List.length items);
    List.iter
      (fun (it, pk) ->
        put_scored keys buf it;
        put_pack keys buf pk)
      items
  | Dup_flags cs -> put_dj_list keys buf cs
  | Sort_items { keys = ks; items } ->
    put_ct_list keys buf ks;
    put_int buf (List.length items);
    List.iter (put_scored keys buf) items
  | Sort_gate { descending; kx; ky; x; y } ->
    put_bool buf descending;
    put_ct keys buf kx;
    put_ct keys buf ky;
    put_scored keys buf x;
    put_scored keys buf y
  | Filter tuples ->
    put_int buf (List.length tuples);
    List.iter (put_tuple keys buf) tuples
  | Rank_tuples rows ->
    put_int buf (List.length rows);
    List.iter
      (fun (key, score, attrs) ->
        put_ct keys buf key;
        put_ct keys buf score;
        put_int buf (Array.length attrs);
        Array.iter (put_ct keys buf) attrs)
      rows
  | Batch reqs ->
    put_int buf (List.length reqs);
    List.iter
      (fun el ->
        (match el with Batch _ -> invalid_arg "Wire: nested batch" | _ -> ());
        Buffer.add_char buf (Char.chr (request_tag el));
        put_request_payload keys buf el)
      reqs

let encode_request keys ~session ~label req =
  let buf = Buffer.create 1024 in
  put_header buf ~kind:kind_request ~tag:(request_tag req) ~session;
  put_string buf label;
  put_request_payload keys buf req;
  Buffer.contents buf

let get_request_payload keys r ~tag =
  let w = ct_width keys in
  match tag with
  | 1 -> Sign_of (get_ct keys r)
  | 2 -> Equality (get_ct_list keys r)
  | 3 -> Conjunction (read_list r ~item_width:4 (get_ct_list keys))
  | 4 -> Recover (get_dj keys r)
  | 5 -> Lift (get_ct_list keys r)
  | 6 ->
    let bits = get_int r in
    if bits <= 0 || bits > 4096 then invalid_arg "Wire: bad bit width";
    Dgk_low_bits { bits; z = get_ct keys r }
  | 7 -> Zero_any (get_ct_list keys r)
  | 8 -> Zero_test (get_ct keys r)
  | 9 ->
    let a = get_ct keys r in
    let b = get_ct keys r in
    Mult (a, b)
  | 10 -> Lsb (get_ct keys r)
  | 11 ->
    let mode = if get_bool r then Eliminate else Replace in
    let diffs = get_ct_list keys r in
    let items =
      read_list r ~item_width:(scored_min keys) (fun r ->
          let it = get_scored keys r in
          let pk = get_pack keys r in
          (it, pk))
    in
    Dedup { mode; diffs; items }
  | 12 -> Dup_flags (get_dj_list keys r)
  | 13 ->
    let ks = get_ct_list keys r in
    let items = read_list r ~item_width:(scored_min keys) (get_scored keys) in
    Sort_items { keys = ks; items }
  | 14 ->
    let descending = get_bool r in
    let kx = get_ct keys r in
    let ky = get_ct keys r in
    let x = get_scored keys r in
    let y = get_scored keys r in
    Sort_gate { descending; kx; ky; x; y }
  | 15 -> Filter (read_list r ~item_width:(w + 12) (get_tuple keys))
  | 16 ->
    Rank_tuples
      (read_list r ~item_width:((2 * w) + 4) (fun r ->
           let key = get_ct keys r in
           let score = get_ct keys r in
           let attrs = read_array ~max:4096 r ~item_width:w (get_ct keys) in
           (key, score, attrs)))
  | 17 -> Rank_keys (get_ct_list keys r)
  | 18 -> Zero_slot (get_ct_list keys r)
  | _ -> invalid_arg "Wire: unknown request tag"

let decode_request keys data =
  let r = { data; pos = 0 } in
  let tag, session = get_header r ~kind:kind_request in
  let label = get_string r in
  let req =
    if tag = batch_request_tag then
      Batch
        (read_list r ~item_width:batch_item_min (fun r ->
             let t = get_byte r in
             if t = batch_request_tag then invalid_arg "Wire: nested batch";
             get_request_payload keys r ~tag:t))
    else get_request_payload keys r ~tag
  in
  finish r "request";
  (session, label, req)

(* ---------------- response codec ---------------- *)

let response_tag = function
  | Sign _ -> 1
  | Bits2 _ -> 2
  | Ct _ -> 3
  | Dgk_bits _ -> 4
  | Bit _ -> 5
  | Flags _ -> 6
  | Items _ -> 7
  | Sorted _ -> 8
  | Pair _ -> 9
  | Tuples _ -> 10
  | Ranked _ -> 11
  | Indices _ -> 12
  | Slot _ -> 13
  | Batch_resp _ -> 14

let batch_response_tag = 14

(* 1 tag byte + the 1-byte Sign/Bit payload *)
let batch_resp_item_min = 2

let rec put_response_payload keys buf resp =
  match resp with
  | Sign s ->
    if s < -1 || s > 1 then invalid_arg "Wire: bad sign";
    Buffer.add_char buf (Char.chr (s + 1))
  | Bits2 cs -> put_dj_list keys buf cs
  | Ct c -> put_ct keys buf c
  | Dgk_bits { bit_cts; parity } ->
    put_ct_list keys buf bit_cts;
    put_bool buf parity
  | Bit b -> put_bool buf b
  | Flags bs ->
    put_int buf (List.length bs);
    List.iter (put_bool buf) bs
  | Items items ->
    put_int buf (List.length items);
    List.iter
      (fun (it, pk) ->
        put_scored keys buf it;
        put_pack keys buf pk)
      items
  | Sorted items ->
    put_int buf (List.length items);
    List.iter (put_scored keys buf) items
  | Pair (x, y) ->
    put_scored keys buf x;
    put_scored keys buf y
  | Tuples tuples ->
    put_int buf (List.length tuples);
    List.iter (put_tuple keys buf) tuples
  | Ranked rows ->
    put_int buf (List.length rows);
    List.iter
      (fun (score, attrs) ->
        put_ct keys buf score;
        put_int buf (Array.length attrs);
        Array.iter (put_ct keys buf) attrs)
      rows
  | Indices is ->
    put_int buf (List.length is);
    List.iter (put_int buf) is
  | Slot s -> (
    match s with
    | None -> put_bool buf false
    | Some i ->
      put_bool buf true;
      put_int buf i)
  | Batch_resp resps ->
    put_int buf (List.length resps);
    List.iter
      (fun el ->
        (match el with Batch_resp _ -> invalid_arg "Wire: nested batch" | _ -> ());
        Buffer.add_char buf (Char.chr (response_tag el));
        put_response_payload keys buf el)
      resps

let encode_response keys resp =
  let buf = Buffer.create 1024 in
  put_header buf ~kind:kind_response ~tag:(response_tag resp) ~session:0;
  put_response_payload keys buf resp;
  Buffer.contents buf

let get_response_payload keys r ~tag =
  let w = ct_width keys in
  match tag with
  | 1 -> (
    match get_byte r with
    | 0 -> Sign (-1)
    | 1 -> Sign 0
    | 2 -> Sign 1
    | _ -> invalid_arg "Wire: bad sign")
  | 2 -> Bits2 (get_dj_list keys r)
  | 3 -> Ct (get_ct keys r)
  | 4 ->
    let bit_cts = get_ct_list keys r in
    let parity = get_bool r in
    Dgk_bits { bit_cts; parity }
  | 5 -> Bit (get_bool r)
  | 6 -> Flags (read_list r ~item_width:1 get_bool)
  | 7 ->
    Items
      (read_list r ~item_width:(scored_min keys) (fun r ->
           let it = get_scored keys r in
           let pk = get_pack keys r in
           (it, pk)))
  | 8 -> Sorted (read_list r ~item_width:(scored_min keys) (get_scored keys))
  | 9 ->
    let x = get_scored keys r in
    let y = get_scored keys r in
    Pair (x, y)
  | 10 -> Tuples (read_list r ~item_width:(w + 12) (get_tuple keys))
  | 11 ->
    Ranked
      (read_list r ~item_width:(w + 4) (fun r ->
           let score = get_ct keys r in
           let attrs = read_array ~max:4096 r ~item_width:w (get_ct keys) in
           (score, attrs)))
  | 12 -> Indices (read_list r ~item_width:4 get_int)
  | 13 -> if get_bool r then Slot (Some (get_int r)) else Slot None
  | _ -> invalid_arg "Wire: unknown response tag"

let decode_response keys data =
  let r = { data; pos = 0 } in
  let tag, _session = get_header r ~kind:kind_response in
  let resp =
    if tag = batch_response_tag then
      Batch_resp
        (read_list r ~item_width:batch_resp_item_min (fun r ->
             let t = get_byte r in
             if t = batch_response_tag then invalid_arg "Wire: nested batch";
             get_response_payload keys r ~tag:t))
    else get_response_payload keys r ~tag
  in
  finish r "response";
  resp

(* ---------------- multiplex codec ----------------

   One frame carrying correlation-tagged ops from many concurrent
   queries (the round scheduler's merged trip), answered by one frame of
   element-wise replies in op order. The header session field is unused
   (each op carries its own session); op/reply tags, counts and payloads
   are validated exactly like every other codec path, and the reply
   decoder re-applies the nested-batch rule. *)

let mux_op_tag = function
  | Mux_open _ -> 1
  | Mux_close _ -> 2
  | Mux_fork _ -> 3
  | Mux_join _ -> 4
  | Mux_req _ -> 5

(* smallest op: 1 tag byte + a 4-byte session *)
let mux_op_min = 5

let encode_mux keys ops =
  let buf = Buffer.create 1024 in
  put_header buf ~kind:kind_mux ~tag:1 ~session:0;
  put_int buf (List.length ops);
  List.iter
    (fun op ->
      Buffer.add_char buf (Char.chr (mux_op_tag op));
      match op with
      | Mux_open { session } | Mux_close { session } -> put_int buf session
      | Mux_fork { parent; child; label } ->
        put_int buf parent;
        put_int buf child;
        put_string buf label
      | Mux_join { parent; child } ->
        put_int buf parent;
        put_int buf child
      | Mux_req { session; label; req } ->
        put_int buf session;
        put_string buf label;
        Buffer.add_char buf (Char.chr (request_tag req));
        put_request_payload keys buf req)
    ops;
  Buffer.contents buf

let decode_mux keys data =
  let r = { data; pos = 0 } in
  let tag, _session = get_header r ~kind:kind_mux in
  if tag <> 1 then invalid_arg "Wire: unknown mux tag";
  let ops =
    read_list r ~item_width:mux_op_min (fun r ->
        match get_byte r with
        | 1 -> Mux_open { session = get_int r }
        | 2 -> Mux_close { session = get_int r }
        | 3 ->
          let parent = get_int r in
          let child = get_int r in
          let label = get_string r in
          Mux_fork { parent; child; label }
        | 4 ->
          let parent = get_int r in
          let child = get_int r in
          Mux_join { parent; child }
        | 5 ->
          let session = get_int r in
          let label = get_string r in
          let t = get_byte r in
          let req =
            if t = batch_request_tag then
              Batch
                (read_list r ~item_width:batch_item_min (fun r ->
                     let t = get_byte r in
                     if t = batch_request_tag then invalid_arg "Wire: nested batch";
                     get_request_payload keys r ~tag:t))
            else get_request_payload keys r ~tag:t
          in
          Mux_req { session; label; req }
        | _ -> invalid_arg "Wire: unknown mux op tag")
  in
  finish r "mux frame";
  ops

let encode_mux_replies keys replies =
  let buf = Buffer.create 1024 in
  put_header buf ~kind:kind_mux_reply ~tag:1 ~session:0;
  put_int buf (List.length replies);
  List.iter
    (fun reply ->
      match reply with
      | Mux_ok -> Buffer.add_char buf '\001'
      | Mux_answer resp ->
        Buffer.add_char buf '\002';
        Buffer.add_char buf (Char.chr (response_tag resp));
        put_response_payload keys buf resp)
    replies;
  Buffer.contents buf

let decode_mux_replies keys data =
  let r = { data; pos = 0 } in
  let tag, _session = get_header r ~kind:kind_mux_reply in
  if tag <> 1 then invalid_arg "Wire: unknown mux reply tag";
  let replies =
    read_list r ~item_width:1 (fun r ->
        match get_byte r with
        | 1 -> Mux_ok
        | 2 ->
          let t = get_byte r in
          let resp =
            if t = batch_response_tag then
              Batch_resp
                (read_list r ~item_width:batch_resp_item_min (fun r ->
                     let t = get_byte r in
                     if t = batch_response_tag then invalid_arg "Wire: nested batch";
                     get_response_payload keys r ~tag:t))
            else get_response_payload keys r ~tag:t
          in
          Mux_answer resp
        | _ -> invalid_arg "Wire: unknown mux reply kind")
  in
  finish r "mux replies";
  replies

(* ---------------- closed-form frame sizes ----------------

   Exactly [String.length (encode_* ...)], asserted by the property tests:
   the Inproc transport charges these without materialising the frame. *)

let rec request_payload_bytes keys req =
  let w = ct_width keys and d = dj_width keys in
  match req with
  | Sign_of _ | Zero_test _ | Lsb _ -> w
  | Equality cs | Lift cs | Zero_any cs | Rank_keys cs | Zero_slot cs ->
    4 + (List.length cs * w)
  | Conjunction groups ->
    4 + List.fold_left (fun acc g -> acc + 4 + (List.length g * w)) 0 groups
  | Recover _ -> d
  | Dgk_low_bits _ -> 4 + w
  | Mult _ -> 2 * w
  | Dedup { diffs; items; _ } ->
    1
    + (4 + (List.length diffs * w))
    + 4
    + List.fold_left
        (fun acc (it, pk) -> acc + scored_size keys it + pack_size keys pk)
        0 items
  | Dup_flags cs -> 4 + (List.length cs * d)
  | Sort_items { keys = ks; items } ->
    4
    + (List.length ks * w)
    + 4
    + List.fold_left (fun acc it -> acc + scored_size keys it) 0 items
  | Sort_gate { x; y; _ } -> 1 + (2 * w) + scored_size keys x + scored_size keys y
  | Filter tuples ->
    4 + List.fold_left (fun acc t -> acc + tuple_size keys t) 0 tuples
  | Rank_tuples rows ->
    4
    + List.fold_left
        (fun acc (_, _, attrs) -> acc + (2 * w) + 4 + (Array.length attrs * w))
        0 rows
  | Batch reqs ->
    4 + List.fold_left (fun acc el -> acc + 1 + request_payload_bytes keys el) 0 reqs

let request_bytes keys ~label req =
  request_header_bytes ~label + request_payload_bytes keys req

let rec response_payload_bytes keys resp =
  let w = ct_width keys and d = dj_width keys in
  match resp with
  | Sign _ | Bit _ -> 1
  | Bits2 cs -> 4 + (List.length cs * d)
  | Ct _ -> w
  | Dgk_bits { bit_cts; _ } -> 4 + (List.length bit_cts * w) + 1
  | Flags bs -> 4 + List.length bs
  | Items items ->
    4
    + List.fold_left
        (fun acc (it, pk) -> acc + scored_size keys it + pack_size keys pk)
        0 items
  | Sorted items -> 4 + List.fold_left (fun acc it -> acc + scored_size keys it) 0 items
  | Pair (x, y) -> scored_size keys x + scored_size keys y
  | Tuples tuples -> 4 + List.fold_left (fun acc t -> acc + tuple_size keys t) 0 tuples
  | Ranked rows ->
    4
    + List.fold_left (fun acc (_, attrs) -> acc + w + 4 + (Array.length attrs * w)) 0 rows
  | Indices is -> 4 + (4 * List.length is)
  | Slot None -> 1
  | Slot (Some _) -> 5
  | Batch_resp resps ->
    4 + List.fold_left (fun acc el -> acc + 1 + response_payload_bytes keys el) 0 resps

let response_bytes keys resp = response_header_bytes + response_payload_bytes keys resp

(* ---------------- control codec ----------------

   Provisioning and orchestration frames: never part of the protocol
   bandwidth accounting (the paper's cost model has no analogue of them). *)

let encode_control ctl =
  let buf = Buffer.create 64 in
  let tag =
    match ctl with
    | Hello _ -> 1
    | Fork _ -> 2
    | Join _ -> 3
    | Get_trace -> 4
    | Get_stats -> 5
    | Shutdown -> 6
    | Stats_req -> 7
  in
  put_header buf ~kind:kind_control ~tag ~session:0;
  (match ctl with
  | Hello { seed; key_bits; rand_bits; obs } ->
    put_string buf seed;
    put_int buf key_bits;
    (match rand_bits with
    | None -> put_bool buf false
    | Some b ->
      put_bool buf true;
      put_int buf b);
    put_bool buf obs
  | Fork { parent; child; label } ->
    put_int buf parent;
    put_int buf child;
    put_string buf label
  | Join { parent; child } ->
    put_int buf parent;
    put_int buf child
  | Get_trace | Get_stats | Stats_req | Shutdown -> ());
  Buffer.contents buf

let decode_control data =
  let r = { data; pos = 0 } in
  let tag, _session = get_header r ~kind:kind_control in
  let ctl =
    match tag with
    | 1 ->
      let seed = get_string r in
      let key_bits = get_int r in
      let rand_bits = if get_bool r then Some (get_int r) else None in
      let obs = get_bool r in
      Hello { seed; key_bits; rand_bits; obs }
    | 2 ->
      let parent = get_int r in
      let child = get_int r in
      let label = get_string r in
      Fork { parent; child; label }
    | 3 ->
      let parent = get_int r in
      let child = get_int r in
      Join { parent; child }
    | 4 -> Get_trace
    | 5 -> Get_stats
    | 6 -> Shutdown
    | 7 -> Stats_req
    | _ -> invalid_arg "Wire: unknown control tag"
  in
  finish r "control";
  ctl

let put_trace_event buf (e : Trace.event) =
  match e with
  | Trace.Equality_bits { protocol; bits } ->
    Buffer.add_char buf '\001';
    put_string buf protocol;
    put_int buf (List.length bits);
    List.iter (put_bool buf) bits
  | Trace.Dedup_matrix { protocol; size; equal_pairs } ->
    Buffer.add_char buf '\002';
    put_string buf protocol;
    put_int buf size;
    put_int buf (List.length equal_pairs);
    List.iter
      (fun (i, j) ->
        put_int buf i;
        put_int buf j)
      equal_pairs
  | Trace.Comparison { protocol; ordering } ->
    Buffer.add_char buf '\003';
    put_string buf protocol;
    if ordering < -1 || ordering > 1 then invalid_arg "Wire: bad ordering";
    Buffer.add_char buf (Char.chr (ordering + 1))
  | Trace.Count { protocol; value } ->
    Buffer.add_char buf '\004';
    put_string buf protocol;
    put_int buf value

let get_trace_event r : Trace.event =
  match get_byte r with
  | 1 ->
    let protocol = get_string r in
    Trace.Equality_bits { protocol; bits = read_list r ~item_width:1 get_bool }
  | 2 ->
    let protocol = get_string r in
    let size = get_int r in
    Trace.Dedup_matrix
      { protocol;
        size;
        equal_pairs =
          read_list r ~item_width:8 (fun r ->
              let i = get_int r in
              let j = get_int r in
              (i, j));
      }
  | 3 ->
    let protocol = get_string r in
    let ordering =
      match get_byte r with
      | 0 -> -1
      | 1 -> 0
      | 2 -> 1
      | _ -> invalid_arg "Wire: bad ordering"
    in
    Trace.Comparison { protocol; ordering }
  | 4 ->
    let protocol = get_string r in
    Trace.Count { protocol; value = get_int r }
  | _ -> invalid_arg "Wire: unknown trace event"

(* Registry snapshot payload: count-prefixed entries of
   name | kind byte | kind-specific fields, with 8-byte integer fields
   ([put_i64]) since histogram sums outgrow [put_int]'s 30-bit cap. *)
let put_metric buf (m : Obs.Registry.metric) =
  match m with
  | Obs.Registry.Counter v ->
    Buffer.add_char buf '\001';
    put_i64 buf v
  | Obs.Registry.Gauge v ->
    Buffer.add_char buf '\002';
    put_f64 buf v
  | Obs.Registry.Histogram d ->
    Buffer.add_char buf '\003';
    put_i64 buf d.Obs.Registry.hcount;
    put_i64 buf d.hsum;
    put_i64 buf d.hmin;
    put_i64 buf d.hmax;
    put_int buf (List.length d.hbuckets);
    List.iter
      (fun (upper, n) ->
        put_i64 buf upper;
        put_i64 buf n)
      d.hbuckets

let get_metric r : Obs.Registry.metric =
  match get_byte r with
  | 1 -> Obs.Registry.Counter (get_i64 r)
  | 2 -> Obs.Registry.Gauge (get_f64 r)
  | 3 ->
    let hcount = get_i64 r in
    let hsum = get_i64 r in
    let hmin = get_i64 r in
    let hmax = get_i64 r in
    let hbuckets =
      read_list r ~item_width:16 (fun r ->
          let upper = get_i64 r in
          let n = get_i64 r in
          (upper, n))
    in
    if hcount > 0 && hmin > hmax then invalid_arg "Wire: histogram min above max";
    if hcount <> List.fold_left (fun acc (_, n) -> acc + n) 0 hbuckets then
      invalid_arg "Wire: histogram count disagrees with buckets";
    Obs.Registry.Histogram { hcount; hsum; hmin; hmax; hbuckets }
  | _ -> invalid_arg "Wire: unknown metric kind"

let put_snapshot buf (snap : Obs.Registry.snapshot) =
  put_int buf (List.length snap);
  List.iter
    (fun (name, m) ->
      put_string buf name;
      put_metric buf m)
    snap

let get_snapshot r : Obs.Registry.snapshot =
  read_list r ~item_width:13 (fun r ->
      let name = get_string r in
      let m = get_metric r in
      (name, m))

let encode_control_reply reply =
  let buf = Buffer.create 64 in
  let tag =
    match reply with
    | Ok_ctl -> 1
    | Trace_events _ -> 2
    | Stats _ -> 3
    | Stats_resp _ -> 4
  in
  put_header buf ~kind:kind_control_reply ~tag ~session:0;
  (match reply with
  | Ok_ctl -> ()
  | Trace_events events ->
    put_int buf (List.length events);
    List.iter (put_trace_event buf) events
  | Stats pairs ->
    put_int buf (List.length pairs);
    List.iter
      (fun (name, v) ->
        put_string buf name;
        put_int buf v)
      pairs
  | Stats_resp snap -> put_snapshot buf snap);
  Buffer.contents buf

let decode_control_reply data =
  let r = { data; pos = 0 } in
  let tag, _session = get_header r ~kind:kind_control_reply in
  let reply =
    match tag with
    | 1 -> Ok_ctl
    | 2 -> Trace_events (read_list r ~item_width:6 get_trace_event)
    | 3 ->
      Stats
        (read_list r ~item_width:8 (fun r ->
             let name = get_string r in
             let v = get_int r in
             (name, v)))
    | 4 -> Stats_resp (get_snapshot r)
    | _ -> invalid_arg "Wire: unknown control reply tag"
  in
  finish r "control reply";
  reply

(* ---------------- client <-> S1 front-end frames ----------------

   The public face of the serving stack (lib/server): a client ships an
   opaque Sectopk.Codec token blob, S1 answers with the scored top-k
   (still encrypted — decryption stays client-side), a typed Busy under
   admission-queue overflow, or a typed error.  Same header discipline
   as the S1 <-> S2 frames, under their own kind bytes. *)

let kind_client = 'U'
let kind_server = 'V'

type client_msg = Query_req of { token : string }

type server_msg =
  | Server_hello of { n : int; m : int; s : int; key_bits : int }
  | Query_resp of { top : Enc_item.scored list; halting_depth : int; halted : bool }
  | Busy
  | Server_error of string

let encode_client_msg msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Query_req { token } ->
    put_header buf ~kind:kind_client ~tag:1 ~session:0;
    put_string buf token);
  Buffer.contents buf

let decode_client_msg data =
  let r = { data; pos = 0 } in
  let tag, _session = get_header r ~kind:kind_client in
  let msg =
    match tag with
    | 1 ->
      let token = get_string r in
      if String.length token > 65536 then invalid_arg "Wire: oversized token";
      Query_req { token }
    | _ -> invalid_arg "Wire: unknown client tag"
  in
  finish r "client message";
  msg

let encode_server_msg keys msg =
  let buf = Buffer.create 256 in
  (match msg with
  | Server_hello { n; m; s; key_bits } ->
    put_header buf ~kind:kind_server ~tag:1 ~session:0;
    put_int buf n;
    put_int buf m;
    put_int buf s;
    put_int buf key_bits
  | Query_resp { top; halting_depth; halted } ->
    put_header buf ~kind:kind_server ~tag:2 ~session:0;
    put_int buf halting_depth;
    put_bool buf halted;
    put_int buf (List.length top);
    List.iter (put_scored keys buf) top
  | Busy -> put_header buf ~kind:kind_server ~tag:3 ~session:0
  | Server_error e ->
    put_header buf ~kind:kind_server ~tag:4 ~session:0;
    put_string buf e);
  Buffer.contents buf

let decode_server_msg keys data =
  let r = { data; pos = 0 } in
  let tag, _session = get_header r ~kind:kind_server in
  let msg =
    match tag with
    | 1 ->
      let n = get_int r in
      let m = get_int r in
      let s = get_int r in
      let key_bits = get_int r in
      if n <= 0 || m <= 0 || s <= 0 || s > 64 || key_bits <= 0 || key_bits > 65536 then
        invalid_arg "Wire: bad hello";
      Server_hello { n; m; s; key_bits }
    | 2 ->
      let halting_depth = get_int r in
      let halted = get_bool r in
      let top = read_list ~max:4096 r ~item_width:(scored_min keys) (get_scored keys) in
      Query_resp { top; halting_depth; halted }
    | 3 -> Busy
    | 4 -> Server_error (get_string r)
    | _ -> invalid_arg "Wire: unknown server tag"
  in
  finish r "server message";
  msg

(* ---------------- length-prefixed framing over a file descriptor ----

   The 4-byte length prefix is transport plumbing, not protocol payload:
   it is excluded from all bandwidth accounting (DESIGN.md section 4c). *)

(* Both directions restart on EINTR: the serving daemons install signal
   handlers for graceful drain, and a signal must never tear a frame. *)
let rec write_all fd s off len =
  if len > 0 then begin
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd s off len
  end

(* Coalesced: prefix + payload leave in one buffered write, so a whole
   Batch frame is a single syscall (writev-style flush) instead of two
   writes per frame racing Nagle on the socket path. *)
let write_frame fd data =
  let len = String.length data in
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string data 0 buf 4 len;
  write_all fd (Bytes.unsafe_to_string buf) 0 (4 + len)

let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Some (Bytes.to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then None else invalid_arg "Wire: truncated frame"
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let read_frame fd =
  match read_exact fd 4 with
  | None -> None
  | Some hdr ->
    let len =
      (Char.code hdr.[0] lsl 24)
      lor (Char.code hdr.[1] lsl 16)
      lor (Char.code hdr.[2] lsl 8)
      lor Char.code hdr.[3]
    in
    if len > 0x3fffffff then invalid_arg "Wire: oversized frame";
    read_exact fd len

let frame_kind data = if String.length data > 5 then Some data.[5] else None
