open Bignum
open Crypto

type mode = Wire.dedup_mode = Replace | Eliminate

let protocol = "SecDedup"

let mask_item (s1 : Ctx.s1) (it : Enc_item.scored) =
  let n = s1.pub.Paillier.n in
  let cells = Ehl.Ehl_plus.length it.Enc_item.ehl in
  let alphas = Array.init cells (fun _ -> Rng.nat_below s1.rng n) in
  let beta = Rng.nat_below s1.rng n in
  let gamma = Rng.nat_below s1.rng n in
  let sigmas = Array.map (fun _ -> Rng.nat_below s1.rng n) it.Enc_item.seen in
  let masked : Enc_item.scored =
    {
      ehl =
        Ehl.Ehl_plus.mask s1.pub it.Enc_item.ehl
          (Array.map (fun a -> Paillier.encrypt s1.rng s1.pub a) alphas);
      worst = Paillier.add s1.pub it.Enc_item.worst (Paillier.encrypt s1.rng s1.pub beta);
      best = Paillier.add s1.pub it.Enc_item.best (Paillier.encrypt s1.rng s1.pub gamma);
      seen =
        Array.mapi
          (fun l u -> Paillier.add s1.pub u (Paillier.encrypt s1.rng s1.pub sigmas.(l)))
          it.Enc_item.seen;
    }
  in
  let pack : Enc_item.pack =
    {
      alphas = Array.map (fun a -> Paillier.encrypt s1.rng s1.own_pub a) alphas;
      beta = Paillier.encrypt s1.rng s1.own_pub beta;
      gamma = Paillier.encrypt s1.rng s1.own_pub gamma;
      sigmas = Array.map (fun a -> Paillier.encrypt s1.rng s1.own_pub a) sigmas;
    }
  in
  (masked, pack)

let unmask_item (s1 : Ctx.s1) (it : Enc_item.scored) (pack : Enc_item.pack) =
  let n = s1.pub.Paillier.n in
  let dec c = Nat.rem (Paillier.decrypt s1.own_sk c) n in
  let alphas = Array.map dec pack.Enc_item.alphas in
  let beta = dec pack.Enc_item.beta and gamma = dec pack.Enc_item.gamma in
  let sigmas = Array.map dec pack.Enc_item.sigmas in
  {
    Enc_item.ehl =
      Ehl.Ehl_plus.mask s1.pub it.Enc_item.ehl
        (Array.map (fun a -> Paillier.encrypt s1.rng s1.pub (Nat.sub n (Nat.rem a n))) alphas);
    worst = Paillier.sub s1.pub it.Enc_item.worst (Paillier.encrypt s1.rng s1.pub beta);
    best = Paillier.sub s1.pub it.Enc_item.best (Paillier.encrypt s1.rng s1.pub gamma);
    seen =
      Array.mapi
        (fun l u -> Paillier.sub s1.pub u (Paillier.encrypt s1.rng s1.pub sigmas.(l)))
        it.Enc_item.seen;
  }

let run (ctx : Ctx.t) ~mode items =
  Obs.span protocol @@ fun () ->
  match items with
  | [] -> []
  | _ ->
    let s1 = ctx.Ctx.s1 in
    let l = List.length items in
    let arr = Array.of_list items in
    (* --- S1: permute, build the pairwise matrix on the permuted order,
       mask every item --- *)
    ignore (Rng.shuffle s1.rng arr);
    let pair_idx = Wire.pair_indices l in
    (* Each matrix entry is an independent blinded diff: fan the
       l*(l-1)/2 pairs out on the pool (pure S1 work). *)
    let diffs =
      Ctx.parallel ctx ~jobs:(Array.length pair_idx) (fun sub idx ->
          let i, j = pair_idx.(idx) in
          let sub1 = sub.Ctx.s1 in
          Ehl.Ehl_plus.diff ?blind_bits:sub1.blind_bits sub1.rng sub1.pub
            arr.(i).Enc_item.ehl arr.(j).Enc_item.ehl)
    in
    let masked = Array.map (mask_item s1) arr in
    (* --- one round trip: S2 decrypts the matrix, replaces or drops
       duplicates, layers its own masks and a second permutation --- *)
    let out =
      match
        Ctx.rpc ctx ~label:protocol
          (Wire.Dedup
             { mode; diffs = Array.to_list diffs; items = Array.to_list masked })
      with
      | Wire.Items out -> out
      | _ -> failwith "Sec_dedup.run: unexpected response"
    in
    (* --- S1: strip the accumulated masks --- *)
    List.map (fun (it, pack) -> unmask_item s1 it pack) out
