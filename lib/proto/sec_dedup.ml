open Bignum
open Crypto

type mode = Replace | Eliminate

let protocol = "SecDedup"

(* Randomness S1 attaches to one item, encrypted under S1's personal pk'
   so that S2 can add its own share homomorphically without reading it. *)
type blind_pack = {
  alphas : Paillier.ciphertext array; (* Enc_pk'(alpha_c), one per EHL cell *)
  beta : Paillier.ciphertext; (* Enc_pk'(beta)  - worst-score mask *)
  gamma : Paillier.ciphertext; (* Enc_pk'(gamma) - best-score mask *)
  sigmas : Paillier.ciphertext array; (* Enc_pk'(sigma_l) - seen-bit masks *)
}

let mask_item (s1 : Ctx.s1) (it : Enc_item.scored) =
  let n = s1.pub.Paillier.n in
  let cells = Ehl.Ehl_plus.length it.Enc_item.ehl in
  let alphas = Array.init cells (fun _ -> Rng.nat_below s1.rng n) in
  let beta = Rng.nat_below s1.rng n in
  let gamma = Rng.nat_below s1.rng n in
  let sigmas = Array.map (fun _ -> Rng.nat_below s1.rng n) it.Enc_item.seen in
  let masked : Enc_item.scored =
    {
      ehl =
        Ehl.Ehl_plus.mask s1.pub it.Enc_item.ehl
          (Array.map (fun a -> Paillier.encrypt s1.rng s1.pub a) alphas);
      worst = Paillier.add s1.pub it.Enc_item.worst (Paillier.encrypt s1.rng s1.pub beta);
      best = Paillier.add s1.pub it.Enc_item.best (Paillier.encrypt s1.rng s1.pub gamma);
      seen =
        Array.mapi
          (fun l u -> Paillier.add s1.pub u (Paillier.encrypt s1.rng s1.pub sigmas.(l)))
          it.Enc_item.seen;
    }
  in
  let pack =
    {
      alphas = Array.map (fun a -> Paillier.encrypt s1.rng s1.own_pub a) alphas;
      beta = Paillier.encrypt s1.rng s1.own_pub beta;
      gamma = Paillier.encrypt s1.rng s1.own_pub gamma;
      sigmas = Array.map (fun a -> Paillier.encrypt s1.rng s1.own_pub a) sigmas;
    }
  in
  (masked, pack)

(* S2 layers its own randomness on a (masked) item and updates the pack
   under pk' accordingly. *)
let s2_remask (s2 : Ctx.s2) own_pub (it : Enc_item.scored) pack =
  let n = s2.pub2.Paillier.n in
  let cells = Ehl.Ehl_plus.length it.Enc_item.ehl in
  let alphas' = Array.init cells (fun _ -> Rng.nat_below s2.rng2 n) in
  let beta' = Rng.nat_below s2.rng2 n in
  let gamma' = Rng.nat_below s2.rng2 n in
  let sigmas' = Array.map (fun _ -> Rng.nat_below s2.rng2 n) it.Enc_item.seen in
  let it' : Enc_item.scored =
    {
      ehl =
        Ehl.Ehl_plus.mask s2.pub2 it.Enc_item.ehl
          (Array.map (fun a -> Paillier.encrypt s2.rng2 s2.pub2 a) alphas');
      worst = Paillier.add s2.pub2 it.Enc_item.worst (Paillier.encrypt s2.rng2 s2.pub2 beta');
      best = Paillier.add s2.pub2 it.Enc_item.best (Paillier.encrypt s2.rng2 s2.pub2 gamma');
      seen =
        Array.mapi
          (fun l u -> Paillier.add s2.pub2 u (Paillier.encrypt s2.rng2 s2.pub2 sigmas'.(l)))
          it.Enc_item.seen;
    }
  in
  let pack' =
    {
      alphas =
        Array.mapi
          (fun c a -> Paillier.add own_pub a (Paillier.encrypt s2.rng2 own_pub alphas'.(c)))
          pack.alphas;
      beta = Paillier.add own_pub pack.beta (Paillier.encrypt s2.rng2 own_pub beta');
      gamma = Paillier.add own_pub pack.gamma (Paillier.encrypt s2.rng2 own_pub gamma');
      sigmas =
        Array.mapi
          (fun l a -> Paillier.add own_pub a (Paillier.encrypt s2.rng2 own_pub sigmas'.(l)))
          pack.sigmas;
    }
  in
  (it', pack')

(* A replacement for a duplicate: random cells (an EHL of a random object
   under a random function) and worst/best = Z + mask, all under the main
   public key, with the mask disclosed to S1 via pk'. *)
let s2_replacement (s2 : Ctx.s2) own_pub ~cells ~m_seen =
  let n = s2.pub2.Paillier.n in
  let z = Nat.pred n in
  let beta = Rng.nat_below s2.rng2 n and gamma = Rng.nat_below s2.rng2 n in
  let alphas = Array.init cells (fun _ -> Rng.nat_below s2.rng2 n) in
  let sigmas = Array.init m_seen (fun _ -> Rng.nat_below s2.rng2 n) in
  let it : Enc_item.scored =
    {
      ehl =
        Ehl.Ehl_plus.of_cells
          (Array.init cells (fun _ -> Paillier.encrypt s2.rng2 s2.pub2 (Rng.nat_below s2.rng2 n)));
      worst = Paillier.encrypt s2.rng2 s2.pub2 (Modular.add z beta ~m:n);
      best = Paillier.encrypt s2.rng2 s2.pub2 (Modular.add z gamma ~m:n);
      (* all-ones seen vector: the sentinel's best score stays -1 under
         the checkpoint refresh *)
      seen =
        Array.init m_seen (fun l ->
            Paillier.encrypt s2.rng2 s2.pub2 (Modular.add Nat.one sigmas.(l) ~m:n));
    }
  in
  let pack =
    {
      alphas = Array.map (fun a -> Paillier.encrypt s2.rng2 own_pub a) alphas;
      beta = Paillier.encrypt s2.rng2 own_pub beta;
      gamma = Paillier.encrypt s2.rng2 own_pub gamma;
      sigmas = Array.map (fun a -> Paillier.encrypt s2.rng2 own_pub a) sigmas;
    }
  in
  (it, pack)

let unmask_item (s1 : Ctx.s1) (it : Enc_item.scored) pack =
  let n = s1.pub.Paillier.n in
  let dec c = Nat.rem (Paillier.decrypt s1.own_sk c) n in
  let alphas = Array.map dec pack.alphas in
  let beta = dec pack.beta and gamma = dec pack.gamma in
  let sigmas = Array.map dec pack.sigmas in
  {
    Enc_item.ehl =
      Ehl.Ehl_plus.mask s1.pub it.Enc_item.ehl
        (Array.map (fun a -> Paillier.encrypt s1.rng s1.pub (Nat.sub n (Nat.rem a n))) alphas);
    worst = Paillier.sub s1.pub it.Enc_item.worst (Paillier.encrypt s1.rng s1.pub beta);
    best = Paillier.sub s1.pub it.Enc_item.best (Paillier.encrypt s1.rng s1.pub gamma);
    seen =
      Array.mapi
        (fun l u -> Paillier.sub s1.pub u (Paillier.encrypt s1.rng s1.pub sigmas.(l)))
        it.Enc_item.seen;
  }

let run (ctx : Ctx.t) ~mode items =
  Obs.span protocol @@ fun () ->
  match items with
  | [] -> []
  | first :: _ ->
    let s1 = ctx.Ctx.s1 and s2 = ctx.Ctx.s2 in
    let cells = Ehl.Ehl_plus.length first.Enc_item.ehl in
    let m_seen = Array.length first.Enc_item.seen in
    let l = List.length items in
    let arr = Array.of_list items in
    (* --- S1: permute, build the pairwise matrix on the permuted order,
       mask every item --- *)
    ignore (Rng.shuffle s1.rng arr);
    let pair_idx =
      let acc = ref [] in
      for i = l - 1 downto 0 do
        for j = l - 1 downto i + 1 do
          acc := (i, j) :: !acc
        done
      done;
      Array.of_list !acc
    in
    (* Each matrix entry is an independent blinded diff (S1) followed by
       one decryption (S2): fan the l*(l-1)/2 pairs out on the pool. *)
    let pair_eq =
      Ctx.parallel ctx ~jobs:(Array.length pair_idx) (fun sub idx ->
          let i, j = pair_idx.(idx) in
          let sub1 = sub.Ctx.s1 in
          let d =
            Ehl.Ehl_plus.diff ?blind_bits:sub1.blind_bits sub1.rng sub1.pub
              arr.(i).Enc_item.ehl arr.(j).Enc_item.ehl
          in
          Nat.is_zero (Paillier.decrypt sub.Ctx.s2.sk d))
    in
    let masked = Array.map (mask_item s1) arr in
    let ct = Paillier.ciphertext_bytes s1.pub in
    let own_ct = Paillier.ciphertext_bytes s1.own_pub in
    let item_bytes = ((cells + 2 + m_seen) * ct) + ((cells + 2 + m_seen) * own_ct) in
    Channel.send s1.chan ~dir:Channel.S1_to_s2 ~label:protocol
      ~bytes:((Array.length pair_idx * ct) + (l * item_bytes));
    let equal_pairs =
      Array.to_list pair_idx |> List.filteri (fun idx _ -> pair_eq.(idx))
    in
    Trace.record s2.trace (Trace.Dedup_matrix { protocol; size = l; equal_pairs });
    (* keep the highest index of every duplicate group, mark the rest *)
    let duplicate = Array.make l false in
    List.iter (fun (i, _) -> duplicate.(i) <- true) equal_pairs;
    let processed =
      Array.to_list
        (Array.mapi
           (fun i (it, pack) ->
             if duplicate.(i) then
               match mode with
               | Replace -> Some (s2_replacement s2 s1.own_pub ~cells ~m_seen)
               | Eliminate -> None
             else Some (s2_remask s2 s1.own_pub it pack))
           masked)
      |> List.filter_map Fun.id
    in
    (match mode with
    | Eliminate ->
      Trace.record s2.trace (Trace.Count { protocol = "SecDupElim"; value = List.length processed })
    | Replace -> ());
    (* --- S2: second permutation, return --- *)
    let out = Array.of_list processed in
    ignore (Rng.shuffle s2.rng2 out);
    Channel.send s2.chan2 ~dir:Channel.S2_to_s1 ~label:protocol
      ~bytes:(Array.length out * item_bytes);
    Channel.round_trip s1.chan;
    (* --- S1: strip the accumulated masks --- *)
    Array.to_list (Array.map (fun (it, pack) -> unmask_item s1 it pack) out)
