(* Observability substrate: op counters, hierarchical timed spans, a
   per-protocol report, Chrome trace-event export, and a closed-form cost
   model for the paper's sub-protocols.

   Design constraints:

   - No dependency on the rest of the tree (only [unix]), so even
     [lib/bignum] can bump counters.
   - Hooks are free when disabled: [bump] is a flag test and a return.
   - A "current collector" lives in domain-local storage; entry points
     ([Query.run], [Sec_join.top_k], ...) install the context's collector,
     and [Ctx.parallel] installs a fresh collector per task, merging them
     back in task-index order.  Counters, bytes, rounds and the span tree
     are therefore byte-identical for every [--domains] width; only wall
     times differ, and the canonical rendering ([Report.render ~times:false])
     excludes them. *)

module Metrics = struct
  type op =
    | Paillier_enc
    | Paillier_dec
    | Paillier_mul
    | Paillier_rerand
    | Dj_enc
    | Dj_dec
    | Dj_mul
    | Dj_rerand
    | Modexp
    | Modexp_fixed_base
    | Prf_eval
    | Rerand_pool
    | Bytes_sent
    | Msgs
    | Rounds
    | Store_read_bytes
    | Cache_hit
    | Cache_miss

  let n_ops = 18

  let index = function
    | Paillier_enc -> 0
    | Paillier_dec -> 1
    | Paillier_mul -> 2
    | Paillier_rerand -> 3
    | Dj_enc -> 4
    | Dj_dec -> 5
    | Dj_mul -> 6
    | Dj_rerand -> 7
    | Modexp -> 8
    | Prf_eval -> 9
    | Rerand_pool -> 10
    | Bytes_sent -> 11
    | Msgs -> 12
    | Rounds -> 13
    | Store_read_bytes -> 14
    | Cache_hit -> 15
    | Cache_miss -> 16
    | Modexp_fixed_base -> 17

  let all =
    [ Paillier_enc; Paillier_dec; Paillier_mul; Paillier_rerand;
      Dj_enc; Dj_dec; Dj_mul; Dj_rerand;
      Modexp; Modexp_fixed_base; Prf_eval; Rerand_pool; Bytes_sent; Msgs; Rounds;
      Store_read_bytes; Cache_hit; Cache_miss ]

  let name = function
    | Paillier_enc -> "paillier_encrypt"
    | Paillier_dec -> "paillier_decrypt"
    | Paillier_mul -> "paillier_scalar_mul"
    | Paillier_rerand -> "paillier_rerand"
    | Dj_enc -> "dj_encrypt"
    | Dj_dec -> "dj_decrypt"
    | Dj_mul -> "dj_scalar_mul"
    | Dj_rerand -> "dj_rerand"
    | Modexp -> "modexp"
    | Modexp_fixed_base -> "modexp_fixed_base"
    | Prf_eval -> "prf"
    | Rerand_pool -> "rerand_pool"
    | Bytes_sent -> "bytes"
    | Msgs -> "messages"
    | Rounds -> "rounds"
    | Store_read_bytes -> "store_read_bytes"
    | Cache_hit -> "cache_hit"
    | Cache_miss -> "cache_miss"

  type t = int array

  let create () : t = Array.make n_ops 0
  let get (t : t) op = t.(index op)
  let add (t : t) op n = t.(index op) <- t.(index op) + n
  let snapshot (t : t) = Array.copy t
  let sub (a : t) (b : t) : t = Array.init n_ops (fun i -> a.(i) - b.(i))
  let merge_into (src : t) ~(into : t) =
    for i = 0 to n_ops - 1 do
      into.(i) <- into.(i) + src.(i)
    done
  let is_zero (t : t) = Array.for_all (fun c -> c = 0) t
  let to_alist (t : t) = List.map (fun op -> (op, get t op)) all
end

module Span = struct
  type t = {
    sname : string;
    mutable t0 : float;
    mutable t1 : float;
    (* inclusive op-count delta over the span, filled at exit *)
    mutable ops : Metrics.t;
    mutable rev_children : t list;
  }

  let name s = s.sname
  let seconds s = s.t1 -. s.t0
  let ops s = s.ops
  let children s = List.rev s.rev_children
end

module Collector = struct
  type t = {
    metrics : Metrics.t;
    mutable rev_roots : Span.t list;
    (* open spans, innermost first, with the counter snapshot at entry *)
    mutable stack : (Span.t * Metrics.t) list;
  }

  let create () = { metrics = Metrics.create (); rev_roots = []; stack = [] }
  let metrics t = t.metrics
  let roots t = List.rev t.rev_roots

  let enter t name =
    let sp =
      { Span.sname = name; t0 = Unix.gettimeofday (); t1 = 0.;
        ops = [||]; rev_children = [] }
    in
    (match t.stack with
    | (parent, _) :: _ -> parent.Span.rev_children <- sp :: parent.Span.rev_children
    | [] -> t.rev_roots <- sp :: t.rev_roots);
    t.stack <- (sp, Metrics.snapshot t.metrics) :: t.stack

  let exit t =
    match t.stack with
    | [] -> invalid_arg "Obs.Collector.exit: no open span"
    | (sp, snap) :: rest ->
      sp.Span.t1 <- Unix.gettimeofday ();
      sp.Span.ops <- Metrics.sub t.metrics snap;
      t.stack <- rest

  (* Merge a finished collector into [into]: counters are summed and
     [src]'s root spans become children of [into]'s innermost open span
     (or roots).  Called in task-index order by [Ctx.parallel], so the
     resulting tree is independent of the domain-pool width. *)
  let merge_into src ~into =
    if src.stack <> [] then invalid_arg "Obs.Collector.merge_into: open span in source";
    Metrics.merge_into src.metrics ~into:into.metrics;
    let adopt sp =
      match into.stack with
      | (parent, _) :: _ ->
        parent.Span.rev_children <- sp :: parent.Span.rev_children
      | [] -> into.rev_roots <- sp :: into.rev_roots
    in
    List.iter adopt (roots src)

  let is_empty t =
    Metrics.is_zero t.metrics && t.rev_roots = [] && t.stack = []
end

(* ---- log-scale latency/size histograms --------------------------------- *)

(* Fixed-bucket base-2 histogram with 8 sub-buckets per octave (a
   log-linear scheme): values 0..7 get exact buckets, every larger octave
   [2^e, 2^(e+1)) is split into 8 equal sub-buckets, so a bucket's width
   never exceeds 1/8 of its lower bound and any quantile read off the
   bucket boundaries carries a relative error of at most 12.5% (the
   property test pins this against a sorted-sample oracle).  The layout
   is a plain int array: recording is one index computation and one
   increment (no allocation), merging is element-wise addition
   (associative and commutative), and the bucket scheme is a constant of
   the format — histograms recorded on different domains or machines
   merge exactly. *)
module Hist = struct
  (* 8 exact buckets + 8 per octave for exponents 3..62 *)
  let n_buckets = 8 + (8 * 60)

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable vmin : int;
    mutable vmax : int;
  }

  let create () =
    { counts = Array.make n_buckets 0; count = 0; sum = 0; vmin = max_int; vmax = 0 }

  let clear t =
    Array.fill t.counts 0 n_buckets 0;
    t.count <- 0;
    t.sum <- 0;
    t.vmin <- max_int;
    t.vmax <- 0

  (* position of the highest set bit; [v] >= 8 here *)
  let rec msb_from v acc = if v <= 1 then acc else msb_from (v lsr 1) (acc + 1)

  let bucket_index v =
    if v < 8 then v
    else
      let e = msb_from v 0 in
      (8 * (e - 2)) + ((v lsr (e - 3)) land 7)

  (* largest value the bucket covers (its inclusive upper bound) *)
  let bucket_upper idx =
    if idx < 8 then idx
    else
      let e = (idx lsr 3) + 2 and s = idx land 7 in
      ((8 + s + 1) lsl (e - 3)) - 1

  let record t v =
    let v = if v < 0 then 0 else v in
    t.counts.(bucket_index v) <- t.counts.(bucket_index v) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  (* seconds are recorded as integer microseconds: integer buckets keep
     merges exact and snapshots byte-identical across domains *)
  let record_seconds t s = record t (int_of_float ((s *. 1e6) +. 0.5))

  let count t = t.count
  let sum t = t.sum
  let min_value t = if t.count = 0 then 0 else t.vmin
  let max_value t = if t.count = 0 then 0 else t.vmax
  let is_empty t = t.count = 0

  let merge_into src ~into =
    for i = 0 to n_buckets - 1 do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    into.count <- into.count + src.count;
    into.sum <- into.sum + src.sum;
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax

  let snapshot t =
    {
      counts = Array.copy t.counts;
      count = t.count;
      sum = t.sum;
      vmin = t.vmin;
      vmax = t.vmax;
    }

  (* (inclusive upper bound, count) for every non-empty bucket, ascending *)
  let buckets t =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (bucket_upper i, t.counts.(i)) :: !acc
    done;
    !acc

  (* Upper bound of the bucket holding the ceil(q*count)-th smallest
     value, clamped to the recorded max: always >= the true quantile and
     at most 12.5% + 1 above it. *)
  let quantile t q =
    if t.count = 0 then 0
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let rank = max 1 (min t.count (int_of_float (ceil (q *. float_of_int t.count)))) in
      let rec walk i seen =
        if i >= n_buckets then t.vmax
        else
          let seen = seen + t.counts.(i) in
          if seen >= rank then min (bucket_upper i) t.vmax else walk (i + 1) seen
      in
      max (walk 0 0) (min_value t)
    end

  let quantile_seconds t q = float_of_int (quantile t q) /. 1e6

  let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count
end

(* ---- global switch and current collector ------------------------------- *)

let enabled =
  ref
    (match Sys.getenv_opt "OBS_ENABLED" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_enabled b = enabled := b
let is_enabled () = !enabled

let current_key : Collector.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_key

let with_collector c f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

(* Install [c] only when no collector is already current: protocol entry
   points use this so an outer harness (bench) can capture everything. *)
let with_default c f =
  match current () with Some _ -> f () | None -> with_collector c f

let add op n =
  if !enabled then
    match current () with Some c -> Metrics.add c.Collector.metrics op n | None -> ()

let bump op = add op 1

let span name f =
  if not !enabled then f ()
  else
    match current () with
    | None -> f ()
    | Some c ->
      Collector.enter c name;
      Fun.protect ~finally:(fun () -> Collector.exit c) f

(* ---- timing ------------------------------------------------------------ *)

module Timer = struct
  let now () = Unix.gettimeofday ()

  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)

  (* mean seconds per call over [n] runs *)
  let per_call ~n f =
    let t0 = now () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    (now () -. t0) /. float_of_int n
end

(* ---- pretty per-protocol report ---------------------------------------- *)

module Report = struct
  type row = {
    rname : string;
    mutable calls : int;
    mutable wall : float;
    rops : Metrics.t;
  }

  (* Aggregate spans by name, ordered by first pre-order appearance.
     Only a span's *exclusive* contribution to each named row would be
     ambiguous once protocols nest, so rows carry the inclusive delta of
     every span with that name; nested same-name spans do not occur in
     this codebase's hierarchy. *)
  let rows c =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    let rec walk sp =
      let r =
        match Hashtbl.find_opt tbl sp.Span.sname with
        | Some r -> r
        | None ->
          let r =
            { rname = sp.Span.sname; calls = 0; wall = 0.; rops = Metrics.create () }
          in
          Hashtbl.add tbl sp.Span.sname r;
          order := r :: !order;
          r
      in
      r.calls <- r.calls + 1;
      r.wall <- r.wall +. Span.seconds sp;
      if sp.Span.ops <> [||] then Metrics.merge_into sp.Span.ops ~into:r.rops;
      List.iter walk (Span.children sp)
    in
    List.iter walk (Collector.roots c);
    List.rev !order

  let render ?(times = true) c =
    let b = Buffer.create 1024 in
    let open Metrics in
    let cols =
      [ ("calls", fun r -> string_of_int r.calls);
        ("P.enc", fun r -> string_of_int (get r.rops Paillier_enc));
        ("P.dec", fun r -> string_of_int (get r.rops Paillier_dec));
        ("P.mul", fun r -> string_of_int (get r.rops Paillier_mul));
        ("P.rr", fun r -> string_of_int (get r.rops Paillier_rerand));
        ("DJ.enc", fun r -> string_of_int (get r.rops Dj_enc));
        ("DJ.dec", fun r -> string_of_int (get r.rops Dj_dec));
        ("DJ.mul", fun r -> string_of_int (get r.rops Dj_mul));
        ("bytes", fun r -> string_of_int (get r.rops Bytes_sent));
        ("rounds", fun r -> string_of_int (get r.rops Rounds)) ]
      @ (if times then [ ("wall(s)", fun r -> Printf.sprintf "%.3f" r.wall) ] else [])
    in
    let rows = rows c in
    let name_w =
      List.fold_left (fun w r -> max w (String.length r.rname)) (String.length "span") rows
    in
    let widths =
      List.map
        (fun (h, f) ->
          List.fold_left (fun w r -> max w (String.length (f r))) (String.length h) rows)
        cols
    in
    Buffer.add_string b (Printf.sprintf "%-*s" name_w "span");
    List.iter2
      (fun (h, _) w -> Buffer.add_string b (Printf.sprintf "  %*s" w h))
      cols widths;
    Buffer.add_char b '\n';
    List.iter
      (fun r ->
        Buffer.add_string b (Printf.sprintf "%-*s" name_w r.rname);
        List.iter2
          (fun (_, f) w -> Buffer.add_string b (Printf.sprintf "  %*s" w (f r)))
          cols widths;
        Buffer.add_char b '\n')
      rows;
    let m = Collector.metrics c in
    Buffer.add_string b "totals:";
    List.iter
      (fun op ->
        let v = get m op in
        if v <> 0 then Buffer.add_string b (Printf.sprintf " %s=%d" (name op) v))
      all;
    Buffer.add_char b '\n';
    Buffer.contents b

  let print ?times c = print_string (render ?times c)
end

(* ---- Chrome trace-event export ----------------------------------------- *)

module Chrome = struct
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Complete ("X") events, one per span, timestamps in microseconds
     relative to the earliest root.  Spans merged from parallel tasks may
     overlap in time on the single track; Perfetto renders them stacked. *)
  let to_string c =
    let roots = Collector.roots c in
    let base =
      List.fold_left (fun m sp -> min m sp.Span.t0) infinity roots
    in
    let base = if base = infinity then 0. else base in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let rec emit sp =
      if !first then first := false else Buffer.add_char b ',';
      let us t = (t -. base) *. 1e6 in
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":1"
           (escape sp.Span.sname) (us sp.Span.t0)
           (us sp.Span.t1 -. us sp.Span.t0));
      if sp.Span.ops <> [||] && not (Metrics.is_zero sp.Span.ops) then begin
        Buffer.add_string b ",\"args\":{";
        let firsta = ref true in
        List.iter
          (fun (op, v) ->
            if v <> 0 then begin
              if !firsta then firsta := false else Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "\"%s\":%d" (Metrics.name op) v)
            end)
          (Metrics.to_alist sp.Span.ops);
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}';
      List.iter emit (Span.children sp)
    in
    List.iter emit roots;
    Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents b

  let write c ~file =
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string c))
end

(* ---- named metric registry --------------------------------------------- *)

(* A process-wide (or per-server) registry of named counters, gauges and
   histograms, designed to be scraped while worker domains are mutating
   it: every mutation and the snapshot hold the registry mutex, so a
   scrape never observes a torn histogram (count drifted from buckets).
   The critical sections are a handful of integer writes — contention is
   negligible next to a query's crypto work.  Snapshots are plain data
   ([(string * metric) list], sorted by name) so the wire codec and the
   JSON/Prometheus emitters need no access to live registries. *)
module Registry = struct
  type histdata = {
    hcount : int;
    hsum : int;
    hmin : int;  (* 0 when empty *)
    hmax : int;
    (* (inclusive upper bound, count) per non-empty bucket, ascending *)
    hbuckets : (int * int) list;
  }

  type metric = Counter of int | Gauge of float | Histogram of histdata
  type snapshot = (string * metric) list

  type cell = C of int ref | G of float ref | H of Hist.t

  type t = { lock : Mutex.t; cells : (string, cell) Hashtbl.t }

  let create () = { lock = Mutex.create (); cells = Hashtbl.create 32 }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  type counter = { creg : t; c : int ref }
  type gauge = { greg : t; g : float ref }
  type histogram = { hreg : t; h : Hist.t }

  let cell_kind = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

  let find t name ~kind make =
    locked t (fun () ->
        match Hashtbl.find_opt t.cells name with
        | Some cell -> cell
        | None ->
          let cell = make () in
          Hashtbl.add t.cells name cell;
          cell)
    |> fun cell ->
    match cell with
    | c when cell_kind c = kind -> c
    | c ->
      invalid_arg
        (Printf.sprintf "Obs.Registry: %S already registered as a %s" name
           (cell_kind c))

  let counter t name =
    match find t name ~kind:"counter" (fun () -> C (ref 0)) with
    | C c -> { creg = t; c }
    | _ -> assert false

  let gauge t name =
    match find t name ~kind:"gauge" (fun () -> G (ref 0.)) with
    | G g -> { greg = t; g }
    | _ -> assert false

  let histogram t name =
    match find t name ~kind:"histogram" (fun () -> H (Hist.create ())) with
    | H h -> { hreg = t; h }
    | _ -> assert false

  let add c n = locked c.creg (fun () -> c.c := !(c.c) + n)
  let inc c = add c 1
  let counter_value c = locked c.creg (fun () -> !(c.c))
  let set g v = locked g.greg (fun () -> g.g := v)
  let add_gauge g v = locked g.greg (fun () -> g.g := !(g.g) +. v)
  let gauge_value g = locked g.greg (fun () -> !(g.g))
  let observe h v = locked h.hreg (fun () -> Hist.record h.h v)
  let observe_seconds h s = locked h.hreg (fun () -> Hist.record_seconds h.h s)
  let hist_count h = locked h.hreg (fun () -> Hist.count h.h)

  let histdata_of_hist h =
    {
      hcount = Hist.count h;
      hsum = Hist.sum h;
      hmin = Hist.min_value h;
      hmax = Hist.max_value h;
      hbuckets = Hist.buckets h;
    }

  let snapshot t : snapshot =
    locked t (fun () ->
        Hashtbl.fold
          (fun name cell acc ->
            let m =
              match cell with
              | C c -> Counter !c
              | G g -> Gauge !g
              | H h -> Histogram (histdata_of_hist h)
            in
            (name, m) :: acc)
          t.cells [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* Op counters folded into snapshot form, for scrape paths that also
     expose a [Metrics.t] (the S2 daemon's per-connection collectors). *)
  let metrics_counters ?(prefix = "op_") (m : Metrics.t) : snapshot =
    List.map (fun (op, v) -> (prefix ^ Metrics.name op, Counter v)) (Metrics.to_alist m)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let union (a : snapshot) (b : snapshot) : snapshot =
    List.sort (fun (x, _) (y, _) -> String.compare x y) (a @ b)

  (* Same estimator as [Hist.quantile], off snapshot data. *)
  let hist_quantile d q =
    if d.hcount = 0 then 0
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let rank =
        max 1 (min d.hcount (int_of_float (ceil (q *. float_of_int d.hcount))))
      in
      let rec walk seen = function
        | [] -> d.hmax
        | (upper, n) :: rest ->
          let seen = seen + n in
          if seen >= rank then min upper d.hmax else walk seen rest
      in
      max (walk 0 d.hbuckets) d.hmin
    end

  let hist_mean d = if d.hcount = 0 then 0. else float_of_int d.hsum /. float_of_int d.hcount

  (* Shortest float rendering that parses back exactly. *)
  let float_str f =
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

  (* ---- Prometheus text exposition ---- *)

  let to_prometheus (s : snapshot) =
    let b = Buffer.create 1024 in
    List.iter
      (fun (name, m) ->
        match m with
        | Counter v ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v)
        | Gauge v ->
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s gauge\n%s %s\n" name name (float_str v))
        | Histogram d ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
          let cum = ref 0 in
          List.iter
            (fun (upper, n) ->
              cum := !cum + n;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name upper !cum))
            d.hbuckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name d.hcount);
          Buffer.add_string b (Printf.sprintf "%s_sum %d\n" name d.hsum);
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" name d.hcount))
      s;
    Buffer.contents b

  (* ---- JSON snapshot codec ---- *)

  let json_escape = Chrome.escape

  let to_json (s : snapshot) =
    let b = Buffer.create 1024 in
    let sect kind keep emit =
      let first = ref true in
      Buffer.add_string b (Printf.sprintf "\"%s\":{" kind);
      List.iter
        (fun (name, m) ->
          match keep m with
          | None -> ()
          | Some v ->
            if !first then first := false else Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape name));
            emit v)
        s;
      Buffer.add_char b '}'
    in
    Buffer.add_char b '{';
    sect "counters"
      (function Counter v -> Some v | _ -> None)
      (fun v -> Buffer.add_string b (string_of_int v));
    Buffer.add_char b ',';
    sect "gauges"
      (function Gauge v -> Some v | _ -> None)
      (fun v -> Buffer.add_string b (float_str v));
    Buffer.add_char b ',';
    sect "histograms"
      (function Histogram d -> Some d | _ -> None)
      (fun d ->
        Buffer.add_string b
          (Printf.sprintf "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"buckets\":["
             d.hcount d.hsum d.hmin d.hmax);
        List.iteri
          (fun i (upper, n) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "[%d,%d]" upper n))
          d.hbuckets;
        Buffer.add_string b "]}");
    Buffer.add_char b '}';
    Buffer.contents b

  (* Strict recursive-descent parser for the machine-generated grammar
     above; any deviation raises [Invalid_argument].  Kept private to the
     snapshot codec — it is not a general JSON library. *)
  type jv =
    | Jobj of (string * jv) list
    | Jarr of jv list
    | Jstr of string
    | Jint of int
    | Jfloat of float

  let of_json text =
    let pos = ref 0 in
    let len = String.length text in
    let fail msg = invalid_arg ("Obs.Registry.of_json: " ^ msg) in
    let peek () = if !pos < len then Some text.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect ch =
      skip_ws ();
      match peek () with
      | Some c when c = ch -> advance ()
      | Some c -> fail (Printf.sprintf "expected %C, found %C" ch c)
      | None -> fail (Printf.sprintf "expected %C, found end of input" ch)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string";
        let c = text.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          (if !pos >= len then fail "unterminated escape";
           let e = text.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'u' ->
             if !pos + 4 > len then fail "truncated \\u escape";
             let hex = String.sub text !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
             in
             if code > 0xff then fail "\\u escape beyond latin-1"
             else Buffer.add_char b (Char.chr code)
           | _ -> fail "unknown escape");
          go ()
        | c when Char.code c < 0x20 -> fail "control character in string"
        | c ->
          Buffer.add_char b c;
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
        | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !pos = start then fail "expected a number";
      let s = String.sub text start (!pos - start) in
      if !is_float then
        Jfloat (try float_of_string s with _ -> fail "malformed float")
      else Jint (try int_of_string s with _ -> fail "malformed integer")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Jobj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' in object"
          in
          Jobj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Jarr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' in array"
          in
          Jarr (elements [])
        end
      | Some '"' -> Jstr (parse_string ())
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let root = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after snapshot";
    let as_int = function
      | Jint v -> v
      | _ -> fail "expected an integer"
    in
    let as_float = function
      | Jint v -> float_of_int v
      | Jfloat v -> v
      | _ -> fail "expected a number"
    in
    let field obj k =
      match List.assoc_opt k obj with
      | Some v -> v
      | None -> fail (Printf.sprintf "missing field %S" k)
    in
    match root with
    | Jobj sections ->
      let take kind conv =
        match List.assoc_opt kind sections with
        | Some (Jobj entries) -> List.map (fun (name, v) -> (name, conv v)) entries
        | Some _ -> fail (Printf.sprintf "%S is not an object" kind)
        | None -> fail (Printf.sprintf "missing section %S" kind)
      in
      let hist v =
        match v with
        | Jobj fields ->
          let buckets =
            match field fields "buckets" with
            | Jarr pairs ->
              List.map
                (function
                  | Jarr [ u; n ] -> (as_int u, as_int n)
                  | _ -> fail "bucket entries must be [upper, count] pairs")
                pairs
            | _ -> fail "\"buckets\" is not an array"
          in
          let d =
            {
              hcount = as_int (field fields "count");
              hsum = as_int (field fields "sum");
              hmin = as_int (field fields "min");
              hmax = as_int (field fields "max");
              hbuckets = buckets;
            }
          in
          if d.hcount < 0 || d.hsum < 0 then fail "negative histogram totals";
          if d.hcount <> List.fold_left (fun acc (_, n) -> acc + n) 0 buckets then
            fail "histogram count disagrees with bucket counts";
          Histogram d
        | _ -> fail "histogram entries must be objects"
      in
      union
        (take "counters" (fun v -> Counter (as_int v)))
        (union
           (take "gauges" (fun v -> Gauge (as_float v)))
           (take "histograms" hist))
    | _ -> fail "snapshot must be a JSON object"
end

(* ---- closed-form cost model -------------------------------------------- *)

(* Expected op counts for the paper's sub-protocols (Algorithms 3-8),
   parameterised by the EHL+ cell count [cells] (the paper's s), the seen
   bit-vector width [seen] (one slot per source list, m), and the
   serialized ciphertext sizes.  The tier-1 test in test/test_obs.ml
   asserts these match measured counters *exactly* on small instances. *)
module Cost_model = struct
  type params = {
    cells : int;  (* EHL+ cells per item, s *)
    seen : int;  (* seen-vector width, m *)
    ct : int;  (* Paillier ciphertext bytes (S2 keypair) *)
    own_ct : int;  (* Paillier ciphertext bytes (S1's own keypair) *)
    dj_ct : int;  (* Damgard-Jurik layer-2 ciphertext bytes *)
    req_base : int;  (* Wire request header bytes, excluding the label *)
    resp_base : int;  (* Wire response header bytes *)
  }

  type counts = {
    penc : int; pdec : int; pmul : int; prr : int;
    djenc : int; djdec : int; djmul : int; djrr : int;
    pool : int;  (* noise values taken from the rerandomizer pool *)
    bytes : int; msgs : int; rounds : int;
  }

  let zero =
    { penc = 0; pdec = 0; pmul = 0; prr = 0;
      djenc = 0; djdec = 0; djmul = 0; djrr = 0;
      pool = 0; bytes = 0; msgs = 0; rounds = 0 }

  let to_alist c =
    Metrics.
      [ (Paillier_enc, c.penc); (Paillier_dec, c.pdec); (Paillier_mul, c.pmul);
        (Paillier_rerand, c.prr); (Dj_enc, c.djenc); (Dj_dec, c.djdec);
        (Dj_mul, c.djmul); (Dj_rerand, c.djrr); (Rerand_pool, c.pool);
        (Bytes_sent, c.bytes); (Msgs, c.msgs); (Rounds, c.rounds) ]

  (* Bytes are measured from the Wire frames an rpc actually ships: a
     request costs [req_base + |label|] of header plus its payload, a
     response costs [resp_base] plus its payload; collection payloads add
     a 4-byte count prefix per list (wire.ml's closed forms). *)
  let req p ~label payload = p.req_base + String.length label + payload
  let resp p payload = p.resp_base + payload

  (* One batched rpc round over element payload lists ([Ctx.rpc_batch]'s
     framing): no elements → no traffic; a singleton delegates to a plain
     rpc; two or more ship one Batch/Batch_resp frame — a 4-byte count
     plus a tag byte per element on each side, one round, two messages. *)
  let batch_cost p ~label req_payloads resp_payloads =
    match (req_payloads, resp_payloads) with
    | [], [] -> (0, 0, 0)
    | [ rq ], [ rs ] -> (req p ~label rq + resp p rs, 2, 1)
    | _ ->
      let sum = List.fold_left (fun acc pl -> acc + 1 + pl) 4 in
      (req p ~label (sum req_payloads) + resp p (sum resp_payloads), 2, 1)

  (* Serialized scored item (count prefixes + fixed-width ciphertexts)
     and its escrow pack under S1's own key. *)
  let scored_b p = 8 + ((p.cells + 2 + p.seen) * p.ct)
  let pack_b p = 8 + ((p.cells + 2 + p.seen) * p.own_ct)

  (* EncCompare (blinded sign test): one homomorphic subtraction plus a
     blinding scalar_mul on S1, one signed decryption on S2; the rpc ships
     one ciphertext out and a sign byte back. *)
  let enc_compare p =
    { zero with
      pmul = 2;
      pdec = 1;
      bytes = req p ~label:"EncCompare" p.ct + resp p 1;
      msgs = 2;
      rounds = 1 }

  (* SecWorst (Alg. 4) against [others] candidate lists: an EHL+ diff
     (2 scalar_muls per cell) per other batched into one equality round,
     then every select+recover in one batch round. *)
  let sec_worst p ~others:j =
    let label = "SecWorst" in
    let rec_b, rec_m, rec_r =
      batch_cost p ~label
        (List.init j (fun _ -> p.dj_ct))
        (List.init j (fun _ -> p.ct))
    in
    { zero with
      penc = j;
      pdec = j;
      pmul = (2 * p.cells * j) + j;
      djenc = j;
      djdec = j;
      djmul = 4 * j;
      bytes = req p ~label (4 + (j * p.ct)) + resp p (4 + (j * p.dj_ct)) + rec_b;
      msgs = 2 + rec_m;
      rounds = 1 + rec_r }

  (* SecBest (Alg. 5) over all source lists at once, [prefixes] holding
     each list's scanned-prefix length: one Equality batch across the
     lists (an e = 0 list still ships its empty element), then one
     Recover batch across the non-empty lists — two rounds total,
     regardless of list count and depth. *)
  let sec_best p ~prefixes =
    let label = "SecBest" in
    let ops =
      List.fold_left
        (fun acc e ->
          if e = 0 then acc
          else
            { acc with
              penc = acc.penc + 1;
              pdec = acc.pdec + e;
              pmul = acc.pmul + (2 * p.cells * e) + 1;
              djenc = acc.djenc + e;
              djdec = acc.djdec + 1;
              djmul = acc.djmul + e + 3 })
        zero prefixes
    in
    let eq_b, eq_m, eq_r =
      batch_cost p ~label
        (List.map (fun e -> 4 + (e * p.ct)) prefixes)
        (List.map (fun e -> 4 + (e * p.dj_ct)) prefixes)
    in
    let nonempty = List.filter (fun e -> e > 0) prefixes in
    let rc_b, rc_m, rc_r =
      batch_cost p ~label
        (List.map (fun _ -> p.dj_ct) nonempty)
        (List.map (fun _ -> p.ct) nonempty)
    in
    { ops with
      bytes = eq_b + rc_b;
      msgs = eq_m + rc_m;
      rounds = eq_r + rc_r }

  (* SecDedup (Alg. 6/7) over [items] candidates of which [dups] are
     non-keeper duplicates: pairwise EHL+ diffs and masked items travel in
     one Dedup rpc (1 mode byte, count-prefixed matrix and item lists);
     S2 decrypts the matrix, re-masks (and in Replace mode synthesises
     replacements), S1 unmasks the survivors. *)
  let sec_dedup p ~mode ~items:l ~dups:d =
    if l = 0 then zero
    else begin
      let pairs = l * (l - 1) / 2 in
      let cell = p.cells + 2 + p.seen in
      let item_b = scored_b p + pack_b p in
      let kept = l - d in
      let out = match mode with `Replace -> l | `Eliminate -> kept in
      { zero with
        pmul = (2 * p.cells * pairs) + (out * (2 + p.seen));
        pdec = pairs + (out * cell);
        penc =
          (2 * cell * l)
          + (2 * cell * kept)
          + (match mode with `Replace -> 2 * cell * d | `Eliminate -> 0)
          + (out * cell);
        bytes =
          req p ~label:"SecDedup" (1 + (4 + (pairs * p.ct)) + (4 + (l * item_b)))
          + resp p (4 + (out * item_b));
        msgs = 2;
        rounds = 1 }
    end

  (* EncSort, blinded strategy, over [items] scored candidates: blind +
     encrypt + signed-decrypt per item, full re-randomization on return
     (every noise factor drawn from S2's precomputed pool); one
     Sort_items rpc carries keys + items out and the sorted items back. *)
  let enc_sort_blinded p ~items:l =
    let cell = p.cells + 2 + p.seen in
    { zero with
      penc = l;
      pdec = l;
      pmul = l;
      prr = l * cell;
      pool = l * cell;
      bytes =
        req p ~label:"EncSort" (4 + (l * p.ct) + 4 + (l * scored_b p))
        + resp p (4 + (l * scored_b p));
      msgs = 2;
      rounds = 1 }
end
