(* Observability substrate: op counters, hierarchical timed spans, a
   per-protocol report, Chrome trace-event export, and a closed-form cost
   model for the paper's sub-protocols.

   Design constraints:

   - No dependency on the rest of the tree (only [unix]), so even
     [lib/bignum] can bump counters.
   - Hooks are free when disabled: [bump] is a flag test and a return.
   - A "current collector" lives in domain-local storage; entry points
     ([Query.run], [Sec_join.top_k], ...) install the context's collector,
     and [Ctx.parallel] installs a fresh collector per task, merging them
     back in task-index order.  Counters, bytes, rounds and the span tree
     are therefore byte-identical for every [--domains] width; only wall
     times differ, and the canonical rendering ([Report.render ~times:false])
     excludes them. *)

module Metrics = struct
  type op =
    | Paillier_enc
    | Paillier_dec
    | Paillier_mul
    | Paillier_rerand
    | Dj_enc
    | Dj_dec
    | Dj_mul
    | Dj_rerand
    | Modexp
    | Modexp_fixed_base
    | Prf_eval
    | Rerand_pool
    | Bytes_sent
    | Msgs
    | Rounds
    | Store_read_bytes
    | Cache_hit
    | Cache_miss

  let n_ops = 18

  let index = function
    | Paillier_enc -> 0
    | Paillier_dec -> 1
    | Paillier_mul -> 2
    | Paillier_rerand -> 3
    | Dj_enc -> 4
    | Dj_dec -> 5
    | Dj_mul -> 6
    | Dj_rerand -> 7
    | Modexp -> 8
    | Prf_eval -> 9
    | Rerand_pool -> 10
    | Bytes_sent -> 11
    | Msgs -> 12
    | Rounds -> 13
    | Store_read_bytes -> 14
    | Cache_hit -> 15
    | Cache_miss -> 16
    | Modexp_fixed_base -> 17

  let all =
    [ Paillier_enc; Paillier_dec; Paillier_mul; Paillier_rerand;
      Dj_enc; Dj_dec; Dj_mul; Dj_rerand;
      Modexp; Modexp_fixed_base; Prf_eval; Rerand_pool; Bytes_sent; Msgs; Rounds;
      Store_read_bytes; Cache_hit; Cache_miss ]

  let name = function
    | Paillier_enc -> "paillier_encrypt"
    | Paillier_dec -> "paillier_decrypt"
    | Paillier_mul -> "paillier_scalar_mul"
    | Paillier_rerand -> "paillier_rerand"
    | Dj_enc -> "dj_encrypt"
    | Dj_dec -> "dj_decrypt"
    | Dj_mul -> "dj_scalar_mul"
    | Dj_rerand -> "dj_rerand"
    | Modexp -> "modexp"
    | Modexp_fixed_base -> "modexp_fixed_base"
    | Prf_eval -> "prf"
    | Rerand_pool -> "rerand_pool"
    | Bytes_sent -> "bytes"
    | Msgs -> "messages"
    | Rounds -> "rounds"
    | Store_read_bytes -> "store_read_bytes"
    | Cache_hit -> "cache_hit"
    | Cache_miss -> "cache_miss"

  type t = int array

  let create () : t = Array.make n_ops 0
  let get (t : t) op = t.(index op)
  let add (t : t) op n = t.(index op) <- t.(index op) + n
  let snapshot (t : t) = Array.copy t
  let sub (a : t) (b : t) : t = Array.init n_ops (fun i -> a.(i) - b.(i))
  let merge_into (src : t) ~(into : t) =
    for i = 0 to n_ops - 1 do
      into.(i) <- into.(i) + src.(i)
    done
  let is_zero (t : t) = Array.for_all (fun c -> c = 0) t
  let to_alist (t : t) = List.map (fun op -> (op, get t op)) all
end

module Span = struct
  type t = {
    sname : string;
    mutable t0 : float;
    mutable t1 : float;
    (* inclusive op-count delta over the span, filled at exit *)
    mutable ops : Metrics.t;
    mutable rev_children : t list;
  }

  let name s = s.sname
  let seconds s = s.t1 -. s.t0
  let ops s = s.ops
  let children s = List.rev s.rev_children
end

module Collector = struct
  type t = {
    metrics : Metrics.t;
    mutable rev_roots : Span.t list;
    (* open spans, innermost first, with the counter snapshot at entry *)
    mutable stack : (Span.t * Metrics.t) list;
  }

  let create () = { metrics = Metrics.create (); rev_roots = []; stack = [] }
  let metrics t = t.metrics
  let roots t = List.rev t.rev_roots

  let enter t name =
    let sp =
      { Span.sname = name; t0 = Unix.gettimeofday (); t1 = 0.;
        ops = [||]; rev_children = [] }
    in
    (match t.stack with
    | (parent, _) :: _ -> parent.Span.rev_children <- sp :: parent.Span.rev_children
    | [] -> t.rev_roots <- sp :: t.rev_roots);
    t.stack <- (sp, Metrics.snapshot t.metrics) :: t.stack

  let exit t =
    match t.stack with
    | [] -> invalid_arg "Obs.Collector.exit: no open span"
    | (sp, snap) :: rest ->
      sp.Span.t1 <- Unix.gettimeofday ();
      sp.Span.ops <- Metrics.sub t.metrics snap;
      t.stack <- rest

  (* Merge a finished collector into [into]: counters are summed and
     [src]'s root spans become children of [into]'s innermost open span
     (or roots).  Called in task-index order by [Ctx.parallel], so the
     resulting tree is independent of the domain-pool width. *)
  let merge_into src ~into =
    if src.stack <> [] then invalid_arg "Obs.Collector.merge_into: open span in source";
    Metrics.merge_into src.metrics ~into:into.metrics;
    let adopt sp =
      match into.stack with
      | (parent, _) :: _ ->
        parent.Span.rev_children <- sp :: parent.Span.rev_children
      | [] -> into.rev_roots <- sp :: into.rev_roots
    in
    List.iter adopt (roots src)

  let is_empty t =
    Metrics.is_zero t.metrics && t.rev_roots = [] && t.stack = []
end

(* ---- global switch and current collector ------------------------------- *)

let enabled =
  ref
    (match Sys.getenv_opt "OBS_ENABLED" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_enabled b = enabled := b
let is_enabled () = !enabled

let current_key : Collector.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_key

let with_collector c f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

(* Install [c] only when no collector is already current: protocol entry
   points use this so an outer harness (bench) can capture everything. *)
let with_default c f =
  match current () with Some _ -> f () | None -> with_collector c f

let add op n =
  if !enabled then
    match current () with Some c -> Metrics.add c.Collector.metrics op n | None -> ()

let bump op = add op 1

let span name f =
  if not !enabled then f ()
  else
    match current () with
    | None -> f ()
    | Some c ->
      Collector.enter c name;
      Fun.protect ~finally:(fun () -> Collector.exit c) f

(* ---- timing ------------------------------------------------------------ *)

module Timer = struct
  let now () = Unix.gettimeofday ()

  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)

  (* mean seconds per call over [n] runs *)
  let per_call ~n f =
    let t0 = now () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    (now () -. t0) /. float_of_int n
end

(* ---- pretty per-protocol report ---------------------------------------- *)

module Report = struct
  type row = {
    rname : string;
    mutable calls : int;
    mutable wall : float;
    rops : Metrics.t;
  }

  (* Aggregate spans by name, ordered by first pre-order appearance.
     Only a span's *exclusive* contribution to each named row would be
     ambiguous once protocols nest, so rows carry the inclusive delta of
     every span with that name; nested same-name spans do not occur in
     this codebase's hierarchy. *)
  let rows c =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    let rec walk sp =
      let r =
        match Hashtbl.find_opt tbl sp.Span.sname with
        | Some r -> r
        | None ->
          let r =
            { rname = sp.Span.sname; calls = 0; wall = 0.; rops = Metrics.create () }
          in
          Hashtbl.add tbl sp.Span.sname r;
          order := r :: !order;
          r
      in
      r.calls <- r.calls + 1;
      r.wall <- r.wall +. Span.seconds sp;
      if sp.Span.ops <> [||] then Metrics.merge_into sp.Span.ops ~into:r.rops;
      List.iter walk (Span.children sp)
    in
    List.iter walk (Collector.roots c);
    List.rev !order

  let render ?(times = true) c =
    let b = Buffer.create 1024 in
    let open Metrics in
    let cols =
      [ ("calls", fun r -> string_of_int r.calls);
        ("P.enc", fun r -> string_of_int (get r.rops Paillier_enc));
        ("P.dec", fun r -> string_of_int (get r.rops Paillier_dec));
        ("P.mul", fun r -> string_of_int (get r.rops Paillier_mul));
        ("P.rr", fun r -> string_of_int (get r.rops Paillier_rerand));
        ("DJ.enc", fun r -> string_of_int (get r.rops Dj_enc));
        ("DJ.dec", fun r -> string_of_int (get r.rops Dj_dec));
        ("DJ.mul", fun r -> string_of_int (get r.rops Dj_mul));
        ("bytes", fun r -> string_of_int (get r.rops Bytes_sent));
        ("rounds", fun r -> string_of_int (get r.rops Rounds)) ]
      @ (if times then [ ("wall(s)", fun r -> Printf.sprintf "%.3f" r.wall) ] else [])
    in
    let rows = rows c in
    let name_w =
      List.fold_left (fun w r -> max w (String.length r.rname)) (String.length "span") rows
    in
    let widths =
      List.map
        (fun (h, f) ->
          List.fold_left (fun w r -> max w (String.length (f r))) (String.length h) rows)
        cols
    in
    Buffer.add_string b (Printf.sprintf "%-*s" name_w "span");
    List.iter2
      (fun (h, _) w -> Buffer.add_string b (Printf.sprintf "  %*s" w h))
      cols widths;
    Buffer.add_char b '\n';
    List.iter
      (fun r ->
        Buffer.add_string b (Printf.sprintf "%-*s" name_w r.rname);
        List.iter2
          (fun (_, f) w -> Buffer.add_string b (Printf.sprintf "  %*s" w (f r)))
          cols widths;
        Buffer.add_char b '\n')
      rows;
    let m = Collector.metrics c in
    Buffer.add_string b "totals:";
    List.iter
      (fun op ->
        let v = get m op in
        if v <> 0 then Buffer.add_string b (Printf.sprintf " %s=%d" (name op) v))
      all;
    Buffer.add_char b '\n';
    Buffer.contents b

  let print ?times c = print_string (render ?times c)
end

(* ---- Chrome trace-event export ----------------------------------------- *)

module Chrome = struct
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Complete ("X") events, one per span, timestamps in microseconds
     relative to the earliest root.  Spans merged from parallel tasks may
     overlap in time on the single track; Perfetto renders them stacked. *)
  let to_string c =
    let roots = Collector.roots c in
    let base =
      List.fold_left (fun m sp -> min m sp.Span.t0) infinity roots
    in
    let base = if base = infinity then 0. else base in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let rec emit sp =
      if !first then first := false else Buffer.add_char b ',';
      let us t = (t -. base) *. 1e6 in
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":1"
           (escape sp.Span.sname) (us sp.Span.t0)
           (us sp.Span.t1 -. us sp.Span.t0));
      if sp.Span.ops <> [||] && not (Metrics.is_zero sp.Span.ops) then begin
        Buffer.add_string b ",\"args\":{";
        let firsta = ref true in
        List.iter
          (fun (op, v) ->
            if v <> 0 then begin
              if !firsta then firsta := false else Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "\"%s\":%d" (Metrics.name op) v)
            end)
          (Metrics.to_alist sp.Span.ops);
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}';
      List.iter emit (Span.children sp)
    in
    List.iter emit roots;
    Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents b

  let write c ~file =
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string c))
end

(* ---- closed-form cost model -------------------------------------------- *)

(* Expected op counts for the paper's sub-protocols (Algorithms 3-8),
   parameterised by the EHL+ cell count [cells] (the paper's s), the seen
   bit-vector width [seen] (one slot per source list, m), and the
   serialized ciphertext sizes.  The tier-1 test in test/test_obs.ml
   asserts these match measured counters *exactly* on small instances. *)
module Cost_model = struct
  type params = {
    cells : int;  (* EHL+ cells per item, s *)
    seen : int;  (* seen-vector width, m *)
    ct : int;  (* Paillier ciphertext bytes (S2 keypair) *)
    own_ct : int;  (* Paillier ciphertext bytes (S1's own keypair) *)
    dj_ct : int;  (* Damgard-Jurik layer-2 ciphertext bytes *)
    req_base : int;  (* Wire request header bytes, excluding the label *)
    resp_base : int;  (* Wire response header bytes *)
  }

  type counts = {
    penc : int; pdec : int; pmul : int; prr : int;
    djenc : int; djdec : int; djmul : int; djrr : int;
    pool : int;  (* noise values taken from the rerandomizer pool *)
    bytes : int; msgs : int; rounds : int;
  }

  let zero =
    { penc = 0; pdec = 0; pmul = 0; prr = 0;
      djenc = 0; djdec = 0; djmul = 0; djrr = 0;
      pool = 0; bytes = 0; msgs = 0; rounds = 0 }

  let to_alist c =
    Metrics.
      [ (Paillier_enc, c.penc); (Paillier_dec, c.pdec); (Paillier_mul, c.pmul);
        (Paillier_rerand, c.prr); (Dj_enc, c.djenc); (Dj_dec, c.djdec);
        (Dj_mul, c.djmul); (Dj_rerand, c.djrr); (Rerand_pool, c.pool);
        (Bytes_sent, c.bytes); (Msgs, c.msgs); (Rounds, c.rounds) ]

  (* Bytes are measured from the Wire frames an rpc actually ships: a
     request costs [req_base + |label|] of header plus its payload, a
     response costs [resp_base] plus its payload; collection payloads add
     a 4-byte count prefix per list (wire.ml's closed forms). *)
  let req p ~label payload = p.req_base + String.length label + payload
  let resp p payload = p.resp_base + payload

  (* One batched rpc round over element payload lists ([Ctx.rpc_batch]'s
     framing): no elements → no traffic; a singleton delegates to a plain
     rpc; two or more ship one Batch/Batch_resp frame — a 4-byte count
     plus a tag byte per element on each side, one round, two messages. *)
  let batch_cost p ~label req_payloads resp_payloads =
    match (req_payloads, resp_payloads) with
    | [], [] -> (0, 0, 0)
    | [ rq ], [ rs ] -> (req p ~label rq + resp p rs, 2, 1)
    | _ ->
      let sum = List.fold_left (fun acc pl -> acc + 1 + pl) 4 in
      (req p ~label (sum req_payloads) + resp p (sum resp_payloads), 2, 1)

  (* Serialized scored item (count prefixes + fixed-width ciphertexts)
     and its escrow pack under S1's own key. *)
  let scored_b p = 8 + ((p.cells + 2 + p.seen) * p.ct)
  let pack_b p = 8 + ((p.cells + 2 + p.seen) * p.own_ct)

  (* EncCompare (blinded sign test): one homomorphic subtraction plus a
     blinding scalar_mul on S1, one signed decryption on S2; the rpc ships
     one ciphertext out and a sign byte back. *)
  let enc_compare p =
    { zero with
      pmul = 2;
      pdec = 1;
      bytes = req p ~label:"EncCompare" p.ct + resp p 1;
      msgs = 2;
      rounds = 1 }

  (* SecWorst (Alg. 4) against [others] candidate lists: an EHL+ diff
     (2 scalar_muls per cell) per other batched into one equality round,
     then every select+recover in one batch round. *)
  let sec_worst p ~others:j =
    let label = "SecWorst" in
    let rec_b, rec_m, rec_r =
      batch_cost p ~label
        (List.init j (fun _ -> p.dj_ct))
        (List.init j (fun _ -> p.ct))
    in
    { zero with
      penc = j;
      pdec = j;
      pmul = (2 * p.cells * j) + j;
      djenc = j;
      djdec = j;
      djmul = 4 * j;
      bytes = req p ~label (4 + (j * p.ct)) + resp p (4 + (j * p.dj_ct)) + rec_b;
      msgs = 2 + rec_m;
      rounds = 1 + rec_r }

  (* SecBest (Alg. 5) over all source lists at once, [prefixes] holding
     each list's scanned-prefix length: one Equality batch across the
     lists (an e = 0 list still ships its empty element), then one
     Recover batch across the non-empty lists — two rounds total,
     regardless of list count and depth. *)
  let sec_best p ~prefixes =
    let label = "SecBest" in
    let ops =
      List.fold_left
        (fun acc e ->
          if e = 0 then acc
          else
            { acc with
              penc = acc.penc + 1;
              pdec = acc.pdec + e;
              pmul = acc.pmul + (2 * p.cells * e) + 1;
              djenc = acc.djenc + e;
              djdec = acc.djdec + 1;
              djmul = acc.djmul + e + 3 })
        zero prefixes
    in
    let eq_b, eq_m, eq_r =
      batch_cost p ~label
        (List.map (fun e -> 4 + (e * p.ct)) prefixes)
        (List.map (fun e -> 4 + (e * p.dj_ct)) prefixes)
    in
    let nonempty = List.filter (fun e -> e > 0) prefixes in
    let rc_b, rc_m, rc_r =
      batch_cost p ~label
        (List.map (fun _ -> p.dj_ct) nonempty)
        (List.map (fun _ -> p.ct) nonempty)
    in
    { ops with
      bytes = eq_b + rc_b;
      msgs = eq_m + rc_m;
      rounds = eq_r + rc_r }

  (* SecDedup (Alg. 6/7) over [items] candidates of which [dups] are
     non-keeper duplicates: pairwise EHL+ diffs and masked items travel in
     one Dedup rpc (1 mode byte, count-prefixed matrix and item lists);
     S2 decrypts the matrix, re-masks (and in Replace mode synthesises
     replacements), S1 unmasks the survivors. *)
  let sec_dedup p ~mode ~items:l ~dups:d =
    if l = 0 then zero
    else begin
      let pairs = l * (l - 1) / 2 in
      let cell = p.cells + 2 + p.seen in
      let item_b = scored_b p + pack_b p in
      let kept = l - d in
      let out = match mode with `Replace -> l | `Eliminate -> kept in
      { zero with
        pmul = (2 * p.cells * pairs) + (out * (2 + p.seen));
        pdec = pairs + (out * cell);
        penc =
          (2 * cell * l)
          + (2 * cell * kept)
          + (match mode with `Replace -> 2 * cell * d | `Eliminate -> 0)
          + (out * cell);
        bytes =
          req p ~label:"SecDedup" (1 + (4 + (pairs * p.ct)) + (4 + (l * item_b)))
          + resp p (4 + (out * item_b));
        msgs = 2;
        rounds = 1 }
    end

  (* EncSort, blinded strategy, over [items] scored candidates: blind +
     encrypt + signed-decrypt per item, full re-randomization on return
     (every noise factor drawn from S2's precomputed pool); one
     Sort_items rpc carries keys + items out and the sorted items back. *)
  let enc_sort_blinded p ~items:l =
    let cell = p.cells + 2 + p.seen in
    { zero with
      penc = l;
      pdec = l;
      pmul = l;
      prr = l * cell;
      pool = l * cell;
      bytes =
        req p ~label:"EncSort" (4 + (l * p.ct) + 4 + (l * scored_b p))
        + resp p (4 + (l * scored_b p));
      msgs = 2;
      rounds = 1 }
end
