(** Observability: op counters, hierarchical timed spans, reporting,
    Chrome trace export, and the closed-form protocol cost model.

    The subsystem is off by default (hooks cost one flag test); enable it
    with {!set_enabled} or the [OBS_ENABLED=1] environment variable.
    Counters and span trees are deterministic for every [--domains] width:
    only wall-clock times vary, and {!Report.render} can exclude them. *)

module Metrics : sig
  type op =
    | Paillier_enc
    | Paillier_dec
    | Paillier_mul
    | Paillier_rerand
    | Dj_enc
    | Dj_dec
    | Dj_mul
    | Dj_rerand
    | Modexp
    | Modexp_fixed_base  (** modexps answered from a precomputed comb table *)
    | Prf_eval
    | Rerand_pool  (** noise values taken from a precomputed pool *)
    | Bytes_sent
    | Msgs
    | Rounds
    | Store_read_bytes  (** bytes read from the on-disk index store *)
    | Cache_hit  (** store block-cache hits *)
    | Cache_miss  (** store block-cache misses (each implies a disk read) *)

  val all : op list
  val name : op -> string

  type t

  val create : unit -> t
  val get : t -> op -> int
  val add : t -> op -> int -> unit
  val snapshot : t -> t
  val sub : t -> t -> t
  val merge_into : t -> into:t -> unit
  val is_zero : t -> bool
  val to_alist : t -> (op * int) list
end

module Span : sig
  type t

  val name : t -> string
  val seconds : t -> float
  val ops : t -> Metrics.t
  val children : t -> t list
end

module Collector : sig
  type t

  val create : unit -> t
  val metrics : t -> Metrics.t
  val roots : t -> Span.t list

  val enter : t -> string -> unit
  val exit : t -> unit

  (** Sum [src]'s counters into [into] and graft [src]'s root spans under
      [into]'s innermost open span (or its roots).  [src] must have no
      open span.  Calling this in task-index order after a parallel
      section keeps the merged tree width-independent. *)
  val merge_into : t -> into:t -> unit

  val is_empty : t -> bool
end

(** Fixed-bucket log-scale histogram for latencies and sizes.

    Values 0..7 get exact buckets; every octave [2^e, 2^(e+1)) above is
    split into 8 equal sub-buckets, so any quantile read off the bucket
    upper bounds over-estimates the true sample quantile by at most
    12.5% (+1 for integer rounding).  Recording is allocation-free
    (one index computation, one increment); merging is element-wise
    addition, hence associative, commutative, and byte-identical across
    [--domains] widths.  A [t] is not itself thread-safe — share one via
    {!Registry} or merge per-domain instances. *)
module Hist : sig
  type t

  val create : unit -> t
  val clear : t -> unit

  (** Record a non-negative integer observation (negatives clamp to 0). *)
  val record : t -> int -> unit

  (** Record a duration as integer microseconds. *)
  val record_seconds : t -> float -> unit

  val count : t -> int
  val sum : t -> int
  val min_value : t -> int
  val max_value : t -> int
  val is_empty : t -> bool
  val mean : t -> float

  val merge_into : t -> into:t -> unit
  val snapshot : t -> t

  (** [(inclusive upper bound, count)] for every non-empty bucket,
      ascending. *)
  val buckets : t -> (int * int) list

  (** Upper bound of the bucket holding the [ceil (q * count)]-th
      smallest observation, clamped to the recorded extremes; [0] when
      empty. *)
  val quantile : t -> float -> int

  (** {!quantile} scaled back from microseconds to seconds, for
      histograms filled with {!record_seconds}. *)
  val quantile_seconds : t -> float -> float

  (** Bucket index / inclusive upper bound of the scheme — exposed for
      property tests. *)
  val bucket_index : int -> int

  val bucket_upper : int -> int
  val n_buckets : int
end

(** A named registry of counters, gauges and histograms with a
    Prometheus-style text exposition and a JSON snapshot codec.

    All mutations and {!Registry.snapshot} synchronise on one mutex, so
    a scrape taken while worker domains are recording never observes a
    torn histogram.  Registration is idempotent: asking for an existing
    name returns a handle to the same metric (re-registering a name as a
    different kind raises [Invalid_argument]). *)
module Registry : sig
  type histdata = {
    hcount : int;
    hsum : int;
    hmin : int;  (** 0 when empty *)
    hmax : int;
    hbuckets : (int * int) list;
        (** [(inclusive upper bound, count)], ascending, non-empty
            buckets only *)
  }

  type metric = Counter of int | Gauge of float | Histogram of histdata

  (** Sorted by metric name. *)
  type snapshot = (string * metric) list

  type t
  type counter
  type gauge
  type histogram

  val create : unit -> t
  val counter : t -> string -> counter
  val gauge : t -> string -> gauge
  val histogram : t -> string -> histogram

  val inc : counter -> unit
  val add : counter -> int -> unit
  val counter_value : counter -> int

  val set : gauge -> float -> unit
  val add_gauge : gauge -> float -> unit
  val gauge_value : gauge -> float

  val observe : histogram -> int -> unit
  val observe_seconds : histogram -> float -> unit
  val hist_count : histogram -> int

  val snapshot : t -> snapshot

  (** Op counters as snapshot entries ([prefix ^ Metrics.name op],
      default prefix ["op_"]), for scrape paths that also expose a
      {!Metrics.t}. *)
  val metrics_counters : ?prefix:string -> Metrics.t -> snapshot

  (** Concatenate and re-sort two snapshots. *)
  val union : snapshot -> snapshot -> snapshot

  (** {!Hist.quantile} computed from snapshot data. *)
  val hist_quantile : histdata -> float -> int

  val hist_mean : histdata -> float

  (** Prometheus text exposition: [# TYPE] lines, cumulative
      [_bucket{le="..."}] series plus [_sum]/[_count] per histogram. *)
  val to_prometheus : snapshot -> string

  val to_json : snapshot -> string

  (** Strict parser for {!to_json} output; raises [Invalid_argument] on
      any malformed input (including histogram bucket counts that do not
      sum to [count]). *)
  val of_json : string -> snapshot
end

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val current : unit -> Collector.t option

(** [with_collector c f] makes [c] the current domain's collector for the
    duration of [f] (restored afterwards, also on exceptions). *)
val with_collector : Collector.t -> (unit -> 'a) -> 'a

(** Like {!with_collector}, but a no-op when a collector is already
    installed — used by protocol entry points so that an outer harness
    keeps capturing. *)
val with_default : Collector.t -> (unit -> 'a) -> 'a

(** Increment an op counter on the current collector (no-op when disabled
    or no collector is installed). *)
val bump : Metrics.op -> unit

val add : Metrics.op -> int -> unit

(** [span name f] runs [f] inside a named timed span on the current
    collector; records wall time and the inclusive op-count delta. *)
val span : string -> (unit -> 'a) -> 'a

module Timer : sig
  val now : unit -> float

  (** [time f] is [(f (), elapsed_seconds)]. *)
  val time : (unit -> 'a) -> 'a * float

  (** [per_call ~n f] is the mean wall time of one call to [f] over [n]
      runs. *)
  val per_call : n:int -> (unit -> 'a) -> float
end

module Report : sig
  type row = {
    rname : string;
    mutable calls : int;
    mutable wall : float;
    rops : Metrics.t;
  }

  (** Spans aggregated by name, in order of first pre-order appearance. *)
  val rows : Collector.t -> row list

  (** Render the per-protocol table plus a totals line.  With
      [~times:false] the output contains no wall-clock values and is
      byte-identical across [--domains] widths. *)
  val render : ?times:bool -> Collector.t -> string

  val print : ?times:bool -> Collector.t -> unit
end

module Chrome : sig
  (** Chrome trace-event JSON ([{"traceEvents":[...]}]); loadable in
      Perfetto / chrome://tracing.  One complete ("X") event per span with
      non-zero op counts in [args]. *)
  val to_string : Collector.t -> string

  val write : Collector.t -> file:string -> unit
end

module Cost_model : sig
  type params = {
    cells : int;  (** EHL+ cells per item (the paper's s) *)
    seen : int;  (** seen-vector width (number of source lists, m) *)
    ct : int;  (** Paillier ciphertext bytes under the S2 keypair *)
    own_ct : int;  (** Paillier ciphertext bytes under S1's own keypair *)
    dj_ct : int;  (** Damgard-Jurik layer-2 ciphertext bytes *)
    req_base : int;
        (** Wire request-frame header bytes excluding the label
            ([Wire.request_header_bytes ~label:""]) *)
    resp_base : int;  (** Wire response-frame header bytes *)
  }

  type counts = {
    penc : int; pdec : int; pmul : int; prr : int;
    djenc : int; djdec : int; djmul : int; djrr : int;
    pool : int;  (** noise values taken from the rerandomizer pool *)
    bytes : int; msgs : int; rounds : int;
  }

  val zero : counts
  val to_alist : counts -> (Metrics.op * int) list

  val enc_compare : params -> counts
  val sec_worst : params -> others:int -> counts
  val sec_best : params -> prefixes:int list -> counts

  val sec_dedup :
    params -> mode:[ `Replace | `Eliminate ] -> items:int -> dups:int -> counts

  val enc_sort_blinded : params -> items:int -> counts
end
