(** Observability: op counters, hierarchical timed spans, reporting,
    Chrome trace export, and the closed-form protocol cost model.

    The subsystem is off by default (hooks cost one flag test); enable it
    with {!set_enabled} or the [OBS_ENABLED=1] environment variable.
    Counters and span trees are deterministic for every [--domains] width:
    only wall-clock times vary, and {!Report.render} can exclude them. *)

module Metrics : sig
  type op =
    | Paillier_enc
    | Paillier_dec
    | Paillier_mul
    | Paillier_rerand
    | Dj_enc
    | Dj_dec
    | Dj_mul
    | Dj_rerand
    | Modexp
    | Modexp_fixed_base  (** modexps answered from a precomputed comb table *)
    | Prf_eval
    | Rerand_pool  (** noise values taken from a precomputed pool *)
    | Bytes_sent
    | Msgs
    | Rounds
    | Store_read_bytes  (** bytes read from the on-disk index store *)
    | Cache_hit  (** store block-cache hits *)
    | Cache_miss  (** store block-cache misses (each implies a disk read) *)

  val all : op list
  val name : op -> string

  type t

  val create : unit -> t
  val get : t -> op -> int
  val add : t -> op -> int -> unit
  val snapshot : t -> t
  val sub : t -> t -> t
  val merge_into : t -> into:t -> unit
  val is_zero : t -> bool
  val to_alist : t -> (op * int) list
end

module Span : sig
  type t

  val name : t -> string
  val seconds : t -> float
  val ops : t -> Metrics.t
  val children : t -> t list
end

module Collector : sig
  type t

  val create : unit -> t
  val metrics : t -> Metrics.t
  val roots : t -> Span.t list

  val enter : t -> string -> unit
  val exit : t -> unit

  (** Sum [src]'s counters into [into] and graft [src]'s root spans under
      [into]'s innermost open span (or its roots).  [src] must have no
      open span.  Calling this in task-index order after a parallel
      section keeps the merged tree width-independent. *)
  val merge_into : t -> into:t -> unit

  val is_empty : t -> bool
end

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val current : unit -> Collector.t option

(** [with_collector c f] makes [c] the current domain's collector for the
    duration of [f] (restored afterwards, also on exceptions). *)
val with_collector : Collector.t -> (unit -> 'a) -> 'a

(** Like {!with_collector}, but a no-op when a collector is already
    installed — used by protocol entry points so that an outer harness
    keeps capturing. *)
val with_default : Collector.t -> (unit -> 'a) -> 'a

(** Increment an op counter on the current collector (no-op when disabled
    or no collector is installed). *)
val bump : Metrics.op -> unit

val add : Metrics.op -> int -> unit

(** [span name f] runs [f] inside a named timed span on the current
    collector; records wall time and the inclusive op-count delta. *)
val span : string -> (unit -> 'a) -> 'a

module Timer : sig
  val now : unit -> float

  (** [time f] is [(f (), elapsed_seconds)]. *)
  val time : (unit -> 'a) -> 'a * float

  (** [per_call ~n f] is the mean wall time of one call to [f] over [n]
      runs. *)
  val per_call : n:int -> (unit -> 'a) -> float
end

module Report : sig
  type row = {
    rname : string;
    mutable calls : int;
    mutable wall : float;
    rops : Metrics.t;
  }

  (** Spans aggregated by name, in order of first pre-order appearance. *)
  val rows : Collector.t -> row list

  (** Render the per-protocol table plus a totals line.  With
      [~times:false] the output contains no wall-clock values and is
      byte-identical across [--domains] widths. *)
  val render : ?times:bool -> Collector.t -> string

  val print : ?times:bool -> Collector.t -> unit
end

module Chrome : sig
  (** Chrome trace-event JSON ([{"traceEvents":[...]}]); loadable in
      Perfetto / chrome://tracing.  One complete ("X") event per span with
      non-zero op counts in [args]. *)
  val to_string : Collector.t -> string

  val write : Collector.t -> file:string -> unit
end

module Cost_model : sig
  type params = {
    cells : int;  (** EHL+ cells per item (the paper's s) *)
    seen : int;  (** seen-vector width (number of source lists, m) *)
    ct : int;  (** Paillier ciphertext bytes under the S2 keypair *)
    own_ct : int;  (** Paillier ciphertext bytes under S1's own keypair *)
    dj_ct : int;  (** Damgard-Jurik layer-2 ciphertext bytes *)
    req_base : int;
        (** Wire request-frame header bytes excluding the label
            ([Wire.request_header_bytes ~label:""]) *)
    resp_base : int;  (** Wire response-frame header bytes *)
  }

  type counts = {
    penc : int; pdec : int; pmul : int; prr : int;
    djenc : int; djdec : int; djmul : int; djrr : int;
    pool : int;  (** noise values taken from the rerandomizer pool *)
    bytes : int; msgs : int; rounds : int;
  }

  val zero : counts
  val to_alist : counts -> (Metrics.op * int) list

  val enc_compare : params -> counts
  val sec_worst : params -> others:int -> counts
  val sec_best : params -> prefixes:int list -> counts

  val sec_dedup :
    params -> mode:[ `Replace | `Eliminate ] -> items:int -> dups:int -> counts

  val enc_sort_blinded : params -> items:int -> counts
end
