(* Durable on-disk encrypted index: versioned manifest + per-list segment
   files + append-only update log.  See store.mli and DESIGN.md §4e for
   the format; the invariants that matter are

   - the MANIFEST rename is the only commit point (crash safety),
   - every artifact is CRC-checksummed and every failure is a typed
     [Error], never a garbage entry,
   - segment bodies are fixed-width records in depth order, so a list
     prefix loads without touching the rest of the file, and
   - a store-backed fetch returns bytes identical to the in-memory
     relation it was built from. *)

open Crypto

type error =
  | Missing of string
  | Bad_magic of string
  | Bad_version of { file : string; version : int }
  | Truncated of string
  | Corrupt of string
  | Key_mismatch of string

exception Error of error

let err e = raise (Error e)

let error_message = function
  | Missing f -> Printf.sprintf "missing file %s" f
  | Bad_magic f -> Printf.sprintf "%s: bad magic" f
  | Bad_version { file; version } -> Printf.sprintf "%s: unsupported version %d" file version
  | Truncated f -> Printf.sprintf "%s: truncated" f
  | Corrupt msg -> Printf.sprintf "corrupt store: %s" msg
  | Key_mismatch msg -> Printf.sprintf "key mismatch: %s" msg

let pp_error fmt e = Format.pp_print_string fmt (error_message e)

let version = 1
let manifest_magic = "STKM"
let segment_magic = "STKS"
let log_magic = "STKL"
let manifest_name = "MANIFEST"
let segment_name ~gen list = Printf.sprintf "seg_%d_%d.stk" gen list
let log_name ~gen = Printf.sprintf "updates_%d.log" gen

(* ---- binary primitives ------------------------------------------------- *)

let put_u32 buf v =
  if v < 0 || v > 0xffffffff then invalid_arg "Store: u32 out of range";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let u32_at file data pos =
  if pos + 4 > String.length data then err (Truncated file);
  (Char.code data.[pos] lsl 24)
  lor (Char.code data.[pos + 1] lsl 16)
  lor (Char.code data.[pos + 2] lsl 8)
  lor Char.code data.[pos + 3]

type reader = { file : string; data : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.data then err (Truncated r.file)

let get_u32 r =
  let v = u32_at r.file r.data r.pos in
  r.pos <- r.pos + 4;
  v

let get_bytes r n =
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let put_nat_fixed buf ~width n =
  let b = Bignum.Nat.to_bytes n in
  if String.length b > width then invalid_arg "Store: value wider than field";
  Buffer.add_string buf (String.make (width - String.length b) '\000');
  Buffer.add_string buf b

(* Record layout (Codec's relation cell order): s EHL+ cells, then the
   score; each a big-endian natural padded to the ciphertext width. *)
let encode_entry buf ~width (e : Proto.Enc_item.entry) =
  Array.iter
    (fun c -> put_nat_fixed buf ~width (Paillier.to_nat c))
    (Ehl.Ehl_plus.cells e.Proto.Enc_item.ehl);
  put_nat_fixed buf ~width (Paillier.to_nat e.Proto.Enc_item.score)

let decode_entry pub ~s ~width data pos =
  let nat i = Bignum.Nat.of_bytes (String.sub data (pos + (i * width)) width) in
  let cells = Array.init s (fun i -> Paillier.of_nat pub (nat i)) in
  let score = Paillier.of_nat pub (nat s) in
  { Proto.Enc_item.ehl = Ehl.Ehl_plus.of_cells cells; score }

(* ---- file helpers ------------------------------------------------------ *)

let really_read fd file n =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then begin
      let r = try Unix.read fd buf off (n - off) with Unix.Unix_error (EINTR, _, _) -> -1 in
      if r < 0 then go off
      else if r = 0 then err (Truncated file)
      else go (off + r)
    end
  in
  go 0;
  Bytes.unsafe_to_string buf

let read_whole_file path =
  let fd =
    try Unix.openfile path [ O_RDONLY ] 0
    with Unix.Unix_error (ENOENT, _, _) -> err (Missing path)
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).st_size in
      really_read fd path len)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

(* Atomic publish: temp file, fsync, rename.  The caller fsyncs the
   directory once after the batch of renames. *)
let write_file_atomic ~dir name data =
  let tmp = Filename.concat dir (name ^ ".tmp") in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
      write_all fd data;
      Unix.fsync fd);
  Unix.rename tmp (Filename.concat dir name)

let fsync_dir dir =
  match Unix.openfile dir [ O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
    Unix.close fd
  | exception Unix.Unix_error (_, _, _) -> ()

let file_size path = try (Unix.stat path).st_size with Unix.Unix_error (_, _, _) -> 0

(* ---- manifest ---------------------------------------------------------- *)

let fingerprint pub = Sha256.digest (Bignum.Nat.to_bytes pub.Paillier.n)

type manifest = {
  man_gen : int;
  man_key_bits : int;
  man_width : int;
  man_n : int;
  man_m : int;
  man_s : int;
  man_brec : int;
  man_fp : string;
  man_seg_crcs : int array;
}

let encode_manifest m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf manifest_magic;
  Buffer.add_char buf (Char.chr version);
  put_u32 buf m.man_gen;
  put_u32 buf m.man_key_bits;
  put_u32 buf m.man_width;
  put_u32 buf m.man_n;
  put_u32 buf m.man_m;
  put_u32 buf m.man_s;
  put_u32 buf m.man_brec;
  put_u32 buf (String.length m.man_fp);
  Buffer.add_string buf m.man_fp;
  Array.iter (put_u32 buf) m.man_seg_crcs;
  let body = Buffer.contents buf in
  put_u32 buf (Crc32.string body);
  Buffer.contents buf

let parse_manifest ~file data =
  let len = String.length data in
  if len < 4 then err (Truncated file);
  if String.sub data 0 4 <> manifest_magic then err (Bad_magic file);
  if len < 5 then err (Truncated file);
  let v = Char.code data.[4] in
  if v <> version then err (Bad_version { file; version = v });
  if len < 9 then err (Truncated file);
  (* whole-file checksum first, so any flipped byte reports as Corrupt
     rather than as whatever structural confusion it causes downstream *)
  let stored = u32_at file data (len - 4) in
  if Crc32.sub data ~pos:0 ~len:(len - 4) <> stored then
    err (Corrupt (file ^ ": manifest checksum mismatch"));
  let r = { file; data = String.sub data 0 (len - 4); pos = 5 } in
  let man_gen = get_u32 r in
  let man_key_bits = get_u32 r in
  let man_width = get_u32 r in
  let man_n = get_u32 r in
  let man_m = get_u32 r in
  let man_s = get_u32 r in
  let man_brec = get_u32 r in
  if man_n <= 0 || man_m <= 0 || man_s <= 0 || man_s > 64 || man_brec <= 0 || man_width <= 0
  then err (Corrupt (file ^ ": bad dimensions"));
  let fp_len = get_u32 r in
  if fp_len > 64 then err (Corrupt (file ^ ": bad fingerprint length"));
  let man_fp = get_bytes r fp_len in
  (* the CRC table must account for the rest of the file exactly, before
     any allocation is sized from [man_m] *)
  if String.length r.data - r.pos <> 4 * man_m then
    err (Corrupt (file ^ ": segment table disagrees with attribute count"));
  let man_seg_crcs = Array.init man_m (fun _ -> get_u32 r) in
  if r.pos <> String.length r.data then err (Corrupt (file ^ ": trailing bytes"));
  { man_gen; man_key_bits; man_width; man_n; man_m; man_s; man_brec; man_fp; man_seg_crcs }

let read_manifest ~dir =
  let path = Filename.concat dir manifest_name in
  parse_manifest ~file:path (read_whole_file path)

let check_key ~file pub m =
  if m.man_key_bits <> pub.Paillier.key_bits then
    err
      (Key_mismatch
         (Printf.sprintf "%s: built for a %d-bit key, opened with %d bits" file m.man_key_bits
            pub.Paillier.key_bits));
  if m.man_width <> Paillier.ciphertext_bytes pub then
    err (Key_mismatch (file ^ ": ciphertext width differs"));
  if not (String.equal m.man_fp (fingerprint pub)) then
    err (Key_mismatch (file ^ ": public-key fingerprint differs"))

(* ---- segments ---------------------------------------------------------- *)

(* Fixed part of a segment header, before the per-block CRC table. *)
let seg_prefix_bytes = 4 + 1 + (6 * 4)

let encode_segment ~gen ~list ~n ~rec_bytes ~brec body =
  let nblocks = (n + brec - 1) / brec in
  let buf = Buffer.create (seg_prefix_bytes + (4 * nblocks) + 4) in
  Buffer.add_string buf segment_magic;
  Buffer.add_char buf (Char.chr version);
  put_u32 buf gen;
  put_u32 buf list;
  put_u32 buf n;
  put_u32 buf rec_bytes;
  put_u32 buf brec;
  put_u32 buf nblocks;
  for b = 0 to nblocks - 1 do
    let first = b * brec in
    let count = min brec (n - first) in
    put_u32 buf (Crc32.sub body ~pos:(first * rec_bytes) ~len:(count * rec_bytes))
  done;
  let header = Buffer.contents buf in
  let hcrc = Crc32.string header in
  put_u32 buf hcrc;
  (Buffer.contents buf ^ body, hcrc)

type seg = {
  seg_fd : Unix.file_descr;
  seg_file : string;
  seg_header_bytes : int;
  seg_block_crcs : int array;
}

(* Open one segment file and validate its header against the manifest
   (which carries the expected header CRC, binding the published
   manifest to these exact segment bytes). *)
let open_segment ~dir man ~list =
  let name = segment_name ~gen:man.man_gen list in
  let path = Filename.concat dir name in
  let fd =
    try Unix.openfile path [ O_RDONLY ] 0
    with Unix.Unix_error (ENOENT, _, _) -> err (Missing path)
  in
  match
    let size = (Unix.fstat fd).st_size in
    if size < seg_prefix_bytes then err (Truncated path);
    let prefix = really_read fd path seg_prefix_bytes in
    if String.sub prefix 0 4 <> segment_magic then err (Bad_magic path);
    let v = Char.code prefix.[4] in
    if v <> version then err (Bad_version { file = path; version = v });
    let r = { file = path; data = prefix; pos = 5 } in
    let gen = get_u32 r in
    let list' = get_u32 r in
    let n = get_u32 r in
    let rec_bytes = get_u32 r in
    let brec = get_u32 r in
    let nblocks = get_u32 r in
    if gen <> man.man_gen || list' <> list then err (Corrupt (path ^ ": wrong generation or list"));
    if n <> man.man_n || brec <> man.man_brec then err (Corrupt (path ^ ": dimensions disagree with manifest"));
    if rec_bytes <> (man.man_s + 1) * man.man_width then err (Corrupt (path ^ ": record width disagrees with manifest"));
    if nblocks <> (n + brec - 1) / brec then err (Corrupt (path ^ ": bad block count"));
    let table_bytes = 4 * nblocks in
    if size < seg_prefix_bytes + table_bytes + 4 then err (Truncated path);
    let table = really_read fd path (table_bytes + 4) in
    let header = prefix ^ String.sub table 0 table_bytes in
    let hcrc = u32_at path table table_bytes in
    if Crc32.string header <> hcrc then err (Corrupt (path ^ ": header checksum mismatch"));
    if hcrc <> man.man_seg_crcs.(list) then
      err (Corrupt (path ^ ": header does not match the published manifest"));
    let header_bytes = seg_prefix_bytes + table_bytes + 4 in
    if size <> header_bytes + (n * rec_bytes) then err (Truncated path);
    let block_crcs = Array.init nblocks (fun b -> u32_at path table (4 * b)) in
    { seg_fd = fd; seg_file = path; seg_header_bytes = header_bytes; seg_block_crcs = block_crcs }
  with
  | seg -> seg
  | exception e ->
    Unix.close fd;
    raise e

(* ---- update log -------------------------------------------------------- *)

let log_header_bytes = 4 + 1 + 4 + 4

let encode_log_header ~gen =
  let buf = Buffer.create log_header_bytes in
  Buffer.add_string buf log_magic;
  Buffer.add_char buf (Char.chr version);
  put_u32 buf gen;
  put_u32 buf (Crc32.string (Buffer.contents buf));
  Buffer.contents buf

let log_payload_bytes ~m ~rec_bytes = 4 + (m * (4 + rec_bytes))

let encode_log_record ~seq ~rec_bytes ~width entries =
  let buf = Buffer.create 256 in
  put_u32 buf 0 (* patched below: payload length *);
  put_u32 buf seq;
  Array.iter
    (fun (pos, e) ->
      put_u32 buf pos;
      encode_entry buf ~width e)
    entries;
  let payload_len = Buffer.length buf - 4 in
  assert (payload_len = log_payload_bytes ~m:(Array.length entries) ~rec_bytes);
  let body = Buffer.to_bytes buf in
  Bytes.set body 0 (Char.chr ((payload_len lsr 24) land 0xff));
  Bytes.set body 1 (Char.chr ((payload_len lsr 16) land 0xff));
  Bytes.set body 2 (Char.chr ((payload_len lsr 8) land 0xff));
  Bytes.set body 3 (Char.chr (payload_len land 0xff));
  let body = Bytes.unsafe_to_string body in
  let buf2 = Buffer.create (String.length body + 4) in
  Buffer.add_string buf2 body;
  put_u32 buf2 (Crc32.sub body ~pos:4 ~len:payload_len);
  Buffer.contents buf2

(* Replay: complete checksummed records apply in order; a torn tail (a
   crash mid-append) is tolerated and ignored; a complete record with a
   bad checksum or bad structure is a typed error.  Returns the records
   and the byte offset of the end of the valid prefix, so the caller can
   truncate a torn tail before appending (the log fd is O_APPEND: a new
   record written after surviving garbage would be unreachable on the
   next replay). *)
let replay_log ~file data ~gen ~m ~s ~width pub =
  let len = String.length data in
  if len < 4 then err (Truncated file);
  if String.sub data 0 4 <> log_magic then err (Bad_magic file);
  if len < 5 then err (Truncated file);
  let v = Char.code data.[4] in
  if v <> version then err (Bad_version { file; version = v });
  if len < log_header_bytes then err (Truncated file);
  if u32_at file data 9 <> Crc32.sub data ~pos:0 ~len:9 then
    err (Corrupt (file ^ ": log header checksum mismatch"));
  if u32_at file data 5 <> gen then err (Corrupt (file ^ ": log generation disagrees with manifest"));
  let rec_bytes = (s + 1) * width in
  let expect = log_payload_bytes ~m ~rec_bytes in
  let records = ref [] in
  let count = ref 0 in
  let pos = ref log_header_bytes in
  let torn = ref false in
  while (not !torn) && !pos < len do
    if !pos + 4 > len then torn := true
    else begin
      let payload_len = u32_at file data !pos in
      if !pos + 4 + payload_len + 4 > len then torn := true
      else if payload_len <> expect then err (Corrupt (file ^ ": bad record length"))
      else begin
        let crc = u32_at file data (!pos + 4 + payload_len) in
        if Crc32.sub data ~pos:(!pos + 4) ~len:payload_len <> crc then
          err (Corrupt (Printf.sprintf "%s: record %d checksum mismatch" file !count));
        let r = { file; data; pos = !pos + 4 } in
        let seq = get_u32 r in
        if seq <> !count then err (Corrupt (file ^ ": record out of sequence"));
        let entries =
          Array.init m (fun _ ->
              let p = get_u32 r in
              let e = decode_entry pub ~s ~width data r.pos in
              r.pos <- r.pos + rec_bytes;
              (p, e))
        in
        records := entries :: !records;
        incr count;
        pos := !pos + 4 + payload_len + 4
      end
    end
  done;
  (List.rev !records, !pos)

(* ---- handle ------------------------------------------------------------ *)

type slot = Base of int | Upd of int

type cached = { entries : Proto.Enc_item.entry array; mutable last_use : int }

type t = {
  dir : string;
  pub : Paillier.public;
  gen : int;
  base_n : int;
  m : int;
  s : int;
  width : int;
  rec_bytes : int;
  brec : int;
  segs : seg array;
  log_fd : Unix.file_descr;
  log_path : string;
  mutable log_count : int;
  mutable updates : Proto.Enc_item.entry array array;  (* updates.(r).(list) *)
  mutable overlay : slot array array;  (* overlay.(list).(depth) *)
  cache : (int * int, cached) Hashtbl.t;  (* (list, block) -> decoded records *)
  cache_cap : int;
  mutable tick : int;
  lock : Mutex.t;
  mutable closed : bool;
}

let insert_slot arr pos v =
  let len = Array.length arr in
  Array.init (len + 1) (fun i -> if i < pos then arr.(i) else if i = pos then v else arr.(i - 1))

let apply_update t entries ~upd_index ~file =
  Array.iteri
    (fun list (pos, _) ->
      let arr = t.overlay.(list) in
      if pos < 0 || pos > Array.length arr then
        err (Corrupt (Printf.sprintf "%s: record %d position out of range" file upd_index));
      t.overlay.(list) <- insert_slot arr pos (Upd upd_index))
    entries

let open_index ?(cache_blocks = 64) ~dir pub =
  if cache_blocks <= 0 then invalid_arg "Store.open_index: cache_blocks <= 0";
  if not (Sys.file_exists dir && Sys.is_directory dir) then err (Missing dir);
  let man = read_manifest ~dir in
  check_key ~file:(Filename.concat dir manifest_name) pub man;
  let segs = Array.init man.man_m (fun list -> open_segment ~dir man ~list) in
  let log_path = Filename.concat dir (log_name ~gen:man.man_gen) in
  let log_data = read_whole_file log_path in
  let records, valid_end =
    replay_log ~file:log_path log_data ~gen:man.man_gen ~m:man.man_m ~s:man.man_s
      ~width:man.man_width pub
  in
  let log_fd = Unix.openfile log_path [ O_WRONLY; O_APPEND ] 0o644 in
  (* drop any torn tail now, so appends land at the end of the valid
     prefix instead of after garbage that would shadow them on replay *)
  if valid_end < String.length log_data then begin
    (try Unix.ftruncate log_fd valid_end
     with e -> Unix.close log_fd; raise e);
    Unix.fsync log_fd
  end;
  let t =
    {
      dir;
      pub;
      gen = man.man_gen;
      base_n = man.man_n;
      m = man.man_m;
      s = man.man_s;
      width = man.man_width;
      rec_bytes = (man.man_s + 1) * man.man_width;
      brec = man.man_brec;
      segs;
      log_fd;
      log_path;
      log_count = 0;
      updates = [||];
      overlay = Array.init man.man_m (fun _ -> Array.init man.man_n (fun i -> Base i));
      cache = Hashtbl.create 64;
      cache_cap = cache_blocks;
      tick = 0;
      lock = Mutex.create ();
      closed = false;
    }
  in
  List.iter
    (fun entries ->
      let upd_index = t.log_count in
      apply_update t entries ~upd_index ~file:log_path;
      t.updates <- Array.append t.updates [| Array.map snd entries |];
      t.log_count <- upd_index + 1)
    records;
  t

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Array.iter (fun s -> Unix.close s.seg_fd) t.segs;
        Unix.close t.log_fd;
        Hashtbl.reset t.cache
      end)

let check_open t what = if t.closed then invalid_arg ("Store." ^ what ^ ": store is closed")
let n_rows t = t.base_n + t.log_count
let n_attrs t = t.m
let cells t = t.s
let generation t = t.gen
let block_records t = t.brec
let pending_updates t = t.log_count

let disk_bytes t =
  file_size (Filename.concat t.dir manifest_name)
  + file_size t.log_path
  + Array.fold_left (fun acc s -> acc + file_size s.seg_file) 0 t.segs

(* Evict the least-recently-used block when over capacity (linear scan:
   the cache is small and eviction rare at our scale). *)
let evict_if_needed t =
  if Hashtbl.length t.cache > t.cache_cap then begin
    let victim = ref None in
    Hashtbl.iter
      (fun key c ->
        match !victim with
        | Some (_, age) when age <= c.last_use -> ()
        | _ -> victim := Some (key, c.last_use))
      t.cache;
    match !victim with Some (key, _) -> Hashtbl.remove t.cache key | None -> ()
  end

(* Load one block through the checksum table; caller holds [t.lock]. *)
let load_block t list block =
  let first = block * t.brec in
  let count = min t.brec (t.base_n - first) in
  let nbytes = count * t.rec_bytes in
  let seg = t.segs.(list) in
  let off = seg.seg_header_bytes + (first * t.rec_bytes) in
  ignore (Unix.lseek seg.seg_fd off SEEK_SET);
  let data = really_read seg.seg_fd seg.seg_file nbytes in
  if Crc32.string data <> seg.seg_block_crcs.(block) then
    err (Corrupt (Printf.sprintf "%s: block %d checksum mismatch" seg.seg_file block));
  Obs.add Obs.Metrics.Store_read_bytes nbytes;
  Array.init count (fun i -> decode_entry t.pub ~s:t.s ~width:t.width data (i * t.rec_bytes))

let block_entries t list block =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.cache (list, block) with
  | Some c ->
    c.last_use <- t.tick;
    Obs.bump Obs.Metrics.Cache_hit;
    c.entries
  | None ->
    Obs.bump Obs.Metrics.Cache_miss;
    let entries = load_block t list block in
    Hashtbl.replace t.cache (list, block) { entries; last_use = t.tick };
    evict_if_needed t;
    entries

let entry t ~list ~depth =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      check_open t "entry";
      if list < 0 || list >= t.m then invalid_arg "Store.entry: list out of range";
      if depth < 0 || depth >= Array.length t.overlay.(list) then
        invalid_arg "Store.entry: depth out of range";
      match t.overlay.(list).(depth) with
      | Upd r -> t.updates.(r).(list)
      | Base i ->
        let block = i / t.brec in
        (block_entries t list block).(i mod t.brec))

let relation t =
  Sectopk.Scheme.of_fetch ~n:(n_rows t) ~m:t.m (fun list depth ->
      let e = entry t ~list ~depth in
      (e.Proto.Enc_item.ehl, e.Proto.Enc_item.score))

let append_row t ~entries =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      check_open t "append_row";
      if Array.length entries <> t.m then
        invalid_arg "Store.append_row: one (position, entry) per list required";
      Array.iter
        (fun (pos, _) ->
          if pos < 0 || pos > n_rows t then invalid_arg "Store.append_row: position out of range")
        entries;
      let seq = t.log_count in
      let frame = encode_log_record ~seq ~rec_bytes:t.rec_bytes ~width:t.width entries in
      write_all t.log_fd frame;
      Unix.fsync t.log_fd;
      apply_update t entries ~upd_index:seq ~file:t.log_path;
      t.updates <- Array.append t.updates [| Array.map snd entries |];
      t.log_count <- seq + 1)

let verify t =
  let nblocks = (t.base_n + t.brec - 1) / t.brec in
  for list = 0 to t.m - 1 do
    for block = 0 to nblocks - 1 do
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          check_open t "verify";
          ignore (block_entries t list block))
    done
  done

(* ---- build ------------------------------------------------------------- *)

let build ?(block_records = 16) ~dir pub er =
  if block_records <= 0 then invalid_arg "Store.build: block_records <= 0";
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ());
  let n = Sectopk.Scheme.n_rows er and m = Sectopk.Scheme.n_attrs er in
  let width = Paillier.ciphertext_bytes pub in
  let s =
    Ehl.Ehl_plus.length (Sectopk.Scheme.entry er ~list:0 ~depth:0).Proto.Enc_item.ehl
  in
  let rec_bytes = (s + 1) * width in
  (* supersede whatever generation is currently published (leniently: a
     damaged manifest means nothing is published, start at 1) *)
  let gen = 1 + (match read_manifest ~dir with m -> m.man_gen | exception _ -> 0) in
  let seg_crcs =
    Array.init m (fun list ->
        let body = Buffer.create (n * rec_bytes) in
        for depth = 0 to n - 1 do
          encode_entry body ~width (Sectopk.Scheme.entry er ~list ~depth)
        done;
        let file, hcrc =
          encode_segment ~gen ~list ~n ~rec_bytes ~brec:block_records (Buffer.contents body)
        in
        write_file_atomic ~dir (segment_name ~gen list) file;
        hcrc)
  in
  write_file_atomic ~dir (log_name ~gen) (encode_log_header ~gen);
  let manifest =
    encode_manifest
      {
        man_gen = gen;
        man_key_bits = pub.Paillier.key_bits;
        man_width = width;
        man_n = n;
        man_m = m;
        man_s = s;
        man_brec = block_records;
        man_fp = fingerprint pub;
        man_seg_crcs = seg_crcs;
      }
  in
  (* POSIX does not order rename durability, so persist the segment and
     log renames before the manifest rename can possibly land — the
     manifest must never point at files a crash could un-publish *)
  fsync_dir dir;
  (* the commit point: everything above is durable before this rename *)
  write_file_atomic ~dir manifest_name manifest;
  fsync_dir dir
