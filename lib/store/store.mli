(** Durable on-disk encrypted index.

    A store directory holds one published generation of the encrypted
    relation: a checksummed [MANIFEST], one segment file per permuted
    sorted list (fixed-width ciphertext records in depth order, so a list
    prefix of depth [d] is served without reading the rest of the file),
    and an append-only update log whose records are replayed on open.
    Publication is atomic: every file of a new generation is written to a
    temp name, fsynced and renamed, and the [rename] of [MANIFEST] is the
    single commit point — a crash at any earlier instant leaves the
    previous generation fully readable.

    Record bytes follow {!Sectopk.Codec}'s relation layout: [s] EHL+
    cells then the score, each a big-endian natural padded to the
    ciphertext width of the Paillier key, so store-backed entries are
    byte-identical to the in-memory path.

    Reads are lazy: segment bodies are mapped into an LRU block cache
    ({!Obs.Metrics.Store_read_bytes} / [Cache_hit] / [Cache_miss]); each
    block is verified against the per-block CRC table in the segment
    header when it is first loaded. *)

open Crypto

(** Typed failures raised as {!Error} by {!open_index}, {!build} and by
    lazy block loads that hit corruption. *)
type error =
  | Missing of string  (** expected file absent *)
  | Bad_magic of string
  | Bad_version of { file : string; version : int }
  | Truncated of string
  | Corrupt of string  (** checksum mismatch or structural damage *)
  | Key_mismatch of string
      (** store was built under a different Paillier key / key size *)

exception Error of error

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

type t

(** [build ~dir pub er] encrypts nothing — it serializes an already
    encrypted relation into [dir] as a new generation and publishes it
    atomically. [block_records] is the cache/checksum granularity
    (records per block, default 16). An existing generation in [dir] is
    superseded, never modified in place. *)
val build : ?block_records:int -> dir:string -> Paillier.public -> Sectopk.Scheme.encrypted_relation -> unit

(** [open_index ~dir pub] validates the manifest and every segment
    header, replays the update log, and returns a lazily reading handle.
    Raises {!Error} on missing, truncated, corrupted or key-mismatched
    files. [cache_blocks] bounds the LRU block cache (default 64
    blocks). *)
val open_index : ?cache_blocks:int -> dir:string -> Paillier.public -> t

val close : t -> unit

(** Rows served, including update-log rows replayed on open. *)
val n_rows : t -> int

val n_attrs : t -> int

(** EHL+ cell count [s]. *)
val cells : t -> int

val generation : t -> int
val block_records : t -> int

(** Bytes on disk across manifest, segments and update log. *)
val disk_bytes : t -> int

(** Update-log records currently applied. *)
val pending_updates : t -> int

(** [entry t ~list ~depth] — the store-backed equivalent of
    {!Sectopk.Scheme.entry}; loads (and caches) the containing block on
    demand. Raises {!Error} [(Corrupt _)] if the block fails its
    checksum. Safe to call from multiple domains. *)
val entry : t -> list:int -> depth:int -> Proto.Enc_item.entry

(** The lazily backed relation: {!Sectopk.Query.run} over this value
    must be byte-identical to running over the in-memory relation it was
    built from. *)
val relation : t -> Sectopk.Scheme.encrypted_relation

(** [append_row t ~entries] durably appends one SecUpdate-shaped delta to
    the update log and applies it in memory: [entries.(l) = (pos, e)]
    inserts entry [e] at position [pos] of permuted list [l] (positions
    are w.r.t. the list as already updated by earlier deltas, the shape
    Proto.Sec_update emits). One entry per list is required. *)
val append_row : t -> entries:(int * Proto.Enc_item.entry) array -> unit

(** [verify t] force-reads every block of every segment through the
    checksum path (cold blocks only; cached blocks were already
    verified). Raises {!Error} on the first corrupt block. *)
val verify : t -> unit
