(** CRC-32 (IEEE polynomial 0xEDB88320), as used by zlib/PNG. Values fit
    in 32 bits and are returned as non-negative OCaml ints. *)

val string : string -> int

(** [sub s ~pos ~len] — CRC of the substring. *)
val sub : string -> pos:int -> len:int -> int

(** [update crc s ~pos ~len] — streaming continuation: feeding a string
    in chunks gives the same value as one [string] call. *)
val update : int -> string -> pos:int -> len:int -> int
