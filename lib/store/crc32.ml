(* CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.  Used to
   checksum every on-disk store artifact: manifest, segment headers,
   segment blocks and update-log records. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xffffffff

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then invalid_arg "Crc32.sub";
  update 0 s ~pos ~len

let string s = sub s ~pos:0 ~len:(String.length s)
