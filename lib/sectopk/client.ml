open Crypto
open Proto

type opened = { id : string option; worst : int; best : int }

let to_int_signed sk c =
  let v = Paillier.decrypt_signed sk c in
  match Bignum.Nat.to_int_opt (Bignum.Bigint.to_nat v) with
  | Some x -> if Bignum.Bigint.sign v < 0 then -x else x
  | None -> invalid_arg "Client: score out of int range"

let open_result ?sk (ctx : Ctx.t) key ~ids (r : Query.result) =
  let sk = match sk with Some sk -> sk | None -> Ctx.sk ctx in
  let resolver = Scheme.make_resolver key ~pub:ctx.Ctx.s1.Ctx.pub ~ids in
  List.map
    (fun (it : Enc_item.scored) ->
      let first_cell = (Ehl.Ehl_plus.cells it.Enc_item.ehl).(0) in
      let id = resolver (Paillier.decrypt sk first_cell) in
      { id; worst = to_int_signed sk it.Enc_item.worst; best = to_int_signed sk it.Enc_item.best })
    r.Query.top

let real_results ?sk ctx key ~ids r =
  open_result ?sk ctx key ~ids r
  |> List.filter_map (fun o -> Option.map (fun id -> (id, o.worst, o.best)) o.id)
