(** The SecTopK scheme (Definition 4.1): [Enc] and [Token].

    [encrypt] implements Algorithm 2: each attribute column is sorted
    descending, every entry becomes [E(I) = (EHL+(o), Enc(x))], and the
    lists are shuffled by a keyed pseudo-random permutation [P_K]. The
    output reveals only [(n, M)] (Theorem 6.1). [token] implements the
    client side of Section 7: mapping the query's attribute set through
    [P_K] (plus the optional non-binary weights, which the server applies
    homomorphically). *)

open Crypto
open Dataset
open Topk

type secret_key = {
  prp_key : string;  (** [K], keying the list permutation [P_K]. *)
  ehl_keys : Prf.key list;  (** [kappa_1 .. kappa_s]. *)
  s : int;
}

type encrypted_relation
(** The server-side [ER]: permuted encrypted sorted lists. *)

(** [encrypt ?s ?domains rng pub rel] — the data-owner side of [Enc].
    [s] is the number of EHL+ PRFs (default 5, as in the paper's
    experiments). [domains > 1] parallelizes the per-item encryption over
    that many OCaml domains (the paper: "the encryption for each item can
    be fully parallelized ... we used 64 threads"); each domain draws from
    its own forked DRBG, so results stay deterministic for a given seed
    and domain count. *)
val encrypt :
  ?s:int -> ?domains:int -> Rng.t -> Paillier.public -> Relation.t -> encrypted_relation * secret_key

val n_rows : encrypted_relation -> int
val n_attrs : encrypted_relation -> int

(** [entry er ~list ~depth] — sequential access for the server ([list] is
    a {e permuted} index). *)
val entry : encrypted_relation -> list:int -> depth:int -> Proto.Enc_item.entry

(** Total serialized size in bytes (Fig. 7b/8b). *)
val size_bytes : Paillier.public -> encrypted_relation -> int

(** Rebuild a relation from raw permuted lists (deserialization);
    [lists.(i).(d)] is list [i]'s entry at depth [d]. All lists must have
    equal positive length. *)
val of_lists : (Ehl.Ehl_plus.t * Paillier.ciphertext) array array -> encrypted_relation

(** [of_fetch ~n ~m fetch] wraps an entry provider — [fetch list depth]
    must return the permuted list's entry at that depth, byte-identical
    to what an in-memory relation would hold. Backing for lazily loaded
    relations (lib/store's block-cached segment files). *)
val of_fetch :
  n:int -> m:int -> (int -> int -> Ehl.Ehl_plus.t * Paillier.ciphertext) -> encrypted_relation

type token = { attrs : (int * int) list;  (** (permuted list index, weight) *) k : int }

(** [token key ~m_total scoring ~k] — the client side of [Token]. *)
val token : secret_key -> m_total:int -> Scoring.t -> k:int -> token

(** [make_resolver key ~pub ~ids] builds the client-side dictionary that
    maps a decrypted EHL+ first-cell value [HMAC(kappa_1, id) mod n] back
    to the object id — how an authorized client resolves returned items.
    SecDedup garbage items (random cells) resolve to [None]. *)
val make_resolver :
  secret_key -> pub:Paillier.public -> ids:string list -> Bignum.Nat.t -> string option
