(** SecQuery (Algorithm 3): oblivious NRA over an encrypted relation.

    Three variants, matching the paper's evaluation:
    - [Full] — Qry_F: fully private; duplicates become sentinel garbage
      (SecDedup / Replace) so the running list [T] grows by [m] every
      depth and S1 learns nothing but the halting depth.
    - [Elim] — Qry_E: SecDupElim everywhere; [T] stays duplicate-free and
      small at the cost of revealing the uniqueness pattern UP^d.
    - [Batched p] — Qry_Ba: like [Elim], but EncSort and the halting test
      run only every [p] depths (Section 10.2), [p >= k].

    The halting test sorts [T] by worst score and, following the NRA
    condition, halts when the best score of every candidate outside the
    top-k — and of every unseen object (bounded by the sum of the current
    bottom scores) — is at most the k-th worst score. [`KthOnly] checks
    only the (k+1)-th candidate, which is the paper's literal Algorithm 3
    line 10 (kept for ablation; it can halt early on adversarial data —
    see DESIGN.md). *)

type variant = Full | Elim | Batched of int

type options = {
  variant : variant;
  sort : Proto.Enc_sort.strategy;
  halting : [ `All | `KthOnly ];
  compare : [ `Sign | `Dgk of int ];
      (** EncCompare instantiation for the halting tests: [`Sign] — the
          fast blinded-sign protocol; [`Dgk bits] — the DGK/Veugen bitwise
          protocol (scores must fit in [bits]; the sentinel [-1] is mapped
          into the unsigned domain by a homomorphic [+2] shift). *)
  max_depth : int option;  (** Cap on scanned depths (benchmarks). *)
  domains : int;
      (** Domain-pool width for the per-depth protocol fan-out (see
          {!Proto.Ctx.parallel}); results and traces are identical for
          every setting. Effective width is the max of this and the
          context's own [domains]. *)
}

val default_options : options

type result = {
  top : Proto.Enc_item.scored list;  (** encrypted top-k, descending worst score. *)
  halting_depth : int;  (** depths scanned (the leakage [D_q]). *)
  halted : bool;  (** [false] if stopped by [max_depth] only. *)
  depth_seconds : float array;  (** wall-clock per scanned depth. *)
}

val run : Proto.Ctx.t -> Scheme.encrypted_relation -> Scheme.token -> options -> result
