open Crypto

let magic = "STK1"

(* primitive writers: 4-byte big-endian ints, length-prefixed strings,
   fixed-width naturals *)

let put_int buf v =
  if v < 0 then invalid_arg "Codec: negative int";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_nat_fixed buf ~width n =
  let b = Bignum.Nat.to_bytes n in
  if String.length b > width then invalid_arg "Codec: value wider than field";
  Buffer.add_string buf (String.make (width - String.length b) '\000');
  Buffer.add_string buf b

type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then invalid_arg "Codec: truncated input"

let get_int r =
  need r 4;
  let v =
    (Char.code r.data.[r.pos] lsl 24)
    lor (Char.code r.data.[r.pos + 1] lsl 16)
    lor (Char.code r.data.[r.pos + 2] lsl 8)
    lor Char.code r.data.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let get_string r =
  let len = get_int r in
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let get_nat_fixed r ~width =
  need r width;
  let s = String.sub r.data r.pos width in
  r.pos <- r.pos + width;
  Bignum.Nat.of_bytes s

let check_magic r =
  need r 4;
  if String.sub r.data r.pos 4 <> magic then invalid_arg "Codec: bad magic";
  r.pos <- r.pos + 4

(* ---------------- encrypted relation ---------------- *)

let encode_relation pub er =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf 'R';
  let n = Scheme.n_rows er and m = Scheme.n_attrs er in
  let width = Paillier.ciphertext_bytes pub in
  put_int buf n;
  put_int buf m;
  put_int buf width;
  let s =
    let e = Scheme.entry er ~list:0 ~depth:0 in
    Ehl.Ehl_plus.length e.Proto.Enc_item.ehl
  in
  put_int buf s;
  for list = 0 to m - 1 do
    for depth = 0 to n - 1 do
      let e = Scheme.entry er ~list ~depth in
      Array.iter
        (fun c -> put_nat_fixed buf ~width (Paillier.to_nat c))
        (Ehl.Ehl_plus.cells e.Proto.Enc_item.ehl);
      put_nat_fixed buf ~width (Paillier.to_nat e.Proto.Enc_item.score)
    done
  done;
  Buffer.contents buf

let decode_relation pub data =
  let r = { data; pos = 0 } in
  check_magic r;
  need r 1;
  if r.data.[r.pos] <> 'R' then invalid_arg "Codec: not a relation blob";
  r.pos <- r.pos + 1;
  let n = get_int r in
  let m = get_int r in
  let width = get_int r in
  if width <> Paillier.ciphertext_bytes pub then invalid_arg "Codec: key size mismatch";
  let s = get_int r in
  if n <= 0 || m <= 0 || s <= 0 || s > 64 then invalid_arg "Codec: bad dimensions";
  (* the declared dimensions must account for the payload exactly, before
     any allocation is sized from them (guards against a hostile header
     demanding gigabytes) *)
  let remaining = String.length data - r.pos in
  let rec_bytes = (s + 1) * width in
  if
    n > remaining || m > remaining
    || remaining mod rec_bytes <> 0
    || remaining / rec_bytes <> n * m
  then invalid_arg "Codec: dimensions disagree with payload";
  let lists =
    Array.init m (fun _ ->
        Array.init n (fun _ ->
            let cells =
              Array.init s (fun _ -> Paillier.of_nat pub (get_nat_fixed r ~width))
            in
            let score = Paillier.of_nat pub (get_nat_fixed r ~width) in
            (Ehl.Ehl_plus.of_cells cells, score)))
  in
  if r.pos <> String.length data then invalid_arg "Codec: trailing bytes";
  Scheme.of_lists lists

(* ---------------- secret key ---------------- *)

let encode_secret_key (k : Scheme.secret_key) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf 'K';
  put_string buf k.Scheme.prp_key;
  put_int buf k.Scheme.s;
  List.iter (put_string buf) k.Scheme.ehl_keys;
  Buffer.contents buf

let decode_secret_key data =
  let r = { data; pos = 0 } in
  check_magic r;
  need r 1;
  if r.data.[r.pos] <> 'K' then invalid_arg "Codec: not a key blob";
  r.pos <- r.pos + 1;
  let prp_key = get_string r in
  let s = get_int r in
  if s <= 0 || s > 64 then invalid_arg "Codec: bad s";
  let ehl_keys = List.init s (fun _ -> get_string r) in
  if r.pos <> String.length data then invalid_arg "Codec: trailing bytes";
  { Scheme.prp_key; ehl_keys; s }

(* ---------------- token ---------------- *)

let encode_token (t : Scheme.token) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  Buffer.add_char buf 'T';
  put_int buf t.Scheme.k;
  put_int buf (List.length t.Scheme.attrs);
  List.iter
    (fun (l, w) ->
      put_int buf l;
      put_int buf w)
    t.Scheme.attrs;
  Buffer.contents buf

let decode_token data =
  let r = { data; pos = 0 } in
  check_magic r;
  need r 1;
  if r.data.[r.pos] <> 'T' then invalid_arg "Codec: not a token blob";
  r.pos <- r.pos + 1;
  let k = get_int r in
  let len = get_int r in
  if k <= 0 || len <= 0 || len > 4096 then invalid_arg "Codec: bad token";
  let attrs = List.init len (fun _ -> let l = get_int r in let w = get_int r in (l, w)) in
  if r.pos <> String.length data then invalid_arg "Codec: trailing bytes";
  { Scheme.k; attrs }
