open Crypto
open Dataset
open Topk

type secret_key = { prp_key : string; ehl_keys : Prf.key list; s : int }

(* The server-side ER is exposed through a fetch function so that callers
   never see the backing representation: [of_lists] wraps in-memory
   arrays, while lib/store provides a lazy block-cached fetch over the
   on-disk segment files.  Both must serve byte-identical entries. *)
type encrypted_relation = {
  fetch : int -> int -> Ehl.Ehl_plus.t * Paillier.ciphertext;  (* list, depth *)
  n : int;
  m : int;
}

let encrypt ?(s = 5) ?(domains = 1) rng pub rel =
  let sl = Sorted_lists.of_relation rel in
  let m = Sorted_lists.n_lists sl and n = Sorted_lists.depth sl in
  let ehl_keys = Prf.gen_keys rng s in
  let prp_key = Rng.bytes rng 32 in
  (* EHL encodings are per-object; share them across lists *)
  let encodings =
    Core.Pool.map_rng rng ~domains ~jobs:n (fun task_rng oid ->
        Ehl.Ehl_plus.encode task_rng pub ~keys:ehl_keys (Relation.object_id rel oid))
  in
  let plain_lists =
    Core.Pool.map_rng rng ~domains ~jobs:m (fun task_rng attr ->
        Array.map
          (fun (it : Sorted_lists.item) ->
            ( Ehl.Ehl_plus.rerandomize task_rng pub encodings.(it.Sorted_lists.oid),
              Paillier.encrypt task_rng pub (Bignum.Nat.of_int it.Sorted_lists.score) ))
          (Sorted_lists.list sl attr))
  in
  let prp = Prp.create ~key:prp_key ~domain:m in
  let lists = Array.init m (fun i -> plain_lists.(Prp.invert prp i)) in
  let fetch list depth = lists.(list).(depth) in
  ({ fetch; n; m }, { prp_key; ehl_keys; s })

let n_rows er = er.n
let n_attrs er = er.m

let entry er ~list ~depth =
  if list < 0 || list >= er.m then invalid_arg "Scheme.entry: list out of range";
  if depth < 0 || depth >= er.n then invalid_arg "Scheme.entry: depth out of range";
  let ehl, score = er.fetch list depth in
  { Proto.Enc_item.ehl; score }

let size_bytes pub er =
  let acc = ref 0 in
  for list = 0 to er.m - 1 do
    for depth = 0 to er.n - 1 do
      let ehl, _ = er.fetch list depth in
      acc := !acc + Ehl.Ehl_plus.size_bytes pub ehl + Paillier.ciphertext_bytes pub
    done
  done;
  !acc

let of_lists lists =
  let m = Array.length lists in
  if m = 0 then invalid_arg "Scheme.of_lists: no lists";
  let n = Array.length lists.(0) in
  if n = 0 then invalid_arg "Scheme.of_lists: empty lists";
  Array.iter (fun l -> if Array.length l <> n then invalid_arg "Scheme.of_lists: ragged") lists;
  { fetch = (fun list depth -> lists.(list).(depth)); n; m }

let of_fetch ~n ~m fetch =
  if n <= 0 || m <= 0 then invalid_arg "Scheme.of_fetch: bad dimensions";
  { fetch; n; m }

type token = { attrs : (int * int) list; k : int }

let token key ~m_total scoring ~k =
  if k <= 0 then invalid_arg "Scheme.token: k <= 0";
  let prp = Prp.create ~key:key.prp_key ~domain:m_total in
  { attrs = List.map (fun (a, w) -> (Prp.apply prp a, w)) (Scoring.weights scoring); k }

let make_resolver key ~pub ~ids =
  let table = Hashtbl.create (List.length ids) in
  let k1 = List.hd key.ehl_keys in
  List.iter
    (fun id -> Hashtbl.replace table (Prf.to_nat_mod ~key:k1 id ~m:pub.Paillier.n) id)
    ids;
  fun cell_value -> Hashtbl.find_opt table cell_value
