open Crypto
open Proto

type variant = Full | Elim | Batched of int

type options = {
  variant : variant;
  sort : Enc_sort.strategy;
  halting : [ `All | `KthOnly ];
  compare : [ `Sign | `Dgk of int ];
  max_depth : int option;
  domains : int;
}

let default_options =
  {
    variant = Full;
    sort = Enc_sort.Blinded;
    halting = `All;
    compare = `Sign;
    max_depth = None;
    domains = 1;
  }

type result = {
  top : Enc_item.scored list;
  halting_depth : int;
  halted : bool;
  depth_seconds : float array;
}

let rec take n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let rec drop n = function [] -> [] | _ :: rest as l -> if n = 0 then l else drop (n - 1) rest

(* The NRA bound test over the sorted encrypted list (Algorithm 3 lines
   10-12, completed with the unseen-object bound). *)
let halting_test ctx ~halting ~compare ~k ~sorted ~unseen_bound =
  let leq =
    match compare with
    | `Sign -> Enc_compare.leq ctx
    | `Dgk bits ->
      (* shift by +2 so the sentinel -1 lands at 1 >= 0 in the unsigned
         domain the bitwise protocol works over *)
      let pub = ctx.Ctx.s1.Ctx.pub in
      let two = Paillier.trivial pub Bignum.Nat.two in
      fun a b ->
        Enc_compare.leq_dgk ctx ~bits (Paillier.add pub a two) (Paillier.add pub b two)
  in
  if List.length sorted < k then false
  else begin
    let wk = (List.nth sorted (k - 1)).Enc_item.worst in
    let rest = drop k sorted in
    match (halting, compare) with
    | `All, `Sign ->
      (* all bound tests of the checkpoint in one batch round; the
         short-circuit is gone but the conjunction is unchanged *)
      let pairs =
        List.map (fun (it : Enc_item.scored) -> (it.Enc_item.best, wk)) rest
        @ [ (unseen_bound, wk) ]
      in
      List.for_all Fun.id (Enc_compare.leq_many ctx pairs)
    | _ ->
      let candidates_ok =
        match halting with
        | `KthOnly -> (
          match rest with [] -> true | next :: _ -> leq next.Enc_item.best wk)
        | `All -> List.for_all (fun (it : Enc_item.scored) -> leq it.Enc_item.best wk) rest
      in
      candidates_ok && leq unseen_bound wk
  end

let run (ctx : Ctx.t) er (tk : Scheme.token) options =
  let ctx = Ctx.with_domains ctx (max ctx.Ctx.domains options.domains) in
  (* Collect per-query observability into the context's own collector
     unless an outer harness (bench) already installed one. *)
  Obs.with_default ctx.Ctx.obs @@ fun () ->
  Obs.span "SecQuery" @@ fun () ->
  let s1 = ctx.Ctx.s1 in
  let pub = s1.pub in
  let k = tk.Scheme.k in
  let attrs = Array.of_list tk.Scheme.attrs in
  let m = Array.length attrs in
  if m = 0 then invalid_arg "Query.run: empty token";
  let n = Scheme.n_rows er in
  let check_every = match options.variant with Batched p -> max 1 p | Full | Elim -> 1 in
  let dedup_mode =
    match options.variant with Full -> Sec_dedup.Replace | Elim | Batched _ -> Sec_dedup.Eliminate
  in
  let limit = match options.max_depth with None -> n | Some d -> min d n in
  (* per queried list: entries seen so far (latest last) and bottom score *)
  let history : Enc_item.entry list ref array = Array.make m (ref []) in
  Array.iteri (fun i _ -> history.(i) <- ref []) history;
  let bottoms : Paillier.ciphertext option array = Array.make m None in
  let t_list = ref [] in
  let timings = ref [] in
  let weighted_entry li w depth =
    let e = Scheme.entry er ~list:li ~depth in
    if w = 1 then e
    else { e with Enc_item.score = Paillier.scalar_mul pub e.Enc_item.score (Bignum.Nat.of_int w) }
  in
  let result = ref None in
  let depth = ref 0 in
  while !result = None && !depth < limit do
    let d = !depth in
    let (), dt =
      Obs.Timer.time @@ fun () ->
      Obs.span ("depth:" ^ string_of_int d) @@ fun () ->

    let row = Array.to_list (Array.map (fun (li, w) -> weighted_entry li w d) attrs) in
    let row_arr = Array.of_list row in
    (* SecBest sees history inclusive of the current depth *)
    Array.iteri
      (fun i e ->
        history.(i) := e :: !(history.(i));
        bottoms.(i) <- Some e.Enc_item.score)
      row_arr;
    (* The m per-list SecWorst/SecBest instances of one depth are
       independent of each other — the paper's S1 runs them as separate
       protocol sessions — so their rounds collapse phase-wise: one
       Equality + one Recover batch for all SecWorsts (the seen-vector
       recoveries piggyback on that Recover batch via [?seen]), and the
       same pair for all SecBests. Four rounds per depth, whatever m is. *)
    let scored =
      let indices = List.init m Fun.id in
      (* seen vectors: 1 for the item's own list; SecWorst's equality
         indicators (recovered to Paillier form) for the others — the
         m*(m-1) independent recoveries ride SecWorst's recover batch *)
      let owns = Array.make m (Gadgets.enc_zero s1) in
      let worsts =
        Array.of_list
          (Sec_worst.run_many ctx
             ~seen:(fun i eq_bits ->
               let eq_arr = Array.of_list eq_bits in
               owns.(i) <- Paillier.encrypt s1.Ctx.rng pub Bignum.Nat.one;
               List.init m (fun l ->
                   if l = i then None
                   else
                     let e = if l < i then eq_arr.(l) else eq_arr.(l - 1) in
                     Some
                       ( e,
                         Paillier.encrypt s1.Ctx.rng pub Bignum.Nat.one,
                         Gadgets.enc_zero s1 ))
               |> List.filter_map Fun.id)
             (List.map
                (fun i -> (row_arr.(i), List.filteri (fun j _ -> j <> i) row))
                indices))
      in
      let bests =
        Array.of_list
          (Sec_best.run_many ctx
             (List.map
                (fun i ->
                  let hist =
                    List.filter (fun j -> j <> i) indices
                    |> List.map (fun j -> (!(history.(j)), Option.get bottoms.(j)))
                  in
                  (row_arr.(i), hist))
                indices))
      in
      List.map
        (fun i ->
          let worst, _, picked_list = worsts.(i) in
          let picked = Array.of_list picked_list in
          let seen =
            Array.init m (fun l ->
                if l = i then owns.(i)
                else if l < i then picked.(l)
                else picked.(l - 1))
          in
          { Enc_item.ehl = row_arr.(i).Enc_item.ehl; worst; best = bests.(i); seen })
        indices
    in
    let gamma = Sec_dedup.run ctx ~mode:dedup_mode scored in
    t_list := Sec_update.run ctx ~mode:dedup_mode ~t_list:!t_list ~gamma;
    (* checkpoint: refresh upper bounds, sort, halting test *)
    let at_checkpoint = (d + 1) mod check_every = 0 || d = limit - 1 in
    if at_checkpoint && List.length !t_list >= k then begin
      let current_bottoms = Array.map Option.get bottoms in
      t_list := Sec_refresh.run ctx ~items:!t_list ~bottoms:current_bottoms;
      let sorted = Enc_sort.sort ctx ~strategy:options.sort !t_list in
      t_list := sorted;
      let unseen_bound =
        Array.fold_left
          (fun acc b -> Paillier.add pub acc (Option.get b))
          (Gadgets.enc_zero s1) bottoms
      in
      let exhausted = d = n - 1 in
      if
        exhausted
        || halting_test ctx ~halting:options.halting ~compare:options.compare ~k ~sorted
             ~unseen_bound
      then
        result :=
          Some
            {
              top = take k sorted;
              halting_depth = d + 1;
              halted = true;
              depth_seconds = [||];
            }
    end
    in
    timings := dt :: !timings;
    incr depth
  done;
  let depth_seconds = Array.of_list (List.rev !timings) in
  match !result with
  | Some r -> { r with depth_seconds }
  | None ->
    (* stopped by max_depth: report the current best-effort list *)
    let sorted = Enc_sort.sort ctx ~strategy:options.sort !t_list in
    { top = take k sorted; halting_depth = !depth; halted = false; depth_seconds }
