(** Authorized-client view: opening an encrypted top-k answer.

    In deployment the client holds the keys it requested from the data
    owner and decrypts the returned items itself. By default the
    decryption key is pulled from the local S2 half of the context (the
    key escrow for tests and examples); against a remote S2 daemon pass
    [~sk] explicitly — e.g. the one [Ctx.provision] returned. Object ids
    are recovered through the client's EHL+ hash dictionary
    ({!Scheme.make_resolver}); SecDedup sentinel items decrypt to
    [id = None] with scores [-1] and are filtered by {!real_results}. *)

type opened = {
  id : string option;
  worst : int;
  best : int;
}

(** Decrypt every returned item. *)
val open_result :
  ?sk:Crypto.Paillier.secret ->
  Proto.Ctx.t ->
  Scheme.secret_key ->
  ids:string list ->
  Query.result ->
  opened list

(** Decrypted items that are real objects (drops sentinels). *)
val real_results :
  ?sk:Crypto.Paillier.secret ->
  Proto.Ctx.t ->
  Scheme.secret_key ->
  ids:string list ->
  Query.result ->
  (string * int * int) list
