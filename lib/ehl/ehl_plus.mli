(** EHL+ — the compact encrypted hash list (paper Section 5, "EHL+").

    The object is hashed by [s] HMAC PRFs directly into [Z_n] (the Paillier
    message space) and only those [s] hash values are encrypted, so both
    storage and the ⊖ operation cost [O(s)] instead of [O(h)]. The
    false-positive rate of one comparison is at most [1/n^s] — negligible
    already for [s = 4..5] with a 256-bit [n] (paper Section 5). *)

open Crypto

type t
(** [s] Paillier ciphertexts, one per PRF. *)

(** [encode rng pub ~keys id] builds EHL+(id) with [s = List.length keys]. *)
val encode : Rng.t -> Paillier.public -> keys:Prf.key list -> string -> t

(** The ⊖ operation: [Enc(0)] iff equal (up to negligible FPR), otherwise
    an encryption of a random element. *)
val diff : ?blind_bits:int -> Rng.t -> Paillier.public -> t -> t -> Paillier.ciphertext

(** The ⊙ operation (Section 5, "Notation"): blockwise product with a
    vector of encryptions — [mask pub e encs] multiplies cell [i] by
    [encs.(i)], homomorphically adding [alpha_i] to the hidden hash value.
    Used by SecDedup's blinding. *)
val mask : Paillier.public -> t -> Paillier.ciphertext array -> t

val rerandomize : Rng.t -> Paillier.public -> t -> t

(** Re-randomize with precomputed noise factors (one call to [noise] per
    cell, consumed left to right): one modular mul per cell. *)
val rerandomize_with :
  Paillier.public -> noise:(unit -> Bignum.Nat.t) -> t -> t
val size_bytes : Paillier.public -> t -> int

(** Number of ciphertexts stored ([s]). *)
val length : t -> int

(** Upper bound [n_rows^2 / n^s] on the dataset-wide FPR (union bound over
    all pairs), with [n] the Paillier modulus. *)
val false_positive_rate : Paillier.public -> s:int -> rows:int -> float

val cells : t -> Paillier.ciphertext array

(** Build from raw cells (deserialization / S2-side reconstruction). *)
val of_cells : Paillier.ciphertext array -> t
