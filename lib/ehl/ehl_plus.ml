open Bignum
open Crypto

type t = Paillier.ciphertext array

let encode rng pub ~keys id =
  keys
  |> List.map (fun key -> Paillier.encrypt rng pub (Prf.to_nat_mod ~key id ~m:pub.Paillier.n))
  |> Array.of_list

let diff ?blind_bits rng pub (a : t) (b : t) =
  if Array.length a <> Array.length b then invalid_arg "Ehl_plus.diff: length mismatch";
  let n = pub.Paillier.n in
  let blind () =
    match blind_bits with
    | None -> Rng.unit_mod rng n
    | Some bits -> Nat.succ (Rng.nat_bits rng bits)
  in
  (* blinds drawn in index order, exactly like the per-cell loop this
     replaces *)
  let rhos = Array.map (fun _ -> blind ()) a in
  (* prod_i a_i^rho_i * b_i^(n - rho_i) decrypts to
     sum_i rho_i * (a_i - b_i) mod n: one simultaneous
     multi-exponentiation over 2s bases instead of a ciphertext negation
     plus scalar multiplication per cell. *)
  let pairs = ref [] in
  for i = Array.length a - 1 downto 0 do
    pairs := (a.(i), rhos.(i)) :: (b.(i), Nat.sub n rhos.(i)) :: !pairs
  done;
  Paillier.scalar_mul_many pub !pairs

let mask pub (e : t) encs =
  if Array.length e <> Array.length encs then invalid_arg "Ehl_plus.mask: length mismatch";
  Array.mapi (fun i c -> Paillier.add pub c encs.(i)) e

let rerandomize rng pub t = Array.map (Paillier.rerandomize rng pub) t

let rerandomize_with pub ~noise t =
  Array.map (fun c -> Paillier.rerandomize_with pub ~noise:(noise ()) c) t
let size_bytes pub t = Array.length t * Paillier.ciphertext_bytes pub
let length = Array.length

let false_positive_rate pub ~s ~rows =
  let log2_n = float_of_int (Nat.bit_length pub.Paillier.n) in
  let log2_fpr = (2. *. log (float_of_int rows) /. log 2.) -. (float_of_int s *. log2_n) in
  2. ** log2_fpr

let cells t = t
let of_cells c = c
