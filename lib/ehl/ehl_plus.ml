open Bignum
open Crypto

type t = Paillier.ciphertext array

let encode rng pub ~keys id =
  keys
  |> List.map (fun key -> Paillier.encrypt rng pub (Prf.to_nat_mod ~key id ~m:pub.Paillier.n))
  |> Array.of_list

let diff ?blind_bits rng pub (a : t) (b : t) =
  if Array.length a <> Array.length b then invalid_arg "Ehl_plus.diff: length mismatch";
  let blind () =
    match blind_bits with
    | None -> Rng.unit_mod rng pub.Paillier.n
    | Some bits -> Nat.succ (Rng.nat_bits rng bits)
  in
  let acc = ref (Paillier.trivial pub Nat.zero) in
  for i = 0 to Array.length a - 1 do
    let d = Paillier.sub pub a.(i) b.(i) in
    acc := Paillier.add pub !acc (Paillier.scalar_mul pub d (blind ()))
  done;
  !acc

let mask pub (e : t) encs =
  if Array.length e <> Array.length encs then invalid_arg "Ehl_plus.mask: length mismatch";
  Array.mapi (fun i c -> Paillier.add pub c encs.(i)) e

let rerandomize rng pub t = Array.map (Paillier.rerandomize rng pub) t

let rerandomize_with pub ~noise t =
  Array.map (fun c -> Paillier.rerandomize_with pub ~noise:(noise ()) c) t
let size_bytes pub t = Array.length t * Paillier.ciphertext_bytes pub
let length = Array.length

let false_positive_rate pub ~s ~rows =
  let log2_n = float_of_int (Nat.bit_length pub.Paillier.n) in
  let log2_fpr = (2. *. log (float_of_int rows) /. log 2.) -. (float_of_int s *. log2_n) in
  2. ** log2_fpr

let cells t = t
let of_cells c = c
