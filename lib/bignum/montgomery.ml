(* CIOS Montgomery multiplication in base 2^26.

   All limb products fit in 63-bit ints: a_i * b_j <= (2^26-1)^2 < 2^52,
   and the running sums stay below 2^54. The working vector has k+2 limbs
   as required by CIOS. *)

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

type ctx = {
  m : Nat.t;
  n : int array; (* modulus limbs, length k *)
  k : int;
  n0' : int; (* -m^-1 mod 2^26 *)
  r2 : int array; (* R^2 mod m, padded to k limbs *)
  one_mont : int array; (* R mod m = to_mont 1 *)
  one_plain : int array; (* the k-limb vector 1, for conversion out *)
}

(* A value < m held in Montgomery form (a*R mod m) as a k+2-limb vector
   whose top two limbs are zero — directly usable as a [mont_mul]
   operand and target shape. Residues are tied to the ctx that made them. *)
type residue = int array

let pad k a =
  let r = Array.make k 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

(* x >= y as k-limb vectors *)
let geq k x y =
  let rec go i = if i < 0 then true else if x.(i) <> y.(i) then x.(i) > y.(i) else go (i - 1) in
  go (k - 1)

(* t <- mont(a, b) = a*b*R^-1 mod m; t, a, b are k-limb vectors (t distinct) *)
let mont_mul ctx (t : int array) (a : int array) (b : int array) =
  let k = ctx.k and n = ctx.n and n0' = ctx.n0' in
  Array.fill t 0 (k + 2) 0;
  for i = 0 to k - 1 do
    let ai = a.(i) in
    (* t += a_i * b *)
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = t.(j) + (ai * b.(j)) + !c in
      t.(j) <- s land mask;
      c := s lsr base_bits
    done;
    let s = t.(k) + !c in
    t.(k) <- s land mask;
    t.(k + 1) <- t.(k + 1) + (s lsr base_bits);
    (* reduce one limb *)
    let mu = (t.(0) * n0') land mask in
    let c = ref ((t.(0) + (mu * n.(0))) lsr base_bits) in
    for j = 1 to k - 1 do
      let s = t.(j) + (mu * n.(j)) + !c in
      t.(j - 1) <- s land mask;
      c := s lsr base_bits
    done;
    let s = t.(k) + !c in
    t.(k - 1) <- s land mask;
    t.(k) <- t.(k + 1) + (s lsr base_bits);
    t.(k + 1) <- 0
  done;
  (* CIOS bounds give t < 2m with the overflow in t.(k); one conditional
     subtraction of m (over k+1 limbs) normalizes *)
  if t.(k) <> 0 || geq k t ctx.n then begin
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let d = t.(i) - ctx.n.(i) - !borrow in
      if d < 0 then begin
        t.(i) <- d + base;
        borrow := 1
      end
      else begin
        t.(i) <- d;
        borrow := 0
      end
    done;
    t.(k) <- t.(k) - !borrow
  end

let create m =
  if Nat.is_zero m || Nat.is_even m || Nat.compare m (Nat.of_int 3) < 0 then None
  else begin
    let n = Nat.limbs m in
    let k = Array.length n in
    (* n0' = -n^{-1} mod 2^26 by Newton-Hensel lifting *)
    let n0 = n.(0) in
    let inv = ref 1 in
    for _ = 1 to 6 do
      inv := !inv * (2 - (n0 * !inv)) land mask
    done;
    let n0' = base - (!inv land mask) land mask in
    let n0' = n0' land mask in
    let r2 = Nat.rem (Nat.shift_left Nat.one (2 * base_bits * k)) m in
    let r1 = Nat.rem (Nat.shift_left Nat.one (base_bits * k)) m in
    let one_plain = Array.make k 0 in
    one_plain.(0) <- 1;
    Some
      {
        m;
        n;
        k;
        n0';
        r2 = pad k (Nat.limbs r2);
        one_mont = pad k (Nat.limbs r1);
        one_plain;
      }
  end

let modulus ctx = ctx.m

(* First k limbs -> Nat; both sides use base-2^26 little-endian limbs. *)
let of_limbs k (t : int array) = Nat.of_limbs (Array.sub t 0 k)

(* ---------------- Montgomery-resident operations ----------------

   Chained products and exponentiations convert once on the way in, once
   on the way out, and pay exactly one [mont_mul] (no division, no
   re-padding) per intermediate operation. *)

let reduced ctx a = if Nat.compare a ctx.m < 0 then a else Nat.rem a ctx.m

let to_mont ctx a =
  let t = Array.make (ctx.k + 2) 0 in
  mont_mul ctx t (pad ctx.k (Nat.limbs (reduced ctx a))) ctx.r2;
  t

let from_mont ctx (r : residue) =
  let t = Array.make (ctx.k + 2) 0 in
  mont_mul ctx t r ctx.one_plain;
  of_limbs ctx.k t

let one_mont ctx : residue = pad (ctx.k + 2) ctx.one_mont

let mul_resident ctx (a : residue) (b : residue) : residue =
  let t = Array.make (ctx.k + 2) 0 in
  mont_mul ctx t a b;
  t

let pow_resident ctx (b : residue) e : residue =
  let k = ctx.k in
  if Nat.is_zero e then one_mont ctx
  else begin
    let scratch = Array.make (k + 2) 0 in
    let cur = Array.make (k + 2) 0 in
    let swap_into dst src = Array.blit src 0 dst 0 k in
    (* table of b^0..b^15 in Montgomery form *)
    let table = Array.init 16 (fun _ -> Array.make (k + 2) 0) in
    Array.blit ctx.one_mont 0 table.(0) 0 k;
    Array.blit b 0 table.(1) 0 k;
    for i = 2 to 15 do
      mont_mul ctx scratch table.(i - 1) table.(1);
      swap_into table.(i) scratch
    done;
    let nbits = Nat.bit_length e in
    let nwin = (nbits + 3) / 4 in
    Array.blit ctx.one_mont 0 cur 0 k;
    for w = nwin - 1 downto 0 do
      (* four squarings *)
      if w <> nwin - 1 then
        for _ = 1 to 4 do
          mont_mul ctx scratch cur cur;
          swap_into cur scratch
        done;
      let idx =
        let base_bit = 4 * w in
        let bit i = if Nat.nth_bit e (base_bit + i) then 1 lsl i else 0 in
        bit 0 lor bit 1 lor bit 2 lor bit 3
      in
      if idx <> 0 then begin
        mont_mul ctx scratch cur table.(idx);
        swap_into cur scratch
      end
    done;
    cur
  end

(* a * b mod m in two mont_muls: mont(a, R^2) = aR, then mont(aR, b) = ab.
   Operands already below m skip the trial division entirely. *)
let mul ctx a b =
  let k = ctx.k in
  let a' = pad k (Nat.limbs (reduced ctx a)) in
  let b' = pad k (Nat.limbs (reduced ctx b)) in
  let am = Array.make (k + 2) 0 and bm = Array.make (k + 2) 0 in
  mont_mul ctx am a' ctx.r2;
  mont_mul ctx bm am b';
  of_limbs k bm

let pow ctx b e =
  if Nat.is_zero e then Nat.rem Nat.one ctx.m
  else from_mont ctx (pow_resident ctx (to_mont ctx b) e)
