(* Product-scanning (Comba) Montgomery multiplication in base 2^52.

   Limbs are 52-bit (matching [Nat]); a limb product is formed from four
   26-bit half-limb products

     a*b = ah*bh*2^52 + (ah*bl + al*bh)*2^26 + al*bl

   as a double word (plo, phi) with plo < 2^53 and phi < 2^52 + 2^28.
   Native int products wrap mod 2^63, but the low 52 bits extracted with
   [land mask] are always exact.

   The 11 headroom bits above a 52-bit limb are what make the
   product-scanning shape fast: one output column accumulates every
   partial product that lands on it into a plain two-int accumulator
   (s0 for the plos, s1 for the phis) with NO per-product carry
   propagation — the products of a column are mutually independent, so
   the CPU pipelines them instead of stalling on a serial carry chain.
   Only at the end of a column is s0 split into an output limb and a
   carry folded into the next column. The column sums stay below 2^61
   for any k <= 128 limbs (6656-bit moduli), far beyond every modulus in
   the system; [create] enforces the bound.

   Reduction is the separated product-scanning (SPS) form: the full
   2k-limb product goes to a scratch vector, then a second column scan
   derives the Montgomery quotient digits mu_i and accumulates mu*n.
   One reduction implementation serves both [mont_mul] and the dedicated
   [mont_sqr] (square columns compute each off-diagonal product once and
   double it — ~25% fewer half-limb multiplies, and squarings are ~3/4
   of every exponentiation).

   Codegen notes (no flambda): each scan is a top-level tail-recursive
   function whose parameters all fit the native-code argument registers,
   so the column and product state (i, c, s0, s1, carry) never touches
   the stack; a split is ONE interleaved array [l0; h0; l1; h1; ...] so
   a scan keeps two array pointers live instead of four and each
   product's halves share a cache line. *)

let base_bits = 52
let base = 1 lsl base_bits
let mask = base - 1
let hbits = 26
let hmask = (1 lsl hbits) - 1

(* Half-limb splits of a k-limb operand, interleaved: element 2i is the
   low 26 bits of limb i, element 2i+1 the high 26. *)
type split = int array

type ctx = {
  m : Nat.t;
  n : int array; (* modulus limbs, length k *)
  nsp : split; (* half-limb splits of n *)
  k : int;
  n0' : int; (* -m^-1 mod 2^52 *)
  r2 : int array; (* R^2 mod m, padded to k limbs *)
  r2sp : split;
  one_mont : int array; (* R mod m = to_mont 1 *)
  onesp : split; (* splits of the k-limb vector 1, for conversion out *)
}

(* A value < m held in Montgomery form (a*R mod m) as a k+2-limb vector
   whose top two limbs are zero. Residues are tied to the ctx that made
   them. *)
type residue = int array

(* Per-call working state, reused across chained operations: the
   2k+1-limb double-wide product, the splits of the scanned operand, and
   the quotient-digit splits of the reduction pass. Not shared across
   domains — each exponentiation allocates its own. *)
type scratch = {
  w : int array; (* 2k+1 limbs: the full product before reduction *)
  xsp : int array; (* interleaved splits of the scanned (left) operand *)
  qsp : int array; (* interleaved splits of the quotient digits mu_i *)
}

let make_scratch k =
  { w = Array.make ((2 * k) + 1) 0; xsp = Array.make (2 * k) 0; qsp = Array.make (2 * k) 0 }

let split_into k (a : int array) (sp : int array) =
  for i = 0 to k - 1 do
    let x = Array.unsafe_get a i in
    Array.unsafe_set sp (2 * i) (x land hmask);
    Array.unsafe_set sp ((2 * i) + 1) (x lsr hbits)
  done

let make_split k (a : int array) : split =
  let sp = Array.make (2 * k) 0 in
  split_into k a sp;
  sp

let pad k a =
  let r = Array.make k 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

(* x >= y as k-limb vectors *)
let geq k x y =
  let rec go i = if i < 0 then true else if x.(i) <> y.(i) then x.(i) > y.(i) else go (i - 1) in
  go (k - 1)

(* conditional subtraction: the reduction bound gives t < 2m with the
   overflow bit in t.(k); one subtraction of m normalizes *)
let reduce_once ctx (t : int array) =
  let k = ctx.k in
  if t.(k) <> 0 || geq k t ctx.n then begin
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let d = t.(i) - ctx.n.(i) - !borrow in
      if d < 0 then begin
        t.(i) <- d + base;
        borrow := 1
      end
      else begin
        t.(i) <- d;
        borrow := 0
      end
    done;
    t.(k) <- t.(k) - !borrow
  end

(* Column scan of x * b into w: i walks the products (i, c-i) of column
   c, accumulating plos in s0 and phis in s1; at column end the limb is
   emitted and the carry folds into the next column. All mutable state
   rides in parameters (registers). *)
let rec mul_scan xsp bsp w km1 cmax c i hi s0 s1 =
  if i <= hi then begin
    let al = Array.unsafe_get xsp (2 * i) and ah = Array.unsafe_get xsp ((2 * i) + 1) in
    let j2 = 2 * (c - i) in
    let bl = Array.unsafe_get bsp j2 and bh = Array.unsafe_get bsp (j2 + 1) in
    let p0 = al * bl and p2 = ah * bh in
    let pm = (al * bh) + (ah * bl) in
    mul_scan xsp bsp w km1 cmax c (i + 1) hi
      (s0 + p0 + ((pm land hmask) lsl hbits))
      (s1 + p2 + (pm lsr hbits))
  end
  else begin
    Array.unsafe_set w c (s0 land mask);
    let carry = (s0 lsr base_bits) + s1 in
    let c = c + 1 in
    if c > cmax then carry
    else begin
      let lo = if c - km1 > 0 then c - km1 else 0 in
      let hi = if c < km1 then c else km1 in
      mul_scan xsp bsp w km1 cmax c lo hi carry 0
    end
  end

(* sc.w <- a * b; [a]'s splits land in sc.xsp. *)
let comba_mul ctx sc (a : int array) (b : split) =
  let k = ctx.k in
  let w = sc.w and xsp = sc.xsp in
  split_into k a xsp;
  let carry = mul_scan xsp b w (k - 1) ((2 * k) - 2) 0 0 0 0 0 in
  w.((2 * k) - 1) <- carry land mask;
  w.(2 * k) <- carry lsr base_bits

(* sc.w <- x * b with [x] given directly by its splits — e.g. sc.xsp as
   left there by the previous [comba_reduce] of a chained operation, or
   a window-table entry. *)
let comba_mul_sp ctx sc (x : split) (b : split) =
  let k = ctx.k in
  let w = sc.w in
  let carry = mul_scan x b w (k - 1) ((2 * k) - 2) 0 0 0 0 0 in
  w.((2 * k) - 1) <- carry land mask;
  w.(2 * k) <- carry lsr base_bits

(* Squaring scan: pairs (i, c-i) with i < c-i contribute twice, the
   diagonal limb c/2 once on even columns (handled at column end, where
   2*(c/2) = c indexes its split directly). *)
let rec sqr_scan xsp w km1 cmax c i hi s0 s1 =
  if i <= hi then begin
    let al = Array.unsafe_get xsp (2 * i) and ah = Array.unsafe_get xsp ((2 * i) + 1) in
    let j2 = 2 * (c - i) in
    let bl = Array.unsafe_get xsp j2 and bh = Array.unsafe_get xsp (j2 + 1) in
    let p0 = al * bl and p2 = ah * bh in
    let pm = (al * bh) + (ah * bl) in
    sqr_scan xsp w km1 cmax c (i + 1) hi
      (s0 + (2 * (p0 + ((pm land hmask) lsl hbits))))
      (s1 + (2 * (p2 + (pm lsr hbits))))
  end
  else begin
    let s0, s1 =
      if c land 1 = 0 then begin
        let al = Array.unsafe_get xsp c and ah = Array.unsafe_get xsp (c + 1) in
        let dm = 2 * (al * ah) in
        (s0 + (al * al) + ((dm land hmask) lsl hbits), s1 + (ah * ah) + (dm lsr hbits))
      end
      else (s0, s1)
    in
    Array.unsafe_set w c (s0 land mask);
    let carry = (s0 lsr base_bits) + s1 in
    let c = c + 1 in
    if c > cmax then carry
    else begin
      let lo = if c - km1 > 0 then c - km1 else 0 in
      (* [asr] floors so c = 1 gives hi = 0 and c = 0 would give -1
         (plain [/] truncates toward zero) *)
      let hi = (c - 1) asr 1 in
      sqr_scan xsp w km1 cmax c lo hi carry 0
    end
  end

(* sc.w <- x * x with [x] given directly by its splits. *)
let comba_sqr_sp ctx sc (x : split) =
  let k = ctx.k in
  let w = sc.w in
  let carry = sqr_scan x w (k - 1) ((2 * k) - 2) 0 0 (-1) 0 0 in
  w.((2 * k) - 1) <- carry land mask;
  w.(2 * k) <- carry lsr base_bits

(* Low-column reduction scan: column c accumulates w.(c) plus the mu*n
   products of the already-derived quotient digits, then derives digit
   mu_c and closes the column with mu_c * n_0 (zeroing the low 52 bits).
   The carry is the only value crossing columns. *)
let rec red_lo_scan qsp nsp w n0' kk c i s0 s1 =
  if i < c then begin
    let ml = Array.unsafe_get qsp (2 * i) and mh = Array.unsafe_get qsp ((2 * i) + 1) in
    let j2 = 2 * (c - i) in
    let nl = Array.unsafe_get nsp j2 and nh = Array.unsafe_get nsp (j2 + 1) in
    let q0 = ml * nl and q2 = mh * nh in
    let qm = (ml * nh) + (mh * nl) in
    red_lo_scan qsp nsp w n0' kk c (i + 1)
      (s0 + q0 + ((qm land hmask) lsl hbits))
      (s1 + q2 + (qm lsr hbits))
  end
  else begin
    let mu = s0 * n0' land mask in
    let ml = mu land hmask and mh = mu lsr hbits in
    Array.unsafe_set qsp (2 * c) ml;
    Array.unsafe_set qsp ((2 * c) + 1) mh;
    let nl = Array.unsafe_get nsp 0 and nh = Array.unsafe_get nsp 1 in
    let q0 = ml * nl and q2 = mh * nh in
    let qm = (ml * nh) + (mh * nl) in
    let s0 = s0 + q0 + ((qm land hmask) lsl hbits) in
    let s1 = s1 + q2 + (qm lsr hbits) in
    (* the low 52 bits of s0 are zero by choice of mu *)
    let carry = (s0 lsr base_bits) + s1 in
    let c = c + 1 in
    if c >= kk then carry
    else red_lo_scan qsp nsp w n0' kk c 0 (carry + Array.unsafe_get w c) 0
  end

(* High-column reduction scan: emits result limb c-k per column, plus
   the limb's half-splits straight into [xsp] so a chained follow-up
   multiplication or squaring of the result can skip its own
   [split_into] pass. *)
let rec red_hi_scan qsp nsp w t xsp kk c i s0 s1 =
  if i < kk then begin
    let ml = Array.unsafe_get qsp (2 * i) and mh = Array.unsafe_get qsp ((2 * i) + 1) in
    let j2 = 2 * (c - i) in
    let nl = Array.unsafe_get nsp j2 and nh = Array.unsafe_get nsp (j2 + 1) in
    let q0 = ml * nl and q2 = mh * nh in
    let qm = (ml * nh) + (mh * nl) in
    red_hi_scan qsp nsp w t xsp kk c (i + 1)
      (s0 + q0 + ((qm land hmask) lsl hbits))
      (s1 + q2 + (qm lsr hbits))
  end
  else begin
    let limb = s0 land mask in
    let c2 = 2 * (c - kk) in
    Array.unsafe_set t (c - kk) limb;
    Array.unsafe_set xsp c2 (limb land hmask);
    Array.unsafe_set xsp (c2 + 1) (limb lsr hbits);
    let carry = (s0 lsr base_bits) + s1 in
    let c = c + 1 in
    if c >= 2 * kk then carry
    else red_hi_scan qsp nsp w t xsp kk c (c - kk + 1) (carry + Array.unsafe_get w c) 0
  end

(* t <- sc.w * R^-1 mod m: SPS Montgomery reduction of the double-wide
   product. [t] has k+2 limbs and may alias the operand that produced
   sc.w. *)
let comba_reduce ctx sc (t : int array) =
  let k = ctx.k in
  let w = sc.w and qsp = sc.qsp in
  let carry = red_lo_scan qsp ctx.nsp w ctx.n0' k 0 0 w.(0) 0 in
  let carry = red_hi_scan qsp ctx.nsp w t sc.xsp k k 1 (carry + w.(k)) 0 in
  t.(k) <- carry + w.(2 * k);
  t.(k + 1) <- 0;
  if t.(k) <> 0 || geq k t ctx.n then begin
    (* rare conditional subtract invalidates the emitted splits *)
    reduce_once ctx t;
    split_into k t sc.xsp
  end

(* t <- mont(a, b) = a*b*R^-1 mod m; [a] and [t] are k(+2)-limb vectors
   (t may alias a), [b] is given by its half-limb splits. *)
let mont_mul ctx sc (t : int array) (a : int array) (b : split) =
  comba_mul ctx sc a b;
  comba_reduce ctx sc t

(* Chained forms: the operand is whatever the last comba_reduce through
   [sc] produced (its splits are still in sc.xsp), so the splitting pass
   is skipped. Used by the exponentiation ladders, where every operation
   feeds the next. [comba_reduce] writes sc.xsp only after the product
   scan has consumed it, so aliasing x with sc.xsp is safe. *)
let mont_mul_chained ctx sc (t : int array) (b : split) =
  comba_mul_sp ctx sc sc.xsp b;
  comba_reduce ctx sc t

let mont_sqr_chained ctx sc (t : int array) =
  comba_sqr_sp ctx sc sc.xsp;
  comba_reduce ctx sc t

(* Column accumulators hold up to k doubled plos (< 2^54 each) plus an
   inter-column carry; k = 128 keeps everything below 2^61 < 2^62. *)
let max_limbs = 128

let create m =
  if Nat.is_zero m || Nat.is_even m || Nat.compare m (Nat.of_int 3) < 0 then None
  else begin
    let n = Nat.limbs m in
    let k = Array.length n in
    if k > max_limbs then None
    else begin
      (* n0' = -n^{-1} mod 2^52 by Newton-Hensel lifting *)
      let n0 = n.(0) in
      let inv = ref 1 in
      for _ = 1 to 6 do
        inv := !inv * (2 - (n0 * !inv)) land mask
      done;
      let n0' = (base - !inv) land mask in
      let r2 = Nat.rem (Nat.shift_left Nat.one (2 * base_bits * k)) m in
      let r1 = Nat.rem (Nat.shift_left Nat.one (base_bits * k)) m in
      let one_plain = Array.make k 0 in
      one_plain.(0) <- 1;
      let r2 = pad k (Nat.limbs r2) in
      Some
        {
          m;
          n;
          nsp = make_split k n;
          k;
          n0';
          r2;
          r2sp = make_split k r2;
          one_mont = pad k (Nat.limbs r1);
          onesp = make_split k one_plain;
        }
    end
  end

let modulus ctx = ctx.m

(* First k limbs -> Nat; both sides use base-2^52 little-endian limbs. *)
let of_limbs k (t : int array) = Nat.of_limbs (Array.sub t 0 k)

(* ---------------- Montgomery-resident operations ----------------

   Chained products and exponentiations convert once on the way in, once
   on the way out, and pay exactly one reduction pass (no division, no
   re-padding) per intermediate operation. *)

let reduced ctx a = if Nat.compare a ctx.m < 0 then a else Nat.rem a ctx.m

let to_mont ctx a =
  let t = Array.make (ctx.k + 2) 0 in
  mont_mul ctx (make_scratch ctx.k) t (pad ctx.k (Nat.limbs (reduced ctx a))) ctx.r2sp;
  t

let from_mont ctx (r : residue) =
  let t = Array.make (ctx.k + 2) 0 in
  mont_mul ctx (make_scratch ctx.k) t r ctx.onesp;
  of_limbs ctx.k t

let one_mont ctx : residue = pad (ctx.k + 2) ctx.one_mont

let mul_resident ctx (a : residue) (b : residue) : residue =
  let t = Array.make (ctx.k + 2) 0 in
  mont_mul ctx (make_scratch ctx.k) t a (make_split ctx.k b);
  t

(* 4-bit window table b^1..b^15 with the splits the inner loop wants;
   entry 0 is unused. Even entries are squarings of entry i/2 (cheaper
   than a general multiply); every entry is captured straight from the
   reduction's split output. *)
let window_table ctx sc (b : residue) : split array =
  let k = ctx.k in
  let tbl = Array.make 16 ctx.onesp in
  tbl.(1) <- make_split k b;
  let t = Array.make (k + 2) 0 in
  for i = 2 to 15 do
    if i land 1 = 0 then comba_sqr_sp ctx sc tbl.(i / 2)
    else comba_mul_sp ctx sc tbl.(i - 1) tbl.(1);
    comba_reduce ctx sc t;
    tbl.(i) <- Array.copy sc.xsp
  done;
  tbl

(* 4-bit window digits read straight out of the exponent's limb vector:
   52 is a multiple of 4, so a window never straddles a limb. *)
let digit (el : int array) w =
  let bit = 4 * w in
  let limb = bit / base_bits in
  if limb >= Array.length el then 0 else (el.(limb) lsr (bit - (limb * base_bits))) land 15

let pow_resident ctx (b : residue) e : residue =
  let k = ctx.k in
  if Nat.is_zero e then one_mont ctx
  else begin
    let sc = make_scratch k in
    let cur = Array.make (k + 2) 0 in
    let table = window_table ctx sc b in
    let el = Nat.limbs e in
    let nbits = Nat.bit_length e in
    let nwin = (nbits + 3) / 4 in
    Array.blit ctx.one_mont 0 cur 0 k;
    split_into k ctx.one_mont sc.xsp;
    for w = nwin - 1 downto 0 do
      if w <> nwin - 1 then
        for _ = 1 to 4 do
          mont_sqr_chained ctx sc cur
        done;
      let idx = digit el w in
      if idx <> 0 then mont_mul_chained ctx sc cur table.(idx)
    done;
    cur
  end

(* Simultaneous multi-exponentiation (interleaved 4-bit windows): one
   shared run of squarings for all bases, each base's window table
   multiplied in at its own digits. For p bases of w windows this costs
   4*w squarings (instead of p*4*w) plus the same table/window products
   as separate exponentiations. *)
let multi_pow_resident ctx (pairs : (residue * Nat.t) array) : residue =
  let k = ctx.k in
  let np = Array.length pairs in
  let maxbits = Array.fold_left (fun acc (_, e) -> max acc (Nat.bit_length e)) 0 pairs in
  if np = 0 || maxbits = 0 then one_mont ctx
  else begin
    let sc = make_scratch k in
    let cur = Array.make (k + 2) 0 in
    let tables =
      Array.map (fun (b, e) -> if Nat.is_zero e then [||] else window_table ctx sc b) pairs
    in
    let els = Array.map (fun (_, e) -> Nat.limbs e) pairs in
    let nwin = (maxbits + 3) / 4 in
    Array.blit ctx.one_mont 0 cur 0 k;
    split_into k ctx.one_mont sc.xsp;
    for w = nwin - 1 downto 0 do
      if w <> nwin - 1 then
        for _ = 1 to 4 do
          mont_sqr_chained ctx sc cur
        done;
      for p = 0 to np - 1 do
        let idx = digit els.(p) w in
        if idx <> 0 then mont_mul_chained ctx sc cur tables.(p).(idx)
      done
    done;
    cur
  end

(* a * b mod m in two reductions: mont(a, R^2) = aR, then mont(aR, b) = ab.
   Operands already below m skip the trial division entirely. *)
let mul ctx a b =
  let k = ctx.k in
  let sc = make_scratch k in
  let a' = pad k (Nat.limbs (reduced ctx a)) in
  let b' = pad k (Nat.limbs (reduced ctx b)) in
  let am = Array.make (k + 2) 0 in
  mont_mul ctx sc am a' ctx.r2sp;
  mont_mul_chained ctx sc am (make_split k b');
  of_limbs k am

let pow ctx b e =
  if Nat.is_zero e then Nat.rem Nat.one ctx.m
  else from_mont ctx (pow_resident ctx (to_mont ctx b) e)
