(** Fixed-base windowed exponentiation.

    Precomputes a comb table for one base modulo one odd modulus so that
    subsequent exponentiations cost roughly one Montgomery multiplication
    per nonzero 4-bit digit of the exponent. Built for Paillier/DJ noise
    generation, where the fixed n-th residue [h] is raised to a fresh
    short exponent on every encryption and re-randomization. *)

type t

(** [create ctx ~base ~max_bits] precomputes the comb for exponents up to
    [max_bits] bits wide. Cost: ~[max_bits * 19 / 4] Montgomery
    multiplications, paid once per (base, modulus) pair. *)
val create : Montgomery.ctx -> base:Nat.t -> max_bits:int -> t

(** [cached ~base ~m ~max_bits] is the process-wide comb for [base]
    modulo [m], built on first use (and rebuilt if a wider [max_bits] is
    requested later). [None] when [m] has no Montgomery context (even
    modulus). Domain-safe; combs are immutable once built.

    The cache holds at most {!set_capacity} combs (default 32) and
    evicts the least-recently used one on overflow, so a long-lived
    server cannot accumulate a comb per client key. *)
val cached : base:Nat.t -> m:Nat.t -> max_bits:int -> t option

(** Bound the comb cache to [n] entries (default 32), evicting
    least-recently used combs immediately if over. Raises
    [Invalid_argument] when [n < 1]. *)
val set_capacity : int -> unit

(** Number of combs currently cached. *)
val cached_count : unit -> int

(** Drop every cached comb and restore the default capacity. Tests and
    long-running servers use this to release table memory; subsequent
    {!cached} calls rebuild on demand. *)
val reset : unit -> unit

(** Widest supported exponent, in bits. *)
val max_bits : t -> int

val modulus : t -> Nat.t

(** [pow t e] is [base^e mod m]. Raises [Invalid_argument] if
    [Nat.bit_length e > max_bits t]. *)
val pow : t -> Nat.t -> Nat.t
