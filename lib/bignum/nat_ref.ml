(* Retained reference implementation: arbitrary-precision naturals at
   base 2^26, little-endian limb arrays. This is the pre-wide-limb [Nat]
   kept verbatim as the oracle for the randomized differential tests in
   test_bignum (the production [Nat] now runs at base 2^52). Keep it
   boring and obviously correct; never optimize it.

   Invariant: the array has no most-significant zero limb, so the
   representation of each value is unique and [compare] can go by length
   first. Base 2^26 keeps every intermediate of schoolbook multiplication
   and Knuth division inside a 63-bit native int:
     limb * limb <= (2^26-1)^2 < 2^52, plus carries < 2^53. *)

type t = int array

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

let zero : t = [||]

let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero (x : t) = Array.length x = 0
let is_one (x : t) = Array.length x = 1 && x.(0) = 1
let is_even (x : t) = Array.length x = 0 || x.(0) land 1 = 0
let limb_count (x : t) = Array.length x
let limbs (x : t) = Array.copy x

(* Strip most-significant zero limbs. *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_limbs (a : int array) : t = normalize (Array.copy a)

let of_int n : t =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr base_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let v = ref n in
    for i = 0 to len - 1 do
      a.(i) <- !v land mask;
      v := !v lsr base_bits
    done;
    a
  end

let bit_length_arr (x : t) =
  let n = Array.length x in
  if n = 0 then 0
  else begin
    let top = x.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0
  end

let to_int_opt (x : t) =
  if bit_length_arr x > 62 then None
  else begin
    let acc = ref 0 in
    for i = Array.length x - 1 downto 0 do
      acc := (!acc lsl base_bits) lor x.(i)
    done;
    Some !acc
  end

let to_int x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Nat.to_int: does not fit"

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  normalize r

let succ x = add x one
let pred x = sub x one

let add_int (a : t) (n : int) =
  if n < 0 then invalid_arg "Nat.add_int: negative" else add a (of_int n)

(* Schoolbook multiplication; used directly below the Karatsuba cutoff. *)
let mul_school (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let cur = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- cur land mask;
          carry := cur lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let cur = r.(!k) + !carry in
          r.(!k) <- cur land mask;
          carry := cur lsr base_bits;
          incr k
        done
      end
    done;
    normalize r
  end

let karatsuba_cutoff = 24

(* Split x into (low, high) at limb index k. *)
let split_at (x : t) k : t * t =
  let n = Array.length x in
  if n <= k then (x, zero)
  else (normalize (Array.sub x 0 k), Array.sub x k (n - k))

let shift_limbs (x : t) k : t =
  if is_zero x then zero
  else begin
    let n = Array.length x in
    let r = Array.make (n + k) 0 in
    Array.blit x 0 r k n;
    r
  end

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_cutoff || lb < karatsuba_cutoff then mul_school a b
  else begin
    let k = (if la > lb then la else lb) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let mul_int (a : t) (n : int) =
  if n < 0 then invalid_arg "Nat.mul_int: negative"
  else if n = 0 || is_zero a then zero
  else if n < base then begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * n) + !carry in
      r.(i) <- cur land mask;
      carry := cur lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land mask;
      carry := !carry lsr base_bits;
      incr k
    done;
    normalize r
  end
  else mul a (of_int n)

let bit_length = bit_length_arr

let nth_bit (x : t) i =
  if i < 0 then invalid_arg "Nat.nth_bit";
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length x && (x.(limb) lsr off) land 1 = 1

let shift_left (x : t) s : t =
  if s < 0 then invalid_arg "Nat.shift_left";
  if is_zero x || s = 0 then x
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let n = Array.length x in
    let r = Array.make (n + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit x 0 r limb_shift n
    else begin
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let v = (x.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- v land mask;
        carry := v lsr base_bits
      done;
      r.(n + limb_shift) <- !carry
    end;
    normalize r
  end

let shift_right (x : t) s : t =
  if s < 0 then invalid_arg "Nat.shift_right";
  if is_zero x || s = 0 then x
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let n = Array.length x in
    if limb_shift >= n then zero
    else begin
      let m = n - limb_shift in
      let r = Array.make m 0 in
      if bit_shift = 0 then Array.blit x limb_shift r 0 m
      else
        for i = 0 to m - 1 do
          let lo = x.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < n then
              (x.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done;
      normalize r
    end
  end

let divmod_int (a : t) (d : int) : t * int =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_int: divisor out of range";
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Knuth TAOCP vol. 2, Algorithm D (4.3.1). Divisor is normalized by a left
   shift so its top limb has its high bit set, which bounds the qhat
   estimate error to at most 2 and makes the add-back branch rare. *)
let divmod_big (u0 : t) (v0 : t) : t * t =
  let n = Array.length v0 in
  let shift = base_bits - (bit_length v0 - (n - 1) * base_bits) in
  let u = shift_left u0 shift and v = shift_left v0 shift in
  let v = (v : int array) in
  let lu = Array.length u in
  let m = lu - n in
  (* working copy of u with one extra high limb *)
  let w = Array.make (lu + 1) 0 in
  Array.blit u 0 w 0 lu;
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) and vn2 = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    let top = (w.(j + n) lsl base_bits) lor w.(j + n - 1) in
    let qhat = ref (top / vn1) and rhat = ref (top mod vn1) in
    if !qhat >= base then begin
      rhat := !rhat + (!qhat - (base - 1)) * vn1;
      qhat := base - 1
    end;
    let continue = ref true in
    while !continue && !rhat < base do
      let lhs = !qhat * vn2 in
      let rhs = (!rhat lsl base_bits) lor (if j + n - 2 >= 0 then w.(j + n - 2) else 0) in
      if lhs > rhs then begin decr qhat; rhat := !rhat + vn1 end
      else continue := false
    done;
    (* multiply and subtract: w[j..j+n] -= qhat * v *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * v.(i) + !carry in
      carry := p lsr base_bits;
      let d = w.(i + j) - (p land mask) - !borrow in
      if d < 0 then begin w.(i + j) <- d + base; borrow := 1 end
      else begin w.(i + j) <- d; borrow := 0 end
    done;
    let d = w.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add back *)
      w.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = w.(i + j) + v.(i) + !c in
        w.(i + j) <- s land mask;
        c := s lsr base_bits
      done;
      w.(j + n) <- (w.(j + n) + !c) land mask
    end
    else w.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub w 0 n) in
  (normalize q, shift_right r shift)

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end
  else divmod_big a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow (b : t) (e : int) : t =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let to_bytes (x : t) : string =
  let bits = bit_length x in
  let nbytes = (bits + 7) / 8 in
  let buf = Bytes.make nbytes '\000' in
  for i = 0 to nbytes - 1 do
    (* byte i counted from the least-significant end *)
    let b = ref 0 in
    for k = 0 to 7 do
      if nth_bit x ((8 * i) + k) then b := !b lor (1 lsl k)
    done;
    Bytes.set buf (nbytes - 1 - i) (Char.chr !b)
  done;
  Bytes.to_string buf

let of_bytes (s : string) : t =
  let n = String.length s in
  let nlimbs = ((8 * n) + base_bits - 1) / base_bits in
  let a = Array.make nlimbs 0 in
  for i = 0 to n - 1 do
    (* byte at string index i is byte (n-1-i) from the LS end *)
    let byte = Char.code s.[i] in
    let bitpos = 8 * (n - 1 - i) in
    let limb = bitpos / base_bits and off = bitpos mod base_bits in
    a.(limb) <- a.(limb) lor ((byte lsl off) land mask);
    if off > base_bits - 8 && limb + 1 < nlimbs then
      a.(limb + 1) <- a.(limb + 1) lor (byte lsr (base_bits - off))
  done;
  normalize a

let to_string (x : t) : string =
  if is_zero x then "0"
  else begin
    let chunks = ref [] in
    let v = ref x in
    while not (is_zero !v) do
      let q, r = divmod_int !v 10_000_000 in
      chunks := r :: !chunks;
      v := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest;
      Buffer.contents buf
  end

let of_string (s : string) : t =
  let s = if String.length s > 0 && s.[0] = '+' then String.sub s 1 (String.length s - 1) else s in
  if String.length s = 0 then invalid_arg "Nat.of_string: empty";
  let acc = ref zero in
  let pending = ref 0 and pending_len = ref 0 in
  String.iter
    (fun c ->
      if c = '_' then ()
      else if c < '0' || c > '9' then invalid_arg "Nat.of_string: bad digit"
      else begin
        pending := (!pending * 10) + (Char.code c - Char.code '0');
        incr pending_len;
        if !pending_len = 7 then begin
          acc := add_int (mul_int !acc 10_000_000) !pending;
          pending := 0;
          pending_len := 0
        end
      end)
    s;
  if !pending_len > 0 then begin
    let scale = ref 1 in
    for _ = 1 to !pending_len do
      scale := !scale * 10
    done;
    acc := add_int (mul_int !acc !scale) !pending
  end;
  !acc

let to_hex (x : t) : string =
  if is_zero x then "0"
  else begin
    let b = to_bytes x in
    let buf = Buffer.create (2 * String.length b) in
    String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
    (* strip a single leading zero nibble if present *)
    let s = Buffer.contents buf in
    if String.length s > 1 && s.[0] = '0' then String.sub s 1 (String.length s - 1) else s
  end

let of_hex (s : string) : t =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Nat.of_hex: bad digit"
  in
  let acc = ref zero in
  String.iter (fun c -> if c <> '_' then acc := add_int (shift_left !acc 4) (digit c)) s;
  !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)
