(* Fixed-base windowed exponentiation (a comb over 4-bit digits).

   For a base g that is raised to many different exponents modulo the same
   m — Paillier/DJ noise generation raises the fixed n-th residue h on
   every encrypt and rerandomize — precompute

     tables.(i).(d-1) = g^(d * 16^i) mod m   (d in 1..15)

   once, after which g^e costs one Montgomery multiplication per nonzero
   4-bit digit of e (~ max_bits/4 on average), instead of the ~max_bits
   square-and-multiply passes of a generic modexp. All table entries and
   intermediates stay Montgomery-resident; a single conversion happens on
   the way out. *)

let window = 4
let digits = (1 lsl window) - 1

type t = {
  ctx : Montgomery.ctx;
  max_bits : int;
  tables : Montgomery.residue array array;
}

let create ctx ~base ~max_bits =
  if max_bits <= 0 then invalid_arg "Fixed_base.create: max_bits <= 0";
  let nwin = (max_bits + window - 1) / window in
  let tables =
    Array.make nwin [||]
  in
  (* g_i = base^(16^i): advance by [window] squarings between rows *)
  let g_i = ref (Montgomery.to_mont ctx base) in
  for i = 0 to nwin - 1 do
    let row = Array.make digits !g_i in
    for d = 1 to digits - 1 do
      row.(d) <- Montgomery.mul_resident ctx row.(d - 1) !g_i
    done;
    tables.(i) <- row;
    if i < nwin - 1 then
      for _ = 1 to window do
        g_i := Montgomery.mul_resident ctx !g_i !g_i
      done
  done;
  { ctx; max_bits; tables }

let max_bits t = t.max_bits
let modulus t = Montgomery.modulus t.ctx

(* Combs are cached per (base, modulus) with a bounded LRU policy: the
   steady state only ever combs a handful of noise bases (h mod n^2,
   h2 mod n^3 per key pair), but a long-lived server handling many
   sessions would otherwise accumulate a comb per client key, and a comb
   is large (~max_bits/4 * 15 residues). Each hit stamps the entry with
   a monotonically increasing tick; insertion beyond [capacity] evicts
   the least-recently used entry. Guarded by a mutex for the domain
   pool; a comb is immutable once built, so sharing across domains is
   safe. *)

type entry = { fb : t; mutable tick : int }

let cache : (Nat.t * Nat.t, entry) Hashtbl.t = Hashtbl.create 8

let cache_lock = Mutex.create ()

let clock = ref 0

let capacity = ref 32

let default_capacity = 32

let evict_lru () =
  (* called with the lock held; drop entries until within capacity *)
  while Hashtbl.length cache > !capacity do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.tick <= e.tick -> acc
          | _ -> Some (key, e))
        cache None
    in
    match victim with
    | Some (key, _) -> Hashtbl.remove cache key
    | None -> ()
  done

let set_capacity n =
  if n < 1 then invalid_arg "Fixed_base.set_capacity";
  Mutex.lock cache_lock;
  capacity := n;
  evict_lru ();
  Mutex.unlock cache_lock

let reset () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  capacity := default_capacity;
  Mutex.unlock cache_lock

let cached_count () =
  Mutex.lock cache_lock;
  let n = Hashtbl.length cache in
  Mutex.unlock cache_lock;
  n

let cached ~base ~m ~max_bits:wanted =
  match Modular.mont_ctx m with
  | None -> None
  | Some ctx ->
    Mutex.lock cache_lock;
    incr clock;
    let fb =
      match Hashtbl.find_opt cache (base, m) with
      | Some e when wanted <= e.fb.max_bits ->
        e.tick <- !clock;
        e.fb
      | _ ->
        let fb = create ctx ~base ~max_bits:wanted in
        Hashtbl.replace cache (base, m) { fb; tick = !clock };
        evict_lru ();
        fb
    in
    Mutex.unlock cache_lock;
    Some fb

let pow t e =
  Obs.bump Obs.Metrics.Modexp_fixed_base;
  if Nat.bit_length e > t.max_bits then
    invalid_arg "Fixed_base.pow: exponent exceeds the precomputed width";
  if Nat.is_zero e then Nat.rem Nat.one (Montgomery.modulus t.ctx)
  else begin
    let acc = ref None in
    for i = 0 to Array.length t.tables - 1 do
      let base_bit = window * i in
      let bit j = if Nat.nth_bit e (base_bit + j) then 1 lsl j else 0 in
      let d = bit 0 lor bit 1 lor bit 2 lor bit 3 in
      if d <> 0 then begin
        let entry = t.tables.(i).(d - 1) in
        acc :=
          Some
            (match !acc with
            | None -> entry
            | Some r -> Montgomery.mul_resident t.ctx r entry)
      end
    done;
    match !acc with
    | None -> Nat.rem Nat.one (Montgomery.modulus t.ctx) (* unreachable: e <> 0 *)
    | Some r -> Montgomery.from_mont t.ctx r
  end
