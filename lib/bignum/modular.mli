(** Modular arithmetic over {!Nat} values.

    All functions expect operands already reduced modulo [m] unless stated
    otherwise; results are always in [[0, m)]. *)

(** [add a b ~m] is [(a + b) mod m]. *)
val add : Nat.t -> Nat.t -> m:Nat.t -> Nat.t

(** [sub a b ~m] is [(a - b) mod m]. *)
val sub : Nat.t -> Nat.t -> m:Nat.t -> Nat.t

(** [mul a b ~m] is [(a * b) mod m] — through the cached Montgomery
    context when [m] is odd (two divisionless CIOS passes), schoolbook
    multiply-and-reduce otherwise. *)
val mul : Nat.t -> Nat.t -> m:Nat.t -> Nat.t

(** [pow b e ~m] is [b^e mod m] by square-and-multiply. *)
val pow : Nat.t -> Nat.t -> m:Nat.t -> Nat.t

(** [multi_pow [(b1, e1); ...] ~m] is [b1^e1 * b2^e2 * ... mod m] as one
    simultaneous (Shamir interleaved-window) exponentiation: all factors
    share a single squaring chain, so the product costs little more than
    the widest single [pow]. The empty list yields [1 mod m]. Counted as
    one modexp in {!Obs}. *)
val multi_pow : (Nat.t * Nat.t) list -> m:Nat.t -> Nat.t

(** [mont_ctx m] is the process-wide cached Montgomery context for [m]
    ([None] when [m] is even or too small). The cache is domain-safe;
    callers chaining resident operations ({!Montgomery.residue},
    {!Fixed_base}) fetch the context once through here. *)
val mont_ctx : Nat.t -> Montgomery.ctx option

(** [inv a ~m] is the multiplicative inverse of [a] modulo [m]. Raises
    [Failure] if [gcd a m <> 1]. Extended Euclid. *)
val inv : Nat.t -> m:Nat.t -> Nat.t

(** [inv_many xs ~m] inverts every element of [xs] with Montgomery's
    batch trick: one extended Euclid plus [3(n-1)] modular
    multiplications, instead of [n] egcds. Raises [Failure] (like
    {!inv}) if any element is not invertible. *)
val inv_many : Nat.t list -> m:Nat.t -> Nat.t list

(** Greatest common divisor. *)
val gcd : Nat.t -> Nat.t -> Nat.t

(** Least common multiple. *)
val lcm : Nat.t -> Nat.t -> Nat.t

(** [egcd a b] returns [(g, x, y)] with [a*x + b*y = g = gcd a b]. *)
val egcd : Nat.t -> Nat.t -> Nat.t * Bigint.t * Bigint.t

(** [crt2 (r1, m1) (r2, m2)] solves [x = r1 mod m1], [x = r2 mod m2] for
    coprime moduli; the result is in [[0, m1*m2)]. *)
val crt2 : Nat.t * Nat.t -> Nat.t * Nat.t -> Nat.t
