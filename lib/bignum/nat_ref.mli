(** Reference implementation of arbitrary-precision natural numbers.

    Values are immutable little-endian limb vectors in base [2^26]. The base
    is chosen so that a limb product plus carries fits in OCaml's 63-bit
    native [int] ([2^52 + slack < 2^62]), which lets every inner loop run on
    unboxed integers. All results are normalized (no most-significant zero
    limbs); [zero] is the empty vector. *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] converts a non-negative [int]. Raises [Invalid_argument] on
    negative input. *)
val of_int : int -> t

(** [to_int x] converts back to [int]; raises [Failure] if [x >= 2^62]. *)
val to_int : t -> int

val to_int_opt : t -> int option
val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool

(** Total order; [compare a b] is negative, zero or positive as [a < b],
    [a = b], [a > b]. *)
val compare : t -> t -> int

val add : t -> t -> t

(** [sub a b] computes [a - b]. Raises [Invalid_argument] if [b > a]. *)
val sub : t -> t -> t

val succ : t -> t
val pred : t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val add_int : t -> int -> t

(** [divmod a b] returns [(q, r)] with [a = q*b + r] and [0 <= r < b].
    Raises [Division_by_zero] if [b] is zero. Knuth Algorithm D. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [divmod_int a b] is division by a small positive divisor [b < 2^26]. *)
val divmod_int : t -> int -> t * int

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** Number of significant bits; [bit_length zero = 0]. *)
val bit_length : t -> int

(** [nth_bit x i] is bit [i] (little-endian); out-of-range bits are [false]. *)
val nth_bit : t -> int -> bool

(** [pow b e] is [b^e] for a small exponent [e >= 0]. *)
val pow : t -> int -> t

(** Big-endian byte serialization. [of_bytes (to_bytes x) = x];
    [to_bytes zero = ""]. *)
val to_bytes : t -> string

val of_bytes : string -> t

(** Decimal conversion. [of_string] accepts optional leading [+] and
    underscores; raises [Invalid_argument] on malformed input. *)
val to_string : t -> string

val of_string : string -> t
val to_hex : t -> string
val of_hex : string -> t
val pp : Format.formatter -> t -> unit

(** Number of limbs (for cost accounting and tests). *)
val limb_count : t -> int

(** Base-2^26 limb, least significant first (for white-box tests). *)
val limbs : t -> int array

(** [of_limbs a] builds a value from base-2^26 limbs, least significant
    first. Trusts every element to be in [[0, 2^26)]; the fast
    Montgomery <-> Nat bridge (both sides share the limb format). *)
val of_limbs : int array -> t
