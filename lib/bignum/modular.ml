let add a b ~m =
  let s = Nat.add a b in
  if Nat.compare s m >= 0 then Nat.sub s m else s

let sub a b ~m = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a m) b

let mul_plain a b ~m = Nat.rem (Nat.mul a b) m

let pow_binary b e ~m =
  let b = ref (Nat.rem b m) and r = ref Nat.one in
  let nbits = Nat.bit_length e in
  for i = 0 to nbits - 1 do
    if Nat.nth_bit e i then r := mul_plain !r !b ~m;
    if i < nbits - 1 then b := mul_plain !b !b ~m
  done;
  !r

(* Montgomery contexts are cached per modulus: the whole system works with
   a handful of moduli (n, n^2, n^3 for two key pairs). The shared table
   is guarded by a mutex for parallel protocol execution (Core.Pool), but
   taking a lock and hashing a limb array on every ciphertext add/modexp
   is measurable, so each domain keeps a small local memo in front of it,
   checked by physical equality first (the hot moduli are long-lived
   values threaded everywhere by reference). *)
let mont_cache : (Nat.t, Montgomery.ctx option) Hashtbl.t = Hashtbl.create 8

let mont_lock = Mutex.create ()

let mont_memo : (Nat.t * Montgomery.ctx option) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let mont_memo_max = 8

let mont_ctx m =
  let memo = Domain.DLS.get mont_memo in
  let rec find = function
    | [] -> None
    | (m', c) :: _ when m' == m -> Some c
    | (m', c) :: _ when Nat.equal m' m -> Some c
    | _ :: tl -> find tl
  in
  match find !memo with
  | Some c -> c
  | None ->
    Mutex.lock mont_lock;
    let c =
      match Hashtbl.find_opt mont_cache m with
      | Some c -> c
      | None ->
        if Hashtbl.length mont_cache > 64 then Hashtbl.reset mont_cache;
        let c = Montgomery.create m in
        Hashtbl.add mont_cache m c;
        c
    in
    Mutex.unlock mont_lock;
    let keep = List.filteri (fun i _ -> i < mont_memo_max - 1) !memo in
    memo := (m, c) :: keep;
    c

(* Ciphertext adds ([Paillier.add]) funnel through here on every depth of
   every protocol; the cached Montgomery context replaces the Knuth trial
   division of [Nat.rem (Nat.mul a b) m] with two divisionless CIOS
   passes. Even moduli (no context) keep the plain path. *)
let mul a b ~m =
  match mont_ctx m with Some ctx -> Montgomery.mul ctx a b | None -> mul_plain a b ~m

let pow b e ~m =
  Obs.bump Obs.Metrics.Modexp;
  if Nat.is_one m then Nat.zero
  else begin
    match mont_ctx m with
    | Some ctx when Nat.bit_length e > 8 -> Montgomery.pow ctx b e
    | _ -> pow_binary b e ~m
  end

(* Simultaneous multi-exponentiation: prod_i b_i^e_i mod m in one
   interleaved-window pass, sharing the squaring chain across all bases
   (see [Montgomery.multi_pow_resident]). Counts as a single modexp —
   which it is, cost-wise. *)
let multi_pow pairs ~m =
  Obs.bump Obs.Metrics.Modexp;
  if Nat.is_one m then Nat.zero
  else begin
    match mont_ctx m with
    | Some ctx ->
      pairs
      |> List.map (fun (b, e) -> (Montgomery.to_mont ctx b, e))
      |> Array.of_list
      |> Montgomery.multi_pow_resident ctx
      |> Montgomery.from_mont ctx
    | None ->
      List.fold_left
        (fun acc (b, e) -> mul_plain acc (pow_binary b e ~m) ~m)
        (Nat.rem Nat.one m) pairs
  end

let rec gcd a b = if Nat.is_zero b then a else gcd b (Nat.rem a b)

let lcm a b =
  if Nat.is_zero a || Nat.is_zero b then Nat.zero
  else Nat.div (Nat.mul a b) (gcd a b)

let egcd a b =
  (* Iterative extended Euclid on signed integers. *)
  let open Bigint in
  let rec go r0 r1 s0 s1 t0 t1 =
    if is_zero r1 then (to_nat r0, s0, t0)
    else begin
      let q = div_euclid r0 r1 in
      go r1 (sub r0 (mul q r1)) s1 (sub s0 (mul q s1)) t1 (sub t0 (mul q t1))
    end
  in
  go (of_nat a) (of_nat b) one zero zero one

let inv a ~m =
  let g, x, _ = egcd (Nat.rem a m) m in
  if not (Nat.is_one g) then failwith "Modular.inv: not invertible";
  Bigint.mod_nat x m

(* Montgomery's batch-inversion trick: one egcd plus 3(n-1) modular
   multiplications inverts n elements at once. Raises like [inv] if any
   element is not invertible (the whole batch shares one gcd). *)
let inv_many xs ~m =
  match xs with
  | [] -> []
  | [ x ] -> [ inv x ~m ]
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let pre = Array.make n Nat.one in
    let acc = ref (Nat.rem Nat.one m) in
    for i = 0 to n - 1 do
      pre.(i) <- !acc;
      acc := mul !acc arr.(i) ~m
    done;
    let inv_acc = ref (inv !acc ~m) in
    let out = Array.make n Nat.zero in
    for i = n - 1 downto 0 do
      out.(i) <- mul !inv_acc pre.(i) ~m;
      inv_acc := mul !inv_acc arr.(i) ~m
    done;
    Array.to_list out

let crt2 (r1, m1) (r2, m2) =
  (* x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2) *)
  let m1_inv = inv (Nat.rem m1 m2) ~m:m2 in
  let d = sub (Nat.rem r2 m2) (Nat.rem r1 m2) ~m:m2 in
  let k = mul d m1_inv ~m:m2 in
  Nat.add r1 (Nat.mul m1 k)
