(** Montgomery-domain modular arithmetic for odd moduli.

    Exponentiation is the dominant cost of the whole system (every
    Paillier/DJ operation reduces to modexps over 2-3x key-width moduli),
    so [Modular.pow] routes through this module: word-by-word CIOS
    Montgomery multiplication (no per-step division) with 4-bit fixed
    windows.

    The {!residue} type keeps chained operations inside the Montgomery
    domain: convert once with [to_mont], combine with [mul_resident] /
    [pow_resident] (one CIOS pass each, no division), and convert out once
    with [from_mont]. The fixed-base combs ({!Fixed_base}) and the
    crypto layer's hot loops are built on it. *)

type ctx

(** [create m] precomputes the context for an odd modulus [m > 1];
    [None] if [m] is even or too small. *)
val create : Nat.t -> ctx option

val modulus : ctx -> Nat.t

(** A value of [[0, m)] held in Montgomery form ([a*R mod m]). A residue
    is only meaningful with the ctx that created it. *)
type residue

(** [to_mont ctx a] is the residue of [a mod m]. *)
val to_mont : ctx -> Nat.t -> residue

(** [from_mont ctx r] converts a residue back to a plain [Nat.t]. *)
val from_mont : ctx -> residue -> Nat.t

(** The residue of 1 ([R mod m]) — the multiplicative identity. *)
val one_mont : ctx -> residue

(** [mul_resident ctx a b] is the residue of the product — exactly one
    Montgomery multiplication, no conversion or division. *)
val mul_resident : ctx -> residue -> residue -> residue

(** [pow_resident ctx b e] is the residue of [b^e mod m] (4-bit windows,
    all intermediates resident). *)
val pow_resident : ctx -> residue -> Nat.t -> residue

(** [multi_pow_resident ctx [|(b1, e1); ...|]] is the residue of
    [b1^e1 * b2^e2 * ... mod m] as one interleaved-window simultaneous
    exponentiation: all bases share a single run of squarings (the
    dominant cost), so p factors cost little more than the widest single
    exponent. Empty input (or all-zero exponents) yields 1. *)
val multi_pow_resident : ctx -> (residue * Nat.t) array -> residue

(** [pow ctx b e] is [b^e mod m]. *)
val pow : ctx -> Nat.t -> Nat.t -> Nat.t

(** [mul ctx a b] is [a * b mod m]. Operands already in [[0, m)] skip
    reduction. *)
val mul : ctx -> Nat.t -> Nat.t -> Nat.t
