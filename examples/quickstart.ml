(* Quickstart: encrypt a small relation, issue a top-k token, run the
   oblivious query, and open the result as the authorized client.

   Run with: dune exec examples/quickstart.exe *)

open Crypto
open Dataset
open Topk
open Sectopk

let () =
  (* data owner: a tiny 8x3 relation *)
  let rel =
    Relation.create ~name:"demo"
      [| [| 9; 4; 7 |]; [| 3; 8; 2 |]; [| 6; 6; 6 |]; [| 1; 9; 9 |];
         [| 5; 5; 5 |]; [| 8; 1; 3 |]; [| 2; 7; 8 |]; [| 7; 3; 1 |] |]
  in
  Format.printf "Relation %s: %d objects x %d attributes@." (Relation.name rel)
    (Relation.n_rows rel) (Relation.n_attrs rel);

  (* key generation + database encryption (Enc of Definition 4.1) *)
  let rng = Rng.create ~seed:"quickstart" in
  let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:192 in
  let er, key = Scheme.encrypt ~s:4 rng pub rel in
  Format.printf "Encrypted: %d lists, %d bytes@." (Scheme.n_attrs er)
    (Scheme.size_bytes pub er);

  (* client: token for SELECT * ORDER BY a0 + a1 + a2 STOP AFTER 3 *)
  let scoring = Scoring.sum_of [ 0; 1; 2 ] in
  let token = Scheme.token key ~m_total:(Relation.n_attrs rel) scoring ~k:3 in

  (* the two clouds process the query; blind_bits shortens the statistical
     blinding exponents to keep the demo snappy *)
  let ctx = Proto.Ctx.of_keys ~blind_bits:48 rng pub sk in
  let result = Query.run ctx er token Query.default_options in
  Format.printf "SecQuery halted after %d depths (n = %d)@." result.Query.halting_depth
    (Relation.n_rows rel);

  (* client opens the encrypted answer *)
  let ids = List.init (Relation.n_rows rel) (Relation.object_id rel) in
  Format.printf "@.Encrypted top-3 (id, worst, best):@.";
  List.iter
    (fun (id, w, b) ->
      Format.printf "  %s  score in [%d, %d]  (exact score %d)@." id w b
        (Scoring.score scoring rel (int_of_string (String.sub id 1 (String.length id - 1)))))
    (Client.real_results ctx key ~ids result);

  (* cross-check against the plaintext oracle *)
  Format.printf "@.Plaintext oracle top-3:@.";
  List.iter (fun (oid, s) -> Format.printf "  o%d  score %d@." oid s) (Naive_topk.run rel scoring ~k:3);

  let ch = (Proto.Ctx.channel ctx) in
  Format.printf "@.Inter-cloud traffic: %d bytes in %d messages (%d rounds)@."
    (Proto.Channel.bytes_total ch) (Proto.Channel.messages_total ch)
    (Proto.Channel.rounds_total ch)
