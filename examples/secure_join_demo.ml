(* Secure top-k join (Section 12): joining two encrypted relations on an
   equi-join condition and ranking the joined tuples, with neither cloud
   learning values, join partners, or scores.

   Query (Section 12.3 shape):
     SELECT * FROM dept_visits d, lab_results l
     WHERE d.patient = l.patient
     ORDER BY d.severity + l.risk STOP AFTER 2

   Run with: dune exec examples/secure_join_demo.exe *)

open Bignum
open Crypto
open Dataset

(* dept_visits(patient, severity); lab_results(patient, risk) *)
let visits = [| [| 101; 7 |]; [| 102; 3 |]; [| 103; 9 |]; [| 104; 2 |] |]
let labs = [| [| 103; 5 |]; [| 101; 4 |]; [| 105; 8 |]; [| 102; 1 |] |]

let () =
  let r1 = Relation.create ~name:"dept_visits" visits in
  let r2 = Relation.create ~name:"lab_results" labs in
  let rng = Rng.create ~seed:"join-demo" in
  let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:192 in

  let (e1, e2), key = Join.Join_scheme.encrypt_pair ~s:4 rng pub r1 r2 in
  Format.printf "Encrypted %s (%d tuples) and %s (%d tuples)@." (Relation.name r1)
    (Array.length e1.Join.Join_scheme.tuples) (Relation.name r2)
    (Array.length e2.Join.Join_scheme.tuples);

  let token = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  let ctx = Proto.Ctx.of_keys ~blind_bits:48 rng pub sk in
  let top = Join.Sec_join.top_k ctx e1 e2 token in

  (* carried attributes sit at keyed-permutation positions; the client
     resolves them with its key *)
  let pat = Join.Join_scheme.attr_position key ~rel_tag:"R1" ~m:2 0 in
  let sev = Join.Join_scheme.attr_position key ~rel_tag:"R1" ~m:2 1 in
  let risk = 2 + Join.Join_scheme.attr_position key ~rel_tag:"R2" ~m:2 1 in
  Format.printf "@.Top-2 joined tuples (decrypted by the client):@.";
  List.iter
    (fun (t : Join.Sec_join.joined) ->
      let dec c = Nat.to_int (Paillier.decrypt sk c) in
      let attrs = Array.map dec t.Join.Sec_join.attrs in
      Format.printf "  patient %d: severity %d + risk %d = %d@." attrs.(pat) attrs.(sev)
        attrs.(risk) (dec t.Join.Sec_join.score))
    top;

  Format.printf "@.Plaintext check — matching pairs and scores:@.";
  Array.iter
    (fun v ->
      Array.iter
        (fun l -> if v.(0) = l.(0) then Format.printf "  patient %d: %d@." v.(0) (v.(1) + l.(1)))
        labs)
    visits;

  let ch = (Proto.Ctx.channel ctx) in
  Format.printf "@.Inter-cloud traffic: %d bytes; S2 learned only the match count@."
    (Proto.Channel.bytes_total ch)
