(* The Section 11.3 comparison: answering a "top-k by sum of squares"
   query with (a) the SecTopK scheme over pre-squared attributes and
   (b) the secure-kNN baseline, measuring time and inter-cloud traffic.

   SecTopK touches only a prefix of each sorted list; the kNN baseline
   must run O(n*m) secure multiplications over the whole database.

   Run with: dune exec examples/knn_comparison.exe *)

open Crypto
open Dataset
open Topk
open Sectopk

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let rows = 24 and attrs = 3 and k = 3 in
  let rel =
    Synthetic.generate ~seed:"knn-cmp" ~name:"points" ~rows ~attrs
      (Synthetic.Correlated { base = Synthetic.Uniform { lo = 0; hi = 50 }; noise = 4 })
  in
  (* pre-square the attributes: F(o) = sum x_i(o)^2, so SecTopK's linear
     scoring answers the same query the kNN baseline answers with a
     far-away query point (Section 11.3) *)
  let squared =
    Relation.create ~name:"points2"
      (Array.init rows (fun i -> Array.map (fun v -> v * v) (Relation.row rel i)))
  in
  let rng = Rng.create ~seed:"knn-cmp-keys" in
  let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:192 in

  (* --- SecTopK --- *)
  let ctx1 = Proto.Ctx.of_keys ~blind_bits:48 rng pub sk in
  let er, key = Scheme.encrypt ~s:4 rng pub squared in
  let token = Scheme.token key ~m_total:attrs (Scoring.sum_of [ 0; 1; 2 ]) ~k in
  let result, sectopk_time =
    time (fun () -> Query.run ctx1 er token { Query.default_options with variant = Query.Elim })
  in
  let sectopk_bytes = Proto.Channel.bytes_total (Proto.Ctx.channel ctx1) in

  (* --- secure kNN baseline: query the far corner, so nearest = largest
     sum of squares is wrong; instead query the origin-reflected point.
     Following Section 11.3, a large-enough query point makes kNN order
     coincide with descending sum of squares. --- *)
  let ctx2 = Proto.Ctx.of_keys ~blind_bits:48 rng pub sk in
  let db = Sknn.encrypt_db rng pub rel in
  let big = 100 in
  let point = Array.make attrs big in
  (* squared distances fit in 15 bits for this domain *)
  let knn_ids, knn_time = time (fun () -> Sknn.query_smin ctx2 db ~point ~k ~bits:15) in
  let knn_bytes = Proto.Channel.bytes_total (Proto.Ctx.channel ctx2) in

  let ids = List.init rows (Relation.object_id rel) in
  let top_ids = List.map (fun (id, _, _) -> id) (Client.real_results ctx1 key ~ids result) in
  Format.printf "SecTopK top-%d objects: %s (halted at depth %d/%d)@." k
    (String.concat ", " top_ids) result.Query.halting_depth rows;
  Format.printf "kNN baseline answers:  %s@."
    (String.concat ", " (List.map (fun i -> "o" ^ string_of_int i) knn_ids));
  Format.printf "@.%-22s %12s %14s@." "" "time (s)" "traffic (KB)";
  Format.printf "%-22s %12.2f %14.1f@." "SecTopK (Qry_E)" sectopk_time
    (float_of_int sectopk_bytes /. 1024.);
  Format.printf "%-22s %12.2f %14.1f@." "secure kNN baseline" knn_time
    (float_of_int knn_bytes /. 1024.);
  Format.printf "@.The kNN baseline touches all %d records with O(n*m) secure@." rows;
  Format.printf "multiplications; SecTopK stops after %d depths of sorted access.@."
    result.Query.halting_depth
