#!/usr/bin/env sh
# Three-process end-to-end run of the served deployment:
#
#   build-index  (data owner)  -> encrypted index on disk + client key
#   serve-s2     (crypto cloud) holds the Paillier secret key
#   serve-s1     (storage cloud) opens the index, dials S2 per query
#   query        (client)       sends a token, decrypts the results
#
# All parties derive key material from the same seed, so the served
# results must be byte-for-byte the lines the in-process demo prints —
# this script asserts exactly that, scrapes live telemetry from both
# daemons mid-run (asserting `served` equals the queries issued), then
# drains both daemons with SIGTERM. Also exercises the corruption path:
# a flipped byte in the published index must be rejected with a typed
# error (exit 4).
#
# Telemetry outputs (Prometheus exposition, JSON snapshot, the query
# log, one sampled Chrome trace) are copied into ./artifacts when that
# directory exists — CI uploads it wholesale.
#
# Usage: sh examples/three_process.sh
# (used by CI as the three-process e2e + store-corruption smoke test)
set -eu

cd "$(dirname "$0")/.."
dune build bin/topk_cli.exe

seed=three-proc
rows=12
attrs=3

work=$(mktemp -d)
s1_pid=""
s2_pid=""
cleanup() {
  [ -n "$s1_pid" ] && kill "$s1_pid" 2>/dev/null || true
  [ -n "$s2_pid" ] && kill "$s2_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

wait_for_port() {
  # $1: logfile; prints the port from "... 127.0.0.1:PORT"
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$1" | head -1)
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "daemon did not come up:" >&2
    cat "$1" >&2
    exit 1
  fi
  echo "$port"
}

echo "== 1. data owner: build-index =="
dune exec bin/topk_cli.exe -- build-index --rows $rows --attrs $attrs --seed $seed \
  --store "$work/index" --key-out "$work/client.key"
dune exec bin/topk_cli.exe -- index-info --store "$work/index" --seed $seed --verify

echo "== 2. crypto cloud: serve-s2 =="
dune exec bin/topk_cli.exe -- serve-s2 --port 0 >"$work/s2.log" 2>&1 &
s2_pid=$!
s2_port=$(wait_for_port "$work/s2.log")
echo "S2 on port $s2_port (pid $s2_pid)"

echo "== 3. storage cloud: serve-s1 (query log + every query traced) =="
dune exec bin/topk_cli.exe -- serve-s1 --store "$work/index" --seed $seed --port 0 \
  --s2 "127.0.0.1:$s2_port" --log-json "$work/queries.jsonl" \
  --coalesce-window-us 20000 \
  --trace-sample 1 --trace-dir "$work/traces" >"$work/s1.log" 2>&1 &
s1_pid=$!
s1_port=$(wait_for_port "$work/s1.log")
echo "S1 on port $s1_port (pid $s1_pid)"

echo "== 4. client: query =="
dune exec bin/topk_cli.exe -- query --s1 "127.0.0.1:$s1_port" --key "$work/client.key" \
  -k 3 -m $attrs --seed $seed | tee "$work/query.out"

echo "== 4b. live telemetry scrape (both daemons) =="
dune exec bin/topk_cli.exe -- stats "127.0.0.1:$s1_port" --prom >"$work/stats-s1.prom"
dune exec bin/topk_cli.exe -- stats "127.0.0.1:$s1_port" --json >"$work/stats-s1.json"
dune exec bin/topk_cli.exe -- stats "127.0.0.1:$s2_port" --prom >"$work/stats-s2.prom"
dune exec bin/topk_cli.exe -- stats "127.0.0.1:$s1_port"
sh tools/check_stats.sh "$work/stats-s1.prom"
sh tools/check_stats.sh "$work/stats-s2.prom" connections comb_warmup_seconds combs_built

served=$(awk '$1 == "served" { print $2 }' "$work/stats-s1.prom")
[ "$served" = "1" ] || { echo "expected served=1 in the scrape, got '$served'" >&2; exit 1; }
execs=$(awk '$1 == "exec_us_count" { print $2 }' "$work/stats-s1.prom")
[ "$execs" = "1" ] || { echo "expected exec_us_count=1, got '$execs'" >&2; exit 1; }
grep -q '"outcome":"ok"' "$work/queries.jsonl"
[ -f "$work/traces/trace-0.json" ] || { echo "sampled trace missing" >&2; exit 1; }
echo "== scrape: served matches the 1 query issued; log + trace written =="

if [ -d artifacts ]; then
  cp "$work/stats-s1.prom" "$work/stats-s1.json" "$work/stats-s2.prom" \
     "$work/queries.jsonl" artifacts/
  cp "$work/traces/trace-0.json" artifacts/sampled-trace.json
fi

echo "== 5. four concurrent clients through the round scheduler =="
# dune exec takes the build lock, so concurrent clients run the binary
# directly; their S2 rounds coalesce into shared mux trips on S1.
cli=$(pwd)/_build/default/bin/topk_cli.exe
pids=""
for i in 1 2 3 4; do
  "$cli" query --s1 "127.0.0.1:$s1_port" --key "$work/client.key" \
    -k 3 -m $attrs --seed $seed >"$work/query-conc$i.out" 2>&1 &
  pids="$pids $!"
done
for p in $pids; do wait "$p"; done

dune exec bin/topk_cli.exe -- stats "127.0.0.1:$s1_port" --prom >"$work/stats-s1-conc.prom"
served=$(awk '$1 == "served" { print $2 }' "$work/stats-s1-conc.prom")
[ "$served" = "5" ] || { echo "expected served=5 after the concurrent leg, got '$served'" >&2; exit 1; }
coalesced=$(awk '$1 == "coalesced_rounds" { print $2 }' "$work/stats-s1-conc.prom")
[ -n "$coalesced" ] && [ "$coalesced" -gt 0 ] ||
  { echo "expected a positive coalesced_rounds gauge, got '$coalesced'" >&2; exit 1; }
grep -q '^parked_queries ' "$work/stats-s1-conc.prom" ||
  { echo "parked_queries gauge missing from the scrape" >&2; exit 1; }
echo "== scrape: served=5, $coalesced coalesced trips shipped =="

echo "== 6. reference: in-process demo, same seed =="
dune exec bin/topk_cli.exe -- demo --rows $rows --attrs $attrs -k 3 -m $attrs \
  --seed $seed | tee "$work/demo.out"

grep "score in" "$work/query.out" >"$work/query.scores"
grep "score in" "$work/demo.out" >"$work/demo.scores"
diff "$work/query.scores" "$work/demo.scores"
for i in 1 2 3 4; do
  grep "score in" "$work/query-conc$i.out" >"$work/query-conc$i.scores"
  diff "$work/query-conc$i.scores" "$work/demo.scores"
done
echo "== served results (sequential and concurrent) are byte-identical to the in-process demo =="

echo "== 7. graceful drain (SIGTERM) =="
kill -TERM "$s1_pid"
wait "$s1_pid"
s1_pid=""
kill -TERM "$s2_pid"
wait "$s2_pid"
s2_pid=""
grep "S1: drained" "$work/s1.log"
grep "drained" "$work/s2.log"
cat "$work/s1.log" "$work/s2.log"

echo "== 8. corruption smoke: a flipped byte must be a typed rejection =="
flip_byte() {
  # $1: file; $2: offset (negative counts from the end)
  python3 - "$1" "$2" <<'EOF'
import sys
path, off = sys.argv[1], int(sys.argv[2])
b = bytearray(open(path, "rb").read())
b[off] ^= 0xFF
open(path, "wb").write(bytes(b))
EOF
}

# a flip in the manifest is caught at open
flip_byte "$work/index/MANIFEST" 20
set +e
dune exec bin/topk_cli.exe -- index-info --store "$work/index" --seed $seed 2>"$work/corrupt.err"
rc=$?
set -e
[ "$rc" -eq 4 ] || { echo "expected exit 4, got $rc" >&2; cat "$work/corrupt.err" >&2; exit 1; }
grep "store error" "$work/corrupt.err"
echo "== corrupted manifest rejected with exit 4 =="

# a flip in a segment body is caught by the block checksum sweep
dune exec bin/topk_cli.exe -- build-index --rows $rows --attrs $attrs --seed $seed \
  --store "$work/index2" >/dev/null
flip_byte "$work/index2/seg_1_0.stk" -1
set +e
dune exec bin/topk_cli.exe -- index-info --store "$work/index2" --seed $seed --verify 2>"$work/corrupt2.err"
rc=$?
set -e
[ "$rc" -eq 4 ] || { echo "expected exit 4, got $rc" >&2; cat "$work/corrupt2.err" >&2; exit 1; }
grep "store error" "$work/corrupt2.err"
echo "== corrupted segment block rejected with exit 4 =="

echo "three-process e2e passed"
