#!/usr/bin/env sh
# Two-process end-to-end run of the secure top-k query: S2 (the crypto
# cloud holding the Paillier secret key) runs as a standalone daemon in
# one process; the query driver (S1 + client) connects to it over TCP
# with --s2 HOST:PORT. Both sides provision keys from the same seed via
# the Wire.Hello handshake, so this is the deployment the paper's
# two-cloud model describes — every decryption crosses a real socket.
#
# Usage: sh examples/two_process.sh [extra demo flags...]
# (used by CI as the socket-transport smoke test)
set -eu

cd "$(dirname "$0")/.."
dune build bin/topk_cli.exe

out=$(mktemp)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -f "$out"' EXIT INT TERM

# ephemeral port: the daemon prints the one it bound
dune exec bin/topk_cli.exe -- serve-s2 --port 0 --once >"$out" 2>&1 &
daemon_pid=$!

port=""
for _ in $(seq 1 50); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$out")
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "daemon did not come up:" >&2
  cat "$out" >&2
  exit 1
fi
echo "== S2 daemon on port $port (pid $daemon_pid) =="

dune exec bin/topk_cli.exe -- demo --rows 10 -k 2 --seed two-proc \
  --s2 "127.0.0.1:$port" --metrics "$@"

wait "$daemon_pid"
echo "== daemon exited cleanly =="
cat "$out"
