(* Tests for the secure top-k join operator (Section 12): encryption setup,
   the join predicate under encryption, SecFilter, and the full operator
   against a plaintext join oracle. *)

open Bignum
open Crypto
open Dataset

let rng = Rng.create ~seed:"test_join"
let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:128
let ctx = Proto.Ctx.of_keys ~blind_bits:48 (Rng.fork rng ~label:"ctx") pub sk
let dec c = Nat.to_int (Paillier.decrypt sk c)

(* R1: (join_attr, score_attr); R2: (join_attr, score_attr, extra) *)
let r1 = Relation.create ~name:"r1" [| [| 1; 10 |]; [| 2; 20 |]; [| 3; 30 |]; [| 2; 5 |] |]
let r2 = Relation.create ~name:"r2" [| [| 2; 100 |]; [| 3; 50 |]; [| 9; 7 |] |]

(* plaintext oracle: equi-join r1.0 = r2.0, score r1.1 + r2.1 *)
let plain_join_scores () =
  let acc = ref [] in
  Relation.fold_rows r1 ~init:() ~f:(fun () _ row1 ->
      Relation.fold_rows r2 ~init:() ~f:(fun () _ row2 ->
          if row1.(0) = row2.(0) then acc := (row1.(1) + row2.(1)) :: !acc));
  List.sort (fun a b -> compare b a) !acc

let setup () =
  let (e1, e2), key = Join.Join_scheme.encrypt_pair ~s:4 (Rng.fork rng ~label:"enc") pub r1 r2 in
  (e1, e2, key)

let test_encrypt_pair_shape () =
  let e1, e2, key = setup () in
  Alcotest.(check int) "r1 tuples" 4 (Array.length e1.Join.Join_scheme.tuples);
  Alcotest.(check int) "r2 tuples" 3 (Array.length e2.Join.Join_scheme.tuples);
  Alcotest.(check int) "r1 attrs" 2 e1.Join.Join_scheme.m;
  Alcotest.(check int) "keys" 4 (List.length key.Join.Join_scheme.ehl_keys)

let test_token_roundtrip () =
  let _, _, key = setup () in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  Alcotest.(check bool) "permuted indices in range" true
    (tk.Join.Join_scheme.join_left < 2 && tk.Join.Join_scheme.join_right < 2
    && tk.Join.Join_scheme.score_left < 2 && tk.Join.Join_scheme.score_right < 2)

let test_combine_predicate () =
  let e1, e2, key = setup () in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  let combined = Join.Sec_join.combine ctx e1 e2 tk in
  Alcotest.(check int) "n1*n2 pairs" 12 (List.length combined);
  (* matching pairs decrypt to score+1; non-matching to 0 *)
  let scores = List.map (fun (t : Join.Sec_join.joined) -> dec t.Join.Sec_join.score) combined in
  let nonzero = List.filter (fun s -> s <> 0) scores in
  (* matches: (2,20)x(2,100)=121, (2,5)x(2,100)=106, (3,30)x(3,50)=81 *)
  Alcotest.(check (list int)) "match scores (+1 offset)" [ 81; 106; 121 ]
    (List.sort compare nonzero)

let test_filter_drops_nonmatches () =
  let e1, e2, key = setup () in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  let combined = Join.Sec_join.combine ctx e1 e2 tk in
  let surviving = Join.Sec_join.filter ctx combined in
  Alcotest.(check int) "three matches survive" 3 (List.length surviving);
  let scores = List.map (fun (t : Join.Sec_join.joined) -> dec t.Join.Sec_join.score) surviving in
  Alcotest.(check (list int)) "scores preserved under double blinding" [ 81; 106; 121 ]
    (List.sort compare scores)

let test_filter_preserves_attrs () =
  let e1, e2, key = setup () in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  let surviving = Join.Sec_join.filter ctx (Join.Sec_join.combine ctx e1 e2 tk) in
  (* every survivor carries 4 attributes whose multiset of decryptions is a
     real (r1 row, r2 row) concatenation *)
  List.iter
    (fun (t : Join.Sec_join.joined) ->
      Alcotest.(check int) "4 carried attrs" 4 (Array.length t.Join.Sec_join.attrs);
      let vals = List.sort compare (Array.to_list (Array.map dec t.Join.Sec_join.attrs)) in
      let expected =
        [ [ 2; 2; 20; 100 ]; [ 2; 2; 5; 100 ]; [ 3; 3; 30; 50 ] ] |> List.map (List.sort compare)
      in
      Alcotest.(check bool) "attrs form a real joined tuple" true (List.mem vals expected))
    surviving

let test_top_k_join () =
  let e1, e2, key = setup () in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  let top = Join.Sec_join.top_k ctx e1 e2 tk in
  Alcotest.(check int) "k results" 2 (List.length top);
  let scores = List.map (fun (t : Join.Sec_join.joined) -> dec t.Join.Sec_join.score) top in
  Alcotest.(check (list int)) "top-2 join scores, offset removed" [ 120; 105 ] scores

let test_top_k_join_oracle () =
  let e1, e2, key = setup () in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:3 in
  let top = Join.Sec_join.top_k ctx e1 e2 tk in
  let scores = List.map (fun (t : Join.Sec_join.joined) -> dec t.Join.Sec_join.score) top in
  Alcotest.(check (list int)) "matches plaintext join oracle" (plain_join_scores ()) scores

let test_join_empty_result () =
  let ra = Relation.create ~name:"ra" [| [| 1; 5 |] |] in
  let rb = Relation.create ~name:"rb" [| [| 2; 7 |] |] in
  let (e1, e2), key = Join.Join_scheme.encrypt_pair ~s:4 (Rng.fork rng ~label:"enc2") pub ra rb in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:5 in
  Alcotest.(check int) "no matches -> empty" 0 (List.length (Join.Sec_join.top_k ctx e1 e2 tk))

let test_join_zero_score_survives () =
  (* a genuine match whose total score is 0 must not be filtered out *)
  let ra = Relation.create ~name:"ra" [| [| 7; 0 |] |] in
  let rb = Relation.create ~name:"rb" [| [| 7; 0 |] |] in
  let (e1, e2), key = Join.Join_scheme.encrypt_pair ~s:4 (Rng.fork rng ~label:"enc3") pub ra rb in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:1 in
  let top = Join.Sec_join.top_k ctx e1 e2 tk in
  Alcotest.(check int) "zero-score match kept" 1 (List.length top);
  Alcotest.(check int) "score is 0" 0 (dec (List.hd top).Join.Sec_join.score)

let test_filter_leaks_only_count () =
  let e1, e2, key = setup () in
  let before = Proto.Trace.length (Proto.Ctx.trace ctx) in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  ignore (Join.Sec_join.filter ctx (Join.Sec_join.combine ctx e1 e2 tk));
  let events =
    List.filteri
      (fun i _ -> i >= before)
      (Proto.Trace.events (Proto.Ctx.trace ctx))
  in
  let count_events =
    List.filter (function Proto.Trace.Count { protocol = "SecFilter"; _ } -> true | _ -> false) events
  in
  Alcotest.(check int) "one surviving-count event" 1 (List.length count_events);
  (match count_events with
  | [ Proto.Trace.Count { value; _ } ] -> Alcotest.(check int) "count = matches" 3 value
  | _ -> Alcotest.fail "unexpected trace")

(* ---------------- multi-way join ---------------- *)

(* R1(a, s), R2(a, b, s), R3(b, s): chain R1.a = R2.a, R2.b = R3.b *)
let m1 = Relation.create ~name:"m1" [| [| 1; 10 |]; [| 2; 20 |] |]
let m2 = Relation.create ~name:"m2" [| [| 1; 5; 100 |]; [| 2; 6; 200 |]; [| 2; 9; 300 |] |]
let m3 = Relation.create ~name:"m3" [| [| 5; 1000 |]; [| 6; 2000 |]; [| 7; 3000 |] |]

let plain_3way () =
  let acc = ref [] in
  Relation.fold_rows m1 ~init:() ~f:(fun () _ r1 ->
      Relation.fold_rows m2 ~init:() ~f:(fun () _ r2 ->
          Relation.fold_rows m3 ~init:() ~f:(fun () _ r3 ->
              if r1.(0) = r2.(0) && r2.(1) = r3.(0) then
                acc := (r1.(1) + r2.(2) + r3.(1)) :: !acc)));
  List.sort (fun a b -> compare b a) !acc

let test_three_way_join () =
  let encs, key = Join.Join_scheme.encrypt_all ~s:4 (Rng.fork rng ~label:"enc3w") pub [ m1; m2; m3 ] in
  let spec =
    Join.Sec_join.spec_of_token key ~ms:[ 2; 3; 2 ]
      ~chain:[ (0, 0); (1, 0) ]
      ~score_attrs:[ 1; 2; 1 ] ~k:5
  in
  let top = Join.Sec_join.top_k_multi ctx encs spec in
  let scores = List.map (fun (t : Join.Sec_join.joined) -> dec t.Join.Sec_join.score) top in
  (* matches: (1,10)(1,5,100)(5,1000)=1110; (2,20)(2,6,200)(6,2000)=2220 *)
  Alcotest.(check (list int)) "3-way join matches oracle" (plain_3way ()) scores

let test_three_way_no_match () =
  let ra = Relation.create ~name:"ra" [| [| 1; 1 |] |] in
  let rb = Relation.create ~name:"rb" [| [| 1; 9; 2 |] |] in
  let rc = Relation.create ~name:"rc" [| [| 8; 3 |] |] in
  let encs, key = Join.Join_scheme.encrypt_all ~s:4 (Rng.fork rng ~label:"encnm") pub [ ra; rb; rc ] in
  let spec =
    Join.Sec_join.spec_of_token key ~ms:[ 2; 3; 2 ]
      ~chain:[ (0, 0); (1, 0) ]
      ~score_attrs:[ 1; 2; 1 ] ~k:3
  in
  (* first condition holds (1=1), second fails (9 <> 8): conjunction false *)
  Alcotest.(check int) "partial chain match is rejected" 0
    (List.length (Join.Sec_join.top_k_multi ctx encs spec))

(* ---------------- rank join over pre-sorted relations ---------------- *)

let test_sorted_join_matches_full () =
  let ra = Relation.create ~name:"ra"
      [| [| 1; 50 |]; [| 2; 40 |]; [| 3; 30 |]; [| 4; 20 |]; [| 5; 10 |] |] in
  let rb = Relation.create ~name:"rb"
      [| [| 2; 45 |]; [| 1; 35 |]; [| 5; 25 |]; [| 9; 15 |]; [| 3; 5 |] |] in
  let (e1, e2), key =
    Join.Join_scheme.encrypt_pair_sorted ~s:4 (Rng.fork rng ~label:"rjt") pub ~score1:1 ~score2:1 ra rb
  in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  let top, stats = Join.Sec_join.top_k_sorted_stats ctx e1 e2 tk in
  let scores = List.map (fun (t : Join.Sec_join.joined) -> dec t.Join.Sec_join.score) top in
  (* matches: 1->85, 2->85, 3->35, 5->35; top-2 = [85; 85] *)
  Alcotest.(check (list int)) "top-2 join scores" [ 85; 85 ] scores;
  Alcotest.(check bool) "halts before the full cross product" true
    (stats.Join.Sec_join.pairs_explored < stats.Join.Sec_join.pairs_total);
  Alcotest.(check bool) "halted by the bound" true stats.Join.Sec_join.halted_early

let test_sorted_join_no_early_halt_when_sparse () =
  (* a single match hiding in the last diagonal: the scan must not stop
     before finding it *)
  let ra = Relation.create ~name:"ra" [| [| 1; 9 |]; [| 7; 0 |] |] in
  let rb = Relation.create ~name:"rb" [| [| 2; 9 |]; [| 7; 0 |] |] in
  let (e1, e2), key =
    Join.Join_scheme.encrypt_pair_sorted ~s:4 (Rng.fork rng ~label:"rjs") pub ~score1:1 ~score2:1 ra rb
  in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:1 in
  let top = Join.Sec_join.top_k_sorted ctx e1 e2 tk in
  Alcotest.(check int) "the lone match found" 1 (List.length top);
  Alcotest.(check int) "its score" 0 (dec (List.hd top).Join.Sec_join.score)

let prop_sorted_join_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:6 ~name:"rank join = plaintext join oracle"
       QCheck.(int_bound 10_000)
       (fun seed ->
         let gen tag =
           Synthetic.generate ~seed:(string_of_int seed ^ tag) ~name:tag ~rows:6 ~attrs:2
             (Synthetic.Uniform { lo = 0; hi = 4 })
         in
         let ra = gen "a" and rb = gen "b" in
         let (e1, e2), key =
           Join.Join_scheme.encrypt_pair_sorted ~s:4 (Rng.fork rng ~label:"rjp") pub ~score1:1
             ~score2:1 ra rb
         in
         let k = 3 in
         let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k in
         let top = Join.Sec_join.top_k_sorted ctx e1 e2 tk in
         let got = List.map (fun (t : Join.Sec_join.joined) -> dec t.Join.Sec_join.score) top in
         let expected =
           let acc = ref [] in
           Relation.fold_rows ra ~init:() ~f:(fun () _ r1 ->
               Relation.fold_rows rb ~init:() ~f:(fun () _ r2 ->
                   if r1.(0) = r2.(0) then acc := (r1.(1) + r2.(1)) :: !acc));
           let sorted = List.sort (fun a b -> compare b a) !acc in
           List.filteri (fun i _ -> i < k) sorted
         in
         got = expected))

let suite =
  [ ( "join-scheme",
      [ Alcotest.test_case "encrypt pair shape" `Quick test_encrypt_pair_shape;
        Alcotest.test_case "token" `Quick test_token_roundtrip
      ] );
    ( "sec-join",
      [ Alcotest.test_case "combine predicate" `Quick test_combine_predicate;
        Alcotest.test_case "filter drops non-matches" `Quick test_filter_drops_nonmatches;
        Alcotest.test_case "filter preserves attributes" `Quick test_filter_preserves_attrs;
        Alcotest.test_case "top-k join" `Quick test_top_k_join;
        Alcotest.test_case "matches plaintext oracle" `Quick test_top_k_join_oracle;
        Alcotest.test_case "empty result" `Quick test_join_empty_result;
        Alcotest.test_case "zero-score match survives" `Quick test_join_zero_score_survives;
        Alcotest.test_case "filter leaks only the count" `Quick test_filter_leaks_only_count
      ] );
    ( "rank-join",
      [ Alcotest.test_case "matches full join, halts early" `Quick test_sorted_join_matches_full;
        Alcotest.test_case "sparse match still found" `Quick test_sorted_join_no_early_halt_when_sparse;
        prop_sorted_join_oracle
      ] );
    ( "multi-way",
      [ Alcotest.test_case "3-way chain join" `Quick test_three_way_join;
        Alcotest.test_case "partial chain rejected" `Quick test_three_way_no_match
      ] )
  ]

let () = Alcotest.run "join" suite
