(* End-to-end tests of the SecTopK scheme: Enc / Token / SecQuery in all
   three variants against the plaintext NRA and the naive oracle, plus
   leakage-profile checks. *)

open Crypto
open Dataset
open Topk
open Sectopk

let rng = Rng.create ~seed:"test_sectopk"
let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:128

let make_ctx () = Proto.Ctx.of_keys ~blind_bits:48 (Rng.fork rng ~label:"ctx") pub sk

let ids_of rel = List.init (Relation.n_rows rel) (fun i -> Relation.object_id rel i)

(* the paper's Figure 3 relation *)
let fig3 =
  Relation.create ~name:"fig3"
    [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

let run_query ?(options = Query.default_options) rel scoring ~k =
  let ctx = make_ctx () in
  let er, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"enc") pub rel in
  let tk = Scheme.token key ~m_total:(Relation.n_attrs rel) scoring ~k in
  let res = Query.run ctx er tk options in
  (ctx, key, res)

let oracle_valid rel scoring ~k oids = Nra.valid_answer rel scoring ~k oids

(* ---------------- scheme: Enc / Token ---------------- *)

let test_encrypt_shape () =
  let er, key = Scheme.encrypt ~s:4 rng pub fig3 in
  Alcotest.(check int) "rows" 5 (Scheme.n_rows er);
  Alcotest.(check int) "lists" 3 (Scheme.n_attrs er);
  Alcotest.(check int) "ehl keys" 4 (List.length key.Scheme.ehl_keys);
  Alcotest.(check bool) "size accounted" true (Scheme.size_bytes pub er > 0)

let test_encrypt_lists_sorted () =
  (* each permuted list must decrypt to a descending score sequence *)
  let er, _ = Scheme.encrypt ~s:4 rng pub fig3 in
  for li = 0 to 2 do
    let scores =
      List.init 5 (fun d ->
          let e = Scheme.entry er ~list:li ~depth:d in
          Bignum.Nat.to_int (Paillier.decrypt sk e.Proto.Enc_item.score))
    in
    Alcotest.(check bool)
      (Printf.sprintf "list %d descending" li)
      true
      (List.for_all2 ( >= ) (List.filteri (fun i _ -> i < 4) scores) (List.tl scores))
  done

let test_token_permutation () =
  let _, key = Scheme.encrypt ~s:4 rng pub fig3 in
  let tk = Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2 in
  let lists = List.map fst tk.Scheme.attrs in
  Alcotest.(check int) "k" 2 tk.Scheme.k;
  Alcotest.(check (list int)) "all three lists, permuted" [ 0; 1; 2 ] (List.sort compare lists)

let test_token_attribute_subset () =
  (* querying attrs {0,2} must target exactly the permuted images of 0,2 *)
  let _, key = Scheme.encrypt ~s:4 rng pub fig3 in
  let prp = Prp.create ~key:key.Scheme.prp_key ~domain:3 in
  let tk = Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 2 ]) ~k:1 in
  Alcotest.(check (list int)) "permuted images"
    (List.sort compare [ Prp.apply prp 0; Prp.apply prp 2 ])
    (List.sort compare (List.map fst tk.Scheme.attrs))

let test_parallel_encrypt () =
  (* multi-domain encryption must produce a fully functional ER *)
  let er, key = Scheme.encrypt ~s:4 ~domains:3 (Rng.fork rng ~label:"par") pub fig3 in
  let tk = Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2 in
  let ctx = make_ctx () in
  let res = Query.run ctx er tk { Query.default_options with variant = Query.Elim } in
  let ids = List.map (fun (id, _, _) -> id) (Client.real_results ctx key ~ids:(ids_of fig3) res) in
  Alcotest.(check (list string)) "parallel-encrypted DB answers correctly" [ "o2"; "o1" ] ids

let test_resolver () =
  let _, key = Scheme.encrypt ~s:4 rng pub fig3 in
  let resolver = Scheme.make_resolver key ~pub ~ids:(ids_of fig3) in
  let h = Prf.to_nat_mod ~key:(List.hd key.Scheme.ehl_keys) "o3" ~m:pub.Paillier.n in
  Alcotest.(check (option string)) "resolves" (Some "o3") (resolver h);
  Alcotest.(check (option string)) "unknown -> None" None (resolver Bignum.Nat.one)

(* ---------------- SecQuery on Figure 3 ---------------- *)

let check_fig3_answer variant () =
  let options = { Query.default_options with variant } in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let ctx, key, res = run_query ~options fig3 f ~k:2 in
  let reals = Client.real_results ctx key ~ids:(ids_of fig3) res in
  (* top-2 = X3 (o2, score 18) and X2 (o1, score 16), per Figure 3c *)
  let ids = List.map (fun (id, _, _) -> id) reals in
  Alcotest.(check (list string)) "top-2 objects" [ "o2"; "o1" ] ids;
  (* worst scores at halting = exact scores 18, 16 (Figure 3c) *)
  let worsts = List.map (fun (_, w, _) -> w) reals in
  Alcotest.(check (list int)) "worst scores" [ 18; 16 ] worsts;
  Alcotest.(check bool) "halted by bound test" true res.Query.halted

let test_fig3_full = check_fig3_answer Query.Full
let test_fig3_elim = check_fig3_answer Query.Elim
let test_fig3_batched = check_fig3_answer (Query.Batched 3)

let test_fig3_halting_depth () =
  (* the per-depth variants must stop at depth 3 exactly as Figure 3c *)
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let _, _, res = run_query ~options:{ Query.default_options with variant = Query.Elim } fig3 f ~k:2 in
  Alcotest.(check int) "halting depth 3" 3 res.Query.halting_depth

let test_fig3_network_sort () =
  let options = { Query.default_options with variant = Query.Elim; sort = Proto.Enc_sort.Network } in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let ctx, key, res = run_query ~options fig3 f ~k:2 in
  let ids = List.map (fun (id, _, _) -> id) (Client.real_results ctx key ~ids:(ids_of fig3) res) in
  Alcotest.(check (list string)) "network sort same answer" [ "o2"; "o1" ] ids

let test_fig3_dgk_compare () =
  (* the DGK bitwise comparison must reproduce answers and halting depth *)
  let options = { Query.default_options with variant = Query.Elim; compare = `Dgk 16 } in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let ctx, key, res = run_query ~options fig3 f ~k:2 in
  let ids = List.map (fun (id, _, _) -> id) (Client.real_results ctx key ~ids:(ids_of fig3) res) in
  Alcotest.(check (list string)) "same answer under DGK compare" [ "o2"; "o1" ] ids;
  Alcotest.(check int) "same halting depth" 3 res.Query.halting_depth

let test_fig3_kth_only () =
  let options = { Query.default_options with variant = Query.Elim; halting = `KthOnly } in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let ctx, key, res = run_query ~options fig3 f ~k:2 in
  let ids = List.map (fun (id, _, _) -> id) (Client.real_results ctx key ~ids:(ids_of fig3) res) in
  Alcotest.(check (list string)) "paper-literal halting, same answer here" [ "o2"; "o1" ] ids

(* ---------------- SecQuery vs oracle on random data ---------------- *)

let random_rel seed rows attrs hi =
  Synthetic.generate ~seed ~name:"t" ~rows ~attrs (Synthetic.Uniform { lo = 0; hi })

let secure_matches_oracle ?(variant = Query.Elim) seed ~rows ~attrs ~k ~m =
  let rel = random_rel seed rows attrs 30 in
  let f = Scoring.sum_of (List.init m Fun.id) in
  let options = { Query.default_options with variant } in
  let ctx, key, res = run_query ~options rel f ~k in
  let reals = Client.real_results ctx key ~ids:(ids_of rel) res in
  let oids = List.map (fun (id, _, _) -> int_of_string (String.sub id 1 (String.length id - 1))) reals in
  oracle_valid rel f ~k oids

let prop_secure_elim =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:6 ~name:"Qry_E matches oracle (random relations)"
       QCheck.(pair (int_bound 10_000) (int_range 1 4))
       (fun (seed, k) -> secure_matches_oracle (string_of_int seed) ~rows:12 ~attrs:3 ~k ~m:3))

let prop_secure_full =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:4 ~name:"Qry_F matches oracle (random relations)"
       QCheck.(pair (int_bound 10_000) (int_range 1 3))
       (fun (seed, k) ->
         secure_matches_oracle ~variant:Query.Full (string_of_int seed) ~rows:10 ~attrs:3 ~k ~m:3))

let prop_secure_batched =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:4 ~name:"Qry_Ba matches oracle (random relations)"
       QCheck.(pair (int_bound 10_000) (int_range 2 5))
       (fun (seed, p) ->
         secure_matches_oracle ~variant:(Query.Batched p) (string_of_int seed) ~rows:12 ~attrs:3
           ~k:2 ~m:3))

let test_weighted_query () =
  let rel = random_rel "weighted" 10 3 20 in
  let f = Scoring.create [ (0, 3); (2, 2) ] in
  let ctx, key, res = run_query ~options:{ Query.default_options with variant = Query.Elim } rel f ~k:3 in
  let reals = Client.real_results ctx key ~ids:(ids_of rel) res in
  let oids = List.map (fun (id, _, _) -> int_of_string (String.sub id 1 (String.length id - 1))) reals in
  Alcotest.(check bool) "weighted answer oracle-valid" true (oracle_valid rel f ~k:3 oids)

let test_duplicate_heavy () =
  (* many ties / duplicate values stress SecDedup and SecUpdate *)
  let rel = Relation.create ~name:"dup"
      [| [| 5; 5 |]; [| 5; 5 |]; [| 5; 5 |]; [| 4; 6 |]; [| 6; 4 |]; [| 1; 1 |] |] in
  let f = Scoring.sum_of [ 0; 1 ] in
  let ctx, key, res = run_query ~options:{ Query.default_options with variant = Query.Full } rel f ~k:3 in
  let reals = Client.real_results ctx key ~ids:(ids_of rel) res in
  let oids = List.map (fun (id, _, _) -> int_of_string (String.sub id 1 (String.length id - 1))) reals in
  Alcotest.(check bool) "tie-heavy answer oracle-valid" true (oracle_valid rel f ~k:3 oids)

let test_k_equals_n () =
  let rel = random_rel "kn" 5 2 20 in
  let f = Scoring.sum_of [ 0; 1 ] in
  let ctx, key, res = run_query ~options:{ Query.default_options with variant = Query.Elim } rel f ~k:5 in
  let reals = Client.real_results ctx key ~ids:(ids_of rel) res in
  Alcotest.(check int) "all objects returned" 5 (List.length reals)

let test_max_depth_cap () =
  let rel = random_rel "cap" 30 3 30 in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let options = { Query.default_options with variant = Query.Elim; max_depth = Some 2 } in
  let _, _, res = run_query ~options rel f ~k:5 in
  Alcotest.(check bool) "did not halt" false res.Query.halted;
  Alcotest.(check int) "stopped at cap" 2 res.Query.halting_depth;
  Alcotest.(check int) "per-depth timings recorded" 2 (Array.length res.Query.depth_seconds)

let prop_halting_depth_matches_nra =
  (* the strongest fidelity property: the oblivious execution consumes
     exactly as many depths as plaintext NRA (the seen-vector best-score
     refresh is what makes this exact rather than merely conservative) *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:5 ~name:"SecQuery halting depth = plaintext NRA depth"
       QCheck.(pair (int_bound 10_000) (int_range 1 3))
       (fun (seed, k) ->
         let rel =
           Synthetic.generate ~seed:(string_of_int seed) ~name:"hd" ~rows:14 ~attrs:3
             (Synthetic.Correlated { base = Synthetic.Uniform { lo = 0; hi = 200 }; noise = 5 })
         in
         let f = Scoring.sum_of [ 0; 1; 2 ] in
         let sl = Sorted_lists.of_relation rel in
         let _, nra_stats = Nra.run sl f ~k in
         let _, _, res =
           run_query ~options:{ Query.default_options with variant = Query.Elim } rel f ~k
         in
         res.Query.halting_depth = nra_stats.Nra.halting_depth))

let test_single_attribute_query () =
  (* m = 1 degenerates SecWorst (no others) and SecBest (no history) *)
  let rel = random_rel "m1" 12 3 25 in
  let f = Scoring.sum_of [ 1 ] in
  let ctx, key, res = run_query ~options:{ Query.default_options with variant = Query.Elim } rel f ~k:3 in
  let reals = Client.real_results ctx key ~ids:(ids_of rel) res in
  let oids = List.map (fun (id, _, _) -> int_of_string (String.sub id 1 (String.length id - 1))) reals in
  Alcotest.(check bool) "m=1 oracle-valid" true (oracle_valid rel f ~k:3 oids);
  (* with one list, NRA halts as soon as k rows are read *)
  Alcotest.(check bool) "halts at ~k" true (res.Query.halting_depth <= 5)

let test_adaptive_queries_same_db () =
  (* two different tokens against one encrypted DB, then a repeat of the
     first: all answers correct, and the query pattern records the repeat *)
  let rel = random_rel "adaptive" 12 4 25 in
  let er, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"enc-ad") pub rel in
  let ask scoring k =
    let ctx = make_ctx () in
    let tk = Scheme.token key ~m_total:4 scoring ~k in
    let res = Query.run ctx er tk { Query.default_options with variant = Query.Elim } in
    let reals = Client.real_results ctx key ~ids:(ids_of rel) res in
    ( tk,
      List.map (fun (id, _, _) -> int_of_string (String.sub id 1 (String.length id - 1))) reals )
  in
  let f1 = Scoring.sum_of [ 0; 1 ] and f2 = Scoring.sum_of [ 2; 3 ] in
  let t1, a1 = ask f1 2 in
  let t2, a2 = ask f2 3 in
  let t3, a3 = ask f1 2 in
  Alcotest.(check bool) "q1 valid" true (oracle_valid rel f1 ~k:2 a1);
  Alcotest.(check bool) "q2 valid" true (oracle_valid rel f2 ~k:3 a2);
  Alcotest.(check (list int)) "repeat gives same answer" a1 a3;
  let qp = Leakage.query_pattern [ t1; t2; t3 ] in
  Alcotest.(check bool) "QP records the repeat" true qp.(2).(0);
  Alcotest.(check bool) "QP distinguishes q2" false qp.(1).(0)

let test_full_variant_hides_uniqueness () =
  (* Qry_F reveals no uniqueness pattern: its trace must contain zero
     SecDupElim counts, while Qry_E's contains one per depth *)
  let rel = random_rel "upd" 10 3 6 (* small range -> duplicates likely *) in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let trace_of variant =
    let ctx, _, _ = run_query ~options:{ Query.default_options with variant } rel f ~k:2 in
    Leakage.of_trace (Proto.Ctx.trace ctx)
  in
  let p_full = trace_of Query.Full in
  let p_elim = trace_of Query.Elim in
  Alcotest.(check (list int)) "Qry_F leaks no UP" [] p_full.Leakage.uniqueness_counts;
  Alcotest.(check bool) "Qry_E leaks UP" true (p_elim.Leakage.uniqueness_counts <> [])

(* ---------------- bandwidth accounting ---------------- *)

let test_bandwidth_recorded () =
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let ctx, _, _ = run_query ~options:{ Query.default_options with variant = Query.Elim } fig3 f ~k:2 in
  let ch = (Proto.Ctx.channel ctx) in
  Alcotest.(check bool) "bytes flowed" true (Proto.Channel.bytes_total ch > 0);
  Alcotest.(check bool) "rounds recorded" true (Proto.Channel.rounds_total ch > 0);
  let labels = List.map fst (Proto.Channel.bytes_by_label ch) in
  List.iter
    (fun l -> Alcotest.(check bool) (l ^ " present") true (List.mem l labels))
    [ "SecWorst"; "SecBest"; "SecUpdate"; "EncSort"; "EncCompare" ]

(* ---------------- leakage ---------------- *)

let test_query_pattern () =
  let _, key = Scheme.encrypt ~s:4 rng pub fig3 in
  let t1 = Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1 ]) ~k:2 in
  let t2 = Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 2 ]) ~k:2 in
  let qp = Leakage.query_pattern [ t1; t2; t1 ] in
  Alcotest.(check bool) "diagonal" true (qp.(0).(0) && qp.(1).(1) && qp.(2).(2));
  Alcotest.(check bool) "repeat detected" true qp.(2).(0);
  Alcotest.(check bool) "distinct not flagged" false qp.(1).(0)

let test_leakage_same_shape_for_isomorphic_dbs () =
  (* two relations with identical duplicate structure but different values:
     S2's view must have the same shape (the CQA simulation argument) *)
  let rel_a = Relation.create ~name:"a" [| [| 9; 7 |]; [| 6; 5 |]; [| 3; 2 |] |] in
  let rel_b = Relation.create ~name:"b" [| [| 90; 70 |]; [| 60; 50 |]; [| 30; 20 |] |] in
  let f = Scoring.sum_of [ 0; 1 ] in
  let profile rel =
    let ctx = make_ctx () in
    let er, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:("enc" ^ Relation.name rel)) pub rel in
    let tk = Scheme.token key ~m_total:2 f ~k:2 in
    let res = Query.run ctx er tk { Query.default_options with variant = Query.Elim } in
    (Leakage.of_trace (Proto.Ctx.trace ctx), res.Query.halting_depth)
  in
  let pa, da = profile rel_a and pb, db = profile rel_b in
  Alcotest.(check int) "same halting depth" da db;
  Alcotest.(check bool) "same S2 view shape" true (Leakage.same_shape pa pb)

let test_leakage_profile_contents () =
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let ctx, _, res = run_query ~options:{ Query.default_options with variant = Query.Elim } fig3 f ~k:2 in
  let p = Leakage.of_trace (Proto.Ctx.trace ctx) in
  Alcotest.(check bool) "equality rounds happened" true (p.Leakage.equality_rounds > 0);
  Alcotest.(check bool) "uniqueness pattern revealed (Qry_E)" true
    (List.length p.Leakage.uniqueness_counts > 0);
  Alcotest.(check bool) "halting depth matches trace era" true (res.Query.halting_depth = 3)

(* ---------------- codec ---------------- *)

let test_codec_relation_roundtrip () =
  let er, _ = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"codec") pub fig3 in
  let blob = Codec.encode_relation pub er in
  let er' = Codec.decode_relation pub blob in
  Alcotest.(check int) "rows" (Scheme.n_rows er) (Scheme.n_rows er');
  Alcotest.(check int) "lists" (Scheme.n_attrs er) (Scheme.n_attrs er');
  (* every ciphertext survives byte-identically *)
  for list = 0 to 2 do
    for depth = 0 to 4 do
      let a = Scheme.entry er ~list ~depth and b = Scheme.entry er' ~list ~depth in
      Alcotest.(check bool) "score ct equal" true
        (Paillier.equal_ct a.Proto.Enc_item.score b.Proto.Enc_item.score);
      Array.iteri
        (fun i c ->
          Alcotest.(check bool) "ehl cell equal" true
            (Paillier.equal_ct c (Ehl.Ehl_plus.cells b.Proto.Enc_item.ehl).(i)))
        (Ehl.Ehl_plus.cells a.Proto.Enc_item.ehl)
    done
  done

let test_codec_query_on_decoded () =
  (* a query against the decoded relation must give the same answer *)
  let er, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"codecq") pub fig3 in
  let er' = Codec.decode_relation pub (Codec.encode_relation pub er) in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let tk = Scheme.token key ~m_total:3 f ~k:2 in
  let ctx = make_ctx () in
  let res = Query.run ctx er' tk { Query.default_options with variant = Query.Elim } in
  let ids = List.map (fun (id, _, _) -> id) (Client.real_results ctx key ~ids:(ids_of fig3) res) in
  Alcotest.(check (list string)) "same top-2 from decoded DB" [ "o2"; "o1" ] ids

let test_codec_key_roundtrip () =
  let _, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"codeck") pub fig3 in
  let key' = Codec.decode_secret_key (Codec.encode_secret_key key) in
  Alcotest.(check string) "prp key" key.Scheme.prp_key key'.Scheme.prp_key;
  Alcotest.(check int) "s" key.Scheme.s key'.Scheme.s;
  Alcotest.(check (list string)) "ehl keys" key.Scheme.ehl_keys key'.Scheme.ehl_keys

let test_codec_token_roundtrip () =
  let _, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"codect") pub fig3 in
  let tk = Scheme.token key ~m_total:3 (Scoring.create [ (0, 2); (2, 5) ]) ~k:7 in
  let tk' = Codec.decode_token (Codec.encode_token tk) in
  Alcotest.(check int) "k" tk.Scheme.k tk'.Scheme.k;
  Alcotest.(check (list (pair int int))) "attrs" tk.Scheme.attrs tk'.Scheme.attrs

let test_codec_rejects_garbage () =
  let reject name f =
    Alcotest.(check bool) name true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  reject "empty" (fun () -> Codec.decode_token "");
  reject "bad magic" (fun () -> Codec.decode_token "NOPE\001");
  reject "wrong kind" (fun () -> Codec.decode_token (Codec.encode_secret_key { Scheme.prp_key = "x"; ehl_keys = [ "a" ]; s = 1 }));
  reject "truncated relation" (fun () ->
      let er, _ = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"codecx") pub fig3 in
      let blob = Codec.encode_relation pub er in
      Codec.decode_relation pub (String.sub blob 0 (String.length blob - 3)));
  reject "trailing bytes" (fun () ->
      let _, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"codecy") pub fig3 in
      let blob = Codec.encode_secret_key key in
      Codec.decode_secret_key (blob ^ "z"))

(* Hardening properties, mirroring test_wire's mutation strategy: every
   strict prefix and every overlong extension of a codec blob is
   rejected, and single-byte mutations / arbitrary garbage never raise
   anything but [Invalid_argument] (payload mutations may legitimately
   decode to different ciphertexts — that is not a parser failure). *)

let codec_blobs =
  lazy
    (let er, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"codech") pub fig3 in
     let tk = Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2 in
     [ ("relation", Codec.encode_relation pub er);
       ("secret-key", Codec.encode_secret_key key);
       ("token", Codec.encode_token tk) ])

let codec_decoders (s : string) : (string * (unit -> unit)) list =
  [ ("relation", fun () -> ignore (Codec.decode_relation pub s));
    ("secret-key", fun () -> ignore (Codec.decode_secret_key s));
    ("token", fun () -> ignore (Codec.decode_token s)) ]

let must_reject f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let only_invalid f =
  try
    f ();
    true
  with Invalid_argument _ -> true

let test_codec_truncation_sweep () =
  List.iter
    (fun (kind, blob) ->
      let n = String.length blob in
      (* every short prefix, then a byte-granular sweep near the end *)
      let cuts = List.init (min n 48) Fun.id @ List.init (min n 48) (fun j -> n - 1 - j) in
      List.iter
        (fun cut ->
          if cut >= 0 && cut < n then
            List.iter
              (fun (who, f) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s cut %d rejected by %s" kind cut who)
                  true (must_reject f))
              (codec_decoders (String.sub blob 0 cut)))
        cuts)
    (Lazy.force codec_blobs)

let test_codec_overlong () =
  List.iter
    (fun (kind, blob) ->
      List.iter
        (fun (who, f) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s + trailing byte rejected by %s" kind who)
            true (must_reject f))
        (codec_decoders (blob ^ "\x00")))
    (Lazy.force codec_blobs)

let test_codec_mutation_safety =
  QCheck.Test.make ~count:500 ~name:"mutated codec blobs never crash"
    QCheck.(triple (int_bound 2) small_nat (int_bound 255))
    (fun (bi, pos, byte) ->
      let blobs = Array.of_list (Lazy.force codec_blobs) in
      let _, s = blobs.(bi) in
      let b = Bytes.of_string s in
      Bytes.set b (pos mod String.length s) (Char.chr byte);
      let s = Bytes.to_string b in
      List.for_all (fun (_, f) -> only_invalid f) (codec_decoders s))

let test_codec_garbage_safety =
  QCheck.Test.make ~count:500 ~name:"garbage never crashes the codec"
    QCheck.(string_gen_of_size Gen.small_nat Gen.char)
    (fun s -> List.for_all (fun (_, f) -> only_invalid f) (codec_decoders s))

(* ---------------- domain-pool determinism ---------------- *)

let test_domains_deterministic () =
  (* the domain pool must be invisible: a seeded query run with pool
     widths 1 and 4 produces bit-identical ciphertext results, the same
     S2 trace and the same channel accounting (Ctx.parallel forks all
     randomness in index order before any domain starts) *)
  let go domains =
    let rng = Rng.create ~seed:"domains-det" in
    let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:128 in
    let ctx = Proto.Ctx.of_keys ~blind_bits:48 ~domains (Rng.fork rng ~label:"ctx") pub sk in
    let er, key = Scheme.encrypt ~s:4 (Rng.fork rng ~label:"enc") pub fig3 in
    let tk = Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2 in
    let res = Query.run ctx er tk { Query.default_options with variant = Query.Elim } in
    (ctx, res)
  in
  let ctx1, res1 = go 1 in
  let ctx4, res4 = go 4 in
  let nat_eq (a : Paillier.ciphertext) (b : Paillier.ciphertext) =
    Bignum.Nat.equal (a :> Bignum.Nat.t) (b :> Bignum.Nat.t)
  in
  Alcotest.(check int) "halting depth" res1.Query.halting_depth res4.Query.halting_depth;
  Alcotest.(check int) "top-k size" (List.length res1.Query.top) (List.length res4.Query.top);
  Alcotest.(check bool) "ciphertexts bit-identical" true
    (List.for_all2
       (fun (a : Proto.Enc_item.scored) (b : Proto.Enc_item.scored) ->
         nat_eq a.worst b.worst && nat_eq a.best b.best
         && Array.for_all2 nat_eq a.seen b.seen
         && a.ehl = b.ehl)
       res1.Query.top res4.Query.top);
  Alcotest.(check bool) "S2 traces identical" true
    (Proto.Ctx.trace_events ctx1 = Proto.Ctx.trace_events ctx4);
  Alcotest.(check int) "bytes"
    (Proto.Channel.bytes_total (Proto.Ctx.channel ctx1))
    (Proto.Channel.bytes_total (Proto.Ctx.channel ctx4));
  Alcotest.(check int) "messages"
    (Proto.Channel.messages_total (Proto.Ctx.channel ctx1))
    (Proto.Channel.messages_total (Proto.Ctx.channel ctx4));
  Alcotest.(check int) "rounds"
    (Proto.Channel.rounds_total (Proto.Ctx.channel ctx1))
    (Proto.Channel.rounds_total (Proto.Ctx.channel ctx4))

let suite =
  [ ( "scheme",
      [ Alcotest.test_case "encrypt shape" `Quick test_encrypt_shape;
        Alcotest.test_case "lists sorted under encryption" `Quick test_encrypt_lists_sorted;
        Alcotest.test_case "token permutation" `Quick test_token_permutation;
        Alcotest.test_case "token attribute subset" `Quick test_token_attribute_subset;
        Alcotest.test_case "id resolver" `Quick test_resolver;
        Alcotest.test_case "parallel encryption" `Quick test_parallel_encrypt
      ] );
    ( "secquery-fig3",
      [ Alcotest.test_case "Qry_F answers Figure 3" `Quick test_fig3_full;
        Alcotest.test_case "Qry_E answers Figure 3" `Quick test_fig3_elim;
        Alcotest.test_case "Qry_Ba answers Figure 3" `Quick test_fig3_batched;
        Alcotest.test_case "halting depth = 3" `Quick test_fig3_halting_depth;
        Alcotest.test_case "network sort variant" `Quick test_fig3_network_sort;
        Alcotest.test_case "paper-literal halting" `Quick test_fig3_kth_only;
        Alcotest.test_case "DGK comparison variant" `Quick test_fig3_dgk_compare
      ] );
    ( "secquery-random",
      [ prop_secure_elim;
        prop_secure_full;
        prop_secure_batched;
        Alcotest.test_case "weighted scoring" `Quick test_weighted_query;
        Alcotest.test_case "duplicate-heavy relation" `Quick test_duplicate_heavy;
        Alcotest.test_case "k = n" `Quick test_k_equals_n;
        Alcotest.test_case "max_depth cap" `Quick test_max_depth_cap;
        Alcotest.test_case "single-attribute query" `Quick test_single_attribute_query;
        Alcotest.test_case "adaptive queries on one DB" `Quick test_adaptive_queries_same_db;
        Alcotest.test_case "Qry_F hides uniqueness pattern" `Quick test_full_variant_hides_uniqueness;
        Alcotest.test_case "domain pool is deterministic" `Quick test_domains_deterministic;
        prop_halting_depth_matches_nra
      ] );
    ("bandwidth", [ Alcotest.test_case "channel accounting" `Quick test_bandwidth_recorded ]);
    ( "codec",
      [ Alcotest.test_case "relation roundtrip" `Quick test_codec_relation_roundtrip;
        Alcotest.test_case "query on decoded relation" `Quick test_codec_query_on_decoded;
        Alcotest.test_case "secret key roundtrip" `Quick test_codec_key_roundtrip;
        Alcotest.test_case "token roundtrip" `Quick test_codec_token_roundtrip;
        Alcotest.test_case "rejects malformed input" `Quick test_codec_rejects_garbage;
        Alcotest.test_case "truncation sweep" `Quick test_codec_truncation_sweep;
        Alcotest.test_case "overlong input" `Quick test_codec_overlong;
        QCheck_alcotest.to_alcotest test_codec_mutation_safety;
        QCheck_alcotest.to_alcotest test_codec_garbage_safety
      ] );
    ( "leakage",
      [ Alcotest.test_case "query pattern" `Quick test_query_pattern;
        Alcotest.test_case "isomorphic DBs -> same S2 view shape" `Quick
          test_leakage_same_shape_for_isomorphic_dbs;
        Alcotest.test_case "profile contents" `Quick test_leakage_profile_contents
      ] )
  ]

let () = Alcotest.run "sectopk" suite
