(* Observability tests: (a) metrics/span determinism across domain-pool
   widths, (b) the closed-form Obs.Cost_model against measured counters
   (exact equality), (c) disabled observability changes nothing. *)

open Bignum
open Crypto
open Dataset
open Topk
open Proto

let rng = Rng.create ~seed:"test_obs"
let ctx = Ctx.create ~blind_bits:48 rng ~bits:128
let s1 = ctx.Ctx.s1
let pub = s1.Ctx.pub
let keys = Prf.gen_keys rng 4

let enc i = Paillier.encrypt rng pub (Nat.of_int i)

let entry oid score = { Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys oid; score = enc score }

let scored ?(seen = [| 1; 0 |]) oid worst best =
  {
    Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys oid;
    worst = enc worst;
    best = enc best;
    seen = Array.map enc seen;
  }

let with_obs f =
  let prev = Obs.is_enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled prev) f

(* run [f] under a fresh collector with observability on; return counters *)
let measure f =
  let c = Obs.Collector.create () in
  ignore (with_obs (fun () -> Obs.with_collector c f));
  Obs.Collector.metrics c

let params =
  {
    Obs.Cost_model.cells = 4;
    seen = 2;
    ct = Paillier.ciphertext_bytes pub;
    own_ct = Paillier.ciphertext_bytes s1.Ctx.own_pub;
    dj_ct = Damgard_jurik.ciphertext_bytes s1.Ctx.djpub;
    req_base = Wire.request_header_bytes ~label:"";
    resp_base = Wire.response_header_bytes;
  }

let check_model name model measured =
  List.iter
    (fun (op, expected) ->
      Alcotest.(check int)
        (name ^ ": " ^ Obs.Metrics.name op)
        expected
        (Obs.Metrics.get measured op))
    (Obs.Cost_model.to_alist model)

(* ---------------- cost model vs measured ---------------- *)

let test_model_enc_compare () =
  let a = enc 3 and b = enc 5 in
  let m = measure (fun () -> ignore (Enc_compare.leq ctx a b)) in
  check_model "enc_compare" (Obs.Cost_model.enc_compare params) m

let test_model_sec_worst () =
  let target = entry "o1" 10 in
  let others = [ entry "o2" 8; entry "o3" 6 ] in
  let m = measure (fun () -> ignore (Sec_worst.run ctx ~target ~others)) in
  check_model "sec_worst" (Obs.Cost_model.sec_worst params ~others:2) m

let test_model_sec_best () =
  let target = entry "o1" 10 in
  let history = [ ([ entry "o2" 8; entry "o4" 7 ], enc 7); ([], enc 5) ] in
  let m = measure (fun () -> ignore (Sec_best.run ctx ~target ~history)) in
  check_model "sec_best" (Obs.Cost_model.sec_best params ~prefixes:[ 2; 0 ]) m

let test_model_sec_dedup () =
  (* Replace mode: 4 items, one duplicated pair -> 1 non-keeper *)
  let items = [ scored "o1" 5 9; scored "o2" 3 7; scored "o1" 4 8; scored "o3" 1 4 ] in
  let m = measure (fun () -> ignore (Sec_dedup.run ctx ~mode:Sec_dedup.Replace items)) in
  check_model "sec_dedup replace"
    (Obs.Cost_model.sec_dedup params ~mode:`Replace ~items:4 ~dups:1)
    m;
  (* Eliminate mode: 4 items, a triple -> 2 non-keepers *)
  let items = [ scored "o1" 5 9; scored "o2" 3 7; scored "o1" 4 8; scored "o1" 2 6 ] in
  let m = measure (fun () -> ignore (Sec_dedup.run ctx ~mode:Sec_dedup.Eliminate items)) in
  check_model "sec_dedup eliminate"
    (Obs.Cost_model.sec_dedup params ~mode:`Eliminate ~items:4 ~dups:2)
    m

let test_model_enc_sort () =
  let items = [ scored "o1" 1 4; scored "o2" 5 9; scored "o3" 3 7 ] in
  let m =
    measure (fun () -> ignore (Enc_sort.sort ctx ~strategy:Enc_sort.Blinded items))
  in
  check_model "enc_sort" (Obs.Cost_model.enc_sort_blinded params ~items:3) m

(* ---------------- determinism across --domains ---------------- *)

let fig3 =
  Relation.create ~name:"fig3"
    [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

let run_fig3 domains =
  let rng = Rng.create ~seed:"obs-domains" in
  let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:128 in
  let ctx = Ctx.of_keys ~blind_bits:48 ~domains (Rng.fork rng ~label:"ctx") pub sk in
  let er, key = Sectopk.Scheme.encrypt ~s:4 (Rng.fork rng ~label:"enc") pub fig3 in
  let tk =
    Sectopk.Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2
  in
  let res =
    Sectopk.Query.run ctx er tk
      { Sectopk.Query.default_options with variant = Sectopk.Query.Elim }
  in
  (ctx, res)

let test_domains_deterministic () =
  (* counters, bytes/rounds and the span tree must be byte-identical for
     any pool width; only wall times may differ, and the canonical
     rendering excludes them *)
  let (ctx1, _), (ctx4, _) = with_obs (fun () -> (run_fig3 1, run_fig3 4)) in
  Alcotest.(check (list (pair string int)))
    "op counters identical"
    (List.map
       (fun (op, v) -> (Obs.Metrics.name op, v))
       (Obs.Metrics.to_alist (Obs.Collector.metrics ctx1.Ctx.obs)))
    (List.map
       (fun (op, v) -> (Obs.Metrics.name op, v))
       (Obs.Metrics.to_alist (Obs.Collector.metrics ctx4.Ctx.obs)));
  Alcotest.(check string)
    "canonical report identical"
    (Obs.Report.render ~times:false ctx1.Ctx.obs)
    (Obs.Report.render ~times:false ctx4.Ctx.obs);
  Alcotest.(check bool) "report non-trivial" true
    (List.length (Obs.Report.rows ctx1.Ctx.obs) > 3)

(* ---------------- disabled mode ---------------- *)

let test_noop_mode () =
  let prev = Obs.is_enabled () in
  Obs.set_enabled false;
  let ctx_off, res_off = run_fig3 1 in
  let (ctx_on, res_on) = with_obs (fun () -> run_fig3 1) in
  Obs.set_enabled prev;
  (* same seeded query: identical results whether or not obs is recording *)
  let nat_eq (a : Paillier.ciphertext) (b : Paillier.ciphertext) =
    Nat.equal (a :> Nat.t) (b :> Nat.t)
  in
  Alcotest.(check int) "halting depth"
    res_off.Sectopk.Query.halting_depth res_on.Sectopk.Query.halting_depth;
  Alcotest.(check bool) "ciphertexts bit-identical" true
    (List.for_all2
       (fun (a : Enc_item.scored) (b : Enc_item.scored) ->
         nat_eq a.worst b.worst && nat_eq a.best b.best
         && Array.for_all2 nat_eq a.seen b.seen)
       res_off.Sectopk.Query.top res_on.Sectopk.Query.top);
  Alcotest.(check int) "bytes identical"
    (Channel.bytes_total (Ctx.channel ctx_off))
    (Channel.bytes_total (Ctx.channel ctx_on));
  (* and the disabled run recorded nothing *)
  Alcotest.(check bool) "disabled collector empty" true
    (Obs.Collector.is_empty ctx_off.Ctx.obs);
  Alcotest.(check bool) "enabled collector non-empty" false
    (Obs.Collector.is_empty ctx_on.Ctx.obs)

(* ---------------- Hist properties ---------------- *)

let hist_of values =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.record h) values;
  h

(* canonical rendering of everything a snapshot exposes *)
let hist_fingerprint h =
  Printf.sprintf "c=%d s=%d min=%d max=%d b=[%s]" (Obs.Hist.count h) (Obs.Hist.sum h)
    (Obs.Hist.min_value h) (Obs.Hist.max_value h)
    (String.concat ";"
       (List.map (fun (ub, n) -> Printf.sprintf "%d:%d" ub n) (Obs.Hist.buckets h)))

let sample_gen =
  (* mix of magnitudes so both the exact (<8) and log-linear regimes and
     several octaves get exercised *)
  QCheck.Gen.(
    frequency
      [ (2, int_bound 7); (4, int_bound 1000); (3, int_bound 1_000_000);
        (1, map (fun v -> v * 1_000_003) (int_bound 1_000_000)) ])

let samples_arb = QCheck.make ~print:QCheck.Print.(list int) QCheck.Gen.(list_size (int_range 1 200) sample_gen)

let prop_bucket_scheme =
  QCheck.Test.make ~name:"bucket bounds and relative width" ~count:2000
    (QCheck.make sample_gen) (fun v ->
      let idx = Obs.Hist.bucket_index v in
      let ub = Obs.Hist.bucket_upper idx in
      let lb = if idx = 0 then 0 else Obs.Hist.bucket_upper (idx - 1) + 1 in
      idx >= 0 && idx < Obs.Hist.n_buckets && lb <= v && v <= ub
      (* bucket width bounds the quantile over-estimate: ub <= v + v/8 + 1 *)
      && ub - v <= (v / 8) + 1)

let prop_merge_comm =
  QCheck.Test.make ~name:"merge commutative" ~count:200
    (QCheck.pair samples_arb samples_arb) (fun (xs, ys) ->
      let ab = hist_of xs and ba = hist_of ys in
      Obs.Hist.merge_into (hist_of ys) ~into:ab;
      Obs.Hist.merge_into (hist_of xs) ~into:ba;
      hist_fingerprint ab = hist_fingerprint ba)

let prop_merge_assoc =
  QCheck.Test.make ~name:"merge associative" ~count:200
    (QCheck.triple samples_arb samples_arb samples_arb) (fun (xs, ys, zs) ->
      let left = hist_of xs in
      Obs.Hist.merge_into (hist_of ys) ~into:left;
      Obs.Hist.merge_into (hist_of zs) ~into:left;
      let yz = hist_of ys in
      Obs.Hist.merge_into (hist_of zs) ~into:yz;
      let right = hist_of xs in
      Obs.Hist.merge_into yz ~into:right;
      hist_fingerprint left = hist_fingerprint right)

let prop_quantile_error =
  (* the estimate brackets the sorted-sample oracle: never below it, and
     above by at most one bucket width (12.5% + 1) *)
  QCheck.Test.make ~name:"quantile vs sorted oracle" ~count:300
    (QCheck.pair samples_arb (QCheck.float_range 0.01 1.)) (fun (xs, q) ->
      let h = hist_of xs in
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let oracle = List.nth sorted (min (n - 1) (rank - 1)) in
      let est = Obs.Hist.quantile h q in
      oracle <= est && est <= oracle + (oracle / 8) + 1)

let prop_sharded_deterministic =
  (* the --domains determinism argument: shard the sample stream over
     any number of per-domain histograms, merge, and the result is
     identical to single-stream recording — merges are exact *)
  QCheck.Test.make ~name:"sharded record+merge = sequential" ~count:200
    (QCheck.pair samples_arb (QCheck.int_range 1 8)) (fun (xs, shards) ->
      let parts = Array.init shards (fun _ -> Obs.Hist.create ()) in
      List.iteri (fun i v -> Obs.Hist.record parts.(i mod shards) v) xs;
      let merged = Obs.Hist.create () in
      Array.iter (fun p -> Obs.Hist.merge_into p ~into:merged) parts;
      hist_fingerprint merged = hist_fingerprint (hist_of xs))

let test_hist_parallel_domains () =
  (* per-domain shards recorded by real parallel domains, merged on the
     spawning domain: byte-identical to the sequential fingerprint *)
  let values = List.init 5000 (fun i -> (i * 7919) mod 2_000_000) in
  let shards = 4 in
  let doms =
    List.init shards (fun d ->
        Domain.spawn (fun () ->
            let h = Obs.Hist.create () in
            List.iteri (fun i v -> if i mod shards = d then Obs.Hist.record h v) values;
            h))
  in
  let merged = Obs.Hist.create () in
  List.iter (fun d -> Obs.Hist.merge_into (Domain.join d) ~into:merged) doms;
  Alcotest.(check string) "parallel fingerprint" (hist_fingerprint (hist_of values))
    (hist_fingerprint merged)

let test_hist_basics () =
  let h = Obs.Hist.create () in
  Alcotest.(check bool) "fresh empty" true (Obs.Hist.is_empty h);
  Alcotest.(check int) "empty quantile" 0 (Obs.Hist.quantile h 0.5);
  Obs.Hist.record h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Obs.Hist.max_value h);
  Obs.Hist.clear h;
  Obs.Hist.record_seconds h 0.001234;
  Alcotest.(check int) "record_seconds rounds to us" 1234 (Obs.Hist.sum h);
  Alcotest.(check (float 1e-9) "quantile_seconds inverse" )
    (float_of_int (Obs.Hist.quantile h 0.5) /. 1e6)
    (Obs.Hist.quantile_seconds h 0.5)

(* ---------------- Registry ---------------- *)

let test_registry_roundtrip () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "served" in
  Obs.Registry.add c 41;
  Obs.Registry.inc c;
  Obs.Registry.set (Obs.Registry.gauge r "queue_depth") 3.5;
  let h = Obs.Registry.histogram r "exec_us" in
  List.iter (Obs.Registry.observe h) [ 5; 90; 1700; 42_000 ];
  let snap = Obs.Registry.snapshot r in
  Alcotest.(check bool) "sorted names" true
    (let names = List.map fst snap in
     names = List.sort compare names);
  let json = Obs.Registry.to_json snap in
  Alcotest.(check bool) "json roundtrip" true (Obs.Registry.of_json json = snap);
  (match List.assoc "served" snap with
  | Obs.Registry.Counter v -> Alcotest.(check int) "counter" 42 v
  | _ -> Alcotest.fail "served not a counter");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let prom = Obs.Registry.to_prometheus snap in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prom contains " ^ needle) true (contains prom needle))
    [ "# TYPE served counter"; "# TYPE queue_depth gauge"; "# TYPE exec_us histogram";
      "exec_us_count 4"; "le=\"+Inf\"" ]

let test_registry_handle_reuse () =
  let r = Obs.Registry.create () in
  Obs.Registry.inc (Obs.Registry.counter r "x");
  Obs.Registry.inc (Obs.Registry.counter r "x");
  Alcotest.(check int) "same cell" 2
    (Obs.Registry.counter_value (Obs.Registry.counter r "x"));
  (match Obs.Registry.gauge r "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted")

let test_registry_json_rejects () =
  let reject s =
    match Obs.Registry.of_json s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted malformed %S" s
  in
  reject "";
  reject "[]";
  reject "{\"a\": true}";
  (* missing sections *)
  reject "{\"counters\":{}}";
  (* trailing garbage *)
  reject "{\"counters\":{},\"gauges\":{},\"histograms\":{}} x";
  (* histogram whose bucket counts do not sum to count *)
  reject
    "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\"count\":3,\"sum\":10,\"min\":1,\
     \"max\":5,\"buckets\":[[5,1]]}}}";
  (* and the well-formed empty snapshot is accepted *)
  Alcotest.(check bool) "empty snapshot accepted" true
    (Obs.Registry.of_json "{\"counters\":{},\"gauges\":{},\"histograms\":{}}" = [])

let suite =
  [ ( "cost-model",
      [ Alcotest.test_case "enc_compare" `Quick test_model_enc_compare;
        Alcotest.test_case "sec_worst" `Quick test_model_sec_worst;
        Alcotest.test_case "sec_best" `Quick test_model_sec_best;
        Alcotest.test_case "sec_dedup" `Quick test_model_sec_dedup;
        Alcotest.test_case "enc_sort" `Quick test_model_enc_sort ] );
    ( "hist",
      [ QCheck_alcotest.to_alcotest prop_bucket_scheme;
        QCheck_alcotest.to_alcotest prop_merge_comm;
        QCheck_alcotest.to_alcotest prop_merge_assoc;
        QCheck_alcotest.to_alcotest prop_quantile_error;
        QCheck_alcotest.to_alcotest prop_sharded_deterministic;
        Alcotest.test_case "parallel domains" `Quick test_hist_parallel_domains;
        Alcotest.test_case "basics" `Quick test_hist_basics ] );
    ( "registry",
      [ Alcotest.test_case "roundtrip + prometheus" `Quick test_registry_roundtrip;
        Alcotest.test_case "handle reuse" `Quick test_registry_handle_reuse;
        Alcotest.test_case "json rejects malformed" `Quick test_registry_json_rejects ] );
    ( "determinism",
      [ Alcotest.test_case "domains 1 vs 4" `Slow test_domains_deterministic;
        Alcotest.test_case "no-op mode" `Slow test_noop_mode ] ) ]

let () = Alcotest.run "obs" suite
