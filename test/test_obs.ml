(* Observability tests: (a) metrics/span determinism across domain-pool
   widths, (b) the closed-form Obs.Cost_model against measured counters
   (exact equality), (c) disabled observability changes nothing. *)

open Bignum
open Crypto
open Dataset
open Topk
open Proto

let rng = Rng.create ~seed:"test_obs"
let ctx = Ctx.create ~blind_bits:48 rng ~bits:128
let s1 = ctx.Ctx.s1
let pub = s1.Ctx.pub
let keys = Prf.gen_keys rng 4

let enc i = Paillier.encrypt rng pub (Nat.of_int i)

let entry oid score = { Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys oid; score = enc score }

let scored ?(seen = [| 1; 0 |]) oid worst best =
  {
    Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys oid;
    worst = enc worst;
    best = enc best;
    seen = Array.map enc seen;
  }

let with_obs f =
  let prev = Obs.is_enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled prev) f

(* run [f] under a fresh collector with observability on; return counters *)
let measure f =
  let c = Obs.Collector.create () in
  ignore (with_obs (fun () -> Obs.with_collector c f));
  Obs.Collector.metrics c

let params =
  {
    Obs.Cost_model.cells = 4;
    seen = 2;
    ct = Paillier.ciphertext_bytes pub;
    own_ct = Paillier.ciphertext_bytes s1.Ctx.own_pub;
    dj_ct = Damgard_jurik.ciphertext_bytes s1.Ctx.djpub;
    req_base = Wire.request_header_bytes ~label:"";
    resp_base = Wire.response_header_bytes;
  }

let check_model name model measured =
  List.iter
    (fun (op, expected) ->
      Alcotest.(check int)
        (name ^ ": " ^ Obs.Metrics.name op)
        expected
        (Obs.Metrics.get measured op))
    (Obs.Cost_model.to_alist model)

(* ---------------- cost model vs measured ---------------- *)

let test_model_enc_compare () =
  let a = enc 3 and b = enc 5 in
  let m = measure (fun () -> ignore (Enc_compare.leq ctx a b)) in
  check_model "enc_compare" (Obs.Cost_model.enc_compare params) m

let test_model_sec_worst () =
  let target = entry "o1" 10 in
  let others = [ entry "o2" 8; entry "o3" 6 ] in
  let m = measure (fun () -> ignore (Sec_worst.run ctx ~target ~others)) in
  check_model "sec_worst" (Obs.Cost_model.sec_worst params ~others:2) m

let test_model_sec_best () =
  let target = entry "o1" 10 in
  let history = [ ([ entry "o2" 8; entry "o4" 7 ], enc 7); ([], enc 5) ] in
  let m = measure (fun () -> ignore (Sec_best.run ctx ~target ~history)) in
  check_model "sec_best" (Obs.Cost_model.sec_best params ~prefixes:[ 2; 0 ]) m

let test_model_sec_dedup () =
  (* Replace mode: 4 items, one duplicated pair -> 1 non-keeper *)
  let items = [ scored "o1" 5 9; scored "o2" 3 7; scored "o1" 4 8; scored "o3" 1 4 ] in
  let m = measure (fun () -> ignore (Sec_dedup.run ctx ~mode:Sec_dedup.Replace items)) in
  check_model "sec_dedup replace"
    (Obs.Cost_model.sec_dedup params ~mode:`Replace ~items:4 ~dups:1)
    m;
  (* Eliminate mode: 4 items, a triple -> 2 non-keepers *)
  let items = [ scored "o1" 5 9; scored "o2" 3 7; scored "o1" 4 8; scored "o1" 2 6 ] in
  let m = measure (fun () -> ignore (Sec_dedup.run ctx ~mode:Sec_dedup.Eliminate items)) in
  check_model "sec_dedup eliminate"
    (Obs.Cost_model.sec_dedup params ~mode:`Eliminate ~items:4 ~dups:2)
    m

let test_model_enc_sort () =
  let items = [ scored "o1" 1 4; scored "o2" 5 9; scored "o3" 3 7 ] in
  let m =
    measure (fun () -> ignore (Enc_sort.sort ctx ~strategy:Enc_sort.Blinded items))
  in
  check_model "enc_sort" (Obs.Cost_model.enc_sort_blinded params ~items:3) m

(* ---------------- determinism across --domains ---------------- *)

let fig3 =
  Relation.create ~name:"fig3"
    [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

let run_fig3 domains =
  let rng = Rng.create ~seed:"obs-domains" in
  let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:128 in
  let ctx = Ctx.of_keys ~blind_bits:48 ~domains (Rng.fork rng ~label:"ctx") pub sk in
  let er, key = Sectopk.Scheme.encrypt ~s:4 (Rng.fork rng ~label:"enc") pub fig3 in
  let tk =
    Sectopk.Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2
  in
  let res =
    Sectopk.Query.run ctx er tk
      { Sectopk.Query.default_options with variant = Sectopk.Query.Elim }
  in
  (ctx, res)

let test_domains_deterministic () =
  (* counters, bytes/rounds and the span tree must be byte-identical for
     any pool width; only wall times may differ, and the canonical
     rendering excludes them *)
  let (ctx1, _), (ctx4, _) = with_obs (fun () -> (run_fig3 1, run_fig3 4)) in
  Alcotest.(check (list (pair string int)))
    "op counters identical"
    (List.map
       (fun (op, v) -> (Obs.Metrics.name op, v))
       (Obs.Metrics.to_alist (Obs.Collector.metrics ctx1.Ctx.obs)))
    (List.map
       (fun (op, v) -> (Obs.Metrics.name op, v))
       (Obs.Metrics.to_alist (Obs.Collector.metrics ctx4.Ctx.obs)));
  Alcotest.(check string)
    "canonical report identical"
    (Obs.Report.render ~times:false ctx1.Ctx.obs)
    (Obs.Report.render ~times:false ctx4.Ctx.obs);
  Alcotest.(check bool) "report non-trivial" true
    (List.length (Obs.Report.rows ctx1.Ctx.obs) > 3)

(* ---------------- disabled mode ---------------- *)

let test_noop_mode () =
  let prev = Obs.is_enabled () in
  Obs.set_enabled false;
  let ctx_off, res_off = run_fig3 1 in
  let (ctx_on, res_on) = with_obs (fun () -> run_fig3 1) in
  Obs.set_enabled prev;
  (* same seeded query: identical results whether or not obs is recording *)
  let nat_eq (a : Paillier.ciphertext) (b : Paillier.ciphertext) =
    Nat.equal (a :> Nat.t) (b :> Nat.t)
  in
  Alcotest.(check int) "halting depth"
    res_off.Sectopk.Query.halting_depth res_on.Sectopk.Query.halting_depth;
  Alcotest.(check bool) "ciphertexts bit-identical" true
    (List.for_all2
       (fun (a : Enc_item.scored) (b : Enc_item.scored) ->
         nat_eq a.worst b.worst && nat_eq a.best b.best
         && Array.for_all2 nat_eq a.seen b.seen)
       res_off.Sectopk.Query.top res_on.Sectopk.Query.top);
  Alcotest.(check int) "bytes identical"
    (Channel.bytes_total (Ctx.channel ctx_off))
    (Channel.bytes_total (Ctx.channel ctx_on));
  (* and the disabled run recorded nothing *)
  Alcotest.(check bool) "disabled collector empty" true
    (Obs.Collector.is_empty ctx_off.Ctx.obs);
  Alcotest.(check bool) "enabled collector non-empty" false
    (Obs.Collector.is_empty ctx_on.Ctx.obs)

let suite =
  [ ( "cost-model",
      [ Alcotest.test_case "enc_compare" `Quick test_model_enc_compare;
        Alcotest.test_case "sec_worst" `Quick test_model_sec_worst;
        Alcotest.test_case "sec_best" `Quick test_model_sec_best;
        Alcotest.test_case "sec_dedup" `Quick test_model_sec_dedup;
        Alcotest.test_case "enc_sort" `Quick test_model_enc_sort ] );
    ( "determinism",
      [ Alcotest.test_case "domains 1 vs 4" `Slow test_domains_deterministic;
        Alcotest.test_case "no-op mode" `Slow test_noop_mode ] ) ]

let () = Alcotest.run "obs" suite
