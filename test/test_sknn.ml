(* Tests for the secure-kNN baseline: the SM sub-protocol against plaintext
   multiplication, kNN answers against a plaintext oracle, and the O(n*m)
   traffic signature the Section 11.3 comparison rests on. *)

open Bignum
open Crypto
open Dataset

let rng = Rng.create ~seed:"test_sknn"
let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:128
let ctx = Proto.Ctx.of_keys ~blind_bits:48 (Rng.fork rng ~label:"ctx") pub sk

let enc i = Paillier.encrypt rng pub (Nat.of_int i)
let dec c = Nat.to_int (Paillier.decrypt sk c)

let test_secure_multiply () =
  Alcotest.(check int) "3*4" 12 (dec (Sknn.secure_multiply ctx (enc 3) (enc 4)));
  Alcotest.(check int) "0*9" 0 (dec (Sknn.secure_multiply ctx (enc 0) (enc 9)));
  Alcotest.(check int) "big" (12345 * 6789) (dec (Sknn.secure_multiply ctx (enc 12345) (enc 6789)))

let test_secure_multiply_signed () =
  (* (a - b)^2 via SM with a negative difference *)
  let d = Paillier.sub pub (enc 3) (enc 8) in
  Alcotest.(check int) "(-5)^2" 25 (dec (Sknn.secure_multiply ctx d d))

let prop_secure_multiply =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"SM matches plaintext product"
       QCheck.(pair (int_bound 100_000) (int_bound 100_000))
       (fun (a, b) -> dec (Sknn.secure_multiply ctx (enc a) (enc b)) = a * b))

let plain_knn rel point k =
  let dist row =
    let acc = ref 0 in
    Array.iteri (fun i v -> acc := !acc + ((v - point.(i)) * (v - point.(i)))) row;
    !acc
  in
  let scored =
    Array.to_list
      (Array.init (Relation.n_rows rel) (fun i -> (i, dist (Relation.row rel i))))
  in
  List.sort (fun (i1, d1) (i2, d2) -> if d1 <> d2 then compare d1 d2 else compare i1 i2) scored
  |> List.map fst
  |> List.filteri (fun i _ -> i < k)

let test_knn_small () =
  let rel = Relation.create ~name:"pts" [| [| 0; 0 |]; [| 10; 10 |]; [| 1; 1 |]; [| 5; 5 |] |] in
  let db = Sknn.encrypt_db rng pub rel in
  let got = Sknn.query ctx db ~point:[| 0; 1 |] ~k:2 in
  Alcotest.(check (list int)) "two nearest" [ 0; 2 ] (List.sort compare got)

let prop_knn_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:10 ~name:"kNN matches plaintext oracle (distance multiset)"
       QCheck.(pair (int_bound 10_000) (int_range 1 4))
       (fun (seed, k) ->
         let rel =
           Synthetic.generate ~seed:(string_of_int seed) ~name:"knn" ~rows:12 ~attrs:3
             (Synthetic.Uniform { lo = 0; hi = 20 })
         in
         let db = Sknn.encrypt_db rng pub rel in
         let point = [| 10; 10; 10 |] in
         let got = Sknn.query ctx db ~point ~k in
         let expect = plain_knn rel point k in
         (* distances can tie, so compare the distance multisets *)
         let dist i =
           let row = Relation.row rel i in
           let acc = ref 0 in
           Array.iteri (fun j v -> acc := !acc + ((v - point.(j)) * (v - point.(j)))) row;
           !acc
         in
         List.sort compare (List.map dist got) = List.sort compare (List.map dist expect)))

let test_traffic_is_linear_in_nm () =
  (* the O(n*m) bandwidth signature: per query, SM traffic ~ 3*n*m cts *)
  let rel = Synthetic.generate ~seed:"bw" ~name:"knnbw" ~rows:8 ~attrs:3
      (Synthetic.Uniform { lo = 0; hi = 20 }) in
  let db = Sknn.encrypt_db rng pub rel in
  let ch = (Proto.Ctx.channel ctx) in
  let before = Proto.Channel.snapshot ch in
  ignore (Sknn.query ctx db ~point:[| 1; 2; 3 |] ~k:2);
  let d = Proto.Channel.diff before (Proto.Channel.snapshot ch) in
  let ct = Paillier.ciphertext_bytes pub in
  let sm_bytes = 3 * 8 * 3 * ct in
  Alcotest.(check bool) "traffic >= 3*n*m ciphertexts" true (d.Proto.Channel.bytes >= sm_bytes)

let test_db_size () =
  let rel = Synthetic.generate ~seed:"sz" ~name:"knnsz" ~rows:10 ~attrs:4
      (Synthetic.Uniform { lo = 0; hi = 9 }) in
  let db = Sknn.encrypt_db rng pub rel in
  Alcotest.(check int) "n" 10 (Sknn.n_records db);
  Alcotest.(check int) "n*m ciphertexts" (10 * 4 * Paillier.ciphertext_bytes pub)
    (Sknn.size_bytes pub db)

(* ---------------- SBD ---------------- *)

let test_sbd_roundtrip () =
  List.iter
    (fun v ->
      let bits = Sknn.Sbd.decompose ctx ~bits:10 (enc v) in
      Alcotest.(check int) "bit count" 10 (Array.length bits);
      Array.iteri
        (fun i b ->
          Alcotest.(check int) (Printf.sprintf "bit %d of %d" i v) ((v lsr i) land 1) (dec b))
        bits;
      Alcotest.(check int) "recompose" v (dec (Sknn.Sbd.recompose ctx bits)))
    [ 0; 1; 513; 1023 ]

let prop_sbd =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"SBD decompose/recompose identity"
       QCheck.(int_bound 65535)
       (fun v -> dec (Sknn.Sbd.recompose ctx (Sknn.Sbd.decompose ctx ~bits:16 (enc v))) = v))

(* ---------------- Smin ---------------- *)

let test_greater_bit () =
  let check a b =
    let ab = Sknn.Sbd.decompose ctx ~bits:8 (enc a) in
    let bb = Sknn.Sbd.decompose ctx ~bits:8 (enc b) in
    Alcotest.(check int)
      (Printf.sprintf "[%d > %d]" a b)
      (if a > b then 1 else 0)
      (dec (Sknn.Smin.greater_bit ctx ab bb))
  in
  check 5 3;
  check 3 5;
  check 7 7;
  check 0 255;
  check 255 0

let prop_min_pair =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15 ~name:"secure min = plaintext min"
       QCheck.(pair (int_bound 255) (int_bound 255))
       (fun (a, b) -> dec (Sknn.Smin.min_pair ctx ~bits:8 (enc a) (enc b)) = min a b))

let test_min_of () =
  let vals = [| 9; 4; 7; 4; 250 |] in
  let cands = Array.map (fun v -> Sknn.Sbd.decompose ctx ~bits:8 (enc v)) vals in
  let min_bits = Sknn.Smin.min_of ctx cands in
  Alcotest.(check int) "fold min" 4 (dec (Sknn.Sbd.recompose ctx min_bits))

let test_query_smin_oracle () =
  let rel = Relation.create ~name:"pts" [| [| 0; 0 |]; [| 10; 10 |]; [| 1; 1 |]; [| 5; 5 |] |] in
  let db = Sknn.encrypt_db rng pub rel in
  let got = Sknn.query_smin ctx db ~point:[| 0; 1 |] ~k:2 ~bits:10 in
  Alcotest.(check (list int)) "nearest two via SMIN" [ 0; 2 ] (List.sort compare got)

let suite =
  [ ( "secure-multiply",
      [ Alcotest.test_case "known products" `Quick test_secure_multiply;
        Alcotest.test_case "signed operand" `Quick test_secure_multiply_signed;
        prop_secure_multiply
      ] );
    ( "sbd",
      [ Alcotest.test_case "roundtrip + bit values" `Quick test_sbd_roundtrip; prop_sbd ] );
    ( "smin",
      [ Alcotest.test_case "greater bit" `Quick test_greater_bit;
        prop_min_pair;
        Alcotest.test_case "fold min" `Quick test_min_of;
        Alcotest.test_case "query via SMIN matches oracle" `Quick test_query_smin_oracle
      ] );
    ( "knn",
      [ Alcotest.test_case "small example" `Quick test_knn_small;
        prop_knn_oracle;
        Alcotest.test_case "O(nm) traffic" `Quick test_traffic_is_linear_in_nm;
        Alcotest.test_case "db size" `Quick test_db_size
      ] )
  ]

let () = Alcotest.run "sknn" suite
