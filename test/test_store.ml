(* lib/store acceptance tests: build -> open round-trips byte-identically
   with the in-memory path (results, S2 trace, crypto op-counters, on
   both local transports), publication is crash-safe (the MANIFEST
   rename is the only commit point), every corruption class is rejected
   with its typed error, the LRU block cache is lazy and counted, the
   update log replays SecUpdate-shaped deltas, and CSV ingestion accepts
   UCI-shaped files while rejecting malformed rows with line numbers. *)

open Bignum
open Crypto
open Dataset
open Topk
open Proto

let seed = "store-identity"
let key_bits = 128
let rand_bits = 96

let fig3 =
  Relation.create ~name:"fig3"
    [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

(* One deterministic encryption shared by every test: [Store.build] only
   serializes, so each test gets its own directory but the same bytes. *)
let pub, _sk, _ctx_rng0, data_rng0 = Ctx.provision ~seed ~key_bits ~rand_bits ()
let er, key = Sectopk.Scheme.encrypt ~s:4 data_rng0 pub fig3

let counter = ref 0

let fresh_dir () =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "test_store_%d_%d" (Unix.getpid ()) !counter)

let build_store ?block_records () =
  let dir = fresh_dir () in
  Store.build ?block_records ~dir pub er;
  dir

let with_obs f =
  let prev = Obs.is_enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled prev) f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

(* xor one byte; negative [pos] counts from the end *)
let flip_byte path pos =
  let s = read_file path in
  let pos = if pos < 0 then String.length s + pos else pos in
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  write_file path (Bytes.to_string b)

let chop_byte path =
  let s = read_file path in
  write_file path (String.sub s 0 (String.length s - 1))

let append_bytes path s =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let expect_error name pred f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Store.Error, got a value")
  | exception Store.Error e ->
    Alcotest.(check bool) (name ^ ": " ^ Store.error_message e) true (pred e)

let is_corrupt = function Store.Corrupt _ -> true | _ -> false
let is_truncated = function Store.Truncated _ -> true | _ -> false

(* ---------------- round-trip identity ---------------- *)

type outcome = {
  top : (Nat.t * Nat.t * Nat.t array) list;
  ids : string list;
  halting_depth : int;
  trace : Trace.event list;
  ops : (string * int) list;  (** crypto op counters only — store counters excluded *)
}

let store_counter = function
  | "store_read_bytes" | "cache_hit" | "cache_miss" -> true
  | _ -> false

(* run the seeded Fig. 3 query over a given relation value; provisioning
   is replayed fresh so the blinding stream is identical per run *)
let run_on (mode : Ctx.mode) relation : outcome =
  let pub, sk, ctx_rng, _ = Ctx.provision ~seed ~key_bits ~rand_bits () in
  let ctx = Ctx.of_keys ~blind_bits:48 ~mode ctx_rng pub sk in
  let tk = Sectopk.Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2 in
  let res = Sectopk.Query.run ctx relation tk Sectopk.Query.default_options in
  let all_ids = List.init (Relation.n_rows fig3) (fun i -> Relation.object_id fig3 i) in
  let ids =
    List.map (fun (id, _, _) -> id) (Sectopk.Client.real_results ~sk ctx key ~ids:all_ids res)
  in
  {
    top =
      List.map
        (fun (it : Enc_item.scored) ->
          ( (it.worst :> Nat.t),
            (it.best :> Nat.t),
            Array.map (fun (c : Paillier.ciphertext) -> (c :> Nat.t)) it.seen ))
        res.Sectopk.Query.top;
    ids;
    halting_depth = res.Sectopk.Query.halting_depth;
    trace = Ctx.trace_events ctx;
    ops =
      List.filter_map
        (fun (op, v) ->
          let name = Obs.Metrics.name op in
          if store_counter name || v = 0 then None else Some (name, v))
        (Obs.Metrics.to_alist (Obs.Collector.metrics ctx.Ctx.obs))
      |> List.sort compare;
  }

let nat_triple_eq (w1, b1, s1) (w2, b2, s2) =
  Nat.equal w1 w2 && Nat.equal b1 b2
  && Array.length s1 = Array.length s2
  && Array.for_all2 Nat.equal s1 s2

let check_identical name (a : outcome) (b : outcome) =
  Alcotest.(check (list string)) (name ^ ": result ids") a.ids b.ids;
  Alcotest.(check int) (name ^ ": halting depth") a.halting_depth b.halting_depth;
  Alcotest.(check bool) (name ^ ": ciphertexts byte-identical") true
    (List.length a.top = List.length b.top && List.for_all2 nat_triple_eq a.top b.top);
  Alcotest.(check bool) (name ^ ": S2 trace identical") true (a.trace = b.trace);
  Alcotest.(check (list (pair string int))) (name ^ ": crypto op totals") a.ops b.ops

let test_round_trip mode () =
  with_obs (fun () ->
      let dir = build_store ~block_records:2 () in
      let st = Store.open_index ~dir pub in
      Alcotest.(check int) "rows" 5 (Store.n_rows st);
      Alcotest.(check int) "lists" 3 (Store.n_attrs st);
      Alcotest.(check int) "cells" 4 (Store.cells st);
      Alcotest.(check int) "generation" 1 (Store.generation st);
      let memory = run_on mode er in
      let stored = run_on mode (Store.relation st) in
      Alcotest.(check bool) "trace non-trivial" true (List.length memory.trace > 3);
      check_identical "memory vs store" memory stored;
      Store.close st)

(* every (list, depth) cell, not just the ones SecQuery touches *)
let test_every_entry_identical () =
  let dir = build_store ~block_records:3 () in
  let st = Store.open_index ~dir pub in
  for list = 0 to 2 do
    for depth = 0 to 4 do
      let a = Sectopk.Scheme.entry er ~list ~depth in
      let b = Store.entry st ~list ~depth in
      Alcotest.(check bool)
        (Printf.sprintf "entry (%d,%d)" list depth)
        true
        (Nat.equal (a.Enc_item.score :> Nat.t) (b.Enc_item.score :> Nat.t)
        && Array.for_all2
             (fun (x : Paillier.ciphertext) (y : Paillier.ciphertext) ->
               Nat.equal (x :> Nat.t) (y :> Nat.t))
             (Ehl.Ehl_plus.cells a.Enc_item.ehl)
             (Ehl.Ehl_plus.cells b.Enc_item.ehl))
    done
  done;
  Store.close st

(* ---------------- crash safety ---------------- *)

let test_crash_leaves_previous_generation () =
  let dir = build_store () in
  (* a build that died mid-write: stray next-generation files and an
     unrenamed manifest temp must not affect the published generation *)
  write_file (Filename.concat dir "MANIFEST.tmp") "partial garbage";
  write_file (Filename.concat dir "seg_2_0.stk") "STKS half-written";
  write_file (Filename.concat dir "updates_2.log") "torn";
  let st = Store.open_index ~dir pub in
  Alcotest.(check int) "old generation still published" 1 (Store.generation st);
  Store.verify st;
  Store.close st;
  (* a retried build supersedes the stray files cleanly *)
  Store.build ~dir pub er;
  let st = Store.open_index ~dir pub in
  Alcotest.(check int) "rebuild bumps generation" 2 (Store.generation st);
  Store.verify st;
  Store.close st

(* ---------------- typed rejection of damaged stores ---------------- *)

let test_corrupt_manifest () =
  let dir = build_store () in
  flip_byte (Filename.concat dir "MANIFEST") 20;
  expect_error "flipped manifest byte" is_corrupt (fun () -> Store.open_index ~dir pub)

let test_bad_magic () =
  let dir = build_store () in
  let path = Filename.concat dir "MANIFEST" in
  let s = read_file path in
  write_file path ("XXXX" ^ String.sub s 4 (String.length s - 4));
  expect_error "wrong magic"
    (function Store.Bad_magic _ -> true | _ -> false)
    (fun () -> Store.open_index ~dir pub)

let test_bad_version () =
  let dir = build_store () in
  flip_byte (Filename.concat dir "MANIFEST") 4;
  expect_error "wrong version"
    (function Store.Bad_version _ -> true | _ -> false)
    (fun () -> Store.open_index ~dir pub)

let test_truncated_manifest () =
  let dir = build_store () in
  chop_byte (Filename.concat dir "MANIFEST");
  (* losing the final byte breaks the whole-file checksum *)
  expect_error "truncated manifest"
    (fun e -> is_corrupt e || is_truncated e)
    (fun () -> Store.open_index ~dir pub)

let test_missing_segment () =
  let dir = build_store () in
  Sys.remove (Filename.concat dir "seg_1_1.stk");
  expect_error "missing segment"
    (function Store.Missing _ -> true | _ -> false)
    (fun () -> Store.open_index ~dir pub)

let test_truncated_segment () =
  let dir = build_store () in
  chop_byte (Filename.concat dir "seg_1_0.stk");
  expect_error "truncated segment" is_truncated (fun () -> Store.open_index ~dir pub)

let test_corrupt_segment_header () =
  let dir = build_store () in
  (* a flip inside the header disagrees with the CRC recorded in the
     manifest, so it is caught at open time *)
  flip_byte (Filename.concat dir "seg_1_0.stk") 6;
  expect_error "flipped segment header byte" is_corrupt (fun () -> Store.open_index ~dir pub)

let test_corrupt_segment_body () =
  let dir = build_store ~block_records:2 () in
  (* a flip in the record area passes the open-time header checks and is
     caught by the per-block CRC when the block is first loaded *)
  flip_byte (Filename.concat dir "seg_1_0.stk") (-1);
  let st = Store.open_index ~dir pub in
  expect_error "lazy load of damaged block" is_corrupt (fun () ->
      Store.entry st ~list:0 ~depth:4);
  (* undamaged lists still serve *)
  ignore (Store.entry st ~list:1 ~depth:0);
  expect_error "verify sweeps every block" is_corrupt (fun () -> Store.verify st);
  Store.close st

let test_key_mismatch () =
  let dir = build_store () in
  let other_pub, _, _, _ = Ctx.provision ~seed:"a-different-deployment" ~key_bits ~rand_bits () in
  expect_error "foreign key"
    (function Store.Key_mismatch _ -> true | _ -> false)
    (fun () -> Store.open_index ~dir other_pub)

let test_missing_dir () =
  expect_error "absent directory"
    (function Store.Missing _ -> true | _ -> false)
    (fun () -> Store.open_index ~dir:(fresh_dir ()) pub)

(* ---------------- cache behaviour ---------------- *)

let counter_of c name =
  List.fold_left
    (fun acc (op, v) -> if Obs.Metrics.name op = name then acc + v else acc)
    0
    (Obs.Metrics.to_alist (Obs.Collector.metrics c))

let test_cache_counters () =
  with_obs (fun () ->
      let dir = build_store ~block_records:1 () in
      let st = Store.open_index ~cache_blocks:2 ~dir pub in
      let c = Obs.Collector.create () in
      Obs.with_collector c (fun () ->
          ignore (Store.entry st ~list:0 ~depth:0);
          let cold = counter_of c "store_read_bytes" in
          Alcotest.(check int) "first read misses" 1 (counter_of c "cache_miss");
          Alcotest.(check bool) "read counted" true (cold > 0);
          (* a depth-0 prefix read must not touch the rest of the store *)
          Alcotest.(check bool) "prefix read is lazy" true (cold * 3 < Store.disk_bytes st);
          ignore (Store.entry st ~list:0 ~depth:0);
          Alcotest.(check int) "warm read hits" 1 (counter_of c "cache_hit");
          Alcotest.(check int) "warm read reads nothing" cold (counter_of c "store_read_bytes");
          (* touring more blocks than the cache holds evicts and re-misses *)
          for d = 0 to 4 do
            ignore (Store.entry st ~list:0 ~depth:d)
          done;
          ignore (Store.entry st ~list:0 ~depth:0);
          Alcotest.(check bool) "eviction causes a re-miss" true (counter_of c "cache_miss" > 5));
      Store.close st)

(* ---------------- update log ---------------- *)

let upd_rng = Rng.create ~seed:"store-updates"
let prf_keys = Prf.gen_keys upd_rng 4

let new_entry oid v =
  {
    Enc_item.ehl = Ehl.Ehl_plus.encode upd_rng pub ~keys:prf_keys oid;
    score = Paillier.encrypt upd_rng pub (Nat.of_int v);
  }

let entry_eq (a : Enc_item.entry) (b : Enc_item.entry) =
  Nat.equal (a.score :> Nat.t) (b.score :> Nat.t)
  && Array.for_all2
       (fun (x : Paillier.ciphertext) (y : Paillier.ciphertext) ->
         Nat.equal (x :> Nat.t) (y :> Nat.t))
       (Ehl.Ehl_plus.cells a.ehl) (Ehl.Ehl_plus.cells b.ehl)

(* splice [e] into position [pos] of the expected column *)
let splice col pos e =
  Array.init
    (Array.length col + 1)
    (fun i -> if i < pos then col.(i) else if i = pos then e else col.(i - 1))

let check_against_expected name st expected =
  Array.iteri
    (fun list col ->
      Array.iteri
        (fun depth e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s (%d,%d)" name list depth)
            true
            (entry_eq e (Store.entry st ~list ~depth)))
        col)
    expected

let base_columns () =
  Array.init 3 (fun list -> Array.init 5 (fun depth -> Sectopk.Scheme.entry er ~list ~depth))

let test_append_row_replay () =
  let dir = build_store ~block_records:2 () in
  let st = Store.open_index ~dir pub in
  let row1 = [| (0, new_entry "o5" 11); (2, new_entry "o5" 9); (5, new_entry "o5" 7) |] in
  let row2 = [| (6, new_entry "o6" 1); (0, new_entry "o6" 12); (3, new_entry "o6" 4) |] in
  Store.append_row st ~entries:row1;
  Alcotest.(check int) "rows after first delta" 6 (Store.n_rows st);
  Store.append_row st ~entries:row2;
  Alcotest.(check int) "rows after second delta" 7 (Store.n_rows st);
  Alcotest.(check int) "pending updates" 2 (Store.pending_updates st);
  let expected =
    Array.mapi
      (fun l col ->
        let p1, e1 = row1.(l) and p2, e2 = row2.(l) in
        splice (splice col p1 e1) p2 e2)
      (base_columns ())
  in
  check_against_expected "in-memory overlay" st expected;
  Store.close st;
  (* replay on open must reconstruct the same spliced lists *)
  let st = Store.open_index ~dir pub in
  Alcotest.(check int) "rows after replay" 7 (Store.n_rows st);
  Alcotest.(check int) "pending after replay" 2 (Store.pending_updates st);
  check_against_expected "replayed overlay" st expected;
  Alcotest.(check int) "relation view sees the deltas" 7
    (Sectopk.Scheme.n_rows (Store.relation st));
  Store.close st;
  (* a torn tail (crash mid-append) is tolerated: the complete prefix
     replays, the partial record is ignored *)
  append_bytes (Filename.concat dir "updates_1.log") "\x00\x00\x01\x00torn";
  let st = Store.open_index ~dir pub in
  Alcotest.(check int) "torn tail tolerated" 2 (Store.pending_updates st);
  check_against_expected "overlay after torn tail" st expected;
  (* an append after recovery must land at the end of the valid prefix
     (open truncates the torn bytes), so the acknowledged record is
     still there on the next replay instead of hiding behind garbage *)
  let row3 = [| (1, new_entry "o7" 6); (4, new_entry "o7" 2); (0, new_entry "o7" 13) |] in
  Store.append_row st ~entries:row3;
  Alcotest.(check int) "rows after post-recovery delta" 8 (Store.n_rows st);
  Store.close st;
  let st = Store.open_index ~dir pub in
  Alcotest.(check int) "post-recovery append replays" 3 (Store.pending_updates st);
  let expected3 =
    Array.mapi
      (fun l col ->
        let p, e = row3.(l) in
        splice col p e)
      expected
  in
  check_against_expected "overlay after post-recovery append" st expected3;
  Store.close st

let test_corrupt_log_record () =
  let dir = build_store () in
  let st = Store.open_index ~dir pub in
  Store.append_row st
    ~entries:[| (0, new_entry "o5" 3); (1, new_entry "o5" 3); (2, new_entry "o5" 3) |];
  Store.close st;
  (* a complete record whose checksum does not match is damage, not a
     torn write — it must be rejected, not skipped *)
  append_bytes (Filename.concat dir "updates_1.log") "\x00\x00\x00\x04ABCD\xde\xad\xbe\xef";
  expect_error "bad log record checksum" is_corrupt (fun () -> Store.open_index ~dir pub);
  (* so must a flipped byte inside the real record *)
  let dir2 = build_store () in
  let st = Store.open_index ~dir:dir2 pub in
  Store.append_row st
    ~entries:[| (0, new_entry "o5" 3); (1, new_entry "o5" 3); (2, new_entry "o5" 3) |];
  Store.close st;
  flip_byte (Filename.concat dir2 "updates_1.log") (-5);
  expect_error "flipped log byte" is_corrupt (fun () -> Store.open_index ~dir:dir2 pub)

let test_append_row_validation () =
  let dir = build_store () in
  let st = Store.open_index ~dir pub in
  let bad_arity = [| (0, new_entry "x" 1) |] in
  Alcotest.check_raises "one entry per list"
    (Invalid_argument "Store.append_row: one (position, entry) per list required")
    (fun () -> Store.append_row st ~entries:bad_arity);
  let bad_pos = [| (0, new_entry "x" 1); (9, new_entry "x" 1); (0, new_entry "x" 1) |] in
  Alcotest.check_raises "position bound"
    (Invalid_argument "Store.append_row: position out of range")
    (fun () -> Store.append_row st ~entries:bad_pos);
  Store.close st

(* ---------------- CSV ingestion ---------------- *)

let expect_csv_error name ~line f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Csv_error")
  | exception Uci_shape.Csv_error e ->
    Alcotest.(check int) (name ^ ": line (" ^ e.reason ^ ")") line e.line

let test_csv_good () =
  let rel, ids =
    Uci_shape.parse_csv ~name:"t" "id,alpha,beta\n\nitem-1, 10, 3\nitem-2,0,42\n"
  in
  Alcotest.(check int) "rows" 2 (Relation.n_rows rel);
  Alcotest.(check int) "attrs" 2 (Relation.n_attrs rel);
  Alcotest.(check (list string)) "ids in row order" [ "item-1"; "item-2" ] ids;
  Alcotest.(check int) "value (0,0)" 10 (Relation.value rel ~row:0 ~attr:0);
  Alcotest.(check int) "value (1,1)" 42 (Relation.value rel ~row:1 ~attr:1);
  (* headerless files work too: first line with an integer second field *)
  let rel2, ids2 = Uci_shape.parse_csv ~name:"t" "a,1,2\nb,3,4" in
  Alcotest.(check int) "headerless rows" 2 (Relation.n_rows rel2);
  Alcotest.(check (list string)) "headerless ids" [ "a"; "b" ] ids2

let test_csv_malformed () =
  expect_csv_error "non-integer value" ~line:2 (fun () ->
      Uci_shape.parse_csv ~name:"t" "a,1\nb,x\n");
  expect_csv_error "negative value" ~line:2 (fun () ->
      Uci_shape.parse_csv ~name:"t" "a,1\nb,-3\n");
  expect_csv_error "ragged row" ~line:3 (fun () ->
      Uci_shape.parse_csv ~name:"t" "a,1,2\nb,3,4\nc,5\n");
  expect_csv_error "duplicate id" ~line:3 (fun () ->
      Uci_shape.parse_csv ~name:"t" "a,1\nb,2\na,3\n");
  expect_csv_error "empty id" ~line:1 (fun () -> Uci_shape.parse_csv ~name:"t" ",3\n");
  expect_csv_error "missing attributes" ~line:2 (fun () ->
      Uci_shape.parse_csv ~name:"t" "a,1\nlonely\n");
  expect_csv_error "empty file" ~line:1 (fun () -> Uci_shape.parse_csv ~name:"t" "");
  expect_csv_error "header only" ~line:1 (fun () ->
      Uci_shape.parse_csv ~name:"t" "id,attr\n")

let test_csv_file_round_trip () =
  let path = Filename.temp_file "test_store_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_file path "id,a,b,c\nr0,10,3,2\nr1,8,8,0\nr2,5,7,6\n";
      let rel, ids = Uci_shape.load_csv path in
      Alcotest.(check int) "rows" 3 (Relation.n_rows rel);
      Alcotest.(check (list string)) "ids" [ "r0"; "r1"; "r2" ] ids;
      Alcotest.(check int) "value" 7 (Relation.value rel ~row:2 ~attr:1))

let suite =
  [ ( "round-trip",
      [ Alcotest.test_case "inproc identity" `Slow (test_round_trip Ctx.Inproc);
        Alcotest.test_case "loopback identity" `Slow (test_round_trip Ctx.Loopback);
        Alcotest.test_case "every entry identical" `Quick test_every_entry_identical ] );
    ( "crash-safety",
      [ Alcotest.test_case "previous generation survives" `Quick
          test_crash_leaves_previous_generation ] );
    ( "rejection",
      [ Alcotest.test_case "corrupt manifest" `Quick test_corrupt_manifest;
        Alcotest.test_case "bad magic" `Quick test_bad_magic;
        Alcotest.test_case "bad version" `Quick test_bad_version;
        Alcotest.test_case "truncated manifest" `Quick test_truncated_manifest;
        Alcotest.test_case "missing segment" `Quick test_missing_segment;
        Alcotest.test_case "truncated segment" `Quick test_truncated_segment;
        Alcotest.test_case "corrupt segment header" `Quick test_corrupt_segment_header;
        Alcotest.test_case "corrupt segment body" `Quick test_corrupt_segment_body;
        Alcotest.test_case "key mismatch" `Quick test_key_mismatch;
        Alcotest.test_case "missing directory" `Quick test_missing_dir ] );
    ( "cache",
      [ Alcotest.test_case "lazy reads, counters, eviction" `Quick test_cache_counters ] );
    ( "updates",
      [ Alcotest.test_case "append + replay" `Quick test_append_row_replay;
        Alcotest.test_case "corrupt log record" `Quick test_corrupt_log_record;
        Alcotest.test_case "validation" `Quick test_append_row_validation ] );
    ( "csv",
      [ Alcotest.test_case "well-formed" `Quick test_csv_good;
        Alcotest.test_case "malformed rows" `Quick test_csv_malformed;
        Alcotest.test_case "file round trip" `Quick test_csv_file_round_trip ] ) ]

let () = Alcotest.run "store" suite
