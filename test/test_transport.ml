(* Cross-transport identity: the same seeded query must return
   byte-identical results, the same S2 trace, the same channel totals
   (Loopback vs Socket — both charge real encoded frames; Inproc charges
   the closed forms, which the Wire tests pin to the same numbers) and
   the same Obs op-counter totals whether S2 runs in-process (Inproc),
   through the codec in-process (Loopback) or in a forked daemon over a
   socketpair (Socket). For the socket run, S2-side counters live in the
   daemon and come back via [Ctx.remote_stats]. *)

open Bignum
open Crypto
open Dataset
open Topk
open Proto

let fig3 =
  Relation.create ~name:"fig3"
    [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

let seed = "transport-identity"
let key_bits = 128
let rand_bits = 96

let hello = { Wire.seed; key_bits; rand_bits = Some rand_bits; obs = true }

type outcome = {
  top : (Nat.t * Nat.t * Nat.t array) list;  (** raw (worst, best, seen) ciphertexts *)
  ids : string list;  (** decrypted result identities *)
  halting_depth : int;
  trace : Trace.event list;
  bytes : int;
  msgs : int;
  rounds : int;
  ops : (string * int) list;  (** client + S2 op counters, summed by name *)
}

let merge_ops a b =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      Hashtbl.replace tbl name (v + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    (a @ b);
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort compare
  |> List.filter (fun (_, v) -> v > 0)

(* run one seeded Fig. 3 query on a given transport; [pid] set when a
   daemon child must be reaped afterwards *)
let run_on ~variant (mode : Ctx.mode) (pid : int option) : outcome =
  let pub, sk, ctx_rng, data_rng = Ctx.provision ~seed ~key_bits ~rand_bits () in
  let ctx = Ctx.of_keys ~blind_bits:48 ~mode ctx_rng pub sk in
  let er, key = Sectopk.Scheme.encrypt ~s:4 data_rng pub fig3 in
  let tk = Sectopk.Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2 in
  let res =
    Sectopk.Query.run ctx er tk { Sectopk.Query.default_options with variant }
  in
  (* identity must be checkable without S2 state: open results with the
     provisioned secret key, as a socket-mode client would *)
  let all_ids = List.init (Relation.n_rows fig3) (fun i -> Relation.object_id fig3 i) in
  let ids =
    List.map (fun (id, _, _) -> id) (Sectopk.Client.real_results ~sk ctx key ~ids:all_ids res)
  in
  let trace = Ctx.trace_events ctx in
  let chan = Ctx.channel ctx in
  let ops =
    merge_ops
      (List.map
         (fun (op, v) -> (Obs.Metrics.name op, v))
         (Obs.Metrics.to_alist (Obs.Collector.metrics ctx.Ctx.obs)))
      (Ctx.remote_stats ctx)
  in
  (match pid with Some pid -> Transport.stop_daemon ctx.Ctx.transport pid | None -> ());
  {
    top =
      List.map
        (fun (it : Enc_item.scored) ->
          ( (it.worst :> Nat.t),
            (it.best :> Nat.t),
            Array.map (fun (c : Paillier.ciphertext) -> (c :> Nat.t)) it.seen ))
        res.Sectopk.Query.top;
    ids;
    halting_depth = res.Sectopk.Query.halting_depth;
    trace;
    bytes = Channel.bytes_total chan;
    msgs = Channel.messages_total chan;
    rounds = Channel.rounds_total chan;
    ops;
  }

let with_obs f =
  let prev = Obs.is_enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled prev) f

let run_all ~variant () =
  with_obs (fun () ->
      let inproc = run_on ~variant Ctx.Inproc None in
      let loopback = run_on ~variant Ctx.Loopback None in
      let fd, pid = Transport.spawn_daemon hello in
      let socket = run_on ~variant (Ctx.Socket_fd fd) (Some pid) in
      (inproc, loopback, socket))

let nat_triple_eq (w1, b1, s1) (w2, b2, s2) =
  Nat.equal w1 w2 && Nat.equal b1 b2
  && Array.length s1 = Array.length s2
  && Array.for_all2 Nat.equal s1 s2

let check_identical name (a : outcome) (b : outcome) =
  Alcotest.(check (list string)) (name ^ ": result ids") a.ids b.ids;
  Alcotest.(check int) (name ^ ": halting depth") a.halting_depth b.halting_depth;
  Alcotest.(check bool) (name ^ ": ciphertexts byte-identical") true
    (List.length a.top = List.length b.top && List.for_all2 nat_triple_eq a.top b.top);
  Alcotest.(check bool) (name ^ ": S2 trace identical") true (a.trace = b.trace);
  Alcotest.(check int) (name ^ ": bytes") a.bytes b.bytes;
  Alcotest.(check int) (name ^ ": messages") a.msgs b.msgs;
  Alcotest.(check int) (name ^ ": rounds") a.rounds b.rounds;
  Alcotest.(check (list (pair string int))) (name ^ ": obs op totals") a.ops b.ops

let test_variant variant () =
  let inproc, loopback, socket = run_all ~variant () in
  Alcotest.(check bool) "trace non-trivial" true (List.length inproc.trace > 3);
  Alcotest.(check bool) "bytes non-trivial" true (inproc.bytes > 1000);
  check_identical "inproc vs loopback" inproc loopback;
  check_identical "inproc vs socket" inproc socket

(* the daemon's S2 op counters must actually come from the other process *)
let test_remote_stats () =
  with_obs (fun () ->
      let pub, sk, ctx_rng, _ = Ctx.provision ~seed ~key_bits ~rand_bits () in
      let fd, pid = Transport.spawn_daemon hello in
      let ctx = Ctx.of_keys ~blind_bits:48 ~mode:(Ctx.Socket_fd fd) ctx_rng pub sk in
      let a = Paillier.encrypt ctx.Ctx.s1.Ctx.rng pub (Nat.of_int 3) in
      let b = Paillier.encrypt ctx.Ctx.s1.Ctx.rng pub (Nat.of_int 5) in
      Alcotest.(check bool) "3 <= 5" true (Enc_compare.leq ctx a b);
      let stats = Ctx.remote_stats ctx in
      Alcotest.(check bool) "daemon counted decryptions" true
        (List.exists (fun (name, v) -> name = "paillier_decrypt" && v > 0) stats);
      (* local transports have no remote half *)
      let local = Ctx.of_keys ~blind_bits:48 ~mode:Ctx.Inproc ctx_rng pub sk in
      Alcotest.(check (list (pair string int))) "local remote_stats empty" []
        (Ctx.remote_stats local);
      Transport.stop_daemon ctx.Ctx.transport pid)

let suite =
  [ ( "identity",
      [ Alcotest.test_case "Qry_F inproc/loopback/socket" `Slow (test_variant Sectopk.Query.Full);
        Alcotest.test_case "Qry_E inproc/loopback/socket" `Slow (test_variant Sectopk.Query.Elim) ] );
    ("daemon", [ Alcotest.test_case "remote stats" `Quick test_remote_stats ]) ]

let () = Alcotest.run "transport" suite
