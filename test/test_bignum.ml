(* Tests for the bignum substrate: unit tests on known values plus qcheck
   properties cross-checked against native-int arithmetic and algebraic
   identities that hold at any size. *)

open Bignum

let nat = Alcotest.testable Nat.pp Nat.equal
let bigint = Alcotest.testable Bigint.pp Bigint.equal

(* -- Deterministic pseudo-random Nat generation for property tests -- *)

let splitmix seed =
  let state = ref seed in
  fun () ->
    state := !state + 0x1E3779B97F4A7C15;
    let z = !state in
    let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
    (z lxor (z lsr 31)) land max_int

let gen_nat_of_bits rng bits =
  if bits <= 0 then Nat.zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let b = Bytes.init nbytes (fun _ -> Char.chr (rng () land 0xff)) in
    let x = Nat.of_bytes (Bytes.to_string b) in
    (* truncate to the requested width *)
    let extra = (8 * nbytes) - bits in
    Nat.shift_right x extra
  end

let arb_small_pair =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
    QCheck.Gen.(pair (int_bound ((1 lsl 30) - 1)) (int_bound ((1 lsl 30) - 1)))

let arb_bits_pair =
  (* pair of bit sizes driving random big operand generation *)
  QCheck.make
    ~print:(fun (s, a, b) -> Printf.sprintf "seed=%d bits=(%d,%d)" s a b)
    QCheck.Gen.(triple (int_bound 1_000_000) (int_range 1 600) (int_range 1 600))

let qtest ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ---------------- Nat unit tests ---------------- *)

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Nat.to_int (Nat.of_int n)))
    [ 0; 1; 2; 67_108_863; 67_108_864; 1_000_000_007; max_int / 2 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_string (Nat.of_string s)))
    [ "0"; "1"; "10"; "123456789012345678901234567890";
      "99999999999999999999999999999999999999999999999999" ]

let test_add_known () =
  let a = Nat.of_string "123456789012345678901234567890" in
  let b = Nat.of_string "987654321098765432109876543210" in
  Alcotest.check nat "sum" (Nat.of_string "1111111110111111111011111111100") (Nat.add a b)

let test_mul_known () =
  let a = Nat.of_string "123456789" in
  let b = Nat.of_string "987654321" in
  Alcotest.check nat "prod" (Nat.of_string "121932631112635269") (Nat.mul a b);
  let big = Nat.of_string "123456789012345678901234567890" in
  Alcotest.check nat "square"
    (Nat.of_string "15241578753238836750495351562536198787501905199875019052100")
    (Nat.mul big big)

let test_sub_known () =
  let a = Nat.of_string "1000000000000000000000000000000" in
  let b = Nat.of_string "1" in
  Alcotest.check nat "sub" (Nat.of_string "999999999999999999999999999999") (Nat.sub a b);
  Alcotest.check_raises "underflow" (Invalid_argument "Nat.sub: underflow") (fun () ->
      ignore (Nat.sub b a))

let test_divmod_known () =
  let a = Nat.of_string "123456789012345678901234567890" in
  let b = Nat.of_string "9876543210" in
  let q, r = Nat.divmod a b in
  Alcotest.check nat "q" (Nat.of_string "12499999887343749990") (q : Nat.t);
  Alcotest.check nat "r" (Nat.of_string "1562499990") r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod a Nat.zero))

let test_shift () =
  let x = Nat.of_string "12345678901234567890" in
  Alcotest.check nat "shl/shr" x (Nat.shift_right (Nat.shift_left x 113) 113);
  Alcotest.check nat "shl = mul 2^k" (Nat.mul x (Nat.pow Nat.two 77)) (Nat.shift_left x 77);
  Alcotest.check nat "shr drops" (Nat.of_int 0) (Nat.shift_right (Nat.of_int 5) 3)

let test_bit_length () =
  Alcotest.(check int) "0" 0 (Nat.bit_length Nat.zero);
  Alcotest.(check int) "1" 1 (Nat.bit_length Nat.one);
  Alcotest.(check int) "2^100" 101 (Nat.bit_length (Nat.pow Nat.two 100));
  Alcotest.(check int) "2^100-1" 100 (Nat.bit_length (Nat.pred (Nat.pow Nat.two 100)))

let test_bytes_roundtrip () =
  let x = Nat.of_string "31415926535897932384626433832795028841971" in
  Alcotest.check nat "bytes" x (Nat.of_bytes (Nat.to_bytes x));
  Alcotest.(check string) "zero" "" (Nat.to_bytes Nat.zero);
  Alcotest.check nat "of_bytes with leading zeros" (Nat.of_int 258) (Nat.of_bytes "\000\000\001\002")

let test_hex () =
  Alcotest.(check string) "hex" "ff" (Nat.to_hex (Nat.of_int 255));
  Alcotest.check nat "of_hex" (Nat.of_int 48879) (Nat.of_hex "beef");
  let x = Nat.of_string "123456789012345678901234567890123" in
  Alcotest.check nat "hex roundtrip" x (Nat.of_hex (Nat.to_hex x))

let test_pow () =
  Alcotest.check nat "2^10" (Nat.of_int 1024) (Nat.pow Nat.two 10);
  Alcotest.check nat "x^0" Nat.one (Nat.pow (Nat.of_int 999) 0);
  Alcotest.check nat "10^30" (Nat.of_string ("1" ^ String.make 30 '0')) (Nat.pow (Nat.of_int 10) 30)

(* ---------------- Nat properties ---------------- *)

let prop_add_matches_int =
  qtest "add matches native int" arb_small_pair (fun (a, b) ->
      Nat.to_int (Nat.add (Nat.of_int a) (Nat.of_int b)) = a + b)

let prop_mul_matches_int =
  qtest "mul matches native int" arb_small_pair (fun (a, b) ->
      Nat.to_int (Nat.mul (Nat.of_int a) (Nat.of_int b)) = a * b)

let prop_divmod_matches_int =
  qtest "divmod matches native int" arb_small_pair (fun (a, b) ->
      let b = b + 1 in
      let q, r = Nat.divmod (Nat.of_int a) (Nat.of_int b) in
      Nat.to_int q = a / b && Nat.to_int r = a mod b)

let prop_divmod_identity =
  qtest ~count:300 "a = q*b + r with 0 <= r < b (big)" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let a = gen_nat_of_bits rng ba and b = gen_nat_of_bits rng bb in
      if Nat.is_zero b then QCheck.assume_fail ()
      else begin
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0
      end)

let prop_mul_commutes =
  qtest ~count:200 "mul commutative + distributive (big)" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let a = gen_nat_of_bits rng ba
      and b = gen_nat_of_bits rng bb
      and c = gen_nat_of_bits rng ((ba + bb) / 2 + 1) in
      Nat.equal (Nat.mul a b) (Nat.mul b a)
      && Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_karatsuba_matches_school =
  (* exercise operand sizes straddling the Karatsuba cutoff *)
  qtest ~count:100 "string roundtrip at many widths" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let a = gen_nat_of_bits rng (ba * 3) and b = gen_nat_of_bits rng (bb * 3) in
      let p = Nat.mul a b in
      Nat.equal p (Nat.of_string (Nat.to_string p)))

let prop_sub_add_inverse =
  qtest ~count:200 "sub inverts add (big)" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let a = gen_nat_of_bits rng ba and b = gen_nat_of_bits rng bb in
      Nat.equal a (Nat.sub (Nat.add a b) b))

let prop_bytes_roundtrip =
  qtest ~count:200 "bytes roundtrip (big)" arb_bits_pair (fun (seed, ba, _) ->
      let rng = splitmix seed in
      let a = gen_nat_of_bits rng ba in
      Nat.equal a (Nat.of_bytes (Nat.to_bytes a)))

let prop_compare_total_order =
  qtest ~count:200 "compare consistent with sub" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let a = gen_nat_of_bits rng ba and b = gen_nat_of_bits rng bb in
      let c = Nat.compare a b in
      if c = 0 then Nat.equal a b
      else if c < 0 then not (Nat.is_zero (Nat.sub b a))
      else not (Nat.is_zero (Nat.sub a b)))

(* ---------------- Bigint ---------------- *)

let test_bigint_basic () =
  let a = Bigint.of_int (-42) and b = Bigint.of_int 17 in
  Alcotest.check bigint "add" (Bigint.of_int (-25)) (Bigint.add a b);
  Alcotest.check bigint "mul" (Bigint.of_int (-714)) (Bigint.mul a b);
  Alcotest.check bigint "neg neg" (Bigint.of_int 42) (Bigint.neg a);
  Alcotest.(check string) "to_string" "-42" (Bigint.to_string a);
  Alcotest.check bigint "of_string" a (Bigint.of_string "-42")

let test_bigint_euclid () =
  (* remainder always non-negative *)
  List.iter
    (fun (a, b) ->
      let q = Bigint.div_euclid (Bigint.of_int a) (Bigint.of_int b) in
      let r = Bigint.rem_euclid (Bigint.of_int a) (Bigint.of_int b) in
      Alcotest.(check bool)
        (Printf.sprintf "%d /e %d" a b)
        true
        (Bigint.sign r >= 0
        && Bigint.compare r (Bigint.abs (Bigint.of_int b)) < 0
        && Bigint.equal (Bigint.of_int a) (Bigint.add (Bigint.mul q (Bigint.of_int b)) r)))
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (0, 5); (6, 3); (-6, 3); (-6, -3) ]

let prop_bigint_ring =
  qtest ~count:200 "bigint ring identities" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let mk bits =
        let m = gen_nat_of_bits rng bits in
        if rng () land 1 = 0 then Bigint.of_nat m else Bigint.neg (Bigint.of_nat m)
      in
      let a = mk ba and b = mk bb and c = mk ((ba + bb) / 2 + 1) in
      let open Bigint in
      equal (add a b) (add b a)
      && equal (mul a (add b c)) (add (mul a b) (mul a c))
      && equal (sub a a) zero
      && equal (add a (neg a)) zero)

let prop_bigint_mod_nat =
  qtest ~count:200 "mod_nat in range and congruent" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let m = Nat.succ (gen_nat_of_bits rng (max 2 bb)) in
      let a0 = gen_nat_of_bits rng ba in
      let a = if rng () land 1 = 0 then Bigint.of_nat a0 else Bigint.neg (Bigint.of_nat a0) in
      let r = Bigint.mod_nat a m in
      Nat.compare r m < 0
      &&
      (* a - r divisible by m *)
      let diff = Bigint.sub a (Bigint.of_nat r) in
      Bigint.is_zero (Bigint.rem_euclid diff (Bigint.of_nat m)))

(* ---------------- Modular ---------------- *)

let test_modpow_known () =
  let m = Nat.of_int 1_000_000_007 in
  let r = Modular.pow (Nat.of_int 2) (Nat.of_int 100) ~m in
  (* 2^100 mod 1e9+7 = 976371285 *)
  Alcotest.check nat "2^100" (Nat.of_int 976371285) r;
  Alcotest.check nat "x^0" Nat.one (Modular.pow (Nat.of_int 5) Nat.zero ~m)

let test_modinv_known () =
  let m = Nat.of_int 97 in
  let i = Modular.inv (Nat.of_int 35) ~m in
  Alcotest.check nat "35 * inv = 1" Nat.one (Modular.mul (Nat.of_int 35) i ~m);
  Alcotest.check_raises "non-invertible" (Failure "Modular.inv: not invertible") (fun () ->
      ignore (Modular.inv (Nat.of_int 6) ~m:(Nat.of_int 12)))

let test_gcd_lcm () =
  Alcotest.check nat "gcd" (Nat.of_int 6) (Modular.gcd (Nat.of_int 54) (Nat.of_int 24));
  Alcotest.check nat "lcm" (Nat.of_int 216) (Modular.lcm (Nat.of_int 54) (Nat.of_int 24));
  Alcotest.check nat "gcd 0" (Nat.of_int 7) (Modular.gcd (Nat.of_int 7) Nat.zero)

let test_crt () =
  (* x = 2 mod 3, x = 3 mod 5 -> x = 8 *)
  let x = Modular.crt2 (Nat.of_int 2, Nat.of_int 3) (Nat.of_int 3, Nat.of_int 5) in
  Alcotest.check nat "crt small" (Nat.of_int 8) x

let prop_fermat =
  (* a^(p-1) = 1 mod p for prime p not dividing a *)
  qtest ~count:60 "Fermat little theorem" arb_bits_pair (fun (seed, ba, _) ->
      let rng = splitmix seed in
      let p = Nat.of_int 1_000_000_007 in
      let a = Nat.succ (Nat.rem (gen_nat_of_bits rng (max 8 ba)) (Nat.pred p)) in
      Nat.equal Nat.one (Modular.pow a (Nat.pred p) ~m:p))

let prop_modinv =
  qtest ~count:100 "modinv correct vs odd modulus" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let m = gen_nat_of_bits rng (max 4 bb) in
      let m = if Nat.is_even m then Nat.succ m else m in
      let m = if Nat.compare m Nat.two <= 0 then Nat.of_int 5 else m in
      let a = Nat.rem (gen_nat_of_bits rng (max 4 ba)) m in
      if Nat.is_zero a || not (Nat.is_one (Modular.gcd a m)) then QCheck.assume_fail ()
      else Nat.equal Nat.one (Modular.mul a (Modular.inv a ~m) ~m))

let prop_egcd =
  qtest ~count:150 "egcd Bezout identity" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      let a = gen_nat_of_bits rng (max 1 ba) and b = gen_nat_of_bits rng (max 1 bb) in
      let g, x, y = Modular.egcd a b in
      let open Bigint in
      equal (of_nat g) (add (mul (of_nat a) x) (mul (of_nat b) y))
      && Nat.equal g (Modular.gcd a b))

let prop_crt =
  qtest ~count:100 "crt2 solves both congruences" arb_bits_pair (fun (seed, ba, bb) ->
      let rng = splitmix seed in
      (* two coprime moduli from distinct primes *)
      let p = Nat.of_int 1_000_003 and q = Nat.of_int 998_244_353 in
      let r1 = Nat.rem (gen_nat_of_bits rng (max 4 ba)) p in
      let r2 = Nat.rem (gen_nat_of_bits rng (max 4 bb)) q in
      let x = Modular.crt2 (r1, p) (r2, q) in
      Nat.equal (Nat.rem x p) r1
      && Nat.equal (Nat.rem x q) r2
      && Nat.compare x (Nat.mul p q) < 0)

(* ---------------- Montgomery ---------------- *)

let prop_montgomery_pow =
  qtest ~count:150 "Montgomery pow = naive square-and-multiply" arb_bits_pair
    (fun (seed, bm, be) ->
      let rng = splitmix seed in
      let m = gen_nat_of_bits rng (max 3 bm) in
      let m = if Nat.is_even m then Nat.succ m else m in
      if Nat.compare m (Nat.of_int 3) < 0 then QCheck.assume_fail ()
      else begin
        match Montgomery.create m with
        | None -> QCheck.assume_fail ()
        | Some ctx ->
          let b = Nat.rem (gen_nat_of_bits rng (max 1 bm)) m in
          let e = gen_nat_of_bits rng (max 1 (be / 2)) in
          (* naive reference *)
          let reference =
            let acc = ref Nat.one and base = ref (Nat.rem b m) in
            for i = 0 to Nat.bit_length e - 1 do
              if Nat.nth_bit e i then acc := Nat.rem (Nat.mul !acc !base) m;
              base := Nat.rem (Nat.mul !base !base) m
            done;
            !acc
          in
          Nat.equal (Montgomery.pow ctx b e) reference
      end)

let prop_montgomery_mul =
  qtest ~count:200 "Montgomery mul = plain modular mul" arb_bits_pair
    (fun (seed, bm, bb) ->
      let rng = splitmix seed in
      let m = gen_nat_of_bits rng (max 3 bm) in
      let m = if Nat.is_even m then Nat.succ m else m in
      if Nat.compare m (Nat.of_int 3) < 0 then QCheck.assume_fail ()
      else begin
        match Montgomery.create m with
        | None -> QCheck.assume_fail ()
        | Some ctx ->
          let a = Nat.rem (gen_nat_of_bits rng (max 1 bm)) m in
          let b = Nat.rem (gen_nat_of_bits rng (max 1 bb)) m in
          Nat.equal (Montgomery.mul ctx a b) (Nat.rem (Nat.mul a b) m)
      end)

let prop_residue_chain =
  qtest ~count:150 "resident chain (to/pow/mul/from) = plain modular ops" arb_bits_pair
    (fun (seed, bm, bb) ->
      let rng = splitmix seed in
      let m = gen_nat_of_bits rng (max 3 bm) in
      let m = if Nat.is_even m then Nat.succ m else m in
      if Nat.compare m (Nat.of_int 3) < 0 then QCheck.assume_fail ()
      else begin
        match Montgomery.create m with
        | None -> QCheck.assume_fail ()
        | Some ctx ->
          let a = Nat.rem (gen_nat_of_bits rng (max 1 bm)) m in
          let b = Nat.rem (gen_nat_of_bits rng (max 1 bb)) m in
          let e = gen_nat_of_bits rng 64 in
          Nat.equal (Montgomery.from_mont ctx (Montgomery.to_mont ctx a)) a
          &&
          let ra = Montgomery.to_mont ctx a and rb = Montgomery.to_mont ctx b in
          let chain =
            Montgomery.from_mont ctx
              (Montgomery.mul_resident ctx (Montgomery.pow_resident ctx ra e) rb)
          in
          Nat.equal chain (Modular.mul (Modular.pow a e ~m) b ~m)
      end)

let prop_of_limbs =
  qtest ~count:200 "Nat.of_limbs inverts Nat.limbs" arb_bits_pair (fun (seed, ba, _) ->
      let rng = splitmix seed in
      let a = gen_nat_of_bits rng ba in
      Nat.equal a (Nat.of_limbs (Nat.limbs a)))

let prop_fixed_base =
  qtest ~count:100 "fixed-base comb pow = generic modular pow" arb_bits_pair
    (fun (seed, bm, be) ->
      let rng = splitmix seed in
      let m = gen_nat_of_bits rng (max 4 bm) in
      let m = if Nat.is_even m then Nat.succ m else m in
      if Nat.compare m (Nat.of_int 3) < 0 then QCheck.assume_fail ()
      else begin
        match Modular.mont_ctx m with
        | None -> QCheck.assume_fail ()
        | Some ctx ->
          let g = Nat.rem (gen_nat_of_bits rng (max 1 bm)) m in
          let bits = max 1 (be / 3) in
          let fb = Fixed_base.create ctx ~base:g ~max_bits:bits in
          let e = gen_nat_of_bits rng bits in
          Nat.equal (Fixed_base.pow fb e) (Modular.pow g e ~m)
      end)

(* ---------------- Nat vs Nat_ref differential ----------------

   [Nat_ref] is the retained base-2^26 schoolbook implementation, kept
   verbatim as an oracle for the base-2^52 rewrite. Widths deliberately
   straddle both limb sizes' boundaries (26 and 52 bits and multiples),
   where carry and normalization bugs live. *)

let awkward_widths = [ 1; 25; 26; 27; 51; 52; 53; 103; 104; 105; 155; 156; 157; 311; 312; 313 ]

let ref_of_nat a = Nat_ref.of_bytes (Nat.to_bytes a)
let ref_eq a r = String.equal (Nat.to_string a) (Nat_ref.to_string r)

let test_differential_ops () =
  let rng = splitmix 2026 in
  List.iter
    (fun wa ->
      List.iter
        (fun wb ->
          for _ = 1 to 2 do
            let a = gen_nat_of_bits rng wa and b = gen_nat_of_bits rng wb in
            let ra = ref_of_nat a and rb = ref_of_nat b in
            let chk name x rx =
              Alcotest.(check bool)
                (Printf.sprintf "%s at %dx%d bits" name wa wb)
                true (ref_eq x rx)
            in
            chk "add" (Nat.add a b) (Nat_ref.add ra rb);
            chk "mul" (Nat.mul a b) (Nat_ref.mul ra rb);
            if Nat.compare a b >= 0 then chk "sub" (Nat.sub a b) (Nat_ref.sub ra rb)
            else chk "sub" (Nat.sub b a) (Nat_ref.sub rb ra);
            if not (Nat.is_zero b) then begin
              let q, r = Nat.divmod a b and rq, rr = Nat_ref.divmod ra rb in
              chk "div" q rq;
              chk "rem" r rr
            end;
            let sh = wb land 63 in
            chk "shl" (Nat.shift_left a sh) (Nat_ref.shift_left ra sh);
            chk "shr" (Nat.shift_right a sh) (Nat_ref.shift_right ra sh)
          done)
        awkward_widths)
    awkward_widths

let test_differential_divisors () =
  (* divisors just past a base-2^26 limb and with the top bit set: the
     divmod normalization paths *)
  let rng = splitmix 31337 in
  let divisors =
    List.map Nat.of_string
      [ "67108864" (* 2^26 *); "67108865"; "1099511627777" (* 2^40+1 *);
        "4503599627370496" (* 2^52 *); "4503599627370497";
        "170141183460469231731687303715884105727" (* 2^127-1 *) ]
  in
  List.iter
    (fun d ->
      let rd = ref_of_nat d in
      List.iter
        (fun wa ->
          let a = gen_nat_of_bits rng wa in
          (* force the top bit so the width is exact *)
          let a = Nat.add a (Nat.shift_left Nat.one (wa - 1)) in
          let ra = ref_of_nat a in
          let q, r = Nat.divmod a d and rq, rr = Nat_ref.divmod ra rd in
          Alcotest.(check bool) "q" true (ref_eq q rq);
          Alcotest.(check bool) "r" true (ref_eq r rr))
        [ 53; 104; 157; 313 ])
    divisors

let test_differential_pow () =
  let rng = splitmix 99 in
  List.iter
    (fun w ->
      let a = gen_nat_of_bits rng w in
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "pow %d^%d" w k)
            true
            (ref_eq (Nat.pow a k) (Nat_ref.pow (ref_of_nat a) k)))
        [ 0; 1; 2; 3; 7 ])
    [ 1; 26; 52; 53; 104 ]

(* ---------------- multi_pow / inv_many properties ---------------- *)

let prop_multi_pow =
  qtest ~count:80 "multi_pow = product of pows" arb_bits_pair
    (fun (seed, bm, be) ->
      let rng = splitmix seed in
      let m = gen_nat_of_bits rng (max 4 bm) in
      let m = if Nat.is_even m then Nat.succ m else m in
      if Nat.compare m (Nat.of_int 3) < 0 then QCheck.assume_fail ()
      else begin
        let nb = 1 + (seed mod 4) in
        let pairs =
          List.init nb (fun i ->
              ( Nat.rem (gen_nat_of_bits rng (max 1 bm)) m,
                gen_nat_of_bits rng (max 1 ((be / 2) + (17 * i))) ))
        in
        let expect =
          List.fold_left
            (fun acc (b, e) -> Modular.mul acc (Modular.pow b e ~m) ~m)
            (Nat.rem Nat.one m) pairs
        in
        Nat.equal (Modular.multi_pow pairs ~m) expect
      end)

let prop_inv_many =
  qtest ~count:80 "inv_many = pointwise inv" arb_bits_pair
    (fun (seed, bm, _) ->
      let rng = splitmix seed in
      (* prime modulus: everything nonzero is invertible *)
      let m = Nat.of_string "170141183460469231731687303715884105727" in
      let nb = seed mod 6 in
      let xs =
        List.init nb (fun _ ->
            let x = Nat.rem (gen_nat_of_bits rng (max 1 bm)) m in
            if Nat.is_zero x then Nat.one else x)
      in
      List.equal Nat.equal
        (Modular.inv_many xs ~m)
        (List.map (fun x -> Modular.inv x ~m) xs))

(* ---------------- Fixed_base comb cache (LRU) ---------------- *)

let test_fixed_base_cache () =
  let m = Nat.of_string "1000000007" in
  Fixed_base.reset ();
  Fixed_base.set_capacity 4;
  Fun.protect ~finally:Fixed_base.reset (fun () ->
      for i = 2 to 11 do
        ignore (Fixed_base.cached ~base:(Nat.of_int i) ~m ~max_bits:16)
      done;
      Alcotest.(check int) "bounded at capacity" 4 (Fixed_base.cached_count ());
      (* an evicted base is rebuilt on demand and still correct *)
      (match Fixed_base.cached ~base:(Nat.of_int 2) ~m ~max_bits:16 with
      | None -> Alcotest.fail "comb expected for odd modulus"
      | Some fb ->
        let e = Nat.of_int 54321 in
        Alcotest.check nat "rebuilt comb correct"
          (Modular.pow (Nat.of_int 2) e ~m)
          (Fixed_base.pow fb e));
      Alcotest.(check bool) "even modulus has no ctx" true
        (Fixed_base.cached ~base:(Nat.of_int 3) ~m:(Nat.of_int 100) ~max_bits:8 = None);
      Alcotest.check_raises "capacity must be positive"
        (Invalid_argument "Fixed_base.set_capacity") (fun () ->
          Fixed_base.set_capacity 0));
  Alcotest.(check int) "reset empties" 0 (Fixed_base.cached_count ())

let test_montgomery_edges () =
  let m = Nat.of_int 2145386377 (* odd *) in
  let ctx = Option.get (Montgomery.create m) in
  Alcotest.check nat "b^0 = 1" Nat.one (Montgomery.pow ctx (Nat.of_int 17) Nat.zero);
  Alcotest.check nat "0^e = 0" Nat.zero (Montgomery.pow ctx Nat.zero (Nat.of_int 5));
  Alcotest.check nat "1^e = 1" Nat.one (Montgomery.pow ctx Nat.one (Nat.of_int 99));
  Alcotest.check nat "modulus value kept" m (Montgomery.modulus ctx);
  Alcotest.(check bool) "even modulus rejected" true (Montgomery.create (Nat.of_int 10) = None)

(* ---------------- Prime ---------------- *)

let rand_below_of_rng rng bound =
  (* uniform-enough sampler for tests *)
  let bits = Nat.bit_length bound in
  let rec go () =
    let c = gen_nat_of_bits rng bits in
    if Nat.compare c bound < 0 then c else go ()
  in
  if Nat.is_zero bound then Nat.zero else go ()

let test_small_primes () =
  Alcotest.(check int) "count below 1000" 168 (List.length Prime.small_primes);
  Alcotest.(check bool) "2 is first" true (List.hd Prime.small_primes = 2);
  Alcotest.(check bool) "997 last" true (List.mem 997 Prime.small_primes)

let test_is_prime_known () =
  let rng = splitmix 42 in
  let rand_below = rand_below_of_rng rng in
  let check_prime s expected =
    Alcotest.(check bool) s expected (Prime.is_probable_prime ~rand_below (Nat.of_string s))
  in
  check_prime "2" true;
  check_prime "3" true;
  check_prime "4" false;
  check_prime "1" false;
  check_prime "0" false;
  check_prime "1000000007" true;
  check_prime "1000000009" true;
  check_prime "1000000011" false;
  (* Mersenne prime 2^127 - 1 *)
  check_prime "170141183460469231731687303715884105727" true;
  (* a Carmichael number: 561 = 3 * 11 * 17 *)
  check_prime "561" false;
  (* big Carmichael: 1590231231043178376951698401 *)
  check_prime "1590231231043178376951698401" false;
  (* RSA-ish semiprime *)
  check_prime "169743212279150057724263148660381155969" false

let test_gen_prime () =
  let rng = splitmix 7 in
  let rand_below = rand_below_of_rng rng in
  List.iter
    (fun bits ->
      let p = Prime.gen_prime ~bits ~rand_below () in
      Alcotest.(check int) (Printf.sprintf "%d-bit width" bits) bits (Nat.bit_length p);
      Alcotest.(check bool) "is prime" true (Prime.is_probable_prime ~rand_below p))
    [ 16; 32; 64; 128 ]

let suite =
  [ ( "nat-unit",
      [ Alcotest.test_case "of/to int" `Quick test_of_to_int;
        Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "add known" `Quick test_add_known;
        Alcotest.test_case "mul known" `Quick test_mul_known;
        Alcotest.test_case "sub known" `Quick test_sub_known;
        Alcotest.test_case "divmod known" `Quick test_divmod_known;
        Alcotest.test_case "shifts" `Quick test_shift;
        Alcotest.test_case "bit_length" `Quick test_bit_length;
        Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
        Alcotest.test_case "hex" `Quick test_hex;
        Alcotest.test_case "pow" `Quick test_pow
      ] );
    ( "nat-prop",
      [ prop_add_matches_int;
        prop_mul_matches_int;
        prop_divmod_matches_int;
        prop_divmod_identity;
        prop_mul_commutes;
        prop_karatsuba_matches_school;
        prop_sub_add_inverse;
        prop_bytes_roundtrip;
        prop_compare_total_order
      ] );
    ( "bigint",
      [ Alcotest.test_case "basic ops" `Quick test_bigint_basic;
        Alcotest.test_case "euclidean division" `Quick test_bigint_euclid;
        prop_bigint_ring;
        prop_bigint_mod_nat
      ] );
    ( "modular",
      [ Alcotest.test_case "modpow known" `Quick test_modpow_known;
        Alcotest.test_case "modinv known" `Quick test_modinv_known;
        Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
        Alcotest.test_case "crt small" `Quick test_crt;
        prop_fermat;
        prop_modinv;
        prop_egcd;
        prop_crt
      ] );
    ( "montgomery",
      [ prop_montgomery_pow; prop_montgomery_mul; prop_residue_chain; prop_of_limbs;
        prop_fixed_base;
        prop_multi_pow;
        prop_inv_many;
        Alcotest.test_case "edge cases" `Quick test_montgomery_edges;
        Alcotest.test_case "fixed-base comb cache" `Quick test_fixed_base_cache
      ] );
    ( "nat-differential",
      [ Alcotest.test_case "ops vs base-2^26 reference" `Quick test_differential_ops;
        Alcotest.test_case "awkward divisors" `Quick test_differential_divisors;
        Alcotest.test_case "pow" `Quick test_differential_pow
      ] );
    ( "prime",
      [ Alcotest.test_case "small primes" `Quick test_small_primes;
        Alcotest.test_case "known primes/composites" `Quick test_is_prime_known;
        Alcotest.test_case "gen_prime widths" `Quick test_gen_prime
      ] )
  ]

let () = Alcotest.run "bignum" suite
