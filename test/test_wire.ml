(* Wire codec property tests: every request/response/control constructor
   round-trips through encode/decode, the closed-form frame sizes
   ([Wire.request_bytes]/[response_bytes]) equal the encoded lengths the
   Loopback/Socket transports charge, and malformed frames (truncated,
   overlong, wrong magic/version/kind/tag, random mutations) always raise
   [Invalid_argument] — never any other exception, never a misparse of a
   valid frame into a different shape. *)

open Bignum
open Crypto
open Proto

let rng = Rng.create ~seed:"test_wire"
let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:128
let own_pub, _own_sk = Paillier.keygen ~rand_bits:96 rng ~bits:144
let djpub, _djsk = Damgard_jurik.of_paillier pub (Some sk)
let keys = Wire.keys_of ~pub ~djpub ~own_pub
let prf_keys = Prf.gen_keys rng 4

let ct i = Paillier.encrypt rng pub (Nat.of_int i)
let own i = Paillier.encrypt rng own_pub (Nat.of_int i)
let dj i = Damgard_jurik.encrypt rng djpub (Nat.of_int i)

let scored oid =
  {
    Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys:prf_keys oid;
    worst = ct 3;
    best = ct 9;
    seen = [| ct 1; ct 0 |];
  }

let pack () =
  {
    Enc_item.alphas = [| own 11; own 12; own 13; own 14 |];
    beta = own 21;
    gamma = own 22;
    sigmas = [| own 31; own 32 |];
  }

let tuple () =
  {
    Wire.score = ct 5;
    attrs = [| ct 1; ct 2; ct 3 |];
    r_escrow = [ own 7 ];
    a_escrow = [| own 8; own 9; own 10 |];
  }

(* One sample per constructor (plus empty-collection corners), covering
   all 18 requests and 13 responses. *)
let request_samples : (string * Wire.request) list =
  [ ("EncCompare", Wire.Sign_of (ct 42));
    ("SecWorst", Wire.Equality [ ct 1; ct 2; ct 3 ]);
    ("SecWorst", Wire.Equality []);
    ("SecJoin", Wire.Conjunction [ [ ct 1 ]; [ ct 2; ct 3 ] ]);
    ("SecJoin", Wire.Conjunction []);
    ("SecBest", Wire.Recover (dj 5));
    ("SecRefresh", Wire.Lift [ ct 4; ct 5 ]);
    ("EncCompareDGK", Wire.Dgk_low_bits { bits = 16; z = ct 77 });
    ("EncCompareDGK", Wire.Zero_any [ ct 0; ct 6 ]);
    ("EncCompareDGK", Wire.Zero_test (ct 6));
    ("SkNN", Wire.Mult (ct 3, ct 4));
    ("SBD", Wire.Lsb (ct 9));
    ( "SecDedup",
      Wire.Dedup
        {
          mode = Wire.Replace;
          diffs = [ ct 1 ];
          items = [ (scored "o1", pack ()); (scored "o2", pack ()) ];
        } );
    ("SecDedup", Wire.Dedup { mode = Wire.Eliminate; diffs = []; items = [] });
    ("SecDupElim", Wire.Dup_flags [ dj 0; dj 1 ]);
    ("EncSort", Wire.Sort_items { keys = [ ct 8 ]; items = [ scored "o3" ] });
    ( "EncSort",
      Wire.Sort_gate
        { descending = true; kx = ct 1; ky = ct 2; x = scored "ox"; y = scored "oy" } );
    ("SecFilter", Wire.Filter [ tuple (); tuple () ]);
    ("EncSort", Wire.Rank_tuples [ (ct 1, ct 2, [| ct 3; ct 4 |]) ]);
    ("SkNN", Wire.Rank_keys [ ct 5; ct 6 ]);
    ("SkNN", Wire.Zero_slot [ ct 0; ct 1 ]);
    ( "EncSort",
      Wire.Batch
        [ Wire.Sign_of (ct 1);
          Wire.Equality [ ct 2; ct 3 ];
          Wire.Recover (dj 4);
          Wire.Mult (ct 5, ct 6) ] );
    ("EncSort", Wire.Batch []) ]

let response_samples : Wire.response list =
  [ Wire.Sign (-1);
    Wire.Sign 0;
    Wire.Sign 1;
    Wire.Bits2 [ dj 0; dj 1 ];
    Wire.Ct (ct 12);
    Wire.Dgk_bits { bit_cts = [ ct 0; ct 1 ]; parity = true };
    Wire.Bit false;
    Wire.Flags [ true; false; true ];
    Wire.Flags [];
    Wire.Items [ (scored "o1", pack ()) ];
    Wire.Sorted [ scored "o1"; scored "o2" ];
    Wire.Pair (scored "oa", scored "ob");
    Wire.Tuples [ tuple () ];
    Wire.Ranked [ (ct 1, [| ct 2; ct 3 |]); (ct 4, [||]) ];
    Wire.Indices [ 0; 5; 2 ];
    Wire.Slot None;
    Wire.Slot (Some 3);
    Wire.Batch_resp [ Wire.Sign 1; Wire.Bits2 [ dj 0 ]; Wire.Ct (ct 7); Wire.Bit true ];
    Wire.Batch_resp [] ]

let control_samples : Wire.control list =
  [ Wire.Hello { seed = "abc"; key_bits = 128; rand_bits = Some 96; obs = true };
    Wire.Hello { seed = ""; key_bits = 256; rand_bits = None; obs = false };
    Wire.Fork { parent = 0; child = 7; label = "par:3" };
    Wire.Join { parent = 0; child = 7 };
    Wire.Get_trace;
    Wire.Get_stats;
    Wire.Stats_req;
    Wire.Shutdown ]

(* a registry snapshot with every metric kind, including fields past
   put_int's 30-bit cap (counter totals and histogram sums on a
   long-lived server legitimately exceed it) *)
let snapshot_sample : Obs.Registry.snapshot =
  [ ("exec_us",
     Obs.Registry.Histogram
       { Obs.Registry.hcount = 3; hsum = 5_000_000_123; hmin = 12; hmax = 4_999_999_999;
         hbuckets = [ (15, 2); (5_368_709_119, 1) ] });
    ("queue_depth", Obs.Registry.Gauge 2.5);
    ("served", Obs.Registry.Counter 7_000_000_000);
    ("worker_utilization", Obs.Registry.Gauge 0.);
    ("zeros", Obs.Registry.Histogram
       { Obs.Registry.hcount = 0; hsum = 0; hmin = 0; hmax = 0; hbuckets = [] }) ]

let client_samples : Wire.client_msg list =
  [ Wire.Query_req { token = "opaque token bytes" }; Wire.Query_req { token = "" } ]

let server_samples : Wire.server_msg list =
  [ Wire.Server_hello { n = 5822; m = 13; s = 4; key_bits = 128 };
    Wire.Server_hello { n = 1; m = 1; s = 64; key_bits = 65536 };
    Wire.Query_resp { top = [ scored "o1"; scored "o2" ]; halting_depth = 3; halted = true };
    Wire.Query_resp { top = []; halting_depth = 0; halted = false };
    Wire.Busy;
    Wire.Server_error "token rejected";
    Wire.Server_error "" ]

let control_reply_samples : Wire.control_reply list =
  [ Wire.Ok_ctl;
    Wire.Trace_events
      [ Trace.Equality_bits { protocol = "SecWorst"; bits = [ true; false ] };
        Trace.Dedup_matrix { protocol = "SecDedup"; size = 3; equal_pairs = [ (0, 2) ] };
        Trace.Comparison { protocol = "EncCompare"; ordering = -1 };
        Trace.Count { protocol = "SecFilter"; value = 4 } ];
    Wire.Trace_events [];
    Wire.Stats [ ("paillier_decrypt", 12); ("dj_decrypt", 3) ];
    Wire.Stats_resp snapshot_sample;
    Wire.Stats_resp [] ]

(* ---------------- round trips + closed-form sizes ---------------- *)

let test_request_roundtrip () =
  List.iteri
    (fun i (label, req) ->
      let s = Wire.encode_request keys ~session:(i * 3) ~label req in
      let session, label', req' = Wire.decode_request keys s in
      Alcotest.(check int) (Printf.sprintf "req %d session" i) (i * 3) session;
      Alcotest.(check string) (Printf.sprintf "req %d label" i) label label';
      Alcotest.(check bool) (Printf.sprintf "req %d payload" i) true (req = req');
      Alcotest.(check int)
        (Printf.sprintf "req %d closed-form size" i)
        (String.length s)
        (Wire.request_bytes keys ~label req))
    request_samples

let test_response_roundtrip () =
  List.iteri
    (fun i resp ->
      let s = Wire.encode_response keys resp in
      Alcotest.(check bool)
        (Printf.sprintf "resp %d payload" i)
        true
        (Wire.decode_response keys s = resp);
      Alcotest.(check int)
        (Printf.sprintf "resp %d closed-form size" i)
        (String.length s)
        (Wire.response_bytes keys resp))
    response_samples

let test_control_roundtrip () =
  List.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "control %d" i)
        true
        (Wire.decode_control (Wire.encode_control c) = c))
    control_samples;
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "control reply %d" i)
        true
        (Wire.decode_control_reply (Wire.encode_control_reply r) = r))
    control_reply_samples

let test_header_bytes () =
  (* the per-frame overhead constants used by Obs.Cost_model *)
  let s = Wire.encode_request keys ~session:0 ~label:"EncCompare" (Wire.Sign_of (ct 1)) in
  Alcotest.(check int) "request header + ct"
    (Wire.request_header_bytes ~label:"EncCompare" + Paillier.ciphertext_bytes pub)
    (String.length s);
  let s = Wire.encode_response keys (Wire.Sign 1) in
  Alcotest.(check int) "response header + 1" (Wire.response_header_bytes + 1) (String.length s)

let test_client_server_roundtrip () =
  List.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "client msg %d" i)
        true
        (Wire.decode_client_msg (Wire.encode_client_msg c) = c))
    client_samples;
  List.iteri
    (fun i m ->
      Alcotest.(check bool)
        (Printf.sprintf "server msg %d" i)
        true
        (Wire.decode_server_msg keys (Wire.encode_server_msg keys m) = m))
    server_samples

(* ---------------- malformed frames ---------------- *)

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let all_frames () =
  List.map (fun (label, r) -> Wire.encode_request keys ~session:1 ~label r) request_samples
  @ List.map (Wire.encode_response keys) response_samples
  @ List.map Wire.encode_client_msg client_samples
  @ List.map (Wire.encode_server_msg keys) server_samples

let decoders (s : string) : (string * (unit -> unit)) list =
  [ ("request", fun () -> ignore (Wire.decode_request keys s));
    ("response", fun () -> ignore (Wire.decode_response keys s));
    ("control", fun () -> ignore (Wire.decode_control s));
    ("control-reply", fun () -> ignore (Wire.decode_control_reply s));
    ("client", fun () -> ignore (Wire.decode_client_msg s));
    ("server", fun () -> ignore (Wire.decode_server_msg keys s)) ]

(* any strict prefix of a valid frame must be rejected by every decoder *)
let test_truncated () =
  List.iteri
    (fun i s ->
      let n = String.length s in
      (* every short prefix, then a byte-granular sweep near the end *)
      let cuts = List.init (min n 32) Fun.id @ List.init (min n 32) (fun j -> n - 1 - j) in
      List.iter
        (fun cut ->
          if cut >= 0 && cut < n then
            let p = String.sub s 0 cut in
            List.iter
              (fun (who, f) ->
                expect_invalid (Printf.sprintf "frame %d cut %d (%s)" i cut who) f)
              (decoders p))
        cuts)
    (all_frames ())

let test_overlong () =
  List.iteri
    (fun i s ->
      List.iter
        (fun (who, f) ->
          expect_invalid (Printf.sprintf "frame %d trailing byte (%s)" i who) f)
        (decoders (s ^ "\x00")))
    (all_frames ())

let corrupt s pos byte =
  let b = Bytes.of_string s in
  Bytes.set b pos byte;
  Bytes.to_string b

let test_bad_header () =
  let s = Wire.encode_request keys ~session:5 ~label:"EncCompare" (Wire.Sign_of (ct 1)) in
  expect_invalid "wrong magic" (fun () ->
      ignore (Wire.decode_request keys (corrupt s 0 'X')));
  expect_invalid "wrong version" (fun () ->
      ignore (Wire.decode_request keys (corrupt s 4 '\xff')));
  expect_invalid "wrong tag" (fun () ->
      ignore (Wire.decode_request keys (corrupt s 6 '\xff')));
  (* kind mismatch: a request frame is not a response/control and vice versa *)
  expect_invalid "request as response" (fun () -> ignore (Wire.decode_response keys s));
  expect_invalid "request as control" (fun () -> ignore (Wire.decode_control s));
  let r = Wire.encode_response keys (Wire.Bit true) in
  expect_invalid "response as request" (fun () -> ignore (Wire.decode_request keys r));
  Alcotest.(check (option char)) "kind peek req" (Some 'Q') (Wire.frame_kind s);
  Alcotest.(check (option char)) "kind peek resp" (Some 'P') (Wire.frame_kind r)

(* nested batches are illegal in both directions: the encoder refuses to
   produce them and the decoder refuses hand-crafted ones *)
let test_nested_batch () =
  expect_invalid "encode nested batch req" (fun () ->
      ignore
        (Wire.encode_request keys ~session:0 ~label:"EncSort"
           (Wire.Batch [ Wire.Batch [ Wire.Sign_of (ct 1) ] ])));
  expect_invalid "encode nested batch resp" (fun () ->
      ignore (Wire.encode_response keys (Wire.Batch_resp [ Wire.Batch_resp [] ])));
  (* a singleton batch frame with its inner element tag patched to the
     batch tag: the decoder must reject it before touching the payload *)
  let label = "EncSort" in
  let s = Wire.encode_request keys ~session:0 ~label (Wire.Batch [ Wire.Zero_test (ct 6) ]) in
  let inner_tag_pos = Wire.request_header_bytes ~label + 4 in
  expect_invalid "decode nested batch req" (fun () ->
      ignore (Wire.decode_request keys (corrupt s inner_tag_pos '\x13')));
  let r = Wire.encode_response keys (Wire.Batch_resp [ Wire.Bit true ]) in
  expect_invalid "decode nested batch resp" (fun () ->
      ignore (Wire.decode_response keys (corrupt r (Wire.response_header_bytes + 4) '\x0e')))

(* ---------------- multiplex frames ---------------- *)

let mux_op_samples : Wire.mux_op list =
  [ Wire.Mux_open { session = 1 };
    Wire.Mux_req { session = 1; label = "EncCompare"; req = Wire.Sign_of (ct 9) };
    Wire.Mux_open { session = 2 };
    Wire.Mux_fork { parent = 1; child = 3; label = "par:0" };
    Wire.Mux_req
      {
        session = 2;
        label = "EncSort";
        req = Wire.Batch [ Wire.Zero_test (ct 4); Wire.Equality [ ct 5; ct 6 ] ];
      };
    Wire.Mux_req { session = 3; label = "DGK"; req = Wire.Zero_any [ ct 7 ] };
    Wire.Mux_join { parent = 1; child = 3 };
    Wire.Mux_close { session = 2 };
    Wire.Mux_close { session = 1 } ]

let mux_reply_samples : Wire.mux_reply list =
  [ Wire.Mux_ok;
    Wire.Mux_answer (Wire.Sign (-1));
    Wire.Mux_ok;
    Wire.Mux_ok;
    Wire.Mux_answer (Wire.Batch_resp [ Wire.Bit false; Wire.Bits2 [ dj 1; dj 0 ] ]);
    Wire.Mux_answer (Wire.Bit true);
    Wire.Mux_ok;
    Wire.Mux_ok;
    Wire.Mux_ok ]

let test_mux_roundtrip () =
  let frame = Wire.encode_mux keys mux_op_samples in
  Alcotest.(check bool) "mux ops round trip" true (Wire.decode_mux keys frame = mux_op_samples);
  Alcotest.(check (option char)) "mux kind" (Some 'M') (Wire.frame_kind frame);
  let reply = Wire.encode_mux_replies keys mux_reply_samples in
  Alcotest.(check bool) "mux replies round trip" true
    (Wire.decode_mux_replies keys reply = mux_reply_samples);
  Alcotest.(check (option char)) "mux reply kind" (Some 'N') (Wire.frame_kind reply);
  (* empty frames are legal (a trip of pure session management has no
     requests; its reply frame echoes element-wise) *)
  Alcotest.(check bool) "empty mux" true (Wire.decode_mux keys (Wire.encode_mux keys []) = []);
  Alcotest.(check bool) "empty replies" true
    (Wire.decode_mux_replies keys (Wire.encode_mux_replies keys []) = [])

let test_mux_malformed () =
  let frame = Wire.encode_mux keys mux_op_samples in
  let reply = Wire.encode_mux_replies keys mux_reply_samples in
  (* truncation sweep: every strict prefix rejected *)
  let n = String.length frame in
  let cuts = List.init (min n 48) Fun.id @ List.init (min n 48) (fun j -> n - 1 - j) in
  List.iter
    (fun cut ->
      if cut >= 0 && cut < n then
        expect_invalid (Printf.sprintf "mux cut %d" cut) (fun () ->
            ignore (Wire.decode_mux keys (String.sub frame 0 cut))))
    cuts;
  let m = String.length reply in
  for cut = 0 to m - 1 do
    expect_invalid (Printf.sprintf "mux reply cut %d" cut) (fun () ->
        ignore (Wire.decode_mux_replies keys (String.sub reply 0 cut)))
  done;
  expect_invalid "mux trailing byte" (fun () ->
      ignore (Wire.decode_mux keys (frame ^ "\x00")));
  expect_invalid "mux reply trailing byte" (fun () ->
      ignore (Wire.decode_mux_replies keys (reply ^ "\x00")));
  (* kind confusion: mux frames are not requests/responses and vice versa *)
  expect_invalid "mux as request" (fun () -> ignore (Wire.decode_request keys frame));
  expect_invalid "mux as reply" (fun () -> ignore (Wire.decode_mux_replies keys frame));
  expect_invalid "reply as mux" (fun () -> ignore (Wire.decode_mux keys reply));
  expect_invalid "request as mux" (fun () ->
      ignore
        (Wire.decode_mux keys
           (Wire.encode_request keys ~session:0 ~label:"EncCompare" (Wire.Sign_of (ct 1)))));
  (* unknown op tag *)
  let hdr = 11 + 4 in
  expect_invalid "unknown mux op tag" (fun () ->
      ignore (Wire.decode_mux keys (corrupt frame hdr '\xfe')));
  expect_invalid "unknown mux reply tag" (fun () ->
      ignore (Wire.decode_mux_replies keys (corrupt reply hdr '\xfe')));
  (* nested batch inside a Mux_req: the encoder refuses to produce it and
     the decoder refuses a hand-patched one *)
  expect_invalid "encode nested batch in mux" (fun () ->
      ignore
        (Wire.encode_mux keys
           [ Wire.Mux_req
               {
                 session = 1;
                 label = "EncSort";
                 req = Wire.Batch [ Wire.Batch [ Wire.Zero_test (ct 1) ] ];
               } ]));
  let single =
    Wire.encode_mux keys
      [ Wire.Mux_req
          { session = 1; label = "EncSort"; req = Wire.Batch [ Wire.Zero_test (ct 6) ] } ]
  in
  (* op tag, session, label("EncSort"), batch tag, count, inner tag *)
  let inner_tag_pos = hdr + 1 + 4 + (4 + 7) + 1 + 4 in
  expect_invalid "decode nested batch in mux" (fun () ->
      ignore (Wire.decode_mux keys (corrupt single inner_tag_pos '\x13')))

(* stats frames: truncation sweep plus targeted field corruptions — the
   decoder re-validates what the registry guarantees (non-negative 8-byte
   integers, non-NaN gauges, histogram bucket counts summing to count) *)
let test_stats_malformed () =
  let frame = Wire.encode_control_reply (Wire.Stats_resp snapshot_sample) in
  let n = String.length frame in
  for cut = 0 to n - 1 do
    expect_invalid (Printf.sprintf "stats cut %d" cut) (fun () ->
        ignore (Wire.decode_control_reply (String.sub frame 0 cut)))
  done;
  expect_invalid "stats trailing byte" (fun () ->
      ignore (Wire.decode_control_reply (frame ^ "\x00")));
  (* locate a field by its unique encoded bytes, then corrupt in place *)
  let find needle =
    let nn = String.length needle in
    let rec go i =
      if i + nn > n then Alcotest.failf "pattern not found in stats frame"
      else if String.sub frame i nn = needle then i
      else go (i + 1)
    in
    go 0
  in
  let i64 v =
    String.init 8 (fun i -> Char.chr ((v lsr (56 - (8 * i))) land 0xff))
  in
  (* counter 7e9 with its sign bit set -> out of range *)
  let cpos = find (i64 7_000_000_000) in
  expect_invalid "negative i64 field" (fun () ->
      ignore (Wire.decode_control_reply (corrupt frame cpos '\x80')));
  (* gauge 2.5 patched to a NaN bit pattern *)
  let gpos = find "\x40\x04\x00\x00\x00\x00\x00\x00" in
  let nan_frame =
    String.sub frame 0 gpos ^ "\x7f\xf8\x00\x00\x00\x00\x00\x00"
    ^ String.sub frame (gpos + 8) (n - gpos - 8)
  in
  expect_invalid "NaN gauge" (fun () -> ignore (Wire.decode_control_reply nan_frame));
  (* exec_us histogram count 3 -> 4: disagrees with its bucket counts *)
  let hpos = find (i64 3 ^ i64 5_000_000_123) in
  expect_invalid "histogram count mismatch" (fun () ->
      ignore (Wire.decode_control_reply (corrupt frame (hpos + 7) '\x04')));
  (* hmin above hmax *)
  let mpos = find (i64 12 ^ i64 4_999_999_999) in
  (* byte 2 of hmin: lifts it to ~2^40, far above hmax *)
  expect_invalid "histogram min above max" (fun () ->
      ignore (Wire.decode_control_reply (corrupt frame (mpos + 2) '\xff')))

(* QCheck: single-byte mutations anywhere in any frame either raise
   [Invalid_argument] or decode to *something* — no other exception ever
   escapes (payload-byte mutations legitimately decode to different
   ciphertext values; that is not a parser failure). *)
let test_mutation_safety =
  let frames = Array.of_list (all_frames ()) in
  QCheck.Test.make ~count:500 ~name:"mutated frames never crash"
    QCheck.(triple (int_bound (Array.length frames - 1)) small_nat (int_bound 255))
    (fun (fi, pos, byte) ->
      let s = frames.(fi) in
      let s = corrupt s (pos mod String.length s) (Char.chr byte) in
      List.for_all
        (fun (_, f) ->
          try
            f ();
            true
          with Invalid_argument _ -> true)
        (decoders s))

(* random byte strings (arbitrary garbage) never crash a decoder *)
let test_garbage_safety =
  QCheck.Test.make ~count:500 ~name:"garbage never crashes"
    QCheck.(string_gen_of_size Gen.small_nat Gen.char)
    (fun s ->
      List.for_all
        (fun (_, f) ->
          try
            f ();
            true
          with Invalid_argument _ -> true)
        (decoders s))

let suite =
  [ ( "roundtrip",
      [ Alcotest.test_case "requests" `Quick test_request_roundtrip;
        Alcotest.test_case "responses" `Quick test_response_roundtrip;
        Alcotest.test_case "controls" `Quick test_control_roundtrip;
        Alcotest.test_case "client/server msgs" `Quick test_client_server_roundtrip;
        Alcotest.test_case "mux frames" `Quick test_mux_roundtrip;
        Alcotest.test_case "header constants" `Quick test_header_bytes ] );
    ( "malformed",
      [ Alcotest.test_case "truncated" `Quick test_truncated;
        Alcotest.test_case "overlong" `Quick test_overlong;
        Alcotest.test_case "bad header" `Quick test_bad_header;
        Alcotest.test_case "nested batch" `Quick test_nested_batch;
        Alcotest.test_case "mux frames" `Quick test_mux_malformed;
        Alcotest.test_case "stats frames" `Quick test_stats_malformed;
        QCheck_alcotest.to_alcotest test_mutation_safety;
        QCheck_alcotest.to_alcotest test_garbage_safety ] ) ]

let () = Alcotest.run "wire" suite
