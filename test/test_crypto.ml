(* Tests for the crypto substrate: FIPS/RFC test vectors for SHA-256 and
   HMAC, determinism/uniformity checks for the DRBG and RNG, and the
   homomorphic identities that the SecTopK protocols rely on for Paillier
   and Damgård-Jurik. *)

open Bignum
open Crypto

let nat = Alcotest.testable Nat.pp Nat.equal

(* One shared small key pair: keygen is the slow part, tests share it. *)
let rng = Rng.create ~seed:"test_crypto"
let pub, sk = Paillier.keygen rng ~bits:128
let djpub, djsk_opt = Damgard_jurik.of_paillier pub (Some sk)
let djsk = Option.get djsk_opt

(* ---------------- SHA-256 ---------------- *)

let test_sha256_vectors () =
  let check msg expected = Alcotest.(check string) ("sha256 of " ^ msg) expected (Sha256.digest_hex msg) in
  check "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  check (String.make 1000000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

let test_sha256_streaming () =
  (* updating in odd-sized chunks must match the one-shot digest *)
  let msg = String.init 10_000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  let chunk = ref 1 in
  while !pos < String.length msg do
    let len = min !chunk (String.length msg - !pos) in
    Sha256.update ctx (String.sub msg !pos len);
    pos := !pos + len;
    chunk := (!chunk * 7 mod 97) + 1
  done;
  Alcotest.(check string) "streaming = one-shot" (Sha256.digest_hex msg) (Sha256.hex (Sha256.finalize ctx))

(* ---------------- HMAC (RFC 4231) ---------------- *)

let test_hmac_vectors () =
  let check name ~key msg expected = Alcotest.(check string) name expected (Hmac.mac_hex ~key msg) in
  check "rfc4231 case 1" ~key:(String.make 20 '\x0b') "Hi There"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check "rfc4231 case 2" ~key:"Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check "rfc4231 case 3" ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  (* key longer than a block *)
  check "rfc4231 case 6" ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"

(* ---------------- DRBG / RNG ---------------- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed" and b = Drbg.create ~seed:"seed" in
  Alcotest.(check string) "same seed, same stream" (Drbg.generate a 100) (Drbg.generate b 100);
  let c = Drbg.create ~seed:"other" in
  Alcotest.(check bool) "different seeds differ" false (Drbg.generate c 100 = Drbg.generate (Drbg.create ~seed:"seed") 100)

let test_drbg_no_repeat () =
  let d = Drbg.create ~seed:"x" in
  let a = Drbg.generate d 32 and b = Drbg.generate d 32 in
  Alcotest.(check bool) "stream advances" false (a = b)

let test_rng_bounds () =
  let r = Rng.create ~seed:"bounds" in
  for _ = 1 to 200 do
    let bound = 1 + Rng.int_below r 1000 in
    let v = Rng.int_below r bound in
    Alcotest.(check bool) "int_below in range" true (v >= 0 && v < bound)
  done;
  let m = Nat.of_string "123456789123456789" in
  for _ = 1 to 50 do
    let v = Rng.nat_below r m in
    Alcotest.(check bool) "nat_below in range" true (Nat.compare v m < 0)
  done

let test_rng_unit_mod () =
  let r = Rng.create ~seed:"unit" in
  let n = Nat.of_int (15 * 77) in
  for _ = 1 to 50 do
    let u = Rng.unit_mod r n in
    Alcotest.check nat "coprime" Nat.one (Modular.gcd u n)
  done

let test_rng_shuffle_perm () =
  let r = Rng.create ~seed:"shuffle" in
  let arr = Array.init 20 (fun i -> i) in
  let orig = Array.copy arr in
  let perm = Rng.shuffle r arr in
  (* perm maps new index -> old index *)
  Array.iteri (fun i p -> Alcotest.(check int) "perm consistent" orig.(p) arr.(i)) perm;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "same multiset" true (sorted = orig)

let test_rng_fork_independent () =
  let r = Rng.create ~seed:"parent" in
  let f1 = Rng.fork r ~label:"a" in
  let x = Rng.bytes f1 16 in
  let r' = Rng.create ~seed:"parent" in
  let f1' = Rng.fork r' ~label:"a" in
  Alcotest.(check string) "fork deterministic" x (Rng.bytes f1' 16)

(* ---------------- PRF / PRP ---------------- *)

let test_prf_stable_and_keyed () =
  let m = Nat.of_string "1000003" in
  let a = Prf.to_nat_mod ~key:"k1" "object-42" ~m in
  let b = Prf.to_nat_mod ~key:"k1" "object-42" ~m in
  let c = Prf.to_nat_mod ~key:"k2" "object-42" ~m in
  Alcotest.check nat "deterministic" a b;
  Alcotest.(check bool) "key matters" false (Nat.equal a c);
  Alcotest.(check bool) "in range" true (Nat.compare a m < 0)

let test_prf_to_index () =
  for i = 0 to 100 do
    let v = Prf.to_index ~key:"k" (string_of_int i) ~buckets:23 in
    Alcotest.(check bool) "bucket range" true (v >= 0 && v < 23)
  done

let test_prp_bijection () =
  let p = Prp.create ~key:"prp-key" ~domain:100 in
  let seen = Array.make 100 false in
  for i = 0 to 99 do
    let v = Prp.apply p i in
    Alcotest.(check bool) "in domain" true (v >= 0 && v < 100);
    Alcotest.(check bool) "injective" false seen.(v);
    seen.(v) <- true;
    Alcotest.(check int) "invert" i (Prp.invert p v)
  done;
  let p2 = Prp.create ~key:"prp-key" ~domain:100 in
  Alcotest.(check bool) "keyed deterministic" true
    (List.for_all (fun i -> Prp.apply p i = Prp.apply p2 i) (List.init 100 Fun.id))

(* ---------------- Paillier ---------------- *)

let test_paillier_roundtrip () =
  List.iter
    (fun m ->
      let m = Nat.of_int m in
      Alcotest.check nat "dec(enc(m)) = m" m (Paillier.decrypt sk (Paillier.encrypt rng pub m)))
    [ 0; 1; 42; 1_000_000_007 ];
  (* a plaintext near n *)
  let near = Nat.pred pub.Paillier.n in
  Alcotest.check nat "near n" near (Paillier.decrypt sk (Paillier.encrypt rng pub near))

let test_paillier_probabilistic () =
  let c1 = Paillier.encrypt rng pub (Nat.of_int 5) in
  let c2 = Paillier.encrypt rng pub (Nat.of_int 5) in
  Alcotest.(check bool) "distinct ciphertexts" false (Paillier.equal_ct c1 c2)

let test_paillier_homomorphic_add () =
  let a = Nat.of_int 123456 and b = Nat.of_int 654321 in
  let c = Paillier.add pub (Paillier.encrypt rng pub a) (Paillier.encrypt rng pub b) in
  Alcotest.check nat "enc(a)*enc(b) = enc(a+b)" (Nat.add a b) (Paillier.decrypt sk c)

let test_paillier_add_wraps () =
  let n = pub.Paillier.n in
  let a = Nat.pred n in
  let c = Paillier.add pub (Paillier.encrypt rng pub a) (Paillier.encrypt rng pub Nat.two) in
  Alcotest.check nat "wraps mod n" Nat.one (Paillier.decrypt sk c)

let test_paillier_scalar_mul () =
  let a = Nat.of_int 1111 in
  let c = Paillier.scalar_mul pub (Paillier.encrypt rng pub a) (Nat.of_int 77) in
  Alcotest.check nat "enc(a)^k = enc(ka)" (Nat.of_int (1111 * 77)) (Paillier.decrypt sk c)

let test_paillier_neg_sub () =
  let a = Nat.of_int 500 and b = Nat.of_int 123 in
  let d = Paillier.sub pub (Paillier.encrypt rng pub a) (Paillier.encrypt rng pub b) in
  Alcotest.check nat "sub" (Nat.of_int 377) (Paillier.decrypt sk d);
  let neg = Paillier.neg pub (Paillier.encrypt rng pub b) in
  Alcotest.(check string) "signed decode" "-123" (Bigint.to_string (Paillier.decrypt_signed sk neg))

let test_paillier_rerandomize () =
  let c = Paillier.encrypt rng pub (Nat.of_int 99) in
  let c' = Paillier.rerandomize rng pub c in
  Alcotest.(check bool) "fresh ciphertext" false (Paillier.equal_ct c c');
  Alcotest.check nat "same plaintext" (Nat.of_int 99) (Paillier.decrypt sk c')

let test_paillier_trivial () =
  Alcotest.check nat "trivial decrypts" (Nat.of_int 7) (Paillier.decrypt sk (Paillier.trivial pub (Nat.of_int 7)))

let prop_paillier_add =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"paillier additive homomorphism (random)"
       QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
       (fun (a, b) ->
         let c = Paillier.add pub (Paillier.encrypt_int rng pub a) (Paillier.encrypt_int rng pub b) in
         Nat.to_int (Paillier.decrypt sk c) = a + b))

let prop_paillier_scalar =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"paillier scalar homomorphism (random)"
       QCheck.(pair (int_bound 100_000) (int_bound 1000))
       (fun (a, k) ->
         let c = Paillier.scalar_mul pub (Paillier.encrypt_int rng pub a) (Nat.of_int k) in
         Nat.to_int (Paillier.decrypt sk c) = a * k))

(* ---------------- Damgård-Jurik ---------------- *)

let test_dj_roundtrip () =
  List.iter
    (fun m ->
      let m = Nat.of_string m in
      Alcotest.check nat ("dj roundtrip " ^ Nat.to_string m) m
        (Damgard_jurik.decrypt djsk (Damgard_jurik.encrypt rng djpub m)))
    [ "0"; "1"; "123456789" ];
  (* plaintexts >= n exercise the second digit of the decryption *)
  let big = Nat.pred djpub.Damgard_jurik.n2 in
  Alcotest.check nat "dj near n^2" big (Damgard_jurik.decrypt djsk (Damgard_jurik.encrypt rng djpub big));
  let mid = Nat.add djpub.Damgard_jurik.n (Nat.of_int 12345) in
  Alcotest.check nat "dj n + k" mid (Damgard_jurik.decrypt djsk (Damgard_jurik.encrypt rng djpub mid))

let test_dj_homomorphic () =
  let a = Nat.of_int 11111 and b = Nat.of_int 22222 in
  let c = Damgard_jurik.add djpub (Damgard_jurik.encrypt rng djpub a) (Damgard_jurik.encrypt rng djpub b) in
  Alcotest.check nat "dj add" (Nat.add a b) (Damgard_jurik.decrypt djsk c);
  let s = Damgard_jurik.scalar_mul djpub (Damgard_jurik.encrypt rng djpub a) (Nat.of_int 9) in
  Alcotest.check nat "dj scalar" (Nat.of_int (11111 * 9)) (Damgard_jurik.decrypt djsk s)

let test_dj_layered () =
  (* E2(Enc(m1))^Enc(m2) = E2(Enc(m1+m2)) — the paper's Section 3.3 identity *)
  let m1 = Nat.of_int 123 and m2 = Nat.of_int 456 in
  let inner1 = Paillier.encrypt rng pub m1 in
  let inner2 = Paillier.encrypt rng pub m2 in
  let outer = Damgard_jurik.encrypt_layered rng djpub inner1 in
  let combined = Damgard_jurik.scalar_mul_ct djpub outer inner2 in
  let recovered = Damgard_jurik.decrypt_layered djsk pub combined in
  Alcotest.check nat "inner decrypts to m1+m2" (Nat.of_int 579) (Paillier.decrypt sk recovered)

let test_dj_layered_select () =
  (* The select gadget used by SecWorst/SecBest:
     E2(t)^Enc(x) * (E2(1) * E2(t)^-1)^Enc(0) = E2(t*Enc(x) + (1-t)*Enc(0)) *)
  let x = Nat.of_int 777 in
  let enc_x = Paillier.encrypt rng pub x in
  let enc_0 = Paillier.encrypt rng pub Nat.zero in
  let check_select t expected =
    let e2_t = Damgard_jurik.encrypt rng djpub (Nat.of_int t) in
    let e2_1 = Damgard_jurik.encrypt rng djpub Nat.one in
    let one_minus_t = Damgard_jurik.add djpub e2_1 (Damgard_jurik.neg djpub e2_t) in
    let sel =
      Damgard_jurik.add djpub
        (Damgard_jurik.scalar_mul_ct djpub e2_t enc_x)
        (Damgard_jurik.scalar_mul_ct djpub one_minus_t enc_0)
    in
    let inner = Damgard_jurik.decrypt_layered djsk pub sel in
    Alcotest.check nat (Printf.sprintf "select t=%d" t) expected (Paillier.decrypt sk inner)
  in
  check_select 1 x;
  check_select 0 Nat.zero

let test_dj_rerandomize () =
  let c = Damgard_jurik.encrypt rng djpub (Nat.of_int 31337) in
  let c' = Damgard_jurik.rerandomize rng djpub c in
  Alcotest.(check bool) "fresh" false (Damgard_jurik.equal_ct c c');
  Alcotest.check nat "same plaintext" (Nat.of_int 31337) (Damgard_jurik.decrypt djsk c')

(* ---------------- CRT decryption vs textbook formulas ----------------

   [Paillier.decrypt] and [Damgard_jurik.decrypt] run over the prime-power
   factors with half-size exponents; these tests pin them to the direct
   lambda/d exponentiation mod n^2 / n^3 they replace. *)

let test_paillier_crt_matches_classic () =
  let _, _, lambda = Paillier.secret_params sk in
  let n = pub.Paillier.n and n2 = pub.Paillier.n2 in
  let mu = Modular.inv (Nat.rem lambda n) ~m:n in
  let classic c =
    let u = Modular.pow (Paillier.to_nat c) lambda ~m:n2 in
    Modular.mul (Nat.div (Nat.pred u) n) mu ~m:n
  in
  for i = 0 to 49 do
    let m = Rng.nat_below rng n in
    let c = Paillier.encrypt rng pub m in
    Alcotest.check nat (Printf.sprintf "crt = classic #%d" i) (classic c) (Paillier.decrypt sk c)
  done;
  List.iter
    (fun m ->
      let c = Paillier.trivial pub m in
      Alcotest.check nat "crt = classic on trivial cts" (classic c) (Paillier.decrypt sk c))
    [ Nat.zero; Nat.one; Nat.pred n ]

let test_paillier_shortened_noise_comb () =
  (* shortened-noise keys draw noise from the fixed-base comb *)
  let pub' = Paillier.with_rand_bits pub (Some 64) in
  for _ = 1 to 20 do
    let m = Rng.nat_below rng pub.Paillier.n in
    let c = Paillier.encrypt rng pub' m in
    Alcotest.check nat "comb-noise roundtrip" m (Paillier.decrypt sk c);
    let c' = Paillier.rerandomize rng pub' c in
    Alcotest.(check bool) "rerandomized fresh" false (Paillier.equal_ct c c');
    Alcotest.check nat "rerandomize preserves" m (Paillier.decrypt sk c')
  done

let test_dj_crt_matches_classic () =
  let _, _, lambda = Paillier.secret_params sk in
  let n = djpub.Damgard_jurik.n
  and n2 = djpub.Damgard_jurik.n2
  and n3 = djpub.Damgard_jurik.n3 in
  let d = Modular.crt2 (Nat.one, n2) (Nat.zero, lambda) in
  let classic c =
    let u = Modular.pow (Damgard_jurik.to_nat c) d ~m:n3 in
    let t = Nat.rem (Nat.div (Nat.pred u) n) n2 in
    let m0 = Nat.rem t n in
    let binom =
      Nat.rem
        (Nat.shift_right (Nat.mul m0 (if Nat.is_zero m0 then Nat.zero else Nat.pred m0)) 1)
        n
    in
    let hi = Nat.div (Nat.sub t m0) n in
    let m1 = Modular.sub (Nat.rem hi n) binom ~m:n in
    Nat.add m0 (Nat.mul n m1)
  in
  for i = 0 to 19 do
    let m = Rng.nat_below rng n2 in
    let c = Damgard_jurik.encrypt rng djpub m in
    Alcotest.check nat
      (Printf.sprintf "dj crt = classic #%d" i)
      (classic c) (Damgard_jurik.decrypt djsk c)
  done

let test_ciphertext_sizes () =
  Alcotest.(check bool) "paillier ct is 2x plaintext width" true
    (Paillier.ciphertext_bytes pub >= 2 * Paillier.plaintext_bytes pub - 1);
  Alcotest.(check bool) "dj ct is 3x plaintext width" true
    (Damgard_jurik.ciphertext_bytes djpub > Paillier.ciphertext_bytes pub)

(* ---------------- Noise_pool ---------------- *)

(* Consumption is a pure function of the creating generator's state: the
   same seed yields the same noise stream whether values are computed on
   demand, prefilled, or produced by a background filler domain. *)
let pool_stream ~variant n =
  let r = Rng.create ~seed:"test_noise_pool" in
  let p = Noise_pool.create ~depth:8 r ~label:"p" (fun r -> Paillier.noise r pub) in
  (match variant with
  | `On_demand -> ()
  | `Prefill -> Noise_pool.prefill p n
  | `Filler ->
    Noise_pool.start_filler p;
    (* give the filler a chance to race the consumer *)
    Domain.cpu_relax ());
  let out = List.init n (fun _ -> Noise_pool.take p) in
  Noise_pool.quiesce p;
  out

let test_noise_pool_deterministic () =
  let a = pool_stream ~variant:`On_demand 20 in
  let b = pool_stream ~variant:`Prefill 20 in
  let c = pool_stream ~variant:`Filler 20 in
  List.iteri (fun i x -> Alcotest.check nat (Printf.sprintf "prefill #%d" i) x (List.nth b i)) a;
  List.iteri (fun i x -> Alcotest.check nat (Printf.sprintf "filler #%d" i) x (List.nth c i)) a

let test_noise_pool_rerandomize () =
  let r = Rng.create ~seed:"test_noise_pool_rr" in
  let p = Noise_pool.create r ~label:"p" (fun r -> Paillier.noise r pub) in
  let m = Nat.of_int 42 in
  let c = Paillier.encrypt rng pub m in
  let c' = Paillier.rerandomize_with pub ~noise:(Noise_pool.take p) c in
  Alcotest.(check bool) "ciphertext changed" false (Paillier.equal_ct c c');
  Alcotest.check nat "plaintext preserved" m (Paillier.decrypt sk c');
  let dp = Noise_pool.create r ~label:"dj" (fun r -> Damgard_jurik.noise r djpub) in
  let dc = Damgard_jurik.encrypt rng djpub m in
  let dc' = Damgard_jurik.rerandomize_with djpub ~noise:(Noise_pool.take dp) dc in
  Alcotest.(check bool) "dj ciphertext changed" false (Damgard_jurik.equal_ct dc dc');
  Alcotest.check nat "dj plaintext preserved" m (Damgard_jurik.decrypt djsk dc')

let test_noise_pool_banked () =
  let r = Rng.create ~seed:"test_noise_pool_banked" in
  let p = Noise_pool.create ~depth:4 r ~label:"p" (fun r -> Paillier.noise r pub) in
  Alcotest.(check int) "empty at creation" 0 (Noise_pool.banked p);
  Noise_pool.prefill p 6;
  Alcotest.(check bool) "prefilled" true (Noise_pool.banked p >= 6);
  ignore (Noise_pool.take p);
  Alcotest.(check bool) "take drains" true (Noise_pool.banked p >= 5);
  Noise_pool.quiesce p (* no filler running: must be a no-op *)

let suite =
  [ ( "sha256",
      [ Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "streaming" `Quick test_sha256_streaming
      ] );
    ("hmac", [ Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_vectors ]);
    ( "drbg-rng",
      [ Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
        Alcotest.test_case "stream advances" `Quick test_drbg_no_repeat;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "unit_mod coprime" `Quick test_rng_unit_mod;
        Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_perm;
        Alcotest.test_case "fork deterministic" `Quick test_rng_fork_independent
      ] );
    ( "prf-prp",
      [ Alcotest.test_case "prf stable and keyed" `Quick test_prf_stable_and_keyed;
        Alcotest.test_case "prf index range" `Quick test_prf_to_index;
        Alcotest.test_case "prp bijection" `Quick test_prp_bijection
      ] );
    ( "paillier",
      [ Alcotest.test_case "roundtrip" `Quick test_paillier_roundtrip;
        Alcotest.test_case "probabilistic" `Quick test_paillier_probabilistic;
        Alcotest.test_case "homomorphic add" `Quick test_paillier_homomorphic_add;
        Alcotest.test_case "add wraps mod n" `Quick test_paillier_add_wraps;
        Alcotest.test_case "scalar mul" `Quick test_paillier_scalar_mul;
        Alcotest.test_case "neg and sub" `Quick test_paillier_neg_sub;
        Alcotest.test_case "rerandomize" `Quick test_paillier_rerandomize;
        Alcotest.test_case "trivial encryption" `Quick test_paillier_trivial;
        Alcotest.test_case "CRT decrypt = classic" `Quick test_paillier_crt_matches_classic;
        Alcotest.test_case "shortened-noise comb" `Quick test_paillier_shortened_noise_comb;
        prop_paillier_add;
        prop_paillier_scalar
      ] );
    ( "noise-pool",
      [ Alcotest.test_case "deterministic across fill modes" `Quick test_noise_pool_deterministic;
        Alcotest.test_case "rerandomize_with" `Quick test_noise_pool_rerandomize;
        Alcotest.test_case "prefill and banked" `Quick test_noise_pool_banked
      ] );
    ( "damgard-jurik",
      [ Alcotest.test_case "roundtrip" `Quick test_dj_roundtrip;
        Alcotest.test_case "homomorphic" `Quick test_dj_homomorphic;
        Alcotest.test_case "layered identity" `Quick test_dj_layered;
        Alcotest.test_case "layered select gadget" `Quick test_dj_layered_select;
        Alcotest.test_case "rerandomize" `Quick test_dj_rerandomize;
        Alcotest.test_case "CRT decrypt = classic" `Quick test_dj_crt_matches_classic;
        Alcotest.test_case "ciphertext sizes" `Quick test_ciphertext_sizes
      ] )
  ]

let () = Alcotest.run "crypto" suite
