(* Tests for the two-cloud sub-protocols, each checked against a plaintext
   oracle: RecoverEnc, SecWorst, SecBest, SecDedup/SecDupElim, SecUpdate,
   EncCompare and EncSort. *)

open Bignum
open Crypto
open Proto

let rng = Rng.create ~seed:"test_proto"
let ctx = Ctx.create ~blind_bits:48 rng ~bits:128
let s1 = ctx.Ctx.s1
let pub = s1.Ctx.pub
let sk = Ctx.sk ctx
let keys = Prf.gen_keys rng 4

let enc i = Paillier.encrypt rng pub (Nat.of_int i)
let dec c = Nat.to_int (Paillier.decrypt sk c)
let dec_signed c = Bigint.to_string (Paillier.decrypt_signed sk c)

let entry oid score = { Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys oid; score = enc score }

let scored ?(seen = [| 1; 0 |]) oid worst best =
  {
    Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys oid;
    worst = enc worst;
    best = enc best;
    seen = Array.map enc seen;
  }

let opened (it : Enc_item.scored) =
  let resolver v =
    (* brute-force id recovery for test objects "o0".."o99" *)
    let rec find i =
      if i > 99 then None
      else if Nat.equal v (Prf.to_nat_mod ~key:(List.hd keys) ("o" ^ string_of_int i) ~m:pub.Paillier.n)
      then Some ("o" ^ string_of_int i)
      else find (i + 1)
    in
    find 0
  in
  let id = resolver (Paillier.decrypt sk (Ehl.Ehl_plus.cells it.Enc_item.ehl).(0)) in
  let signed c =
    let v = Paillier.decrypt_signed sk c in
    (match Nat.to_int_opt (Bigint.to_nat v) with
    | Some x -> if Bigint.sign v < 0 then -x else x
    | None -> min_int)
  in
  (id, signed it.Enc_item.worst, signed it.Enc_item.best)

(* ---------------- channel accounting ---------------- *)

let test_channel () =
  let ch = Channel.create () in
  Channel.send ch ~dir:Channel.S1_to_s2 ~label:"a" ~bytes:100;
  Channel.send ch ~dir:Channel.S2_to_s1 ~label:"b" ~bytes:50;
  Channel.round_trip ch;
  Alcotest.(check int) "bytes" 150 (Channel.bytes_total ch);
  Alcotest.(check int) "messages" 2 (Channel.messages_total ch);
  Alcotest.(check int) "rounds" 1 (Channel.rounds_total ch);
  Alcotest.(check (list (pair string int))) "labels" [ ("a", 100); ("b", 50) ]
    (Channel.bytes_by_label ch);
  let lat = Channel.latency_seconds ~rtt_ms:0. ~bandwidth_mbps:50. ch in
  Alcotest.(check bool) "latency = 8*150/50e6" true (abs_float (lat -. 2.4e-5) < 1e-9);
  Channel.reset ch;
  Alcotest.(check int) "reset" 0 (Channel.bytes_total ch)

(* ---------------- recover_enc + select ---------------- *)

let test_recover_enc () =
  let inner = enc 12345 in
  let e2 = Damgard_jurik.encrypt_layered rng s1.Ctx.djpub inner in
  let recovered = Gadgets.recover_enc ctx ~protocol:"test" e2 in
  Alcotest.(check int) "roundtrip" 12345 (dec recovered);
  Alcotest.(check bool) "fresh ciphertext" false (Paillier.equal_ct inner recovered)

let test_select_recover () =
  let a = enc 111 and b = enc 222 in
  let t1 = Damgard_jurik.encrypt rng s1.Ctx.djpub Nat.one in
  let t0 = Damgard_jurik.encrypt rng s1.Ctx.djpub Nat.zero in
  Alcotest.(check int) "select one" 111
    (dec (Gadgets.select_recover ctx ~protocol:"test" ~t:t1 ~if_one:a ~if_zero:b));
  Alcotest.(check int) "select zero" 222
    (dec (Gadgets.select_recover ctx ~protocol:"test" ~t:t0 ~if_one:a ~if_zero:b))

let test_lift () =
  let cts = [ enc 0; enc 1; enc 42 ] in
  let lifted = Gadgets.lift ctx ~protocol:"test" cts in
  (* check through the select gadget: lifted bits drive correct selection *)
  List.iter2
    (fun l orig ->
      let v = dec orig in
      if v = 0 || v = 1 then begin
        let r =
          Gadgets.select_recover ctx ~protocol:"test" ~t:l ~if_one:(enc 7) ~if_zero:(enc 9)
        in
        Alcotest.(check int) "lifted bit selects" (if v = 1 then 7 else 9) (dec r)
      end)
    lifted cts

let test_conjunction_round () =
  let zero () = Paillier.encrypt rng pub Nat.zero in
  let nonzero () = enc 5 in
  let groups = [ [ zero (); zero () ]; [ zero (); nonzero () ]; [ nonzero () ]; [ zero () ] ] in
  let ts = Gadgets.conjunction_round ctx ~protocol:"test" groups in
  let selected =
    List.map
      (fun t -> dec (Gadgets.select_recover ctx ~protocol:"test" ~t ~if_one:(enc 1) ~if_zero:(enc 0)))
      ts
  in
  Alcotest.(check (list int)) "conjunction verdicts" [ 1; 0; 0; 1 ] selected

(* ---------------- SecWorst ---------------- *)

let test_sec_worst_no_match () =
  (* paper Example 8.1: X1 at depth 1 with R2=(X2,8), R3=(X4,8): worst = 10 *)
  let target = entry "o1" 10 in
  let others = [ entry "o2" 8; entry "o4" 8 ] in
  Alcotest.(check int) "Enc(10)" 10 (dec (fst (Sec_worst.run ctx ~target ~others)))

let test_sec_worst_matches () =
  let target = entry "o7" 5 in
  let others = [ entry "o7" 3; entry "o9" 100; entry "o7" 2 ] in
  Alcotest.(check int) "sums matching scores" 10 (dec (fst (Sec_worst.run ctx ~target ~others)))

let test_sec_worst_empty_others () =
  let target = entry "o7" 42 in
  Alcotest.(check int) "own score only" 42 (dec (fst (Sec_worst.run ctx ~target ~others:[])))

(* ---------------- SecBest ---------------- *)

let test_sec_best_unseen () =
  (* target o1 score 10; other list has seen (o2,8),(o3,7) and bottom 7:
     o1 not seen there -> best = 10 + 7 *)
  let target = entry "o1" 10 in
  let hist = [ ([ entry "o2" 8; entry "o3" 7 ], enc 7) ] in
  Alcotest.(check int) "adds bottom" 17 (dec (Sec_best.run ctx ~target ~history:hist))

let test_sec_best_seen () =
  (* o1 appeared in the other list with score 3 -> best = 10 + 3 *)
  let target = entry "o1" 10 in
  let hist = [ ([ entry "o2" 8; entry "o1" 3 ], enc 3) ] in
  Alcotest.(check int) "uses known score" 13 (dec (Sec_best.run ctx ~target ~history:hist))

let test_sec_best_multi_list () =
  (* paper Example 8.2 (Figure 3b): best for X4 at depth 2 is 23:
     own 8 (R3 depth1) + R1 bottom 8 + R2 bottom 7 *)
  let target = entry "o4" 8 in
  let hist =
    [ ([ entry "o1" 10; entry "o2" 8 ], enc 8); ([ entry "o2" 8; entry "o3" 7 ], enc 7) ]
  in
  Alcotest.(check int) "Fig 3b upper bound for X4" 23 (dec (Sec_best.run ctx ~target ~history:hist))

let test_sec_best_empty_history () =
  let target = entry "o1" 9 in
  let hist = [ ([], enc 4); ([], enc 2) ] in
  Alcotest.(check int) "bottoms only" 15 (dec (Sec_best.run ctx ~target ~history:hist))

(* ---------------- SecDedup ---------------- *)

let test_sec_dedup_replace () =
  let items = [ scored "o1" 10 20; scored "o2" 8 20; scored "o1" 10 20; scored "o3" 5 20 ] in
  let out = Sec_dedup.run ctx ~mode:Sec_dedup.Replace items in
  Alcotest.(check int) "same length" 4 (List.length out);
  let openings = List.map opened out in
  let reals = List.filter_map (fun (id, w, b) -> Option.map (fun i -> (i, w, b)) id) openings in
  let garbage = List.filter (fun (id, _, _) -> id = None) openings in
  Alcotest.(check int) "three real objects" 3 (List.length reals);
  Alcotest.(check int) "one sentinel" 1 (List.length garbage);
  List.iter
    (fun (_, w, b) ->
      Alcotest.(check int) "sentinel worst = -1" (-1) w;
      Alcotest.(check int) "sentinel best = -1" (-1) b)
    garbage;
  Alcotest.(check bool) "kept scores intact" true
    (List.sort compare reals = [ ("o1", 10, 20); ("o2", 8, 20); ("o3", 5, 20) ])

let test_sec_dedup_eliminate () =
  let items = [ scored "o1" 10 20; scored "o2" 8 20; scored "o1" 10 20; scored "o1" 10 20 ] in
  let out = Sec_dedup.run ctx ~mode:Sec_dedup.Eliminate items in
  Alcotest.(check int) "shrunk to distinct" 2 (List.length out);
  let reals = List.map opened out |> List.filter_map (fun (id, w, _) -> Option.map (fun i -> (i, w)) id) in
  Alcotest.(check bool) "distinct objects kept" true
    (List.sort compare reals = [ ("o1", 10); ("o2", 8) ])

let test_sec_dedup_no_dupes () =
  let items = [ scored "o1" 1 2; scored "o2" 3 4 ] in
  let out = Sec_dedup.run ctx ~mode:Sec_dedup.Replace items in
  let reals = List.map opened out |> List.filter_map (fun (id, w, b) -> Option.map (fun i -> (i, w, b)) id) in
  Alcotest.(check bool) "all kept" true (List.sort compare reals = [ ("o1", 1, 2); ("o2", 3, 4) ])

let test_sec_dedup_empty () =
  Alcotest.(check int) "empty ok" 0 (List.length (Sec_dedup.run ctx ~mode:Sec_dedup.Replace []))

(* ---------------- SecUpdate ---------------- *)

let test_sec_update_match () =
  (* T = [(o1,W=10,B=26)], gamma = [(o1,w=6,B=22)]:
     o1's worst 10+6=16, best refreshed to 22; appended copy neutralized *)
  let t_list = [ scored "o1" 10 26 ] in
  let gamma = [ scored "o1" 6 22 ] in
  let out = Sec_update.run ctx ~mode:Sec_dedup.Replace ~t_list ~gamma in
  Alcotest.(check int) "replace keeps length" 2 (List.length out);
  let reals = List.map opened out |> List.filter_map (fun (id, w, b) -> Option.map (fun i -> (i, w, b)) id) in
  Alcotest.(check (list (triple string int int))) "merged" [ ("o1", 16, 22) ] reals

let test_sec_update_no_match () =
  let t_list = [ scored "o1" 10 26 ] in
  let gamma = [ scored "o2" 6 22 ] in
  let out = Sec_update.run ctx ~mode:Sec_dedup.Eliminate ~t_list ~gamma in
  let reals = List.map opened out |> List.filter_map (fun (id, w, b) -> Option.map (fun i -> (i, w, b)) id) in
  Alcotest.(check bool) "both present, untouched" true
    (List.sort compare reals = [ ("o1", 10, 26); ("o2", 6, 22) ])

let test_sec_update_eliminate_match () =
  let t_list = [ scored "o1" 10 26; scored "o2" 9 20 ] in
  let gamma = [ scored "o2" 4 18; scored "o3" 3 17 ] in
  let out = Sec_update.run ctx ~mode:Sec_dedup.Eliminate ~t_list ~gamma in
  Alcotest.(check int) "3 distinct" 3 (List.length out);
  let reals = List.map opened out |> List.filter_map (fun (id, w, b) -> Option.map (fun i -> (i, w, b)) id) in
  Alcotest.(check bool) "o2 merged" true
    (List.sort compare reals = [ ("o1", 10, 26); ("o2", 13, 18); ("o3", 3, 17) ])

let test_sec_update_replace_breaks_link () =
  (* the replaced appended copy must no longer equal the kept entry *)
  let t_list = [ scored "o1" 10 26 ] in
  let gamma = [ scored "o1" 6 22 ] in
  let out = Sec_update.run ctx ~mode:Sec_dedup.Replace ~t_list ~gamma in
  match List.map opened out with
  | [ _; _ ] ->
    let sentinels = List.filter (fun (id, _, _) -> id = None) (List.map opened out) in
    Alcotest.(check int) "one sentinel" 1 (List.length sentinels)
  | _ -> Alcotest.fail "expected two items"

(* ---------------- EncCompare ---------------- *)

let test_enc_compare () =
  Alcotest.(check bool) "3 <= 5" true (Enc_compare.leq ctx (enc 3) (enc 5));
  Alcotest.(check bool) "5 <= 3 is false" false (Enc_compare.leq ctx (enc 5) (enc 3));
  Alcotest.(check bool) "4 <= 4" true (Enc_compare.leq ctx (enc 4) (enc 4));
  (* signed sentinel: Z = -1 compares below 0 *)
  let z = Paillier.encrypt rng pub (Ctx.sentinel_z s1) in
  Alcotest.(check bool) "-1 <= 0" true (Enc_compare.leq ctx z (enc 0));
  Alcotest.(check bool) "0 <= -1 is false" false (Enc_compare.leq ctx (enc 0) z)

let test_enc_compare_dgk_known () =
  let check a b =
    Alcotest.(check bool)
      (Printf.sprintf "dgk %d <= %d" a b)
      (a <= b)
      (Enc_compare.leq_dgk ctx ~bits:16 (enc a) (enc b))
  in
  check 3 5;
  check 5 3;
  check 4 4;
  check 0 0;
  check 0 65535;
  check 65535 0;
  check 65535 65535

let prop_enc_compare_dgk =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"DGK comparison matches plaintext order"
       QCheck.(pair (int_bound 65535) (int_bound 65535))
       (fun (a, b) -> Enc_compare.leq_dgk ctx ~bits:16 (enc a) (enc b) = (a <= b)))

let prop_enc_compare =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"EncCompare matches plaintext order"
       QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
       (fun (a, b) -> Enc_compare.leq ctx (enc a) (enc b) = (a <= b)))

(* ---------------- EncSort ---------------- *)

let sort_test strategy () =
  let items =
    [ scored "o1" 10 26; scored "o2" 16 22; scored "o3" 13 21; scored "o4" 8 23; scored "o5" 1 9 ]
  in
  let out = Enc_sort.sort ctx ~strategy items in
  let worsts = List.map (fun it -> dec it.Enc_item.worst) out in
  Alcotest.(check (list int)) "descending by worst" [ 16; 13; 10; 8; 1 ] worsts;
  (* payloads stay attached to their keys *)
  let reals = List.map opened out |> List.filter_map (fun (id, w, b) -> Option.map (fun i -> (i, w, b)) id) in
  Alcotest.(check bool) "pairs intact" true
    (List.mem ("o2", 16, 22) reals && List.mem ("o5", 1, 9) reals)

let test_sort_sentinels_sink strategy () =
  let z = Ctx.sentinel_z s1 in
  let sentinel =
    {
      Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys "garbage";
      worst = Paillier.encrypt rng pub z;
      best = Paillier.encrypt rng pub z;
      seen = [| enc 1; enc 1 |];
    }
  in
  let items = [ sentinel; scored "o1" 0 5; scored "o2" 7 9 ] in
  let out = Enc_sort.sort ctx ~strategy items in
  let worsts = List.map (fun it -> dec_signed it.Enc_item.worst) out in
  Alcotest.(check (list string)) "sentinel last" [ "7"; "0"; "-1" ] worsts

let prop_enc_sort =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15 ~name:"EncSort = plaintext sort (both strategies)"
       QCheck.(pair (list_of_size (Gen.int_range 0 8) (int_bound 1000)) bool)
       (fun (scores, use_network) ->
         let items = List.mapi (fun i v -> scored ("o" ^ string_of_int i) v (v + 1)) scores in
         let strategy = if use_network then Enc_sort.Network else Enc_sort.Blinded in
         let out = Enc_sort.sort ctx ~strategy items in
         List.map (fun it -> dec it.Enc_item.worst) out
         = List.sort (fun a b -> compare b a) scores))

let test_sort_empty_single () =
  Alcotest.(check int) "empty" 0 (List.length (Enc_sort.sort ctx ~strategy:Enc_sort.Network []));
  let one = [ scored "o1" 5 6 ] in
  Alcotest.(check int) "single" 1 (List.length (Enc_sort.sort ctx ~strategy:Enc_sort.Network one))

(* ---------------- SecRefresh ---------------- *)

let test_sec_refresh () =
  (* item seen in list 0 only (seen = [1; 0]); W = 12, bottoms = [9; 4]:
     refreshed B = 12 + 4 (only the unseen list's bottom) *)
  let it = scored ~seen:[| 1; 0 |] "o1" 12 999 in
  let out = Sec_refresh.run ctx ~items:[ it ] ~bottoms:[| enc 9; enc 4 |] in
  Alcotest.(check int) "B = W + unseen bottoms" 16 (dec (List.hd out).Enc_item.best)

let test_sec_refresh_all_seen () =
  let it = scored ~seen:[| 1; 1 |] "o1" 20 999 in
  let out = Sec_refresh.run ctx ~items:[ it ] ~bottoms:[| enc 9; enc 4 |] in
  Alcotest.(check int) "B = W exactly" 20 (dec (List.hd out).Enc_item.best)

let test_sec_refresh_sentinel () =
  (* sentinel: W = -1 with all-ones seen stays at -1 *)
  let z = Ctx.sentinel_z s1 in
  let it =
    {
      Enc_item.ehl = Ehl.Ehl_plus.encode rng pub ~keys "g";
      worst = Paillier.encrypt rng pub z;
      best = Paillier.encrypt rng pub z;
      seen = [| enc 1; enc 1 |];
    }
  in
  let out = Sec_refresh.run ctx ~items:[ it ] ~bottoms:[| enc 9; enc 4 |] in
  Alcotest.(check string) "sentinel stays -1" "-1" (dec_signed (List.hd out).Enc_item.best)

(* ---------------- latency model ---------------- *)

let test_latency_model () =
  let ch = Channel.create () in
  Channel.send ch ~dir:Channel.S1_to_s2 ~label:"x" ~bytes:6_250_000 (* 50 Mbit *);
  Alcotest.(check bool) "1 second at 50 Mbps" true
    (abs_float (Channel.latency_seconds ~rtt_ms:0. ~bandwidth_mbps:50. ch -. 1.0) < 1e-9);
  Channel.round_trip ch;
  Channel.round_trip ch;
  Alcotest.(check bool) "rtt adds up" true
    (abs_float (Channel.latency_seconds ~rtt_ms:10. ~bandwidth_mbps:50. ch -. 1.02) < 1e-9);
  let snap = Channel.snapshot ch in
  Channel.send ch ~dir:Channel.S2_to_s1 ~label:"y" ~bytes:100;
  let d = Channel.diff snap (Channel.snapshot ch) in
  Alcotest.(check int) "diff isolates the new bytes" 100 d.Channel.bytes

(* ---------------- trace ---------------- *)

let test_trace_records () =
  let before = Trace.length (Ctx.trace ctx) in
  ignore (Enc_compare.leq ctx (enc 1) (enc 2));
  Alcotest.(check int) "one event recorded" (before + 1) (Trace.length (Ctx.trace ctx))

let suite =
  [ ("channel", [ Alcotest.test_case "accounting" `Quick test_channel ]);
    ( "gadgets",
      [ Alcotest.test_case "recover_enc" `Quick test_recover_enc;
        Alcotest.test_case "select_recover" `Quick test_select_recover
      ] );
    ( "gadgets-extra",
      [ Alcotest.test_case "lift Paillier -> DJ" `Quick test_lift;
        Alcotest.test_case "conjunction round" `Quick test_conjunction_round
      ] );
    ( "sec-worst",
      [ Alcotest.test_case "paper Example 8.1" `Quick test_sec_worst_no_match;
        Alcotest.test_case "sums matches" `Quick test_sec_worst_matches;
        Alcotest.test_case "no others" `Quick test_sec_worst_empty_others
      ] );
    ( "sec-best",
      [ Alcotest.test_case "unseen adds bottom" `Quick test_sec_best_unseen;
        Alcotest.test_case "seen uses known score" `Quick test_sec_best_seen;
        Alcotest.test_case "paper Example 8.2" `Quick test_sec_best_multi_list;
        Alcotest.test_case "empty history" `Quick test_sec_best_empty_history
      ] );
    ( "sec-dedup",
      [ Alcotest.test_case "replace mode" `Quick test_sec_dedup_replace;
        Alcotest.test_case "eliminate mode" `Quick test_sec_dedup_eliminate;
        Alcotest.test_case "no duplicates" `Quick test_sec_dedup_no_dupes;
        Alcotest.test_case "empty" `Quick test_sec_dedup_empty
      ] );
    ( "sec-update",
      [ Alcotest.test_case "match merges scores" `Quick test_sec_update_match;
        Alcotest.test_case "no match appends" `Quick test_sec_update_no_match;
        Alcotest.test_case "eliminate drops copy" `Quick test_sec_update_eliminate_match;
        Alcotest.test_case "replace neutralizes copy" `Quick test_sec_update_replace_breaks_link
      ] );
    ( "enc-compare",
      [ Alcotest.test_case "known orders + sentinel" `Quick test_enc_compare;
        Alcotest.test_case "DGK known orders" `Quick test_enc_compare_dgk_known;
        prop_enc_compare;
        prop_enc_compare_dgk
      ] );
    ( "enc-sort",
      [ Alcotest.test_case "blinded strategy" `Quick (sort_test Enc_sort.Blinded);
        Alcotest.test_case "network strategy" `Quick (sort_test Enc_sort.Network);
        Alcotest.test_case "sentinels sink (blinded)" `Quick (test_sort_sentinels_sink Enc_sort.Blinded);
        Alcotest.test_case "sentinels sink (network)" `Quick (test_sort_sentinels_sink Enc_sort.Network);
        Alcotest.test_case "empty and single" `Quick test_sort_empty_single;
        prop_enc_sort
      ] );
    ( "sec-refresh",
      [ Alcotest.test_case "adds unseen bottoms" `Quick test_sec_refresh;
        Alcotest.test_case "all seen -> B = W" `Quick test_sec_refresh_all_seen;
        Alcotest.test_case "sentinel stays -1" `Quick test_sec_refresh_sentinel
      ] );
    ("latency", [ Alcotest.test_case "50 Mbps link model" `Quick test_latency_model ]);
    ("trace", [ Alcotest.test_case "records events" `Quick test_trace_records ])
  ]

let () = Alcotest.run "proto" suite
