(* Batched-vs-singleton equivalence: with batching forced off every
   request travels in its own frame — the historical execution. Batching
   must change framing only: results (ciphertext-identical), S2 traces
   and crypto op counters are equal on both paths, while rounds drop for
   every fan-out protocol and bytes stay within a small tolerance (batch
   frames trade per-frame headers for 5-byte element prefixes). Checked
   on both local transports, so the Wire codec sees every batch shape. *)

open Bignum
open Crypto
open Dataset
open Topk
open Proto

let seed = "test_batch"
let key_bits = 128
let rand_bits = 96

let fig3 =
  Relation.create ~name:"fig3"
    [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

type outcome = {
  repr : string list;  (** scenario-defined result representation *)
  trace : Trace.event list;
  ops : (string * int) list;  (** crypto op counters — framing excluded *)
  bytes : int;
  msgs : int;
  rounds : int;
}

let framing_ops = [ "bytes"; "messages"; "rounds" ]

(* Run one scenario on a fresh seeded context; everything except
   [batching] is identical between the two runs being compared. *)
let run (mode : Ctx.mode) ~batching scenario : outcome =
  let prev = Obs.is_enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled prev)
    (fun () ->
      let pub, sk, ctx_rng, data_rng = Ctx.provision ~seed ~key_bits ~rand_bits () in
      let ctx = Ctx.with_batching (Ctx.of_keys ~blind_bits:48 ~mode ctx_rng pub sk) batching in
      let repr =
        Obs.with_collector ctx.Ctx.obs (fun () -> scenario ~pub ~sk ~data_rng ctx)
      in
      let chan = Ctx.channel ctx in
      let ops =
        Obs.Metrics.to_alist (Obs.Collector.metrics ctx.Ctx.obs)
        |> List.map (fun (op, v) -> (Obs.Metrics.name op, v))
        |> List.filter (fun (name, v) -> v > 0 && not (List.mem name framing_ops))
      in
      {
        repr;
        trace = Ctx.trace_events ctx;
        ops;
        bytes = Channel.bytes_total chan;
        msgs = Channel.messages_total chan;
        rounds = Channel.rounds_total chan;
      })

let nat_str (c : Paillier.ciphertext) = Nat.to_string (c :> Nat.t)

(* ---------------- scenarios ---------------- *)

let qry variant ~pub ~sk ~data_rng ctx =
  let er, key = Sectopk.Scheme.encrypt ~s:4 data_rng pub fig3 in
  let tk = Sectopk.Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2 in
  let res = Sectopk.Query.run ctx er tk { Sectopk.Query.default_options with variant } in
  let all_ids = List.init (Relation.n_rows fig3) (fun i -> Relation.object_id fig3 i) in
  let ids =
    List.map (fun (id, _, _) -> id) (Sectopk.Client.real_results ~sk ctx key ~ids:all_ids res)
  in
  string_of_int res.Sectopk.Query.halting_depth
  :: ids
  @ List.concat_map
      (fun (it : Enc_item.scored) ->
        nat_str it.worst :: nat_str it.best :: Array.to_list (Array.map nat_str it.seen))
      res.Sectopk.Query.top

let enc_sort strategy ~pub ~sk:_ ~data_rng ctx =
  let prf_keys = Prf.gen_keys data_rng 4 in
  let scores = [ 3; 9; 0; 7; 4; 1; 8; 2 ] in
  let items =
    List.mapi
      (fun i s ->
        {
          Enc_item.ehl = Ehl.Ehl_plus.encode data_rng pub ~keys:prf_keys (Printf.sprintf "o%d" i);
          worst = Paillier.encrypt data_rng pub (Nat.of_int s);
          best = Paillier.encrypt data_rng pub (Nat.of_int (s + 1));
          seen = [| Paillier.encrypt data_rng pub Nat.zero |];
        })
      scores
  in
  Enc_sort.sort ctx ~strategy items
  |> List.concat_map (fun (it : Enc_item.scored) -> [ nat_str it.worst; nat_str it.best ])

let r1 = Relation.create ~name:"r1" [| [| 1; 10 |]; [| 2; 20 |]; [| 3; 30 |]; [| 2; 5 |] |]
let r2 = Relation.create ~name:"r2" [| [| 2; 100 |]; [| 3; 50 |]; [| 9; 7 |] |]

let sec_join ~pub ~sk:_ ~data_rng ctx =
  let (e1, e2), key = Join.Join_scheme.encrypt_pair ~s:4 data_rng pub r1 r2 in
  let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:2 in
  let combined = Join.Sec_join.combine ctx e1 e2 tk in
  let surviving = Join.Sec_join.filter ctx combined in
  List.map (fun (t : Join.Sec_join.joined) -> nat_str t.Join.Sec_join.score) surviving

let sknn ~pub ~sk:_ ~data_rng ctx =
  let rel =
    Relation.create ~name:"pts" [| [| 0; 0 |]; [| 10; 10 |]; [| 1; 1 |]; [| 5; 5 |] |]
  in
  let db = Sknn.encrypt_db data_rng pub rel in
  List.map string_of_int (Sknn.query ctx db ~point:[| 0; 1 |] ~k:2)

(* ---------------- the equivalence check ---------------- *)

let check_equiv name ~reduces (mode : Ctx.mode) scenario =
  let batched = run mode ~batching:true scenario in
  let single = run mode ~batching:false scenario in
  Alcotest.(check (list string)) (name ^ ": results byte-identical") single.repr batched.repr;
  Alcotest.(check bool) (name ^ ": S2 trace identical") true (single.trace = batched.trace);
  Alcotest.(check (list (pair string int))) (name ^ ": crypto op counters") single.ops
    batched.ops;
  if reduces then begin
    Alcotest.(check bool)
      (Printf.sprintf "%s: rounds drop (%d -> %d)" name single.rounds batched.rounds)
      true
      (batched.rounds < single.rounds);
    Alcotest.(check bool)
      (Printf.sprintf "%s: messages drop (%d -> %d)" name single.msgs batched.msgs)
      true
      (batched.msgs < single.msgs)
  end
  else begin
    Alcotest.(check int) (name ^ ": rounds unchanged") single.rounds batched.rounds;
    Alcotest.(check int) (name ^ ": bytes unchanged") single.bytes batched.bytes
  end;
  (* batch framing trades per-frame headers + labels for 5-byte element
     prefixes: payload dominates, so batching saves a little and never
     costs — total bytes land in [single/2, single] *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: bytes bounded (%d vs %d)" name single.bytes batched.bytes)
    true
    (batched.bytes <= single.bytes && 2 * batched.bytes >= single.bytes)

let scenarios =
  [ ("qry_f", true, qry Sectopk.Query.Full);
    ("qry_e", true, qry Sectopk.Query.Elim);
    ("enc_sort_network", true, enc_sort Enc_sort.Network);
    ("enc_sort_blinded", false, enc_sort Enc_sort.Blinded);
    ("sec_join", true, sec_join);
    ("sknn", true, sknn) ]

let cases mode_name mode =
  List.map
    (fun (name, reduces, scenario) ->
      Alcotest.test_case name `Slow (fun () ->
          check_equiv (mode_name ^ "/" ^ name) ~reduces mode scenario))
    scenarios

let suite = [ ("inproc", cases "inproc" Ctx.Inproc); ("loopback", cases "loopback" Ctx.Loopback) ]
let () = Alcotest.run "batch" suite
