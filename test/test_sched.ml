(* Round-scheduler coalescing: concurrent queries parked at a shared
   Sched must produce byte-identical per-query results, op counters and
   S2 traces vs the dedicated-transport baseline — coalescing may change
   only who carries the frames and how many merged trips ship. Also
   pinned: the trip count collapses toward a single query's round budget
   when queries run in lockstep, randomized park/resume orderings never
   deadlock or cross-deliver slices (QCheck), and a broken backend
   surfaces as a typed Proto_error instead of killing domains. *)

open Dataset
open Topk
open Proto

let seed = "test_sched"
let key_bits = 128
let rand_bits = 96

let fig3 =
  Relation.create ~name:"fig3"
    [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

let hello =
  { Wire.seed; key_bits; rand_bits = Some rand_bits; obs = true }

(* What one query leaves behind; [ops] includes the framing counters
   (bytes/messages/rounds) — the Mux transport charges the same closed
   forms as Inproc, so even those must match the baseline exactly. *)
type outcome = {
  repr : string list;
  ops : (string * int) list;
  rounds : int;
}

let collect_ops col =
  Obs.Metrics.to_alist (Obs.Collector.metrics col)
  |> List.map (fun (op, v) -> (Obs.Metrics.name op, v))
  |> List.filter (fun (_, v) -> v > 0)

(* The fig3 top-k query, parameterized by [k] so interleaved queries can
   differ (different round counts, different answers — a routing mistake
   cannot cancel out). *)
let scenario ~k ~pub ~sk ~data_rng ctx =
  let er, key = Sectopk.Scheme.encrypt ~s:4 data_rng pub fig3 in
  let tk = Sectopk.Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k in
  let res = Sectopk.Query.run ctx er tk Sectopk.Query.default_options in
  let all_ids = List.init (Relation.n_rows fig3) (fun i -> Relation.object_id fig3 i) in
  let ids =
    List.map (fun (id, _, _) -> id) (Sectopk.Client.real_results ~sk ctx key ~ids:all_ids res)
  in
  let nat_str (c : Crypto.Paillier.ciphertext) = Bignum.Nat.to_string (c :> Bignum.Nat.t) in
  string_of_int res.Sectopk.Query.halting_depth
  :: ids
  @ List.concat_map
      (fun (it : Enc_item.scored) ->
        nat_str it.worst :: nat_str it.best :: Array.to_list (Array.map nat_str it.seen))
      res.Sectopk.Query.top

(* One query on a fresh seeded context. [mode] is the only difference
   between baseline and coalesced runs; the per-query collector wraps the
   scenario exactly (provisioning and S2 setup stay outside on both
   paths). Returns the outcome and the S2 trace source. *)
let run_one ~k mode =
  let pub, sk, ctx_rng, data_rng = Ctx.provision ~seed ~key_bits ~rand_bits () in
  let ctx = Ctx.of_keys ~blind_bits:48 ~mode ctx_rng pub sk in
  let repr = Obs.with_collector ctx.Ctx.obs (fun () -> scenario ~k ~pub ~sk ~data_rng ctx) in
  {
    repr;
    ops = collect_ops ctx.Ctx.obs;
    rounds = Channel.rounds_total (Ctx.channel ctx);
  }

(* A coalescing harness: local in-process backend whose [make] replays
   the client's provisioning (what the daemon does per Mux_open) and
   records each root responder so the test can read per-session traces
   afterwards. *)
type harness = {
  sched : Sched.t;
  reg : Obs.Registry.t;
  roots : (int, S2_server.t) Hashtbl.t;
  roots_lock : Mutex.t;
}

let make_harness ~window_us =
  let roots = Hashtbl.create 8 in
  let roots_lock = Mutex.create () in
  let make ~session =
    let s = S2_server.of_hello hello in
    Mutex.lock roots_lock;
    Hashtbl.replace roots session s;
    Mutex.unlock roots_lock;
    s
  in
  let st = S2_server.mux_state ~make in
  let reg = Obs.Registry.create () in
  let sched =
    Sched.create ~window_us ~registry:reg ~backend:(S2_server.handle_mux_ops st) ()
  in
  { sched; reg; roots; roots_lock }

let counter_of snap name =
  match List.assoc_opt name snap with Some (Obs.Registry.Counter v) -> v | _ -> 0

(* [n] concurrent queries (query [i] with [ks.(i)]) through one shared
   scheduler; returns per-query outcomes, per-query S2 traces and the
   scheduler's registry snapshot. *)
let run_coalesced ~window_us ks =
  let n = Array.length ks in
  let h = make_harness ~window_us in
  let outs = Array.make n None in
  let doms =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            let session = Sched.open_query h.sched in
            let out = run_one ~k:ks.(i) (Ctx.Mux (h.sched, session)) in
            Sched.close_query h.sched session;
            outs.(i) <- Some (session, out)))
  in
  Array.iter Domain.join doms;
  Sched.stop h.sched;
  let snap = Obs.Registry.snapshot h.reg in
  let results =
    Array.map
      (fun o ->
        let session, out = Option.get o in
        let trace = Trace.events (S2_server.trace (Hashtbl.find h.roots session)) in
        (out, trace))
      outs
  in
  (results, snap)

let check_query_equiv name (base : outcome) base_trace ((out : outcome), trace) =
  Alcotest.(check (list string)) (name ^ ": results byte-identical") base.repr out.repr;
  Alcotest.(check (list (pair string int)))
    (name ^ ": op counters (incl. framing)")
    base.ops out.ops;
  Alcotest.(check int) (name ^ ": per-query rounds") base.rounds out.rounds;
  Alcotest.(check bool) (name ^ ": S2 trace identical") true (base_trace = trace)

(* Baseline trace needs a server handle; Inproc exposes it via the ctx. *)
let baseline ~k =
  let pub, sk, ctx_rng, data_rng = Ctx.provision ~seed ~key_bits ~rand_bits () in
  let ctx = Ctx.of_keys ~blind_bits:48 ~mode:Ctx.Inproc ctx_rng pub sk in
  let repr = Obs.with_collector ctx.Ctx.obs (fun () -> scenario ~k ~pub ~sk ~data_rng ctx) in
  ( {
      repr;
      ops = collect_ops ctx.Ctx.obs;
      rounds = Channel.rounds_total (Ctx.channel ctx);
    },
    Ctx.trace_events ctx )

let with_obs f =
  let prev = Obs.is_enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled prev) f

(* ---------------- equivalence ---------------- *)

(* Mixed workload: four interleaved queries, two round-count classes.
   Every query must land byte-identical to its dedicated-transport twin,
   and the merged trips must undercut the uncoalesced total. *)
let test_equivalence_mixed () =
  with_obs (fun () ->
      let base1 = baseline ~k:1 and base2 = baseline ~k:2 in
      let ks = [| 2; 1; 2; 1 |] in
      let results, snap = run_coalesced ~window_us:10_000 ks in
      Array.iteri
        (fun i r ->
          let b, bt = if ks.(i) = 1 then base1 else base2 in
          check_query_equiv (Printf.sprintf "q%d(k=%d)" i ks.(i)) b bt r)
        results;
      let trips = counter_of snap "coalesced_rounds" in
      let saved = counter_of snap "rounds_saved" in
      let sum_rounds = Array.fold_left (fun a (o, _) -> a + o.rounds) 0 results in
      Alcotest.(check bool)
        (Printf.sprintf "trips %d < uncoalesced total %d" trips sum_rounds)
        true (trips < sum_rounds);
      Alcotest.(check bool) "rounds actually saved" true (saved > 0);
      (match List.assoc_opt "parked_queries" snap with
      | Some (Obs.Registry.Gauge g) -> Alcotest.(check (float 0.)) "nothing parked" 0. g
      | _ -> Alcotest.fail "parked_queries gauge missing"))

(* Lockstep workload: four identical queries. The all-parked ship rule
   should merge them near-perfectly, so total trips stay within 2x one
   query's round budget — vs 4x for dedicated transports. The window is
   generous because S1 compute between parks is real crypto here: on
   contended cores the skew between identical queries can reach tens of
   milliseconds, and a straggler missing the window splits the trip. *)
let test_lockstep_trip_budget () =
  with_obs (fun () ->
      let base, _ = baseline ~k:2 in
      (* the single-client trip budget: a lone query at window 0 ships
         every parked op alone, so its trip count is exactly the
         per-query op count (rpc rounds + fork/join/open/close) *)
      let _, snap1 = run_coalesced ~window_us:0 [| 2 |] in
      let single_trips = counter_of snap1 "coalesced_rounds" in
      let results, snap = run_coalesced ~window_us:200_000 [| 2; 2; 2; 2 |] in
      Array.iter
        (fun (o, _) ->
          Alcotest.(check (list string)) "lockstep results" base.repr o.repr)
        results;
      let trips = counter_of snap "coalesced_rounds" in
      Alcotest.(check bool)
        (Printf.sprintf "4-client trips %d <= 2x single budget %d (vs 4x = %d uncoalesced)"
           trips single_trips (4 * single_trips))
        true
        (trips <= 2 * single_trips))

(* A single query through the scheduler is the degenerate case: every op
   ships alone, still byte-identical. Window 0 = opportunistic mode. *)
let test_single_query () =
  with_obs (fun () ->
      let base, bt = baseline ~k:2 in
      let results, snap = run_coalesced ~window_us:0 [| 2 |] in
      check_query_equiv "single" base bt results.(0);
      let trips = counter_of snap "coalesced_rounds" in
      Alcotest.(check bool)
        (Printf.sprintf "%d trips >= %d rounds" trips base.rounds)
        true
        (trips >= base.rounds))

(* ---------------- scheduler core (no crypto) ---------------- *)

(* Pure echo backend: the reply encodes (session, label), so a slice
   delivered to the wrong query is always detectable. *)
let echo v_of ops =
  List.map
    (fun (op, _col) ->
      match op with
      | Wire.Mux_req { session; label; _ } -> Wire.Mux_answer (Wire.Slot (Some (v_of session label)))
      | _ -> Wire.Mux_ok)
    ops

let slot_value session label = Hashtbl.hash (session, label) land 0xffffff

(* Randomized park/resume orderings: every query must complete (no
   deadlock at any window, including 0 and one big enough that only the
   all-parked rule ships) and receive exactly its own replies. *)
let prop_random_orderings =
  QCheck.Test.make ~count:20 ~name:"random park/resume: completion + correct slices"
    QCheck.(triple (int_range 1 5) (int_range 0 1000) (int_range 0 2))
    (fun (nq, mix, wsel) ->
      let window_us = [| 0; 200; 5_000 |].(wsel) in
      let sched = Sched.create ~window_us ~backend:(echo slot_value) () in
      let ok = Array.make nq true in
      let doms =
        Array.init nq (fun q ->
            Domain.spawn (fun () ->
                let session = Sched.open_query sched in
                let nops = (mix + (7 * q)) mod 7 in
                for j = 0 to nops - 1 do
                  let label = Printf.sprintf "q%d:%d" session j in
                  (match
                     Sched.submit sched
                       (Wire.Mux_req { session; label; req = Wire.Zero_slot [] })
                   with
                  | Wire.Mux_answer (Wire.Slot (Some v)) when v = slot_value session label -> ()
                  | _ -> ok.(q) <- false);
                  (* stagger the parks so batches form and break up *)
                  if (mix + j + q) mod 3 = 0 then
                    Unix.sleepf (float_of_int ((mix + j) mod 4) *. 2e-4)
                done;
                Sched.close_query sched session))
      in
      Array.iter Domain.join doms;
      Sched.stop sched;
      Array.for_all Fun.id ok)

(* Sustained window-0 load writes far more wake bytes than the self-pipe
   holds. The pipe is non-blocking on both ends, so overflow drops the
   byte (one is already in there to fire the select); a blocking pipe
   would deadlock every query once it filled — a submitter stuck in
   write holding the scheduler lock, the shipper stuck on the lock,
   nobody reading. *)
let test_wake_pipe_flood () =
  let sched = Sched.create ~window_us:0 ~backend:(echo slot_value) () in
  let nq = 5 and nops = 20_000 in
  let ok = Array.make nq true in
  let doms =
    Array.init nq (fun q ->
        Domain.spawn (fun () ->
            let session = Sched.open_query sched in
            for j = 0 to nops - 1 do
              let label = string_of_int j in
              match
                Sched.submit sched
                  (Wire.Mux_req { session; label; req = Wire.Zero_slot [] })
              with
              | Wire.Mux_answer (Wire.Slot (Some v)) when v = slot_value session label -> ()
              | _ -> ok.(q) <- false
            done;
            Sched.close_query sched session))
  in
  Array.iter Domain.join doms;
  Sched.stop sched;
  Alcotest.(check bool) "all queries completed with correct slices" true
    (Array.for_all Fun.id ok)

(* Forks allocate child sessions and route by them too. *)
let test_fork_routing () =
  let sched = Sched.create ~window_us:0 ~backend:(echo slot_value) () in
  let parent = Sched.open_query sched in
  let child = Sched.alloc_session sched in
  (match Sched.submit sched (Wire.Mux_fork { parent; child; label = "par:0" }) with
  | Wire.Mux_ok -> ()
  | _ -> Alcotest.fail "fork not acked");
  (match
     Sched.submit sched (Wire.Mux_req { session = child; label = "c"; req = Wire.Zero_slot [] })
   with
  | Wire.Mux_answer (Wire.Slot (Some v)) ->
    Alcotest.(check int) "child slice" (slot_value child "c") v
  | _ -> Alcotest.fail "child got no slice");
  (match Sched.submit sched (Wire.Mux_join { parent; child }) with
  | Wire.Mux_ok -> ()
  | _ -> Alcotest.fail "join not acked");
  Sched.close_query sched parent;
  Sched.stop sched

(* ---------------- failure paths ---------------- *)

let expect_proto_error name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Proto_error.Proto_error _ -> true)

(* A backend crash answers every parked caller; the shipper survives and
   later submissions still get typed answers. *)
let test_backend_failure () =
  let boom = ref true in
  let backend ops = if !boom then failwith "boom" else echo slot_value ops in
  let sched = Sched.create ~window_us:0 ~backend () in
  Alcotest.(check bool) "backend exn surfaces" true
    (try
       ignore (Sched.open_query sched);
       false
     with Failure msg -> msg = "boom");
  boom := false;
  let session = Sched.open_query sched in
  Sched.close_query sched session;
  Sched.stop sched;
  expect_proto_error "submit after stop" (fun () ->
      Sched.submit sched (Wire.Mux_req { session = 1; label = "x"; req = Wire.Zero_slot [] }))

let test_reply_count_mismatch () =
  let sched = Sched.create ~window_us:0 ~backend:(fun _ -> []) () in
  expect_proto_error "arity mismatch is typed" (fun () -> Sched.open_query sched);
  Sched.stop sched

(* A reconnecting backend reports connection loss as Backend_lost: the
   sessions that lived on the dead connection fail with a typed error
   and their cleanup ops are answered locally (never shipped, where
   they would desync the fresh connection), while new queries open new
   sessions and are served immediately. *)
let test_backend_lost_recovery () =
  let lose = ref false in
  let shipped = ref 0 in (* ops the backend actually saw *)
  let backend ops =
    if !lose then begin
      lose := false;
      raise (Sched.Backend_lost "eof")
    end;
    shipped := !shipped + List.length ops;
    echo slot_value ops
  in
  let sched = Sched.create ~window_us:0 ~backend () in
  let a = Sched.open_query sched in
  lose := true;
  expect_proto_error "req on lost connection" (fun () ->
      Sched.submit sched (Wire.Mux_req { session = a; label = "x"; req = Wire.Zero_slot [] }));
  let before = !shipped in
  expect_proto_error "stale close is a typed error" (fun () -> Sched.close_query sched a);
  Alcotest.(check int) "stale close answered locally, not shipped" before !shipped;
  let b = Sched.open_query sched in
  (match
     Sched.submit sched (Wire.Mux_req { session = b; label = "y"; req = Wire.Zero_slot [] })
   with
  | Wire.Mux_answer (Wire.Slot (Some v)) ->
    Alcotest.(check int) "new session served on new connection" (slot_value b "y") v
  | _ -> Alcotest.fail "new session not served");
  Sched.close_query sched b;
  Sched.stop sched

(* close_query racing past stop must raise, not park an entry no shipper
   will ever drain (the caller would hang in Ivar.read forever). *)
let test_close_after_stop () =
  let sched = Sched.create ~window_us:0 ~backend:(echo slot_value) () in
  let session = Sched.open_query sched in
  Sched.stop sched;
  expect_proto_error "close after stop" (fun () -> Sched.close_query sched session)

(* A failed open must not leak its registration: with a big window, a
   leaked count would disable the all-parked fast path and make every
   later lone op wait the window out. *)
let test_open_failure_no_leak () =
  let boom = ref true in
  let backend ops = if !boom then failwith "boom" else echo slot_value ops in
  let sched = Sched.create ~window_us:500_000 ~backend () in
  (try ignore (Sched.open_query sched) with Failure _ -> ());
  boom := false;
  let t0 = Unix.gettimeofday () in
  let session = Sched.open_query sched in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "all-parked fast path still fires (%.0f ms < window)" (dt *. 1000.))
    true (dt < 0.4);
  Sched.close_query sched session;
  Sched.stop sched

(* A desynced S2 answering a Batch with the wrong arity must surface as
   Proto_error from Ctx.rpc_batch (the serving layer maps it to
   Server_error), not as a domain-killing Failure. *)
let test_rpc_batch_desync () =
  let backend ops =
    List.map
      (fun (op, _) ->
        match op with
        | Wire.Mux_req { req = Wire.Batch _; _ } ->
          Wire.Mux_answer (Wire.Batch_resp []) (* wrong arity *)
        | Wire.Mux_req _ -> Wire.Mux_answer (Wire.Bit true)
        | _ -> Wire.Mux_ok)
      ops
  in
  let sched = Sched.create ~window_us:0 ~backend () in
  let session = Sched.open_query sched in
  let pub, sk, ctx_rng, _ = Ctx.provision ~seed ~key_bits ~rand_bits () in
  let ctx = Ctx.of_keys ~blind_bits:48 ~mode:(Ctx.Mux (sched, session)) ctx_rng pub sk in
  expect_proto_error "batch arity desync" (fun () ->
      Ctx.rpc_batch ctx ~label:"t" [ Wire.Zero_slot []; Wire.Zero_slot [] ]);
  Sched.close_query sched session;
  Sched.stop sched

let suite =
  [ ( "coalescing",
      [ Alcotest.test_case "mixed workload equivalence" `Slow test_equivalence_mixed;
        Alcotest.test_case "lockstep trip budget" `Slow test_lockstep_trip_budget;
        Alcotest.test_case "single query" `Slow test_single_query ] );
    ( "scheduler",
      [ QCheck_alcotest.to_alcotest prop_random_orderings;
        Alcotest.test_case "wake pipe flood" `Slow test_wake_pipe_flood;
        Alcotest.test_case "fork routing" `Quick test_fork_routing ] );
    ( "failures",
      [ Alcotest.test_case "backend crash" `Quick test_backend_failure;
        Alcotest.test_case "reply arity" `Quick test_reply_count_mismatch;
        Alcotest.test_case "connection loss recovery" `Quick test_backend_lost_recovery;
        Alcotest.test_case "close after stop" `Quick test_close_after_stop;
        Alcotest.test_case "open failure leak" `Quick test_open_failure_no_leak;
        Alcotest.test_case "rpc_batch desync" `Quick test_rpc_batch_desync ] ) ]

let () = Alcotest.run "sched" suite
