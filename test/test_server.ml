(* lib/server acceptance tests: a served query is byte-identical to the
   sequential in-process path, >= 4 simultaneous clients each receive
   exactly the sequential results, admission overflow is a typed [Busy]
   (never a hang, never a wrong answer), malformed frames get
   [Server_error] without killing the connection, and shutdown drains
   cleanly.  The bounded worker pool itself ([Core.Service]) is driven
   deterministically with gate-controlled jobs. *)

open Dataset
open Topk
open Proto

let seed = "serve-test"
let key_bits = 128
let rand_bits = 96

let fig3 =
  Relation.create ~name:"fig3"
    [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

(* provision once: the store the server opens, and the client-side keys *)
let pub, sk, ctx_rng0, data_rng0 = Ctx.provision ~seed ~key_bits ~rand_bits ()
let er, key = Sectopk.Scheme.encrypt ~s:4 data_rng0 pub fig3

let wkeys =
  let kctx = Ctx.of_keys ~blind_bits:48 ~mode:Ctx.Inproc ctx_rng0 pub sk in
  Transport.keys kctx.Ctx.transport

let token = Sectopk.Codec.encode_token (Sectopk.Scheme.token key ~m_total:3 (Scoring.sum_of [ 0; 1; 2 ]) ~k:2)

let counter = ref 0

let store_dir () =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "test_server_%d_%d" (Unix.getpid ()) !counter)
  in
  Store.build ~dir pub er;
  dir

let cfg workers queue_depth =
  {
    Server.default_config with
    Server.seed;
    key_bits;
    rand_bits = Some rand_bits;
    workers;
    queue_depth;
  }

let with_server ?(workers = 2) ?(queue_depth = 8) f =
  let st = Store.open_index ~dir:(store_dir ()) pub in
  let srv = Server.start (cfg workers queue_depth) st in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Store.close st)
    (fun () -> f srv)

(* ---------------- a tiny blocking client ---------------- *)

let connect port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close fd;
     raise e);
  fd

let read_msg fd =
  match Wire.read_frame fd with
  | None -> Alcotest.fail "server closed the connection mid-exchange"
  | Some frame -> Wire.decode_server_msg wkeys frame

let with_client port f =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      (match read_msg fd with
      | Wire.Server_hello { n = 5; m = 3; s = 4; key_bits = 128 } -> ()
      | _ -> Alcotest.fail "unexpected hello");
      f fd)

let ask fd token =
  Wire.write_frame fd (Wire.encode_client_msg (Wire.Query_req { token }));
  read_msg fd

(* the sequential never-served reference: same seed, same relation *)
let expected_resp () =
  let pub, sk, ctx_rng, _ = Ctx.provision ~seed ~key_bits ~rand_bits () in
  let ctx = Ctx.of_keys ~blind_bits:48 ~mode:Ctx.Inproc ctx_rng pub sk in
  let tk = Sectopk.Codec.decode_token token in
  let res = Sectopk.Query.run ctx er tk Sectopk.Query.default_options in
  Wire.Query_resp
    {
      top = res.Sectopk.Query.top;
      halting_depth = res.Sectopk.Query.halting_depth;
      halted = res.Sectopk.Query.halted;
    }

(* byte identity, via the canonical encoding *)
let msg_eq a b = Wire.encode_server_msg wkeys a = Wire.encode_server_msg wkeys b

(* decrypt a response's winners, as a real socket-mode client would *)
let ids_of_resp name resp =
  match resp with
  | Wire.Query_resp { top; halting_depth; halted } ->
    let res = { Sectopk.Query.top; halting_depth; halted; depth_seconds = [||] } in
    let _, sk', ctx_rng, _ = Ctx.provision ~seed ~key_bits ~rand_bits () in
    let ctx = Ctx.of_keys ~blind_bits:48 ~mode:Ctx.Inproc ctx_rng pub sk' in
    let all_ids = List.init 5 (fun i -> Relation.object_id fig3 i) in
    List.map (fun (id, _, _) -> id)
      (Sectopk.Client.real_results ~sk:sk' ctx key ~ids:all_ids res)
  | _ -> Alcotest.fail (name ^ ": not a Query_resp")

let check_is_expected name expected resp =
  Alcotest.(check bool) name true (msg_eq expected resp);
  Alcotest.(check (list string))
    (name ^ ": decrypted ids")
    (ids_of_resp "expected" expected)
    (ids_of_resp name resp);
  Alcotest.(check int) (name ^ ": k winners") 2 (List.length (ids_of_resp name resp))

(* ---------------- Core.Service (deterministic overload) ---------------- *)

module Gate = struct
  type t = { m : Mutex.t; c : Condition.t; mutable open_ : bool }

  let create () = { m = Mutex.create (); c = Condition.create (); open_ = false }

  let wait t =
    Mutex.lock t.m;
    while not t.open_ do
      Condition.wait t.c t.m
    done;
    Mutex.unlock t.m

  let open_ t =
    Mutex.lock t.m;
    t.open_ <- true;
    Condition.broadcast t.c;
    Mutex.unlock t.m
end

let test_service_busy () =
  let svc = Core.Service.create ~domains:1 ~queue_depth:1 in
  let started = Gate.create () and release = Gate.create () in
  let ran = Atomic.make 0 in
  let blocker () =
    Gate.open_ started;
    Gate.wait release;
    Atomic.incr ran
  in
  Alcotest.(check bool) "first job admitted" true (Core.Service.submit svc blocker = `Accepted);
  Gate.wait started;
  (* worker busy: one queue slot left, then hard Busy *)
  Alcotest.(check bool) "queue slot admitted" true
    (Core.Service.submit svc (fun () -> Atomic.incr ran) = `Accepted);
  Alcotest.(check bool) "overflow is Busy" true (Core.Service.submit svc ignore = `Busy);
  Alcotest.(check bool) "still Busy" true (Core.Service.submit svc ignore = `Busy);
  Gate.open_ release;
  Core.Service.drain svc;
  Alcotest.(check int) "admitted jobs all ran" 2 (Atomic.get ran);
  (* a drained service admits nothing *)
  Alcotest.(check bool) "drained is Busy" true (Core.Service.submit svc ignore = `Busy)

let test_service_runs_everything () =
  let svc = Core.Service.create ~domains:4 ~queue_depth:64 in
  let ran = Atomic.make 0 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "admitted" true
      (Core.Service.submit svc (fun () -> Atomic.incr ran) = `Accepted)
  done;
  Core.Service.drain svc;
  Alcotest.(check int) "all 50 ran" 50 (Atomic.get ran)

let test_service_swallows_exceptions () =
  let svc = Core.Service.create ~domains:1 ~queue_depth:4 in
  let ran = Atomic.make 0 in
  ignore (Core.Service.submit svc (fun () -> failwith "job crashed"));
  ignore (Core.Service.submit svc (fun () -> Atomic.incr ran));
  Core.Service.drain svc;
  Alcotest.(check int) "worker survived the crash" 1 (Atomic.get ran)

(* ---------------- the served path ---------------- *)

let test_sequential_identity () =
  with_server (fun srv ->
      let expected = expected_resp () in
      with_client (Server.port srv) (fun fd ->
          check_is_expected "first query" expected (ask fd token);
          (* the session loops: a second query on the same connection *)
          check_is_expected "second query" expected (ask fd token));
      let st = Server.stats srv in
      Alcotest.(check int) "served" 2 st.Server.served;
      Alcotest.(check int) "no errors" 0 st.Server.errors;
      Alcotest.(check bool) "queue time measured" true (st.Server.query_seconds > 0.))

let test_concurrent_clients () =
  with_server ~workers:2 ~queue_depth:8 (fun srv ->
      let expected = expected_resp () in
      let port = Server.port srv in
      let clients =
        List.init 4 (fun i ->
            Domain.spawn (fun () -> with_client port (fun fd -> (i, ask fd token))))
      in
      List.iter
        (fun d ->
          let i, resp = Domain.join d in
          check_is_expected (Printf.sprintf "client %d" i) expected resp)
        clients;
      let st = Server.stats srv in
      Alcotest.(check int) "all four served" 4 st.Server.served;
      Alcotest.(check int) "none turned away" 0 st.Server.busy)

let test_overload_returns_busy () =
  (* capacity 1 (one worker, empty queue): 6 simultaneous queries cannot
     all be admitted; the turned-away ones must get Busy immediately and
     every admitted one must still be exactly right *)
  with_server ~workers:1 ~queue_depth:0 (fun srv ->
      let expected = expected_resp () in
      let port = Server.port srv in
      let clients =
        List.init 6 (fun _ ->
            Domain.spawn (fun () -> with_client port (fun fd -> ask fd token)))
      in
      let resps = List.map Domain.join clients in
      let busy, ok =
        List.partition (function Wire.Busy -> true | _ -> false) resps
      in
      List.iter (fun r -> check_is_expected "admitted under overload" expected r) ok;
      Alcotest.(check int) "every query answered" 6 (List.length busy + List.length ok);
      Alcotest.(check bool) "at least one served" true (List.length ok >= 1);
      let st = Server.stats srv in
      Alcotest.(check int) "stats add up" 6 (st.Server.served + st.Server.busy);
      Alcotest.(check int) "busy counted" (List.length busy) st.Server.busy)

let test_bad_token_is_typed_error () =
  with_server (fun srv ->
      let expected = expected_resp () in
      with_client (Server.port srv) (fun fd ->
          (match ask fd "not a token" with
          | Wire.Server_error _ -> ()
          | _ -> Alcotest.fail "garbage token must yield Server_error");
          (* the connection survives and still serves real queries *)
          check_is_expected "after error" expected (ask fd token));
      let st = Server.stats srv in
      Alcotest.(check int) "error counted" 1 st.Server.errors;
      Alcotest.(check int) "good query served" 1 st.Server.served)

let test_malformed_frame_keeps_session () =
  with_server (fun srv ->
      let expected = expected_resp () in
      with_client (Server.port srv) (fun fd ->
          (* a frame that is not a client message at all: answered with
             Server_error, and the session keeps serving *)
          Wire.write_frame fd "\xff\xfenot a client message";
          (match read_msg fd with
          | Wire.Server_error _ -> ()
          | _ -> Alcotest.fail "garbage frame must yield Server_error");
          check_is_expected "query after garbage frame" expected (ask fd token));
      let st = Server.stats srv in
      Alcotest.(check int) "error counted" 1 st.Server.errors;
      Alcotest.(check int) "good query served" 1 st.Server.served)

(* ---------------- live telemetry ---------------- *)

let snap_counter snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Registry.Counter v) -> v
  | _ -> Alcotest.failf "no counter %s in snapshot" name

let snap_hist snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Registry.Histogram d) -> d
  | _ -> Alcotest.failf "no histogram %s in snapshot" name

let scrape port =
  Transport.scrape_stats (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let test_live_scrape () =
  (* scrape over the wire while 4 clients are mid-query, then again after
     they finish: the final counts must equal ground truth exactly *)
  with_server ~workers:2 ~queue_depth:8 (fun srv ->
      let expected = expected_resp () in
      let port = Server.port srv in
      let clients =
        List.init 4 (fun i ->
            Domain.spawn (fun () -> with_client port (fun fd -> (i, ask fd token))))
      in
      (* mid-load scrape: a fresh key-less connection, served while query
         sessions are running; counts are a consistent prefix *)
      let mid = scrape port in
      let mid_served = snap_counter mid "served" in
      Alcotest.(check bool) "mid-load served in range" true (mid_served >= 0 && mid_served <= 4);
      Alcotest.(check bool) "mid-load snapshot torn-read-free" true
        ((snap_hist mid "exec_us").Obs.Registry.hcount
         = mid_served + snap_counter mid "errors");
      List.iter
        (fun d ->
          let i, resp = Domain.join d in
          check_is_expected (Printf.sprintf "client %d" i) expected resp)
        clients;
      let snap = scrape port in
      Alcotest.(check int) "served equals ground truth" 4 (snap_counter snap "served");
      Alcotest.(check int) "no busy" 0 (snap_counter snap "busy");
      Alcotest.(check int) "no errors" 0 (snap_counter snap "errors");
      let exec = snap_hist snap "exec_us" and qwait = snap_hist snap "queue_wait_us" in
      Alcotest.(check int) "exec histogram count" 4 exec.Obs.Registry.hcount;
      Alcotest.(check int) "queue-wait histogram count" 4 qwait.Obs.Registry.hcount;
      Alcotest.(check bool) "exec histogram non-zero" true (exec.Obs.Registry.hsum > 0);
      Alcotest.(check int) "rounds histogram count" 4
        (snap_hist snap "query_rounds").Obs.Registry.hcount;
      Alcotest.(check bool) "bytes recorded" true
        ((snap_hist snap "query_bytes").Obs.Registry.hsum > 0);
      (* the scraped snapshot matches the in-process registry and the
         derived legacy stats view *)
      let st = Server.stats srv in
      Alcotest.(check int) "derived view served" (snap_counter snap "served") st.Server.served;
      Alcotest.(check bool) "derived seconds from histograms" true
        (st.Server.query_seconds >= float_of_int exec.Obs.Registry.hsum /. 1e6 -. 1e-9);
      (* and it survives the JSON + Prometheus codecs *)
      Alcotest.(check bool) "json roundtrip" true
        (Obs.Registry.of_json (Obs.Registry.to_json snap) = snap);
      Alcotest.(check bool) "prometheus non-empty" true
        (String.length (Obs.Registry.to_prometheus snap) > 0))

let test_query_log_and_traces () =
  let tmp = Filename.temp_file "test_server_qlog" ".jsonl" in
  let tdir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "test_server_traces_%d" (Unix.getpid ()))
  in
  let prev_obs = Obs.is_enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled prev_obs;
      (try Sys.remove tmp with Sys_error _ -> ());
      Array.iter
        (fun f -> try Sys.remove (Filename.concat tdir f) with Sys_error _ -> ())
        (try Sys.readdir tdir with Sys_error _ -> [||]);
      try Unix.rmdir tdir with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      let st = Store.open_index ~dir:(store_dir ()) pub in
      let srv =
        Server.start
          { (cfg 2 8) with
            Server.qlog =
              { Server.Qlog.log_json = Some tmp;
                slow_query_ms = Some 0. (* every query is an outlier *);
                trace_sample = Some 1;
                trace_dir = tdir } }
          st
      in
      Fun.protect
        ~finally:(fun () ->
          Server.shutdown srv;
          Store.close st)
        (fun () ->
          with_client (Server.port srv) (fun fd ->
              ignore (ask fd token);
              (match ask fd "not a token" with
              | Wire.Server_error _ -> ()
              | _ -> Alcotest.fail "expected Server_error");
              ignore (ask fd token)));
      (* shutdown flushed and closed the log; parse it back *)
      let ic = open_in tmp in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      let count needle =
        List.length
          (List.filter
             (fun l ->
               let nl = String.length l and nn = String.length needle in
               let rec go i = i + nn <= nl && (String.sub l i nn = needle || go (i + 1)) in
               go 0)
             lines)
      in
      Alcotest.(check int) "two ok entries" 2 (count "\"outcome\":\"ok\"");
      Alcotest.(check int) "one error entry" 1 (count "\"outcome\":\"error\"");
      Alcotest.(check bool) "slow-query reports logged" true (count "\"slow_query\":true" >= 2);
      Alcotest.(check bool) "entries carry latency fields" true (count "\"exec_us\":" >= 3);
      (* every query sampled: at least one rotating trace slot written,
         and it is a loadable Chrome trace object *)
      let traces = try Sys.readdir tdir with Sys_error _ -> [||] in
      Alcotest.(check bool) "sampled trace written" true (Array.length traces >= 1);
      let tic = open_in (Filename.concat tdir traces.(0)) in
      let first = input_line tic in
      close_in tic;
      let prefix = "{\"traceEvents\":[" in
      Alcotest.(check bool) "trace is a Chrome trace object" true
        (String.length first >= String.length prefix
        && String.sub first 0 (String.length prefix) = prefix))

let test_shutdown_closes_port () =
  let st = Store.open_index ~dir:(store_dir ()) pub in
  let srv = Server.start (cfg 2 8) st in
  let port = Server.port srv in
  with_client port (fun fd -> check_is_expected "pre-shutdown" (expected_resp ()) (ask fd token));
  Server.shutdown srv;
  Server.shutdown srv (* idempotent *);
  Store.close st;
  Alcotest.(check bool) "port closed after shutdown" true
    (match connect port with
    | fd ->
      Unix.close fd;
      false
    | exception Unix.Unix_error ((ECONNREFUSED | ETIMEDOUT), _, _) -> true)

let suite =
  [ ( "service",
      [ Alcotest.test_case "deterministic overflow" `Quick test_service_busy;
        Alcotest.test_case "runs everything admitted" `Quick test_service_runs_everything;
        Alcotest.test_case "survives job crashes" `Quick test_service_swallows_exceptions ] );
    ( "serving",
      [ Alcotest.test_case "sequential identity" `Slow test_sequential_identity;
        Alcotest.test_case "4 concurrent clients" `Slow test_concurrent_clients;
        Alcotest.test_case "overload -> Busy" `Slow test_overload_returns_busy;
        Alcotest.test_case "bad token -> Server_error" `Slow test_bad_token_is_typed_error;
        Alcotest.test_case "malformed frame -> Server_error" `Slow
          test_malformed_frame_keeps_session;
        Alcotest.test_case "live scrape mid-load" `Slow test_live_scrape;
        Alcotest.test_case "query log + sampled traces" `Slow test_query_log_and_traces;
        Alcotest.test_case "shutdown closes port" `Slow test_shutdown_closes_port ] ) ]

let () = Alcotest.run "server" suite
