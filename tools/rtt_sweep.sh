#!/bin/sh
# RTT sweep: price the round collapse as wall-clock by running fig12 on
# the Loopback transport with simulated per-round latency, batched vs
# unbatched (one frame per request — the historical framing).
#
#   sh tools/rtt_sweep.sh [OUTDIR] [RTT_US ...]
#
# Writes OUTDIR/BENCH_fig12_rtt<US>{,_nobatch}.json for each latency and
# a summary table OUTDIR/rtt-sweep.txt with per-variant speedups. With
# simulator-scale crypto the speedup crosses 2x around 1 ms RTT; at the
# paper's GMP-backed crypto speeds the crossover sits well below 0.5 ms
# (see EXPERIMENTS.md).
set -eu

outdir=${1:-artifacts}
shift 2>/dev/null || true
rtts=${*:-"0 500 1000 2000"}

mkdir -p "$outdir"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

summary="$outdir/rtt-sweep.txt"
: >"$summary"

for rtt in $rtts; do
  dune exec bench/main.exe -- --only fig12 --rtt "$rtt" --json "$tmp" >/dev/null
  mv "$tmp/BENCH_fig12.json" "$outdir/BENCH_fig12_rtt$rtt.json"
  dune exec bench/main.exe -- --only fig12 --rtt "$rtt" --no-batching --json "$tmp" >/dev/null
  mv "$tmp/BENCH_fig12.json" "$outdir/BENCH_fig12_rtt${rtt}_nobatch.json"

  {
    echo "=== rtt ${rtt}us ==="
    printf '%-24s %12s %12s %8s\n' run "nobatch(s)" "batch(s)" speedup
    paste \
      "$(
        jq -r '.results[] | "\(.name) \(.seconds)"' \
          "$outdir/BENCH_fig12_rtt${rtt}_nobatch.json" >"$tmp/nb.txt"
        echo "$tmp/nb.txt"
      )" \
      "$(
        jq -r '.results[] | .seconds' \
          "$outdir/BENCH_fig12_rtt$rtt.json" >"$tmp/b.txt"
        echo "$tmp/b.txt"
      )" |
      awk '{ printf "%-24s %12.3f %12.3f %7.2fx\n", $1, $2, $3, $2 / $3 }'
    printf 'rounds: nobatch=%s batch=%s\n\n' \
      "$(jq '.ops.rounds' "$outdir/BENCH_fig12_rtt${rtt}_nobatch.json")" \
      "$(jq '.ops.rounds' "$outdir/BENCH_fig12_rtt$rtt.json")"
  } >>"$summary"
done

cat "$summary"
