#!/bin/sh
# RTT sweep: price the round collapse as wall-clock by running fig12 on
# the Loopback transport with simulated per-round latency, batched vs
# unbatched (one frame per request — the historical framing).
#
#   sh tools/rtt_sweep.sh [OUTDIR] [RTT_US ...]
#
# Writes OUTDIR/BENCH_fig12_rtt<US>{,_nobatch}.json for each latency and
# a summary table OUTDIR/rtt-sweep.txt with per-variant speedups. With
# simulator-scale crypto the speedup crosses 2x around 1 ms RTT; at the
# paper's GMP-backed crypto speeds the crossover sits well below 0.5 ms
# (see EXPERIMENTS.md).
#
# A second leg sweeps the cross-query round scheduler: 4 concurrent
# clients with coalescing on vs off at 1 / 10 / 40 ms RTT (override with
# CONC_RTTS), writing BENCH_concurrency_rtt<US>{,_nocoal}.json and a
# trips/p50 comparison column into the same summary. Coalesced trips
# stay flat as clients join; dedicated transports pay trips x clients.
set -eu

outdir=${1:-artifacts}
shift 2>/dev/null || true
rtts=${*:-"0 500 1000 2000"}

mkdir -p "$outdir"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

summary="$outdir/rtt-sweep.txt"
: >"$summary"

for rtt in $rtts; do
  dune exec bench/main.exe -- --only fig12 --rtt "$rtt" --json "$tmp" >/dev/null
  mv "$tmp/BENCH_fig12.json" "$outdir/BENCH_fig12_rtt$rtt.json"
  dune exec bench/main.exe -- --only fig12 --rtt "$rtt" --no-batching --json "$tmp" >/dev/null
  mv "$tmp/BENCH_fig12.json" "$outdir/BENCH_fig12_rtt${rtt}_nobatch.json"

  {
    echo "=== rtt ${rtt}us ==="
    printf '%-24s %12s %12s %8s\n' run "nobatch(s)" "batch(s)" speedup
    paste \
      "$(
        jq -r '.results[] | "\(.name) \(.seconds)"' \
          "$outdir/BENCH_fig12_rtt${rtt}_nobatch.json" >"$tmp/nb.txt"
        echo "$tmp/nb.txt"
      )" \
      "$(
        jq -r '.results[] | .seconds' \
          "$outdir/BENCH_fig12_rtt$rtt.json" >"$tmp/b.txt"
        echo "$tmp/b.txt"
      )" |
      awk '{ printf "%-24s %12.3f %12.3f %7.2fx\n", $1, $2, $3, $2 / $3 }'
    printf 'rounds: nobatch=%s batch=%s\n\n' \
      "$(jq '.ops.rounds' "$outdir/BENCH_fig12_rtt${rtt}_nobatch.json")" \
      "$(jq '.ops.rounds' "$outdir/BENCH_fig12_rtt$rtt.json")"
  } >>"$summary"
done

conc_rtts=${CONC_RTTS:-"1000 10000 40000"}
{
  echo "=== coalescing: 4 concurrent clients, scheduler on vs off ==="
  printf '%-10s %10s %10s %12s %12s\n' rtt_ms trips_on trips_off "p50_on(ms)" "p50_off(ms)"
} >>"$summary"
for rtt in $conc_rtts; do
  dune exec bench/main.exe -- --only concurrency --clients 4 --rtt "$rtt" \
    --json "$tmp" >/dev/null
  mv "$tmp/BENCH_concurrency.json" "$outdir/BENCH_concurrency_rtt$rtt.json"
  dune exec bench/main.exe -- --only concurrency --clients 4 --rtt "$rtt" \
    --no-coalescing --json "$tmp" >/dev/null
  mv "$tmp/BENCH_concurrency.json" "$outdir/BENCH_concurrency_rtt${rtt}_nocoal.json"

  row4() { jq -r "[.results[] | select(.clients == 4)] | first | \"\(.trips) \(.p50_us)\"" "$1"; }
  on=$(row4 "$outdir/BENCH_concurrency_rtt$rtt.json")
  off=$(row4 "$outdir/BENCH_concurrency_rtt${rtt}_nocoal.json")
  echo "$rtt $on $off" |
    awk '{ printf "%-10.1f %10d %10d %12.1f %12.1f\n", $1 / 1000, $2, $4, $3 / 1000, $5 / 1000 }' \
      >>"$summary"
done
echo >>"$summary"

cat "$summary"
