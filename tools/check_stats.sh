#!/usr/bin/env sh
# Validate a Prometheus text exposition scraped from a serving daemon
# (`topk_cli stats ADDR --prom > FILE`):
#
#   1. every line parses: `# TYPE name counter|gauge|histogram`, a
#      `name value` sample, or a `name_bucket{le="..."} value` series;
#   2. every histogram declared is internally consistent: cumulative
#      bucket counts are monotone, the `+Inf` bucket equals `_count`;
#   3. the required serving series are all present.
#
# Usage: sh tools/check_stats.sh FILE [required-series ...]
# Default required series are the serve-s1 set; pass an explicit list
# when checking a serve-s2 scrape.
set -eu

file=${1:?usage: check_stats.sh FILE [series ...]}
shift || true
if [ "$#" -gt 0 ]; then
  required="$*"
else
  required="served busy errors queue_depth in_flight_queries open_sessions \
worker_utilization queue_wait_us exec_us query_rounds query_bytes query_depth"
fi

awk '
  /^$/ { next }
  /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$/ { declared[$3] = $4; next }
  /^#/ { print "check_stats: unparseable comment line " NR ": " $0; bad = 1; next }
  # histogram bucket series
  /^[a-zA-Z_:][a-zA-Z0-9_:]*_bucket\{le="([0-9]+|\+Inf)"\} [0-9]+$/ {
    name = $1; sub(/_bucket\{.*/, "", name)
    if (declared[name] != "histogram") {
      print "check_stats: bucket series for undeclared histogram: " $0; bad = 1; next
    }
    if ($2 + 0 < last_cum[name]) {
      print "check_stats: non-monotone cumulative buckets for " name; bad = 1
    }
    last_cum[name] = $2 + 0
    if (index($0, "le=\"+Inf\"") > 0) inf_count[name] = $2 + 0
    next
  }
  # plain samples: counters, gauges, histogram _sum/_count
  /^[a-zA-Z_:][a-zA-Z0-9_:]* -?[0-9.+eE-]+$/ {
    name = $1
    if (name ~ /_count$/) { h = name; sub(/_count$/, "", h)
      if (declared[h] == "histogram") { count_of[h] = $2 + 0; next } }
    if (name ~ /_sum$/) { h = name; sub(/_sum$/, "", h)
      if (declared[h] == "histogram") next }
    if (declared[name] == "") {
      print "check_stats: sample for undeclared metric: " $0; bad = 1; next
    }
    seen[name] = 1; next
  }
  { print "check_stats: unparseable line " NR ": " $0; bad = 1 }
  END {
    for (h in declared) {
      if (declared[h] != "histogram") continue
      if (!(h in inf_count)) { print "check_stats: histogram " h " missing +Inf bucket"; bad = 1 }
      else if (inf_count[h] != count_of[h]) {
        print "check_stats: histogram " h " +Inf bucket " inf_count[h] " != _count " count_of[h]
        bad = 1
      }
      seen[h] = 1
    }
    n = split(req, reqs, /[ \t]+/)
    for (i = 1; i <= n; i++) {
      if (reqs[i] == "") continue
      if (!(reqs[i] in seen)) { print "check_stats: required series missing: " reqs[i]; bad = 1 }
    }
    exit bad
  }
' req="$required" "$file"

echo "check_stats: OK ($file)"
