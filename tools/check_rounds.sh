#!/bin/sh
# Rounds-budget gate: fail if the fig12 sweep's round count regresses
# above the committed ceiling, or if concurrent clients stop sharing
# round trips through the coalescing scheduler.
#
#   sh tools/check_rounds.sh [BENCH_fig12.json] [ceiling] [BENCH_concurrency.json]
#
# The ceiling (default 1123 = 5616/5, one fifth of the pre-batching
# round count) pins the phase-level round collapse: anyone reintroducing
# a per-element round trip inside a protocol loop blows the budget and
# fails CI. Regenerate with
#   dune exec bench/main.exe -- --only fig12 --json .
# and lower (never raise) the ceiling when rounds legitimately improve.
#
# The concurrency gate (skipped when the third file is absent) pins the
# cross-query coalescing win: 4 concurrent clients must finish within
# 1.5x the single-client trip budget — dedicated transports would pay
# 4x, and in lockstep the scheduler merges to ~1x. Regenerate with
#   dune exec bench/main.exe -- --only concurrency --json .
set -eu

file=${1:-BENCH_fig12.json}
ceiling=${2:-1123}
conc=${3:-BENCH_concurrency.json}

if ! [ -f "$file" ]; then
  echo "check_rounds: $file not found" >&2
  exit 2
fi

rounds=$(jq '.ops.rounds' "$file")
messages=$(jq '.ops.messages' "$file")

if [ "$rounds" = "null" ] || [ -z "$rounds" ]; then
  echo "check_rounds: $file has no .ops.rounds field" >&2
  exit 2
fi

echo "fig12 rounds=$rounds messages=$messages (ceiling $ceiling)"
if [ "$rounds" -gt "$ceiling" ]; then
  echo "check_rounds: FAIL — $rounds rounds exceeds the budget of $ceiling" >&2
  echo "  (a per-element round trip probably crept back into a protocol loop;" >&2
  echo "   batch the phase with Ctx.rpc_batch or justify a new ceiling)" >&2
  exit 1
fi

if [ -f "$conc" ]; then
  single=$(jq '.single_client_rounds' "$conc")
  trips4=$(jq '[.results[] | select(.clients == 4) | .trips] | first' "$conc")
  if [ "$single" = "null" ] || [ "$trips4" = "null" ] || [ -z "$trips4" ]; then
    echo "check_rounds: $conc has no single_client_rounds / clients=4 row" >&2
    exit 2
  fi
  # 1.5x budget without floats: 2*trips <= 3*single
  echo "concurrency: 4 clients trips=$trips4 single-client budget=$single (ceiling 1.5x)"
  if [ $((2 * trips4)) -gt $((3 * single)) ]; then
    echo "check_rounds: FAIL — 4 concurrent clients took $trips4 trips, over 1.5x the" >&2
    echo "  single-client budget of $single (the round scheduler stopped merging;" >&2
    echo "  check the all-parked ship rule and the coalesce window)" >&2
    exit 1
  fi
else
  echo "concurrency: $conc not found, gate skipped"
fi
echo "check_rounds: OK"
