#!/bin/sh
# Rounds-budget gate: fail if the fig12 sweep's round count regresses
# above the committed ceiling.
#
#   sh tools/check_rounds.sh [BENCH_fig12.json] [ceiling]
#
# The ceiling (default 1123 = 5616/5, one fifth of the pre-batching
# round count) pins the phase-level round collapse: anyone reintroducing
# a per-element round trip inside a protocol loop blows the budget and
# fails CI. Regenerate with
#   dune exec bench/main.exe -- --only fig12 --json .
# and lower (never raise) the ceiling when rounds legitimately improve.
set -eu

file=${1:-BENCH_fig12.json}
ceiling=${2:-1123}

if ! [ -f "$file" ]; then
  echo "check_rounds: $file not found" >&2
  exit 2
fi

rounds=$(jq '.ops.rounds' "$file")
messages=$(jq '.ops.messages' "$file")

if [ "$rounds" = "null" ] || [ -z "$rounds" ]; then
  echo "check_rounds: $file has no .ops.rounds field" >&2
  exit 2
fi

echo "fig12 rounds=$rounds messages=$messages (ceiling $ceiling)"
if [ "$rounds" -gt "$ceiling" ]; then
  echo "check_rounds: FAIL — $rounds rounds exceeds the budget of $ceiling" >&2
  echo "  (a per-element round trip probably crept back into a protocol loop;" >&2
  echo "   batch the phase with Ctx.rpc_batch or justify a new ceiling)" >&2
  exit 1
fi
echo "check_rounds: OK"
