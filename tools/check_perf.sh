#!/bin/sh
# Wall-clock perf smoke: fail if the fig12 query sweep regresses past a
# generous budget.
#
#   sh tools/check_perf.sh [BENCH_fig12.json] [budget_seconds]
#
# The budget (default 3.0 s for the sum of the twelve fig12 queries) is
# deliberately loose — CI runners differ in clock speed and neighbors —
# so only a gross regression trips it: an accidental fallback off the
# Montgomery path, a comb cache that stopped hitting, a protocol loop
# gone quadratic. The committed BENCH_fig12.json sums to well under a
# second on the reference machine; tighten the budget only with a
# same-machine baseline in hand. Regenerate with
#   dune exec bench/main.exe -- --only fig12 --json .
set -eu

file=${1:-BENCH_fig12.json}
budget=${2:-3.0}

if ! [ -f "$file" ]; then
  echo "check_perf: $file not found" >&2
  exit 2
fi

total=$(jq '[.results[].seconds] | add' "$file")

if [ "$total" = "null" ] || [ -z "$total" ]; then
  echo "check_perf: $file has no .results[].seconds" >&2
  exit 2
fi

echo "fig12 wall-clock sum=${total}s (budget ${budget}s)"
over=$(printf '%s %s' "$total" "$budget" | awk '{ print ($1 > $2) ? 1 : 0 }')
if [ "$over" = "1" ]; then
  echo "check_perf: FAIL — fig12 sum ${total}s exceeds the ${budget}s budget" >&2
  echo "  (likely an accidental fallback off the Montgomery/comb fast path;" >&2
  echo "   compare per-query seconds against the committed BENCH_fig12.json)" >&2
  exit 1
fi
echo "check_perf: OK"
