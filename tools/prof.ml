(* Quick wall-clock profiler for the crypto substrate; the min-of-trials
   micro-bench (bench/main.exe -- --only micro) is the rigorous version.
   Each primitive runs in an Obs span, so the closing report shows the
   op/modexp counts behind every wall time. *)
open Bignum

let () =
  Obs.set_enabled true;
  let collector = Obs.Collector.create () in
  let rng = Crypto.Rng.create ~seed:"prof" in
  let pub, sk = Crypto.Paillier.keygen ~rand_bits:96 rng ~bits:192 in
  let djpub, djsk = Crypto.Damgard_jurik.of_paillier pub (Some sk) in
  let djsk = Option.get djsk in
  let time name n f =
    Obs.with_collector collector (fun () ->
        Obs.span name (fun () ->
            Printf.printf "%-28s %8.3f ms/op\n%!" name (1000. *. Obs.Timer.per_call ~n f)))
  in
  let x = Crypto.Rng.nat_below rng pub.Crypto.Paillier.n in
  let c = Crypto.Paillier.encrypt rng pub x in
  let e2 = Crypto.Damgard_jurik.encrypt rng djpub x in
  time "paillier encrypt (short)" 200 (fun () -> Crypto.Paillier.encrypt rng pub x);
  time "paillier decrypt" 100 (fun () -> Crypto.Paillier.decrypt sk c);
  time "dj encrypt (short)" 100 (fun () -> Crypto.Damgard_jurik.encrypt rng djpub x);
  time "dj trivial" 1000 (fun () -> Crypto.Damgard_jurik.trivial djpub x);
  time "dj decrypt" 50 (fun () -> Crypto.Damgard_jurik.decrypt djsk e2);
  time "dj scalar_mul_ct" 50 (fun () -> Crypto.Damgard_jurik.scalar_mul_ct djpub e2 c);
  time "paillier scalar_mul 48b" 500 (fun () -> Crypto.Paillier.scalar_mul pub c (Crypto.Rng.nat_bits rng 48));
  let n3 = djpub.Crypto.Damgard_jurik.n3 in
  let a = Crypto.Rng.nat_below rng n3 and b = Crypto.Rng.nat_below rng n3 in
  time "modmul n3 (576b)" 20000 (fun () -> Modular.mul a b ~m:n3);
  print_newline ();
  Obs.Report.print collector
