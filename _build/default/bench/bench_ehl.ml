(* Figures 7 and 8: EHL vs EHL+ construction time and size.

   Fig 7 sweeps the number of items (the paper: 0.1M..1M; here scaled);
   Fig 8 fixes the four evaluation datasets. Both shapes to reproduce:
   linear growth in n, EHL+ strictly cheaper in time and space. *)

open Crypto
open Dataset
open Bench_util

let encode_relation_ehl rel =
  let params = Ehl.Ehl_bits.default_params in
  let keys = Prf.gen_keys rng params.Ehl.Ehl_bits.s in
  let n = Relation.n_rows rel and m = Relation.n_attrs rel in
  let bytes = ref 0 in
  let (), t =
    time (fun () ->
        for o = 0 to n - 1 do
          let e = Ehl.Ehl_bits.encode rng pub ~keys ~params (Relation.object_id rel o) in
          (* one encoding and one encrypted score per list entry *)
          bytes := !bytes + (m * (Ehl.Ehl_bits.size_bytes pub e + Paillier.ciphertext_bytes pub))
        done)
  in
  (t, !bytes)

let encode_relation_ehlp rel =
  let keys = Prf.gen_keys rng ehl_s in
  let n = Relation.n_rows rel and m = Relation.n_attrs rel in
  let bytes = ref 0 in
  let (), t =
    time (fun () ->
        for o = 0 to n - 1 do
          let e = Ehl.Ehl_plus.encode rng pub ~keys (Relation.object_id rel o) in
          bytes := !bytes + (m * (Ehl.Ehl_plus.size_bytes pub e + Paillier.ciphertext_bytes pub))
        done)
  in
  (t, !bytes)

let fig7 () =
  header "fig7: EHL vs EHL+ construction (time and size vs number of items)";
  row "%8s %14s %14s %14s %14s@." "items" "EHL time(s)" "EHL+ time(s)" "EHL size(KB)" "EHL+ size(KB)";
  List.iter
    (fun n ->
      let rel = Synthetic.generate ~seed:"fig7" ~name:"syn" ~rows:n ~attrs:10
          (Synthetic.Uniform { lo = 0; hi = 1000 }) in
      let t1, b1 = encode_relation_ehl rel in
      let t2, b2 = encode_relation_ehlp rel in
      row "%8d %14.2f %14.2f %14.1f %14.1f@." n t1 t2
        (float_of_int b1 /. 1024.) (float_of_int b2 /. 1024.))
    [ 100; 200; 400; 600; 800; 1000 ]

let fig8 () =
  header "fig8: encryption time and size on the four evaluation datasets";
  row "%12s %8s %6s %14s %14s %14s %14s@." "dataset" "rows" "attrs" "EHL t(s)" "EHL+ t(s)"
    "EHL KB" "EHL+ KB";
  List.iter
    (fun rel ->
      let t1, b1 = encode_relation_ehl rel in
      let t2, b2 = encode_relation_ehlp rel in
      row "%12s %8d %6d %14.2f %14.2f %14.1f %14.1f@." (Relation.name rel) (Relation.n_rows rel)
        (Relation.n_attrs rel) t1 t2 (float_of_int b1 /. 1024.) (float_of_int b2 /. 1024.))
    (eval_datasets ~rows:400)
