(* Figure 14: the secure top-k join operator, varying the total number of
   attributes carried by the joined tuples (the paper: m from 5 to 20 over
   R1 5K x 10 and R2 10K x 15; here the relations are scaled down and m
   sweeps the same way). Shape to reproduce: roughly linear growth in m
   (the per-pair work is the predicate plus m attribute selections). *)

open Dataset
open Bench_util

let fig14 () =
  header "fig14: secure top-k join, time vs total carried attributes m";
  row "%6s %12s %12s@." "m" "time (s)" "pairs";
  let n1 = 12 and n2 = 18 in
  List.iter
    (fun m_total ->
      (* split attributes across the two relations like the paper's 10/15 *)
      let m1 = max 2 (m_total * 2 / 5) in
      let m2 = max 2 (m_total - m1) in
      let r1 =
        Synthetic.generate ~seed:"fig14a" ~name:"R1" ~rows:n1 ~attrs:m1
          (Synthetic.Uniform { lo = 0; hi = 30 })
      in
      let r2 =
        Synthetic.generate ~seed:"fig14b" ~name:"R2" ~rows:n2 ~attrs:m2
          (Synthetic.Uniform { lo = 0; hi = 30 })
      in
      let ctx = fresh_ctx () in
      let (e1, e2), key =
        Join.Join_scheme.encrypt_pair ~s:ehl_s (Crypto.Rng.fork rng ~label:"join") pub r1 r2
      in
      let tk = Join.Join_scheme.token key ~m1 ~m2 ~join:(0, 0) ~score:(1, 1) ~k:5 in
      let _, t = time (fun () -> Join.Sec_join.top_k ctx e1 e2 tk) in
      row "%6d %12.2f %12d@." m_total t (n1 * n2))
    [ 5; 8; 10; 15; 20 ]

let ext_rankjoin () =
  header "ext-rankjoin: cross-product join vs pre-sorted rank join (future work)";
  row "%6s %14s %14s %16s %16s@." "n" "full t(s)" "sorted t(s)" "pairs full" "pairs sorted";
  List.iter
    (fun n ->
      (* correlated scores make the top pairs concentrate early *)
      let r1 =
        Synthetic.generate ~seed:"rj1" ~name:"R1" ~rows:n ~attrs:2
          (Synthetic.Uniform { lo = 0; hi = 8 })
      in
      let r2 =
        Synthetic.generate ~seed:"rj2" ~name:"R2" ~rows:n ~attrs:2
          (Synthetic.Uniform { lo = 0; hi = 8 })
      in
      let ctx1 = fresh_ctx () in
      let (e1, e2), key =
        Join.Join_scheme.encrypt_pair ~s:ehl_s (Crypto.Rng.fork rng ~label:"rj") pub r1 r2
      in
      let tk = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:3 in
      let _, t_full = time (fun () -> Join.Sec_join.top_k ctx1 e1 e2 tk) in
      let ctx2 = fresh_ctx () in
      let (s1r, s2r), key' =
        Join.Join_scheme.encrypt_pair_sorted ~s:ehl_s (Crypto.Rng.fork rng ~label:"rjs") pub
          ~score1:1 ~score2:1 r1 r2
      in
      let tk' = Join.Join_scheme.token key' ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k:3 in
      let (_, stats), t_sorted = time (fun () -> Join.Sec_join.top_k_sorted_stats ctx2 s1r s2r tk') in
      row "%6d %14.2f %14.2f %16d %16d@." n t_full t_sorted
        stats.Join.Sec_join.pairs_total stats.Join.Sec_join.pairs_explored)
    [ 10; 16; 24 ]
