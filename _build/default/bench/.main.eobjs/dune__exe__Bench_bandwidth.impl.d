bench/bench_bandwidth.ml: Bench_util Crypto Dataset Fun List Proto Relation Scoring Sectopk Synthetic Topk
