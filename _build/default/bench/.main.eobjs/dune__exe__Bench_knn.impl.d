bench/bench_knn.ml: Array Bench_util Crypto Dataset List Proto Relation Scoring Sectopk Sknn Synthetic Topk Unix
