bench/bench_micro.ml: Analyze Bechamel Bench_util Benchmark Bignum Crypto Damgard_jurik Ehl Hashtbl List Measure Modular Nat Paillier Prf Rng Sha256 Staged String Test Time Toolkit
