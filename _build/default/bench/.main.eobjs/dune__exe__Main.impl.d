bench/main.ml: Array Bench_ablation Bench_bandwidth Bench_ehl Bench_join Bench_knn Bench_micro Bench_query Bench_util Format List Sys Unix
