bench/main.mli:
