bench/bench_ablation.ml: Bench_util Bignum Crypto Dataset Domain Ehl List Paillier Prf Proto Relation Rng Scoring Sectopk Synthetic Topk
