bench/bench_util.ml: Array Crypto Dataset Format Paillier Proto Relation Rng Sectopk Synthetic Unix
