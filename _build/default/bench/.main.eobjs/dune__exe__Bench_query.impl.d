bench/bench_query.ml: Bench_util Dataset Fun List Proto Relation Scoring Sectopk Topk
