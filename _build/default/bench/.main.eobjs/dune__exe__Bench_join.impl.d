bench/bench_join.ml: Bench_util Crypto Dataset Join List Synthetic
