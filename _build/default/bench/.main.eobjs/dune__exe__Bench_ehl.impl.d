bench/bench_ehl.ml: Bench_util Crypto Dataset Ehl List Paillier Prf Relation Synthetic
