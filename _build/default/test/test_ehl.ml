(* Tests for the EHL and EHL+ encrypted hash lists: the equality-testing
   ⊖ operation (Lemma 5.2), indistinguishability-adjacent sanity checks,
   the ⊙ masking op, and size/FPR accounting. *)

open Bignum
open Crypto

let rng = Rng.create ~seed:"test_ehl"
let pub, sk = Paillier.keygen rng ~bits:128
let keys = Prf.gen_keys rng 5
let nat = Alcotest.testable Nat.pp Nat.equal

(* ---------------- EHL (bit-list) ---------------- *)

let params = Ehl.Ehl_bits.default_params

let test_ehl_encode_shape () =
  let e = Ehl.Ehl_bits.encode rng pub ~keys ~params "obj-1" in
  Alcotest.(check int) "h cells" params.Ehl.Ehl_bits.h (Ehl.Ehl_bits.length e);
  (* decrypting the cells yields s or fewer ones, rest zeros *)
  let ones =
    Array.fold_left
      (fun acc c -> acc + Nat.to_int (Paillier.decrypt sk c))
      0 (Ehl.Ehl_bits.cells e)
  in
  Alcotest.(check bool) "between 1 and s ones" true (ones >= 1 && ones <= params.Ehl.Ehl_bits.s)

let test_ehl_diff_equal () =
  let a = Ehl.Ehl_bits.encode rng pub ~keys ~params "same-object" in
  let b = Ehl.Ehl_bits.encode rng pub ~keys ~params "same-object" in
  let d = Ehl.Ehl_bits.diff rng pub a b in
  Alcotest.check nat "Enc(0) for equal objects" Nat.zero (Paillier.decrypt sk d)

let test_ehl_diff_unequal () =
  (* with h=23, s=5 collisions exist but are rare; check several pairs *)
  let misses = ref 0 in
  for i = 0 to 19 do
    let a = Ehl.Ehl_bits.encode rng pub ~keys ~params (Printf.sprintf "obj-a-%d" i) in
    let b = Ehl.Ehl_bits.encode rng pub ~keys ~params (Printf.sprintf "obj-b-%d" i) in
    let d = Ehl.Ehl_bits.diff rng pub a b in
    if Nat.is_zero (Paillier.decrypt sk d) then incr misses
  done;
  Alcotest.(check bool) "mostly nonzero for distinct objects" true (!misses <= 2)

let test_ehl_wrong_keys () =
  Alcotest.check_raises "wrong key count" (Invalid_argument "Ehl_bits.encode: wrong number of keys")
    (fun () -> ignore (Ehl.Ehl_bits.encode rng pub ~keys:(Prf.gen_keys rng 3) ~params "x"))

let test_ehl_fpr_formula () =
  let fpr = Ehl.Ehl_bits.false_positive_rate params in
  (* (1 - e^{-5/23})^5 ~ 2.6e-4 *)
  Alcotest.(check bool) "fpr in expected band" true (fpr > 1e-4 && fpr < 1e-3)

let test_ehl_rerandomize () =
  let a = Ehl.Ehl_bits.encode rng pub ~keys ~params "rr" in
  let a' = Ehl.Ehl_bits.rerandomize rng pub a in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) "cells changed" false (Paillier.equal_ct c (Ehl.Ehl_bits.cells a').(i));
      Alcotest.check nat "plaintext kept" (Paillier.decrypt sk c) (Paillier.decrypt sk (Ehl.Ehl_bits.cells a').(i)))
    (Ehl.Ehl_bits.cells a)

(* ---------------- EHL+ ---------------- *)

let test_ehlp_diff_equal () =
  let a = Ehl.Ehl_plus.encode rng pub ~keys "patient-42" in
  let b = Ehl.Ehl_plus.encode rng pub ~keys "patient-42" in
  Alcotest.check nat "Enc(0) for equal" Nat.zero (Paillier.decrypt sk (Ehl.Ehl_plus.diff rng pub a b))

let test_ehlp_diff_unequal () =
  for i = 0 to 19 do
    let a = Ehl.Ehl_plus.encode rng pub ~keys (Printf.sprintf "p-%d" i) in
    let b = Ehl.Ehl_plus.encode rng pub ~keys (Printf.sprintf "q-%d" i) in
    Alcotest.(check bool) "nonzero for distinct" false
      (Nat.is_zero (Paillier.decrypt sk (Ehl.Ehl_plus.diff rng pub a b)))
  done

let test_ehlp_diff_small_blind () =
  (* short blinding exponents must preserve the equality semantics *)
  let a = Ehl.Ehl_plus.encode rng pub ~keys "blind-test" in
  let b = Ehl.Ehl_plus.encode rng pub ~keys "blind-test" in
  let c = Ehl.Ehl_plus.encode rng pub ~keys "blind-other" in
  Alcotest.check nat "equal" Nat.zero
    (Paillier.decrypt sk (Ehl.Ehl_plus.diff ~blind_bits:40 rng pub a b));
  Alcotest.(check bool) "unequal" false
    (Nat.is_zero (Paillier.decrypt sk (Ehl.Ehl_plus.diff ~blind_bits:40 rng pub a c)))

let test_ehlp_smaller_than_ehl () =
  let e = Ehl.Ehl_bits.encode rng pub ~keys ~params "size" in
  let ep = Ehl.Ehl_plus.encode rng pub ~keys "size" in
  Alcotest.(check int) "s cells" 5 (Ehl.Ehl_plus.length ep);
  Alcotest.(check bool) "EHL+ smaller" true
    (Ehl.Ehl_plus.size_bytes pub ep < Ehl.Ehl_bits.size_bytes pub e)

let test_ehlp_mask_changes_hidden_values () =
  (* masking with Enc(alpha) then with Enc(-alpha) restores equality *)
  let a = Ehl.Ehl_plus.encode rng pub ~keys "masked" in
  let b = Ehl.Ehl_plus.encode rng pub ~keys "masked" in
  let alphas = Array.init 5 (fun _ -> Rng.nat_below rng pub.Paillier.n) in
  let enc_alphas = Array.map (Paillier.encrypt rng pub) alphas in
  let masked = Ehl.Ehl_plus.mask pub a enc_alphas in
  (* masked vs b: no longer equal *)
  Alcotest.(check bool) "mask breaks equality" false
    (Nat.is_zero (Paillier.decrypt sk (Ehl.Ehl_plus.diff rng pub masked b)));
  (* unmasking restores it *)
  let neg_alphas = Array.map (fun c -> Paillier.neg pub c) enc_alphas in
  let unmasked = Ehl.Ehl_plus.mask pub masked neg_alphas in
  Alcotest.check nat "unmask restores" Nat.zero (Paillier.decrypt sk (Ehl.Ehl_plus.diff rng pub unmasked b))

let test_ehlp_masked_pair_still_equal () =
  (* SecDedup invariant: masking *both* copies with the same alphas keeps
     them equal to each other while unlinkable to the originals *)
  let a = Ehl.Ehl_plus.encode rng pub ~keys "pairwise" in
  let b = Ehl.Ehl_plus.encode rng pub ~keys "pairwise" in
  let alphas = Array.init 5 (fun _ -> Paillier.encrypt rng pub (Rng.nat_below rng pub.Paillier.n)) in
  let ma = Ehl.Ehl_plus.mask pub a alphas and mb = Ehl.Ehl_plus.mask pub b alphas in
  Alcotest.check nat "still equal under same mask" Nat.zero
    (Paillier.decrypt sk (Ehl.Ehl_plus.diff rng pub ma mb))

let test_ehlp_fpr_negligible () =
  let fpr = Ehl.Ehl_plus.false_positive_rate pub ~s:5 ~rows:1_000_000 in
  Alcotest.(check bool) "negligible for 1M rows" true (fpr < 1e-100)

let test_ehlp_keyed () =
  (* different key sets produce incomparable encodings *)
  let other_keys = Prf.gen_keys rng 5 in
  let a = Ehl.Ehl_plus.encode rng pub ~keys "kx" in
  let b = Ehl.Ehl_plus.encode rng pub ~keys:other_keys "kx" in
  Alcotest.(check bool) "cross-key diff nonzero" false
    (Nat.is_zero (Paillier.decrypt sk (Ehl.Ehl_plus.diff rng pub a b)))

let prop_ehlp_equality_iff =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"EHL+ diff = 0 iff same id"
       QCheck.(pair small_nat small_nat)
       (fun (i, j) ->
         let a = Ehl.Ehl_plus.encode rng pub ~keys (string_of_int i) in
         let b = Ehl.Ehl_plus.encode rng pub ~keys (string_of_int j) in
         let z = Nat.is_zero (Paillier.decrypt sk (Ehl.Ehl_plus.diff rng pub a b)) in
         z = (i = j)))

let suite =
  [ ( "ehl",
      [ Alcotest.test_case "encode shape" `Quick test_ehl_encode_shape;
        Alcotest.test_case "diff equal -> Enc(0)" `Quick test_ehl_diff_equal;
        Alcotest.test_case "diff unequal -> random" `Quick test_ehl_diff_unequal;
        Alcotest.test_case "wrong key count" `Quick test_ehl_wrong_keys;
        Alcotest.test_case "fpr formula" `Quick test_ehl_fpr_formula;
        Alcotest.test_case "rerandomize" `Quick test_ehl_rerandomize
      ] );
    ( "ehl-plus",
      [ Alcotest.test_case "diff equal -> Enc(0)" `Quick test_ehlp_diff_equal;
        Alcotest.test_case "diff unequal -> random" `Quick test_ehlp_diff_unequal;
        Alcotest.test_case "short blinding exponents" `Quick test_ehlp_diff_small_blind;
        Alcotest.test_case "more compact than EHL" `Quick test_ehlp_smaller_than_ehl;
        Alcotest.test_case "mask/unmask" `Quick test_ehlp_mask_changes_hidden_values;
        Alcotest.test_case "same mask preserves equality" `Quick test_ehlp_masked_pair_still_equal;
        Alcotest.test_case "fpr negligible" `Quick test_ehlp_fpr_negligible;
        Alcotest.test_case "keyed" `Quick test_ehlp_keyed;
        prop_ehlp_equality_iff
      ] )
  ]

let () = Alcotest.run "ehl" suite
