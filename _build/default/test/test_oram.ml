(* Tests for the Path ORAM substrate and the record-retrieval layer:
   storage correctness under heavy random workloads, stash stability, and
   the access-pattern obliviousness property that motivates it. *)

open Crypto
open Dataset

let rng = Rng.create ~seed:"test_oram"

let test_read_write_roundtrip () =
  let o = Oram.Path_oram.create (Rng.fork rng ~label:"rt") ~capacity:16 ~block_bytes:8 in
  Oram.Path_oram.write o 3 "hello";
  Oram.Path_oram.write o 7 "world!";
  Alcotest.(check string) "read 3" "hello\000\000\000" (Oram.Path_oram.read o 3);
  Alcotest.(check string) "read 7" "world!\000\000" (Oram.Path_oram.read o 7);
  (* unwritten blocks read as zeros *)
  Alcotest.(check string) "read 0" (String.make 8 '\000') (Oram.Path_oram.read o 0)

let test_overwrite () =
  let o = Oram.Path_oram.create (Rng.fork rng ~label:"ow") ~capacity:8 ~block_bytes:4 in
  Oram.Path_oram.write o 2 "aaaa";
  Oram.Path_oram.write o 2 "bbbb";
  Alcotest.(check string) "latest wins" "bbbb" (Oram.Path_oram.read o 2)

let test_capacity_one () =
  let o = Oram.Path_oram.create (Rng.fork rng ~label:"c1") ~capacity:1 ~block_bytes:4 in
  Oram.Path_oram.write o 0 "solo";
  Alcotest.(check string) "single block" "solo" (Oram.Path_oram.read o 0)

let test_bounds () =
  let o = Oram.Path_oram.create (Rng.fork rng ~label:"b") ~capacity:4 ~block_bytes:4 in
  Alcotest.check_raises "id too big" (Invalid_argument "Path_oram: id out of range") (fun () ->
      ignore (Oram.Path_oram.read o 4));
  Alcotest.check_raises "payload too long" (Invalid_argument "Path_oram: payload too long")
    (fun () -> Oram.Path_oram.write o 0 "toolong")

let test_random_workload () =
  (* a reference hashtable vs the ORAM under 600 mixed ops *)
  let cap = 32 in
  let o = Oram.Path_oram.create (Rng.fork rng ~label:"wl") ~capacity:cap ~block_bytes:6 in
  let reference = Hashtbl.create cap in
  let r = Rng.fork rng ~label:"ops" in
  for step = 0 to 599 do
    let id = Rng.int_below r cap in
    if Rng.bool r then begin
      let payload = Printf.sprintf "%06d" step in
      Hashtbl.replace reference id payload;
      Oram.Path_oram.write o id payload
    end
    else begin
      let expected =
        match Hashtbl.find_opt reference id with
        | Some p -> p
        | None -> String.make 6 '\000'
      in
      Alcotest.(check string) (Printf.sprintf "step %d id %d" step id) expected
        (Oram.Path_oram.read o id)
    end
  done;
  (* stash must stay small (Path ORAM's O(log n) w.h.p. bound) *)
  Alcotest.(check bool) "stash bounded" true (Oram.Path_oram.stash_size o < 30)

let test_paths_are_recorded () =
  let o = Oram.Path_oram.create (Rng.fork rng ~label:"paths") ~capacity:16 ~block_bytes:4 in
  Oram.Path_oram.write o 1 "x";
  ignore (Oram.Path_oram.read o 1);
  ignore (Oram.Path_oram.read o 1);
  Alcotest.(check int) "3 accesses -> 3 paths" 3 (List.length (Oram.Path_oram.paths_accessed o))

let test_access_pattern_oblivious () =
  (* repeatedly reading the SAME block must produce fresh uniform leaves:
     compare the leaf distribution against reading DIFFERENT blocks *)
  let cap = 64 in
  let runs = 400 in
  let collect f =
    let o = Oram.Path_oram.create (Rng.fork rng ~label:"obl") ~capacity:cap ~block_bytes:4 in
    for i = 0 to cap - 1 do
      Oram.Path_oram.write o i "d"
    done;
    for j = 0 to runs - 1 do
      ignore (Oram.Path_oram.read o (f j))
    done;
    (* drop the setup-write paths *)
    let rec drop n = function [] -> [] | _ :: r as l -> if n = 0 then l else drop (n - 1) r in
    drop cap (Oram.Path_oram.paths_accessed o)
  in
  let same = collect (fun _ -> 5) in
  let diff = collect (fun j -> j mod cap) in
  let distinct l = List.length (List.sort_uniq compare l) in
  (* both sequences must touch many distinct leaves (uniform re-mapping) *)
  Alcotest.(check bool) "same-block reads spread over leaves" true (distinct same > 20);
  Alcotest.(check bool) "distinct-block reads spread over leaves" true (distinct diff > 20);
  (* no immediate repetition bias: consecutive same-block reads rarely hit
     the same leaf (would happen 1/leaves of the time by chance) *)
  let repeats l =
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (if a = b then acc + 1 else acc) rest
      | _ -> acc
    in
    go 0 l
  in
  Alcotest.(check bool) "no sticky leaves" true (repeats same < runs / 8)

let test_server_sizes () =
  let o = Oram.Path_oram.create (Rng.fork rng ~label:"sz") ~capacity:100 ~block_bytes:16 in
  Alcotest.(check bool) "levels ~ log n" true (Oram.Path_oram.levels o >= 7);
  Alcotest.(check bool) "server >= 4x data" true
    (Oram.Path_oram.server_bytes o >= 100 * 16);
  Alcotest.(check bool) "per-access cost positive" true (Oram.Path_oram.bytes_per_access o > 0)

(* ---------------- retrieval layer ---------------- *)

let rel =
  Synthetic.generate ~seed:"retr" ~name:"records" ~rows:20 ~attrs:4
    (Synthetic.Uniform { lo = 0; hi = 1000 })

let test_retrieval_both_modes () =
  let store = Sectopk.Retrieval.setup (Rng.fork rng ~label:"store") rel in
  for oid = 0 to 19 do
    Alcotest.(check (array int))
      (Printf.sprintf "direct %d" oid)
      (Relation.row rel oid)
      (Sectopk.Retrieval.fetch store ~mode:Sectopk.Retrieval.Direct oid);
    Alcotest.(check (array int))
      (Printf.sprintf "oblivious %d" oid)
      (Relation.row rel oid)
      (Sectopk.Retrieval.fetch store ~mode:Sectopk.Retrieval.Oblivious oid)
  done

let test_retrieval_leakage_difference () =
  let store = Sectopk.Retrieval.setup (Rng.fork rng ~label:"leak") rel in
  (* the same logical access sequence through both channels *)
  let seq = [ 3; 3; 3; 7; 3 ] in
  List.iter (fun oid -> ignore (Sectopk.Retrieval.fetch store ~mode:Sectopk.Retrieval.Direct oid)) seq;
  List.iter (fun oid -> ignore (Sectopk.Retrieval.fetch store ~mode:Sectopk.Retrieval.Oblivious oid)) seq;
  (* Direct: S1 sees the exact repeated ids *)
  Alcotest.(check (list int)) "direct leaks the sequence" seq (Sectopk.Retrieval.observed_direct store);
  (* Oblivious: S1 sees one path per access, and repetitions are not
     mirrored (the triple read of oid 3 yields fresh random leaves) *)
  let paths = Sectopk.Retrieval.observed_oblivious store in
  Alcotest.(check int) "one path per access" (List.length seq) (List.length paths);
  Alcotest.(check bool) "paths not constant" true (List.length (List.sort_uniq compare paths) > 1)

let suite =
  [ ( "path-oram",
      [ Alcotest.test_case "roundtrip" `Quick test_read_write_roundtrip;
        Alcotest.test_case "overwrite" `Quick test_overwrite;
        Alcotest.test_case "capacity 1" `Quick test_capacity_one;
        Alcotest.test_case "bounds" `Quick test_bounds;
        Alcotest.test_case "random workload vs reference" `Quick test_random_workload;
        Alcotest.test_case "paths recorded" `Quick test_paths_are_recorded;
        Alcotest.test_case "access pattern oblivious" `Quick test_access_pattern_oblivious;
        Alcotest.test_case "server sizes" `Quick test_server_sizes
      ] );
    ( "retrieval",
      [ Alcotest.test_case "both modes correct" `Quick test_retrieval_both_modes;
        Alcotest.test_case "leakage difference" `Quick test_retrieval_leakage_difference
      ] )
  ]

let () = Alcotest.run "oram" suite
