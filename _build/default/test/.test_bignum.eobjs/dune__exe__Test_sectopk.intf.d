test/test_sectopk.mli:
