test/test_crypto.ml: Alcotest Array Bigint Bignum Char Crypto Damgard_jurik Drbg Fun Hmac List Modular Nat Option Paillier Prf Printf Prp QCheck QCheck_alcotest Rng Sha256 String
