test/test_oram.mli:
