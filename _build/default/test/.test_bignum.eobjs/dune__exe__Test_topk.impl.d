test/test_topk.ml: Alcotest Array Dataset Fun List Naive_topk Nra QCheck QCheck_alcotest Relation Scoring Sorted_lists Synthetic Ta Topk Uci_shape
