test/test_bignum.ml: Alcotest Bigint Bignum Bytes Char List Modular Montgomery Nat Option Prime Printf QCheck QCheck_alcotest String
