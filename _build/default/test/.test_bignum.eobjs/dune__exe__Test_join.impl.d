test/test_join.ml: Alcotest Array Bignum Crypto Dataset Join List Nat Paillier Proto QCheck QCheck_alcotest Relation Rng Synthetic
