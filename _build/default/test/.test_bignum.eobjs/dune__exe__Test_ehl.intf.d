test/test_ehl.mli:
