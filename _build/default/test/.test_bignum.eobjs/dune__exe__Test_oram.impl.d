test/test_oram.ml: Alcotest Crypto Dataset Hashtbl List Oram Printf Relation Rng Sectopk String Synthetic
