test/test_sknn.mli:
