test/test_sknn.ml: Alcotest Array Bignum Crypto Dataset List Nat Paillier Printf Proto QCheck QCheck_alcotest Relation Rng Sknn Synthetic
