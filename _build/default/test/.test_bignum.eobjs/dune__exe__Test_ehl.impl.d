test/test_ehl.ml: Alcotest Array Bignum Crypto Ehl Nat Paillier Prf Printf QCheck QCheck_alcotest Rng
