(* Tests for the dataset substrate and the plaintext top-k algorithms:
   relation invariants, generator shapes, sorted-list views, scoring, the
   naive oracle, and NRA correctness (exact agreement with the oracle on
   the admission threshold, plus halting behaviour). *)

open Dataset
open Topk

(* ---------------- Relation ---------------- *)

let test_relation_basics () =
  let r = Relation.create ~name:"t" [| [| 1; 2 |]; [| 3; 4 |]; [| 5; 0 |] |] in
  Alcotest.(check int) "rows" 3 (Relation.n_rows r);
  Alcotest.(check int) "attrs" 2 (Relation.n_attrs r);
  Alcotest.(check int) "value" 4 (Relation.value r ~row:1 ~attr:1);
  Alcotest.(check string) "object id" "o2" (Relation.object_id r 2);
  Alcotest.(check int) "max" 5 (Relation.max_value r)

let test_relation_validation () =
  Alcotest.check_raises "ragged" (Invalid_argument "Relation.create: ragged rows") (fun () ->
      ignore (Relation.create ~name:"x" [| [| 1 |]; [| 1; 2 |] |]));
  Alcotest.check_raises "negative" (Invalid_argument "Relation.create: negative value") (fun () ->
      ignore (Relation.create ~name:"x" [| [| -1 |] |]));
  Alcotest.check_raises "empty" (Invalid_argument "Relation.create: empty") (fun () ->
      ignore (Relation.create ~name:"x" [||]))

(* ---------------- Synthetic ---------------- *)

let test_synthetic_deterministic () =
  let a = Synthetic.generate ~seed:"s" ~name:"d" ~rows:50 ~attrs:3 (Synthetic.Uniform { lo = 0; hi = 100 }) in
  let b = Synthetic.generate ~seed:"s" ~name:"d" ~rows:50 ~attrs:3 (Synthetic.Uniform { lo = 0; hi = 100 }) in
  let equal =
    List.for_all
      (fun i ->
        List.for_all
          (fun j -> Relation.value a ~row:i ~attr:j = Relation.value b ~row:i ~attr:j)
          [ 0; 1; 2 ])
      (List.init 50 Fun.id)
  in
  Alcotest.(check bool) "same seed, same data" true equal;
  let c = Synthetic.generate ~seed:"s2" ~name:"d" ~rows:50 ~attrs:3 (Synthetic.Uniform { lo = 0; hi = 100 }) in
  let differs = Relation.value a ~row:0 ~attr:0 <> Relation.value c ~row:0 ~attr:0
                || Relation.value a ~row:1 ~attr:1 <> Relation.value c ~row:1 ~attr:1
                || Relation.value a ~row:2 ~attr:2 <> Relation.value c ~row:2 ~attr:2 in
  Alcotest.(check bool) "different seed differs somewhere" true differs

let test_synthetic_ranges () =
  let r = Synthetic.generate ~seed:"r" ~name:"u" ~rows:200 ~attrs:2 (Synthetic.Uniform { lo = 10; hi = 20 }) in
  Relation.fold_rows r ~init:() ~f:(fun () _ row ->
      Array.iter (fun v -> Alcotest.(check bool) "in [10,20]" true (v >= 10 && v <= 20)) row);
  let g = Synthetic.generate ~seed:"g" ~name:"g" ~rows:200 ~attrs:1
            (Synthetic.Gaussian { mean = 50.; stddev = 10.; max_value = 100 }) in
  Relation.fold_rows g ~init:() ~f:(fun () _ row ->
      Array.iter (fun v -> Alcotest.(check bool) "clamped" true (v >= 0 && v <= 100)) row)

let test_correlated_structure () =
  let r = Synthetic.generate ~seed:"c" ~name:"c" ~rows:100 ~attrs:4
            (Synthetic.Correlated { base = Synthetic.Uniform { lo = 100; hi = 1000 }; noise = 5 }) in
  (* attributes of the same row stay within 2*noise of each other *)
  Relation.fold_rows r ~init:() ~f:(fun () _ row ->
      let mn = Array.fold_left min max_int row and mx = Array.fold_left max 0 row in
      Alcotest.(check bool) "tight spread" true (mx - mn <= 20))

let test_uci_shapes () =
  List.iter
    (fun spec ->
      let r = Uci_shape.load spec ~seed:"u" ~scale:0.01 in
      Alcotest.(check int) (spec.Uci_shape.name ^ " attrs") spec.Uci_shape.attrs (Relation.n_attrs r);
      Alcotest.(check bool) (spec.Uci_shape.name ^ " rows scaled") true
        (Relation.n_rows r >= 1 && Relation.n_rows r <= spec.Uci_shape.full_rows / 50))
    Uci_shape.all_specs;
  Alcotest.(check int) "evaluation suite size" 4
    (List.length (Uci_shape.evaluation_suite ~seed:"u" ~scale:0.001))

(* ---------------- Sorted lists ---------------- *)

let test_sorted_lists () =
  let r = Relation.create ~name:"s" [| [| 5; 1 |]; [| 3; 9 |]; [| 7; 9 |] |] in
  let sl = Sorted_lists.of_relation r in
  Alcotest.(check int) "lists" 2 (Sorted_lists.n_lists sl);
  Alcotest.(check int) "depth" 3 (Sorted_lists.depth sl);
  (* list 0 descending: o2=7, o0=5, o1=3 *)
  let open Sorted_lists in
  Alcotest.(check (pair int int)) "list0 depth0" (2, 7)
    (let i = item sl ~list:0 ~depth:0 in (i.oid, i.score));
  Alcotest.(check (pair int int)) "list0 depth2" (1, 3)
    (let i = item sl ~list:0 ~depth:2 in (i.oid, i.score));
  (* tie on attr 1 between o1 and o2 broken by oid *)
  Alcotest.(check (pair int int)) "tie break" (1, 9)
    (let i = item sl ~list:1 ~depth:0 in (i.oid, i.score))

let prop_sorted_lists_sorted =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"sorted lists are descending permutations"
       QCheck.(int_bound 10_000)
       (fun seed ->
         let r = Synthetic.generate ~seed:(string_of_int seed) ~name:"p" ~rows:30 ~attrs:3
                   (Synthetic.Uniform { lo = 0; hi = 50 }) in
         let sl = Sorted_lists.of_relation r in
         List.for_all
           (fun li ->
             let l = Sorted_lists.list sl li in
             let sorted = ref true in
             for i = 0 to Array.length l - 2 do
               if l.(i).Sorted_lists.score < l.(i + 1).Sorted_lists.score then sorted := false
             done;
             let oids = Array.to_list (Array.map (fun it -> it.Sorted_lists.oid) l) in
             !sorted && List.sort compare oids = List.init 30 Fun.id)
           [ 0; 1; 2 ]))

(* ---------------- Scoring ---------------- *)

let rel3 = Relation.create ~name:"r3" [| [| 10; 3; 2 |]; [| 8; 8; 0 |]; [| 5; 7; 6 |]; [| 3; 2; 8 |]; [| 1; 1; 1 |] |]

let test_scoring () =
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  Alcotest.(check int) "sum all" 15 (Scoring.score f rel3 0);
  Alcotest.(check int) "arity" 3 (Scoring.arity f);
  let w = Scoring.create [ (0, 2); (2, 3) ] in
  Alcotest.(check int) "weighted" 26 (Scoring.score w rel3 0);
  Alcotest.(check int) "local" 9 (Scoring.local w ~attr:2 3);
  Alcotest.(check int) "max score" 30 (Scoring.max_score w rel3)

let test_scoring_validation () =
  Alcotest.check_raises "dup attr" (Invalid_argument "Scoring.create: duplicate attribute")
    (fun () -> ignore (Scoring.create [ (0, 1); (0, 2) ]));
  Alcotest.check_raises "neg weight" (Invalid_argument "Scoring.create: negative weight")
    (fun () -> ignore (Scoring.create [ (0, -1) ]));
  Alcotest.check_raises "all zero" (Invalid_argument "Scoring.create: all-zero weights")
    (fun () -> ignore (Scoring.create [ (0, 0) ]))

(* ---------------- Naive oracle ---------------- *)

let test_naive () =
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  (* scores: o0=15, o1=16, o2=18, o3=13, o4=3 *)
  Alcotest.(check (list (pair int int))) "top-2" [ (2, 18); (1, 16) ] (Naive_topk.run rel3 f ~k:2);
  Alcotest.(check int) "kth score" 16 (Naive_topk.kth_score rel3 f ~k:2);
  Alcotest.(check (list (pair int int))) "k > n returns all"
    [ (2, 18); (1, 16); (0, 15); (3, 13); (4, 3) ]
    (Naive_topk.run rel3 f ~k:10)

(* ---------------- NRA ---------------- *)

let test_nra_example () =
  (* the paper's Figure 3 example: 5 objects, 3 attributes, top-2 =
     {X3, X2} (scores 18, 16) *)
  let rel =
    Relation.create ~name:"fig3"
      [| [| 10; 3; 2 |] (* X1 *); [| 8; 8; 0 |] (* X2 *); [| 5; 7; 6 |] (* X3 *);
         [| 3; 2; 8 |] (* X4 *); [| 1; 1; 1 |] (* X5 *) |]
  in
  let sl = Sorted_lists.of_relation rel in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let results, stats = Nra.run sl f ~k:2 in
  let oids = List.map (fun r -> r.Nra.oid) results in
  Alcotest.(check (list int)) "top-2 objects" [ 2; 1 ] oids;
  Alcotest.(check int) "halts at depth 3 like Figure 3" 3 stats.Nra.halting_depth;
  Alcotest.(check bool) "not exhausted" false stats.Nra.exhausted

let test_nra_exhausts_small () =
  let rel = Relation.create ~name:"tiny" [| [| 1; 1 |]; [| 2; 2 |] |] in
  let sl = Sorted_lists.of_relation rel in
  let results, _ = Nra.run sl (Scoring.sum_of [ 0; 1 ]) ~k:2 in
  Alcotest.(check int) "returns both" 2 (List.length results)

let test_nra_k_exceeds_n () =
  let rel = Relation.create ~name:"tiny" [| [| 1; 1 |]; [| 2; 2 |] |] in
  let sl = Sorted_lists.of_relation rel in
  let results, stats = Nra.run sl (Scoring.sum_of [ 0; 1 ]) ~k:5 in
  Alcotest.(check int) "clamped to n" 2 (List.length results);
  Alcotest.(check bool) "exhausted" true stats.Nra.exhausted

let nra_agrees_with_oracle ?check_every rel f k =
  let sl = Sorted_lists.of_relation rel in
  let results, _ = Nra.run ?check_every sl f ~k in
  Nra.valid_answer rel f ~k (List.map (fun r -> r.Nra.oid) results)

let prop_nra_correct =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"NRA answers are oracle-valid"
       QCheck.(triple (int_bound 100_000) (int_range 1 10) (int_range 2 4))
       (fun (seed, k, m) ->
         let rel = Synthetic.generate ~seed:(string_of_int seed) ~name:"nra" ~rows:60 ~attrs:m
                     (Synthetic.Uniform { lo = 0; hi = 40 }) in
         nra_agrees_with_oracle rel (Scoring.sum_of (List.init m Fun.id)) k))

let prop_nra_correct_weighted =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"NRA with non-binary weights"
       QCheck.(triple (int_bound 100_000) (int_range 1 8) (int_range 1 9))
       (fun (seed, k, w) ->
         let rel = Synthetic.generate ~seed:(string_of_int seed) ~name:"nraw" ~rows:50 ~attrs:3
                     (Synthetic.Uniform { lo = 0; hi = 30 }) in
         let f = Scoring.create [ (0, w); (1, 1); (2, 2) ] in
         nra_agrees_with_oracle rel f k))

let prop_nra_batched_same_answers =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"batched halting check stays correct"
       QCheck.(triple (int_bound 100_000) (int_range 1 6) (int_range 2 25))
       (fun (seed, k, p) ->
         let rel = Synthetic.generate ~seed:(string_of_int seed) ~name:"nrab" ~rows:50 ~attrs:3
                     (Synthetic.Uniform { lo = 0; hi = 40 }) in
         let f = Scoring.sum_of [ 0; 1; 2 ] in
         nra_agrees_with_oracle ~check_every:p rel f k))

let prop_nra_batched_halts_no_earlier =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"batched halting depth >= per-depth halting depth"
       QCheck.(pair (int_bound 100_000) (int_range 2 10))
       (fun (seed, p) ->
         let rel = Synthetic.generate ~seed:(string_of_int seed) ~name:"nrah" ~rows:60 ~attrs:3
                     (Synthetic.Uniform { lo = 0; hi = 40 }) in
         let f = Scoring.sum_of [ 0; 1; 2 ] in
         let sl = Sorted_lists.of_relation rel in
         let _, s1 = Nra.run sl f ~k:5 in
         let _, sp = Nra.run ~check_every:p sl f ~k:5 in
         sp.Nra.halting_depth >= s1.Nra.halting_depth))

let test_nra_skewed_halts_early () =
  (* correlated data lets NRA stop long before exhausting the lists *)
  let rel = Synthetic.generate ~seed:"skew" ~name:"sk" ~rows:500 ~attrs:3
              (Synthetic.Correlated { base = Synthetic.Uniform { lo = 0; hi = 10_000 }; noise = 3 }) in
  let sl = Sorted_lists.of_relation rel in
  let _, stats = Nra.run sl (Scoring.sum_of [ 0; 1; 2 ]) ~k:5 in
  Alcotest.(check bool) "halts well before n" true (stats.Nra.halting_depth < 100)

(* ---------------- TA ---------------- *)

let test_ta_example () =
  let sl = Sorted_lists.of_relation rel3 in
  let f = Scoring.sum_of [ 0; 1; 2 ] in
  let results, stats = Ta.run sl f ~k:2 in
  Alcotest.(check (list (pair int int))) "exact top-2"
    [ (2, 18); (1, 16) ]
    (List.map (fun r -> (r.Ta.oid, r.Ta.score)) results);
  Alcotest.(check bool) "random accesses happened" true (stats.Ta.random_accesses > 0)

let prop_ta_matches_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"TA returns the exact oracle answer"
       QCheck.(triple (int_bound 100_000) (int_range 1 8) (int_range 2 4))
       (fun (seed, k, m) ->
         let rel = Synthetic.generate ~seed:(string_of_int seed) ~name:"ta" ~rows:50 ~attrs:m
                     (Synthetic.Uniform { lo = 0; hi = 40 }) in
         let f = Scoring.sum_of (List.init m Fun.id) in
         let sl = Sorted_lists.of_relation rel in
         let results, _ = Ta.run sl f ~k in
         List.map (fun r -> (r.Ta.oid, r.Ta.score)) results = Naive_topk.run rel f ~k))

let prop_ta_halts_no_later_than_nra =
  (* TA's exact scores let it halt at or before NRA's depth — the price is
     the random accesses NRA is chosen to avoid *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"TA halting depth <= NRA halting depth"
       QCheck.(pair (int_bound 100_000) (int_range 1 6))
       (fun (seed, k) ->
         let rel = Synthetic.generate ~seed:(string_of_int seed) ~name:"tanra" ~rows:50 ~attrs:3
                     (Synthetic.Uniform { lo = 0; hi = 40 }) in
         let f = Scoring.sum_of [ 0; 1; 2 ] in
         let sl = Sorted_lists.of_relation rel in
         let _, ta = Ta.run sl f ~k in
         let _, nra = Nra.run sl f ~k in
         ta.Ta.halting_depth <= nra.Nra.halting_depth))

let test_ta_random_access_growth () =
  (* every distinct object seen costs one random access *)
  let rel = Synthetic.generate ~seed:"taacc" ~name:"ta" ~rows:40 ~attrs:3
      (Synthetic.Uniform { lo = 0; hi = 30 }) in
  let sl = Sorted_lists.of_relation rel in
  let _, stats = Ta.run sl (Scoring.sum_of [ 0; 1; 2 ]) ~k:5 in
  Alcotest.(check bool) "at least k accesses" true (stats.Ta.random_accesses >= 5);
  Alcotest.(check bool) "at most 3 per depth" true
    (stats.Ta.random_accesses <= 3 * stats.Ta.halting_depth)

let suite =
  [ ( "relation",
      [ Alcotest.test_case "basics" `Quick test_relation_basics;
        Alcotest.test_case "validation" `Quick test_relation_validation
      ] );
    ( "synthetic",
      [ Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
        Alcotest.test_case "ranges" `Quick test_synthetic_ranges;
        Alcotest.test_case "correlated structure" `Quick test_correlated_structure;
        Alcotest.test_case "uci shapes" `Quick test_uci_shapes
      ] );
    ( "sorted-lists",
      [ Alcotest.test_case "ordering and ties" `Quick test_sorted_lists;
        prop_sorted_lists_sorted
      ] );
    ( "scoring",
      [ Alcotest.test_case "evaluation" `Quick test_scoring;
        Alcotest.test_case "validation" `Quick test_scoring_validation
      ] );
    ("naive", [ Alcotest.test_case "oracle" `Quick test_naive ]);
    ( "nra",
      [ Alcotest.test_case "paper Figure 3" `Quick test_nra_example;
        Alcotest.test_case "exhaustion" `Quick test_nra_exhausts_small;
        Alcotest.test_case "k > n" `Quick test_nra_k_exceeds_n;
        Alcotest.test_case "skewed halts early" `Quick test_nra_skewed_halts_early;
        prop_nra_correct;
        prop_nra_correct_weighted;
        prop_nra_batched_same_answers;
        prop_nra_batched_halts_no_earlier
      ] );
    ( "ta",
      [ Alcotest.test_case "exact answers on the example" `Quick test_ta_example;
        Alcotest.test_case "random access accounting" `Quick test_ta_random_access_growth;
        prop_ta_matches_oracle;
        prop_ta_halts_no_later_than_nra
      ] )
  ]

let () = Alcotest.run "topk" suite
