(* The paper's Example 1.1: an authorized doctor queries an encrypted
   electronic-health-record table for the top-2 patients by
   chol + thalach, without the cloud learning anything about the records.

   Run with: dune exec examples/health_records.exe *)

open Crypto
open Dataset
open Topk
open Sectopk

(* Table 1 of the paper: patients(age, id, trestbps, chol, thalach).
   Rows: Bob, Celvin, David, Emma, Flora. *)
let patients =
  [| ("Bob", [| 38; 121; 110; 196; 166 |]);
     ("Celvin", [| 43; 222; 120; 201; 160 |]);
     ("David", [| 60; 285; 100; 248; 142 |]);
     ("Emma", [| 36; 956; 120; 267; 112 |]);
     ("Flora", [| 43; 756; 100; 223; 127 |]) |]

let chol = 3
let thalach = 4

let () =
  let rel = Relation.create ~name:"patients" (Array.map snd patients) in
  let name_of_oid oid = fst patients.(oid) in

  Format.printf "Encrypted patients table (Table 1): %d records, %d attributes@."
    (Relation.n_rows rel) (Relation.n_attrs rel);

  (* the data owner encrypts and outsources; the doctor requests keys *)
  let rng = Rng.create ~seed:"health" in
  let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:192 in
  let er, key = Scheme.encrypt ~s:4 rng pub rel in

  (* SELECT * FROM patients ORDER BY chol + thalach STOP AFTER 2 *)
  let scoring = Scoring.sum_of [ chol; thalach ] in
  let token = Scheme.token key ~m_total:(Relation.n_attrs rel) scoring ~k:2 in
  Format.printf "Doctor's token targets permuted lists %s@."
    (String.concat ", " (List.map (fun (l, _) -> string_of_int l) token.Scheme.attrs));

  let ctx = Proto.Ctx.of_keys ~blind_bits:48 rng pub sk in
  let result = Query.run ctx er token { Query.default_options with variant = Query.Elim } in

  let ids = List.init (Relation.n_rows rel) (Relation.object_id rel) in
  Format.printf "@.Top-2 patients by chol + thalach:@.";
  List.iter
    (fun (id, w, _) ->
      let oid = int_of_string (String.sub id 1 (String.length id - 1)) in
      Format.printf "  %-7s chol + thalach = %d@." (name_of_oid oid) w)
    (Client.real_results ctx key ~ids result);
  Format.printf "@.(The paper's expected answer: David and Emma.)@."
