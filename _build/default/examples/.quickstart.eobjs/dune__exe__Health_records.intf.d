examples/health_records.mli:
