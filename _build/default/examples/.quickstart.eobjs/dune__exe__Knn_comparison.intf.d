examples/knn_comparison.mli:
