examples/secure_join_demo.ml: Array Bignum Crypto Dataset Format Join List Nat Paillier Proto Relation Rng
