examples/secure_join_demo.mli:
