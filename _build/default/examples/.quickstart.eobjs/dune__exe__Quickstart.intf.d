examples/quickstart.mli:
