examples/knn_comparison.ml: Array Client Crypto Dataset Format List Paillier Proto Query Relation Rng Scheme Scoring Sectopk Sknn String Synthetic Topk Unix
