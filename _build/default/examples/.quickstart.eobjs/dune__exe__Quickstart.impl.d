examples/quickstart.ml: Client Crypto Dataset Format List Naive_topk Paillier Proto Query Relation Rng Scheme Scoring Sectopk String Topk
