examples/oblivious_retrieval.ml: Array Client Crypto Dataset Format List Paillier Proto Query Relation Retrieval Rng Scheme Scoring Sectopk String Synthetic Topk
