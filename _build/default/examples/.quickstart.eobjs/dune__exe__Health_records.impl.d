examples/health_records.ml: Array Client Crypto Dataset Format List Paillier Proto Query Relation Rng Scheme Scoring Sectopk String Topk
