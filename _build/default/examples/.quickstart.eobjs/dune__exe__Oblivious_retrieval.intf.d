examples/oblivious_retrieval.mli:
