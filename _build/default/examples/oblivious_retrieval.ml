(* Retrieving the actual records after a top-k query — the paper's two
   options (Section 4): direct slot access (cheap, leaks which encrypted
   records queries return) versus Path ORAM (the access pattern reveals
   nothing).

   This example runs the same secure top-k query twice and fetches the
   winning records through both channels, printing what the storage
   server observed in each case.

   Run with: dune exec examples/oblivious_retrieval.exe *)

open Crypto
open Dataset
open Topk
open Sectopk

let () =
  let rel =
    Synthetic.generate ~seed:"retrieval" ~name:"records" ~rows:24 ~attrs:4
      (Synthetic.Correlated { base = Synthetic.Uniform { lo = 100; hi = 999 }; noise = 10 })
  in
  let rng = Rng.create ~seed:"retrieval-keys" in
  let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits:128 in
  let er, key = Scheme.encrypt ~s:4 rng pub rel in
  let store = Retrieval.setup rng rel in

  let run_query () =
    let ctx = Proto.Ctx.of_keys ~blind_bits:48 rng pub sk in
    let tk = Scheme.token key ~m_total:4 (Scoring.sum_of [ 0; 1; 2; 3 ]) ~k:3 in
    let res = Query.run ctx er tk { Query.default_options with variant = Query.Elim } in
    Client.real_results ctx key ~ids:(List.init 24 (Relation.object_id rel)) res
    |> List.map (fun (id, _, _) -> int_of_string (String.sub id 1 (String.length id - 1)))
  in

  let winners = run_query () in
  Format.printf "top-3 object ids: %s@."
    (String.concat ", " (List.map string_of_int winners));

  (* the same client runs the query twice on different days; the top-3 and
     hence the retrieved slots repeat *)
  let fetch mode = List.map (fun oid -> Retrieval.fetch store ~mode oid) winners in
  let _ = fetch Retrieval.Direct in
  let _ = fetch Retrieval.Direct in
  let records = fetch Retrieval.Oblivious in
  let _ = fetch Retrieval.Oblivious in

  Format.printf "@.retrieved records:@.";
  List.iter2
    (fun oid row ->
      Format.printf "  o%-3d [%s]@." oid
        (String.concat "; " (Array.to_list (Array.map string_of_int row))))
    winners records;

  Format.printf "@.What the storage server saw:@.";
  Format.printf "  direct mode   : slots %s  <- repeated queries are linkable@."
    (String.concat ", " (List.map string_of_int (Retrieval.observed_direct store)));
  Format.printf "  oblivious mode: ORAM paths %s  <- fresh uniform paths each time@."
    (String.concat ", " (List.map string_of_int (Retrieval.observed_oblivious store)));
  Format.printf "@.ORAM cost: %d bytes per fetch (vs one slot for direct)@."
    (Retrieval.oblivious_bytes_per_fetch store)
