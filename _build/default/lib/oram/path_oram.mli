(** Path ORAM (Stefanov et al., CCS'13) — the oblivious storage the paper
    names for result retrieval (Section 4: after SecQuery returns the
    top-k ids, "the client retrieves the records using oblivious RAM
    [which] does not even reveal the location of the actual encrypted
    records").

    A binary tree of [z]-slot buckets stores fixed-size encrypted blocks;
    a client-side position map assigns every block a random leaf, re-drawn
    on each access. One logical access reads and rewrites exactly one
    root-to-leaf path, so the server observes a sequence of uniformly
    random paths whatever the client touches — the access pattern leaks
    nothing. Overflowing blocks wait in a client-side stash.

    Blocks are encrypted with a fresh per-write keystream (HMAC-DRBG), so
    the rewritten path is unlinkable to what was read. The server state
    and the observed path sequence are exposed for the leakage tests. *)

type t

(** [create rng ~capacity ~block_bytes] — an ORAM for block ids
    [0 .. capacity-1], each holding exactly [block_bytes] bytes
    (shorter payloads are zero-padded). [z] is the bucket capacity
    (default 4). *)
val create : ?z:int -> Crypto.Rng.t -> capacity:int -> block_bytes:int -> t

val capacity : t -> int
val block_bytes : t -> int

(** [write t id payload] stores [payload] (length <= [block_bytes]). *)
val write : t -> int -> string -> unit

(** [read t id] returns the stored payload (zero-padded to
    [block_bytes]; empty-string blocks read back as zeros). *)
val read : t -> int -> string

(** {2 Server view (for tests and accounting)} *)

(** Leaves of the paths accessed so far, oldest first. *)
val paths_accessed : t -> int list

(** Tree height (levels). *)
val levels : t -> int

(** Current client-side stash occupancy. *)
val stash_size : t -> int

(** Total server storage in bytes. *)
val server_bytes : t -> int

(** Bytes moved per access (one path down + one path up). *)
val bytes_per_access : t -> int
