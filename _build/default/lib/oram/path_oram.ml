open Crypto

(* A server block: fixed-width ciphertext. The id and payload are
   recovered client-side by decrypting with the per-block keystream. *)
type cipher_block = string

type block = { id : int; payload : string (* plaintext, block_bytes wide *) }

type t = {
  z : int;
  capacity : int;
  block_bytes : int;
  levels : int; (* tree has 2^(levels-1) leaves, 2^levels - 1 buckets *)
  leaves : int;
  (* server state: ciphertext buckets, z slots each *)
  buckets : cipher_block array array;
  (* client state *)
  position : int array; (* id -> leaf *)
  mutable stash : block list;
  rng : Rng.t;
  key : string; (* client encryption key *)
  mutable write_counter : int;
  mutable accessed : int list; (* server-observed leaves, newest first *)
}

let dummy_id = -1

(* ---- fixed-width block encryption: 4-byte id || payload, XORed with an
   HMAC-DRBG keystream derived from (key, nonce); nonce stored in clear
   ahead of the ciphertext. A fresh nonce per write makes rewritten
   buckets unlinkable. ---- *)

let keystream key nonce len = Drbg.generate (Drbg.create ~seed:(key ^ "|" ^ nonce)) len

let encode_id id =
  let b = Bytes.create 4 in
  let v = if id = dummy_id then 0xFFFFFFFF else id in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (v land 0xff));
  Bytes.to_string b

let decode_id s =
  let v =
    (Char.code s.[0] lsl 24) lor (Char.code s.[1] lsl 16) lor (Char.code s.[2] lsl 8)
    lor Char.code s.[3]
  in
  if v = 0xFFFFFFFF then dummy_id else v

let xor_with a ks =
  String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code ks.[i]))

let seal t (b : block option) : cipher_block =
  t.write_counter <- t.write_counter + 1;
  let nonce = string_of_int t.write_counter in
  let plain =
    match b with
    | None -> encode_id dummy_id ^ String.make t.block_bytes '\000'
    | Some { id; payload } -> encode_id id ^ payload
  in
  let ks = keystream t.key nonce (String.length plain) in
  Printf.sprintf "%08x" t.write_counter ^ xor_with plain ks

let open_block t (c : cipher_block) : block option =
  let nonce = string_of_int (int_of_string ("0x" ^ String.sub c 0 8)) in
  let body = String.sub c 8 (String.length c - 8) in
  let plain = xor_with body (keystream t.key nonce (String.length body)) in
  let id = decode_id (String.sub plain 0 4) in
  if id = dummy_id then None else Some { id; payload = String.sub plain 4 (String.length plain - 4) }

let create ?(z = 4) rng ~capacity ~block_bytes =
  if capacity <= 0 then invalid_arg "Path_oram.create: capacity";
  if block_bytes <= 0 then invalid_arg "Path_oram.create: block_bytes";
  let rec lv l = if 1 lsl (l - 1) >= capacity then l else lv (l + 1) in
  let levels = lv 1 in
  let leaves = 1 lsl (levels - 1) in
  let n_buckets = (2 * leaves) - 1 in
  let t =
    {
      z;
      capacity;
      block_bytes;
      levels;
      leaves;
      buckets = Array.make n_buckets [||];
      position = Array.init capacity (fun _ -> 0);
      stash = [];
      rng = Rng.fork rng ~label:"path-oram";
      key = Rng.bytes rng 32;
      write_counter = 0;
      accessed = [];
    }
  in
  for i = 0 to capacity - 1 do
    t.position.(i) <- Rng.int_below t.rng leaves
  done;
  (* initialize every bucket with encrypted dummies *)
  for b = 0 to n_buckets - 1 do
    t.buckets.(b) <- Array.init z (fun _ -> seal t None)
  done;
  t

let capacity t = t.capacity
let block_bytes t = t.block_bytes
let levels t = t.levels

(* bucket index of level l (root = 0) on the path to [leaf] *)
let bucket_at t ~leaf ~level =
  let node = ref 0 in
  for l = 1 to level do
    let bit = (leaf lsr (t.levels - 1 - l)) land 1 in
    node := (2 * !node) + 1 + bit
  done;
  ignore t;
  !node

(* does the path to leaf_a pass through the level-l bucket of leaf_b's path? *)
let same_prefix t a b level = bucket_at t ~leaf:a ~level = bucket_at t ~leaf:b ~level

let pad t payload =
  if String.length payload > t.block_bytes then invalid_arg "Path_oram: payload too long";
  payload ^ String.make (t.block_bytes - String.length payload) '\000'

let access t id ~write_payload =
  if id < 0 || id >= t.capacity then invalid_arg "Path_oram: id out of range";
  let x = t.position.(id) in
  t.accessed <- x :: t.accessed;
  t.position.(id) <- Rng.int_below t.rng t.leaves;
  (* read the whole path into the stash *)
  for level = 0 to t.levels - 1 do
    let b = bucket_at t ~leaf:x ~level in
    Array.iter
      (fun c -> match open_block t c with Some blk -> t.stash <- blk :: t.stash | None -> ())
      t.buckets.(b)
  done;
  (* fetch / update the target block *)
  let found = List.find_opt (fun blk -> blk.id = id) t.stash in
  let result =
    match found with Some blk -> blk.payload | None -> String.make t.block_bytes '\000'
  in
  (match write_payload with
  | Some p ->
    t.stash <- { id; payload = pad t p } :: List.filter (fun blk -> blk.id <> id) t.stash
  | None ->
    (* keep the (possibly absent) block in the stash under its new leaf *)
    if found = None then () else ());
  (* evict: deepest level first, greedily pack stash blocks whose current
     assigned leaf shares the bucket *)
  for level = t.levels - 1 downto 0 do
    let b = bucket_at t ~leaf:x ~level in
    let eligible, rest =
      List.partition (fun blk -> same_prefix t t.position.(blk.id) x level) t.stash
    in
    let into, back =
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | blk :: more -> if i = 0 then (List.rev acc, blk :: more) else split (i - 1) (blk :: acc) more
      in
      split t.z [] eligible
    in
    t.stash <- back @ rest;
    t.buckets.(b) <-
      Array.init t.z (fun i ->
          match List.nth_opt into i with blk -> seal t blk)
  done;
  result

let write t id payload = ignore (access t id ~write_payload:(Some payload))
let read t id = access t id ~write_payload:None
let paths_accessed t = List.rev t.accessed
let stash_size t = List.length t.stash

let server_bytes t =
  Array.fold_left (fun acc bucket -> acc + Array.fold_left (fun a c -> a + String.length c) 0 bucket)
    0 t.buckets

let bytes_per_access t = 2 * t.levels * t.z * (8 + 4 + t.block_bytes)
