lib/oram/path_oram.ml: Array Bytes Char Crypto Drbg List Printf Rng String
