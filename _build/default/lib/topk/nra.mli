(** The No-Random-Access algorithm of Fagin, Lotem and Naor (PODS'01),
    Algorithm 1 of the paper — the plaintext skeleton that SecQuery
    executes obliviously.

    Sorted access proceeds in parallel over one list per scoring
    attribute, best-first. At each depth every seen object's score
    interval [[W(o), B(o)]] is refreshed: the worst score assumes 0 for
    unseen attributes (scores are non-negative), the best score assumes
    the current bottom (last seen) value of each unseen list. The run
    halts once k distinct objects have been seen and no other object —
    seen or unseen — can beat the current k-th worst score. *)

type result = { oid : int; worst : int; best : int }

type stats = {
  halting_depth : int;  (** number of depths consumed (1-based). *)
  distinct_seen : int;  (** distinct objects accessed before halting. *)
  exhausted : bool;  (** whether the lists ran out before the bound test fired. *)
}

(** [run ?check_every lists scoring ~k] runs NRA to completion.
    [check_every] = [p] evaluates the halting condition only every [p]
    depths (the plaintext analogue of the paper's batched SecQuery);
    default 1. Returns the top-[k] results ordered by descending worst
    score (ties by ascending oid). *)
val run : ?check_every:int -> Dataset.Sorted_lists.t -> Scoring.t -> k:int -> result list * stats

(** A top-k answer is NRA-correct iff every returned object's exact score
    is at least the k-th highest exact score (NRA may return any such
    object set; scores themselves are bounds, not exact values). *)
val valid_answer : Dataset.Relation.t -> Scoring.t -> k:int -> int list -> bool
