open Dataset
(** Monotone linear scoring functions [F_W(o) = sum w_i * x_i(o)]
    (paper Section 3.1): non-negative weights over a subset of the
    relation's attributes. *)

type t

(** [create pairs] with [(attr, weight)] pairs; attributes must be
    distinct, weights non-negative with at least one positive. *)
val create : (int * int) list -> t

(** Binary weights over the given attribute set — the form the protocol
    presentation uses (Section 7). *)
val sum_of : int list -> t

val attrs : t -> int list
val weights : t -> (int * int) list
val arity : t -> int

(** [score t rel oid] evaluates [F_W] on a plaintext relation. *)
val score : t -> Relation.t -> int -> int

(** Weighted local score of one attribute. *)
val local : t -> attr:int -> int -> int

(** Maximum possible [F_W] value on the relation (for sentinel sizing). *)
val max_score : t -> Relation.t -> int
