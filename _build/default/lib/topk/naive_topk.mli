(** Exact top-k by full scan — the correctness oracle for NRA and for the
    secure protocols. *)

(** [run rel scoring ~k] returns the top-[k] [(oid, score)] pairs, sorted
    by descending score, ties broken by ascending oid. *)
val run : Dataset.Relation.t -> Scoring.t -> k:int -> (int * int) list

(** The k-th highest score (the admission threshold): any correct top-k
    answer contains only objects whose score is >= this value. *)
val kth_score : Dataset.Relation.t -> Scoring.t -> k:int -> int
