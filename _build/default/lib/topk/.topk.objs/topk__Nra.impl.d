lib/topk/nra.ml: Array Dataset Hashtbl List Naive_topk Relation Scoring Sorted_lists
