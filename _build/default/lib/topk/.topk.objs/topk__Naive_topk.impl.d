lib/topk/naive_topk.ml: Array Dataset Relation Scoring
