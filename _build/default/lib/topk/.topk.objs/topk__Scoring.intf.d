lib/topk/scoring.mli: Dataset Relation
