lib/topk/scoring.ml: Dataset List Relation
