lib/topk/ta.mli: Dataset Scoring
