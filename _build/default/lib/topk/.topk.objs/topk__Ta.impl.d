lib/topk/ta.ml: Array Dataset Hashtbl List Scoring Sorted_lists
