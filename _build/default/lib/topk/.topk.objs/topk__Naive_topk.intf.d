lib/topk/naive_topk.mli: Dataset Scoring
