lib/topk/nra.mli: Dataset Scoring
