(** The Threshold Algorithm (Fagin–Lotem–Naor), the other classic optimal
    top-k method — included as the foil for the paper's design choice:
    TA performs a {e random access} for every newly seen object to learn
    its exact score, which in the encrypted setting would hand the server
    the association between list positions — exactly the access-pattern
    leakage NRA avoids (Section 3.4: NRA "leaks minimal information to the
    cloud server (... no need to access intermediate objects)").

    [run] reports the number of random accesses performed so the
    comparison can be made quantitative (see the plaintext-baseline
    tests and DESIGN.md). *)

type result = { oid : int; score : int (* exact *) }

type stats = {
  halting_depth : int;
  random_accesses : int;  (** what an encrypted TA would leak, per item *)
}

(** [run lists scoring ~k] — TA over the sorted-access view, with random
    access into the relation for exact scores. Returns the exact top-k
    (descending score, ties by oid). *)
val run : Dataset.Sorted_lists.t -> Scoring.t -> k:int -> result list * stats
