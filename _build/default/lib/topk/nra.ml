open Dataset

type result = { oid : int; worst : int; best : int }
type stats = { halting_depth : int; distinct_seen : int; exhausted : bool }

let run ?(check_every = 1) lists scoring ~k =
  if k <= 0 then invalid_arg "Nra.run: k <= 0";
  if check_every <= 0 then invalid_arg "Nra.run: check_every <= 0";
  let attrs = Array.of_list (Scoring.attrs scoring) in
  let m = Array.length attrs in
  let n = Sorted_lists.depth lists in
  (* seen: oid -> weighted local scores, None for not-yet-seen lists *)
  let seen : (int, int option array) Hashtbl.t = Hashtbl.create 64 in
  let bottoms = Array.make m max_int in
  let access depth =
    for j = 0 to m - 1 do
      let it = Sorted_lists.item lists ~list:attrs.(j) ~depth in
      let w = Scoring.local scoring ~attr:attrs.(j) it.Sorted_lists.score in
      bottoms.(j) <- w;
      let known =
        match Hashtbl.find_opt seen it.Sorted_lists.oid with
        | Some a -> a
        | None ->
          let a = Array.make m None in
          Hashtbl.add seen it.Sorted_lists.oid a;
          a
      in
      known.(j) <- Some w
    done
  in
  let bounds known =
    let worst = ref 0 and best = ref 0 in
    for j = 0 to m - 1 do
      match known.(j) with
      | Some w ->
        worst := !worst + w;
        best := !best + w
      | None -> best := !best + bottoms.(j)
    done;
    (!worst, !best)
  in
  let snapshot () =
    let all =
      Hashtbl.fold
        (fun oid known acc ->
          let worst, best = bounds known in
          { oid; worst; best } :: acc)
        seen []
    in
    List.sort
      (fun a b -> if b.worst <> a.worst then compare b.worst a.worst else compare a.oid b.oid)
      all
  in
  let can_halt () =
    let all = snapshot () in
    if List.length all < k then None
    else begin
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | x :: rest -> if i = 0 then (List.rev acc, x :: rest) else split (i - 1) (x :: acc) rest
      in
      let topk, others = split k [] all in
      let mk = (List.nth topk (k - 1)).worst in
      let unseen_best = Array.fold_left (fun acc b -> acc + b) 0 bottoms in
      let seen_all = Hashtbl.length seen = Relation.n_rows (Sorted_lists.relation lists) in
      let others_ok = List.for_all (fun r -> r.best <= mk) others in
      let unseen_ok = seen_all || unseen_best <= mk in
      if others_ok && unseen_ok then Some topk else None
    end
  in
  let rec go depth =
    if depth >= n then begin
      (* lists exhausted: all bounds are exact *)
      let all = snapshot () in
      let rec take i = function
        | [] -> []
        | x :: rest -> if i = 0 then [] else x :: take (i - 1) rest
      in
      (take k all, { halting_depth = n; distinct_seen = Hashtbl.length seen; exhausted = true })
    end
    else begin
      access depth;
      let at_checkpoint = (depth + 1) mod check_every = 0 || depth = n - 1 in
      match if at_checkpoint then can_halt () else None with
      | Some topk ->
        ( topk,
          { halting_depth = depth + 1; distinct_seen = Hashtbl.length seen; exhausted = false } )
      | None -> go (depth + 1)
    end
  in
  go 0

let valid_answer rel scoring ~k oids =
  let threshold = Naive_topk.kth_score rel scoring ~k in
  let expected = min k (Relation.n_rows rel) in
  List.length oids = expected
  && List.length (List.sort_uniq compare oids) = expected
  && List.for_all (fun oid -> Scoring.score scoring rel oid >= threshold) oids
