open Dataset

type t = (int * int) list (* (attr, weight), weight > 0 *)

let create pairs =
  if pairs = [] then invalid_arg "Scoring.create: empty";
  let attrs = List.map fst pairs in
  let sorted = List.sort_uniq compare attrs in
  if List.length sorted <> List.length attrs then invalid_arg "Scoring.create: duplicate attribute";
  if List.exists (fun (_, w) -> w < 0) pairs then invalid_arg "Scoring.create: negative weight";
  if List.for_all (fun (_, w) -> w = 0) pairs then invalid_arg "Scoring.create: all-zero weights";
  List.filter (fun (_, w) -> w > 0) pairs

let sum_of attrs = create (List.map (fun a -> (a, 1)) attrs)
let attrs t = List.map fst t
let weights t = t
let arity t = List.length t

let score t rel oid =
  List.fold_left (fun acc (attr, w) -> acc + (w * Relation.value rel ~row:oid ~attr)) 0 t

let local t ~attr x =
  match List.assoc_opt attr t with
  | Some w -> w * x
  | None -> invalid_arg "Scoring.local: attribute not in scoring function"

let max_score t rel =
  Relation.fold_rows rel ~init:0 ~f:(fun acc oid _ -> max acc (score t rel oid))
