open Dataset

type result = { oid : int; score : int }
type stats = { halting_depth : int; random_accesses : int }

let run lists scoring ~k =
  if k <= 0 then invalid_arg "Ta.run: k <= 0";
  let rel = Sorted_lists.relation lists in
  let attrs = Array.of_list (Scoring.attrs scoring) in
  let m = Array.length attrs in
  let n = Sorted_lists.depth lists in
  let seen = Hashtbl.create 64 in
  let random_accesses = ref 0 in
  (* current top-k candidates as a sorted list (small k: a list is fine) *)
  let top = ref [] in
  let insert r =
    top :=
      List.filteri (fun i _ -> i < k)
        (List.sort
           (fun a b -> if b.score <> a.score then compare b.score a.score else compare a.oid b.oid)
           (r :: !top))
  in
  let kth_score () =
    if List.length !top < k then min_int else (List.nth !top (k - 1)).score
  in
  let bottoms = Array.make m max_int in
  let rec go depth =
    if depth >= n then ({ halting_depth = n; random_accesses = !random_accesses }, ())
    else begin
      for j = 0 to m - 1 do
        let it = Sorted_lists.item lists ~list:attrs.(j) ~depth in
        bottoms.(j) <- Scoring.local scoring ~attr:attrs.(j) it.Sorted_lists.score;
        if not (Hashtbl.mem seen it.Sorted_lists.oid) then begin
          Hashtbl.add seen it.Sorted_lists.oid ();
          (* the random access: fetch the full record for the exact score *)
          incr random_accesses;
          insert { oid = it.Sorted_lists.oid; score = Scoring.score scoring rel it.Sorted_lists.oid }
        end
      done;
      let threshold = Array.fold_left ( + ) 0 bottoms in
      if kth_score () >= threshold then
        ({ halting_depth = depth + 1; random_accesses = !random_accesses }, ())
      else go (depth + 1)
    end
  in
  let stats, () = go 0 in
  (!top, stats)
