open Dataset

let all_scored rel scoring =
  let n = Relation.n_rows rel in
  let scored = Array.init n (fun oid -> (oid, Scoring.score scoring rel oid)) in
  Array.sort (fun (o1, s1) (o2, s2) -> if s2 <> s1 then compare s2 s1 else compare o1 o2) scored;
  scored

let run rel scoring ~k =
  if k <= 0 then invalid_arg "Naive_topk.run: k <= 0";
  let scored = all_scored rel scoring in
  Array.to_list (Array.sub scored 0 (min k (Array.length scored)))

let kth_score rel scoring ~k =
  let scored = all_scored rel scoring in
  let idx = min k (Array.length scored) - 1 in
  snd scored.(idx)
