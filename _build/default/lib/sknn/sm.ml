open Bignum
open Crypto
open Proto

let protocol = "SkNN"

let secure_multiply (ctx : Ctx.t) a b =
  let s1 = ctx.Ctx.s1 and s2 = ctx.Ctx.s2 in
  let pub = s1.Ctx.pub in
  let n = pub.Paillier.n in
  let ra = Rng.nat_below s1.Ctx.rng n and rb = Rng.nat_below s1.Ctx.rng n in
  let a' = Paillier.add pub a (Paillier.encrypt s1.Ctx.rng pub ra) in
  let b' = Paillier.add pub b (Paillier.encrypt s1.Ctx.rng pub rb) in
  let ct = Paillier.ciphertext_bytes pub in
  Channel.send s1.Ctx.chan ~dir:Channel.S1_to_s2 ~label:protocol ~bytes:(2 * ct);
  (* --- S2: multiply the blinded plaintexts --- *)
  let ha = Paillier.decrypt s2.Ctx.sk a' and hb = Paillier.decrypt s2.Ctx.sk b' in
  let h = Paillier.encrypt s2.Ctx.rng2 pub (Modular.mul ha hb ~m:n) in
  Channel.send s2.Ctx.chan2 ~dir:Channel.S2_to_s1 ~label:protocol ~bytes:ct;
  Channel.round_trip s1.Ctx.chan;
  (* --- S1: ab = h - a*rb - b*ra - ra*rb --- *)
  let t1 = Paillier.scalar_mul pub a rb in
  let t2 = Paillier.scalar_mul pub b ra in
  let t3 = Paillier.encrypt s1.Ctx.rng pub (Modular.mul ra rb ~m:n) in
  Paillier.sub pub (Paillier.sub pub (Paillier.sub pub h t1) t2) t3
