lib/sknn/sbd.ml: Array Bignum Channel Crypto Ctx Modular Nat Paillier Proto Rng
