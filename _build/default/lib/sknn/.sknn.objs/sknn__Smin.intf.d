lib/sknn/smin.mli: Crypto Paillier Proto
