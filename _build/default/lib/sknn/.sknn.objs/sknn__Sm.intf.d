lib/sknn/sm.mli: Crypto Paillier Proto
