lib/sknn/sbd.mli: Crypto Paillier Proto
