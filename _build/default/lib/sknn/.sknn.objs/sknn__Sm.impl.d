lib/sknn/sm.ml: Bignum Channel Crypto Ctx Modular Paillier Proto Rng
