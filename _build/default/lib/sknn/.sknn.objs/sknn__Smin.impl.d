lib/sknn/smin.ml: Array Bignum Crypto Ctx Nat Paillier Proto Sbd Sm
