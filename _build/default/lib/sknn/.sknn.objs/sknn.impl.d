lib/sknn/sknn.ml: Array Bignum Channel Crypto Ctx Dataset Fun Gadgets List Nat Paillier Proto Relation Rng Sbd Sm Smin Trace
