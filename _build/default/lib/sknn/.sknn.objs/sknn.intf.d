lib/sknn/sknn.mli: Crypto Dataset Paillier Proto Relation Rng Sbd Sm Smin
