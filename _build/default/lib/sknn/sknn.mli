(** The secure-kNN comparison baseline of Section 11.3 — a two-cloud kNN
    protocol in the style of Elmehdwi, Samanthula and Jiang (ICDE'14),
    reproduced at the complexity the paper cites: for every query the
    servers touch {e all} [n] records with [O(n * m)] secure
    multiplications and [O(n * m)] ciphertext traffic, which is what makes
    it orders of magnitude slower than SecTopK's sorted-access scheme.

    The building block is the standard two-party secure multiplication
    (SM): S1 additively blinds both operands, S2 decrypts and multiplies,
    and S1 strips the cross terms homomorphically. Distances are squared
    Euclidean ([sum (x_i - q_i)^2]); the k nearest records are selected
    through a blinded sort. See DESIGN.md for the deviations from [21]
    (which only make the baseline {e faster}, strengthening the paper's
    comparison). *)

open Crypto
open Dataset

type enc_db

(** Per-record attribute encryption of the whole relation. *)
val encrypt_db : Rng.t -> Paillier.public -> Relation.t -> enc_db

val n_records : enc_db -> int

(** Serialized size in bytes. *)
val size_bytes : Paillier.public -> enc_db -> int

(** [secure_multiply ctx a b] — the SM sub-protocol:
    [Enc(a) x Enc(b) -> Enc(a*b)] with one round through S2. *)
val secure_multiply :
  Proto.Ctx.t -> Paillier.ciphertext -> Paillier.ciphertext -> Paillier.ciphertext

(** [query ctx db ~point ~k] returns the indices of the [k] records
    nearest to [point] (squared Euclidean), nearest first. Selection is
    a single blinded sort — cheaper than [21]'s SMIN, so only the
    distance phase is cost-faithful. *)
val query : Proto.Ctx.t -> enc_db -> point:int array -> k:int -> int list

(** [query_smin ctx db ~point ~k ~bits] — same answers via [21]'s actual
    selection machinery: every distance is bit-decomposed ({!Sbd}) and the
    k minima are extracted with the bitwise secure-minimum ({!Smin}),
    [O(n * k * bits)] secure multiplications in total. Distances must fit
    in [bits]. This is the baseline the sec11.3 benchmark times. *)
val query_smin : Proto.Ctx.t -> enc_db -> point:int array -> k:int -> bits:int -> int list

(** The [21] protocol stack, re-exported. *)
module Sm = Sm

module Sbd = Sbd
module Smin = Smin
