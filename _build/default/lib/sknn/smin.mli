(** The bitwise secure comparison and secure-minimum machinery of the
    Elmehdwi–Samanthula–Jiang kNN protocol [21], built on {!Sm.secure_multiply}
    and {!Sbd}.

    [greater_bit] computes [Enc([u > v])] from bit decompositions with
    neither server learning the outcome: XOR the bit strings (one SM per
    bit), prefix-OR to isolate the first difference (one SM per bit), and
    select the winning side's bit (one SM per bit) — the O(l)
    secure-multiplication structure of [21]'s SC/SMIN.

    [min_pair] then selects [Enc(min(u, v))] with two more SMs. [argmin]
    folds it over a candidate set. *)

open Crypto

(** [Enc(1)] iff [u > v], from LSB-first bit encryptions of equal length. *)
val greater_bit :
  Proto.Ctx.t -> Paillier.ciphertext array -> Paillier.ciphertext array -> Paillier.ciphertext

(** [min_pair_bits ctx u_bits v_bits ~u_packed ~v_packed] —
    [Enc(min(u, v))] given both bit decompositions and packed forms. *)
val min_pair_bits :
  Proto.Ctx.t ->
  Paillier.ciphertext array ->
  Paillier.ciphertext array ->
  u_packed:Paillier.ciphertext ->
  v_packed:Paillier.ciphertext ->
  Paillier.ciphertext

(** [min_pair ctx ~bits u v] — [Enc(min(u, v))] from the packed values
    ([u], [v] are decomposed internally). *)
val min_pair :
  Proto.Ctx.t -> bits:int -> Paillier.ciphertext -> Paillier.ciphertext -> Paillier.ciphertext

(** [min_of ctx ~bits cs] — [Enc(min cs)] by folding {!min_pair} over the
    (pre-decomposed) candidates. *)
val min_of :
  Proto.Ctx.t -> Paillier.ciphertext array array -> Paillier.ciphertext array
