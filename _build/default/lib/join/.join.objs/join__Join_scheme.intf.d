lib/join/join_scheme.mli: Crypto Dataset Ehl Paillier Prf Relation Rng
