lib/join/sec_join.ml: Array Bigint Bignum Channel Crypto Ctx Ehl Enc_compare Gadgets Join_scheme List Modular Nat Paillier Proto Rng Trace
