lib/join/sec_join.mli: Crypto Join_scheme Paillier Proto
