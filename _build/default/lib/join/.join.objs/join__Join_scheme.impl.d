lib/join/join_scheme.ml: Array Bignum Crypto Dataset Ehl List Paillier Prf Prp Relation Rng
