(** Encryption setup for top-k joins over multiple relations
    (Section 12.2, Algorithm 10).

    Unlike the single-relation scheme, every {e attribute value} gets an
    EHL encoding (the equi-join condition compares attribute values, not
    object ids), next to its Paillier encryption. Attribute positions are
    shuffled per relation by a keyed PRP; the client's token maps the
    queried attributes through it. *)

open Crypto
open Dataset

type secret_key = { prp_key : string; ehl_keys : Prf.key list; s : int }

type enc_tuple = { cells : (Ehl.Ehl_plus.t * Paillier.ciphertext) array }

type enc_relation = { tuples : enc_tuple array; m : int; rel_tag : string }

(** [encrypt_pair rng pub r1 r2] encrypts both relations under one key set
    (Algorithm 10). *)
val encrypt_pair :
  ?s:int -> Rng.t -> Paillier.public -> Relation.t -> Relation.t ->
  (enc_relation * enc_relation) * secret_key

(** [encrypt_pair_sorted rng pub ~score1 ~score2 r1 r2] — like
    {!encrypt_pair}, but each relation's tuples are stored in descending
    order of its score attribute. This is the paper's future-work
    optimization ("one can also pre-sort the attributes to be ranked and
    save computations in the join processing"): {!Sec_join.top_k_sorted}
    explores pair diagonals best-score-first and halts early. The sort
    order of tuples is public by design, exactly like the sorted lists of
    the single-relation scheme. *)
val encrypt_pair_sorted :
  ?s:int -> Rng.t -> Paillier.public -> score1:int -> score2:int -> Relation.t -> Relation.t ->
  (enc_relation * enc_relation) * secret_key

(** [encrypt_all rng pub rels] — the L-relation generalization the paper
    sketches in Section 12 ("given a set of relations R1, ..., RL");
    relations are tagged "R1".."RL". *)
val encrypt_all :
  ?s:int -> Rng.t -> Paillier.public -> Relation.t list -> enc_relation list * secret_key

type token = {
  join_left : int;  (** permuted index of R1's join attribute [t1] *)
  join_right : int;  (** permuted index of R2's join attribute [t2] *)
  score_left : int;  (** permuted index of R1's score attribute [t3] *)
  score_right : int;  (** permuted index of R2's score attribute [t4] *)
  k : int;
}

(** [token key ~m1 ~m2 ~join:(a, b) ~score:(c, d) ~k] — the client side of
    Section 12.3 for query
    [SELECT * FROM R1, R2 WHERE R1.a = R2.b ORDER BY R1.c + R2.d STOP AFTER k]. *)
val token :
  secret_key -> m1:int -> m2:int -> join:int * int -> score:int * int -> k:int -> token

(** [attr_position key ~rel_tag ~m attr] — where attribute [attr] of the
    relation tagged [rel_tag] ("R1"/"R2") sits after the keyed permutation;
    how a client reads fields out of a returned joined tuple. *)
val attr_position : secret_key -> rel_tag:string -> m:int -> int -> int
