(** The secure top-k join operator [join_sec] (Section 12.4, Algorithm 11).

    S1 combines every tuple pair in random order. For each pair the
    servers obliviously evaluate the equi-join predicate through the EHL ⊖
    operation; the pair's score and carried attributes are then selected
    under encryption — a non-matching pair collapses to encryptions of 0.
    S2 learns only the (permuted) predicate bit pattern.

    Scores of matching pairs are offset by +1 under encryption so that a
    legitimate all-zero score survives SecFilter; the offset is removed
    after filtering (see DESIGN.md). *)

open Crypto

type joined = {
  score : Paillier.ciphertext;  (** [t * (score_l + score_r + 1)] *)
  attrs : Paillier.ciphertext array;  (** [t * x] for every carried attribute *)
}

(** All [n1 * n2] combined pairs, matching ones carrying real values. *)
val combine :
  Proto.Ctx.t ->
  Join_scheme.enc_relation ->
  Join_scheme.enc_relation ->
  Join_scheme.token ->
  joined list

(** SecFilter (Algorithm 12): drop the collapsed (score 0) tuples under
    two-sided blinding; S2 learns only how many tuples survive. *)
val filter : Proto.Ctx.t -> joined list -> joined list

(** The full operator: combine, filter, remove the score offset, sort by
    score descending (blinded sort through S2) and keep the top [k]. *)
val top_k : Proto.Ctx.t -> Join_scheme.enc_relation -> Join_scheme.enc_relation ->
  Join_scheme.token -> joined list

(** {2 Multi-way joins}

    The L-relation generalization of Section 12: a chain of equi-join
    conditions evaluated as one conjunction per cross-product combination
    (S2 sees only the per-combination verdict pattern). *)

type multi_spec = {
  chain : (int * int) list;
  score_attrs : int list;
  k : int;
}

(** Build a spec from {e original} attribute indices, mapping them through
    the client's keyed permutations. [ms] are the relations' attribute
    counts; [chain] pairs [(attr of R_i, attr of R_(i+1))]. *)
val spec_of_token :
  Join_scheme.secret_key ->
  ms:int list ->
  chain:(int * int) list ->
  score_attrs:int list ->
  k:int ->
  multi_spec

val top_k_multi :
  Proto.Ctx.t -> Join_scheme.enc_relation list -> multi_spec -> joined list

(** {2 Rank-join over pre-sorted relations}

    The paper's future-work optimization: relations encrypted with
    {!Join_scheme.encrypt_pair_sorted} are explored best-score-first and
    the scan halts once the k-th matched score dominates every unexplored
    pair. S1 additionally learns the halting diagonal and blinded
    comparisons of frontier score sums. *)

type sorted_stats = { pairs_explored : int; pairs_total : int; halted_early : bool }

val top_k_sorted_stats :
  Proto.Ctx.t -> Join_scheme.enc_relation -> Join_scheme.enc_relation -> Join_scheme.token ->
  joined list * sorted_stats

val top_k_sorted :
  Proto.Ctx.t -> Join_scheme.enc_relation -> Join_scheme.enc_relation -> Join_scheme.token ->
  joined list
