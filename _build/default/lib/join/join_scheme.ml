open Crypto
open Dataset

type secret_key = { prp_key : string; ehl_keys : Prf.key list; s : int }
type enc_tuple = { cells : (Ehl.Ehl_plus.t * Paillier.ciphertext) array }
type enc_relation = { tuples : enc_tuple array; m : int; rel_tag : string }

let encrypt_one rng pub ~ehl_keys ~prp_key ~tag rel =
  let m = Relation.n_attrs rel in
  let prp = Prp.create ~key:(prp_key ^ ":" ^ tag) ~domain:m in
  let tuples =
    Array.init (Relation.n_rows rel) (fun row ->
        let cells =
          Array.init m (fun permuted ->
              let attr = Prp.invert prp permuted in
              let v = Relation.value rel ~row ~attr in
              (* values are hashed as strings; equal values collide across
                 relations, which is exactly the equi-join predicate *)
              ( Ehl.Ehl_plus.encode rng pub ~keys:ehl_keys ("v" ^ string_of_int v),
                Paillier.encrypt rng pub (Bignum.Nat.of_int v) ))
        in
        { cells })
  in
  { tuples; m; rel_tag = tag }

let encrypt_pair ?(s = 4) rng pub r1 r2 =
  let ehl_keys = Prf.gen_keys rng s in
  let prp_key = Rng.bytes rng 32 in
  let e1 = encrypt_one rng pub ~ehl_keys ~prp_key ~tag:"R1" r1 in
  let e2 = encrypt_one rng pub ~ehl_keys ~prp_key ~tag:"R2" r2 in
  ((e1, e2), { prp_key; ehl_keys; s })

let sort_rows_desc rel ~attr =
  let rows = Array.init (Relation.n_rows rel) (fun i -> Relation.row rel i) in
  Array.sort (fun a b -> compare b.(attr) a.(attr)) rows;
  Relation.create ~name:(Relation.name rel) rows

let encrypt_pair_sorted ?(s = 4) rng pub ~score1 ~score2 r1 r2 =
  let ehl_keys = Prf.gen_keys rng s in
  let prp_key = Rng.bytes rng 32 in
  let e1 = encrypt_one rng pub ~ehl_keys ~prp_key ~tag:"R1" (sort_rows_desc r1 ~attr:score1) in
  let e2 = encrypt_one rng pub ~ehl_keys ~prp_key ~tag:"R2" (sort_rows_desc r2 ~attr:score2) in
  ((e1, e2), { prp_key; ehl_keys; s })

let encrypt_all ?(s = 4) rng pub rels =
  if rels = [] then invalid_arg "Join_scheme.encrypt_all: no relations";
  let ehl_keys = Prf.gen_keys rng s in
  let prp_key = Rng.bytes rng 32 in
  let encs =
    List.mapi
      (fun i rel -> encrypt_one rng pub ~ehl_keys ~prp_key ~tag:("R" ^ string_of_int (i + 1)) rel)
      rels
  in
  (encs, { prp_key; ehl_keys; s })

type token = {
  join_left : int;
  join_right : int;
  score_left : int;
  score_right : int;
  k : int;
}

let token key ~m1 ~m2 ~join:(a, b) ~score:(c, d) ~k =
  if k <= 0 then invalid_arg "Join_scheme.token: k <= 0";
  let p1 = Prp.create ~key:(key.prp_key ^ ":R1") ~domain:m1 in
  let p2 = Prp.create ~key:(key.prp_key ^ ":R2") ~domain:m2 in
  {
    join_left = Prp.apply p1 a;
    join_right = Prp.apply p2 b;
    score_left = Prp.apply p1 c;
    score_right = Prp.apply p2 d;
    k;
  }

let attr_position key ~rel_tag ~m attr =
  Prp.apply (Prp.create ~key:(key.prp_key ^ ":" ^ rel_tag) ~domain:m) attr
