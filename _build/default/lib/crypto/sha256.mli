(** SHA-256 (FIPS 180-4), pure OCaml.

    The digest is returned as a 32-byte binary string. A streaming interface
    is provided for incremental hashing. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit

(** Finalize; the context must not be reused afterwards. *)
val finalize : ctx -> string

(** One-shot digest of a full message. *)
val digest : string -> string

(** Hex rendering of a binary digest. *)
val hex : string -> string

val digest_hex : string -> string

(** Digest size in bytes (32). *)
val size : int

(** Block size in bytes (64) — needed by HMAC. *)
val block_size : int
