(** Deterministic random bit generator: HMAC-DRBG with SHA-256
    (NIST SP 800-90A), without prediction-resistance reseeding. *)

type t

(** [create ~seed] instantiates from arbitrary entropy input. Distinct seeds
    yield independent streams; the same seed reproduces the same stream. *)
val create : seed:string -> t

(** [generate t n] produces [n] pseudo-random bytes and advances the state. *)
val generate : t -> int -> string

(** Mix additional entropy into the state. *)
val reseed : t -> string -> unit
