type t = { fwd : int array; inv : int array }

let create ~key ~domain =
  if domain < 0 then invalid_arg "Prp.create";
  let rng = Rng.create ~seed:("prp:" ^ key) in
  let fwd = Array.init domain (fun i -> i) in
  ignore (Rng.shuffle rng fwd);
  let inv = Array.make domain 0 in
  Array.iteri (fun i v -> inv.(v) <- i) fwd;
  { fwd; inv }

let domain t = Array.length t.fwd
let apply t i = t.fwd.(i)
let invert t i = t.inv.(i)
