let xor_pad key byte =
  let b = Bytes.make Sha256.block_size (Char.chr byte) in
  String.iteri (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor byte))) key;
  Bytes.to_string b

let mac ~key msg =
  let key = if String.length key > Sha256.block_size then Sha256.digest key else key in
  let inner = Sha256.digest (xor_pad key 0x36 ^ msg) in
  Sha256.digest (xor_pad key 0x5c ^ inner)

let mac_hex ~key msg = Sha256.hex (mac ~key msg)
