(** Keyed pseudo-random functions built on HMAC-SHA-256, as used by the EHL
    encodings (the paper instantiates its PRFs with HMAC-SHA-256). *)

type key = string

(** [gen_keys rng s] draws [s] independent 32-byte PRF keys. *)
val gen_keys : Rng.t -> int -> key list

(** [to_nat_mod ~key msg ~m] hashes [msg] under [key] into [Z_m] — the
    EHL+ "securely hash the object into the group" step. The 256-bit HMAC
    output is expanded (counter mode) to twice the modulus width before
    reduction so the result is statistically close to uniform. *)
val to_nat_mod : key:key -> string -> m:Bignum.Nat.t -> Bignum.Nat.t

(** [to_index ~key msg ~buckets] hashes into [[0, buckets)] — the EHL
    bit-list bucket choice. *)
val to_index : key:key -> string -> buckets:int -> int
