(** HMAC-SHA-256 (RFC 2104 / FIPS 198-1). *)

(** [mac ~key msg] is the 32-byte HMAC-SHA-256 tag. *)
val mac : key:string -> string -> string

val mac_hex : key:string -> string -> string
