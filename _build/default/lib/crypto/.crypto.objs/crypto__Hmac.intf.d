lib/crypto/hmac.mli:
