lib/crypto/damgard_jurik.mli: Bignum Nat Paillier Rng
