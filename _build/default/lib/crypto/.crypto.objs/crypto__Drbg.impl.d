lib/crypto/drbg.ml: Buffer Hmac String
