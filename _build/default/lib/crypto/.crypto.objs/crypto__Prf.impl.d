lib/crypto/prf.ml: Bignum Buffer Hmac List Nat Printf Rng
