lib/crypto/prp.ml: Array Rng
