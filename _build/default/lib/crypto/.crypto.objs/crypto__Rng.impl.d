lib/crypto/rng.ml: Array Bignum Char Drbg Hashtbl Modular Nat Printf String Sys Unix
