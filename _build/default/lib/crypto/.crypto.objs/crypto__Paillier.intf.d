lib/crypto/paillier.mli: Bigint Bignum Format Nat Rng
