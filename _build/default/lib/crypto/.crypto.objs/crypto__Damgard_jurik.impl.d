lib/crypto/damgard_jurik.ml: Bignum Hmac Modular Nat Option Paillier Rng
