lib/crypto/paillier.ml: Bigint Bignum Modular Nat Prime Rng
