lib/crypto/prp.mli:
