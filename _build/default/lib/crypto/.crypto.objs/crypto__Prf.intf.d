lib/crypto/prf.mli: Bignum Rng
