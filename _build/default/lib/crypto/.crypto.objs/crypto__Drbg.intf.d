lib/crypto/drbg.mli:
