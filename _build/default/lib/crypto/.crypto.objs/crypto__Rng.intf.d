lib/crypto/rng.mli: Bignum
