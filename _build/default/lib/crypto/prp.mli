(** Keyed pseudo-random permutation over a small index domain [[0, n)].

    This is the permutation [P_K] the data owner applies to the sorted
    attribute lists (Algorithm 2, step 9) and the client re-derives in
    [Token]. It is realised as a Fisher–Yates shuffle driven by an
    HMAC-DRBG keyed with [K] — a standard small-domain PRP construction. *)

type t

val create : key:string -> domain:int -> t
val domain : t -> int

(** Forward permutation [P_K(i)]. *)
val apply : t -> int -> int

(** Inverse permutation. *)
val invert : t -> int -> int
