(** Random number generation over {!Bignum.Nat} values, backed by
    {!Drbg}. All randomness in the library flows through a value of this
    type so that experiments are reproducible under a fixed seed. *)

type t

(** Deterministic generator from a seed string. *)
val create : seed:string -> t

(** Generator seeded from [/dev/urandom] (falls back to PID/time entropy if
    unavailable). *)
val system : unit -> t

val bytes : t -> int -> string

(** Uniform in [[0, 2^bits)]. *)
val nat_bits : t -> int -> Bignum.Nat.t

(** Uniform in [[0, bound)] by rejection sampling; [bound > 0]. *)
val nat_below : t -> Bignum.Nat.t -> Bignum.Nat.t

(** Uniform in [[1, n)] with [gcd(r, n) = 1] — a unit of Z_n. Used for
    Paillier noise and multiplicative blinding. *)
val unit_mod : t -> Bignum.Nat.t -> Bignum.Nat.t

(** Uniform int in [[0, bound)]; [bound > 0]. *)
val int_below : t -> int -> int

val bool : t -> bool

(** Fisher–Yates shuffle; returns the permutation applied, as an array
    mapping new index -> old index. *)
val shuffle : t -> 'a array -> int array

(** Fresh child generator whose stream is independent of later draws from
    the parent (forked via a domain-separation label). *)
val fork : t -> label:string -> t
