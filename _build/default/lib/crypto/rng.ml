open Bignum

type t = Drbg.t

let create ~seed = Drbg.create ~seed:("sectopk.rng:" ^ seed)

let system () =
  let entropy =
    try
      let ic = open_in_bin "/dev/urandom" in
      let b = really_input_string ic 32 in
      close_in ic;
      b
    with _ ->
      Printf.sprintf "%d:%f:%d" (Unix.getpid ()) (Unix.gettimeofday ()) (Hashtbl.hash (Sys.getcwd ()))
  in
  Drbg.create ~seed:entropy

let bytes t n = Drbg.generate t n

let nat_bits t bits =
  if bits <= 0 then Nat.zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let x = Nat.of_bytes (bytes t nbytes) in
    Nat.shift_right x ((8 * nbytes) - bits)
  end

let nat_below t bound =
  if Nat.is_zero bound then invalid_arg "Rng.nat_below: zero bound";
  let bits = Nat.bit_length bound in
  let rec go () =
    let c = nat_bits t bits in
    if Nat.compare c bound < 0 then c else go ()
  in
  go ()

let unit_mod t n =
  let rec go () =
    let r = nat_below t n in
    if (not (Nat.is_zero r)) && Nat.is_one (Modular.gcd r n) then r else go ()
  in
  go ()

let int_below t bound =
  if bound <= 0 then invalid_arg "Rng.int_below: non-positive bound";
  Nat.to_int (nat_below t (Nat.of_int bound))

let bool t = Char.code (bytes t 1).[0] land 1 = 1

let shuffle t arr =
  let n = Array.length arr in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    let tp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tp
  done;
  perm

let fork t ~label = Drbg.create ~seed:(bytes t 32 ^ "fork:" ^ label)
