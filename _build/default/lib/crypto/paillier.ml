open Bignum

type public = {
  n : Nat.t;
  n2 : Nat.t;
  key_bits : int;
  h : Nat.t;
  rand_bits : int option;
}

type secret = {
  pub : public;
  p : Nat.t;
  q : Nat.t;
  lambda : Nat.t;
  mu : Nat.t;
}

type ciphertext = Nat.t

let keygen ?rand_bits rng ~bits =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus too small";
  let half = bits / 2 in
  let rand_below = Rng.nat_below rng in
  let rec gen () =
    let p = Prime.gen_prime ~bits:half ~rand_below () in
    let q = Prime.gen_prime ~bits:(bits - half) ~rand_below () in
    if Nat.equal p q then gen ()
    else begin
      let n = Nat.mul p q in
      let lambda = Modular.lcm (Nat.pred p) (Nat.pred q) in
      (* require gcd(n, lambda) = 1 so that mu exists; holds for random
         distinct primes but regenerate defensively *)
      if Nat.bit_length n <> bits || not (Nat.is_one (Modular.gcd n lambda)) then gen ()
      else (p, q, n, lambda)
    end
  in
  let p, q, n, lambda = gen () in
  let n2 = Nat.mul n n in
  let mu = Modular.inv (Nat.rem lambda n) ~m:n in
  let h = Modular.pow (Rng.unit_mod rng n) n ~m:n2 in
  let pub = { n; n2; key_bits = bits; h; rand_bits } in
  (pub, { pub; p; q; lambda; mu })

let public_of_secret sk = sk.pub
let secret_params sk = (sk.p, sk.q, sk.lambda)

let with_rand_bits pub rb = { pub with rand_bits = rb }

let noise rng pub =
  match pub.rand_bits with
  | None -> Modular.pow (Rng.unit_mod rng pub.n) pub.n ~m:pub.n2
  | Some b -> Modular.pow pub.h (Nat.succ (Rng.nat_bits rng b)) ~m:pub.n2

let encrypt rng pub m =
  let m = Nat.rem m pub.n in
  let gm = Nat.rem (Nat.succ (Nat.mul m pub.n)) pub.n2 in
  Modular.mul gm (noise rng pub) ~m:pub.n2

let encrypt_int rng pub m =
  if m < 0 then invalid_arg "Paillier.encrypt_int: negative (use Nat encoding)";
  encrypt rng pub (Nat.of_int m)

let decrypt sk c =
  let pub = sk.pub in
  let u = Modular.pow c sk.lambda ~m:pub.n2 in
  (* L(u) = (u - 1) / n *)
  let l = Nat.div (Nat.pred u) pub.n in
  Modular.mul l sk.mu ~m:pub.n

let decrypt_signed sk c =
  let m = decrypt sk c in
  let half = Nat.shift_right sk.pub.n 1 in
  if Nat.compare m half > 0 then Bigint.neg (Bigint.of_nat (Nat.sub sk.pub.n m))
  else Bigint.of_nat m

let add pub a b = Modular.mul a b ~m:pub.n2
let scalar_mul pub c k = Modular.pow c (Nat.rem k pub.n) ~m:pub.n2
let neg pub c = Modular.pow c (Nat.pred pub.n) ~m:pub.n2
let sub pub a b = add pub a (neg pub b)

let rerandomize rng pub c = Modular.mul c (noise rng pub) ~m:pub.n2

let trivial pub m = Nat.rem (Nat.succ (Nat.mul (Nat.rem m pub.n) pub.n)) pub.n2
let to_nat c = c

let of_nat pub c =
  if Nat.compare c pub.n2 >= 0 then invalid_arg "Paillier.of_nat: out of range";
  c

let ciphertext_bytes pub = (Nat.bit_length pub.n2 + 7) / 8
let plaintext_bytes pub = (Nat.bit_length pub.n + 7) / 8
let equal_ct = Nat.equal
let pp_ct = Nat.pp
