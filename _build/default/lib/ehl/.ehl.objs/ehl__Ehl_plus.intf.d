lib/ehl/ehl_plus.mli: Crypto Paillier Prf Rng
