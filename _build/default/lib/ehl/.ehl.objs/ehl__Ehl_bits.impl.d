lib/ehl/ehl_bits.ml: Array Bignum Crypto List Nat Paillier Prf Rng
