lib/ehl/ehl_plus.ml: Array Bignum Crypto List Nat Paillier Prf Rng
