lib/ehl/ehl_bits.mli: Crypto Paillier Prf Rng
