(** Encrypted Hash List — the paper's Section 5 bit-list structure.

    An object is hashed by [s] HMAC PRFs into a length-[h] bit list (a
    Bloom-filter row), and every bit is Paillier-encrypted. The homomorphic
    difference [diff] of two lists is an encryption of [0] when the objects
    are (probably) equal and of a uniformly random group element otherwise
    (Lemma 5.2). False-positive rate matches a Bloom filter:
    [(1 - e^(-s/h))^s] per comparison.

    The compact production variant is {!Ehl_plus}; this module exists to
    reproduce the EHL-vs-EHL+ comparison (Fig. 7/8) and for completeness. *)

open Crypto

type params = { h : int; s : int }
(** [h] — list length; [s] — number of PRFs. *)

type t
(** [h] Paillier ciphertexts, each encrypting a bit. *)

val default_params : params
(** The paper's experimental setting: [h = 23], [s = 5]. *)

(** [encode rng pub ~keys ~params id] builds EHL(id). [keys] must have
    exactly [params.s] elements. *)
val encode : Rng.t -> Paillier.public -> keys:Prf.key list -> params:params -> string -> t

(** The ⊖ operation (Equation 1): [diff rng pub a b] is [Enc(0)] if the
    encoded objects are equal, otherwise an encryption of a (with high
    probability non-zero) random element of [Z_n]. [blind_bits] bounds the
    random exponents [r_i] (default: full [Z_n] width as in the paper;
    benches may shrink it — see DESIGN.md). *)
val diff : ?blind_bits:int -> Rng.t -> Paillier.public -> t -> t -> Paillier.ciphertext

(** Re-encrypt every entry (fresh randomness, same bits). *)
val rerandomize : Rng.t -> Paillier.public -> t -> t

(** Serialized size in bytes. *)
val size_bytes : Paillier.public -> t -> int

(** Number of ciphertexts stored ([h]). *)
val length : t -> int

(** Analytic false-positive rate for one comparison given [params]
    (Bloom-filter formula [(1 - e^(-s/h))^s]). *)
val false_positive_rate : params -> float

(** Internal ciphertexts, exposed for tests and size accounting. *)
val cells : t -> Paillier.ciphertext array
