open Bignum
open Crypto

type params = { h : int; s : int }
type t = Paillier.ciphertext array

let default_params = { h = 23; s = 5 }

let encode rng pub ~keys ~params id =
  if List.length keys <> params.s then invalid_arg "Ehl_bits.encode: wrong number of keys";
  let bits = Array.make params.h 0 in
  List.iter (fun key -> bits.(Prf.to_index ~key id ~buckets:params.h) <- 1) keys;
  Array.map (fun b -> Paillier.encrypt rng pub (Nat.of_int b)) bits

let diff ?blind_bits rng pub (a : t) (b : t) =
  if Array.length a <> Array.length b then invalid_arg "Ehl_bits.diff: length mismatch";
  let blind () =
    match blind_bits with
    | None -> Rng.unit_mod rng pub.Paillier.n
    | Some bits -> Nat.succ (Rng.nat_bits rng bits)
  in
  let acc = ref (Paillier.trivial pub Nat.zero) in
  for i = 0 to Array.length a - 1 do
    let d = Paillier.sub pub a.(i) b.(i) in
    acc := Paillier.add pub !acc (Paillier.scalar_mul pub d (blind ()))
  done;
  !acc

let rerandomize rng pub t = Array.map (Paillier.rerandomize rng pub) t
let size_bytes pub t = Array.length t * Paillier.ciphertext_bytes pub
let length = Array.length

let false_positive_rate { h; s } =
  (1. -. exp (-.float_of_int s /. float_of_int h)) ** float_of_int s

let cells t = t
