let placeholder () = ()
