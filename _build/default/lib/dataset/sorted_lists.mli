(** Sorted-access view of a relation: one list per attribute, ordered by
    descending local score — the input shape the NRA algorithm (and hence
    SecTopK's Enc) consumes. Ties are broken by object id so the view is a
    deterministic function of the relation. *)

type item = { oid : int; score : int }

type t

val of_relation : Relation.t -> t
val n_lists : t -> int
val depth : t -> int

(** [item t ~list ~depth] — the entry of list [list] at 0-based [depth]. *)
val item : t -> list:int -> depth:int -> item

(** Whole list [i], best-first. *)
val list : t -> int -> item array

val relation : t -> Relation.t
