open Crypto

type distribution =
  | Uniform of { lo : int; hi : int }
  | Gaussian of { mean : float; stddev : float; max_value : int }
  | Zipf of { skew : float; max_value : int }
  | Correlated of { base : distribution; noise : int }

let uniform_float rng =
  (* 53 uniformly random bits into [0,1) *)
  let b = Rng.bytes rng 7 in
  let acc = ref 0 in
  String.iter (fun c -> acc := (!acc lsl 8) lor Char.code c) b;
  float_of_int (!acc land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53)

let gaussian_float rng =
  (* Box-Muller *)
  let u1 = max 1e-12 (uniform_float rng) and u2 = uniform_float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let rec draw rng = function
  | Uniform { lo; hi } ->
    if hi < lo then invalid_arg "Synthetic: hi < lo";
    lo + Rng.int_below rng (hi - lo + 1)
  | Gaussian { mean; stddev; max_value } ->
    let v = int_of_float (Float.round (mean +. (stddev *. gaussian_float rng))) in
    max 0 (min max_value v)
  | Zipf { skew; max_value } ->
    (* inverse-CDF sampling of a bounded Pareto-like rank *)
    let u = max 1e-12 (uniform_float rng) in
    let v = int_of_float (float_of_int max_value *. (u ** skew)) in
    max 0 (min max_value v)
  | Correlated { base; noise } ->
    let b = draw rng base in
    max 0 (b - noise + Rng.int_below rng ((2 * noise) + 1))

let generate ~seed ~name ~rows ~attrs dist =
  let rng = Rng.create ~seed:("synthetic:" ^ seed ^ ":" ^ name) in
  let data =
    Array.init rows (fun _ ->
        match dist with
        | Correlated { base; noise } ->
          let b = draw rng base in
          Array.init attrs (fun _ -> max 0 (b - noise + Rng.int_below rng ((2 * noise) + 1)))
        | d -> Array.init attrs (fun _ -> draw rng d))
  in
  Relation.create ~name data

let paper_synthetic ~seed ~rows =
  generate ~seed ~name:"synthetic" ~rows ~attrs:10
    (Gaussian { mean = 500.; stddev = 150.; max_value = 1000 })
