type t = { name : string; attrs : int; rows : int array array }

let create ~name rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Relation.create: empty";
  let attrs = Array.length rows.(0) in
  if attrs = 0 then invalid_arg "Relation.create: no attributes";
  Array.iter
    (fun r ->
      if Array.length r <> attrs then invalid_arg "Relation.create: ragged rows";
      Array.iter (fun v -> if v < 0 then invalid_arg "Relation.create: negative value") r)
    rows;
  { name; attrs; rows }

let name t = t.name
let n_rows t = Array.length t.rows
let n_attrs t = t.attrs
let value t ~row ~attr = t.rows.(row).(attr)
let object_id _ i = "o" ^ string_of_int i
let row t i = Array.copy t.rows.(i)

let max_value t =
  Array.fold_left (fun acc r -> Array.fold_left max acc r) 0 t.rows

let fold_rows t ~init ~f =
  let acc = ref init in
  Array.iteri (fun i r -> acc := f !acc i r) t.rows;
  !acc
