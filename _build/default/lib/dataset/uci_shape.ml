type spec = { name : string; full_rows : int; attrs : int }

let insurance_spec = { name = "insurance"; full_rows = 5822; attrs = 13 }
let diabetes_spec = { name = "diabetes"; full_rows = 101767; attrs = 10 }
let pamap_spec = { name = "pamap"; full_rows = 376416; attrs = 15 }
let all_specs = [ insurance_spec; diabetes_spec; pamap_spec ]

(* Value model per dataset family:
   - insurance: small categorical/ordinal ranges (0..40) with heavy ties,
   - diabetes: counts and codes (0..120) with moderate ties,
   - pamap: sensor readings, wide quasi-continuous range (0..5000). *)
let distribution_of spec : Synthetic.distribution =
  match spec.name with
  | "insurance" -> Synthetic.Zipf { skew = 1.2; max_value = 40 }
  | "diabetes" -> Synthetic.Gaussian { mean = 45.; stddev = 25.; max_value = 120 }
  | "pamap" -> Synthetic.Gaussian { mean = 2400.; stddev = 900.; max_value = 5000 }
  | _ -> Synthetic.Uniform { lo = 0; hi = 1000 }

let load spec ~seed ~scale =
  if scale <= 0. || scale > 1. then invalid_arg "Uci_shape.load: scale must be in (0,1]";
  let rows = max 1 (int_of_float (ceil (scale *. float_of_int spec.full_rows))) in
  Synthetic.generate ~seed ~name:spec.name ~rows ~attrs:spec.attrs (distribution_of spec)

let evaluation_suite ~seed ~scale =
  let uci = List.map (fun spec -> load spec ~seed ~scale) all_specs in
  let syn_rows = max 1 (int_of_float (ceil (scale *. 1_000_000.))) in
  uci @ [ Synthetic.paper_synthetic ~seed ~rows:syn_rows ]
