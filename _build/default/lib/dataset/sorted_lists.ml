type item = { oid : int; score : int }
type t = { rel : Relation.t; lists : item array array }

let of_relation rel =
  let n = Relation.n_rows rel and m = Relation.n_attrs rel in
  let lists =
    Array.init m (fun attr ->
        let l = Array.init n (fun oid -> { oid; score = Relation.value rel ~row:oid ~attr }) in
        Array.sort
          (fun a b -> if b.score <> a.score then compare b.score a.score else compare a.oid b.oid)
          l;
        l)
  in
  { rel; lists }

let n_lists t = Array.length t.lists
let depth t = Array.length t.lists.(0)
let item t ~list ~depth = t.lists.(list).(depth)
let list t i = Array.copy t.lists.(i)
let relation t = t.rel
