(** A database relation: [n] objects, each with [m] non-negative integer
    attributes (the paper assumes numerical attributes; Section 3.1). *)

type t

(** [create ~name rows] where [rows.(i)] is object [i]'s attribute vector.
    All rows must have equal, positive length; values must be
    non-negative. *)
val create : name:string -> int array array -> t

val name : t -> string
val n_rows : t -> int
val n_attrs : t -> int

(** [value t ~row ~attr]. *)
val value : t -> row:int -> attr:int -> int

(** Stable external identifier of object [row] ("o0", "o1", ...) — the
    string hashed into EHL encodings. *)
val object_id : t -> int -> string

(** Row of an object. *)
val row : t -> int -> int array

(** Largest attribute value present (for score-domain sizing). *)
val max_value : t -> int

val fold_rows : t -> init:'a -> f:('a -> int -> int array -> 'a) -> 'a
