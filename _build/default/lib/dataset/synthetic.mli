(** Synthetic workload generators. All values are drawn from a seeded
    {!Crypto.Rng} so a given configuration reproduces the same relation. *)

type distribution =
  | Uniform of { lo : int; hi : int }
      (** Independent uniform values in [[lo, hi]]. *)
  | Gaussian of { mean : float; stddev : float; max_value : int }
      (** Truncated/rounded normal, clamped to [[0, max_value]] — the
          paper's [synthetic] dataset uses Gaussian attributes. *)
  | Zipf of { skew : float; max_value : int }
      (** Zipf-ranked values: few large scores, long tail. *)
  | Correlated of { base : distribution; noise : int }
      (** All attributes equal a per-row draw from [base] plus uniform
          noise in [[-noise, +noise]] (clamped at 0) — stresses NRA's
          early-halt behaviour. *)

val generate : seed:string -> name:string -> rows:int -> attrs:int -> distribution -> Relation.t

(** The paper's [synthetic] dataset shape (Gaussian, 10 attributes),
    scaled to [rows]. *)
val paper_synthetic : seed:string -> rows:int -> Relation.t
