lib/dataset/relation.mli:
