lib/dataset/synthetic.mli: Relation
