lib/dataset/uci_shape.mli: Relation
