lib/dataset/sorted_lists.ml: Array Relation
