lib/dataset/synthetic.ml: Array Char Crypto Float Relation Rng String
