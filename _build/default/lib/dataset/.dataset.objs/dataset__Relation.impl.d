lib/dataset/relation.ml: Array
