lib/dataset/uci_shape.ml: List Synthetic
