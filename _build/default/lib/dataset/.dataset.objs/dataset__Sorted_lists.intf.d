lib/dataset/sorted_lists.mli: Relation
