(** Serialization of the scheme's persistent artifacts: the encrypted
    relation the data owner uploads to S1, the client key material, and
    tokens. Fixed-width big-endian ciphertexts under a small tagged
    header; [decode_*] validates sizes and ranges and raises
    [Invalid_argument] on malformed input. *)

open Crypto

(** [encode_relation pub er] — the on-the-wire form of the encrypted DB. *)
val encode_relation : Paillier.public -> Scheme.encrypted_relation -> string

val decode_relation : Paillier.public -> string -> Scheme.encrypted_relation

(** Client key material (the PRP key and the EHL PRF keys; Paillier keys
    travel separately through the key-management channel). *)
val encode_secret_key : Scheme.secret_key -> string

val decode_secret_key : string -> Scheme.secret_key

(** Query tokens, as sent from the client to S1. *)
val encode_token : Scheme.token -> string

val decode_token : string -> Scheme.token
