open Proto

let query_pattern tokens =
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  Array.init n (fun i -> Array.init n (fun j -> j <= i && arr.(i) = arr.(j)))

type profile = {
  equality_rounds : int;
  equality_bits : int list list;
  dedup_matrices : (int * (int * int) list) list;
  uniqueness_counts : int list;
  comparisons : int;
  sort_sizes : int list;
}

let of_trace trace =
  let init =
    {
      equality_rounds = 0;
      equality_bits = [];
      dedup_matrices = [];
      uniqueness_counts = [];
      comparisons = 0;
      sort_sizes = [];
    }
  in
  let p =
    List.fold_left
      (fun p ev ->
        match ev with
        | Trace.Equality_bits { bits; _ } ->
          let ones =
            List.mapi (fun i b -> if b then i else -1) bits |> List.filter (fun i -> i >= 0)
          in
          { p with equality_rounds = p.equality_rounds + 1; equality_bits = ones :: p.equality_bits }
        | Trace.Dedup_matrix { size; equal_pairs; _ } ->
          { p with dedup_matrices = (size, equal_pairs) :: p.dedup_matrices }
        | Trace.Count { protocol = "SecDupElim"; value } ->
          { p with uniqueness_counts = value :: p.uniqueness_counts }
        | Trace.Count { value; _ } -> { p with sort_sizes = value :: p.sort_sizes }
        | Trace.Comparison _ -> { p with comparisons = p.comparisons + 1 })
      init (Trace.events trace)
  in
  {
    p with
    equality_bits = List.rev p.equality_bits;
    dedup_matrices = List.rev p.dedup_matrices;
    uniqueness_counts = List.rev p.uniqueness_counts;
    sort_sizes = List.rev p.sort_sizes;
  }

let same_shape a b =
  a.equality_rounds = b.equality_rounds
  && List.map List.length a.equality_bits = List.map List.length b.equality_bits
  && List.map (fun (s, ps) -> (s, List.length ps)) a.dedup_matrices
     = List.map (fun (s, ps) -> (s, List.length ps)) b.dedup_matrices
  && a.uniqueness_counts = b.uniqueness_counts
  && a.comparisons = b.comparisons
  && a.sort_sizes = b.sort_sizes
