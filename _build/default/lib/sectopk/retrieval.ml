open Dataset

type mode = Direct | Oblivious

type t = {
  rel_attrs : int;
  slots : string array; (* Direct mode: encrypted record blobs, one per oid *)
  oram : Oram.Path_oram.t;
  key : string;
  mutable direct_log : int list;
}

(* record codec: attributes as 4-byte big-endian words, XOR-sealed with a
   per-record keystream (id-keyed, as the data owner would) *)
let encode_record key oid row =
  let buf = Buffer.create (4 * Array.length row) in
  Array.iter
    (fun v ->
      Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
      Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (v land 0xff)))
    row;
  let plain = Buffer.contents buf in
  let ks = Crypto.Drbg.generate (Crypto.Drbg.create ~seed:(key ^ "#" ^ string_of_int oid))
      (String.length plain) in
  String.init (String.length plain) (fun i -> Char.chr (Char.code plain.[i] lxor Char.code ks.[i]))

let decode_record key oid attrs blob =
  let ks = Crypto.Drbg.generate (Crypto.Drbg.create ~seed:(key ^ "#" ^ string_of_int oid))
      (4 * attrs) in
  Array.init attrs (fun a ->
      let word i = Char.code blob.[(4 * a) + i] lxor Char.code ks.[(4 * a) + i] in
      (word 0 lsl 24) lor (word 1 lsl 16) lor (word 2 lsl 8) lor word 3)

let setup rng rel =
  let n = Relation.n_rows rel and attrs = Relation.n_attrs rel in
  let key = Crypto.Rng.bytes rng 32 in
  let slots = Array.init n (fun oid -> encode_record key oid (Relation.row rel oid)) in
  let oram = Oram.Path_oram.create rng ~capacity:n ~block_bytes:(4 * attrs) in
  for oid = 0 to n - 1 do
    Oram.Path_oram.write oram oid slots.(oid)
  done;
  { rel_attrs = attrs; slots; oram; key; direct_log = [] }

let fetch t ~mode oid =
  match mode with
  | Direct ->
    (* S1 sees the requested slot *)
    t.direct_log <- oid :: t.direct_log;
    decode_record t.key oid t.rel_attrs t.slots.(oid)
  | Oblivious -> decode_record t.key oid t.rel_attrs (Oram.Path_oram.read t.oram oid)

let observed_direct t = List.rev t.direct_log

let observed_oblivious t =
  (* skip the setup writes: one path per initial record write *)
  let all = Oram.Path_oram.paths_accessed t.oram in
  let rec drop n = function [] -> [] | _ :: r as l -> if n = 0 then l else drop (n - 1) r in
  drop (Array.length t.slots) all

let oblivious_bytes_per_fetch t = Oram.Path_oram.bytes_per_access t.oram
