(** The leakage profiles of Section 9 (and Section 10.1), computed from
    protocol transcripts so that tests can check that the servers observe
    exactly the stated leakage and nothing else.

    [L1_Query = (QP, D_q)]: the query pattern and halting depth visible to
    S1. [L2_Query = {EP^d}]: the per-depth equality patterns visible to
    S2 (under S1's random permutations). SecDupElim additionally reveals
    the uniqueness pattern UP^d. *)

(** Query pattern: [qp tokens] is the repetition matrix — entry [(i, j)],
    [j <= i], is [true] iff query [i] equals query [j] (Section 9). *)
val query_pattern : Scheme.token list -> bool array array

type profile = {
  equality_rounds : int;  (** number of equality rounds S2 served *)
  equality_bits : int list list;
      (** per round, the positions of the 1-bits (the EP pattern, already
          permuted by S1) *)
  dedup_matrices : (int * (int * int) list) list;
      (** per SecDedup call: list size and the equal pairs S2 saw *)
  uniqueness_counts : int list;  (** UP^d values revealed by SecDupElim *)
  comparisons : int;  (** EncCompare / EncSort gate count *)
  sort_sizes : int list;  (** sizes of lists S2 sorted (Blinded strategy) *)
}

(** Summarize a trace into the leakage profile. *)
val of_trace : Proto.Trace.t -> profile

(** Two profiles are indistinguishable in shape iff S2's views could have
    come from the same leakage function output: same round structure,
    same equality patterns, same cardinalities. Comparison {e outcomes}
    are excluded (they are blinded). *)
val same_shape : profile -> profile -> bool
