(** Result-record retrieval — the final step the paper sketches in
    Section 4. After SecQuery hands the client the top-k object ids, the
    client fetches the actual encrypted records either

    - [Direct]: by asking S1 for the record slots, which is cheap but lets
      S1 observe which (encrypted) records different queries return — the
      access-pattern leakage the paper notes, or
    - [Oblivious]: through a Path ORAM holding the record payloads, so S1
      sees only uniformly random tree paths ("completely secure", at
      higher cost).

    Records are serialized rows of the plaintext relation, encrypted
    under the data owner's key material. *)

open Dataset

type t

type mode = Direct | Oblivious

(** [setup rng rel] builds the record store for both modes. *)
val setup : Crypto.Rng.t -> Relation.t -> t

(** [fetch t ~mode oid] returns the record (attribute vector) of object
    [oid]. *)
val fetch : t -> mode:mode -> int -> int array

(** What S1 observed so far for each mode: [Direct] — the slot indices
    requested, in order; [Oblivious] — the ORAM path leaves. *)
val observed_direct : t -> int list

val observed_oblivious : t -> int list

(** ORAM transfer cost per oblivious fetch, in bytes. *)
val oblivious_bytes_per_fetch : t -> int
