lib/sectopk/leakage.mli: Proto Scheme
