lib/sectopk/retrieval.ml: Array Buffer Char Crypto Dataset List Oram Relation String
