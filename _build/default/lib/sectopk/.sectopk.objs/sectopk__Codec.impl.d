lib/sectopk/codec.ml: Array Bignum Buffer Char Crypto Ehl List Paillier Proto Scheme String
