lib/sectopk/query.mli: Proto Scheme
