lib/sectopk/retrieval.mli: Crypto Dataset Relation
