lib/sectopk/client.ml: Array Bignum Crypto Ctx Ehl Enc_item List Option Paillier Proto Query Scheme
