lib/sectopk/codec.mli: Crypto Paillier Scheme
