lib/sectopk/scheme.ml: Array Atomic Bignum Crypto Dataset Domain Ehl Hashtbl List Option Paillier Prf Proto Prp Relation Rng Scoring Sorted_lists Topk
