lib/sectopk/scheme.mli: Bignum Crypto Dataset Ehl Paillier Prf Proto Relation Rng Scoring Topk
