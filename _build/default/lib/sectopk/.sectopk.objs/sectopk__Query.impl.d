lib/sectopk/query.ml: Array Bignum Crypto Ctx Enc_compare Enc_item Enc_sort Gadgets List Option Paillier Proto Scheme Sec_best Sec_dedup Sec_refresh Sec_update Sec_worst Unix
