lib/sectopk/leakage.ml: Array List Proto Trace
