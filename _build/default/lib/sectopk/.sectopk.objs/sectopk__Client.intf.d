lib/sectopk/client.mli: Proto Query Scheme
