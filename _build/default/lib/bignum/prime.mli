(** Primality testing and prime generation.

    Randomness is supplied by the caller as [rand_below : Nat.t -> Nat.t]
    (uniform in [[0, bound)]), keeping this library independent of the
    crypto substrate that provides the DRBG. *)

(** Trial division by primes below 1000, then [rounds] Miller–Rabin
    iterations (default 24, error probability <= 4^-24). *)
val is_probable_prime : ?rounds:int -> rand_below:(Nat.t -> Nat.t) -> Nat.t -> bool

(** [gen_prime ~bits ~rand_below] samples odd candidates with the top bit
    set until one passes {!is_probable_prime}. [bits >= 2]. *)
val gen_prime : ?rounds:int -> bits:int -> rand_below:(Nat.t -> Nat.t) -> unit -> Nat.t

(** Primes below 1000, for trial division and tests. *)
val small_primes : int list
