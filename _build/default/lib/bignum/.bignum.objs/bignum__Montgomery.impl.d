lib/bignum/montgomery.ml: Array Bytes Char Nat
