lib/bignum/prime.ml: Array List Modular Nat
