lib/bignum/bigint.mli: Format Nat
