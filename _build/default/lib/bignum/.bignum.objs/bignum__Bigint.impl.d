lib/bignum/bigint.ml: Format Nat Stdlib String
