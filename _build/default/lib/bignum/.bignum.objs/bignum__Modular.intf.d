lib/bignum/modular.mli: Bigint Nat
