lib/bignum/modular.ml: Bigint Hashtbl Montgomery Mutex Nat
