(** Montgomery-domain modular arithmetic for odd moduli.

    Exponentiation is the dominant cost of the whole system (every
    Paillier/DJ operation reduces to modexps over 2-3x key-width moduli),
    so [Modular.pow] routes through this module: word-by-word CIOS
    Montgomery multiplication (no per-step division) with 4-bit fixed
    windows. *)

type ctx

(** [create m] precomputes the context for an odd modulus [m > 1];
    [None] if [m] is even or too small. *)
val create : Nat.t -> ctx option

val modulus : ctx -> Nat.t

(** [pow ctx b e] is [b^e mod m]. *)
val pow : ctx -> Nat.t -> Nat.t -> Nat.t

(** [mul ctx a b] is [a * b mod m] (operands already reduced). *)
val mul : ctx -> Nat.t -> Nat.t -> Nat.t
