let small_primes =
  let sieve = Array.make 1000 true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to 999 do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j < 1000 do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let acc = ref [] in
  for i = 999 downto 2 do
    if sieve.(i) then acc := i :: !acc
  done;
  !acc

let miller_rabin_round n d s a =
  (* n odd > 3; n - 1 = 2^s * d with d odd; a in [2, n-2] *)
  let n1 = Nat.pred n in
  let x = ref (Modular.pow a d ~m:n) in
  if Nat.is_one !x || Nat.equal !x n1 then true
  else begin
    let witness_of_compositeness = ref true in
    (try
       for _ = 1 to s - 1 do
         x := Modular.mul !x !x ~m:n;
         if Nat.equal !x n1 then begin
           witness_of_compositeness := false;
           raise Exit
         end
       done
     with Exit -> ());
    not !witness_of_compositeness
  end

let is_probable_prime ?(rounds = 24) ~rand_below n =
  match Nat.to_int_opt n with
  | Some v when v < 1_000_000 ->
    if v < 2 then false
    else begin
      let rec check d = d * d > v || (v mod d <> 0 && check (d + 1)) in
      check 2
    end
  | _ ->
    if Nat.is_even n then false
    else if List.exists (fun p -> let _, r = Nat.divmod_int n p in r = 0) small_primes then false
    else begin
      let n1 = Nat.pred n in
      (* n - 1 = 2^s * d *)
      let rec strip d s = if Nat.is_even d then strip (Nat.shift_right d 1) (s + 1) else (d, s) in
      let d, s = strip n1 0 in
      let n3 = Nat.sub n (Nat.of_int 3) in
      let rec loop i =
        if i = 0 then true
        else begin
          let a = Nat.add (rand_below n3) Nat.two in
          miller_rabin_round n d s a && loop (i - 1)
        end
      in
      loop rounds
    end

let gen_prime ?(rounds = 24) ~bits ~rand_below () =
  if bits < 2 then invalid_arg "Prime.gen_prime: bits < 2";
  let top = Nat.shift_left Nat.one (bits - 1) in
  let rec loop () =
    let r = rand_below top in
    (* force top and bottom bits so the candidate is odd and exactly [bits] wide *)
    let c = Nat.add top r in
    let c = if Nat.is_even c then Nat.succ c else c in
    if Nat.bit_length c = bits && is_probable_prime ~rounds ~rand_below c then c
    else loop ()
  in
  loop ()
