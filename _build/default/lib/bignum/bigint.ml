type t = { sign : int; mag : Nat.t }
(* Invariant: sign = 0 iff mag = 0; otherwise sign ∈ {-1, 1}. *)

let make sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }
let of_nat n = make 1 n
let of_int n = if n >= 0 then make 1 (Nat.of_int n) else make (-1) (Nat.of_int (-n))
let to_nat x = x.mag
let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = make (-x.sign) x.mag
let abs x = make (if x.sign = 0 then 0 else 1) x.mag

let add a b =
  match (a.sign, b.sign) with
  | 0, _ -> b
  | _, 0 -> a
  | sa, sb when sa = sb -> make sa (Nat.add a.mag b.mag)
  | sa, _ ->
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make sa (Nat.sub a.mag b.mag)
    else make (-sa) (Nat.sub b.mag a.mag)

let sub a b = add a (neg b)
let mul a b = make (a.sign * b.sign) (Nat.mul a.mag b.mag)

(* Euclidean: remainder always in [0, |b|). *)
let divmod_euclid a b =
  if b.sign = 0 then raise Division_by_zero;
  let q0, r0 = Nat.divmod a.mag b.mag in
  if a.sign >= 0 then (make b.sign q0, make 1 r0)
  else if Nat.is_zero r0 then (make (-b.sign) q0, zero)
  else (make (-b.sign) (Nat.succ q0), make 1 (Nat.sub b.mag r0))

let div_euclid a b = fst (divmod_euclid a b)
let rem_euclid a b = snd (divmod_euclid a b)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0

let mod_nat a n =
  let r = Nat.rem a.mag n in
  if a.sign >= 0 || Nat.is_zero r then r else Nat.sub n r

let to_string x =
  match x.sign with
  | 0 -> "0"
  | 1 -> Nat.to_string x.mag
  | _ -> "-" ^ Nat.to_string x.mag

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    make (-1) (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else make 1 (Nat.of_string s)

let pp fmt x = Format.pp_print_string fmt (to_string x)
