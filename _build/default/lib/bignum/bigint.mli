(** Signed arbitrary-precision integers built on {!Nat}. *)

type t

val zero : t
val one : t
val minus_one : t
val of_nat : Nat.t -> t
val of_int : int -> t

(** Absolute value as a natural. *)
val to_nat : t -> Nat.t

(** Sign: [-1], [0] or [1]. *)
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Euclidean division: [div_euclid a b] and [rem_euclid a b] satisfy
    [a = q*b + r] with [0 <= r < |b|]. *)
val div_euclid : t -> t -> t

val rem_euclid : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

(** [mod_nat a n] maps [a] into [[0, n)]; the result is a natural. *)
val mod_nat : t -> Nat.t -> Nat.t

val to_string : t -> string
val of_string : string -> t
val pp : Format.formatter -> t -> unit
