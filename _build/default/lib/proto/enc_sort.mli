(** EncSort — oblivious sorting of encrypted scored items by their worst
    score, descending (the functionality of Baldimtsi–Ohrimenko [7],
    Section 8). The signed encoding puts the SecDedup sentinel [Z = -1]
    after every real (non-negative) score, exactly as in Figure 3.

    Two strategies:

    - [Network]: a bitonic sorting network; every compare-exchange gate
      ships the pair through S2 under fresh affine key blinding and a
      direction coin, so S2 sees only one randomised comparison per gate
      ([O(l log^2 l)] gates — the asymptotics of [7]).
    - [Blinded]: a single-round sort: all keys are blinded with one shared
      affine map, the list is permuted, and S2 sorts it wholesale. [O(l)]
      traffic, but S2 additionally learns the order statistics of the
      blinded keys. This is the default inside the query benchmarks; see
      DESIGN.md.

    Either way every returned ciphertext is fresh (S2 re-randomizes), so
    S1 cannot link output positions to input positions. *)

type strategy = Network | Blinded

(** [sort ctx ~strategy items] returns the items ordered by descending
    worst score. *)
val sort : Ctx.t -> strategy:strategy -> Enc_item.scored list -> Enc_item.scored list
