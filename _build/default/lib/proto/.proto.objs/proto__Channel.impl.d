lib/proto/channel.ml: Hashtbl List Option
