lib/proto/trace.ml: List
