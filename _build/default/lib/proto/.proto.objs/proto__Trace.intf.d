lib/proto/trace.mli:
