lib/proto/sec_update.mli: Ctx Enc_item Sec_dedup
