lib/proto/sec_refresh.mli: Crypto Ctx Enc_item Paillier
