lib/proto/enc_compare.ml: Array Bignum Bool Channel Crypto Ctx Gadgets List Nat Paillier Rng Trace
