lib/proto/enc_sort.mli: Ctx Enc_item
