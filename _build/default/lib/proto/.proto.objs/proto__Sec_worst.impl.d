lib/proto/sec_worst.ml: Array Crypto Ctx Ehl Enc_item Gadgets List Paillier Rng
