lib/proto/sec_refresh.ml: Array Crypto Ctx Enc_item Gadgets List Paillier
