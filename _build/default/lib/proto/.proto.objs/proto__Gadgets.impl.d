lib/proto/gadgets.ml: Bignum Channel Crypto Ctx Damgard_jurik List Nat Paillier Rng Trace
