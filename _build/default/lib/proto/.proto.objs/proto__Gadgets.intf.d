lib/proto/gadgets.mli: Bignum Crypto Ctx Damgard_jurik Nat Paillier
