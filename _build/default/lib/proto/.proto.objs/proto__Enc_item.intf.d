lib/proto/enc_item.mli: Crypto Ehl Paillier Rng
