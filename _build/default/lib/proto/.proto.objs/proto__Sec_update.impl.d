lib/proto/sec_update.ml: Array Bignum Channel Crypto Ctx Damgard_jurik Ehl Enc_item Fun Gadgets List Nat Paillier Rng Sec_dedup Trace
