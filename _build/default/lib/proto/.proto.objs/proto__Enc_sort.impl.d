lib/proto/enc_sort.ml: Array Bigint Bignum Channel Crypto Ctx Ehl Enc_item Gadgets List Nat Paillier Rng Trace
