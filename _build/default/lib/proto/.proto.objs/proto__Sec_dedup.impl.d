lib/proto/sec_dedup.ml: Array Bignum Channel Crypto Ctx Ehl Enc_item Fun List Modular Nat Paillier Rng Trace
