lib/proto/enc_compare.mli: Crypto Ctx Paillier
