lib/proto/sec_best.ml: Array Bignum Crypto Ctx Damgard_jurik Ehl Enc_item Gadgets List Paillier Rng
