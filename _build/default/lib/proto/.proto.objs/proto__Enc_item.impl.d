lib/proto/enc_item.ml: Array Crypto Ehl Paillier
