lib/proto/ctx.ml: Bignum Channel Crypto Damgard_jurik Option Paillier Rng Trace
