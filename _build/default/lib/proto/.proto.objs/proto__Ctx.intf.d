lib/proto/ctx.mli: Bignum Channel Crypto Damgard_jurik Paillier Rng Trace
