lib/proto/sec_best.mli: Crypto Ctx Enc_item Paillier
