lib/proto/channel.mli:
