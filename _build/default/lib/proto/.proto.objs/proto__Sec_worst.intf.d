lib/proto/sec_worst.mli: Crypto Ctx Damgard_jurik Enc_item Paillier
