lib/proto/sec_dedup.mli: Ctx Enc_item
