(** SecWorst (Protocol 8.1 / Algorithm 4): the encrypted local worst score
    of one item at the current depth.

    S1 holds the target [E(I) = (EHL(o), Enc(x))] and the items [H] of the
    other queried lists at the same depth; the output is
    [Enc(x + sum of the scores of items in H encoding the same object)].
    S2 only sees a randomly permuted equality bit pattern. *)

open Crypto

(** Returns the encrypted worst score together with the equality
    indicators [E2(t_j)] against each element of [others] (in the
    {e original} order of [others] — S1 undoes its own permutation).
    SecQuery reuses the indicators to build the item's seen-vector
    without a second equality round. *)
val run :
  Ctx.t ->
  target:Enc_item.entry ->
  others:Enc_item.entry list ->
  Paillier.ciphertext * Damgard_jurik.ciphertext list
