(** Oblivious best-score refresh.

    The NRA upper bound of a candidate shrinks every depth as the lists'
    bottom values drop (Figure 3: X4's bound goes 26 -> 23 -> 16 without
    X4 reappearing). The servers therefore recompute, at every halting
    checkpoint, [B(o) = W(o) + sum over lists l with seen_l(o) = 0 of
    bottom_l] — exactly the NRA definition, since [W] is the sum of the
    known (weighted) scores.

    The seen indicators live in [T] as Paillier bits; they are lifted to
    the DJ layer in one batched blinded round ({!Gadgets.lift}) and each
    per-list bottom is then included or suppressed with a select gadget.
    Sentinel items carry all-ones indicators, so their refreshed bound
    stays [W = -1] and they keep sinking in the sort. *)

open Crypto

(** [run ctx ~items ~bottoms] returns the items with refreshed [best]
    fields. [bottoms] are the current per-list encrypted bottom scores, in
    the same order as the items' [seen] vectors. *)
val run :
  Ctx.t ->
  items:Enc_item.scored list ->
  bottoms:Paillier.ciphertext array ->
  Enc_item.scored list
