open Bignum
open Crypto

let blind_scalar (s1 : Ctx.s1) =
  match s1.blind_bits with
  | None -> Rng.unit_mod s1.rng s1.pub.Paillier.n
  | Some bits -> Nat.succ (Rng.nat_bits s1.rng bits)

let equality_round (ctx : Ctx.t) ~protocol diffs =
  let s1 = ctx.s1 and s2 = ctx.s2 in
  let ct_bytes = Paillier.ciphertext_bytes s1.pub in
  let dj_bytes = Damgard_jurik.ciphertext_bytes s1.djpub in
  List.iter
    (fun _ -> Channel.send s1.chan ~dir:Channel.S1_to_s2 ~label:protocol ~bytes:ct_bytes)
    diffs;
  (* --- S2's view starts here --- *)
  let bits = List.map (fun c -> Nat.is_zero (Paillier.decrypt s2.sk c)) diffs in
  Trace.record s2.trace (Trace.Equality_bits { protocol; bits });
  let replies =
    List.map
      (fun b -> Damgard_jurik.encrypt s2.rng2 s2.djpub2 (if b then Nat.one else Nat.zero))
      bits
  in
  List.iter
    (fun _ -> Channel.send s2.chan2 ~dir:Channel.S2_to_s1 ~label:protocol ~bytes:dj_bytes)
    replies;
  Channel.round_trip s1.chan;
  replies

let conjunction_round (ctx : Ctx.t) ~protocol groups =
  let s1 = ctx.s1 and s2 = ctx.s2 in
  let ct_bytes = Paillier.ciphertext_bytes s1.pub in
  let dj_bytes = Damgard_jurik.ciphertext_bytes s1.djpub in
  let total = List.fold_left (fun acc g -> acc + List.length g) 0 groups in
  Channel.send s1.chan ~dir:Channel.S1_to_s2 ~label:protocol ~bytes:(total * ct_bytes);
  (* --- S2: a group holds iff every difference decrypts to zero --- *)
  let bits =
    List.map (fun g -> List.for_all (fun c -> Nat.is_zero (Paillier.decrypt s2.sk c)) g) groups
  in
  Trace.record s2.trace (Trace.Equality_bits { protocol; bits });
  let replies =
    List.map
      (fun b -> Damgard_jurik.encrypt s2.rng2 s2.djpub2 (if b then Nat.one else Nat.zero))
      bits
  in
  Channel.send s2.chan2 ~dir:Channel.S2_to_s1 ~label:protocol
    ~bytes:(List.length replies * dj_bytes);
  Channel.round_trip s1.chan;
  replies

let select (s1 : Ctx.s1) ~t ~if_one ~if_zero =
  let dj = s1.djpub in
  (* the constant E2(1) may be a deterministic encryption: every select
     output is re-randomized by RecoverEnc's blinding before leaving S1 *)
  let e2_one = Damgard_jurik.trivial dj Nat.one in
  let one_minus_t = Damgard_jurik.sub dj e2_one t in
  Damgard_jurik.add dj
    (Damgard_jurik.scalar_mul_ct dj t if_one)
    (Damgard_jurik.scalar_mul_ct dj one_minus_t if_zero)

let recover_enc (ctx : Ctx.t) ~protocol e2c =
  let s1 = ctx.s1 and s2 = ctx.s2 in
  let r = Rng.nat_below s1.rng s1.pub.Paillier.n in
  let enc_r = Paillier.encrypt s1.rng s1.pub r in
  let blinded = Damgard_jurik.scalar_mul_ct s1.djpub e2c enc_r in
  Channel.send s1.chan ~dir:Channel.S1_to_s2 ~label:protocol
    ~bytes:(Damgard_jurik.ciphertext_bytes s1.djpub);
  (* --- S2 strips the outer layer; the inner Enc(c+r) is blinded --- *)
  let inner = Damgard_jurik.decrypt_layered s2.djsk s2.pub2 blinded in
  Channel.send s2.chan2 ~dir:Channel.S2_to_s1 ~label:protocol
    ~bytes:(Paillier.ciphertext_bytes s2.pub2);
  Channel.round_trip s1.chan;
  (* --- back at S1: remove r --- *)
  Paillier.sub s1.pub inner enc_r

let select_recover ctx ~protocol ~t ~if_one ~if_zero =
  recover_enc ctx ~protocol (select ctx.Ctx.s1 ~t ~if_one ~if_zero)

let lift (ctx : Ctx.t) ~protocol cts =
  let s1 = ctx.s1 and s2 = ctx.s2 in
  (* blinding below n/2 so that bit + r never wraps mod n (a wrap would
     corrupt the value when the blinding is stripped in the wider DJ
     plaintext space) *)
  let half = Nat.shift_right s1.pub.Paillier.n 1 in
  let blinded =
    List.map
      (fun c ->
        let r = Rng.nat_below s1.rng half in
        (r, Paillier.add s1.pub c (Paillier.encrypt s1.rng s1.pub r)))
      cts
  in
  let ct_bytes = Paillier.ciphertext_bytes s1.pub in
  let dj_bytes = Damgard_jurik.ciphertext_bytes s1.djpub in
  Channel.send s1.chan ~dir:Channel.S1_to_s2 ~label:protocol
    ~bytes:(List.length cts * ct_bytes);
  (* --- S2: re-encrypt the (blinded, uniform) plaintexts under DJ --- *)
  let lifted =
    List.map
      (fun (_, c) -> Damgard_jurik.encrypt s2.rng2 s2.djpub2 (Paillier.decrypt s2.sk c))
      blinded
  in
  Channel.send s2.chan2 ~dir:Channel.S2_to_s1 ~label:protocol
    ~bytes:(List.length cts * dj_bytes);
  Channel.round_trip s1.chan;
  (* --- S1: strip the blinding inside the DJ layer --- *)
  List.map2
    (fun (r, _) e2 ->
      Damgard_jurik.sub s1.djpub e2 (Damgard_jurik.encrypt s1.rng s1.djpub r))
    blinded lifted

let enc_zero (s1 : Ctx.s1) = ignore s1.rng; Paillier.trivial s1.pub Nat.zero

let enc_int (s1 : Ctx.s1) v =
  if v < 0 then invalid_arg "Gadgets.enc_int: negative";
  Paillier.encrypt s1.rng s1.pub (Nat.of_int v)
