(** SecUpdate (Algorithm 9): merge the current depth's de-duplicated items
    [gamma] into the running global list [T].

    For every pair (new item i, old item j) the servers obliviously test
    object equality. On a match the old entry's global worst score is
    increased by the new item's in-depth worst score and its best score is
    replaced by the new (most recent) best bound.

    The appended copy of a matched new item must not survive as a second
    entry for the same object (it would break the at-most-one-match
    invariant every later equality round relies on). Following the
    SecDedup discipline this is done in one of two ways:

    - [Replace] (the fully-private SecDedup composition of Algorithm 9
      line 13): the copy is obliviously rewritten — random EHL cells and
      sentinel scores [Z = -1] — via select gadgets, so S1 cannot tell
      which appended items were duplicates and [|T|] grows by exactly
      [|gamma|] every depth (the paper's Figure 3 garbage rows).
    - [Eliminate] (the SecDupElim optimization, Section 10.1): S2 reveals
      which (permuted) new items matched and they are dropped, leaking the
      uniqueness pattern UP^d but keeping [T] duplicate- and garbage-free.

    Communication/computation are [O(|T| * |gamma|)] — the paper's
    [O(m^2 d)] per depth. Assumes [t_list] and [gamma] are individually
    duplicate-free (up to sentinel items), which SecQuery guarantees. *)

val run :
  Ctx.t ->
  mode:Sec_dedup.mode ->
  t_list:Enc_item.scored list ->
  gamma:Enc_item.scored list ->
  Enc_item.scored list
