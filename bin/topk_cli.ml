(* Command-line driver for the SecTopK reproduction.

   Subcommands:
     demo     - end-to-end secure top-k query on a generated dataset
     nra      - plaintext NRA run (halting depth, answers, oracle check)
     join     - secure top-k join on two generated relations
     keysize  - encrypted-database size estimates for given parameters

   All randomness is seeded; the same invocation reproduces the same
   output. *)

open Cmdliner
open Crypto
open Dataset
open Topk

let dist_of_string max_value = function
  | "uniform" -> Synthetic.Uniform { lo = 0; hi = max_value }
  | "gaussian" ->
    Synthetic.Gaussian
      { mean = float_of_int max_value /. 2.; stddev = float_of_int max_value /. 6.; max_value }
  | "zipf" -> Synthetic.Zipf { skew = 1.2; max_value }
  | "correlated" ->
    Synthetic.Correlated { base = Synthetic.Uniform { lo = 0; hi = max_value }; noise = max_value / 20 }
  | s -> invalid_arg ("unknown distribution: " ^ s)

let rows_arg = Arg.(value & opt int 40 & info [ "rows"; "n" ] ~doc:"Number of objects.")
let attrs_arg = Arg.(value & opt int 3 & info [ "attrs" ] ~doc:"Number of attributes.")
let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Result size k.")
let m_arg = Arg.(value & opt int 3 & info [ "m" ] ~doc:"Scoring attributes (first m).")
let seed_arg = Arg.(value & opt string "cli" & info [ "seed" ] ~doc:"Deterministic seed.")
let bits_arg = Arg.(value & opt int 128 & info [ "key-bits" ] ~doc:"Paillier modulus width.")

let dist_arg =
  Arg.(value & opt string "uniform"
       & info [ "dist" ] ~doc:"Value distribution: uniform | gaussian | zipf | correlated.")

let variant_arg =
  Arg.(value & opt string "elim"
       & info [ "variant" ] ~doc:"Query variant: full | elim | batched:<p>.")

let variant_of_string s =
  match String.split_on_char ':' s with
  | [ "full" ] -> Sectopk.Query.Full
  | [ "elim" ] -> Sectopk.Query.Elim
  | [ "batched"; p ] -> Sectopk.Query.Batched (int_of_string p)
  | _ -> invalid_arg ("unknown variant: " ^ s)

let make_rel ~seed ~rows ~attrs ~dist =
  Synthetic.generate ~seed ~name:"cli" ~rows ~attrs (dist_of_string 100 dist)

(* ---------------- demo ---------------- *)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg ("--s2 expects HOST:PORT, got " ^ s)
  | Some i ->
    let host = String.sub s 0 i
    and port = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    let host = if host = "" then "127.0.0.1" else host in
    Unix.ADDR_INET ((Unix.gethostbyname host).Unix.h_addr_list.(0), port)

(* The demo provisions both parties from the seed ([Ctx.provision]); a
   socket-mode S2 — spawned child or a remote [serve-s2] daemon — replays
   the same Hello and derives identical keys and randomness streams. *)
let demo rows attrs k m seed bits dist variant domains transport s2_addr metrics trace_out =
  if metrics || trace_out <> None then Obs.set_enabled true;
  let rel = make_rel ~seed ~rows ~attrs ~dist in
  let pub, sk, ctx_rng, data_rng = Proto.Ctx.provision ~seed ~key_bits:bits ~rand_bits:96 () in
  let hello =
    { Proto.Wire.seed; key_bits = bits; rand_bits = Some 96; obs = Obs.is_enabled () }
  in
  let mode, daemon_pid =
    match (s2_addr, transport) with
    | Some addr, _ ->
      (Some (Proto.Ctx.Socket_fd (Proto.Transport.connect_tcp (parse_addr addr) hello)), None)
    | None, Some "inproc" -> (Some Proto.Ctx.Inproc, None)
    | None, Some "loopback" -> (Some Proto.Ctx.Loopback, None)
    | None, Some "socket" ->
      let fd, pid = Proto.Transport.spawn_daemon hello in
      (Some (Proto.Ctx.Socket_fd fd), Some pid)
    | None, Some other -> invalid_arg ("unknown transport: " ^ other)
    | None, None -> (None, None) (* TRANSPORT env or inproc *)
  in
  let (er, key), enc_s =
    Obs.Timer.time (fun () -> Sectopk.Scheme.encrypt ~s:4 data_rng pub rel)
  in
  Format.printf "encrypted %d x %d in %.2fs (%d KB)@." rows attrs enc_s
    (Sectopk.Scheme.size_bytes pub er / 1024);
  let scoring = Scoring.sum_of (List.init (min m attrs) Fun.id) in
  let token = Sectopk.Scheme.token key ~m_total:attrs scoring ~k in
  let ctx = Proto.Ctx.of_keys ~blind_bits:48 ~domains ?mode ctx_rng pub sk in
  Format.printf "transport: %s@." (Proto.Ctx.transport_name ctx);
  let res, query_s =
    Obs.Timer.time (fun () ->
        Sectopk.Query.run ctx er token
          { Sectopk.Query.default_options with variant = variant_of_string variant })
  in
  Format.printf "query: %.2fs, halting depth %d/%d@." query_s
    res.Sectopk.Query.halting_depth rows;
  let ids = List.init rows (Relation.object_id rel) in
  let reals = Sectopk.Client.real_results ~sk ctx key ~ids res in
  List.iter (fun (id, w, b) -> Format.printf "  %-6s score in [%d, %d]@." id w b) reals;
  let oids =
    List.map (fun (id, _, _) -> int_of_string (String.sub id 1 (String.length id - 1))) reals
  in
  Format.printf "oracle-valid: %b@." (Nra.valid_answer rel scoring ~k oids);
  let ch = Proto.Ctx.channel ctx in
  Format.printf "traffic: %d KB, %d rounds@."
    (Proto.Channel.bytes_total ch / 1024)
    (Proto.Channel.rounds_total ch);
  if metrics then begin
    Format.printf "@.per-protocol observability (query only):@.";
    Obs.Report.print ctx.Proto.Ctx.obs;
    match Proto.Ctx.remote_stats ctx with
    | [] -> ()
    | stats ->
      Format.printf "@.S2 daemon-side operation counters:@.";
      List.iter (fun (name, v) -> Format.printf "  %-16s %d@." name v) stats
  end;
  Option.iter
    (fun file ->
      Obs.Chrome.write ctx.Proto.Ctx.obs ~file;
      Format.printf "chrome trace written to %s@." file)
    trace_out;
  (match daemon_pid with
  | Some pid -> Proto.Transport.stop_daemon (ctx.Proto.Ctx.transport) pid
  | None -> Proto.Transport.shutdown ctx.Proto.Ctx.transport)

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~doc:"Query-side domain pool width.")

let transport_arg =
  Arg.(value & opt (some string) None
       & info [ "transport" ]
           ~doc:"Transport to S2: inproc | loopback | socket (spawns a child daemon). \
                 Defaults to the TRANSPORT environment variable, else inproc.")

let s2_arg =
  Arg.(value & opt (some string) None
       & info [ "s2" ] ~docv:"HOST:PORT"
           ~doc:"Connect to a running 'serve-s2' daemon instead of hosting S2 locally.")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the per-protocol op-count report.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON of the query spans to $(docv).")

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run a full secure top-k query end to end.")
    Term.(const demo $ rows_arg $ attrs_arg $ k_arg $ m_arg $ seed_arg $ bits_arg $ dist_arg
          $ variant_arg $ domains_arg $ transport_arg $ s2_arg $ metrics_arg $ trace_out_arg)

(* ---------------- serve-s2 ---------------- *)

let serve_s2 port once =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 8;
  (match Unix.getsockname sock with
  | Unix.ADDR_INET (_, p) -> Format.printf "S2 daemon listening on 127.0.0.1:%d@.%!" p
  | _ -> ());
  let rec loop () =
    let fd, _peer = Unix.accept sock in
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    Format.printf "S2: connection accepted@.%!";
    (try Proto.S2_server.serve_fd fd
     with e -> Format.eprintf "S2: connection failed: %s@." (Printexc.to_string e));
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Format.printf "S2: connection closed@.%!";
    if not once then loop ()
  in
  loop ();
  Unix.close sock

let port_arg =
  Arg.(value & opt int 7787 & info [ "port" ] ~doc:"TCP port to listen on (0 = ephemeral).")

let once_arg =
  Arg.(value & flag & info [ "once" ] ~doc:"Serve a single connection, then exit.")

let serve_s2_cmd =
  Cmd.v
    (Cmd.info "serve-s2"
       ~doc:"Run the S2 key-holder daemon (the second cloud of the two-server model). \
             Clients provision it with their seed via the Hello handshake; \
             pair with 'demo --s2 HOST:PORT'.")
    Term.(const serve_s2 $ port_arg $ once_arg)

(* ---------------- nra ---------------- *)

let nra rows attrs k m seed dist =
  let rel = make_rel ~seed ~rows ~attrs ~dist in
  let scoring = Scoring.sum_of (List.init (min m attrs) Fun.id) in
  let sl = Sorted_lists.of_relation rel in
  let results, stats = Nra.run sl scoring ~k in
  Format.printf "halting depth %d/%d (%d distinct seen, exhausted %b)@." stats.Nra.halting_depth
    rows stats.Nra.distinct_seen stats.Nra.exhausted;
  List.iter
    (fun r -> Format.printf "  o%-5d worst %-6d best %-6d@." r.Nra.oid r.Nra.worst r.Nra.best)
    results;
  Format.printf "oracle-valid: %b@."
    (Nra.valid_answer rel scoring ~k (List.map (fun r -> r.Nra.oid) results))

let nra_cmd =
  Cmd.v (Cmd.info "nra" ~doc:"Run the plaintext NRA baseline.")
    Term.(const nra $ rows_arg $ attrs_arg $ k_arg $ m_arg $ seed_arg $ dist_arg)

(* ---------------- join ---------------- *)

let join rows k seed bits =
  let r1 = Synthetic.generate ~seed:(seed ^ "1") ~name:"R1" ~rows ~attrs:2
      (Synthetic.Uniform { lo = 0; hi = rows / 2 }) in
  let r2 = Synthetic.generate ~seed:(seed ^ "2") ~name:"R2" ~rows ~attrs:2
      (Synthetic.Uniform { lo = 0; hi = rows / 2 }) in
  let rng = Rng.create ~seed in
  let pub, sk = Paillier.keygen ~rand_bits:96 rng ~bits in
  let (e1, e2), key = Join.Join_scheme.encrypt_pair ~s:4 rng pub r1 r2 in
  let token = Join.Join_scheme.token key ~m1:2 ~m2:2 ~join:(0, 0) ~score:(1, 1) ~k in
  let ctx = Proto.Ctx.of_keys ~blind_bits:48 rng pub sk in
  let t0 = Unix.gettimeofday () in
  let top = Join.Sec_join.top_k ctx e1 e2 token in
  Format.printf "secure join of %dx%d pairs in %.2fs; top-%d scores:@." rows rows
    (Unix.gettimeofday () -. t0) k;
  List.iter
    (fun (t : Join.Sec_join.joined) ->
      Format.printf "  %s@." (Bignum.Nat.to_string (Paillier.decrypt sk t.Join.Sec_join.score)))
    top

let join_cmd =
  Cmd.v (Cmd.info "join" ~doc:"Run a secure top-k equi-join on generated relations.")
    Term.(const join $ rows_arg $ k_arg $ seed_arg $ bits_arg)

(* ---------------- keysize ---------------- *)

let keysize rows attrs bits =
  let rng = Rng.create ~seed:"keysize" in
  let pub, _ = Paillier.keygen ~rand_bits:96 rng ~bits in
  let ct = Paillier.ciphertext_bytes pub in
  let per_entry = (4 * ct) + ct in
  Format.printf "key %d bits: ciphertext %d B; EHL+(s=4) entry %d B@." bits ct per_entry;
  Format.printf "encrypted relation %d x %d: %.1f MB@." rows attrs
    (float_of_int (rows * attrs * per_entry) /. 1048576.)

let keysize_cmd =
  Cmd.v (Cmd.info "keysize" ~doc:"Estimate encrypted database sizes.")
    Term.(const keysize $ rows_arg $ attrs_arg $ bits_arg)

let () =
  let info = Cmd.info "topk_cli" ~doc:"SecTopK: top-k queries over encrypted databases." in
  exit (Cmd.eval (Cmd.group info [ demo_cmd; serve_s2_cmd; nra_cmd; join_cmd; keysize_cmd ]))
